package atcsim_test

import (
	"fmt"

	"atcsim"
)

// ExampleRun demonstrates the headline experiment: the same workload on the
// paper's baseline machine and with the full enhancement stack.
func ExampleRun() {
	tr, err := atcsim.NewTrace("pr", 120_000, 1)
	if err != nil {
		panic(err)
	}
	cfg := atcsim.DefaultConfig()
	cfg.Instructions = 60_000
	cfg.Warmup = 20_000

	base, _ := atcsim.Run(cfg, tr)
	cfg.Apply(atcsim.TEMPO)
	enh, _ := atcsim.Run(cfg, tr)

	fmt.Println(enh.SpeedupOver(base) > 1.0)
	// Output: true
}

// ExampleNewTrace shows workload synthesis and inspection.
func ExampleNewTrace() {
	tr, err := atcsim.NewTrace("tc", 10_000, 1)
	if err != nil {
		panic(err)
	}
	st := tr.Stats()
	fmt.Println(tr.Name, st.Total > 9_000, st.Loads > 0)
	// Output: tc true true
}

// ExampleConfig_Apply walks the paper's cumulative enhancement ladder.
func ExampleConfig_Apply() {
	cfg := atcsim.DefaultConfig()
	cfg.Apply(atcsim.TSHiP)
	fmt.Println(cfg.L2.Policy, cfg.LLC.Policy, cfg.L2.ATP)
	// Output: t-drrip t-ship false
}
