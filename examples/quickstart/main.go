// Quickstart: simulate PageRank on the paper's baseline machine, then with
// the full translation-conscious enhancement stack, and report the speedup
// — the repository's one-minute version of the paper's headline result.
package main

import (
	"fmt"
	"log"

	"atcsim"
)

func main() {
	// Synthesize ~500K instructions of the pr benchmark (the paper's
	// highest STLB-MPKI workload).
	tr, err := atcsim.NewTrace("pr", 500_000, 1)
	if err != nil {
		log.Fatal(err)
	}

	cfg := atcsim.DefaultConfig() // Table I machine
	cfg.Instructions = 300_000    // measure 300K after 100K warmup
	cfg.Warmup = 100_000
	base, err := atcsim.Run(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}

	cfg.Apply(atcsim.TEMPO) // T-DRRIP + T-SHiP + ATP + TEMPO
	enh, err := atcsim.Run(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s\n", tr.Name)
	fmt.Printf("baseline     IPC %.4f, STLB MPKI %.1f, on-chip translation hit rate %.1f%%\n",
		base.IPC(), base.STLBMPKI(), 100*base.TranslationHitRate())
	fmt.Printf("enhancements IPC %.4f, on-chip translation hit rate %.1f%%\n",
		enh.IPC(), 100*enh.TranslationHitRate())
	fmt.Printf("speedup: %+.1f%%\n", 100*(enh.SpeedupOver(base)-1))
	fmt.Printf("ROB head stalls (translation+replay): %d -> %d cycles\n",
		base.StallCycles(0)+base.StallCycles(1),
		enh.StallCycles(0)+enh.StallCycles(1))
}
