// Graph analytics: run every Ligra-like graph kernel through the simulator
// and compare how the cache hierarchy treats address translations under the
// baseline SHiP LLC versus the translation-conscious T-SHiP — the scenario
// the paper's introduction motivates (irregular graph workloads whose
// footprints dwarf the STLB reach).
package main

import (
	"fmt"
	"log"

	"atcsim"
)

func main() {
	kernels := []string{"pr", "cc", "bf", "radii", "mis", "tc"}

	fmt.Printf("%-8s %8s %12s %12s %12s %10s\n",
		"kernel", "STLB", "LLC PTE", "LLC PTE", "trans hit", "speedup")
	fmt.Printf("%-8s %8s %12s %12s %12s %10s\n",
		"", "MPKI", "MPKI (SHiP)", "(T-SHiP)", "rate", "")

	for _, k := range kernels {
		tr, err := atcsim.NewTrace(k, 300_000, 1)
		if err != nil {
			log.Fatal(err)
		}

		base := atcsim.DefaultConfig()
		base.Instructions = 200_000
		base.Warmup = 100_000
		b, err := atcsim.Run(base, tr)
		if err != nil {
			log.Fatal(err)
		}

		enh := base
		enh.Apply(atcsim.TSHiP) // T-DRRIP at L2 + T-SHiP at LLC
		e, err := atcsim.Run(enh, tr)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-8s %8.1f %12.2f %12.2f %11.1f%% %+9.1f%%\n",
			k, b.STLBMPKI(),
			b.LLCMPKI(atcsim.ClassTransLeaf), e.LLCMPKI(atcsim.ClassTransLeaf),
			100*e.TranslationHitRate(),
			100*(e.SpeedupOver(b)-1))
	}
}
