// SMT: run the paper's 2-way SMT experiment for one mix — two benchmarks
// sharing the whole cache/TLB hierarchy with a split ROB — and report the
// harmonic speedup of the full enhancement stack (the paper's Fig. 17
// metric).
package main

import (
	"fmt"
	"log"

	"atcsim"
)

func main() {
	mixes := [][2]string{
		{"pr", "cc"},             // High-High: the paper's best mix (+12.6%)
		{"canneal", "xalancbmk"}, // Medium-Low: modest gains expected
	}

	for _, mix := range mixes {
		t0, err := atcsim.NewTrace(mix[0], 250_000, 1)
		if err != nil {
			log.Fatal(err)
		}
		t1, err := atcsim.NewTrace(mix[1], 250_000, 2)
		if err != nil {
			log.Fatal(err)
		}

		cfg := atcsim.DefaultConfig()
		cfg.Instructions = 150_000
		cfg.Warmup = 50_000

		base, err := atcsim.RunSMT(cfg, t0, t1)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Apply(atcsim.TEMPO)
		enh, err := atcsim.RunSMT(cfg, t0, t1)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("mix %s-%s\n", mix[0], mix[1])
		for i := range base.Cores {
			fmt.Printf("  thread %d (%s): IPC %.4f -> %.4f\n",
				i, base.Cores[i].Workload, base.Cores[i].IPC, enh.Cores[i].IPC)
		}
		fmt.Printf("  harmonic speedup: %+.1f%%\n\n",
			100*(enh.HarmonicSpeedupOver(base)-1))
	}
}
