// Custom policy: plug a user-defined cache replacement policy into the
// simulator and race it against the built-ins on a TLB-stressing workload.
//
// The example registers "random" — a pseudo-random replacement policy (what
// many real L1 TLBs and some ARM caches use) — through the public
// RegisterPolicy hook, then selects it by name in the configuration like
// any built-in.
package main

import (
	"fmt"
	"log"

	"atcsim"
)

// randomPolicy evicts a pseudo-random way. It keeps no per-block state at
// all, which makes it the smallest possible policy — and a useful lower
// bound when evaluating smarter ones.
type randomPolicy struct {
	ways int
	rng  uint64
}

func (p *randomPolicy) Name() string { return "random" }

func (p *randomPolicy) Victim(set int, _ *atcsim.PolicyAccess, evictable func(int) bool) int {
	// xorshift64: deterministic across runs, no global state.
	p.rng ^= p.rng << 13
	p.rng ^= p.rng >> 7
	p.rng ^= p.rng << 17
	start := int(p.rng % uint64(p.ways))
	for i := 0; i < p.ways; i++ {
		w := (start + i) % p.ways
		if evictable(w) {
			return w
		}
	}
	return start
}

func (p *randomPolicy) Insert(set, way int, a *atcsim.PolicyAccess) {}
func (p *randomPolicy) Hit(set, way int, a *atcsim.PolicyAccess)    {}
func (p *randomPolicy) Evicted(set, way int)                        {}

func main() {
	atcsim.RegisterPolicy("random", func(sets, ways int) atcsim.ReplacementPolicy {
		return &randomPolicy{ways: ways, rng: 0x9E3779B97F4A7C15}
	})

	tr, err := atcsim.NewTrace("cc", 300_000, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %10s %14s\n", "LLC policy", "IPC", "LLC miss MPKI")
	for _, policy := range []string{"random", "lru", "ship", "t-ship"} {
		cfg := atcsim.DefaultConfig()
		cfg.Instructions = 200_000
		cfg.Warmup = 100_000
		cfg.LLC.Policy = policy
		res, err := atcsim.Run(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		var mpki float64
		for c := atcsim.AccessClass(0); c < atcsim.NumClasses; c++ {
			mpki += res.LLCMPKI(c)
		}
		fmt.Printf("%-10s %10.4f %14.2f\n", policy, res.IPC(), mpki)
	}
}
