// Package atcsim is a trace-driven CPU memory-hierarchy simulator built to
// reproduce "Address Translation Conscious Caching and Prefetching for High
// Performance Cache Hierarchy" (Vasudha & Panda, ISPASS 2022).
//
// The simulator models an out-of-order core's retirement behaviour (352-entry
// ROB with head-stall attribution), a two-level TLB hierarchy with paging
// structure caches, a five-level radix page table whose PTEs live at real
// physical addresses and are read through the data caches, a three-level
// cache hierarchy with pluggable replacement policies (LRU, SRRIP, DRRIP,
// SHiP, Hawkeye and the paper's T-DRRIP / T-SHiP / T-Hawkeye), hardware
// prefetchers (IPCP, SPP, Bingo, ISB and the paper's ATP / TEMPO), and a
// DDR5-like DRAM channel.
//
// Quick start:
//
//	tr, _ := atcsim.NewTrace("pr", 400_000, 1)
//	cfg := atcsim.DefaultConfig()
//	base, _ := atcsim.Run(cfg, tr)
//	cfg.Apply(atcsim.TEMPO) // T-DRRIP + T-SHiP + ATP + TEMPO
//	enh, _ := atcsim.Run(cfg, tr)
//	fmt.Printf("speedup: %.2f%%\n", 100*(enh.SpeedupOver(base)-1))
//
// See examples/ for runnable programs and internal/experiments for the code
// regenerating every table and figure of the paper.
package atcsim

import (
	"encoding/json"
	"io"

	"atcsim/internal/mem"
	"atcsim/internal/repl"
	"atcsim/internal/system"
	"atcsim/internal/trace"
	"atcsim/internal/workloads"
)

// Config describes a simulated machine and run; DefaultConfig reproduces the
// paper's Table I parameters.
type Config = system.Config

// Result is the outcome of a simulation run, with per-core stall/TLB/walker
// statistics and per-level cache counters.
type Result = system.Result

// CoreResult is one hardware thread's measured statistics.
type CoreResult = system.CoreResult

// Enhancement selects the paper's cumulative configurations
// (Baseline → TDRRIP → TSHiP → ATP → TEMPO, Fig. 14).
type Enhancement = system.Enhancement

// Enhancement levels, cumulative.
const (
	Baseline = system.Baseline
	TDRRIP   = system.TDRRIP
	TSHiP    = system.TSHiP
	ATP      = system.ATP
	TEMPO    = system.TEMPO
)

// Timing model names for Config.Timing: the analytic latency-composition
// engine (the default) and the queued engine with bounded per-level
// RQ/WQ/PQ/VAPQ deques, MSHR occupancy limits and backpressure counters.
const (
	TimingAnalytic = system.TimingAnalytic
	TimingQueued   = system.TimingQueued
)

// TimingModels lists the registered hierarchy timing models usable in
// Config.Timing.
func TimingModels() []string { return system.TimingModels() }

// TimingRegistered reports whether name selects a timing model; the empty
// string resolves to the analytic engine.
func TimingRegistered(name string) bool { return system.TimingRegistered(name) }

// Trace is a dynamic instruction stream.
type Trace = trace.Trace

// AccessClass is the translation/replay taxonomy used by per-class cache
// statistics (Result.LLCMPKI etc.).
type AccessClass = mem.Class

// Access classes, as classified by the simulator.
const (
	ClassNonReplay  = mem.ClassNonReplay
	ClassReplay     = mem.ClassReplay
	ClassTransLeaf  = mem.ClassTransLeaf
	ClassTransUpper = mem.ClassTransUpper
	ClassPrefetch   = mem.ClassPrefetch
	ClassWriteback  = mem.ClassWriteback
	NumClasses      = mem.NumClasses
)

// WorkloadSpec describes one synthetic benchmark (name, suite, STLB-MPKI
// category per the paper's Table II).
type WorkloadSpec = workloads.Spec

// ReplacementPolicy is the cache replacement policy interface; custom
// policies can be registered with RegisterPolicy and selected by name in
// Config (see examples/custompolicy).
type ReplacementPolicy = repl.Policy

// PolicyAccess describes one cache access from a policy's point of view.
type PolicyAccess = repl.Access

// DefaultConfig returns the paper's Table I machine: 352-entry-ROB core,
// 64-entry DTLB, 2048-entry STLB, 48KB L1D, 512KB L2 (DRRIP), 2MB LLC
// (SHiP), DDR5 DRAM.
func DefaultConfig() Config { return system.DefaultConfig() }

// Run simulates a single core executing tr.
func Run(cfg Config, tr *Trace) (*Result, error) { return system.Run(cfg, tr) }

// RunSMT simulates a 2-way SMT core: both threads share the cache and TLB
// hierarchy and split the ROB.
func RunSMT(cfg Config, t0, t1 *Trace) (*Result, error) { return system.RunSMT(cfg, t0, t1) }

// RunMulti simulates one core per trace with private L1/L2 and a shared LLC
// (scaled at 2MB/core) and DRAM channel.
func RunMulti(cfg Config, traces ...*Trace) (*Result, error) {
	return system.RunMulti(cfg, traces)
}

// NewTrace synthesizes approximately n instructions of the named benchmark
// (see Benchmarks) with the given seed.
func NewTrace(benchmark string, n int, seed int64) (*Trace, error) {
	s, err := workloads.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	return s.Build(n, seed), nil
}

// SaveTrace serializes a trace in the simulator's binary format, so a
// synthesized workload can be reused across processes like a ChampSim
// trace file.
func SaveTrace(w io.Writer, t *Trace) error { return t.Write(w) }

// LoadTrace reads a trace written by SaveTrace.
func LoadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// MarshalResult renders a Result as indented JSON for external tooling.
func MarshalResult(r *Result) ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Benchmarks returns the paper's benchmark suite in Table II order.
func Benchmarks() []string { return workloads.Names() }

// Workloads returns the full benchmark specs in Table II order.
func Workloads() []WorkloadSpec { return workloads.All() }

// Policies lists the registered replacement-policy names usable in Config.
func Policies() []string { return repl.Names() }

// RegisterPolicy adds a custom replacement policy usable by name in Config.
// The factory receives the cache geometry (sets × ways). It panics if the
// name is already taken.
func RegisterPolicy(name string, factory func(sets, ways int) ReplacementPolicy) {
	repl.Register(name, factory)
}
