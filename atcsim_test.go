package atcsim

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestBenchmarksRegistry(t *testing.T) {
	names := Benchmarks()
	if len(names) != 9 {
		t.Fatalf("Benchmarks() = %v", names)
	}
	specs := Workloads()
	if len(specs) != len(names) {
		t.Fatalf("Workloads() = %d entries", len(specs))
	}
	for i, s := range specs {
		if s.Name != names[i] {
			t.Errorf("spec %d name %q != %q", i, s.Name, names[i])
		}
	}
}

func TestNewTraceUnknown(t *testing.T) {
	if _, err := NewTrace("gcc", 1000, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPoliciesIncludePaperSet(t *testing.T) {
	have := map[string]bool{}
	for _, p := range Policies() {
		have[p] = true
	}
	for _, want := range []string{"lru", "srrip", "drrip", "ship", "hawkeye", "t-drrip", "t-ship", "t-hawkeye"} {
		if !have[want] {
			t.Errorf("policy %q missing", want)
		}
	}
}

func TestEndToEndEnhancementWin(t *testing.T) {
	tr, err := NewTrace("cc", 150_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Instructions = 80_000
	cfg.Warmup = 40_000
	base, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Apply(TEMPO)
	enh, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if enh.SpeedupOver(base) <= 1.0 {
		t.Errorf("enhancements speedup %.4f not > 1 on cc", enh.SpeedupOver(base))
	}
	if enh.TranslationHitRate() < base.TranslationHitRate() {
		t.Error("enhancements lowered the translation hit rate")
	}
}

func TestRunMultiVariadic(t *testing.T) {
	t0, _ := NewTrace("xalancbmk", 40_000, 1)
	t1, _ := NewTrace("tc", 40_000, 2)
	cfg := DefaultConfig()
	cfg.Instructions = 20_000
	cfg.Warmup = 5_000
	res, err := RunMulti(cfg, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 2 {
		t.Fatalf("cores = %d", len(res.Cores))
	}
}

func TestRegisterPolicyRoundTrip(t *testing.T) {
	RegisterPolicy("always-way0", func(sets, ways int) ReplacementPolicy {
		return way0Policy{}
	})
	tr, _ := NewTrace("xalancbmk", 30_000, 1)
	cfg := DefaultConfig()
	cfg.Instructions = 15_000
	cfg.Warmup = 5_000
	cfg.LLC.Policy = "always-way0"
	if _, err := Run(cfg, tr); err != nil {
		t.Fatalf("custom policy run: %v", err)
	}
}

type way0Policy struct{}

func (way0Policy) Name() string { return "always-way0" }
func (way0Policy) Victim(set int, _ *PolicyAccess, evictable func(int) bool) int {
	if evictable(0) {
		return 0
	}
	return 1
}
func (way0Policy) Insert(int, int, *PolicyAccess) {}
func (way0Policy) Hit(int, int, *PolicyAccess)    {}
func (way0Policy) Evicted(int, int)               {}

func TestTraceSaveLoadThroughFacade(t *testing.T) {
	tr, err := NewTrace("tc", 10_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || len(got.Insts) != len(tr.Insts) {
		t.Fatalf("round trip lost data: %s/%d", got.Name, len(got.Insts))
	}
	// A loaded trace simulates identically to the original.
	cfg := DefaultConfig()
	cfg.Instructions = 5_000
	cfg.Warmup = 1_000
	a, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, got)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cores[0].Cycles != b.Cores[0].Cycles {
		t.Error("loaded trace simulated differently")
	}
}

func TestMarshalResult(t *testing.T) {
	tr, _ := NewTrace("xalancbmk", 20_000, 1)
	cfg := DefaultConfig()
	cfg.Instructions = 10_000
	cfg.Warmup = 2_000
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	out, err := MarshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["Cores"]; !ok {
		t.Error("JSON missing Cores")
	}
	if _, ok := decoded["LLC"]; !ok {
		t.Error("JSON missing LLC")
	}
}
