package atcsim

// The benchmark harness: one testing.B benchmark per paper table/figure.
// Each benchmark regenerates its experiment at the Quick scale (one
// benchmark per STLB-MPKI category, reduced instruction counts) and reports
// the experiment's headline summary values as custom metrics, so
//
//	go test -bench=. -benchmem
//
// both exercises and summarizes the whole reproduction. Run cmd/figures
// for the full-scale tables.

import (
	"testing"

	"atcsim/internal/experiments"
)

// benchExperiment runs one experiment per iteration and publishes its
// summary as benchmark metrics.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.ByID(experiments.Quick(), id)
		if err != nil {
			b.Fatal(err)
		}
	}
	for k, v := range rep.Summary {
		b.ReportMetric(v, k)
	}
}

func BenchmarkFig01_ROBStalls(b *testing.B)            { benchExperiment(b, "fig1") }
func BenchmarkFig02_IdealCaches(b *testing.B)          { benchExperiment(b, "fig2") }
func BenchmarkFig03_ServiceLevels(b *testing.B)        { benchExperiment(b, "fig3") }
func BenchmarkFig04_TranslationMPKI(b *testing.B)      { benchExperiment(b, "fig4") }
func BenchmarkFig05_TranslationRecall(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig06_ReplayMPKI(b *testing.B)           { benchExperiment(b, "fig6") }
func BenchmarkFig07_ReplayRecall(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFig08_PrefetcherReplayMPKI(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig10_Replay0Misconfig(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkFig12_NewSignatures(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig14_EnhancementLadder(b *testing.B)    { benchExperiment(b, "fig14") }
func BenchmarkFig15_WithPrefetchers(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkFig16_StallReduction(b *testing.B)       { benchExperiment(b, "fig16") }
func BenchmarkFig17_SMT(b *testing.B)                  { benchExperiment(b, "fig17") }
func BenchmarkFig18_STLBRecall(b *testing.B)           { benchExperiment(b, "fig18") }
func BenchmarkFig19_STLBSensitivity(b *testing.B)      { benchExperiment(b, "fig19") }
func BenchmarkFig20_L2Sensitivity(b *testing.B)        { benchExperiment(b, "fig20") }
func BenchmarkFig21_LLCSensitivity(b *testing.B)       { benchExperiment(b, "fig21") }
func BenchmarkTableI_Parameters(b *testing.B)          { benchExperiment(b, "table1") }
func BenchmarkTableII_Characterization(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkMultiCore_Mixes(b *testing.B)            { benchExperiment(b, "multicore") }

// BenchmarkSimulatorThroughput measures raw simulation speed
// (instructions/second) on the baseline machine — the number that matters
// when sizing full-scale experiment runs.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr, err := NewTrace("mcf", 100_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Instructions = 100_000
	cfg.Warmup = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.Instructions), "insts/op")
}

// benchMultiCoreRun measures one 4-core TEMPO simulation end to end with a
// fixed intra-simulation worker count. Serial (SimJobs=1) executes the same
// barrier schedule on one goroutine, so the pair isolates the speedup of
// intra-simulation parallelism with identical work and identical results.
func benchMultiCoreRun(b *testing.B, simJobs int) {
	b.Helper()
	var traces []*Trace
	for i, name := range []string{"pr", "mcf", "cc", "xalancbmk"} {
		tr, err := NewTrace(name, 100_000, int64(1+i))
		if err != nil {
			b.Fatal(err)
		}
		traces = append(traces, tr)
	}
	cfg := DefaultConfig()
	cfg.Instructions = 50_000
	cfg.Warmup = 10_000
	cfg.Apply(TEMPO)
	cfg.SimJobs = simJobs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunMulti(cfg, traces...)
		if err != nil {
			b.Fatal(err)
		}
		if res.Parallel == nil {
			b.Fatal("multi-core run did not use the barrier engine")
		}
	}
}

// BenchmarkMultiCoreRunSerial is the -sim-jobs 1 baseline; compare against
// BenchmarkMultiCoreRunParallel for the intra-simulation speedup.
func BenchmarkMultiCoreRunSerial(b *testing.B) { benchMultiCoreRun(b, 1) }

// BenchmarkMultiCoreRunParallel runs the same simulation with one worker
// per CPU (-sim-jobs 0) and must produce byte-identical results faster.
func BenchmarkMultiCoreRunParallel(b *testing.B) { benchMultiCoreRun(b, 0) }

// Ablation benchmarks — the design-choice studies DESIGN.md calls out.

func BenchmarkAblationDecompose(b *testing.B) { benchExperiment(b, "ablation-decompose") }
func BenchmarkAblationWalkers(b *testing.B)   { benchExperiment(b, "ablation-walkers") }
func BenchmarkAblationReplayDly(b *testing.B) { benchExperiment(b, "ablation-replaydelay") }
func BenchmarkAblationScatter(b *testing.B)   { benchExperiment(b, "ablation-scatter") }
func BenchmarkAblationTHawkeye(b *testing.B)  { benchExperiment(b, "ablation-t-hawkeye") }
func BenchmarkAblationHugePages(b *testing.B) { benchExperiment(b, "ablation-hugepages") }

// BenchmarkComparison runs the §V-B prior-work comparison (CbPred, CSALT).
func BenchmarkComparison(b *testing.B) { benchExperiment(b, "comparison") }

// BenchmarkRobustness measures the headline speedup across trace seeds.
func BenchmarkRobustness(b *testing.B) { benchExperiment(b, "robustness") }
