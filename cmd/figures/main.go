// Command figures regenerates the paper's tables and figures and prints
// them as text reports. Use -list to see the experiment identifiers, -id to
// run one experiment, or no arguments to run the full suite (minutes).
// Simulations run in parallel (-jobs, default: all CPUs) and can be
// persisted across invocations with -cache-dir; the report output is
// byte-identical regardless of either option.
//
// Long sweeps are governable: -run-timeout bounds each simulation,
// -sweep-budget bounds the whole invocation, and SIGINT/SIGTERM cancel the
// sweep gracefully — in-flight simulations finish and land in the cache,
// completed reports are still printed (failed points render as
// FAILED(reason) markers), and re-running with the same -cache-dir resumes
// where the interrupted sweep left off.
//
// Long sweeps are observable: -progress (with -log-level
// debug|info|warn|error) logs each simulation to stderr, -metrics-addr
// serves live /metrics, /runs and /healthz endpoints, -metrics-log streams
// JSONL registry snapshots, and -flight-recorder captures a structured
// post-mortem of permanent failures.
//
//	figures -list
//	figures -list-mechanisms
//	figures -id fig14
//	figures -id mechanisms -scale quick
//	figures -id fig14 -timing queued -scale quick
//	figures -scale quick -jobs 8
//	figures -cache-dir .figcache -markdown > results.md
//	figures -cache-dir .figcache -run-timeout 2m -sweep-budget 1h
//	figures -scale full -jobs 8 -progress -metrics-addr localhost:9797
package main

import (
	"fmt"
	"os"

	"atcsim/internal/figurescli"
)

func main() {
	code, err := figurescli.Main(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
	}
	os.Exit(code)
}
