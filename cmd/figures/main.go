// Command figures regenerates the paper's tables and figures and prints
// them as text reports. Use -list to see the experiment identifiers, -id to
// run one experiment, or no arguments to run the full suite (minutes).
//
//	figures -list
//	figures -id fig14
//	figures -scale quick
//	figures -markdown > results.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"atcsim/internal/experiments"
)

func main() {
	var (
		id       = flag.String("id", "", "run a single experiment (see -list)")
		list     = flag.Bool("list", false, "list experiment identifiers")
		scale    = flag.String("scale", "full", "experiment scale: full or quick")
		markdown = flag.Bool("markdown", false, "emit markdown instead of plain text")
		csvDir   = flag.String("csv", "", "also write one CSV file per experiment into this directory")
		progress = flag.Bool("progress", false, "report each simulation run on stderr as the sweep progresses")
	)
	flag.Parse()

	if args := flag.Args(); len(args) > 0 {
		fmt.Fprintf(os.Stderr, "figures: unexpected positional arguments %q (all options are flags; see -h)\n", args)
		os.Exit(1)
	}

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	var sc experiments.Scale
	switch strings.ToLower(*scale) {
	case "full":
		sc = experiments.Full()
	case "quick":
		sc = experiments.Quick()
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown scale %q\n", *scale)
		os.Exit(1)
	}

	runner := experiments.NewRunner(sc)
	if *progress {
		runner.OnRun = func(key, name string, runs int) {
			fmt.Fprintf(os.Stderr, "figures: run %4d  %-24s %s\n", runs, key, name)
		}
	}

	var reports []*experiments.Report
	if *id != "" {
		rep, err := experiments.ByIDWith(runner, *id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		reports = []*experiments.Report{rep}
	} else {
		reports = experiments.AllWith(runner)
	}
	if *progress {
		fmt.Fprintf(os.Stderr, "figures: %d simulations complete\n", runner.Runs())
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}
	for _, rep := range reports {
		if *csvDir != "" && rep.Table != nil {
			path := *csvDir + "/" + rep.ID + ".csv"
			if err := os.WriteFile(path, []byte(rep.Table.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
		}
		if *markdown {
			fmt.Printf("### %s — %s\n\n```\n%s```\n\n", rep.ID, rep.Title, rep.Table)
			for _, n := range rep.Notes {
				fmt.Printf("> %s\n", n)
			}
			fmt.Println()
		} else {
			fmt.Println(rep)
		}
	}
}
