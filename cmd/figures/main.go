// Command figures regenerates the paper's tables and figures and prints
// them as text reports. Use -list to see the experiment identifiers, -id to
// run one experiment, or no arguments to run the full suite (minutes).
// Simulations run in parallel (-jobs, default: all CPUs) and can be
// persisted across invocations with -cache-dir; the report output is
// byte-identical regardless of either option.
//
//	figures -list
//	figures -id fig14
//	figures -scale quick -jobs 8
//	figures -cache-dir .figcache -markdown > results.md
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"atcsim/internal/experiments"
)

func main() {
	var (
		id       = flag.String("id", "", "run a single experiment (see -list)")
		list     = flag.Bool("list", false, "list experiment identifiers")
		scale    = flag.String("scale", "full", "experiment scale: full or quick")
		markdown = flag.Bool("markdown", false, "emit markdown instead of plain text")
		csvDir   = flag.String("csv", "", "also write one CSV file per experiment into this directory")
		progress = flag.Bool("progress", false, "report each simulation run on stderr as the sweep progresses")
		jobs     = flag.Int("jobs", 0, "concurrent simulations (0 = number of CPUs)")
		cacheDir = flag.String("cache-dir", "", "persist simulation results here and reuse them on later runs")
	)
	flag.Parse()

	if args := flag.Args(); len(args) > 0 {
		fmt.Fprintf(os.Stderr, "figures: unexpected positional arguments %q (all options are flags; see -h)\n", args)
		os.Exit(1)
	}

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	var sc experiments.Scale
	switch strings.ToLower(*scale) {
	case "full":
		sc = experiments.Full()
	case "quick":
		sc = experiments.Quick()
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown scale %q\n", *scale)
		os.Exit(1)
	}

	// Validate the CSV target before the sweep: a bad path should fail in
	// milliseconds, not after minutes of simulation.
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "figures: cannot create -csv directory %q: %v\n", *csvDir, err)
			os.Exit(1)
		}
	}

	runner, err := experiments.NewRunnerWith(sc, experiments.Options{
		Jobs:     *jobs,
		CacheDir: *cacheDir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: cannot open -cache-dir %q: %v\n", *cacheDir, err)
		os.Exit(1)
	}
	if *progress {
		// Simulations finish on many goroutines; OnRun calls are serialized
		// by the runner, so each line prints whole.
		runner.OnRun = func(key, name string, runs int) {
			fmt.Fprintf(os.Stderr, "figures: run %4d  %-24s %s\n", runs, key, name)
		}
	}

	var reports []*experiments.Report
	if *id != "" {
		rep, err := experiments.ByIDWith(runner, *id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		reports = []*experiments.Report{rep}
	} else {
		reports = experiments.AllWith(runner)
	}
	if *progress {
		fmt.Fprintf(os.Stderr, "figures: %d simulations complete (%d loaded from cache)\n",
			runner.Runs(), runner.DiskHits())
	}
	if err := runner.CacheErr(); err != nil {
		fmt.Fprintf(os.Stderr, "figures: warning: result cache: %v\n", err)
	}

	for _, rep := range reports {
		if *csvDir != "" && rep.Table != nil {
			path := filepath.Join(*csvDir, rep.ID+".csv")
			if err := os.WriteFile(path, []byte(rep.Table.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
		}
		if *markdown {
			fmt.Printf("### %s — %s\n\n```\n%s```\n\n", rep.ID, rep.Title, rep.Table)
			for _, n := range rep.Notes {
				fmt.Printf("> %s\n", n)
			}
			fmt.Println()
		} else {
			fmt.Println(rep)
		}
	}
}
