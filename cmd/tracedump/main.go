// Command tracedump synthesizes a benchmark trace and prints its
// composition and, optionally, the first instructions — useful for
// inspecting what the workload generators emit.
//
//	tracedump -workload pr -n 100000
//	tracedump -workload mcf -show 40
package main

import (
	"flag"
	"fmt"
	"os"

	"atcsim"
	"atcsim/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "pr", "benchmark name")
		n        = flag.Int("n", 100_000, "instructions to synthesize")
		seed     = flag.Int64("seed", 1, "synthesis seed")
		show     = flag.Int("show", 0, "print the first N instructions")
		save     = flag.String("save", "", "write the trace to this file")
		load     = flag.String("load", "", "read the trace from this file instead of synthesizing")
	)
	flag.Parse()

	// Bad or missing input is a usage error: report it, point at -h, and
	// exit 2 (distinct from exit 1, which reports I/O failures on output).
	if args := flag.Args(); len(args) > 0 {
		usageFail("unexpected positional arguments %q (all options are flags)", args)
	}
	if *n <= 0 {
		usageFail("-n must be positive, got %d", *n)
	}
	if *show < 0 {
		usageFail("-show must not be negative, got %d", *show)
	}

	var tr *atcsim.Trace
	var err error
	if *load != "" {
		f, ferr := os.Open(*load)
		if ferr != nil {
			usageFail("cannot open -load file: %v", ferr)
		}
		defer f.Close()
		if tr, err = atcsim.LoadTrace(f); err != nil {
			usageFail("-load %s: %v", *load, err)
		}
	} else {
		if tr, err = atcsim.NewTrace(*workload, *n, *seed); err != nil {
			usageFail("%v (see -h for the benchmark list)", err)
		}
	}
	if *save != "" {
		f, ferr := os.Create(*save)
		if ferr != nil {
			fail(ferr)
		}
		if err := atcsim.SaveTrace(f, tr); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *save)
	}
	st := tr.Stats()
	fmt.Printf("trace %s: %d instructions\n", tr.Name, st.Total)
	fmt.Printf("  loads    %8d (%.1f%%)\n", st.Loads, pct(st.Loads, st.Total))
	fmt.Printf("  stores   %8d (%.1f%%)\n", st.Stores, pct(st.Stores, st.Total))
	fmt.Printf("  branches %8d (%.1f%%)\n", st.Branches, pct(st.Branches, st.Total))
	fmt.Printf("  alu      %8d (%.1f%%)\n", st.ALU, pct(st.ALU, st.Total))
	fmt.Printf("  data footprint: %d pages (%.1f MB)\n", st.Pages, float64(st.Pages)*4/1024)

	for i := 0; i < *show && i < len(tr.Insts); i++ {
		in := &tr.Insts[i]
		switch in.Op {
		case trace.OpLoad, trace.OpStore:
			fmt.Printf("%6d  ip=%#x %-6s addr=%#x\n", i, in.IP, in.Op, in.Addr)
		case trace.OpBranch:
			fmt.Printf("%6d  ip=%#x %-6s taken=%v\n", i, in.IP, in.Op, in.Taken)
		default:
			fmt.Printf("%6d  ip=%#x %-6s\n", i, in.IP, in.Op)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracedump: %v\n", err)
	os.Exit(1)
}

// usageFail reports a bad-input error with the flag usage text and exits 2
// (the shell convention for usage errors).
func usageFail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracedump: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "usage:")
	flag.Usage()
	os.Exit(2)
}

func pct(x, tot int) float64 {
	if tot == 0 {
		return 0
	}
	return 100 * float64(x) / float64(tot)
}
