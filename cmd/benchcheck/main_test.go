package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
BenchmarkCacheAccessHit-8     	  200000	        19.68 ns/op	       0 B/op	       0 allocs/op
BenchmarkTLBLookupHit-8       	  200000	        12.19 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig14_EnhancementLadder 	       1	485117825 ns/op	208691716 B/op	 2915543 allocs/op
PASS
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got))
	}
	e, ok := got["BenchmarkCacheAccessHit"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if e.NsPerOp != 19.68 || e.AllocsPerOp != 0 {
		t.Fatalf("bad entry: %+v", e)
	}
	f := got["BenchmarkFig14_EnhancementLadder"]
	if f.AllocsPerOp != 2915543 || f.BytesPerOp != 208691716 {
		t.Fatalf("bad entry: %+v", f)
	}
}

func TestDeltaTable(t *testing.T) {
	old := map[string]Entry{
		"BenchmarkHot":     {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkSweep":   {NsPerOp: 2e6, AllocsPerOp: 5000},
		"BenchmarkRetired": {NsPerOp: 50, AllocsPerOp: 1},
	}
	cur := map[string]Entry{
		"BenchmarkHot":   {NsPerOp: 80, AllocsPerOp: 0},
		"BenchmarkSweep": {NsPerOp: 1e6, AllocsPerOp: 5500},
		"BenchmarkNew":   {NsPerOp: 42, AllocsPerOp: 3},
	}
	out := deltaTable("old.json", "new.json", old, cur)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + 4 benchmarks
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	for _, want := range []struct{ name, frag string }{
		{"BenchmarkHot", "-20.0%"},      // ns/op improvement
		{"BenchmarkSweep", "-50.0%"},    // ns/op halved
		{"BenchmarkSweep", "+10.0%"},    // allocs/op regression visible
		{"BenchmarkNew", "added"},       // only in new
		{"BenchmarkRetired", "removed"}, // only in old
	} {
		found := false
		for _, l := range lines {
			if strings.HasPrefix(l, want.name) && strings.Contains(l, want.frag) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no row for %s containing %q:\n%s", want.name, want.frag, out)
		}
	}
	// Rows are sorted by benchmark name.
	if !(strings.Index(out, "BenchmarkHot") < strings.Index(out, "BenchmarkNew") &&
		strings.Index(out, "BenchmarkNew") < strings.Index(out, "BenchmarkRetired")) {
		t.Errorf("rows not sorted:\n%s", out)
	}
}

func TestCompare(t *testing.T) {
	base := map[string]Entry{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 5},
		"BenchmarkC": {NsPerOp: 100, AllocsPerOp: 0},
	}
	got := map[string]Entry{
		"BenchmarkA": {NsPerOp: 110, AllocsPerOp: 1}, // zero baseline is exact → fail
		"BenchmarkB": {NsPerOp: 150, AllocsPerOp: 4}, // 50% slower → warn only
		// BenchmarkC missing → fail
		"BenchmarkD": {NsPerOp: 10}, // unknown → warn
	}
	fails, warns := compare(base, got, 15, 10)
	if len(fails) != 2 {
		t.Fatalf("fails = %v, want 2 entries", fails)
	}
	if len(warns) != 2 {
		t.Fatalf("warns = %v, want 2 entries", warns)
	}
	if fails, _ := compare(base, map[string]Entry{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 5},
		"BenchmarkC": {NsPerOp: 100, AllocsPerOp: 0},
	}, 15, 10); len(fails) != 0 {
		t.Fatalf("clean run should pass, got %v", fails)
	}
	// A nonzero baseline gets slack before failing, with a warning inside it.
	fails, warns = compare(base, map[string]Entry{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 5.4},
		"BenchmarkC": {NsPerOp: 100, AllocsPerOp: 0},
	}, 15, 10)
	if len(fails) != 0 || len(warns) != 1 {
		t.Fatalf("slack case: fails = %v warns = %v, want 0 fails 1 warn", fails, warns)
	}
	if fails, _ = compare(base, map[string]Entry{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 6},
		"BenchmarkC": {NsPerOp: 100, AllocsPerOp: 0},
	}, 15, 10); len(fails) != 1 {
		t.Fatalf("beyond slack should fail, got %v", fails)
	}
}
