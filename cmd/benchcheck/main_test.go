package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
BenchmarkCacheAccessHit-8     	  200000	        19.68 ns/op	       0 B/op	       0 allocs/op
BenchmarkTLBLookupHit-8       	  200000	        12.19 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig14_EnhancementLadder 	       1	485117825 ns/op	208691716 B/op	 2915543 allocs/op
PASS
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got))
	}
	e, ok := got["BenchmarkCacheAccessHit"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if e.NsPerOp != 19.68 || e.AllocsPerOp != 0 {
		t.Fatalf("bad entry: %+v", e)
	}
	f := got["BenchmarkFig14_EnhancementLadder"]
	if f.AllocsPerOp != 2915543 || f.BytesPerOp != 208691716 {
		t.Fatalf("bad entry: %+v", f)
	}
}

func TestCompare(t *testing.T) {
	base := map[string]Entry{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 5},
		"BenchmarkC": {NsPerOp: 100, AllocsPerOp: 0},
	}
	got := map[string]Entry{
		"BenchmarkA": {NsPerOp: 110, AllocsPerOp: 1}, // zero baseline is exact → fail
		"BenchmarkB": {NsPerOp: 150, AllocsPerOp: 4}, // 50% slower → warn only
		// BenchmarkC missing → fail
		"BenchmarkD": {NsPerOp: 10}, // unknown → warn
	}
	fails, warns := compare(base, got, 15, 10)
	if len(fails) != 2 {
		t.Fatalf("fails = %v, want 2 entries", fails)
	}
	if len(warns) != 2 {
		t.Fatalf("warns = %v, want 2 entries", warns)
	}
	if fails, _ := compare(base, map[string]Entry{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 5},
		"BenchmarkC": {NsPerOp: 100, AllocsPerOp: 0},
	}, 15, 10); len(fails) != 0 {
		t.Fatalf("clean run should pass, got %v", fails)
	}
	// A nonzero baseline gets slack before failing, with a warning inside it.
	fails, warns = compare(base, map[string]Entry{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 5.4},
		"BenchmarkC": {NsPerOp: 100, AllocsPerOp: 0},
	}, 15, 10)
	if len(fails) != 0 || len(warns) != 1 {
		t.Fatalf("slack case: fails = %v warns = %v, want 0 fails 1 warn", fails, warns)
	}
	if fails, _ = compare(base, map[string]Entry{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 6},
		"BenchmarkC": {NsPerOp: 100, AllocsPerOp: 0},
	}, 15, 10); len(fails) != 1 {
		t.Fatalf("beyond slack should fail, got %v", fails)
	}
}
