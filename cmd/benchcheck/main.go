// Command benchcheck turns `go test -bench -benchmem` output into a JSON
// baseline and gates regressions against a committed one.
//
// Record a baseline:
//
//	go test -bench . -benchmem -run xxx ./internal/benchmarks/ | benchcheck -update BENCH_pr5.json
//
// Gate a change (CI):
//
//	go test -bench . -benchmem -run xxx ./internal/benchmarks/ | benchcheck -baseline BENCH_pr5.json
//
// The gate FAILS (exit 1) on allocs/op regressions. For benchmarks whose
// baseline is 0 allocs/op the comparison is exact — the zero-allocation
// hot-path invariant never has noise, so any allocation is a regression.
// Benchmarks with residual cold-path allocations (the experiment-level
// ones) get -alloc-slack-pct of headroom before failing, since their counts
// wiggle slightly with iteration count. ns/op is timing-sensitive on shared
// runners, so slowdowns beyond -warn-pct only WARN.
//
// Compare two committed baselines (review aid, never fails):
//
//	benchcheck -compare BENCH_pr8.json BENCH_pr10.json
//
// prints a per-benchmark delta table — ns/op, allocs/op and the percentage
// change of each — so a PR's performance story is readable straight from
// its committed baseline files.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Entry is one benchmark's recorded performance.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the committed benchmark baseline file.
type Baseline struct {
	// Note describes how the baseline was produced (machine, benchtime).
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func main() {
	var (
		update   = flag.String("update", "", "write parsed results to this baseline file and exit")
		baseline = flag.String("baseline", "", "compare parsed results against this baseline file")
		compares = flag.Bool("compare", false, "diff two baseline files given as arguments (old.json new.json) instead of reading stdin")
		note     = flag.String("note", "", "note to embed when writing a baseline")
		warnPct  = flag.Float64("warn-pct", 15, "warn when ns/op regresses more than this percentage")
		slackPct = flag.Float64("alloc-slack-pct", 10, "allocs/op headroom for benchmarks with a nonzero baseline (zero baselines are exact)")
	)
	flag.Parse()
	if *compares {
		if *update != "" || *baseline != "" || flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchcheck: -compare takes exactly two baseline files and no other mode flags")
			os.Exit(2)
		}
		old, err := loadBaseline(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		cur, err := loadBaseline(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		os.Stdout.WriteString(deltaTable(flag.Arg(0), flag.Arg(1), old.Benchmarks, cur.Benchmarks))
		return
	}
	if (*update == "") == (*baseline == "") {
		fmt.Fprintln(os.Stderr, "benchcheck: exactly one of -update, -baseline or -compare is required")
		os.Exit(2)
	}

	got, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark lines on stdin")
		os.Exit(2)
	}

	if *update != "" {
		b := Baseline{Note: *note, Benchmarks: got}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*update, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		fmt.Printf("benchcheck: wrote %d benchmarks to %s\n", len(got), *update)
		return
	}

	base, err := loadBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}

	fails, warns := compare(base.Benchmarks, got, *warnPct, *slackPct)
	for _, w := range warns {
		fmt.Println("WARN:", w)
	}
	for _, f := range fails {
		fmt.Println("FAIL:", f)
	}
	fmt.Printf("benchcheck: %d benchmarks compared, %d failures, %d warnings\n",
		len(got), len(fails), len(warns))
	if len(fails) > 0 {
		os.Exit(1)
	}
}

// loadBaseline reads and decodes a committed baseline file.
func loadBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// deltaTable renders a per-benchmark comparison of two baselines: ns/op and
// allocs/op side by side with the percentage change of each, one row per
// benchmark in sorted order. Benchmarks present on only one side are listed
// as added/removed rather than silently dropped.
func deltaTable(oldName, newName string, old, cur map[string]Entry) string {
	names := make([]string, 0, len(old)+len(cur))
	for n := range old {
		names = append(names, n)
	}
	for n := range cur {
		if _, ok := old[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\tns/op (%s)\tns/op (%s)\tΔ%%\tallocs/op (%s)\tallocs/op (%s)\tΔ%%\n",
		oldName, newName, oldName, newName)
	pct := func(was, is float64) string {
		if was == 0 {
			if is == 0 {
				return "0.0%"
			}
			return "new"
		}
		return fmt.Sprintf("%+.1f%%", (is/was-1)*100)
	}
	for _, n := range names {
		o, inOld := old[n]
		c, inCur := cur[n]
		switch {
		case !inOld:
			fmt.Fprintf(tw, "%s\t-\t%.4g\tadded\t-\t%v\tadded\n", n, c.NsPerOp, c.AllocsPerOp)
		case !inCur:
			fmt.Fprintf(tw, "%s\t%.4g\t-\tremoved\t%v\t-\tremoved\n", n, o.NsPerOp, o.AllocsPerOp)
		default:
			fmt.Fprintf(tw, "%s\t%.4g\t%.4g\t%s\t%v\t%v\t%s\n",
				n, o.NsPerOp, c.NsPerOp, pct(o.NsPerOp, c.NsPerOp),
				o.AllocsPerOp, c.AllocsPerOp, pct(o.AllocsPerOp, c.AllocsPerOp))
		}
	}
	tw.Flush()
	return b.String()
}

// parse extracts benchmark result lines from go test output. The -N GOMAXPROCS
// suffix is stripped so baselines transfer across machines.
func parse(r io.Reader) (map[string]Entry, error) {
	out := make(map[string]Entry)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e := Entry{}
		// f[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			}
		}
		out[name] = e
	}
	return out, sc.Err()
}

// compare returns failure and warning messages for got vs base. Benchmarks
// missing from either side are reported: a benchmark that silently vanishes
// from the run would otherwise make its regressions invisible.
func compare(base, got map[string]Entry, warnPct, slackPct float64) (fails, warns []string) {
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b := base[n]
		g, ok := got[n]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: present in baseline but not in this run", n))
			continue
		}
		limit := b.AllocsPerOp * (1 + slackPct/100)
		switch {
		case g.AllocsPerOp > limit:
			fails = append(fails, fmt.Sprintf("%s: allocs/op %v > baseline %v",
				n, g.AllocsPerOp, b.AllocsPerOp))
		case g.AllocsPerOp > b.AllocsPerOp:
			warns = append(warns, fmt.Sprintf("%s: allocs/op %v over baseline %v (within slack)",
				n, g.AllocsPerOp, b.AllocsPerOp))
		}
		if b.NsPerOp > 0 {
			pct := (g.NsPerOp/b.NsPerOp - 1) * 100
			if pct > warnPct {
				warns = append(warns, fmt.Sprintf("%s: ns/op %.4g is %.1f%% over baseline %.4g",
					n, g.NsPerOp, pct, b.NsPerOp))
			}
		}
	}
	for n := range got {
		if _, ok := base[n]; !ok {
			warns = append(warns, fmt.Sprintf("%s: not in baseline (add it with -update)", n))
		}
	}
	return fails, warns
}
