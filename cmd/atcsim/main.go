// Command atcsim runs a single simulation of one benchmark under a chosen
// configuration and prints the headline statistics.
//
// Examples:
//
//	atcsim -workload pr
//	atcsim -workload mcf -enhance tempo -instructions 500000
//	atcsim -workload cc -llc-policy hawkeye -l2-prefetcher spp
//	atcsim -workload pr -smt xalancbmk
//	atcsim -multi pr,mcf,cc,xalancbmk                    # one core per workload
//	atcsim -multi pr,mcf,cc,xalancbmk -sim-jobs 1        # same report, serial engine
//	atcsim -workload pr -mechanism victima               # see docs/TRANSLATION.md
//	atcsim -workload mcf -timing queued                  # bounded-queue timing engine
//
// Observability:
//
//	atcsim -workload pr -trace-out trace.json            # Perfetto trace
//	atcsim -workload pr -interval-stats hb.csv -interval 10000
//	atcsim -workload pr -metrics-addr localhost:9797     # live /metrics + /healthz
//	atcsim -workload pr -metrics-log snap.jsonl          # periodic registry snapshots
//	atcsim -workload pr -pprof-addr localhost:6060 -cpuprofile cpu.pb.gz
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"atcsim"
	"atcsim/internal/metrics"
	"atcsim/internal/telemetry"
	"atcsim/internal/xlat"
)

func main() {
	var (
		workload  = flag.String("workload", "pr", "benchmark name ("+strings.Join(atcsim.Benchmarks(), ", ")+")")
		smt       = flag.String("smt", "", "second benchmark for a 2-way SMT run")
		multi     = flag.String("multi", "", "comma-separated benchmarks for a multi-core run (one core each, shared LLC/DRAM; overrides -workload)")
		simJobs   = flag.Int("sim-jobs", 0, "worker goroutines for the intra-simulation parallel engine on multi-core runs (0 = one per CPU, 1 = serial; reports are byte-identical for any value)")
		insts     = flag.Int("instructions", 300_000, "measured instructions per core")
		warmup    = flag.Int("warmup", 100_000, "warmup instructions per core")
		seed      = flag.Int64("seed", 1, "workload synthesis seed")
		enhance   = flag.String("enhance", "baseline", "enhancement level: baseline, t-drrip, t-ship, atp, tempo")
		mechanism = flag.String("mechanism", "", "translation mechanism for STLB misses: "+strings.Join(xlat.Names(), ", ")+" (empty = atp)")
		timing    = flag.String("timing", "", "hierarchy timing model: "+strings.Join(atcsim.TimingModels(), ", ")+" (empty = analytic)")
		l2Policy  = flag.String("l2-policy", "", "override L2 replacement policy")
		llcPolicy = flag.String("llc-policy", "", "override LLC replacement policy")
		l1dPf     = flag.String("l1d-prefetcher", "none", "L1D prefetcher (none, nextline, ipcp)")
		l2Pf      = flag.String("l2-prefetcher", "none", "L2 prefetcher (none, nextline, spp, bingo, isb)")
		stlb      = flag.Int("stlb", 2048, "STLB entries")
		recall    = flag.Bool("recall", false, "track recall distances")
		asJSON    = flag.Bool("json", false, "emit the full result as JSON")

		traceOut    = flag.String("trace-out", "", "write a Chrome/Perfetto trace-event JSON file of sampled request lifecycles")
		traceSample = flag.Int("trace-sample", telemetry.DefaultSampleEvery, "trace one in N memory instructions")
		traceBuf    = flag.Int("trace-buf", telemetry.DefaultBufferEvents, "trace ring-buffer capacity in events (oldest overwritten)")
		hbOut       = flag.String("interval-stats", "", "stream interval heartbeat stats to this file (.jsonl for JSONL, else CSV)")
		hbEvery     = flag.Int("interval", 10_000, "heartbeat interval in measured instructions")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
		metricsAddr = flag.String("metrics-addr", "", "serve live /metrics (OpenMetrics) and /healthz on this host:port (port 0 picks one)")
		metricsLog  = flag.String("metrics-log", "", "append a JSONL metrics snapshot to this file at every heartbeat interval")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if args := flag.Args(); len(args) > 0 {
		fail("unexpected positional arguments %q (all options are flags; see -h)", args)
	}
	if *insts <= 0 {
		fail("-instructions must be positive, got %d", *insts)
	}
	if *warmup < 0 {
		fail("-warmup must not be negative, got %d", *warmup)
	}
	if *stlb <= 0 {
		fail("-stlb must be positive, got %d", *stlb)
	}
	if *hbOut != "" && *hbEvery <= 0 {
		fail("-interval must be positive, got %d", *hbEvery)
	}
	if *simJobs < 0 {
		usageFail("-sim-jobs must not be negative, got %d", *simJobs)
	}
	if *multi != "" && *smt != "" {
		usageFail("-multi and -smt are mutually exclusive")
	}

	cfg := atcsim.DefaultConfig()
	cfg.Instructions = *insts
	cfg.Warmup = *warmup
	cfg.Seed = *seed
	cfg.STLB.Entries = *stlb
	cfg.L1DPrefetcher = *l1dPf
	cfg.L2Prefetcher = *l2Pf
	cfg.TrackRecall = *recall
	cfg.SimJobs = *simJobs
	if !xlat.Registered(*mechanism) {
		fail("unknown translation mechanism %q (have %s)", *mechanism, strings.Join(xlat.Names(), ", "))
	}
	cfg.Mechanism = *mechanism
	if !atcsim.TimingRegistered(*timing) {
		usageFail("unknown timing model %q (have %s)", *timing, strings.Join(atcsim.TimingModels(), ", "))
	}
	if *timing != atcsim.TimingAnalytic {
		// "analytic" normalizes to "" so the config JSON (and any run keys
		// derived from it) matches runs that never set the flag.
		cfg.Timing = *timing
	}

	levels := map[string]atcsim.Enhancement{
		"baseline": atcsim.Baseline, "t-drrip": atcsim.TDRRIP,
		"t-ship": atcsim.TSHiP, "atp": atcsim.ATP, "tempo": atcsim.TEMPO,
	}
	lvl, ok := levels[strings.ToLower(*enhance)]
	if !ok {
		fail("unknown enhancement %q", *enhance)
	}
	cfg.Apply(lvl)
	if *l2Policy != "" {
		cfg.L2.Policy = *l2Policy
	}
	if *llcPolicy != "" {
		cfg.LLC.Policy = *llcPolicy
	}

	// Profiling and live-introspection endpoints.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	// Telemetry hub: each facility only exists when requested, so the
	// default run carries a nil hub and a pristine hot path.
	liveMetrics := *metricsAddr != "" || *metricsLog != ""
	hub, hbFile := buildHub(*traceOut, *traceBuf, *traceSample, *hbOut, *hbEvery,
		*pprofAddr != "" || liveMetrics)
	cfg.Telemetry = hub

	// The metrics registry is the single live-introspection surface: the
	// progress gauges reach expvar through it (PublishExpvar), and the sim_*
	// gauges are refreshed from heartbeat snapshots via Hub.OnTick — never
	// from the per-access hot path.
	var mlog *os.File
	if liveMetrics || *pprofAddr != "" {
		reg := metrics.New()
		reg.GaugeFunc("sim_instructions_done",
			"Instructions simulated so far (coarse, for liveness).",
			func() float64 { return float64(hub.ProgressOrNil().Done()) })
		reg.GaugeFunc("sim_instructions_total",
			"Instructions this run will simulate.",
			func() float64 { return float64(hub.ProgressOrNil().Total()) })
		metrics.PublishExpvar("atcsim", reg)
		if liveMetrics {
			if hub.Heartbeat == nil {
				// OnTick rides the heartbeat cadence; a writer-less heartbeat
				// provides the ticks without streaming interval stats.
				hub.Heartbeat = telemetry.NewHeartbeat(nil, telemetry.FormatJSONL, *hbEvery)
			}
			gauges := telemetry.NewSnapshotGauges(reg)
			if *metricsLog != "" {
				f, err := os.Create(*metricsLog)
				if err != nil {
					fail("metrics-log: %v", err)
				}
				mlog = f
			}
			seq := 0 // OnTick runs on the single simulator goroutine
			hub.OnTick = func(sn telemetry.Snapshot) {
				gauges.Publish(sn)
				if mlog != nil {
					if err := reg.WriteJSONLSnapshot(mlog, seq); err != nil {
						fail("metrics-log: %v", err)
					}
					seq++
				}
			}
			if *metricsAddr != "" {
				srv := &metrics.Server{Registry: reg}
				addr, err := srv.Serve(*metricsAddr)
				if err != nil {
					fail("%v", err)
				}
				fmt.Fprintf(os.Stderr, "atcsim: metrics listening on http://%s/metrics\n", addr)
			}
		}
	}

	if *pprofAddr != "" {
		servePprof(*pprofAddr)
	}

	traceLen := *insts + *warmup
	var res *atcsim.Result
	switch {
	case *multi != "":
		var traces []*atcsim.Trace
		for i, name := range strings.Split(*multi, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				usageFail("-multi has an empty benchmark name")
			}
			// Per-core seeds mirror the SMT convention: core i runs the
			// workload synthesized with seed+i.
			tr, err := atcsim.NewTrace(name, traceLen, *seed+int64(i))
			if err != nil {
				fail("%v", err)
			}
			traces = append(traces, tr)
		}
		var err error
		res, err = atcsim.RunMulti(cfg, traces...)
		if err != nil {
			fail("%v", err)
		}
	case *smt != "":
		t0, err := atcsim.NewTrace(*workload, traceLen, *seed)
		if err != nil {
			fail("%v", err)
		}
		t1, err := atcsim.NewTrace(*smt, traceLen, *seed+1)
		if err != nil {
			fail("%v", err)
		}
		res, err = atcsim.RunSMT(cfg, t0, t1)
		if err != nil {
			fail("%v", err)
		}
	default:
		t0, err := atcsim.NewTrace(*workload, traceLen, *seed)
		if err != nil {
			fail("%v", err)
		}
		res, err = atcsim.Run(cfg, t0)
		if err != nil {
			fail("%v", err)
		}
	}

	flushTelemetry(hub, hbFile, *traceOut)
	if mlog != nil {
		if err := mlog.Close(); err != nil {
			fail("metrics-log: %v", err)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fail("%v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail("memprofile: %v", err)
		}
		f.Close()
	}

	if *asJSON {
		out, err := atcsim.MarshalResult(res)
		if err != nil {
			fail("%v", err)
		}
		fmt.Println(string(out))
		return
	}
	report(res)
}

// buildHub assembles the telemetry hub from the observability flags; it
// returns nil when nothing was requested. The returned file is the open
// heartbeat stream (closed by flushTelemetry).
func buildHub(traceOut string, traceBuf, traceSample int, hbOut string, hbEvery int, progress bool) (*telemetry.Hub, *os.File) {
	if traceOut == "" && hbOut == "" && !progress {
		return nil, nil
	}
	hub := &telemetry.Hub{}
	if traceOut != "" {
		hub.Tracer = telemetry.NewTracer(traceBuf, traceSample)
	}
	var hbFile *os.File
	if hbOut != "" {
		f, err := os.Create(hbOut)
		if err != nil {
			fail("%v", err)
		}
		format := telemetry.FormatCSV
		if strings.HasSuffix(hbOut, ".jsonl") || strings.HasSuffix(hbOut, ".json") {
			format = telemetry.FormatJSONL
		}
		hub.Heartbeat = telemetry.NewHeartbeat(f, format, hbEvery)
		hbFile = f
	}
	if progress {
		hub.Progress = &telemetry.Progress{}
	}
	return hub, hbFile
}

// servePprof exposes net/http/pprof and expvar on addr. Simulation progress
// appears under the "atcsim" expvar (the published metrics registry) rather
// than as hand-rolled top-level vars.
func servePprof(addr string) {
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "atcsim: pprof server: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "atcsim: pprof/expvar listening on http://%s/debug/pprof/\n", addr)
}

// flushTelemetry writes the trace file and closes the heartbeat stream.
func flushTelemetry(hub *telemetry.Hub, hbFile *os.File, traceOut string) {
	if hub == nil {
		return
	}
	if tr := hub.Tracer; tr != nil && traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fail("%v", err)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			fail("trace-out: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("trace-out: %v", err)
		}
		fmt.Fprintf(os.Stderr, "atcsim: wrote %d trace events (%d sampled requests, %d dropped) to %s\n",
			len(tr.Events()), tr.Sampled(), tr.Dropped(), traceOut)
	}
	if hb := hub.Heartbeat; hb != nil && hbFile != nil {
		if err := hb.Err(); err != nil {
			fail("interval-stats: %v", err)
		}
		if err := hbFile.Close(); err != nil {
			fail("interval-stats: %v", err)
		}
		fmt.Fprintf(os.Stderr, "atcsim: wrote %d heartbeat rows to %s\n", len(hb.Rows()), hbFile.Name())
	}
}

func report(res *atcsim.Result) {
	atcsim.WriteReport(os.Stdout, res)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "atcsim: "+format+"\n", args...)
	os.Exit(1)
}

// usageFail reports a bad-input error and exits 2 (the shell convention for
// usage errors, distinct from exit 1 runtime failures).
func usageFail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "atcsim: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "see -h for usage")
	os.Exit(2)
}
