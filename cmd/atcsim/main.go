// Command atcsim runs a single simulation of one benchmark under a chosen
// configuration and prints the headline statistics.
//
// Examples:
//
//	atcsim -workload pr
//	atcsim -workload mcf -enhance tempo -instructions 500000
//	atcsim -workload cc -llc-policy hawkeye -l2-prefetcher spp
//	atcsim -workload pr -smt xalancbmk
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"atcsim"
	"atcsim/internal/mem"
)

func main() {
	var (
		workload  = flag.String("workload", "pr", "benchmark name ("+strings.Join(atcsim.Benchmarks(), ", ")+")")
		smt       = flag.String("smt", "", "second benchmark for a 2-way SMT run")
		insts     = flag.Int("instructions", 300_000, "measured instructions per core")
		warmup    = flag.Int("warmup", 100_000, "warmup instructions per core")
		seed      = flag.Int64("seed", 1, "workload synthesis seed")
		enhance   = flag.String("enhance", "baseline", "enhancement level: baseline, t-drrip, t-ship, atp, tempo")
		l2Policy  = flag.String("l2-policy", "", "override L2 replacement policy")
		llcPolicy = flag.String("llc-policy", "", "override LLC replacement policy")
		l1dPf     = flag.String("l1d-prefetcher", "none", "L1D prefetcher (none, nextline, ipcp)")
		l2Pf      = flag.String("l2-prefetcher", "none", "L2 prefetcher (none, nextline, spp, bingo, isb)")
		stlb      = flag.Int("stlb", 2048, "STLB entries")
		recall    = flag.Bool("recall", false, "track recall distances")
		asJSON    = flag.Bool("json", false, "emit the full result as JSON")
	)
	flag.Parse()

	cfg := atcsim.DefaultConfig()
	cfg.Instructions = *insts
	cfg.Warmup = *warmup
	cfg.Seed = *seed
	cfg.STLB.Entries = *stlb
	cfg.L1DPrefetcher = *l1dPf
	cfg.L2Prefetcher = *l2Pf
	cfg.TrackRecall = *recall

	levels := map[string]atcsim.Enhancement{
		"baseline": atcsim.Baseline, "t-drrip": atcsim.TDRRIP,
		"t-ship": atcsim.TSHiP, "atp": atcsim.ATP, "tempo": atcsim.TEMPO,
	}
	lvl, ok := levels[strings.ToLower(*enhance)]
	if !ok {
		fail("unknown enhancement %q", *enhance)
	}
	cfg.Apply(lvl)
	if *l2Policy != "" {
		cfg.L2.Policy = *l2Policy
	}
	if *llcPolicy != "" {
		cfg.LLC.Policy = *llcPolicy
	}

	traceLen := *insts + *warmup
	t0, err := atcsim.NewTrace(*workload, traceLen, *seed)
	if err != nil {
		fail("%v", err)
	}

	var res *atcsim.Result
	if *smt != "" {
		t1, err := atcsim.NewTrace(*smt, traceLen, *seed+1)
		if err != nil {
			fail("%v", err)
		}
		res, err = atcsim.RunSMT(cfg, t0, t1)
		if err != nil {
			fail("%v", err)
		}
	} else {
		res, err = atcsim.Run(cfg, t0)
		if err != nil {
			fail("%v", err)
		}
	}

	if *asJSON {
		out, err := atcsim.MarshalResult(res)
		if err != nil {
			fail("%v", err)
		}
		fmt.Println(string(out))
		return
	}
	report(res)
}

func report(res *atcsim.Result) {
	for i := range res.Cores {
		c := &res.Cores[i]
		fmt.Printf("core %d (%s): IPC %.4f over %d cycles\n", i, c.Workload, c.IPC, c.Cycles)
		fmt.Printf("  STLB MPKI %.2f (misses %d), DTLB MPKI %.2f\n",
			c.STLBMPKI(), c.MMU.STLBMisses,
			1000*float64(c.MMU.DTLBMisses)/float64(c.Instructions))
		fmt.Printf("  ROB head stalls: translation %d, replay %d, non-replay %d cycles\n",
			c.CPU.StallCycles[0], c.CPU.StallCycles[1], c.CPU.StallCycles[2])
		ls := &c.Walker.LeafService
		fmt.Printf("  leaf translations serviced: L1D %.1f%%  L2C %.1f%%  LLC %.1f%%  DRAM %.1f%%\n",
			100*ls.Fraction(mem.LvlL1D), 100*ls.Fraction(mem.LvlL2),
			100*ls.Fraction(mem.LvlLLC), 100*ls.Fraction(mem.LvlDRAM))
		rs := &c.ReplayService
		if rs.Total() > 0 {
			fmt.Printf("  replay loads serviced:      L1D %.1f%%  L2C %.1f%%  LLC %.1f%%  DRAM %.1f%%\n",
				100*rs.Fraction(mem.LvlL1D), 100*rs.Fraction(mem.LvlL2),
				100*rs.Fraction(mem.LvlLLC), 100*rs.Fraction(mem.LvlDRAM))
		}
	}
	fmt.Printf("caches (MPKI): L1D %.2f | L2 %.2f | LLC %.2f (replay %.2f, leaf-PTE %.2f)\n",
		res.L1DMPKI(mem.ClassNonReplay)+res.L1DMPKI(mem.ClassReplay),
		res.L2MPKI(mem.ClassNonReplay)+res.L2MPKI(mem.ClassReplay),
		res.LLCMPKI(mem.ClassNonReplay)+res.LLCMPKI(mem.ClassReplay),
		res.LLCMPKI(mem.ClassReplay), res.LLCMPKI(mem.ClassTransLeaf))
	fmt.Printf("on-chip translation hit rate: %.2f%%\n", 100*res.TranslationHitRate())
	fmt.Printf("DRAM: %d reads, %d writes, avg read latency %.0f cycles, TEMPO prefetches %d\n",
		res.DRAM.Reads, res.DRAM.Writes, res.DRAM.AvgReadLatency(), res.DRAM.TEMPOIssued)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "atcsim: "+format+"\n", args...)
	os.Exit(1)
}
