package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestTimingFlagValidation builds the real binary and checks the -timing
// contract end to end: an unknown timing model is a usage error — exit 2
// with the registered names listed — while a registered one runs. This is
// deliberately a process-level test: usageFail calls os.Exit, so the exit
// code is the behavior under test.
func TestTimingFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("no go binary in PATH")
	}
	bin := filepath.Join(t.TempDir(), "atcsim")
	if out, err := exec.Command(gobin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	out, err := exec.Command(bin, "-timing", "warp", "-workload", "pr").CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("-timing warp: err = %v, want non-zero exit; output:\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Errorf("-timing warp: exit code = %d, want 2 (usage error)", code)
	}
	for _, want := range []string{"unknown timing model", "analytic", "queued"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("-timing warp: stderr lacks %q:\n%s", want, out)
		}
	}

	out, err = exec.Command(bin, "-timing", "queued", "-workload", "pr",
		"-instructions", "2000", "-warmup", "500").CombinedOutput()
	if err != nil {
		t.Fatalf("-timing queued run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "queues ") {
		t.Errorf("queued run report has no queues lines:\n%s", out)
	}
}
