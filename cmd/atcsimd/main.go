// Command atcsimd serves the experiment engine as a long-lived sweep
// service (see docs/SERVICE.md for the API contract).
//
// Examples:
//
//	atcsimd -addr localhost:9799 -cache-dir .simcache
//	atcsimd -addr localhost:9799 -scale quick -jobs 4
//	atcsimd -addr localhost:9799 -admit-rate 50 -admit-burst 16 -admit-queue 32
//	atcsimd -addr localhost:9799 -breaker-threshold 3 -breaker-cooldown 10s
//	atcsimd -addr localhost:9799 -flight-recorder crash.jsonl
//
// Submit work with POST /v1/run:
//
//	curl -s localhost:9799/v1/run -d '{"workload":"mcf","seed":1,"enhancement":"tempo"}'
//
// The service sheds load with 429 + Retry-After once its admission queue
// saturates, trips a per-kind circuit breaker on repeated failures, and
// drains gracefully on SIGINT/SIGTERM: readiness (/readyz) flips to 503,
// in-flight runs finish (bounded by -drain-grace), the flight recorder is
// flushed, and the process exits 0. A kill at any instant — even SIGKILL
// mid-store — leaves no torn cache entries; a restart on the same
// -cache-dir resumes from every completed result.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"atcsim/internal/experiments"
	"atcsim/internal/metrics"
	"atcsim/internal/simserver"
)

// Exit codes, aligned with cmd/figures.
const (
	exitOK     = 0
	exitFailed = 1
	exitUsage  = 2
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "atcsimd:", err)
	}
	os.Exit(code)
}

// run parses flags, boots the service and blocks until shutdown. It
// returns the process exit code and, for usage errors, the error to print.
func run(args []string) (int, error) {
	fs := flag.NewFlagSet("atcsimd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "localhost:9799", "listen address (host:port; port 0 picks a free one)")
		scale       = fs.String("scale", "full", "simulation scale: quick or full")
		jobs        = fs.Int("jobs", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cacheDir    = fs.String("cache-dir", "", "crash-safe on-disk result cache directory (empty = in-memory only)")
		runTimeout  = fs.Duration("run-timeout", 0, "default per-run deadline (0 = none; requests may override via timeout_ms)")
		admitRate   = fs.Float64("admit-rate", 200, "admission token refill rate in requests/sec")
		admitBurst  = fs.Int("admit-burst", 64, "admission token-bucket capacity")
		admitQueue  = fs.Int("admit-queue", 128, "admission waiter-queue bound before shedding with 429")
		brkWindow   = fs.Int("breaker-window", 8, "circuit-breaker sliding window of run outcomes per kind")
		brkThresh   = fs.Int("breaker-threshold", 5, "failures within the window that trip a kind's breaker")
		brkCooldown = fs.Duration("breaker-cooldown", 5*time.Second, "how long a tripped breaker stays open before half-open probes")
		drainGrace  = fs.Duration("drain-grace", 30*time.Second, "how long a graceful drain waits for in-flight runs")
		recorderOut = fs.String("flight-recorder", "", "flight-recorder dump file (written on failures and at drain)")
		logLevel    = fs.String("log-level", "info", "log verbosity: debug, info, warn or error")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return exitOK, nil
		}
		return exitUsage, nil // the flag package already printed the problem
	}
	if rest := fs.Args(); len(rest) > 0 {
		return exitUsage, fmt.Errorf("unexpected positional arguments %q (all options are flags; see -h)", rest)
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		return exitUsage, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", *logLevel)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick()
	case "full":
		sc = experiments.Full()
	default:
		return exitUsage, fmt.Errorf("unknown scale %q (want quick or full)", *scale)
	}

	var recorder *metrics.FlightRecorder
	if *recorderOut != "" {
		recorder = metrics.NewFlightRecorder(4096)
		recorder.SetSink(*recorderOut)
	}
	srv, err := simserver.New(simserver.Config{
		Scale:            sc,
		Jobs:             *jobs,
		CacheDir:         *cacheDir,
		RunTimeout:       *runTimeout,
		Recorder:         recorder,
		AdmitRate:        *admitRate,
		AdmitBurst:       *admitBurst,
		AdmitQueue:       *admitQueue,
		BreakerWindow:    *brkWindow,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCooldown,
		DrainGrace:       *drainGrace,
	})
	if err != nil {
		return exitFailed, err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return exitFailed, fmt.Errorf("listen %s: %w", *addr, err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	logger.Info("listening", "addr", ln.Addr().String(), "scale", *scale,
		"jobs", srv.Runner().Jobs(), "cache_dir", *cacheDir)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return exitFailed, fmt.Errorf("serve: %w", err)
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String(), "grace", drainGrace.String())
	}

	// Drain: refuse new work, finish in-flight runs, flush diagnostics.
	// The second signal (or the grace period) force-cancels via context.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	go func() {
		<-sig
		cancel()
	}()
	srv.Drain(drainCtx)
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShutdown()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	logger.Info("drained", "runs", srv.Runner().Runs(), "disk_hits", srv.Runner().DiskHits(),
		"quarantined", srv.Runner().Quarantined())
	return exitOK, nil
}
