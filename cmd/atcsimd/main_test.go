package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// daemonBin is the compiled binary every process-level test execs, built
// once in TestMain (a per-test TempDir would vanish when its test ends).
var daemonBin string
var buildErr error

func TestMain(m *testing.M) {
	func() {
		gobin, err := exec.LookPath("go")
		if err != nil {
			buildErr = fmt.Errorf("no go binary in PATH")
			return
		}
		dir, err := os.MkdirTemp("", "atcsimd-test")
		if err != nil {
			buildErr = err
			return
		}
		defer func() {
			if buildErr != nil {
				os.RemoveAll(dir)
			}
		}()
		daemonBin = filepath.Join(dir, "atcsimd")
		if out, err := exec.Command(gobin, "build", "-o", daemonBin, ".").CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	}()
	code := m.Run()
	if daemonBin != "" {
		os.RemoveAll(filepath.Dir(daemonBin))
	}
	os.Exit(code)
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	if buildErr != nil {
		t.Skip(buildErr.Error())
	}
	return daemonBin
}

var addrRe = regexp.MustCompile(`msg=listening addr=([0-9.]+:[0-9]+)`)

// daemon is one running atcsimd process under test.
type daemon struct {
	cmd    *exec.Cmd
	addr   string
	stderr *syncBuffer
}

type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startDaemon boots atcsimd on a free port and waits for readiness.
func startDaemon(t *testing.T, bin string, extraArgs ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-scale", "quick", "-jobs", "2"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, stderr: &syncBuffer{}}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	// Read stderr on a goroutine (into the buffer) while scanning for the
	// listening line.
	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			line := sc.Text()
			d.stderr.Write([]byte(line + "\n"))
			select {
			case lines <- line:
			default:
			}
		}
		close(lines)
	}()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("daemon exited before listening:\n%s", d.stderr.String())
			}
			if m := addrRe.FindStringSubmatch(line); m != nil {
				d.addr = m[1]
			}
		case <-deadline:
			t.Fatalf("daemon never printed listening line:\n%s", d.stderr.String())
		}
		if d.addr != "" {
			break
		}
	}
	// Wait for readiness.
	readyDeadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + d.addr + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if time.Now().After(readyDeadline) {
			t.Fatalf("daemon never became ready:\n%s", d.stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// runResponse mirrors simserver.RunResponse for decoding.
type runResponse struct {
	Key    string          `json:"key"`
	Kind   string          `json:"kind"`
	Source string          `json:"source"`
	Result json.RawMessage `json:"result"`
}

func (d *daemon) post(t *testing.T, body string) (int, runResponse) {
	t.Helper()
	resp, err := http.Post("http://"+d.addr+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var rr runResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(payload, &rr); err != nil {
			t.Fatalf("decode %s: %v", payload, err)
		}
	}
	return resp.StatusCode, rr
}

// TestServeRunAndGracefulShutdown boots the daemon, runs one simulation
// twice (computed then shared, byte-identical), then SIGTERMs it and
// asserts a clean drain: exit 0 and the drained log line.
func TestServeRunAndGracefulShutdown(t *testing.T) {
	bin := buildDaemon(t)
	dir := t.TempDir()
	d := startDaemon(t, bin, "-cache-dir", dir)

	const body = `{"workload":"pr","seed":1,"enhancement":"tempo"}`
	status, first := d.post(t, body)
	if status != http.StatusOK {
		t.Fatalf("first run: status %d", status)
	}
	if first.Source != "computed" {
		t.Errorf("first run source = %q, want computed", first.Source)
	}
	status, second := d.post(t, body)
	if status != http.StatusOK {
		t.Fatalf("second run: status %d", status)
	}
	if second.Source != "shared" {
		t.Errorf("second run source = %q, want shared", second.Source)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Error("repeat response not byte-identical")
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Errorf("SIGTERM drain exited non-zero: %v\n%s", err, d.stderr.String())
	}
	logs := d.stderr.String()
	for _, want := range []string{"msg=\"shutting down\"", "signal=terminated", "msg=drained"} {
		if !strings.Contains(logs, want) {
			t.Errorf("drain logs lack %q:\n%s", want, logs)
		}
	}
}

// TestKillAndResumeNoTornEntries is the crash-safety acceptance gate at
// process level: populate the cache, SIGKILL the daemon (no drain at all),
// restart on the same cache directory, and require every result to come
// back from disk byte-identically with zero torn or quarantined entries.
func TestKillAndResumeNoTornEntries(t *testing.T) {
	bin := buildDaemon(t)
	dir := t.TempDir()
	d := startDaemon(t, bin, "-cache-dir", dir)

	bodies := []string{
		`{"workload":"xalancbmk","seed":1}`,
		`{"workload":"mcf","seed":1}`,
		`{"workload":"pr","seed":1,"enhancement":"tempo"}`,
	}
	cold := make(map[string]runResponse)
	for _, body := range bodies {
		status, rr := d.post(t, body)
		if status != http.StatusOK {
			t.Fatalf("cold run %s: status %d", body, status)
		}
		cold[body] = rr
	}

	// SIGKILL: no drain, no cleanup — the crash-safe store must cope.
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()

	if bad, _ := filepath.Glob(filepath.Join(dir, "*.bad")); len(bad) != 0 {
		t.Errorf("quarantine files after SIGKILL: %v", bad)
	}

	d2 := startDaemon(t, bin, "-cache-dir", dir)
	for _, body := range bodies {
		status, warm := d2.post(t, body)
		if status != http.StatusOK {
			t.Fatalf("warm run %s: status %d", body, status)
		}
		if warm.Source != "disk" {
			t.Errorf("warm run %s: source %q, want disk", body, warm.Source)
		}
		if warm.Key != cold[body].Key {
			t.Errorf("warm run %s: key changed %s → %s", body, cold[body].Key, warm.Key)
		}
		if !bytes.Equal(warm.Result, cold[body].Result) {
			t.Errorf("warm run %s: result not byte-identical to pre-kill", body)
		}
	}
	// The restart swept any stale temp files and trusted no torn entry.
	if tmp, _ := filepath.Glob(filepath.Join(dir, "entry-*.tmp")); len(tmp) != 0 {
		t.Errorf("stale temp files after restart: %v", tmp)
	}
	if bad, _ := filepath.Glob(filepath.Join(dir, "*.bad")); len(bad) != 0 {
		t.Errorf("quarantined entries on restart: %v", bad)
	}
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.cmd.Wait(); err != nil {
		t.Errorf("drain after resume exited non-zero: %v\n%s", err, d2.stderr.String())
	}
}

// TestUsageErrors asserts the CLI contract: unknown scale and positional
// arguments are usage errors (exit 2).
func TestUsageErrors(t *testing.T) {
	bin := buildDaemon(t)
	for _, args := range [][]string{
		{"-scale", "warp"},
		{"positional"},
		{"-log-level", "shout"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%v: err = %v, want non-zero exit; output:\n%s", args, err, out)
		}
		if code := ee.ExitCode(); code != 2 {
			t.Errorf("%v: exit code = %d, want 2\n%s", args, code, out)
		}
	}
}
