package atcsim

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden snapshots")

// TestGoldenReports runs one small seeded workload per benchmark family
// (SPEC CPU2017, PARSEC, Ligra) through the full machine at the paper's
// TEMPO enhancement level with invariant auditing enabled, and compares the
// complete stats report byte-for-byte against testdata/golden/. Any
// unintended change to timing, stats plumbing or report formatting shows up
// as a golden diff; intended changes re-snapshot with `go test -update`.
func TestGoldenReports(t *testing.T) {
	families := []struct {
		family, workload string
	}{
		{"spec", "xalancbmk"},
		{"parsec", "canneal"},
		{"ligra", "pr"},
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam.workload, func(t *testing.T) {
			t.Parallel()
			tr, err := NewTrace(fam.workload, 25_000, 1)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Instructions = 20_000
			cfg.Warmup = 5_000
			cfg.Apply(TEMPO)
			cfg.CheckInvariants = true
			res, err := Run(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			WriteReport(&buf, res)

			path := filepath.Join("testdata", "golden", fam.workload+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test -update` to create snapshots)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("report for %s diverged from %s.\ngot:\n%s\nwant:\n%s\n(rerun with -update if the change is intended)",
					fam.workload, path, buf.Bytes(), want)
			}
		})
	}
}

// TestGoldenQueuedReports pins the queued timing engine's report: the same
// workload as the analytic "pr" golden, run with Config.Timing = "queued",
// including the per-level queue backpressure lines. This baseline is set
// deliberately (there is no external reference for queued-mode cycle counts
// or queue occupancies); re-baselining requires `go test -update` plus a
// CHANGES.md note, while the analytic goldens above must stay untouched.
func TestGoldenQueuedReports(t *testing.T) {
	tr, err := NewTrace("pr", 25_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Instructions = 20_000
	cfg.Warmup = 5_000
	cfg.Apply(TEMPO)
	cfg.Timing = TimingQueued
	cfg.CheckInvariants = true
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queues) == 0 {
		t.Fatal("queued run collected no queue statistics")
	}
	var buf bytes.Buffer
	WriteReport(&buf, res)

	path := filepath.Join("testdata", "golden", "pr-queued.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -update` to create snapshots)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("queued report diverged from %s.\ngot:\n%s\nwant:\n%s\n(rerun with -update if the change is intended)",
			path, buf.Bytes(), want)
	}
}

// TestGoldenMechanismReports pins the per-mechanism report sections: the
// victima and revelator lines in WriteReport are baselined deliberately
// (there is no external reference for their exact counts), while the default
// atp mechanism must keep the TestGoldenReports snapshots above untouched.
// Same -update convention as the figure goldens.
func TestGoldenMechanismReports(t *testing.T) {
	for _, mech := range []string{"victima", "revelator"} {
		mech := mech
		t.Run(mech, func(t *testing.T) {
			t.Parallel()
			tr, err := NewTrace("pr", 25_000, 1)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Instructions = 20_000
			cfg.Warmup = 5_000
			cfg.Apply(TEMPO)
			cfg.Mechanism = mech
			cfg.CheckInvariants = true
			res, err := Run(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			WriteReport(&buf, res)

			path := filepath.Join("testdata", "golden", "pr-"+mech+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test -update` to create snapshots)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s report diverged from %s.\ngot:\n%s\nwant:\n%s\n(rerun with -update if the change is intended)",
					mech, path, buf.Bytes(), want)
			}
		})
	}
}
