package atcsim

import (
	"fmt"
	"io"

	"atcsim/internal/cpu"
	"atcsim/internal/mem"
)

// WriteReport writes the human-readable headline report for a run: per-core
// IPC, TLB MPKI, stall attribution and service-level breakdowns, then the
// cache MPKI line, on-chip translation hit rate and DRAM summary. It is the
// report the atcsim command prints, exported so tests can golden-snapshot
// it and library users can render results uniformly. The output is fully
// deterministic for a deterministic Result.
func WriteReport(w io.Writer, res *Result) {
	for i := range res.Cores {
		c := &res.Cores[i]
		fmt.Fprintf(w, "core %d (%s): IPC %.4f over %d cycles\n", i, c.Workload, c.IPC, c.Cycles)
		fmt.Fprintf(w, "  STLB MPKI %.2f (misses %d), DTLB MPKI %.2f\n",
			c.STLBMPKI(), c.MMU.STLBMisses,
			1000*float64(c.MMU.DTLBMisses)/float64(c.Instructions))
		fmt.Fprintf(w, "  ROB head stalls: translation %d, replay %d, non-replay %d cycles\n",
			c.CPU.StallCycles[cpu.StallTranslation],
			c.CPU.StallCycles[cpu.StallReplay],
			c.CPU.StallCycles[cpu.StallNonReplay])
		ls := &c.Walker.LeafService
		fmt.Fprintf(w, "  leaf translations serviced: L1D %.1f%%  L2C %.1f%%  LLC %.1f%%  DRAM %.1f%%\n",
			100*ls.Fraction(mem.LvlL1D), 100*ls.Fraction(mem.LvlL2),
			100*ls.Fraction(mem.LvlLLC), 100*ls.Fraction(mem.LvlDRAM))
		rs := &c.ReplayService
		if rs.Total() > 0 {
			fmt.Fprintf(w, "  replay loads serviced:      L1D %.1f%%  L2C %.1f%%  LLC %.1f%%  DRAM %.1f%%\n",
				100*rs.Fraction(mem.LvlL1D), 100*rs.Fraction(mem.LvlL2),
				100*rs.Fraction(mem.LvlLLC), 100*rs.Fraction(mem.LvlDRAM))
		}
		// Non-default translation mechanisms get their own stats line; the
		// default atp path prints nothing here, keeping legacy reports (and
		// their goldens) byte-identical.
		switch x := &c.Xlat; c.Mechanism {
		case "victima":
			fmt.Fprintf(w, "  victima: cache-TLB hits L2C %d LLC %d of %d STLB misses, blocks parked %d (rejected %d)\n",
				x.CacheHitsL2, x.CacheHitsLLC, x.Requests, x.TLBBlockInserts, x.TLBBlockRejects)
		case "revelator":
			fmt.Fprintf(w, "  revelator: %d speculations of %d STLB misses (%d correct, %d squashed), %d table fills\n",
				x.Speculations, x.Requests, x.SpecCorrect, x.SpecWrong, x.Trainings)
		}
	}
	fmt.Fprintf(w, "caches (MPKI): L1D %.2f | L2 %.2f | LLC %.2f (replay %.2f, leaf-PTE %.2f)\n",
		res.L1DMPKI(mem.ClassNonReplay)+res.L1DMPKI(mem.ClassReplay),
		res.L2MPKI(mem.ClassNonReplay)+res.L2MPKI(mem.ClassReplay),
		res.LLCMPKI(mem.ClassNonReplay)+res.LLCMPKI(mem.ClassReplay),
		res.LLCMPKI(mem.ClassReplay), res.LLCMPKI(mem.ClassTransLeaf))
	fmt.Fprintf(w, "on-chip translation hit rate: %.2f%%\n", 100*res.TranslationHitRate())
	fmt.Fprintf(w, "DRAM: %d reads, %d writes, avg read latency %.0f cycles, TEMPO prefetches %d\n",
		res.DRAM.Reads, res.DRAM.Writes, res.DRAM.AvgReadLatency(), res.DRAM.TEMPOIssued)
	// The queued timing engine gets per-level backpressure lines; analytic
	// runs have no Queues rows and print nothing here, keeping legacy
	// reports (and their goldens) byte-identical.
	for i := range res.Queues {
		q := &res.Queues[i]
		fmt.Fprintf(w, "queues %s: rq_full %d, rq_merged %d, wq_full %d, wq_forward %d, pq_full %d, pq_merged %d, vapq_full %d, mshr_full %d\n",
			q.Name, q.Q.RQFull, q.Q.RQMerged, q.Q.WQFull, q.Q.WQForward,
			q.Q.PQFull, q.Q.PQMerged, q.Q.VAPQFull, q.Q.MSHRFull)
	}
	// The barrier-parallel engine gets one schedule line; serial-scheduler
	// runs have a nil Parallel and print nothing here, keeping legacy reports
	// (and their goldens) byte-identical. Every number is independent of
	// SimJobs, so this line is too.
	if p := res.Parallel; p != nil {
		fmt.Fprintf(w, "parallel: %d rounds, %d waves, %d shared requests, skew %d cycles, %d trace refills\n",
			p.Rounds, p.Waves, p.SharedRequests, p.SkewCycles, p.TraceRefills)
	}
}
