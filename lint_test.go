package atcsim

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"

	"atcsim/internal/metrics"
	"atcsim/internal/simserver"
	"atcsim/internal/system"
	"atcsim/internal/telemetry"
	"atcsim/internal/xlat"
)

// TestLint is the repo's style gate: gofmt must be clean and go vet silent
// across every package. It shells out to the toolchain, so it is skipped
// under -short (and wherever the go tool is unavailable).
func TestLint(t *testing.T) {
	if testing.Short() {
		t.Skip("lint gate skipped in -short mode")
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}

	t.Run("gofmt", func(t *testing.T) {
		out, err := exec.Command(gobin, "run", "cmd/gofmt", "-l", ".").Output()
		if err != nil {
			// cmd/gofmt may be unavailable in trimmed toolchains; fall back
			// to a standalone gofmt binary.
			if path, lookErr := exec.LookPath("gofmt"); lookErr == nil {
				out, err = exec.Command(path, "-l", ".").Output()
			}
			if err != nil {
				t.Skipf("gofmt unavailable: %v", err)
			}
		}
		if files := bytes.TrimSpace(out); len(files) > 0 {
			t.Errorf("gofmt -l flags files:\n%s", files)
		}
	})

	t.Run("vet", func(t *testing.T) {
		cmd := exec.Command(gobin, "vet", "./...")
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = &buf
		if err := cmd.Run(); err != nil {
			t.Errorf("go vet: %v\n%s", err, buf.Bytes())
		}
	})
}

// receiverExported reports whether a method's receiver names an exported
// type (methods on unexported types are not part of the package's godoc
// surface).
func receiverExported(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	typ := fn.Recv.List[0].Type
	for {
		switch u := typ.(type) {
		case *ast.StarExpr:
			typ = u.X
		case *ast.IndexExpr:
			typ = u.X
		case *ast.Ident:
			return u.IsExported()
		default:
			return true
		}
	}
}

// TestGodocCoverage is the documentation gate for the translation stack:
// every exported symbol in internal/xlat, internal/tlb and internal/ptw
// must carry a doc comment. These are the packages docs/TRANSLATION.md
// walks through, so an undocumented export there is a guide with a hole
// in it.
func TestGodocCoverage(t *testing.T) {
	for _, dir := range []string{"internal/xlat", "internal/tlb", "internal/ptw"} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		missing := func(pos token.Pos, kind, name string) {
			p := fset.Position(pos)
			t.Errorf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name)
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					switch d := decl.(type) {
					case *ast.FuncDecl:
						if d.Name.IsExported() && receiverExported(d) && d.Doc == nil {
							missing(d.Pos(), "func", d.Name.Name)
						}
					case *ast.GenDecl:
						if d.Tok == token.IMPORT {
							continue
						}
						for _, spec := range d.Specs {
							switch s := spec.(type) {
							case *ast.TypeSpec:
								if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
									missing(s.Pos(), "type", s.Name.Name)
								}
								// Exported fields of exported structs are
								// part of the surface too.
								if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
									for _, fld := range st.Fields.List {
										for _, n := range fld.Names {
											if n.IsExported() && fld.Doc == nil && fld.Comment == nil {
												missing(n.Pos(), "field", s.Name.Name+"."+n.Name)
											}
										}
									}
								}
							case *ast.ValueSpec:
								for _, n := range s.Names {
									if n.IsExported() && s.Doc == nil && s.Comment == nil && d.Doc == nil {
										missing(n.Pos(), "value", n.Name)
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestTranslationDocCoversMechanisms is the doc-lint half of the mechanism
// registry: docs/TRANSLATION.md must mention every registered mechanism by
// name (registering a fourth mechanism without documenting it fails here),
// and the guide must be reachable from README.md and docs/ARCHITECTURE.md.
func TestTranslationDocCoversMechanisms(t *testing.T) {
	guide, err := os.ReadFile("docs/TRANSLATION.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range xlat.Names() {
		if !bytes.Contains(guide, []byte("`"+name+"`")) {
			t.Errorf("docs/TRANSLATION.md does not document registered mechanism %q", name)
		}
	}
	for _, linker := range []string{"README.md", "docs/ARCHITECTURE.md", "DESIGN.md"} {
		b, err := os.ReadFile(linker)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(b, []byte("TRANSLATION.md")) {
			t.Errorf("%s does not link docs/TRANSLATION.md", linker)
		}
	}
}

// flagDefRe matches flag definitions in the CLI sources; the README tables
// must list exactly these names.
var flagDefRe = regexp.MustCompile(`(?:flag|fs)\.(?:String|Bool|Int|Int64|Float64|Duration)\("([a-z0-9-]+)"`)

// readmeRowRe matches one flag row of a README markdown table.
var readmeRowRe = regexp.MustCompile("(?m)^\\| `-([a-z0-9-]+)` \\|")

// TestREADMEFlagTables diffs the README's per-tool flag tables against the
// flag definitions in the sources, both directions, so the CLI reference
// cannot silently drift again (the -metrics-addr/-metrics-log/-log-level
// trio once existed only in the code).
func TestREADMEFlagTables(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, tool := range []struct{ heading, source string }{
		{"#### `cmd/atcsim` flags", "cmd/atcsim/main.go"},
		{"#### `cmd/figures` flags", "internal/figurescli/figurescli.go"},
		{"#### `cmd/atcsimd` flags", "cmd/atcsimd/main.go"},
	} {
		src, err := os.ReadFile(tool.source)
		if err != nil {
			t.Fatal(err)
		}
		inCode := map[string]bool{}
		for _, m := range flagDefRe.FindAllSubmatch(src, -1) {
			inCode[string(m[1])] = true
		}
		if len(inCode) == 0 {
			t.Fatalf("no flag definitions found in %s — regex drift?", tool.source)
		}

		start := bytes.Index(readme, []byte(tool.heading))
		if start < 0 {
			t.Errorf("README.md lacks a %q section", tool.heading)
			continue
		}
		section := readme[start+len(tool.heading):]
		if end := bytes.Index(section, []byte("\n#### ")); end >= 0 {
			section = section[:end]
		}
		if end := bytes.Index(section, []byte("\n### ")); end >= 0 {
			section = section[:end]
		}
		inTable := map[string]bool{}
		for _, m := range readmeRowRe.FindAllSubmatch(section, -1) {
			inTable[string(m[1])] = true
		}
		for name := range inCode {
			if !inTable[name] {
				t.Errorf("%s defines -%s but the README %s table does not list it", tool.source, name, tool.heading)
			}
		}
		for name := range inTable {
			if !inCode[name] {
				t.Errorf("README %s table lists -%s but %s does not define it", tool.heading, name, tool.source)
			}
		}
	}
}

// TestUsageDocMentionsFlags keeps each command's package doc comment honest:
// the prose usage examples must only reference flags that exist (catching
// the stale-usage drift this repo once shipped), and key observability
// flags must be shown somewhere in the examples.
func TestUsageDocMentionsFlags(t *testing.T) {
	for _, tool := range []struct {
		docFile, source string
		mustShow        []string
	}{
		{"cmd/atcsim/main.go", "cmd/atcsim/main.go",
			[]string{"-mechanism", "-timing", "-metrics-addr", "-metrics-log", "-trace-out"}},
		{"cmd/figures/main.go", "internal/figurescli/figurescli.go",
			[]string{"-list-mechanisms", "-timing", "-metrics-addr", "-log-level", "-flight-recorder"}},
		{"cmd/atcsimd/main.go", "cmd/atcsimd/main.go",
			[]string{"-admit-rate", "-admit-queue", "-breaker-cooldown", "-drain-grace", "-flight-recorder"}},
	} {
		src, err := os.ReadFile(tool.source)
		if err != nil {
			t.Fatal(err)
		}
		defined := map[string]bool{}
		for _, m := range flagDefRe.FindAllSubmatch(src, -1) {
			defined[string(m[1])] = true
		}

		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, tool.docFile, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		if f.Doc == nil {
			t.Errorf("%s has no package doc comment", tool.docFile)
			continue
		}
		doc := f.Doc.Text()
		// Only dashes that start a word are flag references; hyphenated
		// prose ("trace-event", "in-flight") must not match.
		for _, m := range regexp.MustCompile("(?:^|[\\s(`])-([a-z][a-z0-9-]+)\\b").FindAllStringSubmatch(doc, -1) {
			if name := m[1]; !defined[name] {
				t.Errorf("%s package doc mentions -%s, which %s does not define",
					tool.docFile, name, tool.source)
			}
		}
		for _, want := range tool.mustShow {
			if !strings.Contains(doc, want) {
				t.Errorf("%s package doc never shows %s", tool.docFile, want)
			}
		}
	}
}

// TestServiceDocCoverage is the doc-lint half of the sweep service:
// docs/SERVICE.md must mention every route the server actually mounts and
// every simserver_* metric family it registers (adding an endpoint or a
// series without documenting it fails here), and the service guide must be
// reachable from README.md, EXPERIMENTS.md and DESIGN.md.
func TestServiceDocCoverage(t *testing.T) {
	guide, err := os.ReadFile("docs/SERVICE.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, route := range simserver.Routes() {
		if !bytes.Contains(guide, []byte("`"+route+"`")) {
			t.Errorf("docs/SERVICE.md does not document route %q", route)
		}
	}
	for _, family := range simserver.MetricFamilies() {
		if !bytes.Contains(guide, []byte("`"+family+"`")) {
			t.Errorf("docs/SERVICE.md does not document metric family %q", family)
		}
	}
	for _, linker := range []string{"README.md", "EXPERIMENTS.md", "DESIGN.md"} {
		b, err := os.ReadFile(linker)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(b, []byte("SERVICE.md")) {
			t.Errorf("%s does not link docs/SERVICE.md", linker)
		}
	}
}

// TestOpenMetricsExposition is the observability gate: the full production
// series set — everything the engine registers when a sweep runs with
// -metrics-addr — must render as lint-clean OpenMetrics text. It builds the
// same registry surface the experiment runner wires up, without running any
// simulation.
func TestOpenMetricsExposition(t *testing.T) {
	reg := metrics.New()
	new(telemetry.Health).RegisterMetrics(reg)
	system.NewMetricsSink(reg)
	telemetry.NewSnapshotGauges(reg)
	metrics.NewRunTable().Register(reg)
	metrics.NewFlightRecorder(0).Register(reg)

	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if issues := metrics.Lint(buf.Bytes()); len(issues) > 0 {
		t.Errorf("exposition does not lint clean:\n%s", strings.Join(issues, "\n"))
	}
	if n := reg.Len(); n < 25 {
		t.Errorf("full registry has %d series, want >= 25", n)
	}
}
