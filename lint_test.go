package atcsim

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"

	"atcsim/internal/metrics"
	"atcsim/internal/system"
	"atcsim/internal/telemetry"
)

// TestLint is the repo's style gate: gofmt must be clean and go vet silent
// across every package. It shells out to the toolchain, so it is skipped
// under -short (and wherever the go tool is unavailable).
func TestLint(t *testing.T) {
	if testing.Short() {
		t.Skip("lint gate skipped in -short mode")
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}

	t.Run("gofmt", func(t *testing.T) {
		out, err := exec.Command(gobin, "run", "cmd/gofmt", "-l", ".").Output()
		if err != nil {
			// cmd/gofmt may be unavailable in trimmed toolchains; fall back
			// to a standalone gofmt binary.
			if path, lookErr := exec.LookPath("gofmt"); lookErr == nil {
				out, err = exec.Command(path, "-l", ".").Output()
			}
			if err != nil {
				t.Skipf("gofmt unavailable: %v", err)
			}
		}
		if files := bytes.TrimSpace(out); len(files) > 0 {
			t.Errorf("gofmt -l flags files:\n%s", files)
		}
	})

	t.Run("vet", func(t *testing.T) {
		cmd := exec.Command(gobin, "vet", "./...")
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = &buf
		if err := cmd.Run(); err != nil {
			t.Errorf("go vet: %v\n%s", err, buf.Bytes())
		}
	})
}

// TestOpenMetricsExposition is the observability gate: the full production
// series set — everything the engine registers when a sweep runs with
// -metrics-addr — must render as lint-clean OpenMetrics text. It builds the
// same registry surface the experiment runner wires up, without running any
// simulation.
func TestOpenMetricsExposition(t *testing.T) {
	reg := metrics.New()
	new(telemetry.Health).RegisterMetrics(reg)
	system.NewMetricsSink(reg)
	telemetry.NewSnapshotGauges(reg)
	metrics.NewRunTable().Register(reg)
	metrics.NewFlightRecorder(0).Register(reg)

	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if issues := metrics.Lint(buf.Bytes()); len(issues) > 0 {
		t.Errorf("exposition does not lint clean:\n%s", strings.Join(issues, "\n"))
	}
	if n := reg.Len(); n < 25 {
		t.Errorf("full registry has %d series, want >= 25", n)
	}
}
