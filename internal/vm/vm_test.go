package vm

import (
	"testing"
	"testing/quick"

	"atcsim/internal/mem"
)

func newPT(t *testing.T, scatter bool) *PageTable {
	t.Helper()
	a, err := NewFrameAllocator(30, scatter) // 1GB
	if err != nil {
		t.Fatal(err)
	}
	pt, err := NewPageTable(a)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestAllocatorValidation(t *testing.T) {
	if _, err := NewFrameAllocator(10, false); err == nil {
		t.Error("tiny physBits accepted")
	}
	if _, err := NewFrameAllocator(60, false); err == nil {
		t.Error("huge physBits accepted")
	}
}

func TestAllocDataUnique(t *testing.T) {
	for _, scatter := range []bool{false, true} {
		a, _ := NewFrameAllocator(26, scatter) // 64MB → 16K frames
		seen := map[mem.Addr]bool{}
		for i := 0; i < 10000; i++ {
			f, err := a.AllocData()
			if err != nil {
				t.Fatalf("scatter=%v alloc %d: %v", scatter, i, err)
			}
			if f%mem.PageSize != 0 {
				t.Fatalf("frame %#x not page aligned", f)
			}
			if seen[f] {
				t.Fatalf("scatter=%v duplicate frame %#x", scatter, f)
			}
			seen[f] = true
		}
		if a.Allocated() != 10000 {
			t.Errorf("Allocated = %d", a.Allocated())
		}
	}
}

func TestScatterActuallyScatters(t *testing.T) {
	a, _ := NewFrameAllocator(30, true)
	f0, _ := a.AllocData()
	f1, _ := a.AllocData()
	if f1 == f0+mem.PageSize {
		t.Error("scatter allocator returned contiguous frames")
	}
}

func TestPTRegionDisjointFromData(t *testing.T) {
	a, _ := NewFrameAllocator(26, true)
	dataMax := mem.Addr(a.maxData) << mem.PageBits
	for i := 0; i < 100; i++ {
		f, err := a.AllocPT()
		if err != nil {
			t.Fatal(err)
		}
		if f < dataMax {
			t.Fatalf("PT frame %#x inside data region", f)
		}
	}
	for i := 0; i < 100; i++ {
		f, _ := a.AllocData()
		if f >= dataMax {
			t.Fatalf("data frame %#x inside PT region", f)
		}
	}
}

func TestTranslateStable(t *testing.T) {
	pt := newPT(t, true)
	va := mem.Addr(0x12345678)
	p1, err := pt.Translate(va)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := pt.Translate(va)
	if p1 != p2 {
		t.Errorf("translation changed: %#x -> %#x", p1, p2)
	}
	if mem.PageOffset(p1) != mem.PageOffset(va) {
		t.Errorf("page offset not preserved: %#x vs %#x", p1, va)
	}
	// Same page, different offset: same frame.
	p3, _ := pt.Translate(mem.PageBase(va) + 7)
	if mem.PageBase(p3) != mem.PageBase(p1) {
		t.Error("same-page translation moved frames")
	}
	if pt.MappedPages() != 1 {
		t.Errorf("MappedPages = %d", pt.MappedPages())
	}
}

func TestDistinctPagesDistinctFrames(t *testing.T) {
	pt := newPT(t, true)
	f := func(a, b uint32) bool {
		va, vb := mem.Addr(a)<<mem.PageBits, mem.Addr(b)<<mem.PageBits
		pa, err1 := pt.Translate(va)
		pb, err2 := pt.Translate(vb)
		if err1 != nil || err2 != nil {
			return false
		}
		if va == vb {
			return pa == pb
		}
		return mem.PageBase(pa) != mem.PageBase(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWalkFullDepth(t *testing.T) {
	pt := newPT(t, false)
	va := mem.Addr(0x5555_4444_3333)
	steps, pa, err := pt.Walk(va, mem.PTLevels)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 5 {
		t.Fatalf("steps = %d, want 5", len(steps))
	}
	for i, s := range steps {
		if s.Level != 5-i {
			t.Errorf("step %d level = %d", i, s.Level)
		}
		if s.PTEAddr%mem.PTESize != 0 {
			t.Errorf("PTE addr %#x not 8B aligned", s.PTEAddr)
		}
	}
	want, _ := pt.Translate(va)
	if pa != want {
		t.Errorf("walk PA %#x != translate PA %#x", pa, want)
	}
}

func TestWalkTrimmedByStartLevel(t *testing.T) {
	pt := newPT(t, false)
	va := mem.Addr(0x1234_5000)
	for start := 1; start <= mem.PTLevels; start++ {
		steps, _, err := pt.Walk(va, start)
		if err != nil {
			t.Fatal(err)
		}
		if len(steps) != start {
			t.Errorf("start %d: %d steps", start, len(steps))
		}
		if steps[0].Level != start || steps[len(steps)-1].Level != 1 {
			t.Errorf("start %d: levels %v", start, steps)
		}
	}
	if _, _, err := pt.Walk(va, 0); err == nil {
		t.Error("start level 0 accepted")
	}
	if _, _, err := pt.Walk(va, 6); err == nil {
		t.Error("start level 6 accepted")
	}
}

func TestWalkDeterministic(t *testing.T) {
	pt := newPT(t, false)
	va := mem.Addr(0x9999_0000)
	s1, _, _ := pt.Walk(va, 5)
	s2, _, _ := pt.Walk(va, 5)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("walk not deterministic at step %d", i)
		}
	}
}

func TestNeighbourPTEsShareLine(t *testing.T) {
	// Eight virtually consecutive pages share one leaf-PTE cache line —
	// the property the paper's caching of translations relies on.
	pt := newPT(t, true)
	base := mem.Addr(0x4000_0000)
	var firstLine mem.Addr
	for i := 0; i < 8; i++ {
		steps, _, err := pt.Walk(base+mem.Addr(i)*mem.PageSize, 1)
		if err != nil {
			t.Fatal(err)
		}
		leaf := steps[len(steps)-1]
		if i == 0 {
			firstLine = mem.LineAddr(leaf.PTEAddr)
		} else if mem.LineAddr(leaf.PTEAddr) != firstLine {
			t.Fatalf("page %d leaf PTE on different line", i)
		}
	}
	// Page 8 must be on the next line (alignment means base%8pages==0).
	steps, _, _ := pt.Walk(base+8*mem.PageSize, 1)
	if mem.LineAddr(steps[len(steps)-1].PTEAddr) == firstLine {
		t.Error("9th page shares the first PTE line")
	}
}

func TestNodeFrame(t *testing.T) {
	pt := newPT(t, false)
	va := mem.Addr(0x7777_0000)
	if _, ok := pt.NodeFrame(va, 2); ok {
		t.Error("NodeFrame before mapping should miss")
	}
	pt.Translate(va)
	for k := 2; k <= mem.PTLevels; k++ {
		frame, ok := pt.NodeFrame(va, k)
		if !ok {
			t.Fatalf("NodeFrame(%d) missing after mapping", k)
		}
		if frame%mem.PageSize != 0 {
			t.Errorf("NodeFrame(%d) = %#x not aligned", k, frame)
		}
	}
	if _, ok := pt.NodeFrame(va, 1); ok {
		t.Error("NodeFrame(1) should be invalid")
	}
	if _, ok := pt.NodeFrame(va, 6); ok {
		t.Error("NodeFrame(6) should be invalid")
	}
	// The PSCL2 target (level-1 table frame) must contain the leaf PTE.
	frame, _ := pt.NodeFrame(va, 2)
	steps, _, _ := pt.Walk(va, 1)
	leaf := steps[0]
	if leaf.PTEAddr < frame || leaf.PTEAddr >= frame+mem.PageSize {
		t.Errorf("leaf PTE %#x outside level-1 table %#x", leaf.PTEAddr, frame)
	}
}

func TestPageTableNilAllocator(t *testing.T) {
	if _, err := NewPageTable(nil); err == nil {
		t.Error("nil allocator accepted")
	}
}

func TestHugePageMapping(t *testing.T) {
	pt := newPT(t, true)
	if err := pt.SetHugePages(true); err != nil {
		t.Fatal(err)
	}
	if !pt.HugePages() {
		t.Fatal("huge mode not set")
	}
	va := mem.Addr(0x4000_1234)
	pa, err := pt.Translate(va)
	if err != nil {
		t.Fatal(err)
	}
	// The 2MB offset must be preserved and the frame 2MB-aligned.
	if pa&(mem.HugePageSize-1) != va&(mem.HugePageSize-1) {
		t.Errorf("huge offset not preserved: va=%#x pa=%#x", va, pa)
	}
	if mem.HugePageBase(pa)&(mem.HugePageSize-1) != 0 {
		t.Error("huge frame not 2MB aligned")
	}
	// Two addresses in the same 2MB region share a frame.
	pa2, _ := pt.Translate(va + 0x100_000)
	if mem.HugePageBase(pa2) != mem.HugePageBase(pa) {
		t.Error("same 2MB region split across frames")
	}
	// A different 2MB region gets a different frame.
	pa3, _ := pt.Translate(va + mem.HugePageSize)
	if mem.HugePageBase(pa3) == mem.HugePageBase(pa) {
		t.Error("distinct 2MB regions share a frame")
	}
}

func TestHugeWalkStopsAtLevel2(t *testing.T) {
	pt := newPT(t, false)
	pt.SetHugePages(true)
	steps, pa, err := pt.Walk(0x7000_0000, mem.PTLevels)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 4 {
		t.Fatalf("huge walk steps = %d, want 4", len(steps))
	}
	last := steps[len(steps)-1]
	if last.Level != 2 || !last.Leaf {
		t.Errorf("huge leaf step = %+v", last)
	}
	for _, s := range steps[:len(steps)-1] {
		if s.Leaf {
			t.Errorf("non-final step marked leaf: %+v", s)
		}
	}
	want, _ := pt.Translate(0x7000_0000)
	if pa != want {
		t.Errorf("walk PA %#x != translate %#x", pa, want)
	}
	// NodeFrame is invalid at level 2 in huge mode (no level-1 tables).
	if _, ok := pt.NodeFrame(0x7000_0000, 2); ok {
		t.Error("NodeFrame(2) valid in huge mode")
	}
	if _, ok := pt.NodeFrame(0x7000_0000, 3); !ok {
		t.Error("NodeFrame(3) missing in huge mode")
	}
}

func TestSetHugePagesAfterMappingFails(t *testing.T) {
	pt := newPT(t, false)
	pt.Translate(0x1000)
	if err := pt.SetHugePages(true); err == nil {
		t.Error("SetHugePages after mapping accepted")
	}
}

func TestHugeFramesDisjointFrom4K(t *testing.T) {
	a, _ := NewFrameAllocator(28, true)
	seen := map[mem.Addr]bool{}
	var smalls []mem.Addr
	for i := 0; i < 100; i++ {
		f, err := a.AllocData()
		if err != nil {
			t.Fatal(err)
		}
		smalls = append(smalls, f)
		seen[f] = true
	}
	for i := 0; i < 10; i++ {
		h, err := a.AllocHugeData()
		if err != nil {
			t.Fatal(err)
		}
		if h%mem.HugePageSize != 0 {
			t.Fatalf("huge frame %#x not aligned", h)
		}
		for _, s := range smalls {
			if s >= h && s < h+mem.HugePageSize {
				t.Fatalf("4K frame %#x inside huge frame %#x", s, h)
			}
		}
	}
}
