// Package vm models the operating system's memory management as seen by the
// hardware: a physical frame allocator and a five-level radix page table
// whose page-table entries live at real physical addresses (eight 8-byte
// PTEs per 64-byte cache line). The page-table walker in internal/ptw reads
// those PTE lines through the data-cache hierarchy, which is what lets the
// caches compete translations against data — the paper's central tension.
package vm

import (
	"fmt"

	"atcsim/internal/mem"
)

// FrameAllocator hands out physical page frames. Data frames are scattered
// across the physical space with a multiplicative permutation — a
// deterministic stand-in for the pseudo-random frame assignment of a
// long-running OS — so that virtually contiguous pages do not enjoy
// artificial DRAM row or cache set locality. 2MB huge frames come from a
// disjoint contiguous region, and page-table frames from a third, which
// matches the clustered kernel allocations real systems see.
type FrameAllocator struct {
	physBits   int
	nextData   uint64
	nextPT     uint64
	nextHuge   uint64 // huge frames allocated so far
	hugeBase   uint64 // first frame of the huge region
	hugeTop    uint64 // frame bound of the huge region
	maxData    uint64
	maxPT      uint64
	ptBase     uint64 // frame number where the page-table region starts
	scatter    bool
	frameCount uint64
	mult       uint64
}

// NewFrameAllocator creates an allocator managing 2^physBits bytes of
// physical memory. The top 1/8 of frames is reserved for page tables.
// Scatter enables the permutation for 4KB data frames.
func NewFrameAllocator(physBits int, scatter bool) (*FrameAllocator, error) {
	if physBits < 22 || physBits > 48 {
		return nil, fmt.Errorf("vm: physBits %d out of range [22,48]", physBits)
	}
	frames := uint64(1) << (physBits - mem.PageBits)
	dataRegion := frames - frames/8
	a := &FrameAllocator{
		physBits: physBits,
		// The data region is split statically: 4KB frames scatter over the
		// lower three quarters, 2MB huge frames are carved contiguously
		// from the upper quarter, so the two kinds can never collide.
		maxData:  dataRegion * 3 / 4,
		hugeBase: (dataRegion*3/4 + framesPerHuge - 1) &^ (framesPerHuge - 1),
		hugeTop:  dataRegion &^ (framesPerHuge - 1),
		ptBase:   frames - frames/8,
		maxPT:    frames / 8,
		scatter:  scatter,
	}
	// Pick a multiplier coprime with the 4KB-frame count so that
	// fn -> fn*mult mod maxData is a permutation.
	a.mult = 2654435761 % a.maxData
	for gcd(a.mult, a.maxData) != 1 {
		a.mult++
	}
	return a, nil
}

func gcd(x, y uint64) uint64 {
	for y != 0 {
		x, y = y, x%y
	}
	return x
}

// AllocData returns the base physical address of a fresh data frame.
func (a *FrameAllocator) AllocData() (mem.Addr, error) {
	if a.nextData >= a.maxData {
		return 0, fmt.Errorf("vm: out of data frames (%d allocated)", a.nextData)
	}
	fn := a.nextData
	a.nextData++
	a.frameCount++
	if a.scatter {
		// Multiplicative permutation: injective, deterministic, and spreads
		// consecutive allocations across the physical space the way a
		// long-running OS's free list would.
		fn = fn * a.mult % a.maxData
	}
	return mem.Addr(fn) << mem.PageBits, nil
}

// AllocPT returns the base physical address of a fresh page-table frame.
func (a *FrameAllocator) AllocPT() (mem.Addr, error) {
	if a.nextPT >= a.maxPT {
		return 0, fmt.Errorf("vm: out of page-table frames (%d allocated)", a.nextPT)
	}
	fn := a.ptBase + a.nextPT
	a.nextPT++
	a.frameCount++
	return mem.Addr(fn) << mem.PageBits, nil
}

// framesPerHuge is the number of 4KB frames in one 2MB huge frame.
const framesPerHuge = mem.HugePageSize / mem.PageSize

// AllocHugeData returns the base physical address of a fresh 2MB-aligned
// huge frame, carved contiguously from the huge region (huge pages are
// physically contiguous by definition, so the scatter model does not
// apply).
func (a *FrameAllocator) AllocHugeData() (mem.Addr, error) {
	base := a.hugeBase + a.nextHuge
	if base+framesPerHuge > a.hugeTop {
		return 0, fmt.Errorf("vm: out of huge frames (%d allocated)", a.nextHuge/framesPerHuge)
	}
	a.nextHuge += framesPerHuge
	a.frameCount += framesPerHuge
	return mem.Addr(base) << mem.PageBits, nil
}

// Allocated returns the total number of frames handed out.
func (a *FrameAllocator) Allocated() uint64 { return a.frameCount }

// node is one page-table page: 512 slots that either point at a child node
// (levels 5..2) or hold a leaf translation (level 1).
type node struct {
	frame    mem.Addr // physical base address of this table page
	children map[uint16]*node
	leaves   map[uint16]mem.Addr // leaf level: slot -> data frame base
}

// WalkStep describes one level of a page-table walk: the physical address of
// the PTE the hardware walker must read and the level it belongs to.
type WalkStep struct {
	Level   int      // 5 (root) down to the leaf level
	PTEAddr mem.Addr // physical byte address of the 8-byte PTE
	Leaf    bool     // true on the step that yields the physical frame
}

// PageTable is a five-level radix page table with demand paging: the first
// touch of a virtual page allocates its data frame and any missing interior
// table pages. With huge pages enabled, leaves live at level 2 and map 2MB
// frames (transparent huge pages, always-on).
type PageTable struct {
	alloc *FrameAllocator
	root  *node
	pages uint64
	huge  bool
}

// NewPageTable creates an empty table backed by the allocator.
func NewPageTable(alloc *FrameAllocator) (*PageTable, error) {
	if alloc == nil {
		return nil, fmt.Errorf("vm: nil allocator")
	}
	rootFrame, err := alloc.AllocPT()
	if err != nil {
		return nil, err
	}
	return &PageTable{
		alloc: alloc,
		root:  &node{frame: rootFrame, children: make(map[uint16]*node)},
	}, nil
}

// SetHugePages switches the table to 2MB mappings. It must be called before
// the first translation; afterwards it returns an error.
func (pt *PageTable) SetHugePages(on bool) error {
	if pt.pages > 0 {
		return fmt.Errorf("vm: cannot change page size after %d mappings", pt.pages)
	}
	pt.huge = on
	return nil
}

// HugePages reports whether the table maps 2MB pages.
func (pt *PageTable) HugePages() bool { return pt.huge }

// leafLevel is the page-table level whose entries hold physical frames.
func (pt *PageTable) leafLevel() int {
	if pt.huge {
		return 2
	}
	return 1
}

// pageMask is the offset mask of the mapped page size.
func (pt *PageTable) pageMask() mem.Addr {
	if pt.huge {
		return mem.HugePageSize - 1
	}
	return mem.PageSize - 1
}

// MappedPages returns the number of virtual pages mapped so far.
func (pt *PageTable) MappedPages() uint64 { return pt.pages }

// pteAddr computes the physical address of slot idx within a table page.
func pteAddr(n *node, idx uint16) mem.Addr {
	return n.frame + mem.Addr(idx)*mem.PTESize
}

// Translate maps a virtual address to its physical address, allocating the
// page (and any interior tables) on first touch.
func (pt *PageTable) Translate(va mem.Addr) (mem.Addr, error) {
	frame, err := pt.frameOf(va)
	if err != nil {
		return 0, err
	}
	return frame | va&pt.pageMask(), nil
}

// frameOf returns the data frame base for va's page (4KB or 2MB).
func (pt *PageTable) frameOf(va mem.Addr) (mem.Addr, error) {
	leaf := pt.leafLevel()
	n := pt.root
	for level := mem.PTLevels; level > leaf; level-- {
		idx := uint16(mem.VPNChunk(va, level))
		child, ok := n.children[idx]
		if !ok {
			frame, err := pt.alloc.AllocPT()
			if err != nil {
				return 0, err
			}
			child = &node{frame: frame}
			if level > leaf+1 {
				child.children = make(map[uint16]*node)
			} else {
				child.leaves = make(map[uint16]mem.Addr)
			}
			n.children[idx] = child
		}
		n = child
	}
	idx := uint16(mem.VPNChunk(va, leaf))
	frame, ok := n.leaves[idx]
	if !ok {
		var err error
		if pt.huge {
			frame, err = pt.alloc.AllocHugeData()
		} else {
			frame, err = pt.alloc.AllocData()
		}
		if err != nil {
			return 0, err
		}
		n.leaves[idx] = frame
		pt.pages++
	}
	return frame, nil
}

// Walk returns the five PTE reads a hardware walker performs for va, from
// the root (level 5) down to the leaf (level 1), allocating the mapping on
// first touch. startLevel trims the walk for paging-structure-cache hits:
// only steps with Level <= startLevel are returned.
func (pt *PageTable) Walk(va mem.Addr, startLevel int) ([]WalkStep, mem.Addr, error) {
	return pt.WalkInto(va, startLevel, nil)
}

// WalkInto is Walk with a caller-provided scratch buffer: steps are appended
// to buf (normally buf[:0] of a reused slice), so steady-state walks do not
// allocate. The returned slice aliases buf's backing array when it fits.
func (pt *PageTable) WalkInto(va mem.Addr, startLevel int, buf []WalkStep) ([]WalkStep, mem.Addr, error) {
	if startLevel < 1 || startLevel > mem.PTLevels {
		return nil, 0, fmt.Errorf("vm: bad start level %d", startLevel)
	}
	// Ensure the mapping exists (demand paging).
	frame, err := pt.frameOf(va)
	if err != nil {
		return nil, 0, err
	}
	leaf := pt.leafLevel()
	steps := buf
	n := pt.root
	for level := mem.PTLevels; level > leaf; level-- {
		idx := uint16(mem.VPNChunk(va, level))
		if level <= startLevel {
			steps = append(steps, WalkStep{Level: level, PTEAddr: pteAddr(n, idx)})
		}
		n = n.children[idx]
	}
	idx := uint16(mem.VPNChunk(va, leaf))
	steps = append(steps, WalkStep{Level: leaf, PTEAddr: pteAddr(n, idx), Leaf: true})
	return steps, frame | va&pt.pageMask(), nil
}

// NodeFrame returns the physical base address of the table page that a
// walker starting below level k would consult, i.e. the level-(k-1) table
// for va. It is what a paging-structure-cache entry at level k stores.
// k must be in [leafLevel+1, PTLevels]; the mapping must already exist.
func (pt *PageTable) NodeFrame(va mem.Addr, k int) (mem.Addr, bool) {
	if k <= pt.leafLevel() || k > mem.PTLevels {
		return 0, false
	}
	n := pt.root
	for level := mem.PTLevels; level >= k; level-- {
		idx := uint16(mem.VPNChunk(va, level))
		child, ok := n.children[idx]
		if !ok {
			return 0, false
		}
		n = child
	}
	return n.frame, true
}
