package dram

import (
	"testing"
	"testing/quick"

	"atcsim/internal/mem"
)

func load(addr mem.Addr) *mem.Request {
	return &mem.Request{Addr: addr, Kind: mem.Load}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	c := New(DefaultConfig())
	// First access to a closed bank.
	t0 := c.Read(load(0), 0)
	// Same row, later: row hit, should be cheaper.
	t1 := c.Read(load(64), t0)
	hitLat := t1 - t0
	// Different row, same bank: compute the bank for line 0 and find a
	// conflicting line.
	cfg := DefaultConfig()
	rowLines := mem.Addr(1) << uint(cfg.RowBits-mem.LineBits)
	var conflict mem.Addr
	for i := mem.Addr(1); i < 4096; i++ {
		cand := i * rowLines * 64
		if c.bankOf(mem.LineAddr(cand)) == c.bankOf(0) && c.rowOf(mem.LineAddr(cand)) != c.rowOf(0) {
			conflict = cand
			break
		}
	}
	if conflict == 0 {
		t.Fatal("could not find conflicting row")
	}
	t2 := c.Read(load(conflict), t1)
	missLat := t2 - t1
	if hitLat >= missLat {
		t.Errorf("row hit latency %d should be < conflict latency %d", hitLat, missLat)
	}
	st := c.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 || st.RowClosed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMinLatency(t *testing.T) {
	c := New(DefaultConfig())
	// Open the row first.
	done := c.Read(load(0), 0)
	lat := c.Read(load(64), done+1000) - (done + 1000)
	if lat != c.MinLatency() {
		t.Errorf("row-hit idle latency = %d, want MinLatency %d", lat, c.MinLatency())
	}
}

func TestBusContentionThrottles(t *testing.T) {
	c := New(DefaultConfig())
	// Issue many reads at the same cycle to different banks: bus capacity
	// per bucket is bounded, so later bursts are pushed into later buckets.
	var first, last int64
	for i := 0; i < 40; i++ {
		done := c.Read(load(mem.Addr(i)*1<<20), 0)
		if i == 0 {
			first = done
		}
		if done > last {
			last = done
		}
	}
	if last < first+64 {
		t.Errorf("40 simultaneous bursts finished within [%d,%d] — no bus throttling", first, last)
	}
}

func TestFutureWriteDoesNotDelayEarlierRead(t *testing.T) {
	// Regression test: writebacks are posted at fill times far in the
	// future; they must never delay a read issued at an earlier cycle.
	cfg := DefaultConfig()
	ref := New(cfg)
	refDone := ref.Read(load(0x100000), 1000)

	c := New(cfg)
	for i := 0; i < 64; i++ {
		c.Write(mem.Addr(0x400000)+mem.Addr(i)*64, 1_000_000) // far future
	}
	done := c.Read(load(0x100000), 1000)
	if done != refDone {
		t.Errorf("read after future writes done at %d, want %d", done, refDone)
	}
}

func TestBankContentionThrottles(t *testing.T) {
	c := New(DefaultConfig())
	// Hammer one bank with row conflicts: throughput must be bounded.
	target := mem.Addr(0)
	rowLines := mem.Addr(1) << uint(DefaultConfig().RowBits-mem.LineBits)
	// Find several addresses mapping to bank 0 in different rows.
	var addrs []mem.Addr
	for i := mem.Addr(0); len(addrs) < 10 && i < 1<<20; i++ {
		cand := i * rowLines * 64
		if c.bankOf(mem.LineAddr(cand)) == c.bankOf(target) {
			addrs = append(addrs, cand)
		}
	}
	var last int64
	for _, a := range addrs {
		if done := c.Read(load(a), 0); done > last {
			last = done
		}
	}
	if last < 500 {
		t.Errorf("10 same-bank conflicting reads done by %d — no bank throttling", last)
	}
}

func TestAvgReadLatency(t *testing.T) {
	c := New(DefaultConfig())
	c.Read(load(0), 0)
	st := c.Stats()
	if st.AvgReadLatency() <= 0 || st.ReadLatencyMax == 0 {
		t.Errorf("latency stats not recorded: %+v", st)
	}
}

func TestMonotoneCompletion(t *testing.T) {
	// Property: completion is always at least cycle + controller + hit + burst.
	cfg := DefaultConfig()
	c := New(cfg)
	f := func(raw uint32, dc uint16) bool {
		cycle := int64(dc)
		done := c.Read(load(mem.Addr(raw)<<6), cycle)
		return done >= cycle+cfg.TController+cfg.TRowHit+cfg.TBurst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTEMPOHook(t *testing.T) {
	c := New(DefaultConfig())
	var gotLine mem.Addr
	var gotCycle int64
	c.TEMPO = func(line mem.Addr, cycle int64) { gotLine, gotCycle = line, cycle }

	// Non-leaf read: no TEMPO.
	c.Read(&mem.Request{Addr: 0x1000, Kind: mem.Translation, Level: 2, ReplayTarget: 0x9000}, 0)
	if gotLine != 0 {
		t.Fatal("TEMPO fired for non-leaf translation")
	}
	// Leaf read without target: no TEMPO.
	c.Read(&mem.Request{Addr: 0x2000, Kind: mem.Translation, Level: 1, Leaf: true}, 0)
	if gotLine != 0 {
		t.Fatal("TEMPO fired without replay target")
	}
	// Leaf read with target: TEMPO fires at the PTE delivery cycle.
	done := c.Read(&mem.Request{Addr: 0x3000, Kind: mem.Translation, Level: 1, Leaf: true, ReplayTarget: 0x9040}, 0)
	if gotLine != mem.LineAddr(0x9040) {
		t.Errorf("TEMPO line = %#x", gotLine)
	}
	if gotCycle != done {
		t.Errorf("TEMPO cycle = %d, want %d", gotCycle, done)
	}
	if c.Stats().TEMPOIssued != 1 {
		t.Errorf("TEMPOIssued = %d", c.Stats().TEMPOIssued)
	}
}

func TestWritesOccupyBus(t *testing.T) {
	c := New(DefaultConfig())
	before := c.Stats().BusyCycles
	c.Write(0x4000, 0)
	st := c.Stats()
	if st.Writes != 1 {
		t.Errorf("writes = %d", st.Writes)
	}
	if st.BusyCycles <= before {
		t.Error("write did not occupy the bus")
	}
	// A read right after the write should see bus pressure: issue read to a
	// different bank at cycle 0 and confirm it completes after the write's burst.
	done := c.Read(load(0x100000), 0)
	if done <= c.MinLatency() {
		t.Errorf("read completed at %d despite bus occupied", done)
	}
}

func TestResetStats(t *testing.T) {
	c := New(DefaultConfig())
	c.Read(load(0), 0)
	c.ResetStats()
	if c.Stats().Reads != 0 {
		t.Error("ResetStats did not clear reads")
	}
}

func TestZeroConfigFallsBack(t *testing.T) {
	c := New(Config{})
	if c.MinLatency() <= 0 {
		t.Error("zero config did not fall back to defaults")
	}
}

func TestControllerInterleavesChannels(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 2
	ctl := NewController(cfg)
	if ctl.Channels() != 2 {
		t.Fatalf("channels = %d", ctl.Channels())
	}
	// Touch many distinct rows: both channels must see traffic.
	for i := 0; i < 64; i++ {
		ctl.Read(load(mem.Addr(i)<<uint(cfg.RowBits)), 0)
	}
	a := ctl.channels[0].Stats().Reads
	b := ctl.channels[1].Stats().Reads
	if a == 0 || b == 0 {
		t.Errorf("channel reads = %d/%d, want both > 0", a, b)
	}
	if a+b != 64 {
		t.Errorf("total reads = %d", a+b)
	}
	// Lines within one row stay on one channel (no row splitting).
	base := mem.Addr(7) << uint(cfg.RowBits)
	c0 := ctl.channelOf(base)
	for off := mem.Addr(0); off < 1<<uint(cfg.RowBits); off += 64 {
		if ctl.channelOf(base+off) != c0 {
			t.Fatal("row split across channels")
		}
	}
}

func TestControllerAggregateStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 2
	ctl := NewController(cfg)
	ctl.Read(load(0), 0)
	ctl.Write(1<<uint(cfg.RowBits), 0)
	st := ctl.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Errorf("aggregate = %+v", st)
	}
	ctl.ResetStats()
	if ctl.Stats().Reads != 0 {
		t.Error("reset incomplete")
	}
	// TEMPO hook installs on all channels.
	fired := 0
	ctl.SetTEMPO(func(mem.Addr, int64) { fired++ })
	ctl.Read(&mem.Request{Addr: 0, Kind: mem.Translation, Level: 1, Leaf: true, ReplayTarget: 0x40}, 0)
	ctl.Read(&mem.Request{Addr: 1 << uint(cfg.RowBits), Kind: mem.Translation, Level: 1, Leaf: true, ReplayTarget: 0x80}, 0)
	if fired != 2 {
		t.Errorf("TEMPO fired %d times, want 2", fired)
	}
}
