// Package dram models a DDR5-like memory channel with banks, a row buffer
// per bank and a shared data bus, in CPU-cycle units. One channel serves four
// cores (Table I of the paper).
//
// Requests reach the channel in program order per core but not in global
// time order (writebacks are posted at fill times in the future, prefetches
// carry issue delays, and SMT/multi-core peers run on slightly different
// clocks). Contention is therefore modelled with order-insensitive slot
// booking: the data bus and each bank expose bounded service capacity per
// time bucket, and a request books the first bucket at or after its arrival
// with spare capacity. A future-timed request can never delay an
// earlier-timed one — the failure mode of naive next-free-time bookkeeping.
//
// The controller also implements the TEMPO hook: when a leaf-level
// page-table-entry read arrives carrying a replay target, the controller
// immediately schedules a read of the replay data line, hiding one round
// trip (Bhattacharjee, ASPLOS'17, as used by the paper's final
// configuration).
package dram

import (
	"atcsim/internal/mem"
	"atcsim/internal/telemetry"
)

// Config holds the channel timing and geometry parameters in CPU cycles
// (4 GHz core, DDR5-6400: one 64B burst occupies BL8/2 = 4 memory-clock
// cycles = 1.25 ns = 5 CPU cycles).
type Config struct {
	Channels    int   // independent channels (address-interleaved by line)
	Banks       int   // banks per channel
	RowBits     int   // log2 of row size in bytes (per-bank row-buffer reach)
	TRowHit     int64 // CAS-only latency: row already open
	TRowClosed  int64 // RCD+CAS: bank idle, row must be activated
	TRowMiss    int64 // RP+RCD+CAS: conflicting row open
	TBurst      int64 // data-bus occupancy per 64B line
	TController int64 // fixed controller/queueing overhead per request
}

// DefaultConfig returns DDR5-6400-flavoured timings for a 4 GHz core.
func DefaultConfig() Config {
	return Config{
		Channels:    1,
		Banks:       32,
		RowBits:     13, // 8KB row buffer
		TRowHit:     56,
		TRowClosed:  112,
		TRowMiss:    168,
		TBurst:      5,
		TController: 20,
	}
}

// Stats aggregates channel activity.
type Stats struct {
	Reads  uint64
	Writes uint64
	// ReadLatencySum/ReadLatencyMax track request-to-data delays.
	ReadLatencySum uint64
	ReadLatencyMax uint64
	RowHits        uint64
	RowClosed      uint64
	RowMisses      uint64
	TEMPOIssued    uint64
	BusyCycles     uint64 // data-bus occupancy booked
}

// AvgReadLatency returns the mean observed read latency.
func (s *Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadLatencySum) / float64(s.Reads)
}

// slotter books bounded service capacity per time bucket, insensitive to
// arrival order. Buckets are 2^bucketBits cycles wide and admit cap
// operations each.
//
// Bookings live in a fixed ring covering a 2^slotterWindowBits-cycle window
// ending at the youngest booked bucket, replacing an earlier map keyed by
// bucket id: the map was the channel's hottest allocation-and-hash site, and
// all traffic a channel ever sees clusters within a few thousand cycles (the
// furthest-future booking is a writeback posted at fill time), far inside
// the window. Bookings that fall behind the window are treated as free and
// not recorded, which matches the map version's pruning of ancient buckets.
type slotter struct {
	bucketBits uint
	cap        int32
	used       []int32 // ring; bucket b lives at used[b&mask]
	mask       int64
	base       int64 // lowest tracked bucket id; window is [base, base+len)
}

// slotterWindowBits sets the tracked window in cycles (2^17 ≈ 33 µs at
// 4 GHz). It strictly covers the old map implementation's prune horizon
// (2^16 cycles behind the youngest booking), so any bucket the map would
// still remember has an exact count here.
const slotterWindowBits = 17

func newSlotter(bucketBits uint, cap int) *slotter {
	if cap < 1 {
		cap = 1
	}
	window := int64(1) << (slotterWindowBits - bucketBits)
	if window < 64 {
		window = 64
	}
	return &slotter{
		bucketBits: bucketBits,
		cap:        int32(cap),
		used:       make([]int32, window),
		mask:       window - 1,
	}
}

// book reserves one service slot at or after cycle `at` and returns the
// cycle service can begin.
func (s *slotter) book(at int64) int64 {
	if at < 0 {
		at = 0
	}
	b := at >> s.bucketBits
	if b >= s.base {
		window := int64(len(s.used))
		for {
			if b >= s.base+window {
				s.advance(b)
			}
			if s.used[b&s.mask] < s.cap {
				break
			}
			b++
		}
		s.used[b&s.mask]++
	}
	start := b << s.bucketBits
	if start < at {
		start = at
	}
	return start
}

// advance slides the window forward so bucket b is its youngest slot,
// zeroing the buckets that fall out.
func (s *slotter) advance(b int64) {
	window := int64(len(s.used))
	newBase := b - window + 1
	if newBase-s.base >= window {
		// The jump vacates the whole window.
		for i := range s.used {
			s.used[i] = 0
		}
	} else {
		for nb := s.base + window; nb <= b; nb++ {
			s.used[nb&s.mask] = 0
		}
	}
	s.base = newBase
}

type bank struct {
	row     int64 // open row id; -1 when closed
	service *slotter
}

// Channel is one DRAM channel. It is not safe for concurrent use; the
// simulator is single-threaded by design (deterministic).
type Channel struct {
	cfg   Config
	banks []bank
	bus   *slotter
	stats Stats
	tr    *telemetry.Tracer

	// TEMPO, when non-nil, is invoked for every leaf-translation read that
	// carries a replay target; the callback receives the replay line address
	// and the cycle at which the controller can issue its read (the cycle
	// the PTE data is available at the controller). The system wires this to
	// an LLC prefetch fill.
	TEMPO func(line mem.Addr, cycle int64)
}

// New creates a channel with the given configuration.
func New(cfg Config) *Channel {
	if cfg.Banks <= 0 {
		cfg = DefaultConfig()
	}
	cfg.Channels = 1 // a Channel is one channel; use NewController for more
	ch := &Channel{cfg: cfg, banks: make([]bank, cfg.Banks)}
	// Bus: one burst per TBurst cycles → bucket of 32 cycles admits
	// 32/TBurst bursts.
	ch.bus = newSlotter(5, int(32/cfg.TBurst))
	for i := range ch.banks {
		ch.banks[i].row = -1
		// Bank: roughly one access per average service time; 256-cycle
		// buckets with capacity 4 ≈ one access per 64 cycles.
		ch.banks[i].service = newSlotter(8, 4)
	}
	return ch
}

// SetTracer attaches a request-lifecycle tracer (nil disables): bank/bus
// service of sampled requests becomes spans on the DRAM lane.
func (c *Channel) SetTracer(t *telemetry.Tracer) { c.tr = t }

// Stats returns a copy of the accumulated statistics.
func (c *Channel) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics (end of warmup) without disturbing
// timing state.
func (c *Channel) ResetStats() { c.stats = Stats{} }

// bankOf maps a line address to a bank. Column bits (the line index within
// a row) sit below the bank bits so that consecutive lines stay in one row;
// the row id is XOR-folded in so that large strides still spread across
// banks (permutation-based interleaving).
func (c *Channel) bankOf(line mem.Addr) int {
	rowIdx := uint64(line) >> uint(c.cfg.RowBits-mem.LineBits)
	return int((rowIdx ^ rowIdx>>8) % uint64(len(c.banks)))
}

// rowOf maps a line address to its row id within the bank.
func (c *Channel) rowOf(line mem.Addr) int64 {
	return int64(line >> uint(c.cfg.RowBits-mem.LineBits))
}

// Read services a read for the line containing req.Addr issued at the given
// cycle and returns the cycle the data has been delivered. It also fires
// the TEMPO hook for leaf translations when enabled.
func (c *Channel) Read(req *mem.Request, cycle int64) int64 {
	done := c.access(mem.LineAddr(req.Addr), cycle, req.Core)
	c.stats.Reads++
	lat := uint64(done - cycle)
	c.stats.ReadLatencySum += lat
	if lat > c.stats.ReadLatencyMax {
		c.stats.ReadLatencyMax = lat
	}
	if c.TEMPO != nil && req.IsLeaf() && req.ReplayTarget != 0 {
		c.stats.TEMPOIssued++
		if c.tr.Active() {
			c.tr.SpanOn(req.Core, "dram", "tempo-issue", telemetry.LaneDRAM, done, done,
				telemetry.IArg("line", int64(mem.LineAddr(req.ReplayTarget))))
		}
		c.TEMPO(mem.LineAddr(req.ReplayTarget), done)
	}
	return done
}

// Write services a writeback for the line containing addr. Writes are
// posted: the caller does not wait, but bank and bus capacity is consumed.
func (c *Channel) Write(addr mem.Addr, cycle int64) {
	c.access(mem.LineAddr(addr), cycle, 0)
	c.stats.Writes++
}

func (c *Channel) access(line mem.Addr, cycle int64, core int) int64 {
	bankIdx := c.bankOf(line)
	b := &c.banks[bankIdx]
	row := c.rowOf(line)

	start := b.service.book(cycle + c.cfg.TController)

	var lat int64
	var outcome string
	switch {
	case b.row == row:
		lat = c.cfg.TRowHit
		c.stats.RowHits++
		outcome = "row-hit"
	case b.row == -1:
		lat = c.cfg.TRowClosed
		c.stats.RowClosed++
		outcome = "row-closed"
	default:
		lat = c.cfg.TRowMiss
		c.stats.RowMisses++
		outcome = "row-miss"
	}
	b.row = row

	dataAt := c.bus.book(start + lat)
	c.stats.BusyCycles += uint64(c.cfg.TBurst)
	done := dataAt + c.cfg.TBurst
	if c.tr.Active() {
		c.tr.SpanOn(core, "dram", "bank", telemetry.LaneDRAM, cycle, done,
			telemetry.IArg("bank", int64(bankIdx)),
			telemetry.SArg("row", outcome),
			telemetry.IArg("bus_slot", dataAt))
	}
	return done
}

// MinLatency returns the best-case read latency (row hit, idle bus), useful
// for tests and for sizing prefetch lead times.
func (c *Channel) MinLatency() int64 {
	return c.cfg.TController + c.cfg.TRowHit + c.cfg.TBurst
}

// Controller fans requests out over one or more address-interleaved
// channels (Table I: one channel per four cores). Lines interleave across
// channels on bits just above the row bits so that a single stream spreads
// without splitting rows.
type Controller struct {
	channels []*Channel
	rowBits  int
}

// NewController builds cfg.Channels channels (minimum one).
func NewController(cfg Config) *Controller {
	if cfg.Banks <= 0 {
		cfg = DefaultConfig()
	}
	n := cfg.Channels
	if n < 1 {
		n = 1
	}
	ctl := &Controller{rowBits: cfg.RowBits}
	for i := 0; i < n; i++ {
		ctl.channels = append(ctl.channels, New(cfg))
	}
	return ctl
}

// Channels returns the number of channels.
func (ctl *Controller) Channels() int { return len(ctl.channels) }

func (ctl *Controller) channelOf(addr mem.Addr) *Channel {
	if len(ctl.channels) == 1 {
		return ctl.channels[0]
	}
	row := uint64(addr) >> uint(ctl.rowBits)
	return ctl.channels[row%uint64(len(ctl.channels))]
}

// Read routes a read to its channel.
func (ctl *Controller) Read(req *mem.Request, cycle int64) int64 {
	return ctl.channelOf(req.Addr).Read(req, cycle)
}

// Write routes a posted write to its channel.
func (ctl *Controller) Write(addr mem.Addr, cycle int64) {
	ctl.channelOf(addr).Write(addr, cycle)
}

// SetTEMPO installs the TEMPO hook on every channel.
func (ctl *Controller) SetTEMPO(f func(line mem.Addr, cycle int64)) {
	for _, ch := range ctl.channels {
		ch.TEMPO = f
	}
}

// SetTracer attaches a request-lifecycle tracer to every channel.
func (ctl *Controller) SetTracer(t *telemetry.Tracer) {
	for _, ch := range ctl.channels {
		ch.SetTracer(t)
	}
}

// Stats sums the statistics over all channels.
func (ctl *Controller) Stats() Stats {
	var out Stats
	for _, ch := range ctl.channels {
		st := ch.Stats()
		out.Reads += st.Reads
		out.Writes += st.Writes
		out.ReadLatencySum += st.ReadLatencySum
		if st.ReadLatencyMax > out.ReadLatencyMax {
			out.ReadLatencyMax = st.ReadLatencyMax
		}
		out.RowHits += st.RowHits
		out.RowClosed += st.RowClosed
		out.RowMisses += st.RowMisses
		out.TEMPOIssued += st.TEMPOIssued
		out.BusyCycles += st.BusyCycles
	}
	return out
}

// ResetStats zeroes every channel's statistics.
func (ctl *Controller) ResetStats() {
	for _, ch := range ctl.channels {
		ch.ResetStats()
	}
}
