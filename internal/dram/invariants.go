package dram

import "fmt"

// checkSlots audits a slotter: no time bucket may hold more bookings than
// its capacity. Over-booking would mean two requests were granted the same
// service slot — the bank/bus non-overlap property the order-insensitive
// booking scheme exists to provide.
func (s *slotter) checkSlots(what string) error {
	for b, n := range s.used {
		if n > s.cap {
			return fmt.Errorf("dram %s: bucket %d booked %d times, capacity %d", what, b, n, s.cap)
		}
		if n < 0 {
			return fmt.Errorf("dram %s: bucket %d has negative occupancy %d", what, b, n)
		}
	}
	return nil
}

// CheckInvariants audits one channel: data-bus and per-bank service slots
// never overbooked, and every open row id is a valid row (or -1 for closed).
func (c *Channel) CheckInvariants() error {
	if err := c.bus.checkSlots("bus"); err != nil {
		return err
	}
	for i := range c.banks {
		b := &c.banks[i]
		if b.row < -1 {
			return fmt.Errorf("dram bank %d: invalid open row %d", i, b.row)
		}
		if err := b.service.checkSlots(fmt.Sprintf("bank %d", i)); err != nil {
			return err
		}
	}
	return nil
}

// CheckInvariants audits every channel of the controller.
func (ctl *Controller) CheckInvariants() error {
	for i, ch := range ctl.channels {
		if err := ch.CheckInvariants(); err != nil {
			return fmt.Errorf("channel %d: %w", i, err)
		}
	}
	return nil
}
