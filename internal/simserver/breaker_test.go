package simserver

import (
	"errors"
	"testing"
	"time"
)

func testBreaker(clock *fakeClock) *breaker {
	return newBreaker(breakerConfig{
		window:    5,
		threshold: 3,
		cooldown:  10 * time.Second,
		probes:    2,
	}, clock.Now)
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused: %v", err)
		}
		b.Report(true)
	}
	if b.State() != breakerClosed {
		t.Fatalf("state = %v before threshold", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Report(true) // third failure in the window: trip
	if b.State() != breakerOpen {
		t.Fatalf("state = %v after threshold failures", b.State())
	}
	var open *BreakerOpenError
	if err := b.Allow(); !errors.As(err, &open) {
		t.Fatalf("open breaker admitted: %v", err)
	}
	if open.RetryAfter <= 0 || open.RetryAfter > 10*time.Second {
		t.Errorf("RetryAfter = %v", open.RetryAfter)
	}
	if b.Trips() != 1 {
		t.Errorf("Trips() = %d", b.Trips())
	}
}

func TestBreakerWindowSlidesFailuresOut(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock)
	// Two failures, then enough successes to slide them out of the
	// 5-outcome window; two more failures must NOT trip (only 2 in window).
	outcomes := []bool{true, true, false, false, false, false, false, true, true}
	for _, failure := range outcomes {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused: %v", err)
		}
		b.Report(failure)
	}
	if b.State() != breakerClosed {
		t.Fatalf("state = %v; window did not slide old failures out", b.State())
	}
}

func TestBreakerHalfOpenProbesAndRecovery(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock)
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Report(true)
	}
	if b.State() != breakerOpen {
		t.Fatal("not open after threshold")
	}
	clock.Advance(10 * time.Second) // cooldown elapses
	if b.State() != breakerHalfOpen {
		t.Fatalf("state = %v after cooldown", b.State())
	}
	// Half-open admits exactly `probes` concurrent trials.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe 1 refused: %v", err)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("probe 2 refused: %v", err)
	}
	if err := b.Allow(); err == nil {
		t.Fatal("probe 3 admitted beyond the probe budget")
	}
	// One probe succeeding closes the breaker and resets the window.
	b.Report(false)
	if b.State() != breakerClosed {
		t.Fatalf("state = %v after successful probe", b.State())
	}
	// Two failures must not trip the freshly-reset window.
	b.Allow()
	b.Report(true)
	b.Allow()
	b.Report(true)
	if b.State() != breakerClosed {
		t.Fatal("window not reset after recovery")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock)
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Report(true)
	}
	clock.Advance(10 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	b.Report(true) // probe failed: straight back to open
	if b.State() != breakerOpen {
		t.Fatalf("state = %v after failed probe", b.State())
	}
	if b.Trips() != 2 {
		t.Errorf("Trips() = %d, want 2", b.Trips())
	}
	if err := b.Allow(); err == nil {
		t.Fatal("reopened breaker admitted")
	}
}

func TestBreakerCancelReleasesProbeSlot(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock)
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Report(true)
	}
	clock.Advance(10 * time.Second)
	// Consume both probe slots, then cancel one: a new probe must fit.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	if err := b.Allow(); err == nil {
		t.Fatal("probe budget not enforced")
	}
	b.Cancel()
	if err := b.Allow(); err != nil {
		t.Fatalf("canceled slot not released: %v", err)
	}
}

func TestBreakerSetIsolatesKinds(t *testing.T) {
	s := newBreakerSet(breakerConfig{window: 4, threshold: 2, cooldown: time.Minute, probes: 1})
	var created []string
	s.onNew = func(kind string, _ *breaker) { created = append(created, kind) }
	a, b := s.get("tempo/mcf"), s.get("baseline/pr")
	if s.get("tempo/mcf") != a {
		t.Fatal("breaker not memoized per kind")
	}
	a.Allow()
	a.Report(true)
	a.Allow()
	a.Report(true)
	if a.State() != breakerOpen {
		t.Fatal("kind a not tripped")
	}
	if b.State() != breakerClosed {
		t.Fatal("kind b tripped by kind a's failures")
	}
	if len(created) != 2 {
		t.Errorf("onNew fired %d times, want 2 (%v)", len(created), created)
	}
}
