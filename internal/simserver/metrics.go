package simserver

import (
	"atcsim/internal/metrics"
)

// Request outcomes, the label values of simserver_requests_total.
const (
	outcomeOK          = "ok"
	outcomeShed        = "shed"
	outcomeBreakerOpen = "breaker_open"
	outcomeDraining    = "draining"
	outcomeBadRequest  = "bad_request"
	outcomeFailed      = "failed"
	outcomeCanceled    = "canceled"
)

// outcomes lists every label value, so all series exist from the first
// scrape.
var outcomes = []string{
	outcomeOK, outcomeShed, outcomeBreakerOpen, outcomeDraining,
	outcomeBadRequest, outcomeFailed, outcomeCanceled,
}

// serverMetrics holds the service envelope's instrumentation. Every series
// is registered eagerly at construction (breaker series per kind, lazily on
// first use of that kind), so a scrape before the first request already
// shows the full family set.
type serverMetrics struct {
	requests     map[string]metrics.Counter
	shed         metrics.Counter
	dedupShared  metrics.Counter
	dedupDisk    metrics.Counter
	computed     metrics.Counter
	drainSeconds metrics.Gauge
	latency      *metrics.Histogram
	reg          *metrics.Registry
}

// newServerMetrics registers the simserver_* families on reg and wires the
// live gauges (inflight, queue depth, per-kind breaker state) to the
// server's state.
func newServerMetrics(reg *metrics.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{
		requests: make(map[string]metrics.Counter, len(outcomes)),
		reg:      reg,
	}
	for _, o := range outcomes {
		m.requests[o] = reg.Counter("simserver_requests_total",
			"service requests by outcome", metrics.L("outcome", o))
	}
	m.shed = reg.Counter("simserver_shed_total",
		"requests shed by admission control (429)")
	m.dedupShared = reg.Counter("simserver_deduped_total",
		"requests served without a fresh compute, by source",
		metrics.L("source", "shared"))
	m.dedupDisk = reg.Counter("simserver_deduped_total",
		"requests served without a fresh compute, by source",
		metrics.L("source", "disk"))
	m.computed = reg.Counter("simserver_computed_total",
		"requests that performed a fresh simulation")
	m.drainSeconds = reg.Gauge("simserver_drain_seconds",
		"wall time the last graceful drain took")
	m.latency = reg.NewHistogram("simserver_request_seconds",
		"admitted request latency",
		[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30})
	reg.GaugeFunc("simserver_inflight",
		"requests admitted and not yet answered",
		func() float64 { return float64(s.inflightN.Load()) })
	reg.GaugeFunc("simserver_admission_queue_depth",
		"requests waiting for an admission token",
		func() float64 { return float64(s.bucket.Waiters()) })
	s.breakers.onNew = func(kind string, b *breaker) {
		reg.GaugeFunc("simserver_breaker_state",
			"circuit breaker position per kind (0 closed, 1 half-open, 2 open)",
			func() float64 { return float64(b.State()) },
			metrics.L("kind", kind))
		reg.CounterFunc("simserver_breaker_trips_total",
			"circuit breaker trips per kind",
			func() float64 { return float64(b.Trips()) },
			metrics.L("kind", kind))
	}
	return m
}

// MetricFamilies lists every simserver_* family the service registers — the
// contract the documentation-coverage test and the CI scrape job assert.
func MetricFamilies() []string {
	return []string{
		"simserver_requests_total",
		"simserver_shed_total",
		"simserver_deduped_total",
		"simserver_computed_total",
		"simserver_inflight",
		"simserver_admission_queue_depth",
		"simserver_breaker_state",
		"simserver_breaker_trips_total",
		"simserver_drain_seconds",
		"simserver_request_seconds",
	}
}
