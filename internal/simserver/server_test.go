package simserver

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"atcsim/internal/experiments"
	"atcsim/internal/metrics"
)

// tinyScale keeps service tests fast: short traces, three workloads.
func tinyScale() Config {
	return Config{
		Scale: experiments.Scale{
			TraceLen:     30_000,
			Instructions: 10_000,
			Warmup:       3_000,
			Workloads:    []string{"xalancbmk", "mcf", "pr"},
			Seed:         1,
		},
		Jobs: 4,
	}
}

func newTestServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := tinyScale()
	if mod != nil {
		mod(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and returns the response with its payload read.
func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, payload
}

func runOK(t *testing.T, base string, req RunRequest) RunResponse {
	t.Helper()
	resp, payload := post(t, base+"/v1/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/run %+v: status %d: %s", req, resp.StatusCode, payload)
	}
	var rr RunResponse
	if err := json.Unmarshal(payload, &rr); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return rr
}

func TestRunEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name string
		body any
		want int
	}{
		{"missing workload", RunRequest{}, http.StatusBadRequest},
		{"unknown workload", RunRequest{Workload: "nope"}, http.StatusBadRequest},
		{"unknown enhancement", RunRequest{Workload: "mcf", Enhancement: "warp-drive"}, http.StatusBadRequest},
		{"unknown mechanism", RunRequest{Workload: "mcf", Mechanism: "nope"}, http.StatusBadRequest},
		{"unknown timing", RunRequest{Workload: "mcf", Timing: "nope"}, http.StatusBadRequest},
		{"negative timeout", RunRequest{Workload: "mcf", TimeoutMS: -1}, http.StatusBadRequest},
		{"unknown field", map[string]any{"workload": "mcf", "bogus": 1}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, payload := post(t, ts.URL+"/v1/run", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.want, payload)
		}
		var eb errorBody
		if err := json.Unmarshal(payload, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body %q not JSON with error field", c.name, payload)
		}
	}
	// Non-POST methods are refused on both endpoints.
	for _, path := range []string{"/v1/run", "/v1/key"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}

func TestKeyEndpointMatchesRun(t *testing.T) {
	_, ts := newTestServer(t, nil)
	req := RunRequest{Workload: "xalancbmk", Seed: 1, Enhancement: "tempo"}
	resp, payload := post(t, ts.URL+"/v1/key", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/key: status %d: %s", resp.StatusCode, payload)
	}
	var keyResp RunResponse
	if err := json.Unmarshal(payload, &keyResp); err != nil {
		t.Fatal(err)
	}
	if len(keyResp.Key) != 64 {
		t.Errorf("key %q is not a hex SHA-256", keyResp.Key)
	}
	if keyResp.Kind != "tempo/xalancbmk" {
		t.Errorf("kind = %q", keyResp.Kind)
	}
	if keyResp.Result != nil || keyResp.Source != "" {
		t.Errorf("/v1/key must not execute: %+v", keyResp)
	}
	run := runOK(t, ts.URL, req)
	if run.Key != keyResp.Key {
		t.Errorf("run key %s != key-endpoint key %s", run.Key, keyResp.Key)
	}
}

func TestRunSourceTransitions(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, func(c *Config) { c.CacheDir = dir })
	req := RunRequest{Workload: "mcf", Seed: 1}

	first := runOK(t, ts.URL, req)
	if first.Source != "computed" {
		t.Errorf("first request source = %q, want computed", first.Source)
	}
	if len(first.Result) == 0 {
		t.Error("empty result payload")
	}
	second := runOK(t, ts.URL, req)
	if second.Source != "shared" {
		t.Errorf("repeat request source = %q, want shared", second.Source)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Error("memoized result differs from computed result")
	}
	if s.Runner().Runs() != 1 {
		t.Errorf("Runs() = %d, want 1", s.Runner().Runs())
	}

	// A warm restart on the same cache directory serves from disk,
	// byte-identically.
	_, ts2 := newTestServer(t, func(c *Config) { c.CacheDir = dir })
	warm := runOK(t, ts2.URL, req)
	if warm.Source != "disk" {
		t.Errorf("warm-restart source = %q, want disk", warm.Source)
	}
	if !bytes.Equal(first.Result, warm.Result) {
		t.Error("disk result differs from computed result")
	}
}

func TestHealthzAndReadyzSplit(t *testing.T) {
	s, ts := newTestServer(t, nil)
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz = %d", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz before drain = %d", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s.Drain(ctx)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz during/after drain = %d, want 503", got)
	}
	// Liveness is unaffected: the process still serves diagnostics.
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz after drain = %d", got)
	}
	// New runs are refused while drained.
	resp, _ := post(t, ts.URL+"/v1/run", RunRequest{Workload: "mcf"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/v1/run after drain = %d, want 503", resp.StatusCode)
	}
}

func TestMetricsScrapeLintCleanAndComplete(t *testing.T) {
	_, ts := newTestServer(t, nil)
	// One real run so dynamic (per-kind breaker) series exist too.
	runOK(t, ts.URL, RunRequest{Workload: "pr", Seed: 1, Enhancement: "tempo"})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exposition, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if problems := metrics.Lint(exposition); len(problems) != 0 {
		t.Errorf("exposition lint problems:\n%s", strings.Join(problems, "\n"))
	}
	for _, family := range MetricFamilies() {
		if !bytes.Contains(exposition, []byte(family)) {
			t.Errorf("family %s missing from /metrics", family)
		}
	}
	// The diagnostics endpoints are mounted.
	for _, path := range []string{"/runs", "/flightrecorder"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
}
