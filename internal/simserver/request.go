package simserver

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"atcsim/internal/system"
	"atcsim/internal/workloads"
	"atcsim/internal/xlat"
)

// RunRequest is the JSON body of POST /v1/run and POST /v1/key: one
// single-core simulation, identified by workload, trace seed and the
// configuration knobs the service exposes. Identical requests map to the
// same content-addressed run key and therefore the same cache entry —
// repeating a request is always safe and always byte-identical.
type RunRequest struct {
	// Workload is the benchmark name (required; see workloads.Names).
	Workload string `json:"workload"`
	// Seed selects the synthesized trace instance (any value; requests with
	// different seeds are distinct runs).
	Seed int64 `json:"seed"`
	// Enhancement is the cumulative enhancement level: "baseline" (default
	// when empty), "t-drrip", "t-ship", "atp" or "tempo".
	Enhancement string `json:"enhancement,omitempty"`
	// Mechanism overrides the translation mechanism servicing STLB misses
	// (see xlat.Names); empty keeps the enhancement level's choice.
	Mechanism string `json:"mechanism,omitempty"`
	// Timing selects the hierarchy timing engine ("analytic" or "queued");
	// empty and "analytic" share run keys.
	Timing string `json:"timing,omitempty"`
	// TimeoutMS, when positive, overrides the server's per-run deadline for
	// this request (milliseconds).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// RunResponse is the JSON body of a successful POST /v1/run (and, without
// Source/Result, of POST /v1/key).
type RunResponse struct {
	// Key is the content-addressed run key (hex SHA-256 of the canonical
	// key encoding) — the identity of the cache entry this result lives in.
	Key string `json:"key"`
	// Kind is the request's breaker kind (enhancement/workload).
	Kind string `json:"kind"`
	// Source reports where the result came from: "computed" (this request
	// performed the simulation), "disk" (loaded from the on-disk store) or
	// "shared" (coalesced onto a concurrent identical request).
	Source string `json:"source,omitempty"`
	// Result is the simulation result, verbatim as cached.
	Result json.RawMessage `json:"result,omitempty"`
}

// enhancementNames maps wire names to enhancement levels.
var enhancementNames = func() map[string]system.Enhancement {
	m := make(map[string]system.Enhancement)
	for _, e := range system.Enhancements() {
		m[e.String()] = e
	}
	return m
}()

// enhancementList renders the accepted enhancement names for error messages.
func enhancementList() string {
	names := make([]string, 0, len(system.Enhancements()))
	for _, e := range system.Enhancements() {
		names = append(names, e.String())
	}
	return strings.Join(names, ", ")
}

// validate checks the request against the service's registries and resolves
// the enhancement level. It does not touch the engine.
func (q *RunRequest) validate() (system.Enhancement, error) {
	if q.Workload == "" {
		return 0, fmt.Errorf("missing workload (one of %s)", strings.Join(workloads.Names(), ", "))
	}
	if _, err := workloads.ByName(q.Workload); err != nil {
		return 0, err
	}
	name := q.Enhancement
	if name == "" {
		name = system.Baseline.String()
	}
	level, ok := enhancementNames[name]
	if !ok {
		return 0, fmt.Errorf("unknown enhancement %q (one of %s)", q.Enhancement, enhancementList())
	}
	if q.Mechanism != "" && !xlat.Registered(q.Mechanism) {
		return 0, fmt.Errorf("unknown mechanism %q (one of %s)", q.Mechanism, strings.Join(xlat.Names(), ", "))
	}
	if q.Timing != "" && !system.TimingRegistered(q.Timing) {
		return 0, fmt.Errorf("unknown timing model %q (one of %s)", q.Timing, strings.Join(system.TimingModels(), ", "))
	}
	if q.TimeoutMS < 0 {
		return 0, fmt.Errorf("negative timeout_ms %d", q.TimeoutMS)
	}
	return level, nil
}

// kind is the circuit-breaker partition this request belongs to. Failures
// are isolated per (enhancement, workload) pair: a poisoned configuration
// trips only its own breaker.
func (q *RunRequest) kind() string {
	name := q.Enhancement
	if name == "" {
		name = system.Baseline.String()
	}
	return name + "/" + q.Workload
}

// label is the engine run label requests carry (progress output, flight
// recorder, /runs table).
func (q *RunRequest) label() string {
	name := q.Enhancement
	if name == "" {
		name = system.Baseline.String()
	}
	return "svc:" + name
}

// timeout resolves the request's per-run deadline (zero = server default).
func (q *RunRequest) timeout() time.Duration {
	if q.TimeoutMS > 0 {
		return time.Duration(q.TimeoutMS) * time.Millisecond
	}
	return 0
}

// mod builds the configuration modifier the engine applies on top of the
// scale-adjusted base configuration — the same path sweep experiments use,
// so service requests and sweep runs share cache entries.
func (q *RunRequest) mod(level system.Enhancement) func(*system.Config) {
	mechanism, timing := q.Mechanism, q.Timing
	return func(c *system.Config) {
		c.Apply(level)
		if mechanism != "" {
			c.Mechanism = mechanism
		}
		if timing != "" && timing != system.TimingAnalytic {
			c.Timing = timing
		}
	}
}
