package simserver

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// ShedError reports a request rejected by admission control: the token
// bucket was empty and the waiter queue full. RetryAfter is the server's
// estimate of when capacity frees up — surfaced to clients as a Retry-After
// header on the 429 response.
type ShedError struct {
	RetryAfter time.Duration
}

// Error renders the shed reason with the retry hint.
func (e *ShedError) Error() string {
	return fmt.Sprintf("admission queue full; retry after %v", e.RetryAfter)
}

// bucket is a token-bucket admission controller with a bounded waiter
// queue. Tokens refill continuously at rate per second up to burst;
// Acquire consumes one token, waiting (bounded by the queue and the
// caller's context) when none is available, and shedding with a *ShedError
// once the queue is full. All methods are safe for concurrent use.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	queue  int // current waiters
	bound  int // waiter-queue capacity
	// now is the clock seam for tests.
	now func() time.Time
}

func newBucket(rate float64, burst, bound int) *bucket {
	b := &bucket{rate: rate, burst: float64(burst), bound: bound, now: time.Now}
	b.tokens = b.burst
	b.last = b.now()
	return b
}

// refill accrues tokens for the elapsed time. Callers hold mu.
func (b *bucket) refill() {
	now := b.now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// retryAfter estimates when a shed request should come back: the time for
// the deficit plus the whole waiter queue ahead of it to drain. Callers
// hold mu (refill already applied).
func (b *bucket) retryAfter() time.Duration {
	need := 1 - b.tokens + float64(b.queue)
	if need < 1 {
		need = 1
	}
	d := time.Duration(need / b.rate * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// Waiters returns the current admission-queue depth (the gauge behind
// simserver_admission_queue_depth).
func (b *bucket) Waiters() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queue
}

// Acquire consumes one token, waiting while the bucket is empty. It returns
// nil when admitted, a *ShedError when the waiter queue is full, and a
// wrapped ctx error when the caller gives up first.
func (b *bucket) Acquire(ctx context.Context) error {
	b.mu.Lock()
	b.refill()
	if b.tokens >= 1 {
		b.tokens--
		b.mu.Unlock()
		return nil
	}
	if b.queue >= b.bound {
		retry := b.retryAfter()
		b.mu.Unlock()
		return &ShedError{RetryAfter: retry}
	}
	b.queue++
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		b.queue--
		b.mu.Unlock()
	}()
	for {
		b.mu.Lock()
		b.refill()
		if b.tokens >= 1 {
			b.tokens--
			b.mu.Unlock()
			return nil
		}
		wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
		b.mu.Unlock()
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("admission wait: %w", ctx.Err())
		case <-t.C:
		}
	}
}
