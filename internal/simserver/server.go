package simserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"atcsim/internal/experiments"
	"atcsim/internal/metrics"
	"atcsim/internal/system"
)

// Server is the sweep service: the HTTP surface plus the resilience
// envelope around one experiment engine. Construct it with New; serve
// Handler() on any http.Server; stop it with Drain.
type Server struct {
	cfg      Config
	runner   *experiments.Runner
	reg      *metrics.Registry
	bucket   *bucket
	breakers *breakerSet
	met      *serverMetrics

	draining  atomic.Bool
	inflightN atomic.Int64
	inflight  sync.WaitGroup
	drainOnce sync.Once
	// admitMu orders inflight.Add against Drain's inflight.Wait: the drain
	// flag flips under this mutex, so a request that slipped past the entry
	// gate (e.g. while queued for an admission token) can never Add after
	// the drain has started waiting.
	admitMu sync.Mutex
}

// beginRequest registers an admitted request with the drain barrier,
// refusing when a drain has begun.
func (s *Server) beginRequest() bool {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflight.Add(1)
	return true
}

// Routes lists every path the service serves — the contract the
// documentation-coverage test asserts against docs/SERVICE.md.
func Routes() []string {
	return []string{
		"/v1/run",
		"/v1/key",
		"/healthz",
		"/readyz",
		"/metrics",
		"/runs",
		"/flightrecorder",
	}
}

// Runner exposes the underlying experiment engine (compute/dedup counters,
// quarantine stats) for tests and operators.
func (s *Server) Runner() *experiments.Runner { return s.runner }

// Registry returns the metrics registry the service registers on.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Draining reports whether a drain has begun (readiness is the inverse).
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the service mux:
//
//	POST /v1/run    execute (or fetch) one simulation; see RunRequest
//	POST /v1/key    resolve a request to its run key without executing
//	GET  /healthz   liveness: 200 while the process can serve at all
//	GET  /readyz    readiness: 200 while accepting work, 503 while draining
//	GET  /metrics   OpenMetrics exposition (simserver_* + engine families)
//	GET  /runs      live JSON of per-run-key state
//	GET  /flightrecorder  canonical JSONL of recent structured events
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/key", s.handleKey)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"draining"}`)
			return
		}
		fmt.Fprintln(w, `{"status":"ready"}`)
	})
	diag := (&metrics.Server{
		Registry: s.reg,
		Runs:     s.runner.RunsTable(),
		Recorder: s.cfg.Recorder,
	}).Handler()
	mux.Handle("/metrics", diag)
	mux.Handle("/runs", diag)
	mux.Handle("/flightrecorder", diag)
	return mux
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// writeError renders an error response, attaching a Retry-After header
// (whole seconds, rounded up) when the failure carries a retry hint.
func writeError(w http.ResponseWriter, status int, retryAfter time.Duration, err error) {
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// decode parses and validates the request body shared by /v1/run and
// /v1/key, recording the bad_request outcome on failure.
func (s *Server) decode(w http.ResponseWriter, r *http.Request) (*RunRequest, bool) {
	if r.Method != http.MethodPost {
		s.met.requests[outcomeBadRequest].Inc()
		writeError(w, http.StatusMethodNotAllowed, 0, errors.New("POST only"))
		return nil, false
	}
	var req RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.met.requests[outcomeBadRequest].Inc()
		writeError(w, http.StatusBadRequest, 0, fmt.Errorf("decode request: %w", err))
		return nil, false
	}
	if _, err := req.validate(); err != nil {
		s.met.requests[outcomeBadRequest].Inc()
		writeError(w, http.StatusBadRequest, 0, err)
		return nil, false
	}
	return &req, true
}

// handleKey resolves a request to its content-addressed run key without
// executing anything — clients can pre-compute cache identities and dedup
// requests on their side.
func (s *Server) handleKey(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decode(w, r)
	if !ok {
		return
	}
	level, _ := req.validate()
	key, err := s.runner.KeyFor(req.Workload, req.Seed, req.mod(level))
	if err != nil {
		s.met.requests[outcomeBadRequest].Inc()
		writeError(w, http.StatusBadRequest, 0, err)
		return
	}
	s.met.requests[outcomeOK].Inc()
	writeJSON(w, http.StatusOK, RunResponse{Key: key.Hash(), Kind: req.kind()})
}

// runOutcome carries a finished run across the handler's wait boundary.
type runOutcome struct {
	resp RunResponse
	err  error
}

// handleRun is the service core: drain gate, breaker gate, admission,
// then one governed run on the engine. The computation runs under the
// service's lifetime context — a client disconnect abandons the response,
// never the run, because concurrent identical requests may be coalesced
// onto it.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.met.requests[outcomeDraining].Inc()
		writeError(w, http.StatusServiceUnavailable, time.Second, errors.New("draining"))
		return
	}
	req, ok := s.decode(w, r)
	if !ok {
		return
	}
	level, _ := req.validate()
	br := s.breakers.get(req.kind())
	if err := br.Allow(); err != nil {
		var bo *BreakerOpenError
		retry := time.Second
		if errors.As(err, &bo) {
			bo.Kind = req.kind()
			retry = bo.RetryAfter
		}
		s.met.requests[outcomeBreakerOpen].Inc()
		writeError(w, http.StatusServiceUnavailable, retry, err)
		return
	}
	if err := s.bucket.Acquire(r.Context()); err != nil {
		br.Cancel()
		var shed *ShedError
		if errors.As(err, &shed) {
			s.met.requests[outcomeShed].Inc()
			s.met.shed.Inc()
			writeError(w, http.StatusTooManyRequests, shed.RetryAfter, err)
			return
		}
		s.met.requests[outcomeCanceled].Inc()
		return // client gone while queued; nothing to write to
	}

	if !s.beginRequest() {
		br.Cancel()
		s.met.requests[outcomeDraining].Inc()
		writeError(w, http.StatusServiceUnavailable, time.Second, errors.New("draining"))
		return
	}
	start := time.Now()
	s.inflightN.Add(1)
	done := make(chan runOutcome, 1)
	go func() {
		defer s.inflight.Done()
		defer s.inflightN.Add(-1)
		done <- s.execute(req, level, br)
	}()
	select {
	case o := <-done:
		s.met.latency.Observe(time.Since(start).Seconds())
		if o.err != nil {
			s.met.requests[outcomeFailed].Inc()
			writeError(w, http.StatusInternalServerError, 0, o.err)
			return
		}
		s.met.requests[outcomeOK].Inc()
		writeJSON(w, http.StatusOK, o.resp)
	case <-r.Context().Done():
		// The client gave up; the run continues for other waiters and the
		// disk cache. The response writer is dead, so only count it.
		s.met.requests[outcomeCanceled].Inc()
	}
}

// execute performs one admitted run and reports its outcome to the kind's
// breaker. Cancellation (the service shutting down mid-run) is not a kind
// failure and leaves the breaker untouched.
func (s *Server) execute(req *RunRequest, level system.Enhancement, br *breaker) runOutcome {
	key, err := s.runner.KeyFor(req.Workload, req.Seed, req.mod(level))
	if err != nil {
		br.Cancel()
		return runOutcome{err: err}
	}
	res, src, err := s.runner.RunOne(nil, req.label(), req.Workload, req.Seed,
		req.timeout(), req.mod(level))
	if err != nil {
		if errors.Is(err, context.Canceled) {
			br.Cancel()
		} else {
			br.Report(true)
		}
		return runOutcome{err: err}
	}
	br.Report(false)
	switch src {
	case experiments.SourceComputed:
		s.met.computed.Inc()
	case experiments.SourceDisk:
		s.met.dedupDisk.Inc()
	case experiments.SourceShared:
		s.met.dedupShared.Inc()
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return runOutcome{err: fmt.Errorf("encode result: %w", err)}
	}
	return runOutcome{resp: RunResponse{
		Key:    key.Hash(),
		Kind:   req.kind(),
		Source: string(src),
		Result: raw,
	}}
}

// Drain gracefully stops the service: new work is refused (readiness flips
// to 503, /v1/run answers 503 draining), in-flight requests finish — bounded
// by the configured grace period and by ctx, whichever ends first cancels
// the engine so abandoned runs fail fast — the drain duration lands in
// simserver_drain_seconds, and the flight recorder is flushed to its sink.
// Idempotent; concurrent calls share one drain.
func (s *Server) Drain(ctx context.Context) {
	s.drainOnce.Do(func() {
		s.admitMu.Lock()
		s.draining.Store(true)
		s.admitMu.Unlock()
		start := time.Now()
		finished := make(chan struct{})
		go func() {
			s.inflight.Wait()
			close(finished)
		}()
		grace := time.NewTimer(s.cfg.DrainGrace)
		defer grace.Stop()
		select {
		case <-finished:
		case <-ctx.Done():
			s.runner.Cancel()
			<-finished
		case <-grace.C:
			s.runner.Cancel()
			<-finished
		}
		s.met.drainSeconds.Set(time.Since(start).Seconds())
		// Disk stores are fsync+rename crash-safe, so there is nothing to
		// flush for the cache; only the diagnostics need a final dump.
		_ = s.cfg.Recorder.DumpToSink()
	})
}
