// Package simserver turns the experiment engine into a long-lived sweep
// service: an HTTP API that accepts single-run simulation requests keyed by
// the engine's content-addressed run keys, serves repeated requests from the
// checksummed on-disk store, single-flights concurrent identical requests
// onto one execution, and runs misses on the bounded worker pool under the
// engine's retry/timeout/fault machinery.
//
// The service wraps that engine in a resilience envelope:
//
//   - Admission control: a token bucket bounds the accepted request rate.
//     Requests beyond the burst wait in a bounded queue; once the queue is
//     full, requests are shed with 429 and a Retry-After hint instead of
//     piling up until the process falls over.
//   - Per-kind circuit breakers: permanent run failures are tracked per
//     request kind (enhancement/workload pair) over a sliding window; a kind
//     that keeps failing is cut off with 503 until a cooldown elapses, then
//     probed half-open before full traffic resumes. One poisoned
//     configuration cannot consume the whole pool.
//   - Deadlines: each request's timeout propagates through context into the
//     engine's bounded execution; client disconnects release the response
//     without abandoning the shared computation (other waiters may be
//     coalesced onto it).
//   - Liveness vs readiness: /healthz answers 200 for as long as the process
//     can serve at all; /readyz flips to 503 the moment a drain begins, so a
//     load balancer stops routing new work while in-flight runs finish.
//   - Graceful drain: Drain stops admitting, waits for in-flight requests
//     (bounded by a grace period, after which the sweep context is
//     canceled), flushes the flight recorder, and leaves the disk cache
//     consistent — a kill at any point during the drain leaves no torn
//     entries, because every store is fsync+rename crash-safe.
//
// Every decision the envelope makes is observable through the simserver_*
// metric families on /metrics (see MetricFamilies), the live /runs table and
// the /flightrecorder dump. See docs/SERVICE.md for the API contract.
package simserver

import (
	"fmt"
	"time"

	"atcsim/internal/experiments"
	"atcsim/internal/experiments/runner"
	"atcsim/internal/faultinject"
	"atcsim/internal/metrics"
)

// Config assembles a Server. The zero value of every tunable selects a
// production-reasonable default (see the field comments).
type Config struct {
	// Scale is the simulation scale every request runs at. Zero value
	// selects experiments.Full().
	Scale experiments.Scale
	// Jobs bounds concurrent simulations (the worker pool size). Zero or
	// negative selects runtime.NumCPU().
	Jobs int
	// CacheDir, when non-empty, enables the crash-safe on-disk result store;
	// warm restarts serve repeated requests from it byte-identically.
	CacheDir string
	// RunTimeout, when positive, is the default per-run deadline; a request
	// may override it downward or upward via timeout_ms.
	RunTimeout time.Duration
	// Retry bounds the retry loop around transiently-failing runs (zero
	// value: engine defaults).
	Retry runner.RetryPolicy
	// Faults, when non-nil, injects deterministic faults at the engine's
	// hook points — the chaos-testing seam.
	Faults *faultinject.Plan
	// Registry, when non-nil, receives every simserver_* series plus the
	// engine's own families; nil allocates a private registry (still served
	// on /metrics).
	Registry *metrics.Registry
	// Recorder, when non-nil, receives structured flight-recorder events and
	// is dumped on permanent failures and at the end of a drain.
	Recorder *metrics.FlightRecorder

	// AdmitRate is the steady-state accepted request rate in requests per
	// second. Zero or negative selects 200.
	AdmitRate float64
	// AdmitBurst is the token-bucket capacity — how many requests can be
	// admitted back-to-back before rate limiting engages. Zero or negative
	// selects 64.
	AdmitBurst int
	// AdmitQueue bounds how many requests may wait for a token before
	// further requests are shed with 429. Zero or negative selects 128.
	AdmitQueue int

	// BreakerWindow is the sliding window of per-kind run outcomes the
	// breaker inspects. Zero or negative selects 8.
	BreakerWindow int
	// BreakerThreshold is how many failures within the window trip the
	// breaker open. Zero or negative selects 5.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before
	// half-open probing. Zero or negative selects 5s.
	BreakerCooldown time.Duration
	// BreakerProbes is how many concurrent trial requests a half-open
	// breaker admits. Zero or negative selects 1.
	BreakerProbes int

	// DrainGrace bounds how long Drain waits for in-flight requests before
	// canceling the sweep context. Zero or negative selects 30s.
	DrainGrace time.Duration
}

// withDefaults resolves every zero tunable to its documented default.
func (c Config) withDefaults() Config {
	if len(c.Scale.Workloads) == 0 && c.Scale.TraceLen == 0 {
		c.Scale = experiments.Full()
	}
	if c.AdmitRate <= 0 {
		c.AdmitRate = 200
	}
	if c.AdmitBurst <= 0 {
		c.AdmitBurst = 64
	}
	if c.AdmitQueue <= 0 {
		c.AdmitQueue = 128
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 8
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.BreakerProbes <= 0 {
		c.BreakerProbes = 1
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 30 * time.Second
	}
	return c
}

// New builds a Server: the experiment engine (worker pool, caches, retry
// machinery) plus the service envelope (admission, breakers, metrics). It
// fails only when the cache directory cannot be created.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.New()
	}
	r, err := experiments.NewRunnerWith(cfg.Scale, experiments.Options{
		Jobs:       cfg.Jobs,
		CacheDir:   cfg.CacheDir,
		RunTimeout: cfg.RunTimeout,
		Retry:      cfg.Retry,
		Faults:     cfg.Faults,
		Metrics:    reg,
		Recorder:   cfg.Recorder,
	})
	if err != nil {
		return nil, fmt.Errorf("simserver: %w", err)
	}
	s := &Server{
		cfg:    cfg,
		runner: r,
		reg:    reg,
		bucket: newBucket(cfg.AdmitRate, cfg.AdmitBurst, cfg.AdmitQueue),
		breakers: newBreakerSet(breakerConfig{
			window:    cfg.BreakerWindow,
			threshold: cfg.BreakerThreshold,
			cooldown:  cfg.BreakerCooldown,
			probes:    cfg.BreakerProbes,
		}),
	}
	s.met = newServerMetrics(reg, s)
	return s, nil
}
