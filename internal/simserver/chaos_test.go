package simserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"atcsim/internal/faultinject"
)

// chaosShapes enumerates the distinct request shapes the load test cycles
// through: 3 workloads × 2 enhancement levels × 2 seeds = 12 distinct run
// keys.
func chaosShapes() []RunRequest {
	var shapes []RunRequest
	for _, w := range []string{"xalancbmk", "mcf", "pr"} {
		for _, e := range []string{"baseline", "tempo"} {
			for _, seed := range []int64{1, 2} {
				shapes = append(shapes, RunRequest{Workload: w, Seed: seed, Enhancement: e})
			}
		}
	}
	return shapes
}

// submitUntilDone drives one request to completion, re-submitting on 429
// (after the advertised Retry-After, capped for test speed) and on 503
// breaker refusals. It fails the test on any other non-200 outcome.
func submitUntilDone(t *testing.T, client *http.Client, base string, req RunRequest) RunResponse {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("request %+v never completed", req)
		}
		resp, payload := postWith(t, client, base+"/v1/run", req)
		switch resp.StatusCode {
		case http.StatusOK:
			var rr RunResponse
			if err := json.Unmarshal(payload, &rr); err != nil {
				t.Fatalf("decode: %v (%s)", err, payload)
			}
			return rr
		case http.StatusTooManyRequests:
			// Acceptance: every shed response must carry a Retry-After hint.
			ra := resp.Header.Get("Retry-After")
			if ra == "" {
				t.Errorf("429 without Retry-After header")
			}
			secs, err := strconv.ParseInt(ra, 10, 64)
			if err != nil || secs < 1 {
				t.Errorf("Retry-After %q not a positive integer", ra)
			}
			wait := time.Duration(secs) * time.Second
			if wait > 50*time.Millisecond {
				wait = 50 * time.Millisecond // honor the hint's spirit, not its tail
			}
			time.Sleep(wait)
		case http.StatusServiceUnavailable:
			time.Sleep(20 * time.Millisecond)
		default:
			t.Fatalf("request %+v: unexpected status %d: %s", req, resp.StatusCode, payload)
		}
	}
}

func postWith(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, payload
}

// TestChaosConcurrentLoad is the load-test acceptance gate: 240 concurrent
// requests over 12 distinct run keys, against a server with seeded
// transient faults and a tight admission envelope. Exactly one simulation
// per distinct key may execute; every response for a key must be
// byte-identical; shed responses must carry Retry-After; everything must
// eventually succeed.
func TestChaosConcurrentLoad(t *testing.T) {
	dir := t.TempDir()
	faults := faultinject.NewPlan(7,
		// Every mcf run fails its first attempt, then heals: exercises the
		// retry loop under concurrency without tripping breakers
		// (threshold 5 > 1 transient attempt per identity).
		faultinject.Rule{Site: faultinject.SiteRun, Match: "mcf", Kind: faultinject.KindTransient, Until: 1},
		// A few slow runs stretch the in-flight window so coalescing and
		// queue depth are actually exercised.
		faultinject.Rule{Site: faultinject.SiteRun, Match: "pr", Kind: faultinject.KindSlow, Until: 1, Delay: 30 * time.Millisecond},
	)
	s, ts := newTestServer(t, func(c *Config) {
		c.CacheDir = dir
		c.Faults = faults
		c.Retry.BaseDelay = time.Millisecond
		c.Retry.MaxDelay = 4 * time.Millisecond
		// Tight admission: shed traffic is part of the test.
		c.AdmitRate = 2000
		c.AdmitBurst = 32
		c.AdmitQueue = 64
	})

	shapes := chaosShapes()
	const clients = 240
	client := ts.Client()
	var mu sync.Mutex
	results := make(map[string][][]byte) // key → every result payload seen
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rr := submitUntilDone(t, client, ts.URL, shapes[i%len(shapes)])
			mu.Lock()
			results[rr.Key] = append(results[rr.Key], rr.Result)
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	if len(results) != len(shapes) {
		t.Errorf("distinct keys = %d, want %d", len(results), len(shapes))
	}
	total := 0
	for key, payloads := range results {
		total += len(payloads)
		for i := 1; i < len(payloads); i++ {
			if !bytes.Equal(payloads[0], payloads[i]) {
				t.Errorf("key %s: response %d differs from response 0", key, i)
				break
			}
		}
	}
	if total != clients {
		t.Errorf("completed responses = %d, want %d", total, clients)
	}
	// Exactly one compute per distinct key, regardless of concurrency,
	// shedding and retries.
	if runs := s.Runner().Runs(); runs != len(shapes) {
		t.Errorf("Runs() = %d, want exactly %d (one per distinct key)", runs, len(shapes))
	}
	if q := s.Runner().Quarantined(); q != 0 {
		t.Errorf("Quarantined() = %d under transient-only faults", q)
	}

	// Cold vs warm: a fresh server over the same cache directory serves
	// every shape from disk, byte-identically, with zero computes.
	s2, ts2 := newTestServer(t, func(c *Config) { c.CacheDir = dir })
	for _, shape := range shapes {
		warm := runOK(t, ts2.URL, shape)
		if warm.Source != "disk" {
			t.Errorf("warm %+v: source %q, want disk", shape, warm.Source)
		}
		mu.Lock()
		cold := results[warm.Key]
		mu.Unlock()
		if len(cold) == 0 {
			t.Errorf("warm key %s never seen cold", warm.Key)
		} else if !bytes.Equal(cold[0], warm.Result) {
			t.Errorf("warm %+v: result differs from cold run", shape)
		}
	}
	if runs := s2.Runner().Runs(); runs != 0 {
		t.Errorf("warm server computed %d runs, want 0", runs)
	}
}

// TestChaosBreakerIsolatesPoisonedKind proves one permanently-failing kind
// trips its own breaker without cutting off healthy kinds.
func TestChaosBreakerIsolatesPoisonedKind(t *testing.T) {
	faults := faultinject.NewPlan(11,
		faultinject.Rule{Site: faultinject.SiteRun, Match: "svc:baseline/mcf", Kind: faultinject.KindPermanent},
	)
	s, ts := newTestServer(t, func(c *Config) {
		c.Faults = faults
		c.Retry.MaxAttempts = 1
		c.BreakerWindow = 4
		c.BreakerThreshold = 2
		c.BreakerCooldown = time.Hour // stays open for the test's lifetime
	})
	bad := RunRequest{Workload: "mcf", Seed: 1}
	sawOpen := false
	for i := 0; i < 8; i++ {
		// Distinct seeds defeat result memoization so each request is a
		// fresh failing run feeding the breaker window.
		bad.Seed = int64(i + 1)
		resp, payload := post(t, ts.URL+"/v1/run", bad)
		switch resp.StatusCode {
		case http.StatusInternalServerError:
			// A real failed run.
		case http.StatusServiceUnavailable:
			sawOpen = true
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Error("breaker 503 without Retry-After")
			}
		default:
			t.Fatalf("poisoned request %d: status %d: %s", i, resp.StatusCode, payload)
		}
		if sawOpen {
			break
		}
	}
	if !sawOpen {
		t.Fatal("breaker never opened for the poisoned kind")
	}
	if got := s.breakers.get("baseline/mcf").State(); got != breakerOpen {
		t.Errorf("poisoned kind state = %v, want open", got)
	}
	// A healthy kind still flows.
	healthy := runOK(t, ts.URL, RunRequest{Workload: "xalancbmk", Seed: 1})
	if healthy.Source != "computed" {
		t.Errorf("healthy kind source = %q", healthy.Source)
	}
}

// TestChaosClientCancelDoesNotAbandonRun proves a client disconnect
// releases the response without killing the shared computation: the result
// still lands in cache and serves later requests.
func TestChaosClientCancelDoesNotAbandonRun(t *testing.T) {
	dir := t.TempDir()
	faults := faultinject.NewPlan(3,
		faultinject.Rule{Site: faultinject.SiteRun, Match: "pr", Kind: faultinject.KindSlow, Until: 1, Delay: 200 * time.Millisecond},
	)
	s, ts := newTestServer(t, func(c *Config) {
		c.CacheDir = dir
		c.Faults = faults
	})
	raw, _ := json.Marshal(RunRequest{Workload: "pr", Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the slow run start
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("canceled request did not error client-side")
	}
	// The abandoned run must still complete and serve later requests.
	deadline := time.Now().Add(30 * time.Second)
	for s.Runner().Runs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned run never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	later := runOK(t, ts.URL, RunRequest{Workload: "pr", Seed: 1})
	if later.Source == "computed" {
		t.Errorf("later request recomputed; want shared/disk, got %q", later.Source)
	}
	if s.Runner().Runs() != 1 {
		t.Errorf("Runs() = %d, want 1", s.Runner().Runs())
	}
}

// TestChaosDrainFinishesInflightWithoutTornEntries drives requests into a
// drain: in-flight work finishes and is answered, readiness reports 503
// for the full drain window, new work is refused, and the cache directory
// holds no torn or quarantined entries afterwards.
func TestChaosDrainFinishesInflightWithoutTornEntries(t *testing.T) {
	dir := t.TempDir()
	faults := faultinject.NewPlan(5,
		faultinject.Rule{Site: faultinject.SiteRun, Kind: faultinject.KindSlow, Until: 1, Delay: 150 * time.Millisecond},
	)
	s, ts := newTestServer(t, func(c *Config) {
		c.CacheDir = dir
		c.Faults = faults
		c.DrainGrace = 30 * time.Second
	})
	// Launch in-flight work.
	type res struct {
		rr  RunResponse
		err error
	}
	inflight := make(chan res, 3)
	for i, w := range []string{"xalancbmk", "mcf", "pr"} {
		go func(i int, w string) {
			defer func() {
				if p := recover(); p != nil {
					inflight <- res{err: fmt.Errorf("panic: %v", p)}
				}
			}()
			rr := runOK(t, ts.URL, RunRequest{Workload: w, Seed: 1})
			inflight <- res{rr: rr}
		}(i, w)
	}
	time.Sleep(60 * time.Millisecond) // let the slow runs start

	drained := make(chan struct{})
	go func() {
		s.Drain(context.Background())
		close(drained)
	}()
	// Readiness must report 503 for the full drain window.
	deadline := time.Now().Add(10 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain flag never flipped")
		}
		time.Sleep(time.Millisecond)
	}
	sawNotReady := 0
	for {
		select {
		case <-drained:
		default:
		}
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/readyz during drain = %d, want 503", resp.StatusCode)
		}
		sawNotReady++
		select {
		case <-drained:
		case <-time.After(20 * time.Millisecond):
			continue
		}
		break
	}
	if sawNotReady == 0 {
		t.Error("readiness never polled during drain")
	}
	// In-flight requests were answered, not dropped.
	for i := 0; i < 3; i++ {
		select {
		case r := <-inflight:
			if r.err != nil {
				t.Errorf("in-flight request during drain: %v", r.err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("in-flight request never answered")
		}
	}
	// Zero lost entries: every completed run is on disk, whole.
	if q := s.Runner().Quarantined(); q != 0 {
		t.Errorf("drain quarantined %d entries", q)
	}
	if bad, _ := filepath.Glob(filepath.Join(dir, "*.bad")); len(bad) != 0 {
		t.Errorf("torn/quarantined entries after drain: %v", bad)
	}
	if tmp, _ := filepath.Glob(filepath.Join(dir, "entry-*.tmp")); len(tmp) != 0 {
		t.Errorf("stale temp files after drain: %v", tmp)
	}
	entries, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(entries) != 3 {
		t.Errorf("cache entries after drain = %d, want 3", len(entries))
	}
	// A warm restart on the drained cache serves everything from disk.
	_, ts2 := newTestServer(t, func(c *Config) { c.CacheDir = dir })
	for _, w := range []string{"xalancbmk", "mcf", "pr"} {
		warm := runOK(t, ts2.URL, RunRequest{Workload: w, Seed: 1})
		if warm.Source != "disk" {
			t.Errorf("post-drain warm %s: source %q, want disk", w, warm.Source)
		}
	}
}
