package simserver

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced time source for admission and breaker
// tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBucketBurstThenShed(t *testing.T) {
	clock := newFakeClock()
	b := newBucket(10, 3, 0) // 3 burst, no waiter queue
	b.now = clock.Now
	b.tokens = 3
	b.last = clock.Now()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := b.Acquire(ctx); err != nil {
			t.Fatalf("burst acquire %d: %v", i, err)
		}
	}
	err := b.Acquire(ctx)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("4th acquire: got %v, want *ShedError", err)
	}
	if shed.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want positive", shed.RetryAfter)
	}
}

func TestBucketRefillsAtRate(t *testing.T) {
	clock := newFakeClock()
	b := newBucket(10, 5, 0) // 10 tokens/sec
	b.now = clock.Now
	b.tokens = 0
	b.last = clock.Now()
	ctx := context.Background()
	if err := b.Acquire(ctx); !errors.As(err, new(*ShedError)) {
		t.Fatalf("empty bucket admitted: %v", err)
	}
	clock.Advance(250 * time.Millisecond) // 2.5 tokens accrue
	for i := 0; i < 2; i++ {
		if err := b.Acquire(ctx); err != nil {
			t.Fatalf("post-refill acquire %d: %v", i, err)
		}
	}
	if err := b.Acquire(ctx); !errors.As(err, new(*ShedError)) {
		t.Fatalf("over-refill admitted: %v", err)
	}
	// Refill never exceeds the burst.
	clock.Advance(time.Hour)
	b.mu.Lock()
	b.refill()
	if b.tokens > b.burst {
		t.Errorf("tokens %v exceed burst %v", b.tokens, b.burst)
	}
	b.mu.Unlock()
}

func TestBucketQueuedAcquireAdmitsWhenTokensAccrue(t *testing.T) {
	b := newBucket(200, 1, 8) // fast real-time refill
	ctx := context.Background()
	if err := b.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Bucket is now empty; this acquire must queue and then be admitted as
	// real time passes (5ms per token at rate 200).
	done := make(chan error, 1)
	go func() { done <- b.Acquire(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued acquire: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued acquire never admitted")
	}
	if w := b.Waiters(); w != 0 {
		t.Errorf("Waiters() = %d after queue drained", w)
	}
}

func TestBucketCanceledWaiterReturnsCtxError(t *testing.T) {
	b := newBucket(0.001, 1, 8) // glacial refill: waiters park
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Acquire(ctx) }()
	// Give the waiter time to park, then abandon it.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled waiter: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter never returned")
	}
}

func TestBucketQueueBoundSheds(t *testing.T) {
	b := newBucket(0.001, 1, 2)
	ctx := context.Background()
	if err := b.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Fill the waiter queue.
	ctxWait, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go b.Acquire(ctxWait)
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Waiters() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// The queue is full: the next acquire sheds instead of queuing.
	err := b.Acquire(ctx)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("over-bound acquire: got %v, want *ShedError", err)
	}
}
