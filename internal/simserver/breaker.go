package simserver

import (
	"fmt"
	"sync"
	"time"
)

// breakerState is a circuit breaker's position.
type breakerState int

const (
	// breakerClosed: traffic flows; outcomes are recorded in the window.
	breakerClosed breakerState = iota
	// breakerHalfOpen: the cooldown elapsed; a bounded number of probe
	// requests test whether the kind has recovered.
	breakerHalfOpen
	// breakerOpen: the kind is cut off until the cooldown elapses.
	breakerOpen
)

// String renders the state for metrics help text and errors.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// BreakerOpenError reports a request refused because its kind's circuit
// breaker is open. RetryAfter is when the breaker next admits a probe.
type BreakerOpenError struct {
	Kind       string
	RetryAfter time.Duration
}

// Error renders the refusal with the retry hint.
func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("circuit breaker open for %s; retry after %v", e.Kind, e.RetryAfter)
}

// breakerConfig is the shared tuning of every breaker in a set.
type breakerConfig struct {
	window    int           // sliding window of recorded outcomes
	threshold int           // failures within the window that trip it
	cooldown  time.Duration // open → half-open delay
	probes    int           // concurrent half-open trial requests
}

// breaker is one kind's circuit breaker: a sliding window of recent run
// outcomes, tripping open when failures within the window reach the
// threshold, cooling down, then probing half-open. All methods are safe for
// concurrent use.
type breaker struct {
	mu       sync.Mutex
	cfg      breakerConfig
	state    breakerState
	window   []bool // ring buffer: true = failure
	idx, n   int
	failures int
	openedAt time.Time
	inProbe  int
	trips    uint64
	// now is the clock seam for tests.
	now func() time.Time
}

func newBreaker(cfg breakerConfig, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{cfg: cfg, window: make([]bool, cfg.window), now: now}
}

// Allow reports whether a request of this kind may proceed, returning a
// *BreakerOpenError with a retry hint when it may not. A half-open breaker
// admits up to cfg.probes concurrent trials.
func (b *breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if elapsed := b.now().Sub(b.openedAt); elapsed >= b.cfg.cooldown {
			b.state = breakerHalfOpen
			b.inProbe = 0
		} else {
			return &BreakerOpenError{RetryAfter: b.cfg.cooldown - elapsed}
		}
	}
	// Half-open (possibly just transitioned): admit bounded probes.
	if b.inProbe >= b.cfg.probes {
		return &BreakerOpenError{RetryAfter: b.cfg.cooldown}
	}
	b.inProbe++
	return nil
}

// Report records one admitted request's outcome. In the closed state a
// failure ratchets the window and may trip the breaker; in the half-open
// state one success closes it and one failure reopens it.
func (b *breaker) Report(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		if b.inProbe > 0 {
			b.inProbe--
		}
		if failure {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.trips++
			return
		}
		b.reset()
	case breakerClosed:
		if b.n == len(b.window) && b.window[b.idx] {
			b.failures-- // the outcome falling out of the window
		}
		b.window[b.idx] = failure
		b.idx = (b.idx + 1) % len(b.window)
		if b.n < len(b.window) {
			b.n++
		}
		if failure {
			b.failures++
			if b.failures >= b.cfg.threshold {
				b.state = breakerOpen
				b.openedAt = b.now()
				b.trips++
			}
		}
	case breakerOpen:
		// A request admitted before the trip finishing late: no-op.
	}
}

// Cancel releases an admitted slot without recording an outcome — the
// request was admitted by the breaker but never ran (shed by admission
// control, client gone before start). Only half-open probe accounting
// needs the release; every other state is a no-op.
func (b *breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen && b.inProbe > 0 {
		b.inProbe--
	}
}

// reset returns the breaker to a clean closed state.
func (b *breaker) reset() {
	b.state = breakerClosed
	for i := range b.window {
		b.window[i] = false
	}
	b.idx, b.n, b.failures, b.inProbe = 0, 0, 0, 0
}

// State returns the current state (resolving an elapsed cooldown lazily).
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && b.now().Sub(b.openedAt) >= b.cfg.cooldown {
		return breakerHalfOpen
	}
	return b.state
}

// Trips returns how many times this breaker has tripped open.
func (b *breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// breakerSet lazily materializes one breaker per request kind.
type breakerSet struct {
	mu  sync.Mutex
	cfg breakerConfig
	m   map[string]*breaker
	// onNew, when non-nil, observes each newly created kind (the metrics
	// registration hook). Called outside the set lock is not needed — the
	// registry takes its own lock — but called exactly once per kind.
	onNew func(kind string, b *breaker)
	now   func() time.Time
}

func newBreakerSet(cfg breakerConfig) *breakerSet {
	return &breakerSet{cfg: cfg, m: make(map[string]*breaker), now: time.Now}
}

// get returns (creating on first use) the breaker for a kind.
func (s *breakerSet) get(kind string) *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[kind]
	if !ok {
		b = newBreaker(s.cfg, s.now)
		s.m[kind] = b
		if s.onNew != nil {
			s.onNew(kind, b)
		}
	}
	return b
}
