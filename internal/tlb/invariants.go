package tlb

import "fmt"

// CheckInvariants audits the TLB's structural state: no two valid entries in
// a set map the same virtual page, every valid entry lives in the set its
// VPN indexes, and the 2MB-page array never exceeds its configured capacity.
// It returns a descriptive error on the first violation.
func (t *TLB) CheckInvariants() error {
	for set := 0; set < t.sets; set++ {
		base := set * t.ways
		for w := 0; w < t.ways; w++ {
			vpn := t.vpns[base+w]
			if vpn == invalidVPN {
				continue
			}
			if got := t.setOf(vpn); got != set {
				return fmt.Errorf("tlb %s: vpn %#x stored in set %d but maps to set %d",
					t.cfg.Name, vpn, set, got)
			}
			for w2 := w + 1; w2 < t.ways; w2++ {
				if t.vpns[base+w2] == vpn {
					return fmt.Errorf("tlb %s: duplicate vpn %#x in set %d (ways %d and %d)",
						t.cfg.Name, vpn, set, w, w2)
				}
			}
			if st := t.stamps[base+w]; st > t.clock {
				return fmt.Errorf("tlb %s: entry vpn %#x stamp %d ahead of clock %d",
					t.cfg.Name, vpn, st, t.clock)
			}
		}
	}
	if t.cfg.HugeEntries > 0 && len(t.huge) > t.cfg.HugeEntries {
		return fmt.Errorf("tlb %s: huge array holds %d entries, capacity %d",
			t.cfg.Name, len(t.huge), t.cfg.HugeEntries)
	}
	return nil
}

// CheckInvariants audits the paging-structure caches: every level stays
// within its configured capacity.
func (p *PSC) CheckInvariants() error {
	for lvl, c := range p.caches {
		if c == nil {
			continue
		}
		if len(c.ents) > c.cap {
			return fmt.Errorf("psc level %d: %d entries, capacity %d", lvl, len(c.ents), c.cap)
		}
	}
	return nil
}
