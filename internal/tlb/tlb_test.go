package tlb

import (
	"testing"
	"testing/quick"

	"atcsim/internal/mem"
)

func page(n int) mem.Addr { return mem.Addr(n) << mem.PageBits }

func TestGeometryValidation(t *testing.T) {
	if _, err := New(Config{Entries: 0, Ways: 4}); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := New(Config{Entries: 10, Ways: 4}); err == nil {
		t.Error("entries not divisible by ways accepted")
	}
	if _, err := New(Config{Entries: 24, Ways: 4}); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	tl := MustNew(Config{Name: "dtlb", Entries: 64, Ways: 4, Latency: 1})
	if tl.Name() != "dtlb" || tl.Latency() != 1 || tl.Entries() != 64 {
		t.Error("accessors wrong")
	}
}

func TestLookupInsert(t *testing.T) {
	tl := MustNew(Config{Entries: 64, Ways: 4})
	va := page(100) + 123
	if _, hit := tl.Lookup(va); hit {
		t.Fatal("hit in empty TLB")
	}
	tl.Insert(va, 0xABC000)
	frame, hit := tl.Lookup(va)
	if !hit || frame != 0xABC000 {
		t.Fatalf("lookup = %#x,%v", frame, hit)
	}
	// A different offset in the same page hits too.
	if _, hit := tl.Lookup(page(100) + 4000); !hit {
		t.Error("same-page lookup missed")
	}
	// A different page misses.
	if _, hit := tl.Lookup(page(101)); hit {
		t.Error("different page hit")
	}
	st := tl.Stats()
	if st.Accesses != 4 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// 4 entries, 4 ways: one set.
	tl := MustNew(Config{Entries: 4, Ways: 4})
	for i := 0; i < 4; i++ {
		tl.Insert(page(i), mem.Addr(i)<<mem.PageBits)
	}
	// Touch page 0 so page 1 is LRU.
	tl.Lookup(page(0))
	tl.Insert(page(9), 0x9000)
	if _, hit := tl.Lookup(page(1)); hit {
		t.Error("LRU entry survived eviction")
	}
	if _, hit := tl.Lookup(page(0)); !hit {
		t.Error("MRU entry evicted")
	}
	if tl.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", tl.Stats().Evictions)
	}
}

func TestInsertRefreshesExisting(t *testing.T) {
	tl := MustNew(Config{Entries: 4, Ways: 4})
	tl.Insert(page(1), 0x1000)
	tl.Insert(page(1), 0x2000) // remap, no new entry
	frame, hit := tl.Lookup(page(1))
	if !hit || frame != 0x2000 {
		t.Errorf("refresh lookup = %#x,%v", frame, hit)
	}
	if tl.Stats().Evictions != 0 {
		t.Error("refresh caused eviction")
	}
}

func TestRecallDistanceAtSTLB(t *testing.T) {
	// One-set TLB with recall tracking (Fig. 18 machinery).
	tl := MustNew(Config{Entries: 2, Ways: 2, TrackRecall: true})
	tl.Lookup(page(1)) // seq 1, miss
	tl.Insert(page(1), 0x1000)
	tl.Lookup(page(2)) // seq 2, miss
	tl.Insert(page(2), 0x2000)
	tl.Lookup(page(3)) // seq 3, miss; insert evicts page 1 at seq 3
	tl.Insert(page(3), 0x3000)
	tl.Lookup(page(4)) // seq 4
	tl.Lookup(page(1)) // seq 5 → recall distance 5-3 = 2
	h := tl.RecallHistogram()
	if h == nil || h.Total() != 1 {
		t.Fatalf("recall samples = %v", h)
	}
	if h.Max() != 2 {
		t.Errorf("recall distance = %d, want 2", h.Max())
	}
	tl.ResetStats()
	if tl.RecallHistogram().Total() != 0 {
		t.Error("ResetStats did not clear histogram")
	}
}

func TestRecallDisabled(t *testing.T) {
	tl := MustNew(Config{Entries: 4, Ways: 4})
	if tl.RecallHistogram() != nil {
		t.Error("histogram without tracking")
	}
}

func TestTLBNeverForgetsWrongFrame(t *testing.T) {
	tl := MustNew(Config{Entries: 64, Ways: 4})
	truth := map[mem.Addr]mem.Addr{}
	f := func(ops []uint16) bool {
		for _, op := range ops {
			vpn := mem.Addr(op % 256)
			va := vpn << mem.PageBits
			if op%2 == 0 {
				frame := mem.Addr(op) << mem.PageBits
				tl.Insert(va, frame)
				truth[vpn] = frame
			} else if frame, hit := tl.Lookup(va); hit {
				if want, ok := truth[vpn]; !ok || frame != want {
					return false // hit with a frame never inserted
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPSCDeepestHitWins(t *testing.T) {
	p := NewPSC(DefaultPSCSizes())
	va := mem.Addr(0x1234_5678_9000)
	if got := p.Lookup(va); got != mem.PTLevels {
		t.Fatalf("empty PSC start level = %d, want %d", got, mem.PTLevels)
	}
	// Insert at level 4: walker starts at 3.
	p.Insert(va, 4, 0xAAA000)
	if got := p.Lookup(va); got != 3 {
		t.Errorf("start level = %d, want 3", got)
	}
	// Insert at level 2 (deepest): walker starts at 1 (leaf only).
	p.Insert(va, 2, 0xBBB000)
	if got := p.Lookup(va); got != 1 {
		t.Errorf("start level = %d, want 1", got)
	}
	st := p.Stats()
	if st.Lookups != 3 || st.Hits[2] != 1 || st.Hits[4] != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPSCPrefixSharing(t *testing.T) {
	p := NewPSC(DefaultPSCSizes())
	// Two addresses in the same 2MB region share the PSCL2 entry.
	a := mem.Addr(0x4000_0000)
	b := a + 512*mem.PageSize - 1 // last byte of the same level-1 table reach
	p.Insert(a, 2, 0xCCC000)
	if got := p.Lookup(b); got != 1 {
		t.Errorf("same-region lookup start = %d, want 1", got)
	}
	// An address in a different 2MB region misses PSCL2.
	c := a + 512*mem.PageSize
	if got := p.Lookup(c); got != mem.PTLevels {
		t.Errorf("cross-region lookup start = %d, want %d", got, mem.PTLevels)
	}
}

func TestPSCCapacityLRU(t *testing.T) {
	p := NewPSC(PSCSizes{L2: 2, L3: 1, L4: 1, L5: 1})
	region := func(i int) mem.Addr { return mem.Addr(i) << 21 } // distinct 2MB regions
	p.Insert(region(0), 2, 0x1000)
	p.Insert(region(1), 2, 0x2000)
	p.Lookup(region(0)) // refresh region 0
	p.Insert(region(2), 2, 0x3000)
	// Region 1 was LRU and must be gone.
	if got := p.Lookup(region(1)); got != mem.PTLevels {
		t.Error("LRU PSC entry survived")
	}
	if got := p.Lookup(region(0)); got != 1 {
		t.Error("MRU PSC entry evicted")
	}
}

func TestPSCInsertBounds(t *testing.T) {
	p := NewPSC(DefaultPSCSizes())
	p.Insert(0, 1, 0x1) // invalid level: ignored
	p.Insert(0, 6, 0x1) // invalid level: ignored
	if got := p.Lookup(0); got != mem.PTLevels {
		t.Error("invalid insert became visible")
	}
	p.ResetStats()
	if p.Stats().Lookups != 0 {
		t.Error("ResetStats failed")
	}
}

func TestHugeEntries(t *testing.T) {
	tl := MustNew(Config{Entries: 64, Ways: 4, HugeEntries: 2})
	va := mem.Addr(0x4020_1234)
	tl.InsertHuge(va, mem.HugePageBase(0xA000_0000))
	// Any address within the same 2MB region hits the huge entry.
	frame, hit := tl.Lookup(va + 0x12345)
	if !hit || frame != mem.HugePageBase(0xA000_0000) {
		t.Fatalf("huge lookup = %#x,%v", frame, hit)
	}
	// A different 2MB region misses.
	if _, hit := tl.Lookup(va + mem.HugePageSize); hit {
		t.Error("cross-region huge hit")
	}
	// LRU within the huge array.
	tl.InsertHuge(va+1*mem.HugePageSize, 0xB000_0000)
	tl.Lookup(va) // refresh first
	tl.InsertHuge(va+2*mem.HugePageSize, 0xC000_0000)
	if _, hit := tl.Lookup(va + 1*mem.HugePageSize); hit {
		t.Error("LRU huge entry survived")
	}
	if _, hit := tl.Lookup(va); !hit {
		t.Error("MRU huge entry evicted")
	}
}

func TestHugeInsertDroppedWithoutArray(t *testing.T) {
	tl := MustNew(Config{Entries: 64, Ways: 4}) // HugeEntries: 0
	tl.InsertHuge(0x40_0000, 0xA000_0000)
	if _, hit := tl.Lookup(0x40_0000); hit {
		t.Error("huge entry visible with HugeEntries=0")
	}
}
