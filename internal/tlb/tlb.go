// Package tlb implements the translation caching structures in front of the
// page-table walker: set-associative TLBs (DTLB, ITLB, the unified STLB)
// with LRU replacement, and the paging-structure caches (PSCL2..PSCL5) that
// let the walker skip upper page-table levels. The STLB can optionally track
// recall distances for the paper's Fig. 18.
package tlb

import (
	"fmt"

	"atcsim/internal/mem"
	"atcsim/internal/stats"
	"atcsim/internal/telemetry"
)

// Config describes one TLB.
type Config struct {
	Name    string // display name used in reports and panics
	Entries int    // total 4KB-page entries (sets = Entries/Ways)
	Ways    int    // set associativity
	Latency int64  // lookup latency in cycles
	// HugeEntries sizes the fully-associative 2MB-page array (0 disables
	// it; only used when the workload maps huge pages).
	HugeEntries int
	// TrackRecall enables the eviction/recall-distance histogram (Fig. 18).
	TrackRecall bool
}

// Stats counts TLB activity.
type Stats struct {
	Accesses  uint64 // lookups, huge and 4KB combined
	Misses    uint64 // lookups that missed both arrays
	Evictions uint64 // valid 4KB entries displaced by Insert
}

// invalidVPN marks an empty way in the vpns array. Real VPNs are virtual
// addresses shifted right by the page bits, so the all-ones pattern can
// never collide with one.
const invalidVPN = ^mem.Addr(0)

// TLB is a set-associative virtual-page to physical-frame cache with LRU
// replacement. Entries are stored struct-of-arrays, indexed set*ways+way:
// the lookup scan touches only the vpns array (valid bit folded into the
// invalidVPN sentinel), one cache line per 8 ways instead of one per 2.
type TLB struct {
	cfg    Config
	sets   int
	ways   int
	vpns   []mem.Addr
	frames []mem.Addr // physical frame base per way
	stamps []uint64   // LRU stamps per way
	clock  uint64
	st     Stats
	tr     *telemetry.Tracer

	// evictHook, when set, observes every valid 4KB entry displaced by
	// Insert (Victima re-parks these in the data caches). Huge-page
	// evictions are not reported: cache-resident TLB blocks hold 4KB
	// translations only.
	evictHook func(vpn, frame mem.Addr)

	// 2MB-page entries: fully associative, LRU. A flat array with linear
	// search — the array holds at most a few dozen entries, and scanning it
	// beats a map's hashing and per-entry allocations. nil until the first
	// huge-page insert so the common no-huge-pages lookup is one branch.
	huge []hugeEntry

	// recall tracking, mirroring the cache recall tracker. Evicted VPNs of
	// all sets share one map: a VPN determines its set, so keying by VPN
	// alone is equivalent to the earlier per-set map-of-maps and avoids one
	// map header per set.
	recSeq     []uint64
	recLast    []mem.Addr
	recEvict   map[mem.Addr]uint64
	recHist    *stats.Histogram
	recEvTotal uint64
}

type hugeEntry struct {
	hpn   mem.Addr
	frame mem.Addr
	stamp uint64
}

// New builds a TLB; Entries must be divisible by Ways and yield a
// power-of-two set count.
func New(cfg Config) (*TLB, error) {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		return nil, fmt.Errorf("tlb %s: bad geometry entries=%d ways=%d", cfg.Name, cfg.Entries, cfg.Ways)
	}
	sets := cfg.Entries / cfg.Ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("tlb %s: set count %d not a power of two", cfg.Name, sets)
	}
	t := &TLB{
		cfg: cfg, sets: sets, ways: cfg.Ways,
		vpns:   make([]mem.Addr, cfg.Entries),
		frames: make([]mem.Addr, cfg.Entries),
		stamps: make([]uint64, cfg.Entries),
	}
	for i := range t.vpns {
		t.vpns[i] = invalidVPN
	}
	if cfg.TrackRecall {
		t.recSeq = make([]uint64, sets)
		t.recLast = make([]mem.Addr, sets)
		t.recEvict = make(map[mem.Addr]uint64)
		t.recHist = stats.NewHistogram(stats.RecallBounds...)
	}
	return t, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *TLB {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the configured name.
func (t *TLB) Name() string { return t.cfg.Name }

// Latency returns the lookup latency in cycles.
func (t *TLB) Latency() int64 { return t.cfg.Latency }

// Entries returns the total entry count.
func (t *TLB) Entries() int { return t.cfg.Entries }

// Stats returns a snapshot of the counters.
func (t *TLB) Stats() Stats { return t.st }

// SetEvictHook registers fn to observe every 4KB-entry eviction (nil
// disables). The hook fires synchronously inside Insert, after statistics
// are counted and before the victim is overwritten; it must not re-enter
// this TLB.
func (t *TLB) SetEvictHook(fn func(vpn, frame mem.Addr)) { t.evictHook = fn }

// SetTracer attaches a request-lifecycle tracer (nil disables). Evictions
// that occur inside a sampled request's window are recorded as instant
// events on the MMU lane — set thrash during a tracked walk is visible in
// the trace.
func (t *TLB) SetTracer(tr *telemetry.Tracer) { t.tr = tr }

// ResetStats zeroes counters and the recall histogram.
func (t *TLB) ResetStats() {
	t.st = Stats{}
	if t.recHist != nil {
		t.recHist.Reset()
	}
	t.recEvTotal = 0
}

// RecallHistogram returns the STLB recall-distance histogram, or nil when
// tracking is disabled.
func (t *TLB) RecallHistogram() *stats.Histogram { return t.recHist }

func (t *TLB) setOf(vpn mem.Addr) int { return int(vpn) & (t.sets - 1) }

// Lookup searches for the translation of va's page (checking the 2MB array
// first). On a hit it returns the physical frame base — 2MB-aligned for a
// huge hit — and refreshes LRU state.
func (t *TLB) Lookup(va mem.Addr) (frame mem.Addr, hit bool) {
	if t.huge != nil {
		hpn := mem.HugePageNumber(va)
		for i := range t.huge {
			if e := &t.huge[i]; e.hpn == hpn {
				t.st.Accesses++
				t.clock++
				e.stamp = t.clock
				return e.frame, true
			}
		}
	}
	vpn := mem.PageNumber(va)
	set := t.setOf(vpn)
	t.st.Accesses++
	t.observeRecall(set, vpn)
	base := set * t.ways
	for w := 0; w < t.ways; w++ {
		if t.vpns[base+w] == vpn {
			t.clock++
			t.stamps[base+w] = t.clock
			return t.frames[base+w], true
		}
	}
	t.st.Misses++
	return 0, false
}

// Insert fills the translation of va's page, evicting the LRU entry of the
// set when full.
func (t *TLB) Insert(va, frame mem.Addr) {
	vpn := mem.PageNumber(va)
	set := t.setOf(vpn)
	base := set * t.ways
	victim := 0
	var victimStamp uint64 = ^uint64(0)
	for w := 0; w < t.ways; w++ {
		i := base + w
		if t.vpns[i] == vpn {
			// Refresh an existing entry.
			t.frames[i] = frame
			t.clock++
			t.stamps[i] = t.clock
			return
		}
		if t.vpns[i] == invalidVPN {
			victim = w
			victimStamp = 0
		} else if t.stamps[i] < victimStamp {
			victim = w
			victimStamp = t.stamps[i]
		}
	}
	i := base + victim
	if old := t.vpns[i]; old != invalidVPN {
		t.st.Evictions++
		t.evictRecall(set, old)
		if t.evictHook != nil {
			t.evictHook(old, t.frames[i])
		}
		if t.tr.Active() {
			t.tr.Instant("tlb", t.cfg.Name+" evict", telemetry.LaneMMU,
				telemetry.IArg("vpn", int64(old)), telemetry.IArg("set", int64(set)))
		}
	}
	t.clock++
	t.vpns[i], t.frames[i], t.stamps[i] = vpn, frame, t.clock
}

func (t *TLB) observeRecall(set int, vpn mem.Addr) {
	if t.recHist == nil {
		return
	}
	if vpn != t.recLast[set] || t.recSeq[set] == 0 {
		t.recSeq[set]++
		t.recLast[set] = vpn
	}
	if at, ok := t.recEvict[vpn]; ok {
		t.recHist.Add(t.recSeq[set] - at)
		delete(t.recEvict, vpn)
	}
}

func (t *TLB) evictRecall(set int, vpn mem.Addr) {
	if t.recHist == nil {
		return
	}
	t.recEvTotal++
	t.recEvict[vpn] = t.recSeq[set]
}

// RecallEvictions returns the number of tracked evictions (the denominator
// for recall-distance fractions; entries never recalled have infinite
// distance). Zero when tracking is disabled.
func (t *TLB) RecallEvictions() uint64 { return t.recEvTotal }

// InsertHuge fills the 2MB-page translation of va (frame is the 2MB-aligned
// physical base), evicting the LRU huge entry when the array is full. With
// HugeEntries == 0 the insert is dropped (the structure does not exist).
func (t *TLB) InsertHuge(va, frame mem.Addr) {
	if t.cfg.HugeEntries <= 0 {
		return
	}
	if t.huge == nil {
		t.huge = make([]hugeEntry, 0, t.cfg.HugeEntries)
	}
	key := mem.HugePageNumber(va)
	for i := range t.huge {
		if e := &t.huge[i]; e.hpn == key {
			e.frame = frame
			t.clock++
			e.stamp = t.clock
			return
		}
	}
	if len(t.huge) >= t.cfg.HugeEntries {
		// Evict LRU: stamps are unique, so the victim is deterministic.
		victim := 0
		for i := range t.huge {
			if t.huge[i].stamp < t.huge[victim].stamp {
				victim = i
			}
		}
		hpn := t.huge[victim].hpn
		t.huge[victim] = t.huge[len(t.huge)-1]
		t.huge = t.huge[:len(t.huge)-1]
		t.st.Evictions++
		if t.tr.Active() {
			t.tr.Instant("tlb", t.cfg.Name+" evict-huge", telemetry.LaneMMU,
				telemetry.IArg("hpn", int64(hpn)))
		}
	}
	t.clock++
	t.huge = append(t.huge, hugeEntry{hpn: key, frame: frame, stamp: t.clock})
}

// PSC is the set of paging-structure caches, one fully-associative LRU
// array per page-table level from 2 to 5. PSCL-k maps the VPN prefix of
// levels 5..k to the frame of the level-(k-1) table, letting the walker
// start at level k-1.
type PSC struct {
	caches [mem.PTLevels + 1]*pscLevel // index 2..5 used
	st     PSCStats
}

// PSCStats counts PSC activity per level.
type PSCStats struct {
	Lookups uint64                   // walker probe sequences (one per walk)
	Hits    [mem.PTLevels + 1]uint64 // index by level
}

// pscLevel is one fully-associative level, held as a flat array scanned
// linearly: capacities are tiny (2..32 entries, Table I), where a scan is
// cheaper than map hashing and allocates nothing. LRU stamps are unique, so
// eviction is deterministic.
type pscLevel struct {
	cap   int
	ents  []pscEntry
	clock uint64
}

type pscEntry struct {
	key   uint64
	frame mem.Addr
	stamp uint64
}

// PSCSizes are the Table I capacities: index by level (PSCL2..PSCL5).
type PSCSizes struct {
	L2, L3, L4, L5 int // entries in PSCL2..PSCL5 (0 disables a level)
}

// DefaultPSCSizes match Table I of the paper.
func DefaultPSCSizes() PSCSizes { return PSCSizes{L2: 32, L3: 8, L4: 4, L5: 2} }

// NewPSC builds the paging-structure caches.
func NewPSC(sizes PSCSizes) *PSC {
	p := &PSC{}
	for lvl, n := range [...]int{2: sizes.L2, 3: sizes.L3, 4: sizes.L4, 5: sizes.L5} {
		if lvl < 2 {
			continue
		}
		if n <= 0 {
			n = 1
		}
		p.caches[lvl] = &pscLevel{cap: n, ents: make([]pscEntry, 0, n)}
	}
	return p
}

// Stats returns a snapshot of the PSC counters.
func (p *PSC) Stats() PSCStats { return p.st }

// ResetStats zeroes the counters.
func (p *PSC) ResetStats() { p.st = PSCStats{} }

// Lookup searches all PSC levels in parallel (one-cycle, per Table I) and
// returns the deepest hit: the smallest level k whose entry is present,
// which lets the walker start reading at level k-1. startLevel is
// PTLevels when nothing hits.
func (p *PSC) Lookup(va mem.Addr) (startLevel int) {
	p.st.Lookups++
	for lvl := 2; lvl <= mem.PTLevels; lvl++ {
		c := p.caches[lvl]
		key := mem.VPNPrefix(va, lvl)
		for i := range c.ents {
			if e := &c.ents[i]; e.key == key {
				c.clock++
				e.stamp = c.clock
				p.st.Hits[lvl]++
				return lvl - 1
			}
		}
	}
	return mem.PTLevels
}

// Insert fills the PSC entry for level k (the pointer to va's level-(k-1)
// table).
func (p *PSC) Insert(va mem.Addr, k int, frame mem.Addr) {
	if k < 2 || k > mem.PTLevels {
		return
	}
	c := p.caches[k]
	key := mem.VPNPrefix(va, k)
	for i := range c.ents {
		if e := &c.ents[i]; e.key == key {
			e.frame = frame
			c.clock++
			e.stamp = c.clock
			return
		}
	}
	if len(c.ents) >= c.cap {
		// Evict LRU: stamps are unique, so the victim is deterministic.
		victim := 0
		for i := range c.ents {
			if c.ents[i].stamp < c.ents[victim].stamp {
				victim = i
			}
		}
		c.ents[victim] = c.ents[len(c.ents)-1]
		c.ents = c.ents[:len(c.ents)-1]
	}
	c.clock++
	c.ents = append(c.ents, pscEntry{key: key, frame: frame, stamp: c.clock})
}
