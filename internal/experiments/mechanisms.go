package experiments

import (
	"fmt"

	"atcsim/internal/stats"
	"atcsim/internal/system"
	"atcsim/internal/xlat"
)

// Mechanisms is the translation-mechanism zoo: every registered mechanism
// (atp, revelator, victima — see docs/TRANSLATION.md) crossed with the full
// enhancement ladder on every workload, normalized per benchmark to the
// plain baseline (atp mechanism, no enhancements). The atp rows reproduce
// Fig. 14 exactly — the default mechanism *is* the paper machinery — while
// the victima and revelator rows answer the head-to-head question the
// ROADMAP poses: do structurally different translation mechanisms compose
// with, or substitute for, translation-conscious caching?
//
// Summary keys: one per mechanism (geomean speedup of the mechanism with
// the full +TEMPO stack over the plain baseline).
func Mechanisms(r *Runner) *Report {
	mechs := xlat.Names()
	levels := []system.Enhancement{system.Baseline, system.TDRRIP, system.TSHiP, system.ATP, system.TEMPO}
	header := []string{"benchmark", "mechanism"}
	for _, e := range levels {
		header = append(header, e.String())
	}
	t := stats.NewTable(header...)
	agg := map[string][]float64{}
	for _, w := range r.Scale().workloads() {
		base := r.Baseline(w)
		for _, mch := range mechs {
			mch := mch
			row := []interface{}{w, mch}
			for _, e := range levels {
				e := e
				res := r.Run(fmt.Sprintf("mech:%s:%s", mch, e), w, func(c *system.Config) {
					c.Apply(e)
					if mch != xlat.DefaultName {
						// The default mechanism keeps Mechanism empty so
						// these runs share cache entries with the rest of
						// the suite (empty resolves to atp).
						c.Mechanism = mch
					}
				})
				sp := res.SpeedupOver(base)
				row = append(row, sp)
				if e == system.TEMPO {
					agg[mch] = append(agg[mch], sp)
				}
			}
			t.AddRowf(row...)
		}
	}
	sum := map[string]float64{}
	for _, mch := range mechs {
		g := stats.GeoMean(agg[mch])
		t.AddRowf("geomean", mch, "", "", "", "", g)
		sum[mch] = g
	}
	return &Report{
		ID:    "mechanisms",
		Title: "Translation-mechanism zoo: mechanism × enhancement ladder, speedup over plain baseline",
		Table: t,
		Notes: []string{
			"atp rows = Fig. 14 (the default mechanism is the paper machinery)",
			"victima parks STLB-evicted entries in underutilized L2C/LLC sets; revelator speculates frames through a partial-tag hash with verification walks",
			"each cell is speedup over the same per-benchmark baseline (atp mechanism, no enhancements)",
		},
		Summary: sum,
	}
}
