package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// engineScale is smaller than testScale: the engine tests run whole sweeps
// (sometimes twice), so each individual simulation must be cheap.
func engineScale() Scale {
	return Scale{
		TraceLen:     60_000,
		Instructions: 30_000,
		Warmup:       10_000,
		Workloads:    []string{"xalancbmk", "pr"},
		Seed:         1,
	}
}

func reportText(reports []*Report) string {
	var b strings.Builder
	for _, rep := range reports {
		b.WriteString(rep.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestAllWithDeterministicAcrossJobs is the engine's core guarantee: a
// parallel sweep produces byte-identical report output to a sequential one.
func TestAllWithDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep twice")
	}
	seq := NewRunner(engineScale()) // Jobs: 1
	par, err := NewRunnerWith(engineScale(), Options{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if par.Jobs() != 8 {
		t.Fatalf("Jobs = %d", par.Jobs())
	}
	seqOut := reportText(AllWith(seq))
	parOut := reportText(AllWith(par))
	if seqOut != parOut {
		t.Errorf("parallel sweep output differs from sequential:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
			seqOut, parOut)
	}
	if seq.Runs() != par.Runs() {
		t.Errorf("run counts differ: sequential %d, parallel %d", seq.Runs(), par.Runs())
	}
}

// TestScratchStateDeterminism targets the zero-allocation hot path: the
// simulator reuses scratch requests, prefetch-candidate buffers and flat
// replacement/TLB/DRAM structures, so any accidental sharing between
// concurrently running simulations (or between the interleaved cores of one
// simulation) would show up as output divergence across job counts or
// across repeated sweeps. The experiments chosen hit every reused
// structure: fig14 (enhancement ladder: hawkeye, ATP prefetchers, TEMPO),
// fig17 (SMT: two cores interleaving on shared caches) and fig18 (STLB
// recall tracking).
func TestScratchStateDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("several sweeps")
	}
	ids := []string{"fig14", "fig17", "fig18"}
	sweep := func(jobs int) string {
		r, err := NewRunnerWith(engineScale(), Options{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, id := range ids {
			rep, err := ByIDWith(r, id)
			if err != nil {
				t.Fatal(err)
			}
			b.WriteString(rep.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	want := sweep(1)
	for run, jobs := range []int{1, 8, 8} {
		if got := sweep(jobs); got != want {
			t.Fatalf("sweep %d (jobs=%d) diverged:\n--- want ---\n%s\n--- got ---\n%s",
				run, jobs, want, got)
		}
	}
}

// TestSimJobsDeterminism extends TestScratchStateDeterminism to the
// intra-simulation parallel engine: sweeps covering multi-core (barrier
// engine), SMT (serial fallback) and queued-timing multi-core machines must
// render byte-identical reports whether each simulation runs its cores
// serially (SimJobs=1) or on one worker per CPU (SimJobs=0), on top of any
// sweep-level jobs count.
func TestSimJobsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("several multi-core sweeps")
	}
	ids := []string{"fig17", "multicore"}
	sweep := func(timing string, simJobs, jobs int) string {
		sc := engineScale()
		sc.Timing = timing
		sc.SimJobs = simJobs
		r, err := NewRunnerWith(sc, Options{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, id := range ids {
			rep, err := ByIDWith(r, id)
			if err != nil {
				t.Fatal(err)
			}
			b.WriteString(rep.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	for _, timing := range []string{"", "queued"} {
		want := sweep(timing, 1, 1)
		for _, run := range []struct{ simJobs, jobs int }{{0, 1}, {1, 4}, {0, 4}} {
			if got := sweep(timing, run.simJobs, run.jobs); got != want {
				t.Fatalf("timing=%q sim-jobs=%d jobs=%d diverged from serial:\n--- want ---\n%s\n--- got ---\n%s",
					timing, run.simJobs, run.jobs, want, got)
			}
		}
	}
}

// TestDiskCacheResume checks that a second runner pointed at the same cache
// directory replays every result from disk — zero simulations — and still
// produces identical output.
func TestDiskCacheResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	sc := engineScale()
	sc.Workloads = []string{"pr"}

	cold, err := NewRunnerWith(sc, Options{Jobs: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	coldRep, err := ByIDWith(cold, "fig14")
	if err != nil {
		t.Fatal(err)
	}
	if cold.Runs() == 0 || cold.DiskHits() != 0 {
		t.Fatalf("cold run: runs=%d diskHits=%d", cold.Runs(), cold.DiskHits())
	}
	if err := cold.CacheErr(); err != nil {
		t.Fatalf("cold run cache error: %v", err)
	}

	warm, err := NewRunnerWith(sc, Options{Jobs: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	warmRep, err := ByIDWith(warm, "fig14")
	if err != nil {
		t.Fatal(err)
	}
	if warm.Runs() != 0 {
		t.Errorf("warm run re-simulated %d times", warm.Runs())
	}
	if warm.DiskHits() != cold.Runs() {
		t.Errorf("warm diskHits = %d, want %d", warm.DiskHits(), cold.Runs())
	}
	if got, want := warmRep.String(), coldRep.String(); got != want {
		t.Errorf("cached report differs:\n--- cold ---\n%s\n--- warm ---\n%s", want, got)
	}
}

// TestNewRunnerWithBadCacheDir checks that an unusable cache directory is an
// immediate constructor error, not a mid-sweep surprise.
func TestNewRunnerWithBadCacheDir(t *testing.T) {
	if _, err := NewRunnerWith(engineScale(), Options{CacheDir: filepath.Join("/dev/null", "x")}); err == nil {
		t.Error("unusable cache dir accepted")
	}
}

// TestExperimentsDocCoverage is the doc-lint guard: EXPERIMENTS.md must
// mention every runnable experiment identifier, so the catalog and its
// documentation cannot drift apart.
func TestExperimentsDocCoverage(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "EXPERIMENTS.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)
	for _, id := range IDs() {
		if !strings.Contains(doc, id) {
			t.Errorf("EXPERIMENTS.md does not mention experiment %q", id)
		}
	}
}
