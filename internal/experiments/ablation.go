package experiments

import (
	"fmt"

	"atcsim/internal/stats"
	"atcsim/internal/system"
)

// The ablations quantify the model/design choices DESIGN.md calls out and
// the paper's implicit knobs: how much each enhancement contributes in
// isolation, how the page-walker count and the replay re-issue window shape
// the phenomenon, what the OS frame-scatter model is worth, what T-Hawkeye
// buys over T-SHiP, and what happens to the whole problem under 2MB pages.

// ablationWorkloads picks one benchmark per STLB category present at the
// scale.
func (r *Runner) ablationWorkloads() []string {
	want := map[string]bool{"xalancbmk": true, "mcf": true, "pr": true}
	var out []string
	for _, w := range r.Scale().workloads() {
		if want[w] {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		out = r.Scale().workloads()
	}
	return out
}

// AblationDecompose isolates each enhancement: T-policies without
// prefetching, ATP without T-policies or TEMPO, TEMPO alone (the original
// proposal it is borrowed from), and the full stack.
//
// Summary keys: tPolicies, atpOnly, tempoOnly, full (geomean speedups).
func AblationDecompose(r *Runner) *Report {
	type variant struct {
		key string
		mod func(*system.Config)
	}
	variants := []variant{
		{"t-policies", func(c *system.Config) {
			c.L2.Policy = "t-drrip"
			c.LLC.Policy = "t-ship"
		}},
		{"atp-only", func(c *system.Config) {
			c.L2.ATP = true
			c.LLC.ATP = true
		}},
		{"tempo-only", func(c *system.Config) { c.TEMPO = true }},
		{"full", func(c *system.Config) { c.Apply(system.TEMPO) }},
	}
	header := []string{"benchmark"}
	for _, v := range variants {
		header = append(header, v.key)
	}
	t := stats.NewTable(header...)
	agg := map[string][]float64{}
	for _, w := range r.Scale().workloads() {
		base := r.Baseline(w)
		row := []interface{}{w}
		for _, v := range variants {
			sp := r.Run("abl:"+v.key, w, v.mod).SpeedupOver(base)
			row = append(row, sp)
			agg[v.key] = append(agg[v.key], sp)
		}
		t.AddRowf(row...)
	}
	row := []interface{}{"geomean"}
	sum := map[string]float64{}
	for _, v := range variants {
		g := stats.GeoMean(agg[v.key])
		row = append(row, g)
		sum[v.key] = g
	}
	t.AddRowf(row...)
	return &Report{
		ID:    "ablation-decompose",
		Title: "Each enhancement in isolation vs the full stack",
		Table: t,
		Notes: []string{
			"ATP needs the T-policies' translation hit rate to trigger; TEMPO needs translations to reach DRAM — the full stack composes them",
		},
		Summary: map[string]float64{
			"tPolicies": sum["t-policies"],
			"atpOnly":   sum["atp-only"],
			"tempoOnly": sum["tempo-only"],
			"full":      sum["full"],
		},
	}
}

// AblationWalkers sweeps the number of concurrent page walks: fewer walkers
// serialize STLB misses and magnify the translation bottleneck the paper
// attacks.
//
// Summary keys: base:<n>, gain:<n> for n in {1,2,4}.
func AblationWalkers(r *Runner) *Report {
	t := stats.NewTable("benchmark", "IPC 1w", "IPC 2w", "IPC 4w", "gain 1w", "gain 2w", "gain 4w")
	sum := map[string]float64{}
	for _, w := range r.ablationWorkloads() {
		row := []interface{}{w}
		var ipcs, gains []interface{}
		for _, n := range []int{1, 2, 4} {
			n := n
			base := r.Run(fmt.Sprintf("abl:w%d:base", n), w, func(c *system.Config) {
				c.PageWalkers = n
			})
			enh := r.Run(fmt.Sprintf("abl:w%d:enh", n), w, func(c *system.Config) {
				c.PageWalkers = n
				c.Apply(system.TEMPO)
			})
			ipcs = append(ipcs, base.IPC())
			gain := enh.SpeedupOver(base)
			gains = append(gains, gain)
			sum[fmt.Sprintf("base:%d", n)] += base.IPC()
			sum[fmt.Sprintf("gain:%d", n)] += gain
		}
		row = append(row, ipcs...)
		row = append(row, gains...)
		t.AddRowf(row...)
	}
	for k := range sum {
		sum[k] /= float64(len(r.ablationWorkloads()))
	}
	return &Report{
		ID:    "ablation-walkers",
		Title: "Page-walker concurrency: baseline IPC and enhancement gain at 1/2/4 walkers",
		Table: t,
		Notes: []string{
			"fewer walkers serialize STLB misses: lower baseline IPC, larger absolute headroom for the enhancements",
		},
		Summary: sum,
	}
}

// AblationReplayDelay sweeps the pipeline replay window — the latency ATP's
// prefetch hides. At 0 the replay arrives with the walk and ATP has no
// window; larger windows grow ATP's benefit.
//
// Summary keys: atpGain:<d> for d in {0,15,30,60}.
func AblationReplayDelay(r *Runner) *Report {
	t := stats.NewTable("benchmark", "d=0", "d=15", "d=30", "d=60")
	sum := map[string]float64{}
	wls := r.ablationWorkloads()
	for _, w := range wls {
		row := []interface{}{w}
		for _, d := range []int64{0, 15, 30, 60} {
			d := d
			base := r.Run(fmt.Sprintf("abl:rd%d:base", d), w, func(c *system.Config) {
				c.ReplayIssueDelay = d
			})
			enh := r.Run(fmt.Sprintf("abl:rd%d:atp", d), w, func(c *system.Config) {
				c.ReplayIssueDelay = d
				c.Apply(system.ATP)
			})
			gain := enh.SpeedupOver(base)
			row = append(row, gain)
			sum[fmt.Sprintf("atpGain:%d", d)] += gain / float64(len(wls))
		}
		t.AddRowf(row...)
	}
	return &Report{
		ID:    "ablation-replaydelay",
		Title: "ATP gain vs the replay re-issue window (cycles)",
		Table: t,
		Notes: []string{
			"ATP hides the walk-to-replay window; the gain should grow with the window",
		},
		Summary: sum,
	}
}

// AblationScatter compares the scattered OS frame allocator against
// artificially contiguous frames (perfect DRAM row locality).
//
// Summary keys: scatterIPC, contiguousIPC, rowHitScatter, rowHitContig.
func AblationScatter(r *Runner) *Report {
	t := stats.NewTable("benchmark", "IPC scattered", "IPC contiguous", "row-hit scattered", "row-hit contiguous")
	var sIPC, cIPC, sRH, cRH float64
	wls := r.ablationWorkloads()
	for _, w := range wls {
		sc := r.Baseline(w)
		co := r.Run("abl:contig", w, func(c *system.Config) { c.NoScatterFrames = true })
		rh := func(res *system.Result) float64 {
			tot := res.DRAM.RowHits + res.DRAM.RowClosed + res.DRAM.RowMisses
			if tot == 0 {
				return 0
			}
			return float64(res.DRAM.RowHits) / float64(tot)
		}
		t.AddRowf(w, sc.IPC(), co.IPC(), rh(sc), rh(co))
		sIPC += sc.IPC() / float64(len(wls))
		cIPC += co.IPC() / float64(len(wls))
		sRH += rh(sc) / float64(len(wls))
		cRH += rh(co) / float64(len(wls))
	}
	return &Report{
		ID:    "ablation-scatter",
		Title: "OS frame scatter vs contiguous frames (DRAM row locality)",
		Table: t,
		Notes: []string{
			"contiguous frames are an unrealistically friendly OS; scatter is the model used everywhere else",
		},
		Summary: map[string]float64{
			"scatterIPC": sIPC, "contiguousIPC": cIPC,
			"rowHitScatter": sRH, "rowHitContig": cRH,
		},
	}
}

// AblationTHawkeye runs the T-policy ladder with Hawkeye as the LLC
// baseline instead of SHiP — the paper's secondary configuration.
//
// Summary keys: hawkeye, tHawkeye (geomean speedups over the SHiP
// baseline).
func AblationTHawkeye(r *Runner) *Report {
	t := stats.NewTable("benchmark", "hawkeye", "t-hawkeye", "t-hawkeye+ATP+TEMPO")
	agg := map[string][]float64{}
	for _, w := range r.Scale().workloads() {
		base := r.Baseline(w)
		hk := r.Run("abl:hawkeye", w, func(c *system.Config) { c.LLC.Policy = "hawkeye" })
		thk := r.Run("abl:t-hawkeye", w, func(c *system.Config) {
			c.L2.Policy = "t-drrip"
			c.LLC.Policy = "t-hawkeye"
		})
		full := r.Run("abl:t-hawkeye-full", w, func(c *system.Config) {
			c.Apply(system.TEMPO)
			c.LLC.Policy = "t-hawkeye"
		})
		a, b, c := hk.SpeedupOver(base), thk.SpeedupOver(base), full.SpeedupOver(base)
		t.AddRowf(w, a, b, c)
		agg["hawkeye"] = append(agg["hawkeye"], a)
		agg["t-hawkeye"] = append(agg["t-hawkeye"], b)
		agg["full"] = append(agg["full"], c)
	}
	t.AddRowf("geomean", stats.GeoMean(agg["hawkeye"]), stats.GeoMean(agg["t-hawkeye"]), stats.GeoMean(agg["full"]))
	return &Report{
		ID:    "ablation-t-hawkeye",
		Title: "Hawkeye LLC: baseline vs T-Hawkeye vs T-Hawkeye with ATP+TEMPO (normalized to SHiP baseline)",
		Table: t,
		Notes: []string{
			"the paper's signature fix applies to Hawkeye the same way it applies to SHiP",
		},
		Summary: map[string]float64{
			"hawkeye":  stats.GeoMean(agg["hawkeye"]),
			"tHawkeye": stats.GeoMean(agg["t-hawkeye"]),
			"full":     stats.GeoMean(agg["full"]),
		},
	}
}

// AblationHugePages maps all data with 2MB pages: the STLB problem — and
// with it the paper's headroom — largely disappears. This bounds the
// technique's applicability (the future-work scenario).
//
// Summary keys: mpki4K, mpki2M, gain4K, gain2M.
func AblationHugePages(r *Runner) *Report {
	t := stats.NewTable("benchmark", "STLB MPKI 4K", "STLB MPKI 2M", "gain 4K", "gain 2M")
	var m4, m2, g4, g2 float64
	wls := r.ablationWorkloads()
	for _, w := range wls {
		b4 := r.Baseline(w)
		e4 := r.Enhanced(w, system.TEMPO)
		b2 := r.Run("abl:huge:base", w, func(c *system.Config) { c.HugePages = true })
		e2 := r.Run("abl:huge:enh", w, func(c *system.Config) {
			c.HugePages = true
			c.Apply(system.TEMPO)
		})
		t.AddRowf(w, b4.STLBMPKI(), b2.STLBMPKI(), e4.SpeedupOver(b4), e2.SpeedupOver(b2))
		m4 += b4.STLBMPKI() / float64(len(wls))
		m2 += b2.STLBMPKI() / float64(len(wls))
		g4 += e4.SpeedupOver(b4) / float64(len(wls))
		g2 += e2.SpeedupOver(b2) / float64(len(wls))
	}
	return &Report{
		ID:    "ablation-hugepages",
		Title: "Transparent huge pages: STLB pressure and enhancement gain under 4KB vs 2MB pages",
		Table: t,
		Notes: []string{
			"with 2MB pages the STLB covers the footprint and the translation-conscious machinery has little left to win — the boundary of the paper's applicability",
		},
		Summary: map[string]float64{
			"mpki4K": m4, "mpki2M": m2, "gain4K": g4, "gain2M": g2,
		},
	}
}
