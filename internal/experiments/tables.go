package experiments

import (
	"fmt"

	"atcsim/internal/mem"
	"atcsim/internal/stats"
	"atcsim/internal/workloads"
)

// TableI renders the simulated parameters (paper's Table I), taken from the
// live default configuration so documentation cannot drift from the code.
func TableI(r *Runner) *Report {
	cfg := r.baseConfig()
	t := stats.NewTable("component", "parameters")
	t.AddRow("Core", fmt.Sprintf("out-of-order, hashed perceptron BP, %d-wide issue, %d-wide retire, %d-entry ROB",
		cfg.CPU.DispatchWidth, cfg.CPU.RetireWidth, cfg.CPU.ROBSize))
	t.AddRow("DTLB/ITLB", fmt.Sprintf("%d-entry %d-way (%d cycle)", cfg.DTLB.Entries, cfg.DTLB.Ways, cfg.DTLB.Latency))
	t.AddRow("STLB", fmt.Sprintf("%d-entry %d-way (%d cycles)", cfg.STLB.Entries, cfg.STLB.Ways, cfg.STLB.Latency))
	t.AddRow("MMU PSCs", fmt.Sprintf("PSCL5 %d / PSCL4 %d / PSCL3 %d / PSCL2 %d entries, parallel, 1 cycle",
		cfg.PSC.L5, cfg.PSC.L4, cfg.PSC.L3, cfg.PSC.L2))
	t.AddRow("L1I", fmt.Sprintf("%dKB %d-way (%d cycles)", cfg.L1I.SizeBytes>>10, cfg.L1I.Ways, cfg.L1I.Latency))
	t.AddRow("L1D", fmt.Sprintf("%dKB %d-way (%d cycles)", cfg.L1D.SizeBytes>>10, cfg.L1D.Ways, cfg.L1D.Latency))
	t.AddRow("L2C", fmt.Sprintf("%dKB %d-way (%d cycles), %s", cfg.L2.SizeBytes>>10, cfg.L2.Ways, cfg.L2.Latency, cfg.L2.Policy))
	t.AddRow("LLC", fmt.Sprintf("%dMB/slice %d-way (%d cycles), %s", cfg.LLC.SizeBytes>>20, cfg.LLC.Ways, cfg.LLC.Latency, cfg.LLC.Policy))
	t.AddRow("DRAM", "1 channel/4 cores, DDR5-like bank/row/bus model")
	return &Report{
		ID:    "table1",
		Title: "Simulated parameters (Table I)",
		Table: t,
	}
}

// TableII characterizes the benchmark suite: STLB MPKI (and category) plus
// L2C/LLC MPKI split into replay, non-replay and leaf-translation (PTL1)
// classes, on the baseline machine.
//
// Summary keys: stlb:<benchmark> (STLB MPKI per benchmark).
func TableII(r *Runner) *Report {
	t := stats.NewTable("benchmark", "suite", "category", "STLB",
		"L2C replay", "L2C non-replay", "L2C PTL1",
		"LLC replay", "LLC non-replay", "LLC PTL1")
	sum := map[string]float64{}
	for _, w := range r.Scale().workloads() {
		spec, err := workloads.ByName(w)
		if err != nil {
			continue
		}
		res := r.Baseline(w)
		t.AddRowf(w, spec.Suite, string(spec.Category),
			res.STLBMPKI(),
			res.L2MPKI(mem.ClassReplay), res.L2MPKI(mem.ClassNonReplay), res.L2MPKI(mem.ClassTransLeaf),
			res.LLCMPKI(mem.ClassReplay), res.LLCMPKI(mem.ClassNonReplay), res.LLCMPKI(mem.ClassTransLeaf))
		sum["stlb:"+w] = res.STLBMPKI()
	}
	return &Report{
		ID:    "table2",
		Title: "Benchmark characterization: STLB / L2C / LLC MPKI by class (Table II)",
		Table: t,
		Notes: []string{
			"paper ranges: STLB MPKI 4.78 (xalancbmk) to 82.29 (pr); categories Low ≤ 10, Medium 11–25, High > 25",
		},
		Summary: sum,
	}
}
