package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"atcsim/internal/experiments/runner"
	"atcsim/internal/faultinject"
)

// fastRetry keeps chaos-test backoff delays negligible.
func fastRetry() runner.RetryPolicy {
	return runner.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

// chaosRules is the canonical 3-fault plan of the acceptance scenario: one
// crashing run (permanent: multicore's TEMPO mix panics every attempt), one
// transient I/O-shaped failure that heals after the first attempt (fig17's
// baseline SMT run), and one on-disk cache entry silently corrupted after
// its first successful store.
func chaosRules() []faultinject.Rule {
	return []faultinject.Rule{
		{Site: faultinject.SiteRun, Match: "multi:tempo/", Kind: faultinject.KindPanic},
		{Site: faultinject.SiteRun, Match: "smt:baseline/", Kind: faultinject.KindTransient, Until: 1},
		{Site: faultinject.SiteDiskEntry, Kind: faultinject.KindCorrupt, Times: 1},
	}
}

// chaosSweep runs fig17 (2-way SMT) and multicore under one runner and
// returns the runner plus each rendered report in order.
func chaosSweep(t *testing.T, jobs int, dir string, plan *faultinject.Plan) (*Runner, []string) {
	t.Helper()
	r, err := NewRunnerWith(Quick(), Options{
		Jobs: jobs, CacheDir: dir, Faults: plan, Retry: fastRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, id := range []string{"fig17", "multicore"} {
		rep, err := ByIDWith(r, id)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rep.String())
	}
	return r, out
}

// TestChaos is the acceptance scenario: a seeded fault plan (panic +
// transient + corrupt disk entry) injected into a multi-point sweep. The
// sweep must complete; the transient failure must be retried to success;
// exactly one point may fail (as a FAILED marker, not an aborted sweep);
// the report bytes must be identical for any job count; and a resumed sweep
// must quarantine the corrupt entry and recompute only what is missing.
func TestChaos(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	rA, outA := chaosSweep(t, 1, dirA, faultinject.NewPlan(1, chaosRules()...))
	rB, outB := chaosSweep(t, 8, dirB, faultinject.NewPlan(1, chaosRules()...))

	// Byte-identical degradation regardless of -jobs.
	joinedA, joinedB := strings.Join(outA, ""), strings.Join(outB, "")
	if joinedA != joinedB {
		t.Errorf("chaos reports differ between jobs=1 and jobs=8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", joinedA, joinedB)
	}

	// Exactly one FAILED point: multicore (its TEMPO run panics every
	// attempt); fig17 must have healed through retry.
	if n := strings.Count(joinedA, "FAILED("); n != 1 {
		t.Errorf("FAILED points = %d, want 1:\n%s", n, joinedA)
	}
	if !strings.Contains(outA[1], "== multicore: FAILED ==") {
		t.Errorf("multicore did not fail:\n%s", outA[1])
	}
	if !strings.Contains(outA[1], "panic") {
		t.Errorf("multicore failure reason does not mention the panic:\n%s", outA[1])
	}
	if strings.Contains(outA[0], "FAILED") {
		t.Errorf("fig17 failed instead of retrying to success:\n%s", outA[0])
	}

	// Health and fault accounting (pass A: 2 SMT runs + multi baseline
	// succeed, multi TEMPO panics once, the transient costs one retry).
	for name, r := range map[string]*Runner{"jobs=1": rA, "jobs=8": rB} {
		h := r.Health().Snapshot()
		if h.Runs != 3 || h.Failures != 1 || h.Panics != 1 || h.Retries < 1 {
			t.Errorf("%s: health = %+v", name, h)
		}
	}

	// Resume on pass A's cache with no faults: the corrupted entry is
	// quarantined and recomputed, the intact entries are served from disk,
	// and the previously-failed point now succeeds — with fig17's bytes
	// unchanged from the degraded pass.
	rC, outC := chaosSweep(t, 4, dirA, nil)
	joinedC := strings.Join(outC, "")
	if strings.Contains(joinedC, "FAILED") {
		t.Errorf("resumed sweep still has failures:\n%s", joinedC)
	}
	if outC[0] != outA[0] {
		t.Errorf("fig17 bytes changed across resume:\n--- chaos ---\n%s\n--- resume ---\n%s", outA[0], outC[0])
	}
	if q := rC.Quarantined(); q != 1 {
		t.Errorf("Quarantined = %d, want 1", q)
	}
	// 3 entries were stored, 1 of them corrupt: resume loads 2, recomputes
	// the corrupt one plus the never-completed multi TEMPO run.
	if rC.DiskHits() != 2 || rC.Runs() != 2 {
		t.Errorf("resume DiskHits = %d, Runs = %d, want 2 and 2", rC.DiskHits(), rC.Runs())
	}
	if h := rC.Health().Snapshot(); h.Quarantined != 1 || h.DiskHits != 2 {
		t.Errorf("resume health = %+v", h)
	}
}

// TestChaosSimJobsDeterminism injects the canonical fault plan into sweeps
// whose eligible multi-core simulations run on the intra-simulation barrier
// engine. The degraded report bytes must be identical between serial barrier
// execution (SimJobs=1) and one worker per CPU (SimJobs=0): faults fire on
// run identities, not worker schedules, so parallelism inside a simulation
// must not change which points fail or what the survivors print. This is the
// assertion CI's parallel-engine job runs under -race.
func TestChaosSimJobsDeterminism(t *testing.T) {
	sweep := func(simJobs int) string {
		sc := Quick()
		sc.SimJobs = simJobs
		r, err := NewRunnerWith(sc, Options{
			Jobs: 4, Faults: faultinject.NewPlan(1, chaosRules()...), Retry: fastRetry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, id := range []string{"fig17", "multicore"} {
			rep, err := ByIDWith(r, id)
			if err != nil {
				t.Fatal(err)
			}
			b.WriteString(rep.String())
		}
		return b.String()
	}
	serial := sweep(1)
	parallel := sweep(0)
	if serial != parallel {
		t.Errorf("degraded chaos reports differ between sim-jobs=1 and sim-jobs=0:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	// The plan must have degraded the sweep the same way TestChaos expects:
	// one FAILED point (multicore's TEMPO mix), fig17 healed through retry.
	if n := strings.Count(serial, "FAILED("); n != 1 {
		t.Errorf("FAILED points = %d, want 1:\n%s", n, serial)
	}
}

// TestChaosThreeFaultSweep drives three permanent faults into a three-point
// sweep and checks complete degradation accounting: the sweep still
// produces a full report set with exactly three FAILED points. This is the
// CI chaos job's primary assertion.
func TestChaosThreeFaultSweep(t *testing.T) {
	plan := faultinject.NewPlan(1,
		faultinject.Rule{Site: faultinject.SiteRun, Match: "fig10:proper/pr", Kind: faultinject.KindPanic},
		faultinject.Rule{Site: faultinject.SiteRun, Match: "smt:tempo/", Kind: faultinject.KindPanic},
		faultinject.Rule{Site: faultinject.SiteRun, Match: "multi:baseline/", Kind: faultinject.KindPanic},
	)
	r, err := NewRunnerWith(Quick(), Options{Jobs: 4, Faults: plan, Retry: fastRetry()})
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"fig10", "fig17", "multicore"}
	failed := 0
	for _, id := range ids {
		rep, err := ByIDWith(r, id)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed != "" {
			failed++
			if !strings.Contains(rep.Failed, "panic") {
				t.Errorf("%s: failure reason = %q", id, rep.Failed)
			}
		}
	}
	if failed != 3 {
		t.Errorf("FAILED points = %d, want 3", failed)
	}
	if got := plan.Fired(faultinject.KindPanic); got != 3 {
		t.Errorf("panics fired = %d, want 3", got)
	}
	if h := r.Health().Snapshot(); h.Panics != 3 || h.Failures != 3 {
		t.Errorf("health = %+v", h)
	}
}

// TestCancelMidSweepResumes emulates SIGINT: the sweep context is canceled
// mid-flight, the experiment completes as a FAILED point with completed
// results flushed to the disk cache, and a re-run against the same cache
// resumes — recomputing only the runs the interrupted pass never finished
// (verified by counting compute invocations per run identity).
func TestCancelMidSweepResumes(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	rA, err := NewRunnerWith(Quick(), Options{Jobs: 1, CacheDir: dir, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	computedA := map[string]bool{}
	rA.OnRun = func(key, name string, runs int) {
		computedA[key+"/"+name] = true
		if runs == 2 {
			cancel() // the moment SIGINT would cancel the sweep
		}
	}
	repA, err := ByIDWith(rA, "fig14")
	if err != nil {
		t.Fatal(err)
	}
	if repA.Failed == "" {
		t.Fatal("canceled sweep did not degrade to a FAILED point")
	}
	if !strings.Contains(repA.Failed, "canceled") {
		t.Errorf("failure reason = %q, want context cancellation", repA.Failed)
	}
	if !rA.Interrupted() {
		t.Error("Interrupted() = false after cancel")
	}
	// fig14 at quick scale needs 15 runs (3 benchmarks × (baseline + 4
	// enhancement levels)); the cancel must have stopped well short.
	const total = 15
	if rA.Runs() < 2 || rA.Runs() >= total {
		t.Fatalf("interrupted pass performed %d runs", rA.Runs())
	}
	if h := rA.Health().Snapshot(); h.Canceled == 0 {
		t.Errorf("health = %+v, want canceled runs recorded", h)
	}

	// Resume: everything the interrupted pass completed comes from disk;
	// only the remainder is computed — and no run identity repeats.
	rB, err := NewRunnerWith(Quick(), Options{Jobs: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	computedB := map[string]bool{}
	rB.OnRun = func(key, name string, runs int) { computedB[key+"/"+name] = true }
	repB, err := ByIDWith(rB, "fig14")
	if err != nil {
		t.Fatal(err)
	}
	if repB.Failed != "" {
		t.Fatalf("resumed sweep failed: %s", repB.Failed)
	}
	for id := range computedB {
		if computedA[id] {
			t.Errorf("resume recomputed %s despite a cached result", id)
		}
	}
	if rB.DiskHits() != rA.Runs() {
		t.Errorf("resume DiskHits = %d, want %d (everything the interrupted pass completed)",
			rB.DiskHits(), rA.Runs())
	}
	if rB.Runs()+rB.DiskHits() != total {
		t.Errorf("resume Runs+DiskHits = %d+%d, want %d", rB.Runs(), rB.DiskHits(), total)
	}

	// The resumed report is byte-identical to a never-interrupted sweep.
	repC, err := ByIDWith(NewRunner(Quick()), "fig14")
	if err != nil {
		t.Fatal(err)
	}
	if repB.String() != repC.String() {
		t.Errorf("resumed report differs from uninterrupted run:\n--- resumed ---\n%s\n--- fresh ---\n%s", repB, repC)
	}
}
