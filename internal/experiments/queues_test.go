package experiments

import (
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"atcsim/internal/cache"
	"atcsim/internal/faultinject"
	"atcsim/internal/mem"
	"atcsim/internal/metrics"
	"atcsim/internal/system"
	"atcsim/internal/trace"
)

// TestQueuedSweepDeterminism pins the queued timing engine's schedule
// independence: the queues experiment (which runs every workload under both
// engines) must render byte-identical reports at jobs=1 and jobs=8 and
// across repeated sweeps — the queued wrappers keep all their state per
// simulation, so concurrency may change only when a run executes, never its
// deques' contents.
func TestQueuedSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("several sweeps")
	}
	sweep := func(jobs int) string {
		r, err := NewRunnerWith(engineScale(), Options{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ByIDWith(r, "queues")
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	want := sweep(1)
	for run, jobs := range []int{1, 8, 8} {
		if got := sweep(jobs); got != want {
			t.Fatalf("sweep %d (jobs=%d) diverged:\n--- want ---\n%s\n--- got ---\n%s",
				run, jobs, want, got)
		}
	}
}

// scrapeQueueCounter sums one cache_queue_* family across its level labels
// in an OpenMetrics scrape body.
func scrapeQueueCounter(t *testing.T, body, family string) uint64 {
	t.Helper()
	var total uint64
	found := false
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, family+"{") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparsable sample %q: %v", line, err)
		}
		total += uint64(v)
		found = true
	}
	if !found {
		t.Fatalf("/metrics has no %s series", family)
	}
	return total
}

// contentionTrace builds a workload engineered to exercise every queued
// backpressure path at once:
//
//   - a store rotation over 5 lines in one set of a 4KB/4-way L1D: every
//     store misses and evicts exactly the line stored next, so its dirty
//     writeback still sits in the L2 write queue when the demand read
//     arrives — write forwards;
//   - a streaming load phase under a degree-4 next-line prefetcher:
//     consecutive misses emit overlapping candidate sets — prefetch merges;
//   - the stream overflows the shrunken L2 into DRAM, backing the L1D read
//     queue up against its 8 slots and starving the 4/2/4 MSHRs.
func contentionTrace() *trace.Trace {
	b := trace.MustNewBuilder("contention", 60_000)
	rotBase := mem.Addr(0x10_0000)
	streamBase := mem.Addr(0x40_0000)
	streamLines := mem.Addr(1024) // 64KB region, wraps
	var s mem.Addr
	for !b.Full() {
		for k := 0; k < 20; k++ {
			b.Store(1, rotBase+mem.Addr(k%5)*1024) // stride 1KB keeps set 0
		}
		for k := 0; k < 64; k++ {
			b.Load(2, streamBase+(s%streamLines)*64)
			s++
		}
	}
	return b.Build()
}

// TestQueuedContentionMetrics runs the contention trace under a deliberately
// starved queued configuration — tiny L1D, strangled MSHRs, single
// read/write slot per cycle, degree-4 next-line prefetching on the full
// ATP/TEMPO stack — folds the result into a metrics registry, scrapes
// /metrics, and requires every headline backpressure family (rq_full,
// wq_forward, pq_merged, mshr_full) to be nonzero. This is the acceptance
// check that the queued engine's deques observably fill, forward and merge
// on a contention-heavy workload.
func TestQueuedContentionMetrics(t *testing.T) {
	cfg := system.DefaultConfig()
	cfg.Instructions = 30_000
	cfg.Warmup = 5_000
	cfg.Apply(system.TEMPO)
	cfg.Timing = system.TimingQueued
	cfg.L1D.SizeBytes = 4 << 10
	cfg.L1D.Ways = 4
	cfg.L1D.MSHRs = 4
	cfg.L2.SizeBytes = 32 << 10
	cfg.L2.MSHRs = 2
	cfg.LLC.MSHRs = 4
	cfg.L1DPrefetcher = "nextline"
	cfg.PrefetchDegree = 4
	cfg.Queues = &cache.QueueConfig{RQ: 8, WQ: 32, PQ: 16, VAPQ: 16, MaxRead: 1, MaxWrite: 1}
	cfg.CheckInvariants = true
	res, err := system.Run(cfg, contentionTrace())
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	system.NewMetricsSink(reg).Record(res)

	ts := httptest.NewServer((&metrics.Server{Registry: reg}).Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if issues := metrics.Lint(raw); len(issues) > 0 {
		t.Errorf("/metrics does not lint clean: %v", issues)
	}
	for _, family := range []string{
		"cache_queue_rq_full_total",
		"cache_queue_wq_forward_total",
		"cache_queue_pq_merged_total",
		"cache_queue_mshr_full_total",
	} {
		if got := scrapeQueueCounter(t, body, family); got == 0 {
			t.Errorf("%s = 0 on the contention workload, want nonzero", family)
		}
	}
}

// TestChaosQueuedSweep injects a permanent panic into the queues
// experiment's queued run of one benchmark: the sweep must degrade to a
// byte-identical FAILED report at any job count, and a faultless resume on
// the same cache directory must complete with only the missing runs
// recomputed — the queued engine rides the same containment machinery as
// every other experiment.
func TestChaosQueuedSweep(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	sweep := func(jobs int, dir string, plan *faultinject.Plan) (*Runner, string) {
		r, err := NewRunnerWith(Quick(), Options{
			Jobs: jobs, CacheDir: dir, Faults: plan, Retry: fastRetry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ByIDWith(r, "queues")
		if err != nil {
			t.Fatal(err)
		}
		return r, rep.String()
	}
	rule := faultinject.Rule{
		Site: faultinject.SiteRun, Match: "queues:queued/pr", Kind: faultinject.KindPanic,
	}
	_, outA := sweep(1, dirA, faultinject.NewPlan(1, rule))
	_, outB := sweep(8, dirB, faultinject.NewPlan(1, rule))
	if outA != outB {
		t.Errorf("chaos reports differ between jobs=1 and jobs=8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", outA, outB)
	}
	if !strings.Contains(outA, "FAILED(") || !strings.Contains(outA, "panic") {
		t.Errorf("queues sweep did not degrade to a FAILED report:\n%s", outA)
	}

	rC, outC := sweep(4, dirA, nil)
	if strings.Contains(outC, "FAILED") {
		t.Errorf("resumed queues sweep still failed:\n%s", outC)
	}
	if rC.DiskHits() == 0 || rC.Runs() == 0 {
		t.Errorf("resume DiskHits = %d, Runs = %d; want cached hits plus recomputed remainder",
			rC.DiskHits(), rC.Runs())
	}
}
