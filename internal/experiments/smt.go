package experiments

import (
	"fmt"
	"strings"

	"atcsim/internal/stats"
	"atcsim/internal/system"
	"atcsim/internal/trace"
)

// smtMixes are the 2-thread combinations the paper highlights, covering all
// STLB-MPKI category pairs.
var smtMixes = [][2]string{
	{"xalancbmk", "xalancbmk"}, // Low-Low
	{"canneal", "xalancbmk"},   // Medium-Low
	{"mcf", "mis"},             // Medium-Medium
	{"radii", "bf"},            // High-High
	{"pr", "cc"},               // High-High
	{"tc", "pr"},               // Medium-High
}

// availableMixes filters the mixes to benchmarks present at this scale.
func (r *Runner) availableMixes(mixes [][2]string) [][2]string {
	have := map[string]bool{}
	for _, w := range r.Scale().workloads() {
		have[w] = true
	}
	var out [][2]string
	for _, m := range mixes {
		if have[m[0]] && have[m[1]] {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		// Quick scales may not contain any canonical pair; fall back to
		// self-mixes of whatever is available.
		for _, w := range r.Scale().workloads() {
			out = append(out, [2]string{w, w})
		}
	}
	return out
}

// runSMT simulates a 2-thread mix under the given enhancement level.
func (r *Runner) runSMT(mix [2]string, e system.Enhancement) *system.Result {
	cfg := r.baseConfig()
	cfg.Apply(e)
	res, err := system.RunSMT(cfg, r.Trace(mix[0]), r.Trace(mix[1]))
	if err != nil {
		panic(fmt.Sprintf("experiments: smt %v: %v", mix, err))
	}
	return res
}

// Fig17 evaluates the full enhancement stack on a 2-way SMT core using the
// paper's harmonic-speedup metric.
//
// Summary keys: mean (average harmonic speedup), max.
func Fig17(r *Runner) *Report {
	t := stats.NewTable("mix (T0-T1)", "harmonic speedup")
	var sp []float64
	maxSp := 0.0
	for _, mix := range r.availableMixes(smtMixes) {
		base := r.runSMT(mix, system.Baseline)
		enh := r.runSMT(mix, system.TEMPO)
		hs := enh.HarmonicSpeedupOver(base)
		t.AddRowf(mix[0]+"-"+mix[1], hs)
		sp = append(sp, hs)
		if hs > maxSp {
			maxSp = hs
		}
	}
	t.AddRowf("mean", mean(sp))
	return &Report{
		ID:    "fig17",
		Title: "2-way SMT harmonic speedup of the full enhancements",
		Table: t,
		Notes: []string{
			"paper: +6.3% average, up to +12.6% (pr-cc); Low/Medium-containing mixes gain less",
		},
		Summary: map[string]float64{"mean": mean(sp), "max": maxSp},
	}
}

// multiMixes are the multi-programmed mixes (one benchmark name per core).
// The last one is the paper's 8-core configuration (two DRAM channels).
var multiMixes = [][]string{
	{"pr", "cc", "radii", "bf"},                                // homogeneous High
	{"tc", "canneal", "mis", "mcf"},                            // homogeneous Medium
	{"pr", "mcf", "xalancbmk", "tc"},                           // heterogeneous
	{"cc", "canneal", "xalancbmk", "bf"},                       // heterogeneous
	{"pr", "cc", "radii", "bf", "tc", "canneal", "mis", "mcf"}, // 8-core
}

// MultiCore evaluates the enhancements on multi-programmed mixes sharing an
// LLC (2MB/core) and one DRAM channel.
//
// Summary keys: mean (average harmonic speedup over mixes).
func MultiCore(r *Runner) *Report {
	have := map[string]bool{}
	for _, w := range r.Scale().workloads() {
		have[w] = true
	}
	t := stats.NewTable("mix", "harmonic speedup")
	var sp []float64
	for _, mix := range multiMixes {
		ok := true
		for _, w := range mix {
			if !have[w] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		traces := make([]*trace.Trace, len(mix))
		for i, w := range mix {
			traces[i] = r.Trace(w)
		}
		run := func(e system.Enhancement) *system.Result {
			cfg := r.baseConfig()
			// Multi-core runs are len(mix)× the work; keep wall time in check.
			cfg.Instructions /= 2
			cfg.Warmup /= 2
			cfg.Apply(e)
			res, err := system.RunMulti(cfg, traces)
			if err != nil {
				panic(err)
			}
			return res
		}
		hs := run(system.TEMPO).HarmonicSpeedupOver(run(system.Baseline))
		t.AddRowf(strings.Join(mix, "-"), hs)
		sp = append(sp, hs)
	}
	if len(sp) == 0 {
		// Quick scale: one mix over whatever benchmarks exist.
		names := r.Scale().workloads()
		traces := make([]*trace.Trace, 0, len(names))
		for _, w := range names {
			traces = append(traces, r.Trace(w))
		}
		run := func(e system.Enhancement) *system.Result {
			cfg := r.baseConfig()
			cfg.Instructions /= 2
			cfg.Warmup /= 2
			cfg.Apply(e)
			res, err := system.RunMulti(cfg, traces)
			if err != nil {
				panic(err)
			}
			return res
		}
		hs := run(system.TEMPO).HarmonicSpeedupOver(run(system.Baseline))
		t.AddRowf(strings.Join(names, "-"), hs)
		sp = append(sp, hs)
	}
	t.AddRowf("mean", mean(sp))
	return &Report{
		ID:    "multicore",
		Title: "Multi-programmed mixes: harmonic speedup of the full enhancements",
		Table: t,
		Notes: []string{
			"paper (8-core, 25 mixes): >4% average improvement",
		},
		Summary: map[string]float64{"mean": mean(sp)},
	}
}
