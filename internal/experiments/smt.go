package experiments

import (
	"strings"

	"atcsim/internal/experiments/runner"
	"atcsim/internal/stats"
	"atcsim/internal/system"
	"atcsim/internal/trace"
)

// smtMixes are the 2-thread combinations the paper highlights, covering all
// STLB-MPKI category pairs.
var smtMixes = [][2]string{
	{"xalancbmk", "xalancbmk"}, // Low-Low
	{"canneal", "xalancbmk"},   // Medium-Low
	{"mcf", "mis"},             // Medium-Medium
	{"radii", "bf"},            // High-High
	{"pr", "cc"},               // High-High
	{"tc", "pr"},               // Medium-High
}

// availableMixes filters the mixes to benchmarks present at this scale.
func (r *Runner) availableMixes(mixes [][2]string) [][2]string {
	have := map[string]bool{}
	for _, w := range r.Scale().workloads() {
		have[w] = true
	}
	var out [][2]string
	for _, m := range mixes {
		if have[m[0]] && have[m[1]] {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		// Quick scales may not contain any canonical pair; fall back to
		// self-mixes of whatever is available.
		for _, w := range r.Scale().workloads() {
			out = append(out, [2]string{w, w})
		}
	}
	return out
}

// runSMT simulates a 2-thread mix under the given enhancement level. Like
// single-core runs, SMT results are keyed canonically (the run kind keeps
// them distinct from a single-core run of the same configuration) and cached.
func (r *Runner) runSMT(mix [2]string, e system.Enhancement) *system.Result {
	cfg := r.baseConfig()
	cfg.Apply(e)
	res, _, err := r.cached(r.ctx, r.runTimeout, "smt:"+e.String(), mix[0]+"-"+mix[1],
		runner.KindSMT, mix[:], []int64{r.sc.Seed}, cfg,
		func() (*system.Result, error) {
			t0, err := r.TryTraceSeeded(mix[0], r.sc.Seed)
			if err != nil {
				return nil, err
			}
			t1, err := r.TryTraceSeeded(mix[1], r.sc.Seed)
			if err != nil {
				return nil, err
			}
			return system.RunSMT(cfg, t0, t1)
		})
	return must(res, err)
}

// runMulti simulates a multi-programmed mix (one benchmark per core) under
// the given enhancement level, with cached results like every other run.
func (r *Runner) runMulti(mix []string, e system.Enhancement) *system.Result {
	cfg := r.baseConfig()
	// Multi-core runs are len(mix)× the work; keep wall time in check.
	cfg.Instructions /= 2
	cfg.Warmup /= 2
	cfg.Apply(e)
	res, _, err := r.cached(r.ctx, r.runTimeout, "multi:"+e.String(), strings.Join(mix, "-"),
		runner.KindMulti, mix, []int64{r.sc.Seed}, cfg,
		func() (*system.Result, error) {
			traces := make([]*trace.Trace, len(mix))
			for i, w := range mix {
				t, err := r.TryTraceSeeded(w, r.sc.Seed)
				if err != nil {
					return nil, err
				}
				traces[i] = t
			}
			return system.RunMulti(cfg, traces)
		})
	return must(res, err)
}

// Fig17 evaluates the full enhancement stack on a 2-way SMT core using the
// paper's harmonic-speedup metric.
//
// Summary keys: mean (average harmonic speedup), max.
func Fig17(r *Runner) *Report {
	mixes := r.availableMixes(smtMixes)
	sp := make([]float64, len(mixes))
	forEachIndex(len(mixes), func(i int) {
		base := r.runSMT(mixes[i], system.Baseline)
		enh := r.runSMT(mixes[i], system.TEMPO)
		sp[i] = enh.HarmonicSpeedupOver(base)
	})
	t := stats.NewTable("mix (T0-T1)", "harmonic speedup")
	maxSp := 0.0
	for i, mix := range mixes {
		t.AddRowf(mix[0]+"-"+mix[1], sp[i])
		if sp[i] > maxSp {
			maxSp = sp[i]
		}
	}
	t.AddRowf("mean", mean(sp))
	return &Report{
		ID:    "fig17",
		Title: "2-way SMT harmonic speedup of the full enhancements",
		Table: t,
		Notes: []string{
			"paper: +6.3% average, up to +12.6% (pr-cc); Low/Medium-containing mixes gain less",
		},
		Summary: map[string]float64{"mean": mean(sp), "max": maxSp},
	}
}

// multiMixes are the multi-programmed mixes (one benchmark name per core).
// The last one is the paper's 8-core configuration (two DRAM channels).
var multiMixes = [][]string{
	{"pr", "cc", "radii", "bf"},                                // homogeneous High
	{"tc", "canneal", "mis", "mcf"},                            // homogeneous Medium
	{"pr", "mcf", "xalancbmk", "tc"},                           // heterogeneous
	{"cc", "canneal", "xalancbmk", "bf"},                       // heterogeneous
	{"pr", "cc", "radii", "bf", "tc", "canneal", "mis", "mcf"}, // 8-core
}

// MultiCore evaluates the enhancements on multi-programmed mixes sharing an
// LLC (2MB/core) and one DRAM channel.
//
// Summary keys: mean (average harmonic speedup over mixes).
func MultiCore(r *Runner) *Report {
	have := map[string]bool{}
	for _, w := range r.Scale().workloads() {
		have[w] = true
	}
	var mixes [][]string
	for _, mix := range multiMixes {
		ok := true
		for _, w := range mix {
			if !have[w] {
				ok = false
				break
			}
		}
		if ok {
			mixes = append(mixes, mix)
		}
	}
	if len(mixes) == 0 {
		// Quick scale: one mix over whatever benchmarks exist.
		mixes = [][]string{r.Scale().workloads()}
	}
	sp := make([]float64, len(mixes))
	forEachIndex(len(mixes), func(i int) {
		base := r.runMulti(mixes[i], system.Baseline)
		enh := r.runMulti(mixes[i], system.TEMPO)
		sp[i] = enh.HarmonicSpeedupOver(base)
	})
	t := stats.NewTable("mix", "harmonic speedup")
	for i, mix := range mixes {
		t.AddRowf(strings.Join(mix, "-"), sp[i])
	}
	t.AddRowf("mean", mean(sp))
	return &Report{
		ID:    "multicore",
		Title: "Multi-programmed mixes: harmonic speedup of the full enhancements",
		Table: t,
		Notes: []string{
			"paper (8-core, 25 mixes): >4% average improvement",
		},
		Summary: map[string]float64{"mean": mean(sp)},
	}
}
