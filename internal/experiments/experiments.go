// Package experiments regenerates every table and figure of the paper's
// evaluation. Each FigN/TableN function runs the simulations it needs (with
// memoization across experiments), and returns a Report containing the
// rows/series the paper plots plus headline summary numbers.
//
// Figures 9, 11 and 13 are policy/state diagrams with no measured data;
// their semantics are unit-tested in internal/repl and internal/cache.
package experiments

import (
	"fmt"
	"strings"

	"atcsim/internal/stats"
	"atcsim/internal/system"
	"atcsim/internal/trace"
	"atcsim/internal/workloads"
)

// Scale controls how much simulation each experiment performs. The paper
// simulates 10B-instruction regions; this simulator reproduces shapes at
// 10^5–10^6 instructions per run.
type Scale struct {
	// TraceLen is the synthesized trace length per benchmark.
	TraceLen int
	// Instructions and Warmup are per-core simulation lengths.
	Instructions int
	Warmup       int
	// Workloads restricts the benchmark list (default: all nine).
	Workloads []string
	// Seed feeds workload synthesis. ExtraSeeds, when non-empty, makes
	// SeededSpeedups average headline speedups over multiple trace seeds.
	Seed       int64
	ExtraSeeds []int64
}

// Full is the default experiment scale: every benchmark, 300K measured
// instructions after 100K warmup.
func Full() Scale {
	return Scale{
		TraceLen:     500_000,
		Instructions: 300_000,
		Warmup:       100_000,
		Workloads:    workloads.Names(),
		Seed:         1,
	}
}

// Quick is a reduced scale for benchmarks and smoke tests: three
// representative benchmarks (one per STLB-MPKI category), short runs.
func Quick() Scale {
	return Scale{
		TraceLen:     150_000,
		Instructions: 80_000,
		Warmup:       30_000,
		Workloads:    []string{"xalancbmk", "mcf", "pr"},
		Seed:         1,
	}
}

func (sc Scale) workloads() []string {
	if len(sc.Workloads) == 0 {
		return workloads.Names()
	}
	return sc.Workloads
}

// Report is one experiment's regenerated data.
type Report struct {
	ID    string
	Title string
	Table *stats.Table
	Notes []string
	// Summary holds headline aggregates (keys documented per experiment),
	// used by tests and EXPERIMENTS.md.
	Summary map[string]float64
}

// String renders the report as text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Table != nil {
		b.WriteString(r.Table.String())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if len(r.Summary) > 0 {
		keys := make([]string, 0, len(r.Summary))
		for k := range r.Summary {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "summary %s = %.4f\n", k, r.Summary[k])
		}
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Runner caches traces and simulation results so that experiments sharing a
// configuration (e.g. the baseline) pay for it once. It is not safe for
// concurrent use.
type Runner struct {
	sc      Scale
	traces  map[string]*trace.Trace
	results map[string]*system.Result
	runs    int

	// OnRun, when non-nil, is invoked after every simulation the runner
	// actually performs (memoization hits are silent) with the memoization
	// key, the benchmark name and the number of simulations so far — the
	// live-progress hook for long sweeps (cmd/figures -progress).
	OnRun func(key, name string, runs int)
}

// NewRunner creates a runner at the given scale.
func NewRunner(sc Scale) *Runner {
	return &Runner{
		sc:      sc,
		traces:  make(map[string]*trace.Trace),
		results: make(map[string]*system.Result),
	}
}

// Scale returns the runner's scale.
func (r *Runner) Scale() Scale { return r.sc }

// Runs returns the number of simulations performed so far (excluding
// memoization hits).
func (r *Runner) Runs() int { return r.runs }

func (r *Runner) ran(key, name string) {
	r.runs++
	if r.OnRun != nil {
		r.OnRun(key, name, r.runs)
	}
}

// Trace returns the (cached) synthesized trace for a benchmark at the
// scale's primary seed.
func (r *Runner) Trace(name string) *trace.Trace {
	return r.TraceSeeded(name, r.sc.Seed)
}

// TraceSeeded returns the (cached) trace for a benchmark and seed.
func (r *Runner) TraceSeeded(name string, seed int64) *trace.Trace {
	key := fmt.Sprintf("%s@%d", name, seed)
	if t, ok := r.traces[key]; ok {
		return t
	}
	s, err := workloads.ByName(name)
	if err != nil {
		panic(err) // experiment tables only reference registered names
	}
	t := s.Build(r.sc.TraceLen, seed)
	r.traces[key] = t
	return t
}

// SeededSpeedups measures the full-stack speedup of one benchmark across
// the primary seed and every extra seed, returning the individual values.
// It quantifies how sensitive the headline result is to the synthetic
// trace instance.
func (r *Runner) SeededSpeedups(name string) []float64 {
	seeds := append([]int64{r.sc.Seed}, r.sc.ExtraSeeds...)
	out := make([]float64, 0, len(seeds))
	for _, seed := range seeds {
		tr := r.TraceSeeded(name, seed)
		run := func(key string, mod func(*system.Config)) *system.Result {
			ck := fmt.Sprintf("%s@%d|%s", key, seed, name)
			if res, ok := r.results[ck]; ok {
				return res
			}
			cfg := r.baseConfig()
			if mod != nil {
				mod(&cfg)
			}
			res, err := system.Run(cfg, tr)
			if err != nil {
				panic(err)
			}
			r.results[ck] = res
			r.ran(ck, name)
			return res
		}
		base := run("baseline", nil)
		enh := run("tempo", func(c *system.Config) { c.Apply(system.TEMPO) })
		out = append(out, enh.SpeedupOver(base))
	}
	return out
}

// baseConfig is the scale-adjusted Table I configuration.
func (r *Runner) baseConfig() system.Config {
	cfg := system.DefaultConfig()
	cfg.Instructions = r.sc.Instructions
	cfg.Warmup = r.sc.Warmup
	return cfg
}

// Run simulates benchmark name under a modified configuration. key must
// uniquely identify the modification; results are memoized on (key, name).
func (r *Runner) Run(key, name string, mod func(*system.Config)) *system.Result {
	ck := key + "|" + name
	if res, ok := r.results[ck]; ok {
		return res
	}
	cfg := r.baseConfig()
	if mod != nil {
		mod(&cfg)
	}
	res, err := system.Run(cfg, r.Trace(name))
	if err != nil {
		panic(fmt.Sprintf("experiments: run %s/%s: %v", key, name, err))
	}
	r.results[ck] = res
	r.ran(key, name)
	return res
}

// Baseline runs the paper's baseline (DRRIP + SHiP) for a benchmark.
func (r *Runner) Baseline(name string) *system.Result {
	return r.Run("baseline", name, nil)
}

// Enhanced runs the given cumulative enhancement level.
func (r *Runner) Enhanced(name string, e system.Enhancement) *system.Result {
	return r.Run("enh:"+e.String(), name, func(c *system.Config) { c.Apply(e) })
}

// All returns every experiment report at the given scale, in paper order.
func All(sc Scale) []*Report { return AllWith(NewRunner(sc)) }

// AllWith is All on a caller-provided runner, so long sweeps can install a
// progress hook (Runner.OnRun) or share memoized results.
func AllWith(r *Runner) []*Report {
	return []*Report{
		Fig1(r), Fig2(r), Fig3(r), Fig4(r), Fig5(r), Fig6(r), Fig7(r), Fig8(r),
		Fig10(r), Fig12(r), Fig14(r), Fig15(r), Fig16(r), Fig17(r), Fig18(r),
		Fig19(r), Fig20(r), Fig21(r), TableI(r), TableII(r), MultiCore(r),
		AblationDecompose(r), AblationWalkers(r), AblationReplayDelay(r),
		AblationScatter(r), AblationTHawkeye(r), AblationHugePages(r),
		Comparison(r), Robustness(r),
	}
}

// ByID returns a single experiment by its identifier ("fig1".."fig21",
// "table1", "table2", "multicore").
func ByID(sc Scale, id string) (*Report, error) { return ByIDWith(NewRunner(sc), id) }

// ByIDWith is ByID on a caller-provided runner.
func ByIDWith(r *Runner, id string) (*Report, error) {
	f, ok := map[string]func(*Runner) *Report{
		"fig1": Fig1, "fig2": Fig2, "fig3": Fig3, "fig4": Fig4, "fig5": Fig5,
		"fig6": Fig6, "fig7": Fig7, "fig8": Fig8, "fig10": Fig10, "fig12": Fig12,
		"fig14": Fig14, "fig15": Fig15, "fig16": Fig16, "fig17": Fig17,
		"fig18": Fig18, "fig19": Fig19, "fig20": Fig20, "fig21": Fig21,
		"table1": TableI, "table2": TableII, "multicore": MultiCore,
		"ablation-decompose":   AblationDecompose,
		"ablation-walkers":     AblationWalkers,
		"ablation-replaydelay": AblationReplayDelay,
		"ablation-scatter":     AblationScatter,
		"ablation-t-hawkeye":   AblationTHawkeye,
		"ablation-hugepages":   AblationHugePages,
		"comparison":           Comparison,
		"robustness":           Robustness,
	}[strings.ToLower(id)]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return f(r), nil
}

// IDs lists every experiment identifier in paper order.
func IDs() []string {
	return []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig10", "fig12", "fig14", "fig15", "fig16", "fig17", "fig18",
		"fig19", "fig20", "fig21", "table1", "table2", "multicore",
		"ablation-decompose", "ablation-walkers", "ablation-replaydelay",
		"ablation-scatter", "ablation-t-hawkeye", "ablation-hugepages",
		"comparison", "robustness",
	}
}
