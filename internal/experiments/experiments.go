// Package experiments regenerates every table and figure of the paper's
// evaluation. Each FigN/TableN function runs the simulations it needs and
// returns a Report containing the rows/series the paper plots plus headline
// summary numbers.
//
// Simulations are scheduled through a parallel experiment engine
// (internal/experiments/runner): every run is identified by a canonical run
// key — the fully-resolved machine configuration plus workload, trace seed
// and trace length — deduplicated across experiments, executed on a bounded
// worker pool, and optionally persisted to an on-disk cache so interrupted
// or overlapping sweeps resume instead of recomputing. Reports are
// byte-identical regardless of the job count (each simulation is itself
// deterministic and single-threaded; concurrency only changes *when* a run
// executes, never its result).
//
// Execution is fault tolerant: every simulation runs under the sweep's
// context with an optional per-run deadline, transient failures are retried
// with capped exponential backoff, and a run that still fails — including a
// panicking simulation — degrades only the experiments that need it. Those
// experiments complete as FAILED(reason) reports carrying the failed run's
// label and benchmark, while the rest of the sweep proceeds; completed
// results stay in the disk cache, so a canceled or partially-failed sweep
// resumes instead of recomputing.
//
// Figures 9, 11 and 13 are policy/state diagrams with no measured data;
// their semantics are unit-tested in internal/repl and internal/cache.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"atcsim/internal/experiments/runner"
	"atcsim/internal/faultinject"
	"atcsim/internal/metrics"
	"atcsim/internal/stats"
	"atcsim/internal/system"
	"atcsim/internal/telemetry"
	"atcsim/internal/trace"
	"atcsim/internal/workloads"
)

// Scale controls how much simulation each experiment performs. The paper
// simulates 10B-instruction regions; this simulator reproduces shapes at
// 10^5–10^6 instructions per run.
type Scale struct {
	// TraceLen is the synthesized trace length per benchmark.
	TraceLen int
	// Instructions and Warmup are per-core simulation lengths.
	Instructions int
	Warmup       int
	// Workloads restricts the benchmark list (default: all nine).
	Workloads []string
	// Seed feeds workload synthesis. ExtraSeeds, when non-empty, makes
	// SeededSpeedups average headline speedups over multiple trace seeds.
	Seed       int64
	ExtraSeeds []int64
	// Timing selects the hierarchy timing engine for every run ("" or
	// "analytic" = the default analytic model, "queued" = bounded deques;
	// see system.TimingModels). "analytic" is normalized to "" so those
	// sweeps share run keys and disk-cache entries with legacy sweeps.
	Timing string
	// SimJobs caps the intra-simulation barrier-parallel engine's worker
	// goroutines for every eligible multi-core run in the sweep
	// (system.Config.SimJobs): 0 = one worker per CPU, 1 = serial execution
	// of the identical barrier schedule. Reports are byte-identical for any
	// value, and the knob is excluded from run keys and the disk cache.
	SimJobs int
}

// Full is the default experiment scale: every benchmark, 300K measured
// instructions after 100K warmup.
func Full() Scale {
	return Scale{
		TraceLen:     500_000,
		Instructions: 300_000,
		Warmup:       100_000,
		Workloads:    workloads.Names(),
		Seed:         1,
	}
}

// Quick is a reduced scale for benchmarks and smoke tests: three
// representative benchmarks (one per STLB-MPKI category), short runs.
func Quick() Scale {
	return Scale{
		TraceLen:     150_000,
		Instructions: 80_000,
		Warmup:       30_000,
		Workloads:    []string{"xalancbmk", "mcf", "pr"},
		Seed:         1,
	}
}

func (sc Scale) workloads() []string {
	if len(sc.Workloads) == 0 {
		return workloads.Names()
	}
	return sc.Workloads
}

// Report is one experiment's regenerated data.
type Report struct {
	ID    string
	Title string
	Table *stats.Table
	Notes []string
	// Summary holds headline aggregates (keys documented per experiment),
	// used by tests and EXPERIMENTS.md.
	Summary map[string]float64
	// Failed, when non-empty, is the reason this experiment produced no
	// data: a required simulation permanently failed (or the sweep was
	// canceled) and the failure was contained here instead of aborting the
	// sweep. Failed reports carry no Table/Summary.
	Failed string
}

// String renders the report as text. Failed experiments render a stable
// FAILED(reason) marker instead of data.
func (r *Report) String() string {
	var b strings.Builder
	if r.Failed != "" {
		fmt.Fprintf(&b, "== %s: FAILED ==\nFAILED(%s)\n", r.ID, r.Failed)
		return b.String()
	}
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Table != nil {
		b.WriteString(r.Table.String())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if len(r.Summary) > 0 {
		keys := make([]string, 0, len(r.Summary))
		for k := range r.Summary {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "summary %s = %.4f\n", k, r.Summary[k])
		}
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// RunError identifies one simulation's permanent failure: which experiment
// label and benchmark requested it, how many attempts were made, and the
// final error. When the failure was a crash, Panic holds the recovered
// panic value (also wrapped inside Err as a *runner.PanicError).
type RunError struct {
	Label    string
	Name     string
	Attempts int
	Panic    any
	Err      error
}

// Error renders a stable, schedule-independent message so FAILED markers
// derived from it are byte-identical across job counts.
func (e *RunError) Error() string {
	return fmt.Sprintf("run %s/%s failed (attempts=%d): %v", e.Label, e.Name, e.Attempts, e.Err)
}

// Unwrap exposes the underlying failure for errors.Is/As chains.
func (e *RunError) Unwrap() error { return e.Err }

// abortExperiment is the controlled panic an experiment body raises (via
// must) when a governed run permanently fails. It is caught at the
// experiment boundary (runExperiment) and converted into a FAILED report;
// any other panic is a genuine bug and still propagates.
type abortExperiment struct{ err error }

// must unwraps a governed run inside an experiment body: table builders
// stay straight-line code, and a failed run aborts only the enclosing
// experiment, never the sweep.
func must[V any](v V, err error) V {
	if err != nil {
		panic(&abortExperiment{err: err})
	}
	return v
}

// runExperiment executes one catalog entry with containment: an
// abortExperiment panic (a permanently-failed run) becomes a FAILED report
// carrying the failure reason.
func runExperiment(r *Runner, id string, fn func(*Runner) *Report) (rep *Report) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		ab, ok := p.(*abortExperiment)
		if !ok {
			panic(p)
		}
		rep = &Report{ID: id, Title: "FAILED", Failed: ab.err.Error()}
	}()
	return fn(r)
}

// Options configures the experiment engine behind a Runner.
type Options struct {
	// Jobs bounds how many simulations execute concurrently. Zero or
	// negative selects runtime.NumCPU(). Report output is byte-identical for
	// any value.
	Jobs int
	// CacheDir, when non-empty, enables the on-disk result cache: every
	// finished simulation is written there (JSON, keyed by run-key hash with
	// format-version and checksum fields) and later runners with the same
	// directory load it back instead of re-simulating. The directory is
	// created if missing.
	CacheDir string
	// Context, when non-nil, is the sweep's base context: canceling it
	// (SIGINT handling, tests) makes every not-yet-started run fail fast
	// with a canceled RunError while in-flight runs finish and completed
	// results stay cached — the sweep still renders, with FAILED markers.
	Context context.Context
	// RunTimeout, when positive, bounds each simulation attempt. An attempt
	// that exceeds it is abandoned and the run fails with a deadline error
	// (the simulator has no preemption points, so the abandoned attempt
	// finishes in the background and is discarded).
	RunTimeout time.Duration
	// SweepBudget, when positive, bounds the whole sweep: once spent, every
	// remaining run fails fast with a deadline error.
	SweepBudget time.Duration
	// Retry bounds the retry loop around transiently-failing runs. The
	// zero value selects runner defaults (3 attempts, capped exponential
	// backoff with jitter).
	Retry runner.RetryPolicy
	// Faults, when non-nil, injects deterministic faults at the engine's
	// hook points (chaos testing). See internal/faultinject.
	Faults *faultinject.Plan
	// Health, when non-nil, receives the sweep's retry/failure counters;
	// when nil the runner allocates its own (see Runner.Health).
	Health *telemetry.Health
	// Metrics, when non-nil, is the registry the engine exposes itself on:
	// health counters, the live per-run-key state table and every
	// simulation counter family (folded in as runs complete — see
	// system.MetricsSink). Registration happens eagerly, so a /metrics
	// scrape shows the full series set before the first run finishes.
	Metrics *metrics.Registry
	// Recorder, when non-nil, receives structured flight-recorder events
	// (run started/retried/done/failed, panics, fault injections,
	// quarantines) and is dumped to its sink on every permanent run
	// failure. See metrics.FlightRecorder.
	Recorder *metrics.FlightRecorder
}

// Runner schedules and caches the simulations experiments request. Traces
// and results are memoized by canonical run key, so experiments sharing a
// configuration (e.g. the baseline) pay for it once — even when they execute
// concurrently. All methods are safe for concurrent use.
type Runner struct {
	sc         Scale
	pool       *runner.Pool
	traces     *runner.Cache[*trace.Trace]
	results    *runner.Cache[*system.Result]
	disk       *runner.Disk
	ctx        context.Context
	cancel     context.CancelFunc
	runTimeout time.Duration
	retry      runner.RetryPolicy
	faults     *faultinject.Plan
	health     *telemetry.Health
	runsTable  *metrics.RunTable
	recorder   *metrics.FlightRecorder
	sink       *system.MetricsSink

	mu       sync.Mutex
	runs     int
	diskHits int
	cacheErr error

	// OnRun, when non-nil, is invoked after every simulation the runner
	// actually performs (memoization and disk-cache hits are silent) with
	// the experiment's run label, the benchmark name and the number of
	// simulations so far — the live-progress hook for long sweeps
	// (cmd/figures -progress). Calls are serialized under the runner's
	// internal lock, so the callback needs no locking of its own; under a
	// parallel sweep the invocation order is nondeterministic. Set it before
	// the first Run.
	OnRun func(key, name string, runs int)
}

// NewRunner creates a sequential runner at the given scale (one simulation
// at a time, no on-disk cache) — the right default for tests and library
// use. Use NewRunnerWith to run simulations in parallel, persist results,
// or govern runs with deadlines and retries.
func NewRunner(sc Scale) *Runner {
	r, err := NewRunnerWith(sc, Options{Jobs: 1})
	if err != nil {
		// Options{Jobs: 1} cannot fail: no cache directory is opened.
		panic(err)
	}
	return r
}

// NewRunnerWith creates a runner with an explicit job count and optional
// on-disk result cache, sweep context/budget, per-run deadline, retry
// policy and fault plan. It fails only when the cache directory cannot be
// created.
func NewRunnerWith(sc Scale, opts Options) (*Runner, error) {
	r := &Runner{
		sc:         sc,
		pool:       runner.NewPool(opts.Jobs),
		traces:     runner.NewCache[*trace.Trace](),
		results:    runner.NewCache[*system.Result](),
		runTimeout: opts.RunTimeout,
		retry:      opts.Retry,
		faults:     opts.Faults,
		health:     opts.Health,
		runsTable:  metrics.NewRunTable(),
		recorder:   opts.Recorder,
	}
	if r.health == nil {
		r.health = new(telemetry.Health)
	}
	if opts.Metrics != nil {
		r.health.RegisterMetrics(opts.Metrics)
		r.runsTable.Register(opts.Metrics)
		r.sink = system.NewMetricsSink(opts.Metrics)
		if r.recorder != nil {
			r.recorder.Register(opts.Metrics)
		}
	}
	if r.recorder != nil {
		// Fault firings become flight-recorder events: ev.ID is the stable
		// run/cache identity the plan matched, ev.Hit the per-identity
		// consultation count, so the recorded set is schedule-independent.
		rec := r.recorder
		opts.Faults.SetObserver(func(ev faultinject.Event) {
			rec.Recordf(metrics.EventFault, ev.ID, ev.Hit, "%s at %s", ev.Kind, ev.Site)
		})
	}
	base := opts.Context
	if base == nil {
		base = context.Background()
	}
	if opts.SweepBudget > 0 {
		r.ctx, r.cancel = context.WithTimeout(base, opts.SweepBudget)
	} else {
		r.ctx, r.cancel = context.WithCancel(base)
	}
	if opts.CacheDir != "" {
		disk, err := runner.NewDisk(opts.CacheDir)
		if err != nil {
			r.cancel()
			return nil, err
		}
		disk.SetFaults(opts.Faults)
		disk.OnQuarantine(func(path string) {
			r.health.Quarantined.Add(1)
			// filepath.Base keeps the event detail free of the (run-specific)
			// cache directory, preserving dump determinism.
			r.recorder.Recordf(metrics.EventQuarantine, "", 0, "%s", filepath.Base(path))
		})
		r.disk = disk
	}
	return r, nil
}

// Scale returns the runner's scale.
func (r *Runner) Scale() Scale { return r.sc }

// Jobs returns the runner's simulation concurrency bound.
func (r *Runner) Jobs() int { return r.pool.Jobs() }

// Health returns the sweep's retry/failure counters (never nil).
func (r *Runner) Health() *telemetry.Health { return r.health }

// RunsTable returns the live per-run-key state table (never nil) — the
// backing store of a metrics server's /runs endpoint.
func (r *Runner) RunsTable() *metrics.RunTable { return r.runsTable }

// Recorder returns the flight recorder passed in Options (possibly nil).
func (r *Runner) Recorder() *metrics.FlightRecorder { return r.recorder }

// Cancel cancels the sweep: in-flight simulations finish (and their results
// are cached), every not-yet-started run fails fast with a canceled error,
// and the sweep completes with FAILED markers instead of aborting. Safe to
// call from a signal handler goroutine; idempotent.
func (r *Runner) Cancel() { r.cancel() }

// Interrupted reports whether the sweep's context has been canceled or its
// budget spent.
func (r *Runner) Interrupted() bool { return r.ctx.Err() != nil }

// Quarantined returns how many corrupt disk-cache entries were quarantined
// to ".bad" siblings (and recomputed) during this runner's lifetime.
func (r *Runner) Quarantined() int64 { return r.disk.Quarantined() }

// Runs returns the number of simulations actually performed so far
// (memoization and disk-cache hits excluded).
func (r *Runner) Runs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs
}

// DiskHits returns how many results were served from the on-disk cache
// instead of being simulated.
func (r *Runner) DiskHits() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.diskHits
}

// CacheErr returns the first on-disk cache read/write failure observed, if
// any. Cache failures never fail a sweep — the result is recomputed or kept
// in memory only — but callers may want to surface them.
func (r *Runner) CacheErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cacheErr
}

func (r *Runner) ran(key, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs++
	if r.OnRun != nil {
		r.OnRun(key, name, r.runs)
	}
}

func (r *Runner) noteDiskHit() {
	r.mu.Lock()
	r.diskHits++
	r.mu.Unlock()
	r.health.DiskHits.Add(1)
}

func (r *Runner) noteCacheErr(err error) {
	r.mu.Lock()
	if r.cacheErr == nil {
		r.cacheErr = err
	}
	r.mu.Unlock()
	r.health.DiskErrors.Add(1)
}

// noteOutcome folds one governed run's outcome into the health counters.
func (r *Runner) noteOutcome(rr runner.RunResult) {
	h := r.health
	if rr.Attempts > 1 {
		h.Retries.Add(int64(rr.Attempts - 1))
	}
	if rr.Err == nil {
		h.Runs.Add(1)
		return
	}
	h.Failures.Add(1)
	if rr.Panic != nil {
		h.Panics.Add(1)
	}
	switch {
	case errors.Is(rr.Err, context.DeadlineExceeded):
		h.Timeouts.Add(1)
	case errors.Is(rr.Err, context.Canceled):
		h.Canceled.Add(1)
	}
}

// Trace returns the (cached) synthesized trace for a benchmark at the
// scale's primary seed, aborting the enclosing experiment on failure.
func (r *Runner) Trace(name string) *trace.Trace {
	return r.TraceSeeded(name, r.sc.Seed)
}

// TraceSeeded returns the (cached) trace for a benchmark and seed, aborting
// the enclosing experiment on failure (e.g. an unregistered name).
func (r *Runner) TraceSeeded(name string, seed int64) *trace.Trace {
	return must(r.TryTraceSeeded(name, seed))
}

// TryTraceSeeded returns the (cached) trace for a benchmark and seed. Trace
// synthesis is single-flight: concurrent requests for the same trace share
// one build. An unregistered benchmark name is a permanent error carrying
// the trace identity.
func (r *Runner) TryTraceSeeded(name string, seed int64) (*trace.Trace, error) {
	key := fmt.Sprintf("%s@%d", name, seed)
	t, _, err := r.traces.Do(key, func() (*trace.Trace, error) {
		s, err := workloads.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("experiments: trace %s: %w", key, err)
		}
		return s.Build(r.sc.TraceLen, seed), nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// RunSource classifies where a governed run's result came from, so service
// callers can count real computes apart from deduplicated requests.
type RunSource string

// Result provenance values returned by RunOne (and internally by cached).
const (
	// SourceComputed: this request performed the simulation.
	SourceComputed RunSource = "computed"
	// SourceDisk: this request loaded the result from the on-disk store.
	SourceDisk RunSource = "disk"
	// SourceShared: this request coalesced onto another in-flight or
	// already-memoized execution in this process (single-flight dedup).
	SourceShared RunSource = "shared"
)

// cached is the engine core every simulation goes through: it derives the
// canonical run key, consults the in-memory single-flight cache and the
// optional disk cache, and otherwise executes sim on the worker pool under
// ctx — with the given per-run deadline, the configured retry policy and
// fault plan — persisting the fresh result. Sweep-driven callers pass the
// sweep context and runner-wide deadline; service callers thread a
// per-request context/deadline through instead. A permanent failure
// (including a captured panic) is returned as a *RunError carrying the
// label/name run identity; the failed cache entry re-arms, so a later
// request for the same key retries instead of inheriting the failure.
func (r *Runner) cached(ctx context.Context, timeout time.Duration,
	label, name, kind string, names []string, seeds []int64,
	cfg system.Config, sim func() (*system.Result, error)) (*system.Result, RunSource, error) {
	key, err := runner.NewKey(kind, names, seeds, r.sc.TraceLen, cfg)
	if err != nil {
		return nil, SourceComputed, &RunError{Label: label, Name: name, Attempts: 1,
			Err: fmt.Errorf("derive run key: %w", err)}
	}
	id := label + "/" + name
	src := SourceShared // overwritten when this call's compute closure runs
	res, _, err := r.results.Do(key.Hash(), func() (*system.Result, error) {
		r.runsTable.Queued(id, key.Hash())
		fromDisk := new(system.Result)
		if ok, lerr := r.disk.Load(key, fromDisk); lerr != nil {
			r.noteCacheErr(lerr) // unreadable/undecodable entry: recompute below
			r.recorder.Recordf(metrics.EventDiskError, id, 0, "load: %v", lerr)
		} else if ok {
			r.noteDiskHit()
			r.runsTable.Cached(id)
			src = SourceDisk
			return fromDisk, nil
		}
		src = SourceComputed
		var out *system.Result
		attempt := 0
		rr := runner.Execute(ctx, r.retry, func(ctx context.Context) error {
			attempt++
			r.runsTable.Running(id, attempt)
			if attempt == 1 {
				r.recorder.Record(metrics.Event{Kind: metrics.EventRunStarted, Run: id, Attempt: 1})
			} else {
				r.recorder.Record(metrics.Event{Kind: metrics.EventRunRetried, Run: id, Attempt: attempt})
			}
			if ferr := r.faults.Check(faultinject.SiteRun, id); ferr != nil {
				return ferr
			}
			var res *system.Result
			var serr error
			r.pool.Run(func() {
				res, serr = runner.Bounded(ctx, timeout, sim)
			})
			if serr != nil {
				return serr
			}
			out = res
			return nil
		})
		r.noteOutcome(rr)
		if rr.Err != nil {
			r.runsTable.Failed(id, rr.Attempts, rr.Err.Error())
			if rr.Panic != nil {
				r.recorder.Recordf(metrics.EventPanic, id, rr.Attempts, "%v", rr.Panic)
			}
			r.recorder.Recordf(metrics.EventRunFailed, id, rr.Attempts, "%v", rr.Err)
			// A permanent failure dumps the post-mortem; an unwritable sink
			// must not turn diagnostics into a second failure.
			_ = r.recorder.DumpToSink()
			return nil, &RunError{Label: label, Name: name,
				Attempts: rr.Attempts, Panic: rr.Panic, Err: rr.Err}
		}
		r.runsTable.Done(id, rr.Attempts)
		if cfg.CheckInvariants {
			r.recorder.Recordf(metrics.EventAudit, id, rr.Attempts, "ok")
		}
		r.recorder.Record(metrics.Event{Kind: metrics.EventRunDone, Run: id, Attempt: rr.Attempts})
		r.ran(label, name)
		r.sink.Record(out)
		if serr := r.disk.Store(key, out); serr != nil {
			r.noteCacheErr(serr)
			r.recorder.Recordf(metrics.EventDiskError, id, 0, "store: %v", serr)
		}
		return out, nil
	})
	if err != nil {
		return nil, src, err
	}
	return res, src, nil
}

// baseConfig is the scale-adjusted Table I configuration.
func (r *Runner) baseConfig() system.Config {
	cfg := system.DefaultConfig()
	cfg.Instructions = r.sc.Instructions
	cfg.Warmup = r.sc.Warmup
	if r.sc.Timing != "" && r.sc.Timing != system.TimingAnalytic {
		cfg.Timing = r.sc.Timing
	}
	cfg.SimJobs = r.sc.SimJobs
	return cfg
}

// Run simulates benchmark name under a modified configuration. key labels
// the modification in progress output; deduplication uses the canonical run
// key (the fully-resolved configuration plus workload, seed and trace
// length), so two experiments requesting identical machines share one
// simulation even under different labels. A permanent failure aborts the
// enclosing experiment (see TryRun for the error-returning form).
func (r *Runner) Run(key, name string, mod func(*system.Config)) *system.Result {
	return must(r.TryRun(key, name, mod))
}

// TryRun is Run returning the failure as a *RunError instead of aborting
// the enclosing experiment — the entry point for callers that handle
// per-run failures themselves.
func (r *Runner) TryRun(label, name string, mod func(*system.Config)) (*system.Result, error) {
	return r.trySeeded(label, name, r.sc.Seed, mod)
}

// runSeeded is Run against the trace synthesized with an explicit seed.
func (r *Runner) runSeeded(label, name string, seed int64, mod func(*system.Config)) *system.Result {
	return must(r.trySeeded(label, name, seed, mod))
}

// trySeeded is the error-returning core of Run/runSeeded.
func (r *Runner) trySeeded(label, name string, seed int64, mod func(*system.Config)) (*system.Result, error) {
	res, _, err := r.runOne(r.ctx, r.runTimeout, label, name, seed, mod)
	return res, err
}

// KeyFor derives the canonical run key a single-core run request maps to —
// the content-addressed identity a sweep service exposes as its API
// contract — without executing anything. mod receives the scale-adjusted
// base configuration exactly as Run would apply it.
func (r *Runner) KeyFor(name string, seed int64, mod func(*system.Config)) (runner.Key, error) {
	cfg := r.baseConfig()
	if mod != nil {
		mod(&cfg)
	}
	return runner.NewKey(runner.KindSingle, []string{name}, []int64{seed}, r.sc.TraceLen, cfg)
}

// RunOne executes (or fetches) one governed single-core simulation on
// behalf of a service request. ctx bounds the computation — pass the
// service's lifetime context, not a per-client one, because single-flight
// waiters share the computing call's context; a nil ctx selects the
// runner's sweep context. timeout, when positive, overrides the
// runner-wide per-run deadline for this request and is propagated through
// context into runner.Bounded. The returned RunSource reports whether this
// request computed the result, loaded it from disk, or coalesced onto a
// shared execution. Failures come back as a *RunError; nothing aborts.
func (r *Runner) RunOne(ctx context.Context, label, name string, seed int64,
	timeout time.Duration, mod func(*system.Config)) (*system.Result, RunSource, error) {
	if ctx == nil {
		ctx = r.ctx
	}
	if timeout <= 0 {
		timeout = r.runTimeout
	}
	return r.runOne(ctx, timeout, label, name, seed, mod)
}

// runOne is the shared single-core core behind trySeeded and RunOne.
func (r *Runner) runOne(ctx context.Context, timeout time.Duration,
	label, name string, seed int64, mod func(*system.Config)) (*system.Result, RunSource, error) {
	cfg := r.baseConfig()
	if mod != nil {
		mod(&cfg)
	}
	return r.cached(ctx, timeout, label, name, runner.KindSingle, []string{name}, []int64{seed}, cfg,
		func() (*system.Result, error) {
			tr, err := r.TryTraceSeeded(name, seed)
			if err != nil {
				return nil, err
			}
			return system.Run(cfg, tr)
		})
}

// Baseline runs the paper's baseline (DRRIP + SHiP) for a benchmark.
func (r *Runner) Baseline(name string) *system.Result {
	return r.Run("baseline", name, nil)
}

// Enhanced runs the given cumulative enhancement level.
func (r *Runner) Enhanced(name string, e system.Enhancement) *system.Result {
	return r.Run("enh:"+e.String(), name, func(c *system.Config) { c.Apply(e) })
}

// SeededSpeedups measures the full-stack speedup of one benchmark across
// the primary seed and every extra seed, returning the individual values in
// seed order. It quantifies how sensitive the headline result is to the
// synthetic trace instance.
func (r *Runner) SeededSpeedups(name string) []float64 {
	return r.SeededSpeedupsAt(name, append([]int64{r.sc.Seed}, r.sc.ExtraSeeds...))
}

// SeededSpeedupsAt is SeededSpeedups over an explicit seed list. Seeds are
// evaluated concurrently (bounded by the runner's job count) and results
// returned in seed order.
func (r *Runner) SeededSpeedupsAt(name string, seeds []int64) []float64 {
	out := make([]float64, len(seeds))
	forEachIndex(len(seeds), func(i int) {
		seed := seeds[i]
		base := r.runSeeded(fmt.Sprintf("baseline@%d", seed), name, seed, nil)
		enh := r.runSeeded(fmt.Sprintf("tempo@%d", seed), name, seed,
			func(c *system.Config) { c.Apply(system.TEMPO) })
		out[i] = enh.SpeedupOver(base)
	})
	return out
}

// catalogEntry pairs an experiment identifier with its generator function.
type catalogEntry struct {
	id string
	fn func(*Runner) *Report
}

// catalog lists every experiment in paper order; IDs, All and ByID all
// derive from it, so an experiment registered here is automatically listed,
// runnable and covered by the documentation-coverage test.
var catalog = []catalogEntry{
	{"fig1", Fig1}, {"fig2", Fig2}, {"fig3", Fig3}, {"fig4", Fig4},
	{"fig5", Fig5}, {"fig6", Fig6}, {"fig7", Fig7}, {"fig8", Fig8},
	{"fig10", Fig10}, {"fig12", Fig12}, {"fig14", Fig14}, {"fig15", Fig15},
	{"fig16", Fig16}, {"fig17", Fig17}, {"fig18", Fig18}, {"fig19", Fig19},
	{"fig20", Fig20}, {"fig21", Fig21}, {"table1", TableI}, {"table2", TableII},
	{"multicore", MultiCore},
	{"ablation-decompose", AblationDecompose},
	{"ablation-walkers", AblationWalkers},
	{"ablation-replaydelay", AblationReplayDelay},
	{"ablation-scatter", AblationScatter},
	{"ablation-t-hawkeye", AblationTHawkeye},
	{"ablation-hugepages", AblationHugePages},
	{"comparison", Comparison},
	{"robustness", Robustness},
	{"mechanisms", Mechanisms},
	{"queues", Queues},
}

// All returns every experiment report at the given scale, in paper order.
func All(sc Scale) []*Report { return AllWith(NewRunner(sc)) }

// AllWith is All on a caller-provided runner, so long sweeps can install a
// progress hook (Runner.OnRun), share memoized results, or run in parallel
// (NewRunnerWith). Experiments execute concurrently — the runner's job count
// bounds how many simulations are in flight — and reports are assembled in
// paper order, so the output is identical to a sequential sweep. A
// permanently-failed run yields FAILED reports for the experiments that
// needed it; the rest of the sweep completes normally.
func AllWith(r *Runner) []*Report {
	reports := make([]*Report, len(catalog))
	forEachIndex(len(catalog), func(i int) {
		reports[i] = runExperiment(r, catalog[i].id, catalog[i].fn)
	})
	return reports
}

// ByID returns a single experiment by its identifier ("fig1".."fig21",
// "table1", "table2", "multicore", "ablation-*", "comparison",
// "robustness").
func ByID(sc Scale, id string) (*Report, error) { return ByIDWith(NewRunner(sc), id) }

// ByIDWith is ByID on a caller-provided runner. Like AllWith, a
// permanently-failed run is contained as a FAILED report, not an error:
// the error return is reserved for unknown identifiers.
func ByIDWith(r *Runner, id string) (*Report, error) {
	want := strings.ToLower(id)
	for _, e := range catalog {
		if e.id == want {
			return runExperiment(r, e.id, e.fn), nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// IDs lists every experiment identifier in paper order.
func IDs() []string {
	out := make([]string, len(catalog))
	for i, e := range catalog {
		out[i] = e.id
	}
	return out
}
