// Package experiments regenerates every table and figure of the paper's
// evaluation. Each FigN/TableN function runs the simulations it needs and
// returns a Report containing the rows/series the paper plots plus headline
// summary numbers.
//
// Simulations are scheduled through a parallel experiment engine
// (internal/experiments/runner): every run is identified by a canonical run
// key — the fully-resolved machine configuration plus workload, trace seed
// and trace length — deduplicated across experiments, executed on a bounded
// worker pool, and optionally persisted to an on-disk cache so interrupted
// or overlapping sweeps resume instead of recomputing. Reports are
// byte-identical regardless of the job count (each simulation is itself
// deterministic and single-threaded; concurrency only changes *when* a run
// executes, never its result).
//
// Figures 9, 11 and 13 are policy/state diagrams with no measured data;
// their semantics are unit-tested in internal/repl and internal/cache.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"atcsim/internal/experiments/runner"
	"atcsim/internal/stats"
	"atcsim/internal/system"
	"atcsim/internal/trace"
	"atcsim/internal/workloads"
)

// Scale controls how much simulation each experiment performs. The paper
// simulates 10B-instruction regions; this simulator reproduces shapes at
// 10^5–10^6 instructions per run.
type Scale struct {
	// TraceLen is the synthesized trace length per benchmark.
	TraceLen int
	// Instructions and Warmup are per-core simulation lengths.
	Instructions int
	Warmup       int
	// Workloads restricts the benchmark list (default: all nine).
	Workloads []string
	// Seed feeds workload synthesis. ExtraSeeds, when non-empty, makes
	// SeededSpeedups average headline speedups over multiple trace seeds.
	Seed       int64
	ExtraSeeds []int64
}

// Full is the default experiment scale: every benchmark, 300K measured
// instructions after 100K warmup.
func Full() Scale {
	return Scale{
		TraceLen:     500_000,
		Instructions: 300_000,
		Warmup:       100_000,
		Workloads:    workloads.Names(),
		Seed:         1,
	}
}

// Quick is a reduced scale for benchmarks and smoke tests: three
// representative benchmarks (one per STLB-MPKI category), short runs.
func Quick() Scale {
	return Scale{
		TraceLen:     150_000,
		Instructions: 80_000,
		Warmup:       30_000,
		Workloads:    []string{"xalancbmk", "mcf", "pr"},
		Seed:         1,
	}
}

func (sc Scale) workloads() []string {
	if len(sc.Workloads) == 0 {
		return workloads.Names()
	}
	return sc.Workloads
}

// Report is one experiment's regenerated data.
type Report struct {
	ID    string
	Title string
	Table *stats.Table
	Notes []string
	// Summary holds headline aggregates (keys documented per experiment),
	// used by tests and EXPERIMENTS.md.
	Summary map[string]float64
}

// String renders the report as text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Table != nil {
		b.WriteString(r.Table.String())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if len(r.Summary) > 0 {
		keys := make([]string, 0, len(r.Summary))
		for k := range r.Summary {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "summary %s = %.4f\n", k, r.Summary[k])
		}
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Options configures the experiment engine behind a Runner.
type Options struct {
	// Jobs bounds how many simulations execute concurrently. Zero or
	// negative selects runtime.NumCPU(). Report output is byte-identical for
	// any value.
	Jobs int
	// CacheDir, when non-empty, enables the on-disk result cache: every
	// finished simulation is written there (JSON, keyed by run-key hash with
	// a format-version field) and later runners with the same directory load
	// it back instead of re-simulating. The directory is created if missing.
	CacheDir string
}

// Runner schedules and caches the simulations experiments request. Traces
// and results are memoized by canonical run key, so experiments sharing a
// configuration (e.g. the baseline) pay for it once — even when they execute
// concurrently. All methods are safe for concurrent use.
type Runner struct {
	sc      Scale
	pool    *runner.Pool
	traces  *runner.Cache[*trace.Trace]
	results *runner.Cache[*system.Result]
	disk    *runner.Disk

	mu       sync.Mutex
	runs     int
	diskHits int
	cacheErr error

	// OnRun, when non-nil, is invoked after every simulation the runner
	// actually performs (memoization and disk-cache hits are silent) with
	// the experiment's run label, the benchmark name and the number of
	// simulations so far — the live-progress hook for long sweeps
	// (cmd/figures -progress). Calls are serialized under the runner's
	// internal lock, so the callback needs no locking of its own; under a
	// parallel sweep the invocation order is nondeterministic. Set it before
	// the first Run.
	OnRun func(key, name string, runs int)
}

// NewRunner creates a sequential runner at the given scale (one simulation
// at a time, no on-disk cache) — the right default for tests and library
// use. Use NewRunnerWith to run simulations in parallel or to persist
// results.
func NewRunner(sc Scale) *Runner {
	r, err := NewRunnerWith(sc, Options{Jobs: 1})
	if err != nil {
		// Options{Jobs: 1} cannot fail: no cache directory is opened.
		panic(err)
	}
	return r
}

// NewRunnerWith creates a runner with an explicit job count and optional
// on-disk result cache. It fails only when the cache directory cannot be
// created.
func NewRunnerWith(sc Scale, opts Options) (*Runner, error) {
	r := &Runner{
		sc:      sc,
		pool:    runner.NewPool(opts.Jobs),
		traces:  runner.NewCache[*trace.Trace](),
		results: runner.NewCache[*system.Result](),
	}
	if opts.CacheDir != "" {
		disk, err := runner.NewDisk(opts.CacheDir)
		if err != nil {
			return nil, err
		}
		r.disk = disk
	}
	return r, nil
}

// Scale returns the runner's scale.
func (r *Runner) Scale() Scale { return r.sc }

// Jobs returns the runner's simulation concurrency bound.
func (r *Runner) Jobs() int { return r.pool.Jobs() }

// Runs returns the number of simulations actually performed so far
// (memoization and disk-cache hits excluded).
func (r *Runner) Runs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs
}

// DiskHits returns how many results were served from the on-disk cache
// instead of being simulated.
func (r *Runner) DiskHits() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.diskHits
}

// CacheErr returns the first on-disk cache read/write failure observed, if
// any. Cache failures never fail a sweep — the result is recomputed or kept
// in memory only — but callers may want to surface them.
func (r *Runner) CacheErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cacheErr
}

func (r *Runner) ran(key, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs++
	if r.OnRun != nil {
		r.OnRun(key, name, r.runs)
	}
}

func (r *Runner) noteDiskHit() {
	r.mu.Lock()
	r.diskHits++
	r.mu.Unlock()
}

func (r *Runner) noteCacheErr(err error) {
	r.mu.Lock()
	if r.cacheErr == nil {
		r.cacheErr = err
	}
	r.mu.Unlock()
}

// Trace returns the (cached) synthesized trace for a benchmark at the
// scale's primary seed.
func (r *Runner) Trace(name string) *trace.Trace {
	return r.TraceSeeded(name, r.sc.Seed)
}

// TraceSeeded returns the (cached) trace for a benchmark and seed. Trace
// synthesis is single-flight: concurrent requests for the same trace share
// one build.
func (r *Runner) TraceSeeded(name string, seed int64) *trace.Trace {
	key := fmt.Sprintf("%s@%d", name, seed)
	t, _ := r.traces.Do(key, func() *trace.Trace {
		s, err := workloads.ByName(name)
		if err != nil {
			panic(err) // experiment tables only reference registered names
		}
		return s.Build(r.sc.TraceLen, seed)
	})
	return t
}

// cached is the engine core every simulation goes through: it derives the
// canonical run key, consults the in-memory single-flight cache and the
// optional disk cache, and otherwise executes sim on the worker pool,
// persisting the fresh result. label/name feed OnRun; kind, names, seeds and
// cfg define the canonical key.
func (r *Runner) cached(label, name, kind string, names []string, seeds []int64,
	cfg system.Config, sim func() (*system.Result, error)) *system.Result {
	key, err := runner.NewKey(kind, names, seeds, r.sc.TraceLen, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: key %s/%s: %v", label, name, err))
	}
	res, _ := r.results.Do(key.Hash(), func() *system.Result {
		fromDisk := new(system.Result)
		if ok, err := r.disk.Load(key, fromDisk); err != nil {
			r.noteCacheErr(err) // undecodable entry: recompute below
		} else if ok {
			r.noteDiskHit()
			return fromDisk
		}
		var out *system.Result
		var simErr error
		r.pool.Run(func() { out, simErr = sim() })
		if simErr != nil {
			panic(fmt.Sprintf("experiments: run %s/%s: %v", label, name, simErr))
		}
		r.ran(label, name)
		if err := r.disk.Store(key, out); err != nil {
			r.noteCacheErr(err)
		}
		return out
	})
	return res
}

// baseConfig is the scale-adjusted Table I configuration.
func (r *Runner) baseConfig() system.Config {
	cfg := system.DefaultConfig()
	cfg.Instructions = r.sc.Instructions
	cfg.Warmup = r.sc.Warmup
	return cfg
}

// Run simulates benchmark name under a modified configuration. key labels
// the modification in progress output; deduplication uses the canonical run
// key (the fully-resolved configuration plus workload, seed and trace
// length), so two experiments requesting identical machines share one
// simulation even under different labels.
func (r *Runner) Run(key, name string, mod func(*system.Config)) *system.Result {
	return r.runSeeded(key, name, r.sc.Seed, mod)
}

// runSeeded is Run against the trace synthesized with an explicit seed.
func (r *Runner) runSeeded(label, name string, seed int64, mod func(*system.Config)) *system.Result {
	cfg := r.baseConfig()
	if mod != nil {
		mod(&cfg)
	}
	return r.cached(label, name, runner.KindSingle, []string{name}, []int64{seed}, cfg,
		func() (*system.Result, error) {
			return system.Run(cfg, r.TraceSeeded(name, seed))
		})
}

// Baseline runs the paper's baseline (DRRIP + SHiP) for a benchmark.
func (r *Runner) Baseline(name string) *system.Result {
	return r.Run("baseline", name, nil)
}

// Enhanced runs the given cumulative enhancement level.
func (r *Runner) Enhanced(name string, e system.Enhancement) *system.Result {
	return r.Run("enh:"+e.String(), name, func(c *system.Config) { c.Apply(e) })
}

// SeededSpeedups measures the full-stack speedup of one benchmark across
// the primary seed and every extra seed, returning the individual values in
// seed order. It quantifies how sensitive the headline result is to the
// synthetic trace instance.
func (r *Runner) SeededSpeedups(name string) []float64 {
	return r.SeededSpeedupsAt(name, append([]int64{r.sc.Seed}, r.sc.ExtraSeeds...))
}

// SeededSpeedupsAt is SeededSpeedups over an explicit seed list. Seeds are
// evaluated concurrently (bounded by the runner's job count) and results
// returned in seed order.
func (r *Runner) SeededSpeedupsAt(name string, seeds []int64) []float64 {
	out := make([]float64, len(seeds))
	forEachIndex(len(seeds), func(i int) {
		seed := seeds[i]
		base := r.runSeeded(fmt.Sprintf("baseline@%d", seed), name, seed, nil)
		enh := r.runSeeded(fmt.Sprintf("tempo@%d", seed), name, seed,
			func(c *system.Config) { c.Apply(system.TEMPO) })
		out[i] = enh.SpeedupOver(base)
	})
	return out
}

// catalogEntry pairs an experiment identifier with its generator function.
type catalogEntry struct {
	id string
	fn func(*Runner) *Report
}

// catalog lists every experiment in paper order; IDs, All and ByID all
// derive from it, so an experiment registered here is automatically listed,
// runnable and covered by the documentation-coverage test.
var catalog = []catalogEntry{
	{"fig1", Fig1}, {"fig2", Fig2}, {"fig3", Fig3}, {"fig4", Fig4},
	{"fig5", Fig5}, {"fig6", Fig6}, {"fig7", Fig7}, {"fig8", Fig8},
	{"fig10", Fig10}, {"fig12", Fig12}, {"fig14", Fig14}, {"fig15", Fig15},
	{"fig16", Fig16}, {"fig17", Fig17}, {"fig18", Fig18}, {"fig19", Fig19},
	{"fig20", Fig20}, {"fig21", Fig21}, {"table1", TableI}, {"table2", TableII},
	{"multicore", MultiCore},
	{"ablation-decompose", AblationDecompose},
	{"ablation-walkers", AblationWalkers},
	{"ablation-replaydelay", AblationReplayDelay},
	{"ablation-scatter", AblationScatter},
	{"ablation-t-hawkeye", AblationTHawkeye},
	{"ablation-hugepages", AblationHugePages},
	{"comparison", Comparison},
	{"robustness", Robustness},
}

// All returns every experiment report at the given scale, in paper order.
func All(sc Scale) []*Report { return AllWith(NewRunner(sc)) }

// AllWith is All on a caller-provided runner, so long sweeps can install a
// progress hook (Runner.OnRun), share memoized results, or run in parallel
// (NewRunnerWith). Experiments execute concurrently — the runner's job count
// bounds how many simulations are in flight — and reports are assembled in
// paper order, so the output is identical to a sequential sweep.
func AllWith(r *Runner) []*Report {
	reports := make([]*Report, len(catalog))
	forEachIndex(len(catalog), func(i int) {
		reports[i] = catalog[i].fn(r)
	})
	return reports
}

// ByID returns a single experiment by its identifier ("fig1".."fig21",
// "table1", "table2", "multicore", "ablation-*", "comparison",
// "robustness").
func ByID(sc Scale, id string) (*Report, error) { return ByIDWith(NewRunner(sc), id) }

// ByIDWith is ByID on a caller-provided runner.
func ByIDWith(r *Runner, id string) (*Report, error) {
	want := strings.ToLower(id)
	for _, e := range catalog {
		if e.id == want {
			return e.fn(r), nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// IDs lists every experiment identifier in paper order.
func IDs() []string {
	out := make([]string, len(catalog))
	for i, e := range catalog {
		out[i] = e.id
	}
	return out
}
