package experiments

import (
	"strings"
	"testing"
)

// testScale keeps experiment tests fast while exercising every code path:
// one benchmark per STLB category.
func testScale() Scale {
	return Scale{
		TraceLen:     120_000,
		Instructions: 60_000,
		Warmup:       20_000,
		Workloads:    []string{"xalancbmk", "mcf", "pr"},
		Seed:         1,
	}
}

func TestIDsCoverEveryExperiment(t *testing.T) {
	ids := IDs()
	if len(ids) != 31 {
		t.Fatalf("IDs() = %d entries: %v", len(ids), ids)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID(testScale(), "fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunnerCaching(t *testing.T) {
	r := NewRunner(testScale())
	a := r.Baseline("mcf")
	b := r.Baseline("mcf")
	if a != b {
		t.Error("baseline result not memoized")
	}
	if r.Trace("mcf") != r.Trace("mcf") {
		t.Error("trace not memoized")
	}
}

func TestFig1Shape(t *testing.T) {
	rep := Fig1(NewRunner(testScale()))
	if rep.Summary["avgReplay"] <= 0 {
		t.Fatal("no replay stalls measured")
	}
	// Paper shape: replay loads dominate the ROB-head stall budget.
	if rep.Summary["totalReplay"] <= rep.Summary["totalTrans"] {
		t.Errorf("total replay stalls %.0f not > translation stalls %.0f",
			rep.Summary["totalReplay"], rep.Summary["totalTrans"])
	}
	if !strings.Contains(rep.String(), "fig1") {
		t.Error("report text missing id")
	}
}

func TestFig2IdealOrdering(t *testing.T) {
	rep := Fig2(NewRunner(testScale()))
	// Scale-robust shape checks: both idealizations help, the combined
	// idealization beats either alone (within noise), and there is real
	// headroom. (The full-scale run additionally shows LLC(R) ≫ LLC(T)
	// on the complete suite, as the paper reports; at this reduced scale
	// mcf's serial walk chain inflates the T mode.)
	if rep.Summary["llcR"] < 1.02 {
		t.Errorf("LLC(R) %.3f shows no replay headroom", rep.Summary["llcR"])
	}
	if rep.Summary["bothTR"] < rep.Summary["llcR"]*0.98 ||
		rep.Summary["bothTR"] < rep.Summary["llcT"]*0.98 {
		t.Errorf("both(TR) %.3f below single modes (R %.3f, T %.3f)",
			rep.Summary["bothTR"], rep.Summary["llcR"], rep.Summary["llcT"])
	}
	if rep.Summary["bothTR"] <= 1.0 {
		t.Errorf("ideal hierarchy speedup %.3f not > 1", rep.Summary["bothTR"])
	}
}

func TestFig3Fractions(t *testing.T) {
	rep := Fig3(NewRunner(testScale()))
	total := rep.Summary["transL1D"] + rep.Summary["transL2"] +
		rep.Summary["transLLC"] + rep.Summary["transDRAM"]
	if total < 0.99 || total > 1.01 {
		t.Errorf("translation service fractions sum to %.3f", total)
	}
	// Paper: most replays miss the LLC; most translations are on-chip.
	if rep.Summary["replayDRAM"] < 0.4 {
		t.Errorf("replay DRAM fraction %.2f, want majority", rep.Summary["replayDRAM"])
	}
	if rep.Summary["transDRAM"] > 0.5 {
		t.Errorf("translation DRAM fraction %.2f too high", rep.Summary["transDRAM"])
	}
}

func TestFig4PoliciesProduceData(t *testing.T) {
	rep := Fig4(NewRunner(testScale()))
	for _, p := range baselinePolicies {
		if _, ok := rep.Summary[p]; !ok {
			t.Errorf("missing policy %q", p)
		}
	}
	// pr at this scale must show translation pressure under every policy.
	if rep.Summary["lru"] <= 0 {
		t.Error("no translation misses at LLC under LRU")
	}
}

func TestFig6ReplacementDoesNotFixReplays(t *testing.T) {
	rep := Fig6(NewRunner(testScale()))
	// Shape: replay MPKI roughly equal across policies (within 25%).
	lru := rep.Summary["lru"]
	for _, p := range baselinePolicies {
		if v := rep.Summary[p]; v < lru*0.75 || v > lru*1.25 {
			t.Errorf("replay MPKI with %s = %.2f deviates from LRU %.2f", p, v, lru)
		}
	}
}

func TestFig5And7RecallShapes(t *testing.T) {
	r := NewRunner(testScale())
	f5 := Fig5(r)
	f7 := Fig7(r)
	// Translations show near-horizon recalls; replays mostly do not.
	if f5.Summary["llcWithin50"] <= 0 && f5.Summary["l2Within50"] <= 0 {
		t.Error("no translation recall mass measured")
	}
	if f7.Summary["llcBeyond50"] < 0.3 {
		t.Errorf("replay recall beyond-50 fraction %.2f, want large", f7.Summary["llcBeyond50"])
	}
}

func TestFig8PrefetchersDoNotFixReplays(t *testing.T) {
	rep := Fig8(NewRunner(testScale()))
	none := rep.Summary["none"]
	if none <= 0 {
		t.Fatal("no replay misses at LLC")
	}
	for _, pf := range []string{"ipcp", "spp", "bingo"} {
		if v := rep.Summary[pf]; v < none*0.7 {
			t.Errorf("spatial prefetcher %s cut replay MPKI to %.2f of %.2f — too effective", pf, v, none)
		}
	}
}

func TestFig10Degradation(t *testing.T) {
	rep := Fig10(NewRunner(testScale()))
	if rep.Summary["degradation"] >= 1.005 {
		t.Errorf("replay@RRPV0 unexpectedly outperformed proper T-policies: %.3f",
			rep.Summary["degradation"])
	}
}

func TestFig12SignatureLadder(t *testing.T) {
	rep := Fig12(NewRunner(testScale()))
	// T-SHiP must not be worse than baseline SHiP at keeping translations.
	if rep.Summary["tShip"] > rep.Summary["ship"]*1.05 {
		t.Errorf("T-SHiP MPKI %.2f worse than SHiP %.2f", rep.Summary["tShip"], rep.Summary["ship"])
	}
	if rep.Summary["tHawkeye"] > rep.Summary["hawkeye"]*1.05 {
		t.Errorf("T-Hawkeye MPKI %.2f worse than Hawkeye %.2f", rep.Summary["tHawkeye"], rep.Summary["hawkeye"])
	}
}

func TestFig14HeadlineSpeedup(t *testing.T) {
	rep := Fig14(NewRunner(testScale()))
	if rep.Summary["tempo"] <= 1.0 {
		t.Errorf("full enhancements geomean %.4f not > 1", rep.Summary["tempo"])
	}
	if rep.Summary["max"] < rep.Summary["tempo"] {
		t.Error("max < geomean")
	}
}

func TestFig16StallReduction(t *testing.T) {
	rep := Fig16(NewRunner(testScale()))
	if rep.Summary["replayReduction"] <= 0 {
		t.Errorf("replay stall reduction %.3f not positive", rep.Summary["replayReduction"])
	}
}

func TestFig17SMT(t *testing.T) {
	sc := testScale()
	sc.Workloads = []string{"pr", "xalancbmk"}
	rep := Fig17(NewRunner(sc))
	if rep.Summary["mean"] <= 0 {
		t.Fatal("no SMT speedup measured")
	}
}

func TestFig18STLBRecall(t *testing.T) {
	rep := Fig18(NewRunner(testScale()))
	if rep.Summary["beyond50"] <= 0 {
		t.Error("no dead-STLB-entry mass measured")
	}
}

func TestSensitivitySweeps(t *testing.T) {
	sc := testScale()
	sc.Workloads = []string{"pr"}
	r := NewRunner(sc)
	for _, rep := range []*Report{Fig19(r), Fig20(r), Fig21(r)} {
		if len(rep.Summary) == 0 {
			t.Errorf("%s: empty summary", rep.ID)
		}
		for k, v := range rep.Summary {
			if v <= 0 {
				t.Errorf("%s: %s speedup %.3f", rep.ID, k, v)
			}
		}
	}
}

func TestTables(t *testing.T) {
	r := NewRunner(testScale())
	t1 := TableI(r)
	if !strings.Contains(t1.Table.String(), "352-entry ROB") {
		t.Error("Table I missing ROB size")
	}
	t2 := TableII(r)
	if t2.Summary["stlb:pr"] <= t2.Summary["stlb:xalancbmk"] {
		t.Errorf("Table II: pr STLB MPKI %.1f not above xalancbmk %.1f",
			t2.Summary["stlb:pr"], t2.Summary["stlb:xalancbmk"])
	}
}

func TestAblations(t *testing.T) {
	sc := testScale()
	sc.Workloads = []string{"pr"}
	r := NewRunner(sc)

	dec := AblationDecompose(r)
	if dec.Summary["full"] <= 0 {
		t.Error("decomposition missing full-stack result")
	}

	wk := AblationWalkers(r)
	// Fewer walkers → lower baseline IPC on a TLB-stressing workload.
	if wk.Summary["base:1"] > wk.Summary["base:4"] {
		t.Errorf("1-walker IPC %.4f > 4-walker IPC %.4f", wk.Summary["base:1"], wk.Summary["base:4"])
	}

	rd := AblationReplayDelay(r)
	// A wider replay window gives ATP at least as much to hide.
	if rd.Summary["atpGain:60"] < rd.Summary["atpGain:0"]-0.02 {
		t.Errorf("ATP gain at d=60 (%.3f) below d=0 (%.3f)",
			rd.Summary["atpGain:60"], rd.Summary["atpGain:0"])
	}

	scb := AblationScatter(r)
	// Contiguous frames enjoy better DRAM row locality.
	if scb.Summary["rowHitContig"] < scb.Summary["rowHitScatter"] {
		t.Errorf("contiguous row-hit rate %.3f < scattered %.3f",
			scb.Summary["rowHitContig"], scb.Summary["rowHitScatter"])
	}

	hp := AblationHugePages(r)
	if hp.Summary["mpki2M"] > hp.Summary["mpki4K"]/10 {
		t.Errorf("huge-page STLB MPKI %.2f not ≪ 4K %.2f", hp.Summary["mpki2M"], hp.Summary["mpki4K"])
	}

	th := AblationTHawkeye(r)
	if th.Summary["full"] <= 0 {
		t.Error("t-hawkeye ablation empty")
	}
}

func TestRobustness(t *testing.T) {
	sc := testScale()
	sc.Workloads = []string{"pr", "xalancbmk"}
	sc.ExtraSeeds = []int64{5}
	rep := Robustness(NewRunner(sc))
	if rep.Summary["mean"] <= 0 || rep.Summary["worstMin"] <= 0 {
		t.Fatalf("summary = %v", rep.Summary)
	}
	// The enhancements must not flip to a large loss on any seed.
	if rep.Summary["worstMin"] < 0.97 {
		t.Errorf("worst per-seed speedup %.3f — result is seed noise", rep.Summary["worstMin"])
	}
}

func TestComparison(t *testing.T) {
	rep := Comparison(NewRunner(testScale()))
	if rep.Summary["ours"] <= 1.0 {
		t.Errorf("our enhancements geomean %.4f not > 1", rep.Summary["ours"])
	}
	// The paper's central comparison claim: the enhancements outperform the
	// capacity-management prior works.
	if rep.Summary["oursOverCbpred"] <= 1.0 {
		t.Errorf("ours/cbpred = %.4f, want > 1", rep.Summary["oursOverCbpred"])
	}
	if rep.Summary["ours"] <= rep.Summary["csalt"] {
		t.Errorf("ours %.4f not above csalt %.4f", rep.Summary["ours"], rep.Summary["csalt"])
	}
}

func TestMultiCoreQuick(t *testing.T) {
	sc := testScale()
	sc.Instructions = 30_000
	sc.Warmup = 10_000
	rep := MultiCore(NewRunner(sc))
	if rep.Summary["mean"] <= 0 {
		t.Error("multicore speedup missing")
	}
}

func TestSeededSpeedups(t *testing.T) {
	sc := testScale()
	sc.Workloads = []string{"pr"}
	sc.ExtraSeeds = []int64{2, 3}
	r := NewRunner(sc)
	sp := r.SeededSpeedups("pr")
	if len(sp) != 3 {
		t.Fatalf("speedups = %v", sp)
	}
	for i, s := range sp {
		if s <= 0.9 {
			t.Errorf("seed %d speedup %.3f implausible", i, s)
		}
	}
	// Distinct seeds produce distinct traces (and almost surely distinct
	// speedups).
	if sp[0] == sp[1] && sp[1] == sp[2] {
		t.Error("all seeds produced identical speedups — seeding inert?")
	}
}
