package experiments

import (
	"atcsim/internal/cpu"
	"atcsim/internal/mem"
	"atcsim/internal/stats"
	"atcsim/internal/system"
)

// Fig1 reproduces the ROB head-stall characterization: average and maximum
// stall cycles per STLB-missing translation, per replay load and per
// non-replay load, on the baseline machine.
//
// Summary keys: avgTrans, avgReplay, avgNonReplay, maxReplay.
func Fig1(r *Runner) *Report {
	t := stats.NewTable("benchmark", "avg T", "max T", "avg R", "max R", "avg NR", "max NR")
	var aT, aR, aN []float64
	var maxR uint64
	for _, w := range r.Scale().workloads() {
		res := r.Baseline(w)
		c := res.Cores[0].CPU
		t.AddRowf(w,
			c.TransStall.Mean(), c.TransStall.Max(),
			c.ReplayStall.Mean(), c.ReplayStall.Max(),
			c.NonReplayStall.Mean(), c.NonReplayStall.Max())
		aT = append(aT, c.TransStall.Mean())
		aR = append(aR, c.ReplayStall.Mean())
		aN = append(aN, c.NonReplayStall.Mean())
		if c.ReplayStall.Max() > maxR {
			maxR = c.ReplayStall.Max()
		}
	}
	var totT, totR uint64
	for _, w := range r.Scale().workloads() {
		tt, tr := stallTotals(r.Baseline(w))
		totT += tt
		totR += tr
	}
	t.AddRowf("mean", mean(aT), "", mean(aR), "", mean(aN), "")
	return &Report{
		ID:    "fig1",
		Title: "ROB head stalls per STLB-missing translation (T), replay (R) and non-replay (NR) load [cycles]",
		Table: t,
		Notes: []string{
			"paper: avg T=33 (max 54), avg R=191 (max 226), avg NR=47",
			"shape target: R > T for totals; NR between them",
		},
		Summary: map[string]float64{
			"avgTrans":     mean(aT),
			"avgReplay":    mean(aR),
			"avgNonReplay": mean(aN),
			"maxReplay":    float64(maxR),
			"totalTrans":   float64(totT),
			"totalReplay":  float64(totR),
		},
	}
}

// Fig2 is the limit study: normalized performance with ideal L2C/LLC for
// leaf translations (T), replay loads (R) and both (TR).
//
// Summary keys: llcT, llcR, llcTR, bothTR (geomean speedups).
func Fig2(r *Runner) *Report {
	type mode struct {
		key string
		mod func(*system.Config)
	}
	modes := []mode{
		{"LLC(T)", func(c *system.Config) { c.LLC.IdealTranslations = true }},
		{"LLC(R)", func(c *system.Config) { c.LLC.IdealReplays = true }},
		{"LLC(TR)", func(c *system.Config) { c.LLC.IdealTranslations = true; c.LLC.IdealReplays = true }},
		{"L2C(T)", func(c *system.Config) { c.L2.IdealTranslations = true }},
		{"L2C(R)", func(c *system.Config) { c.L2.IdealReplays = true }},
		{"L2C(TR)", func(c *system.Config) { c.L2.IdealTranslations = true; c.L2.IdealReplays = true }},
		{"L2C+LLC(TR)", func(c *system.Config) {
			c.L2.IdealTranslations = true
			c.L2.IdealReplays = true
			c.LLC.IdealTranslations = true
			c.LLC.IdealReplays = true
		}},
	}
	header := []string{"benchmark"}
	for _, m := range modes {
		header = append(header, m.key)
	}
	t := stats.NewTable(header...)
	speedups := make(map[string][]float64)
	for _, w := range r.Scale().workloads() {
		base := r.Baseline(w)
		row := []interface{}{w}
		for _, m := range modes {
			res := r.Run("ideal:"+m.key, w, m.mod)
			sp := res.SpeedupOver(base)
			row = append(row, sp)
			speedups[m.key] = append(speedups[m.key], sp)
		}
		t.AddRowf(row...)
	}
	row := []interface{}{"geomean"}
	sum := map[string]float64{}
	for _, m := range modes {
		g := stats.GeoMean(speedups[m.key])
		row = append(row, g)
		sum[m.key] = g
	}
	t.AddRowf(row...)
	return &Report{
		ID:    "fig2",
		Title: "Normalized performance with ideal L2C/LLC for translations (T), replays (R), both (TR)",
		Table: t,
		Notes: []string{
			"paper: ideal LLC(TR) +30.7%, ideal L2C+LLC(TR) +37.6%, L2C(T) +4.7%, L2C(R) +30.2%",
			"shape target: R-idealization ≫ T-idealization; combined largest",
		},
		Summary: map[string]float64{
			"llcT":   sum["LLC(T)"],
			"llcR":   sum["LLC(R)"],
			"llcTR":  sum["LLC(TR)"],
			"bothTR": sum["L2C+LLC(TR)"],
		},
	}
}

// Fig3 reports which hierarchy level services leaf translations and replay
// loads on the baseline.
//
// Summary keys: transL1D, transL2, transLLC, transDRAM, replayDRAM
// (fractions).
func Fig3(r *Runner) *Report {
	t := stats.NewTable("benchmark",
		"T@L1D", "T@L2C", "T@LLC", "T@DRAM",
		"R@L1D", "R@L2C", "R@LLC", "R@DRAM")
	var agg [2][4]float64
	n := 0
	for _, w := range r.Scale().workloads() {
		res := r.Baseline(w)
		leaf := res.Cores[0].Walker.LeafService
		rep := res.Cores[0].ReplayService
		row := []interface{}{w}
		for l := mem.LvlL1D; l <= mem.LvlDRAM; l++ {
			row = append(row, leaf.Fraction(l))
			agg[0][l] += leaf.Fraction(l)
		}
		for l := mem.LvlL1D; l <= mem.LvlDRAM; l++ {
			row = append(row, rep.Fraction(l))
			agg[1][l] += rep.Fraction(l)
		}
		t.AddRowf(row...)
		n++
	}
	row := []interface{}{"mean"}
	for s := 0; s < 2; s++ {
		for l := 0; l < 4; l++ {
			row = append(row, agg[s][l]/float64(n))
		}
	}
	t.AddRowf(row...)
	return &Report{
		ID:    "fig3",
		Title: "Service level of leaf translations (T) and replay loads (R)",
		Table: t,
		Notes: []string{
			"paper: T serviced 23% L1D / 55.6% L2C / 15.1% LLC / 6.3% DRAM; >80% of replays miss the LLC",
		},
		Summary: map[string]float64{
			"transL1D":   agg[0][0] / float64(n),
			"transL2":    agg[0][1] / float64(n),
			"transLLC":   agg[0][2] / float64(n),
			"transDRAM":  agg[0][3] / float64(n),
			"replayDRAM": agg[1][3] / float64(n),
		},
	}
}

// policySweep runs the LLC replacement-policy comparison shared by Figs. 4
// and 6, returning MPKI tables for one access class.
func (r *Runner) policySweep(class mem.Class, policies []string) (*stats.Table, map[string]float64) {
	header := []string{"benchmark"}
	header = append(header, policies...)
	t := stats.NewTable(header...)
	agg := map[string][]float64{}
	for _, w := range r.Scale().workloads() {
		row := []interface{}{w}
		for _, p := range policies {
			p := p
			res := r.Run("llc:"+p, w, func(c *system.Config) { c.LLC.Policy = p })
			m := res.LLCMPKI(class)
			row = append(row, m)
			agg[p] = append(agg[p], m)
		}
		t.AddRowf(row...)
	}
	row := []interface{}{"mean"}
	sum := map[string]float64{}
	for _, p := range policies {
		m := mean(agg[p])
		row = append(row, m)
		sum[p] = m
	}
	t.AddRowf(row...)
	return t, sum
}

var baselinePolicies = []string{"lru", "srrip", "drrip", "ship", "hawkeye"}

// Fig4 compares leaf-translation MPKI at the LLC across replacement
// policies.
//
// Summary keys: one per policy (mean leaf-translation LLC MPKI).
func Fig4(r *Runner) *Report {
	t, sum := r.policySweep(mem.ClassTransLeaf, baselinePolicies)
	return &Report{
		ID:    "fig4",
		Title: "Leaf-level translation MPKI at the LLC by replacement policy",
		Table: t,
		Notes: []string{
			"paper: vs LRU — SRRIP −14.7%, DRRIP −27.5%, SHiP −33.3%, Hawkeye +44.1% (IP-signature mistraining)",
		},
		Summary: sum,
	}
}

// Fig6 compares replay-load MPKI at the LLC across the same policies.
func Fig6(r *Runner) *Report {
	t, sum := r.policySweep(mem.ClassReplay, baselinePolicies)
	return &Report{
		ID:    "fig6",
		Title: "Replay-load MPKI at the LLC by replacement policy",
		Table: t,
		Notes: []string{
			"paper: replacement policy has essentially no effect — replay blocks are dead",
		},
		Summary: sum,
	}
}

// recallRow renders a recall-distance CDF over all evicted blocks (blocks
// never recalled count as infinite distance, as in the paper's figures).
func recallRow(t *stats.Table, label string, rc system.Recall) {
	if !rc.Valid() {
		t.AddRow(label, "-", "-", "-", "-", "0")
		return
	}
	t.AddRowf(label,
		rc.Within(10), rc.Within(50), rc.Within(100), rc.Within(500),
		rc.Evictions)
}

// Fig5 reports the recall-distance distribution of leaf translations at the
// LLC and L2C.
//
// Summary keys: llcWithin50, l2Within50.
func Fig5(r *Runner) *Report {
	t := stats.NewTable("series", "<=10", "<=50", "<=100", "<=500", "samples")
	var llc50, l250 []float64
	for _, w := range r.Scale().workloads() {
		res := r.Run("recall", w, func(c *system.Config) { c.TrackRecall = true })
		recallRow(t, w+"@LLC", res.LLCRecallTrans)
		recallRow(t, w+"@L2C", res.L2RecallTrans)
		if res.LLCRecallTrans.Valid() {
			llc50 = append(llc50, res.LLCRecallTrans.Within(50))
		}
		if res.L2RecallTrans.Valid() {
			l250 = append(l250, res.L2RecallTrans.Within(50))
		}
	}
	return &Report{
		ID:    "fig5",
		Title: "Recall distance of leaf translations at the LLC (A) and L2C (B)",
		Table: t,
		Notes: []string{
			"paper: ~30% of translation blocks recall within 50 unique set accesses",
		},
		Summary: map[string]float64{
			"llcWithin50": mean(llc50),
			"l2Within50":  mean(l250),
		},
	}
}

// Fig7 reports the recall-distance distribution of replay loads.
//
// Summary keys: llcBeyond50 (fraction with distance > 50).
func Fig7(r *Runner) *Report {
	t := stats.NewTable("series", "<=10", "<=50", "<=100", "<=500", "samples")
	var beyond []float64
	for _, w := range r.Scale().workloads() {
		res := r.Run("recall", w, func(c *system.Config) { c.TrackRecall = true })
		recallRow(t, w+"@LLC", res.LLCRecallReplay)
		recallRow(t, w+"@L2C", res.L2RecallReplay)
		if res.LLCRecallReplay.Valid() {
			beyond = append(beyond, 1-res.LLCRecallReplay.Within(50))
		}
	}
	return &Report{
		ID:    "fig7",
		Title: "Recall distance of replay loads at the LLC (A) and L2C (B)",
		Table: t,
		Notes: []string{
			"paper: >60% of replay blocks have recall distance beyond 50 — unkeepable",
		},
		Summary: map[string]float64{"llcBeyond50": mean(beyond)},
	}
}

// Fig8 measures LLC replay MPKI with and without data prefetchers.
//
// Summary keys: one per prefetcher setup (mean replay LLC MPKI).
func Fig8(r *Runner) *Report {
	type setup struct{ name, l1d, l2 string }
	setups := []setup{
		{"none", "none", "none"},
		{"ipcp", "ipcp", "none"},
		{"spp", "none", "spp"},
		{"bingo", "none", "bingo"},
		{"isb", "none", "isb"},
	}
	header := []string{"benchmark"}
	for _, s := range setups {
		header = append(header, s.name)
	}
	t := stats.NewTable(header...)
	agg := map[string][]float64{}
	for _, w := range r.Scale().workloads() {
		row := []interface{}{w}
		for _, s := range setups {
			s := s
			res := r.Run("pf:"+s.name, w, func(c *system.Config) {
				c.L1DPrefetcher = s.l1d
				c.L2Prefetcher = s.l2
			})
			m := res.LLCMPKI(mem.ClassReplay)
			row = append(row, m)
			agg[s.name] = append(agg[s.name], m)
		}
		t.AddRowf(row...)
	}
	row := []interface{}{"mean"}
	sum := map[string]float64{}
	for _, s := range setups {
		m := mean(agg[s.name])
		row = append(row, m)
		sum[s.name] = m
	}
	t.AddRowf(row...)
	return &Report{
		ID:    "fig8",
		Title: "LLC replay MPKI with and without data prefetchers",
		Table: t,
		Notes: []string{
			"paper: spatial prefetchers leave replay MPKI essentially unchanged (<1% improvement); ISB helps some benchmarks",
		},
		Summary: sum,
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// stallTotals extracts translation/replay stall-cycle totals.
func stallTotals(res *system.Result) (trans, replay uint64) {
	return res.StallCycles(cpu.StallTranslation), res.StallCycles(cpu.StallReplay)
}
