package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// transientErr is a test double for an injected transient failure.
type transientErr struct{ msg string }

func (e *transientErr) Error() string   { return e.msg }
func (e *transientErr) Transient() bool { return true }

// permanentErr is a test double for an explicitly permanent failure.
type permanentErr struct{ msg string }

func (e *permanentErr) Error() string   { return e.msg }
func (e *permanentErr) Transient() bool { return false }

func fastPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

func TestExecuteSucceedsFirstAttempt(t *testing.T) {
	rr := Execute(context.Background(), fastPolicy(), func(ctx context.Context) error { return nil })
	if rr.Err != nil || rr.Panic != nil || rr.Attempts != 1 {
		t.Errorf("RunResult = %+v", rr)
	}
	if rr.Elapsed < 0 {
		t.Errorf("Elapsed = %v", rr.Elapsed)
	}
}

func TestExecuteRetriesTransientToSuccess(t *testing.T) {
	calls := 0
	rr := Execute(context.Background(), fastPolicy(), func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return &transientErr{"flaky"}
		}
		return nil
	})
	if rr.Err != nil || rr.Attempts != 3 || calls != 3 {
		t.Errorf("RunResult = %+v, calls = %d", rr, calls)
	}
}

func TestExecuteExhaustsRetryBudget(t *testing.T) {
	calls := 0
	rr := Execute(context.Background(), fastPolicy(), func(ctx context.Context) error {
		calls++
		return &transientErr{"never heals"}
	})
	if rr.Err == nil || rr.Attempts != 3 || calls != 3 {
		t.Errorf("RunResult = %+v, calls = %d", rr, calls)
	}
}

func TestExecutePermanentErrorNotRetried(t *testing.T) {
	calls := 0
	rr := Execute(context.Background(), fastPolicy(), func(ctx context.Context) error {
		calls++
		return errors.New("determinism violation")
	})
	if rr.Err == nil || rr.Attempts != 1 || calls != 1 {
		t.Errorf("RunResult = %+v, calls = %d", rr, calls)
	}
}

func TestExecuteCapturesPanic(t *testing.T) {
	calls := 0
	rr := Execute(context.Background(), fastPolicy(), func(ctx context.Context) error {
		calls++
		panic("boom")
	})
	if rr.Panic != "boom" || rr.Attempts != 1 || calls != 1 {
		t.Errorf("RunResult = %+v, calls = %d", rr, calls)
	}
	if rr.Err == nil || !strings.Contains(rr.Err.Error(), "panic: boom") {
		t.Errorf("Err = %v", rr.Err)
	}
	var pe *PanicError
	if !errors.As(rr.Err, &pe) || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = %+v", pe)
	}
}

func TestExecuteCanceledContextRefusesRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	rr := Execute(ctx, fastPolicy(), func(ctx context.Context) error {
		calls++
		return nil
	})
	if calls != 0 {
		t.Errorf("canceled context still ran %d attempts", calls)
	}
	if !errors.Is(rr.Err, context.Canceled) {
		t.Errorf("Err = %v", rr.Err)
	}
}

func TestExecuteCancelStopsRetrying(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	rr := Execute(ctx, RetryPolicy{MaxAttempts: 50, BaseDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		func(ctx context.Context) error {
			calls++
			if calls == 2 {
				cancel()
			}
			return &transientErr{"flaky"}
		})
	if calls > 3 {
		t.Errorf("kept retrying after cancel: %d calls", calls)
	}
	if rr.Err == nil {
		t.Error("no error after cancel")
	}
}

func TestBoundedCompletesInTime(t *testing.T) {
	v, err := Bounded(context.Background(), time.Second, func() (int, error) { return 41, nil })
	if v != 41 || err != nil {
		t.Errorf("Bounded = (%d, %v)", v, err)
	}
	// No deadline at all: inline fast path.
	v, err = Bounded(context.Background(), 0, func() (int, error) { return 42, nil })
	if v != 42 || err != nil {
		t.Errorf("unbounded = (%d, %v)", v, err)
	}
}

func TestBoundedDeadlineAbandonsRun(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	start := time.Now()
	_, err := Bounded(context.Background(), 20*time.Millisecond, func() (int, error) {
		<-block
		return 1, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("deadline took %v to fire", d)
	}
	if IsRetryable(err) {
		t.Error("deadline expiry classified retryable")
	}
}

func TestBoundedPanicBecomesError(t *testing.T) {
	_, err := Bounded(context.Background(), time.Second, func() (int, error) { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "kaboom" {
		t.Errorf("err = %v", err)
	}
	// Same on the inline (no-deadline) path.
	_, err = Bounded(context.Background(), 0, func() (int, error) { panic("kaboom") })
	if !errors.As(err, &pe) || pe.Value != "kaboom" {
		t.Errorf("inline err = %v", err)
	}
}

func TestIsRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{&transientErr{"x"}, true},
		{fmt.Errorf("wrap: %w", &transientErr{"x"}), true},
		{&fs.PathError{Op: "open", Path: "/x", Err: errors.New("io")}, true},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("run refused: %w", context.Canceled), false},
		{&PanicError{Value: "boom"}, false},

		// Wrapping must never change the verdict of the underlying cause.
		// A *fs.PathError buried under the disk cache's error prefix is the
		// exact shape Disk.Load/Store produce on I/O failure.
		{fmt.Errorf("runner: cache read %q: %w", "/c/abc.json",
			&fs.PathError{Op: "read", Path: "/c/abc.json", Err: errors.New("input/output error")}), true},
		{fmt.Errorf("outer: %w", fmt.Errorf("inner: %w",
			&fs.PathError{Op: "open", Path: "/x", Err: errors.New("io")})), true},
		{fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", &transientErr{"deep"})), true},
		{fmt.Errorf("wrap: %w", io.ErrUnexpectedEOF), true},

		// errors.Join trees: a transient branch anywhere makes the whole
		// failure worth retrying; all-permanent branches do not.
		{errors.Join(errors.New("plain"), &transientErr{"joined"}), true},
		{errors.Join(errors.New("plain"), fmt.Errorf("wrap: %w", &transientErr{"deep joined"})), true},
		{errors.Join(errors.New("plain"), errors.New("also plain")), false},

		// An explicit permanent classification is deliberate: it beats the
		// structural fs.PathError heuristic even when both are in the chain.
		{&permanentErr{"gave up"}, false},
		{fmt.Errorf("wrap: %w", &permanentErr{"gave up"}), false},
		{errors.Join(&permanentErr{"gave up"},
			&fs.PathError{Op: "open", Path: "/x", Err: errors.New("io")}), false},
		// …but an explicit transient verdict elsewhere still wins.
		{errors.Join(&permanentErr{"gave up"}, &transientErr{"retry me"}), true},

		// Cancellation/expiry stay permanent no matter how deeply wrapped or
		// what they are joined with.
		{fmt.Errorf("a: %w", fmt.Errorf("b: %w", context.DeadlineExceeded)), false},
		{errors.Join(&transientErr{"x"}, context.Canceled), false},
		// A panic wrapped in a transient join is still a crash, not a retry.
		{errors.Join(&transientErr{"x"}, &PanicError{Value: "boom"}), false},
	}
	for i, c := range cases {
		if got := IsRetryable(c.err); got != c.want {
			t.Errorf("case %d (%v): IsRetryable = %v, want %v", i, c.err, got, c.want)
		}
	}
}

func TestBackoffCappedAndJittered(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}.withDefaults()
	for retry := 1; retry <= 10; retry++ {
		d := p.backoff(retry)
		if d > p.MaxDelay {
			t.Errorf("retry %d: backoff %v exceeds cap %v", retry, d, p.MaxDelay)
		}
		if d < p.BaseDelay/2 {
			t.Errorf("retry %d: backoff %v below base/2", retry, d)
		}
	}
}

func TestBackoffDeterministicUnderSeededJitter(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		p := RetryPolicy{
			BaseDelay: 5 * time.Millisecond,
			MaxDelay:  250 * time.Millisecond,
			Jitter:    rng.Float64,
		}.withDefaults()
		out := make([]time.Duration, 0, 12)
		for retry := 1; retry <= 12; retry++ {
			out = append(out, p.backoff(retry))
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retry %d: same seed gave %v then %v", i+1, a[i], b[i])
		}
	}
	// Different seeds must actually exercise the jitter seam: at least one
	// step should differ (12 identical samples would mean Jitter is ignored).
	c := schedule(7)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules: Jitter not used")
	}
}

func TestBackoffHighRetryCountOverflowSafe(t *testing.T) {
	// A service-side retry budget can push retry counts far past the point
	// where naive 1<<retry arithmetic wraps. With no jitter floor below 0.5
	// the result must stay in (0, MaxDelay] — never negative, never zero —
	// even with the cap near the top of the int64 range.
	one := func() float64 { return 0.999999 }
	cases := []RetryPolicy{
		{BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Jitter: one},
		{BaseDelay: time.Millisecond, MaxDelay: math.MaxInt64 / 2, Jitter: one},
		{BaseDelay: time.Hour, MaxDelay: math.MaxInt64, Jitter: one},
	}
	for ci, p := range cases {
		p = p.withDefaults()
		for _, retry := range []int{1, 2, 16, 63, 64, 65, 100, 1000, 1 << 20} {
			d := p.backoff(retry)
			if d <= 0 {
				t.Errorf("case %d retry %d: backoff %v not positive (overflow?)", ci, retry, d)
			}
			if d > p.MaxDelay {
				t.Errorf("case %d retry %d: backoff %v exceeds cap %v", ci, retry, d, p.MaxDelay)
			}
		}
		// The schedule must be monotone non-decreasing up to the cap under
		// constant jitter — a wrapped exponent would break monotonicity.
		prev := time.Duration(0)
		for retry := 1; retry <= 200; retry++ {
			d := p.backoff(retry)
			if d < prev {
				t.Errorf("case %d: backoff decreased from %v to %v at retry %d", ci, prev, d, retry)
				break
			}
			prev = d
		}
	}
}
