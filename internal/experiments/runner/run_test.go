package runner

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"testing"
	"time"
)

// transientErr is a test double for an injected transient failure.
type transientErr struct{ msg string }

func (e *transientErr) Error() string   { return e.msg }
func (e *transientErr) Transient() bool { return true }

func fastPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

func TestExecuteSucceedsFirstAttempt(t *testing.T) {
	rr := Execute(context.Background(), fastPolicy(), func(ctx context.Context) error { return nil })
	if rr.Err != nil || rr.Panic != nil || rr.Attempts != 1 {
		t.Errorf("RunResult = %+v", rr)
	}
	if rr.Elapsed < 0 {
		t.Errorf("Elapsed = %v", rr.Elapsed)
	}
}

func TestExecuteRetriesTransientToSuccess(t *testing.T) {
	calls := 0
	rr := Execute(context.Background(), fastPolicy(), func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return &transientErr{"flaky"}
		}
		return nil
	})
	if rr.Err != nil || rr.Attempts != 3 || calls != 3 {
		t.Errorf("RunResult = %+v, calls = %d", rr, calls)
	}
}

func TestExecuteExhaustsRetryBudget(t *testing.T) {
	calls := 0
	rr := Execute(context.Background(), fastPolicy(), func(ctx context.Context) error {
		calls++
		return &transientErr{"never heals"}
	})
	if rr.Err == nil || rr.Attempts != 3 || calls != 3 {
		t.Errorf("RunResult = %+v, calls = %d", rr, calls)
	}
}

func TestExecutePermanentErrorNotRetried(t *testing.T) {
	calls := 0
	rr := Execute(context.Background(), fastPolicy(), func(ctx context.Context) error {
		calls++
		return errors.New("determinism violation")
	})
	if rr.Err == nil || rr.Attempts != 1 || calls != 1 {
		t.Errorf("RunResult = %+v, calls = %d", rr, calls)
	}
}

func TestExecuteCapturesPanic(t *testing.T) {
	calls := 0
	rr := Execute(context.Background(), fastPolicy(), func(ctx context.Context) error {
		calls++
		panic("boom")
	})
	if rr.Panic != "boom" || rr.Attempts != 1 || calls != 1 {
		t.Errorf("RunResult = %+v, calls = %d", rr, calls)
	}
	if rr.Err == nil || !strings.Contains(rr.Err.Error(), "panic: boom") {
		t.Errorf("Err = %v", rr.Err)
	}
	var pe *PanicError
	if !errors.As(rr.Err, &pe) || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = %+v", pe)
	}
}

func TestExecuteCanceledContextRefusesRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	rr := Execute(ctx, fastPolicy(), func(ctx context.Context) error {
		calls++
		return nil
	})
	if calls != 0 {
		t.Errorf("canceled context still ran %d attempts", calls)
	}
	if !errors.Is(rr.Err, context.Canceled) {
		t.Errorf("Err = %v", rr.Err)
	}
}

func TestExecuteCancelStopsRetrying(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	rr := Execute(ctx, RetryPolicy{MaxAttempts: 50, BaseDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		func(ctx context.Context) error {
			calls++
			if calls == 2 {
				cancel()
			}
			return &transientErr{"flaky"}
		})
	if calls > 3 {
		t.Errorf("kept retrying after cancel: %d calls", calls)
	}
	if rr.Err == nil {
		t.Error("no error after cancel")
	}
}

func TestBoundedCompletesInTime(t *testing.T) {
	v, err := Bounded(context.Background(), time.Second, func() (int, error) { return 41, nil })
	if v != 41 || err != nil {
		t.Errorf("Bounded = (%d, %v)", v, err)
	}
	// No deadline at all: inline fast path.
	v, err = Bounded(context.Background(), 0, func() (int, error) { return 42, nil })
	if v != 42 || err != nil {
		t.Errorf("unbounded = (%d, %v)", v, err)
	}
}

func TestBoundedDeadlineAbandonsRun(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	start := time.Now()
	_, err := Bounded(context.Background(), 20*time.Millisecond, func() (int, error) {
		<-block
		return 1, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("deadline took %v to fire", d)
	}
	if IsRetryable(err) {
		t.Error("deadline expiry classified retryable")
	}
}

func TestBoundedPanicBecomesError(t *testing.T) {
	_, err := Bounded(context.Background(), time.Second, func() (int, error) { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "kaboom" {
		t.Errorf("err = %v", err)
	}
	// Same on the inline (no-deadline) path.
	_, err = Bounded(context.Background(), 0, func() (int, error) { panic("kaboom") })
	if !errors.As(err, &pe) || pe.Value != "kaboom" {
		t.Errorf("inline err = %v", err)
	}
}

func TestIsRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{&transientErr{"x"}, true},
		{fmt.Errorf("wrap: %w", &transientErr{"x"}), true},
		{&fs.PathError{Op: "open", Path: "/x", Err: errors.New("io")}, true},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("run refused: %w", context.Canceled), false},
		{&PanicError{Value: "boom"}, false},
	}
	for i, c := range cases {
		if got := IsRetryable(c.err); got != c.want {
			t.Errorf("case %d (%v): IsRetryable = %v, want %v", i, c.err, got, c.want)
		}
	}
}

func TestBackoffCappedAndJittered(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}.withDefaults()
	for retry := 1; retry <= 10; retry++ {
		d := p.backoff(retry)
		if d > p.MaxDelay {
			t.Errorf("retry %d: backoff %v exceeds cap %v", retry, d, p.MaxDelay)
		}
		if d < p.BaseDelay/2 {
			t.Errorf("retry %d: backoff %v below base/2", retry, d)
		}
	}
}
