package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"atcsim/internal/faultinject"
)

// FormatVersion identifies the on-disk cache schema. Entries written with a
// different version are ignored (treated as misses), so bumping this after
// an incompatible change to the result or key layout invalidates stale
// caches instead of mis-deserializing them. Version 2 added the result
// checksum. Version 3 invalidates multi-core results computed by the
// pre-parallel serial scheduler: eligible multi-core machines now prefault
// their trace footprints and resolve shared accesses at cycle-window
// barriers, which changes their (still deterministic) numbers.
const FormatVersion = 3

// Disk is an on-disk result store: one JSON file per run key, named by the
// key's hash. Writes are crash-safe: the entry is written to a temp file in
// the cache directory, fsynced, and only then atomically renamed into
// place (with a best-effort directory fsync to persist the rename), so a
// process killed at any instant — mid-write, mid-drain, even SIGKILL —
// never leaves a torn entry under a final name. A restart sees either the
// complete entry or a plain miss; stale temp files from killed writers are
// swept when the directory is reopened. Every entry carries a SHA-256
// checksum of its result payload. Corruption — an unparseable file or a
// checksum mismatch — is detected on load, the entry is quarantined to a
// ".bad" sibling file for post-mortem inspection, and the result is
// recomputed; corruption is never trusted and never fatal.
//
// A cache directory belongs to one live process at a time (sequential
// reuse — resume, warm restart — is the supported sharing model); the
// stale-temp sweep at open assumes no concurrent writer.
//
// A nil *Disk is valid and behaves as an always-miss, discard-writes store.
type Disk struct {
	dir         string
	faults      *faultinject.Plan
	quarantined atomic.Int64
	// onQuarantine, when non-nil, observes each quarantined entry path.
	onQuarantine func(path string)
}

// envelope is the on-disk file layout.
type envelope struct {
	// Version is the cache format version (FormatVersion at write time).
	Version int `json:"version"`
	// Key reproduces the full canonical key for debuggability and to guard
	// against hash collisions.
	Key Key `json:"key"`
	// Checksum is the hex SHA-256 of Result, verified on load.
	Checksum string `json:"checksum"`
	// Result is the simulation result, opaque to this package.
	Result json.RawMessage `json:"result"`
}

// NewDisk opens (creating if necessary) a cache directory. The directory
// path is embedded in any error so callers can report it verbatim. Stale
// temp files left behind by a writer killed mid-Store are swept here: they
// were never renamed into place, so they are invisible to Load and safe to
// delete.
func NewDisk(dir string) (*Disk, error) {
	if dir == "" {
		return nil, errors.New("runner: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cannot create cache directory %q: %w", dir, err)
	}
	if stale, err := filepath.Glob(filepath.Join(dir, "entry-*.tmp")); err == nil {
		for _, path := range stale {
			os.Remove(path)
		}
	}
	return &Disk{dir: dir}, nil
}

// SetFaults installs a fault-injection plan consulted on every Load/Store
// (chaos testing). Call before the store is shared across goroutines.
func (d *Disk) SetFaults(p *faultinject.Plan) {
	if d != nil {
		d.faults = p
	}
}

// OnQuarantine installs an observer invoked with the ".bad" path of every
// quarantined entry. Call before the store is shared across goroutines.
func (d *Disk) OnQuarantine(f func(path string)) {
	if d != nil {
		d.onQuarantine = f
	}
}

// Dir returns the cache directory ("" for a nil store).
func (d *Disk) Dir() string {
	if d == nil {
		return ""
	}
	return d.dir
}

// Quarantined returns how many corrupt entries this store has quarantined.
func (d *Disk) Quarantined() int64 {
	if d == nil {
		return 0
	}
	return d.quarantined.Load()
}

func (d *Disk) path(k Key) string {
	return filepath.Join(d.dir, k.Hash()+".json")
}

func checksum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// quarantine moves a corrupt entry aside to path+".bad" so it is recomputed
// now and inspectable later instead of being re-trusted or deleted.
func (d *Disk) quarantine(path string) {
	if err := os.Rename(path, path+".bad"); err != nil {
		// Fall back to removal: the entry must not be loaded again.
		os.Remove(path)
	}
	d.quarantined.Add(1)
	if d.onQuarantine != nil {
		d.onQuarantine(path + ".bad")
	}
}

// Load looks k up, unmarshaling the stored result into out (a pointer) when
// present. It returns ok=false — with a nil error — for genuine misses,
// version mismatches, hash collisions and corrupt entries (which are
// quarantined to a ".bad" sibling): all of those mean "recompute", not
// "fail the sweep". The error is reserved for I/O-level read failures and
// for a verified entry that could not be decoded into out.
func (d *Disk) Load(k Key, out any) (ok bool, err error) {
	if d == nil {
		return false, nil
	}
	path := d.path(k)
	if err := d.faults.Check(faultinject.SiteDiskLoad, k.Hash()); err != nil {
		return false, fmt.Errorf("runner: cache read %q: %w", path, err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return false, nil // miss (or unreadable — recompute either way)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		d.quarantine(path) // truncated or garbled entry
		return false, nil
	}
	if env.Version != FormatVersion || !env.Key.Equal(k) {
		return false, nil // stale schema or hash collision: plain miss
	}
	if checksum(env.Result) != env.Checksum {
		d.quarantine(path) // bit-rot inside a well-formed envelope
		return false, nil
	}
	if err := json.Unmarshal(env.Result, out); err != nil {
		return false, fmt.Errorf("runner: cache entry %s: decode result: %w", path, err)
	}
	return true, nil
}

// Store writes v as the cached result for k, atomically replacing any
// existing entry. The write is crash-safe: the envelope lands in a temp
// file first, is fsynced to stable storage, and only then renamed onto the
// final name, followed by a best-effort fsync of the directory itself — a
// kill at any point leaves either the old entry, the new entry, or a
// sweep-on-reopen temp file, never a torn entry.
func (d *Disk) Store(k Key, v any) error {
	if d == nil {
		return nil
	}
	if err := d.faults.Check(faultinject.SiteDiskStore, k.Hash()); err != nil {
		return fmt.Errorf("runner: cache write %q: %w", d.path(k), err)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: marshal result for %s: %w", k.Hash(), err)
	}
	sum := checksum(raw)
	if d.faults.ShouldCorrupt(k.Hash()) {
		// Chaos hook: keep the envelope well-formed but flip one digit of
		// the payload, simulating bit-rot that only the checksum catches.
		raw = tamper(raw)
	}
	env, err := json.Marshal(envelope{Version: FormatVersion, Key: k, Checksum: sum, Result: raw})
	if err != nil {
		return fmt.Errorf("runner: marshal cache entry for %s: %w", k.Hash(), err)
	}
	tmp, err := os.CreateTemp(d.dir, "entry-*.tmp")
	if err != nil {
		return fmt.Errorf("runner: cache write in %q: %w", d.dir, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(env); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("runner: cache write %q: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("runner: cache sync %q: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("runner: cache write %q: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, d.path(k)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("runner: cache commit %q: %w", d.path(k), err)
	}
	d.syncDir()
	return nil
}

// syncDir fsyncs the cache directory so a just-committed rename survives a
// crash. Best effort: some platforms/filesystems reject directory fsync,
// and a failed directory sync only weakens durability, never correctness —
// Load either sees the complete entry or a miss.
func (d *Disk) syncDir() {
	f, err := os.Open(d.dir)
	if err != nil {
		return
	}
	f.Sync()
	f.Close()
}

// tamper flips one decimal digit of a JSON payload, leaving it parseable so
// the corruption is caught by the checksum rather than the JSON decoder.
func tamper(raw []byte) []byte {
	out := append([]byte(nil), raw...)
	for i, b := range out {
		if b >= '0' && b <= '8' {
			out[i] = b + 1
			return out
		}
		if b == '9' {
			out[i] = '8'
			return out
		}
	}
	// No digit to flip (shouldn't happen for simulation results): make the
	// payload undecodable instead; Load quarantines either way.
	if len(out) > 0 {
		out[0] ^= 0x01
	}
	return out
}
