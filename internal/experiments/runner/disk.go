package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// FormatVersion identifies the on-disk cache schema. Entries written with a
// different version are ignored (treated as misses), so bumping this after
// an incompatible change to the result or key layout invalidates stale
// caches instead of mis-deserializing them.
const FormatVersion = 1

// Disk is an on-disk result store: one JSON file per run key, named by the
// key's hash. Writes are atomic (temp file + rename), so a sweep killed
// mid-write never leaves a corrupt entry that a resumed sweep would trust;
// unreadable or mismatched entries are simply recomputed.
//
// A nil *Disk is valid and behaves as an always-miss, discard-writes store.
type Disk struct {
	dir string
}

// envelope is the on-disk file layout.
type envelope struct {
	// Version is the cache format version (FormatVersion at write time).
	Version int `json:"version"`
	// Key reproduces the full canonical key for debuggability and to guard
	// against hash collisions.
	Key Key `json:"key"`
	// Result is the simulation result, opaque to this package.
	Result json.RawMessage `json:"result"`
}

// NewDisk opens (creating if necessary) a cache directory. The directory
// path is embedded in any error so callers can report it verbatim.
func NewDisk(dir string) (*Disk, error) {
	if dir == "" {
		return nil, errors.New("runner: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cannot create cache directory %q: %w", dir, err)
	}
	return &Disk{dir: dir}, nil
}

// Dir returns the cache directory ("" for a nil store).
func (d *Disk) Dir() string {
	if d == nil {
		return ""
	}
	return d.dir
}

func (d *Disk) path(k Key) string {
	return filepath.Join(d.dir, k.Hash()+".json")
}

// Load looks k up, unmarshaling the stored result into out (a pointer) when
// present. It returns ok=false — with a nil error — for genuine misses,
// version mismatches, corrupt entries and hash collisions: all of those mean
// "recompute", not "fail the sweep". The error is reserved for a result that
// was found and matched but could not be decoded into out.
func (d *Disk) Load(k Key, out any) (ok bool, err error) {
	if d == nil {
		return false, nil
	}
	raw, err := os.ReadFile(d.path(k))
	if err != nil {
		return false, nil // miss (or unreadable — recompute either way)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return false, nil // corrupt (e.g. interrupted non-atomic copy)
	}
	if env.Version != FormatVersion || !env.Key.Equal(k) {
		return false, nil
	}
	if err := json.Unmarshal(env.Result, out); err != nil {
		return false, fmt.Errorf("runner: cache entry %s: decode result: %w", d.path(k), err)
	}
	return true, nil
}

// Store writes v as the cached result for k, atomically replacing any
// existing entry.
func (d *Disk) Store(k Key, v any) error {
	if d == nil {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: marshal result for %s: %w", k.Hash(), err)
	}
	env, err := json.Marshal(envelope{Version: FormatVersion, Key: k, Result: raw})
	if err != nil {
		return fmt.Errorf("runner: marshal cache entry for %s: %w", k.Hash(), err)
	}
	tmp, err := os.CreateTemp(d.dir, "entry-*.tmp")
	if err != nil {
		return fmt.Errorf("runner: cache write in %q: %w", d.dir, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(env); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("runner: cache write %q: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("runner: cache write %q: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, d.path(k)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("runner: cache commit %q: %w", d.path(k), err)
	}
	return nil
}
