package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"runtime/debug"
	"time"
)

// PanicError transports a panic captured inside a governed run as an error
// value, so containment code can treat crashes and failures uniformly. The
// message is stable (the panic value only — no stack, no addresses); the
// stack is retained separately for diagnostics.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery time.
	Stack []byte
}

// Error renders the panic value without the stack, keeping failure reasons
// deterministic across runs and job counts.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// RunResult is the structured outcome of one governed run: how it ended,
// how many attempts it took, and how long it ran. A run either succeeded
// (Err == nil), failed (Err != nil), or crashed (Err wraps a *PanicError,
// also surfaced in Panic) — failures are captured here instead of
// propagating, so one bad run degrades a sweep rather than killing it.
type RunResult struct {
	// Err is the final attempt's failure (nil on success). Context
	// cancellation and deadline expiry surface here wrapped around
	// context.Canceled / context.DeadlineExceeded.
	Err error
	// Panic is the recovered panic value when the final failure was a
	// crash, nil otherwise.
	Panic any
	// Attempts is how many attempts executed (≥1 unless the context was
	// already canceled before the first attempt, which records 1 refused
	// attempt).
	Attempts int
	// Elapsed is the wall time across all attempts, including backoff.
	Elapsed time.Duration
}

// RetryPolicy bounds the retry loop around transiently-failing runs.
// The zero value selects the defaults (3 attempts, 5ms base, 250ms cap).
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget (including the first).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it, capped at MaxDelay, with multiplicative jitter in
	// [0.5, 1.0) so retrying runs don't stampede.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff.
	MaxDelay time.Duration
	// Jitter, when non-nil, supplies the backoff jitter samples in [0, 1)
	// in place of the process-global RNG, so backoff schedules can be made
	// reproducible under a seeded source. One policy may serve many
	// concurrent runs (the experiment engine shares a single policy per
	// sweep), so the function must be safe for concurrent use.
	Jitter func() float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	return p
}

// backoff is the sleep before retry number `retry` (1-based), with jitter.
// The exponent is overflow-safe: doubling stops as soon as another step
// would reach the cap, so arbitrarily high retry counts (an aggressive
// service-side retry budget) can never wrap the duration negative or spin
// the loop.
func (p RetryPolicy) backoff(retry int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < retry; i++ {
		if d >= p.MaxDelay/2 {
			d = p.MaxDelay
			break
		}
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	jitter := rand.Float64
	if p.Jitter != nil {
		jitter = p.Jitter
	}
	return time.Duration(float64(d) * (0.5 + 0.5*jitter()))
}

// transientClass is the verdict of an explicit Transient() classification
// found while walking an error chain.
type transientClass int

const (
	classUnknown   transientClass = iota // no Transient() anywhere in the chain
	classPermanent                       // some error said Transient() == false
	classTransient                       // some error said Transient() == true
)

// classifyTransient walks the full wrap chain — fmt.Errorf("…: %w", err),
// errors.Join and custom Unwrap() []error trees included — looking for an
// explicit Transient() classification. A transient verdict anywhere in the
// chain wins: wrapping a retryable fault in context ("cache read …: %w")
// must not silently turn it permanent. An explicit permanent verdict is
// remembered so structural heuristics (fs.PathError) cannot override a
// deliberate classification.
func classifyTransient(err error) transientClass {
	if err == nil {
		return classUnknown
	}
	cls := classUnknown
	if tr, ok := err.(interface{ Transient() bool }); ok {
		if tr.Transient() {
			return classTransient
		}
		cls = classPermanent
	}
	switch u := err.(type) {
	case interface{ Unwrap() error }:
		if c := classifyTransient(u.Unwrap()); c == classTransient {
			return classTransient
		} else if c == classPermanent {
			cls = classPermanent
		}
	case interface{ Unwrap() []error }:
		for _, e := range u.Unwrap() {
			if c := classifyTransient(e); c == classTransient {
				return classTransient
			} else if c == classPermanent {
				cls = classPermanent
			}
		}
	}
	return cls
}

// IsRetryable classifies an error as transient (worth retrying) or
// permanent. Injected transient faults (anything implementing
// Transient() bool, at any depth of the wrap chain), filesystem errors and
// truncated reads are transient; panics, context cancellation/expiry,
// explicit permanent classifications, determinism violations and every
// other failure are permanent. Wrapping — fmt.Errorf("…: %w", err),
// errors.Join, nested chains — never changes the verdict of the underlying
// cause.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return false
	}
	switch classifyTransient(err) {
	case classTransient:
		return true
	case classPermanent:
		return false
	}
	var pathErr *fs.PathError
	if errors.As(err, &pathErr) {
		return true
	}
	return errors.Is(err, io.ErrUnexpectedEOF)
}

// protect runs f, converting a panic into a *PanicError.
func protect[V any](f func() (V, error)) (v V, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	return f()
}

// Bounded runs f under a deadline. When timeout is positive (or ctx already
// carries a deadline/cancellation), f executes on its own goroutine and
// Bounded returns early with a wrapped ctx error if the deadline expires
// first — the abandoned computation keeps running to completion in the
// background (the simulator has no preemption points) but its result is
// discarded. Panics inside f surface as a *PanicError.
func Bounded[V any](ctx context.Context, timeout time.Duration, f func() (V, error)) (V, error) {
	var zero V
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if ctx.Done() == nil {
		return protect(f)
	}
	if err := ctx.Err(); err != nil {
		return zero, fmt.Errorf("run refused: %w", err)
	}
	type outcome struct {
		v   V
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := protect(f)
		ch <- outcome{v, err}
	}()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-ctx.Done():
		return zero, fmt.Errorf("run abandoned: %w", ctx.Err())
	}
}

// Execute runs f under ctx with the policy's retry budget: transient
// failures (IsRetryable) are retried with capped exponential backoff and
// jitter; permanent failures, panics and context cancellation end the loop
// immediately. The outcome — including a captured panic, the attempt count
// and the elapsed time — is returned as a RunResult, never propagated.
func Execute(ctx context.Context, pol RetryPolicy, f func(ctx context.Context) error) RunResult {
	pol = pol.withDefaults()
	start := time.Now()
	rr := RunResult{}
	for attempt := 1; ; attempt++ {
		rr.Attempts = attempt
		if err := ctx.Err(); err != nil {
			rr.Err = fmt.Errorf("run refused: %w", err)
			break
		}
		_, err := protect(func() (struct{}, error) { return struct{}{}, f(ctx) })
		rr.Err = err
		if err == nil || !IsRetryable(err) || attempt >= pol.MaxAttempts {
			break
		}
		t := time.NewTimer(pol.backoff(attempt))
		select {
		case <-ctx.Done():
			t.Stop()
		case <-t.C:
		}
	}
	var pe *PanicError
	if errors.As(rr.Err, &pe) {
		rr.Panic = pe.Value
	}
	rr.Elapsed = time.Since(start)
	return rr
}
