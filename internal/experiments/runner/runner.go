// Package runner provides the concurrency and fault-tolerance machinery
// behind the experiment suite: a worker pool that bounds how many
// simulations run at once, a keyed in-memory cache with single-flight
// semantics (concurrent requests for the same run share one execution), a
// retry executor with deadlines and capped exponential backoff (run.go),
// and an optional checksummed on-disk result store keyed by canonical
// run-key hashes so interrupted or overlapping sweeps resume instead of
// recomputing (disk.go).
//
// The package is deliberately generic: it knows nothing about the simulator.
// Experiments describe each simulation with a Key (workloads, seeds, trace
// length and the fully-resolved machine configuration) and the cache
// guarantees that one Key maps to at most one execution per process — and,
// with a Disk attached, at most one execution per cache directory lifetime.
package runner

import (
	"runtime"
	"sync"
)

// Pool bounds the number of concurrently executing simulations. It is a
// counting semaphore: Run blocks until a slot is free, so any number of
// goroutines may request work while at most Jobs() simulations make
// progress.
type Pool struct {
	sem chan struct{}
}

// NewPool creates a pool running at most jobs tasks at once. A non-positive
// jobs defaults to runtime.NumCPU().
func NewPool(jobs int) *Pool {
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	return &Pool{sem: make(chan struct{}, jobs)}
}

// Jobs returns the pool's concurrency bound.
func (p *Pool) Jobs() int { return cap(p.sem) }

// Run executes f once a worker slot is available, blocking until then. The
// slot is released when f returns (or panics).
func (p *Pool) Run(f func()) {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	f()
}

// call is one in-flight or completed computation in a Cache.
type call[V any] struct {
	done     chan struct{}
	val      V
	err      error
	panicked any
}

// Cache is a concurrency-safe memoization map with single-flight semantics:
// the first Do for a key runs the compute function, concurrent Dos for the
// same key wait for that computation, and later Dos return the stored value
// immediately.
//
// Failures do not poison the cache: a compute that returns an error or
// panics delivers that failure to the computing caller and to every caller
// already waiting, then the entry is re-armed (removed), so a later Do for
// the same key retries the computation instead of replaying the failure
// forever. Only successful values are memoized.
type Cache[V any] struct {
	mu sync.Mutex
	m  map[string]*call[V]
}

// NewCache creates an empty cache.
func NewCache[V any]() *Cache[V] {
	return &Cache[V]{m: make(map[string]*call[V])}
}

// Do returns the value for key, computing it via compute at most once per
// cache while the computation succeeds. fresh reports whether this call
// performed the computation (false for memoization hits and for callers
// that waited on another goroutine's computation). A compute panic is
// re-raised in the computing caller and in every waiting caller.
func (c *Cache[V]) Do(key string, compute func() (V, error)) (val V, fresh bool, err error) {
	c.mu.Lock()
	if cl, ok := c.m[key]; ok {
		c.mu.Unlock()
		<-cl.done
		if cl.panicked != nil {
			panic(cl.panicked)
		}
		return cl.val, false, cl.err
	}
	cl := &call[V]{done: make(chan struct{})}
	c.m[key] = cl
	c.mu.Unlock()

	defer func() {
		cl.panicked = recover()
		if cl.panicked != nil || cl.err != nil {
			// Deliver the failure to everyone already waiting, but re-arm
			// the entry so future callers retry instead of inheriting it.
			c.mu.Lock()
			delete(c.m, key)
			c.mu.Unlock()
		}
		close(cl.done)
		if cl.panicked != nil {
			panic(cl.panicked)
		}
	}()
	cl.val, cl.err = compute()
	return cl.val, true, cl.err
}

// Len returns the number of keys resident in the cache (completed or in
// flight).
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
