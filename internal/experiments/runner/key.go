package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Run kinds: the machine topology a Key's configuration is instantiated
// with. Two runs with identical configurations but different kinds (e.g. a
// single-core run and an SMT run of the same benchmark) are distinct
// simulations, so the kind is part of the canonical key.
const (
	// KindSingle is a single-core run over one trace.
	KindSingle = "single"
	// KindSMT is a 2-way SMT run (two traces sharing one core's hierarchy).
	KindSMT = "smt"
	// KindMulti is a multi-programmed run (one core per trace, shared LLC).
	KindMulti = "multi"
)

// Key canonically identifies one simulation: what machine ran (the
// fully-resolved configuration after every experiment modifier has been
// applied), on which synthesized workloads, at which trace seeds and length.
// Two experiments that request the same Key — even under different
// experiment-local labels — share a single execution and a single cache
// entry.
type Key struct {
	// Kind is the machine topology (KindSingle, KindSMT, KindMulti).
	Kind string `json:"kind"`
	// Workloads names the benchmark trace per hardware context, in core
	// order.
	Workloads []string `json:"workloads"`
	// Seeds are the trace-synthesis seeds, matched to Workloads (a single
	// seed applies to all workloads).
	Seeds []int64 `json:"seeds"`
	// TraceLen is the synthesized trace length per benchmark.
	TraceLen int `json:"traceLen"`
	// Config is the canonical JSON encoding of the fully-resolved machine
	// configuration the run executes with.
	Config json.RawMessage `json:"config"`
}

// NewKey builds a canonical Key, serializing cfg (any JSON-marshalable
// configuration struct) into the key's canonical form.
func NewKey(kind string, workloads []string, seeds []int64, traceLen int, cfg any) (Key, error) {
	raw, err := json.Marshal(cfg)
	if err != nil {
		return Key{}, fmt.Errorf("runner: marshal config for key: %w", err)
	}
	return Key{
		Kind:      kind,
		Workloads: append([]string(nil), workloads...),
		Seeds:     append([]int64(nil), seeds...),
		TraceLen:  traceLen,
		Config:    raw,
	}, nil
}

// Hash returns the key's canonical hash: the hex SHA-256 of its JSON
// encoding. Struct-field order in Go's encoding/json is declaration order,
// so the encoding — and therefore the hash — is stable across processes and
// runs.
func (k Key) Hash() string {
	raw, err := json.Marshal(k)
	if err != nil {
		// Key fields are plain data; Marshal cannot fail unless Config was
		// constructed by hand with invalid JSON.
		panic(fmt.Sprintf("runner: marshal key: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Equal reports whether two keys identify the same simulation.
func (k Key) Equal(o Key) bool {
	if k.Kind != o.Kind || k.TraceLen != o.TraceLen ||
		len(k.Workloads) != len(o.Workloads) || len(k.Seeds) != len(o.Seeds) ||
		string(k.Config) != string(o.Config) {
		return false
	}
	for i := range k.Workloads {
		if k.Workloads[i] != o.Workloads[i] {
			return false
		}
	}
	for i := range k.Seeds {
		if k.Seeds[i] != o.Seeds[i] {
			return false
		}
	}
	return true
}
