package runner

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

type fakeConfig struct {
	Policy  string
	Entries int
}

func testKey(t *testing.T, policy string, entries int) Key {
	t.Helper()
	k, err := NewKey(KindSingle, []string{"pr"}, []int64{1}, 1000, fakeConfig{policy, entries})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKeyHashStable(t *testing.T) {
	a := testKey(t, "ship", 2048)
	b := testKey(t, "ship", 2048)
	if a.Hash() != b.Hash() {
		t.Errorf("identical keys hash differently: %s vs %s", a.Hash(), b.Hash())
	}
	if len(a.Hash()) != 64 {
		t.Errorf("hash %q is not hex sha256", a.Hash())
	}
}

func TestKeyHashSensitivity(t *testing.T) {
	base := testKey(t, "ship", 2048)
	variants := []Key{
		testKey(t, "t-ship", 2048), // config change
		testKey(t, "ship", 1024),   // config change
	}
	if k, err := NewKey(KindSMT, []string{"pr"}, []int64{1}, 1000, fakeConfig{"ship", 2048}); err == nil {
		variants = append(variants, k) // kind change
	}
	if k, err := NewKey(KindSingle, []string{"mcf"}, []int64{1}, 1000, fakeConfig{"ship", 2048}); err == nil {
		variants = append(variants, k) // workload change
	}
	if k, err := NewKey(KindSingle, []string{"pr"}, []int64{7}, 1000, fakeConfig{"ship", 2048}); err == nil {
		variants = append(variants, k) // seed change
	}
	if k, err := NewKey(KindSingle, []string{"pr"}, []int64{1}, 2000, fakeConfig{"ship", 2048}); err == nil {
		variants = append(variants, k) // trace length change
	}
	seen := map[string]bool{base.Hash(): true}
	for i, v := range variants {
		h := v.Hash()
		if seen[h] {
			t.Errorf("variant %d collides with an earlier key", i)
		}
		seen[h] = true
		if base.Equal(v) {
			t.Errorf("variant %d compares Equal to base", i)
		}
	}
	if !base.Equal(testKey(t, "ship", 2048)) {
		t.Error("identical keys not Equal")
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache[int]()
	var computes atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _ := c.Do("k", func() int {
				computes.Add(1)
				return 42
			})
			if v != 42 {
				t.Errorf("Do = %d", v)
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	if v, fresh := c.Do("k", func() int { return 0 }); v != 42 || fresh {
		t.Errorf("memoized Do = (%d, fresh=%v)", v, fresh)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCachePanicPropagates(t *testing.T) {
	c := NewCache[int]()
	mustPanic := func(f func()) (msg any) {
		defer func() { msg = recover() }()
		f()
		return nil
	}
	if m := mustPanic(func() { c.Do("bad", func() int { panic("boom") }) }); m != "boom" {
		t.Fatalf("computing caller recovered %v", m)
	}
	// Later callers of the failed key must see the same panic, not hang or
	// get a zero value.
	if m := mustPanic(func() { c.Do("bad", func() int { return 1 }) }); m != "boom" {
		t.Fatalf("waiting caller recovered %v", m)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	if p.Jobs() != 3 {
		t.Fatalf("Jobs = %d", p.Jobs())
	}
	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Run(func() {
				n := cur.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				<-gate
				cur.Add(-1)
			})
		}()
	}
	close(gate)
	wg.Wait()
	if got := peak.Load(); got > 3 {
		t.Errorf("peak concurrency %d exceeds pool size 3", got)
	}
}

func TestPoolDefaultJobs(t *testing.T) {
	if NewPool(0).Jobs() < 1 {
		t.Error("default pool has no workers")
	}
}

type fakeResult struct {
	IPC   float64
	Hits  uint64
	Notes []string
}

func TestDiskRoundTrip(t *testing.T) {
	d, err := NewDisk(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, "ship", 2048)
	want := fakeResult{IPC: 1.25, Hits: 99, Notes: []string{"a", "b"}}

	var miss fakeResult
	if ok, err := d.Load(k, &miss); ok || err != nil {
		t.Fatalf("empty cache Load = (%v, %v)", ok, err)
	}
	if err := d.Store(k, want); err != nil {
		t.Fatal(err)
	}
	var got fakeResult
	ok, err := d.Load(k, &got)
	if !ok || err != nil {
		t.Fatalf("Load after Store = (%v, %v)", ok, err)
	}
	if got.IPC != want.IPC || got.Hits != want.Hits || len(got.Notes) != 2 {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
	// A different key must not hit the stored entry.
	if ok, _ := d.Load(testKey(t, "lru", 2048), &got); ok {
		t.Error("distinct key hit the cache")
	}
}

func TestDiskVersionMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, "ship", 2048)
	if err := d.Store(k, fakeResult{IPC: 2}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.Hash()+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := strings.Replace(string(raw), `"version":1`, `"version":999`, 1)
	if stale == string(raw) {
		t.Fatal("could not rewrite version field — envelope layout changed?")
	}
	if err := os.WriteFile(path, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	var got fakeResult
	if ok, err := d.Load(k, &got); ok || err != nil {
		t.Errorf("stale-version Load = (%v, %v), want miss", ok, err)
	}
}

func TestDiskCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, "ship", 2048)
	if err := os.WriteFile(filepath.Join(dir, k.Hash()+".json"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	var got fakeResult
	if ok, err := d.Load(k, &got); ok || err != nil {
		t.Errorf("corrupt Load = (%v, %v), want silent miss", ok, err)
	}
}

func TestNilDiskIsDisabled(t *testing.T) {
	var d *Disk
	k := testKey(t, "ship", 2048)
	if err := d.Store(k, fakeResult{}); err != nil {
		t.Errorf("nil Store err = %v", err)
	}
	var got fakeResult
	if ok, err := d.Load(k, &got); ok || err != nil {
		t.Errorf("nil Load = (%v, %v)", ok, err)
	}
	if d.Dir() != "" {
		t.Errorf("nil Dir = %q", d.Dir())
	}
}
