package runner

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"atcsim/internal/faultinject"
)

type fakeConfig struct {
	Policy  string
	Entries int
}

func testKey(t *testing.T, policy string, entries int) Key {
	t.Helper()
	k, err := NewKey(KindSingle, []string{"pr"}, []int64{1}, 1000, fakeConfig{policy, entries})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKeyHashStable(t *testing.T) {
	a := testKey(t, "ship", 2048)
	b := testKey(t, "ship", 2048)
	if a.Hash() != b.Hash() {
		t.Errorf("identical keys hash differently: %s vs %s", a.Hash(), b.Hash())
	}
	if len(a.Hash()) != 64 {
		t.Errorf("hash %q is not hex sha256", a.Hash())
	}
}

func TestKeyHashSensitivity(t *testing.T) {
	base := testKey(t, "ship", 2048)
	variants := []Key{
		testKey(t, "t-ship", 2048), // config change
		testKey(t, "ship", 1024),   // config change
	}
	if k, err := NewKey(KindSMT, []string{"pr"}, []int64{1}, 1000, fakeConfig{"ship", 2048}); err == nil {
		variants = append(variants, k) // kind change
	}
	if k, err := NewKey(KindSingle, []string{"mcf"}, []int64{1}, 1000, fakeConfig{"ship", 2048}); err == nil {
		variants = append(variants, k) // workload change
	}
	if k, err := NewKey(KindSingle, []string{"pr"}, []int64{7}, 1000, fakeConfig{"ship", 2048}); err == nil {
		variants = append(variants, k) // seed change
	}
	if k, err := NewKey(KindSingle, []string{"pr"}, []int64{1}, 2000, fakeConfig{"ship", 2048}); err == nil {
		variants = append(variants, k) // trace length change
	}
	seen := map[string]bool{base.Hash(): true}
	for i, v := range variants {
		h := v.Hash()
		if seen[h] {
			t.Errorf("variant %d collides with an earlier key", i)
		}
		seen[h] = true
		if base.Equal(v) {
			t.Errorf("variant %d compares Equal to base", i)
		}
	}
	if !base.Equal(testKey(t, "ship", 2048)) {
		t.Error("identical keys not Equal")
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache[int]()
	var computes atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do("k", func() (int, error) {
				computes.Add(1)
				return 42, nil
			})
			if v != 42 || err != nil {
				t.Errorf("Do = (%d, %v)", v, err)
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	if v, fresh, _ := c.Do("k", func() (int, error) { return 0, nil }); v != 42 || fresh {
		t.Errorf("memoized Do = (%d, fresh=%v)", v, fresh)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

// TestCachePanicPropagatesAndRearms: the computing caller (and any caller
// already waiting) sees the panic, but the failure is delivered exactly
// once per computation — the entry re-arms, so the next Do retries and can
// succeed. A panicked compute must never poison the key forever.
func TestCachePanicPropagates(t *testing.T) {
	c := NewCache[int]()
	mustPanic := func(f func()) (msg any) {
		defer func() { msg = recover() }()
		f()
		return nil
	}
	if m := mustPanic(func() { c.Do("bad", func() (int, error) { panic("boom") }) }); m != "boom" {
		t.Fatalf("computing caller recovered %v", m)
	}
	// The failed entry was re-armed: a later Do retries the computation
	// instead of replaying the stale panic.
	v, fresh, err := c.Do("bad", func() (int, error) { return 7, nil })
	if v != 7 || !fresh || err != nil {
		t.Fatalf("retry after panic = (%d, fresh=%v, %v), want fresh 7", v, fresh, err)
	}
	// And the successful value is now memoized normally.
	if v, fresh, _ := c.Do("bad", func() (int, error) { return 0, nil }); v != 7 || fresh {
		t.Fatalf("memoized after retry = (%d, fresh=%v)", v, fresh)
	}
}

// TestCacheErrorRearms: compute errors behave like panics — delivered to
// the computing caller, never memoized.
func TestCacheErrorRearms(t *testing.T) {
	c := NewCache[int]()
	sentinel := errors.New("transient")
	if _, _, err := c.Do("k", func() (int, error) { return 0, sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("first Do err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed entry still resident: Len = %d", c.Len())
	}
	v, fresh, err := c.Do("k", func() (int, error) { return 9, nil })
	if v != 9 || !fresh || err != nil {
		t.Fatalf("retry = (%d, fresh=%v, %v)", v, fresh, err)
	}
}

// TestCacheFailureDeliveredToWaiters: goroutines waiting on a computation
// that fails observe exactly that failure; goroutines arriving after the
// entry re-arms retry cleanly. Either way nobody hangs and nobody inherits
// a stale failure on a later call.
func TestCacheFailureDeliveredToWaiters(t *testing.T) {
	c := NewCache[int]()
	started := make(chan struct{})
	release := make(chan struct{})
	sentinel := errors.New("boom")

	var wg sync.WaitGroup
	var sawFailure, retried atomic.Int32
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do("k", func() (int, error) {
			close(started)
			<-release
			return 0, sentinel
		})
	}()
	<-started
	var arrived sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		arrived.Add(1)
		go func() {
			defer wg.Done()
			arrived.Done()
			_, fresh, err := c.Do("k", func() (int, error) { return 7, nil })
			switch {
			case !fresh && errors.Is(err, sentinel):
				sawFailure.Add(1) // parked on the failing computation
			case err == nil:
				retried.Add(1) // arrived after re-arm, computed or memoized
			default:
				t.Errorf("waiter got (fresh=%v, %v)", fresh, err)
			}
		}()
	}
	arrived.Wait()
	close(release)
	wg.Wait()
	if sawFailure.Load()+retried.Load() != 4 {
		t.Errorf("failures=%d retries=%d, want 4 total", sawFailure.Load(), retried.Load())
	}
	// The failure was not memoized: the key now computes (or holds 7).
	v, _, err := c.Do("k", func() (int, error) { return 7, nil })
	if v != 7 || err != nil {
		t.Errorf("post-failure Do = (%d, %v)", v, err)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	if p.Jobs() != 3 {
		t.Fatalf("Jobs = %d", p.Jobs())
	}
	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Run(func() {
				n := cur.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				<-gate
				cur.Add(-1)
			})
		}()
	}
	close(gate)
	wg.Wait()
	if got := peak.Load(); got > 3 {
		t.Errorf("peak concurrency %d exceeds pool size 3", got)
	}
}

func TestPoolDefaultJobs(t *testing.T) {
	if NewPool(0).Jobs() < 1 {
		t.Error("default pool has no workers")
	}
}

type fakeResult struct {
	IPC   float64
	Hits  uint64
	Notes []string
}

func TestDiskRoundTrip(t *testing.T) {
	d, err := NewDisk(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, "ship", 2048)
	want := fakeResult{IPC: 1.25, Hits: 99, Notes: []string{"a", "b"}}

	var miss fakeResult
	if ok, err := d.Load(k, &miss); ok || err != nil {
		t.Fatalf("empty cache Load = (%v, %v)", ok, err)
	}
	if err := d.Store(k, want); err != nil {
		t.Fatal(err)
	}
	var got fakeResult
	ok, err := d.Load(k, &got)
	if !ok || err != nil {
		t.Fatalf("Load after Store = (%v, %v)", ok, err)
	}
	if got.IPC != want.IPC || got.Hits != want.Hits || len(got.Notes) != 2 {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
	// A different key must not hit the stored entry.
	if ok, _ := d.Load(testKey(t, "lru", 2048), &got); ok {
		t.Error("distinct key hit the cache")
	}
	if d.Quarantined() != 0 {
		t.Errorf("clean round trip quarantined %d entries", d.Quarantined())
	}
}

func TestDiskVersionMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, "ship", 2048)
	if err := d.Store(k, fakeResult{IPC: 2}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.Hash()+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := strings.Replace(string(raw), fmt.Sprintf(`"version":%d`, FormatVersion), `"version":999`, 1)
	if stale == string(raw) {
		t.Fatal("could not rewrite version field — envelope layout changed?")
	}
	if err := os.WriteFile(path, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	var got fakeResult
	if ok, err := d.Load(k, &got); ok || err != nil {
		t.Errorf("stale-version Load = (%v, %v), want miss", ok, err)
	}
	// A stale schema is not corruption: no quarantine.
	if d.Quarantined() != 0 {
		t.Errorf("version mismatch quarantined %d entries", d.Quarantined())
	}
}

// TestDiskTruncatedEntryQuarantined: a partially-written (non-atomic copy,
// power loss) entry is a silent miss, and the carcass is moved aside to a
// ".bad" sibling so it cannot be re-trusted and can be inspected.
func TestDiskTruncatedEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, "ship", 2048)
	path := filepath.Join(dir, k.Hash()+".json")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	var got fakeResult
	if ok, err := d.Load(k, &got); ok || err != nil {
		t.Errorf("corrupt Load = (%v, %v), want silent miss", ok, err)
	}
	if d.Quarantined() != 1 {
		t.Errorf("Quarantined = %d, want 1", d.Quarantined())
	}
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Errorf("no .bad sibling: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt entry still present: %v", err)
	}
	// The key is now a plain miss and can be re-stored and re-loaded.
	if err := d.Store(k, fakeResult{IPC: 3}); err != nil {
		t.Fatal(err)
	}
	if ok, err := d.Load(k, &got); !ok || err != nil || got.IPC != 3 {
		t.Errorf("re-store after quarantine = (%v, %v, %+v)", ok, err, got)
	}
}

// TestDiskChecksumMismatchQuarantined: a well-formed envelope whose payload
// no longer matches its SHA-256 checksum (bit-rot) is quarantined and
// reported as a miss, never decoded.
func TestDiskChecksumMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	var observed []string
	d.OnQuarantine(func(path string) { observed = append(observed, path) })
	k := testKey(t, "ship", 2048)
	if err := d.Store(k, fakeResult{IPC: 1.5, Hits: 10}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.Hash()+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload digit, keeping the file valid JSON.
	rotted := strings.Replace(string(raw), `"IPC":1.5`, `"IPC":9.5`, 1)
	if rotted == string(raw) {
		t.Fatal("could not rot the payload — envelope layout changed?")
	}
	if err := os.WriteFile(path, []byte(rotted), 0o644); err != nil {
		t.Fatal(err)
	}
	var got fakeResult
	if ok, err := d.Load(k, &got); ok || err != nil {
		t.Errorf("rotted Load = (%v, %v), want silent miss", ok, err)
	}
	if d.Quarantined() != 1 {
		t.Errorf("Quarantined = %d, want 1", d.Quarantined())
	}
	if len(observed) != 1 || !strings.HasSuffix(observed[0], ".bad") {
		t.Errorf("OnQuarantine observed %v", observed)
	}
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Errorf("no .bad sibling: %v", err)
	}
}

// TestDiskUnwritableDirStoreFails: when the cache directory disappears (or
// becomes unwritable) mid-sweep, Store reports an error — the sweep carries
// on without persistence — and Load degrades to a miss.
func TestDiskUnwritableDirStoreFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	k := testKey(t, "ship", 2048)
	if err := d.Store(k, fakeResult{IPC: 1}); err == nil {
		t.Error("Store into a removed directory succeeded")
	}
	var got fakeResult
	if ok, err := d.Load(k, &got); ok || err != nil {
		t.Errorf("Load from removed directory = (%v, %v), want miss", ok, err)
	}
}

// TestDiskConcurrentStoreSameKey: concurrent Stores to one key must all
// succeed (atomic temp+rename) and leave a valid, loadable entry.
func TestDiskConcurrentStoreSameKey(t *testing.T) {
	d, err := NewDisk(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, "ship", 2048)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := d.Store(k, fakeResult{IPC: 1.0, Hits: uint64(i)}); err != nil {
				t.Errorf("concurrent Store: %v", err)
			}
		}(i)
	}
	wg.Wait()
	var got fakeResult
	ok, err := d.Load(k, &got)
	if !ok || err != nil {
		t.Fatalf("Load after concurrent stores = (%v, %v)", ok, err)
	}
	if got.IPC != 1.0 || got.Hits > 15 {
		t.Errorf("loaded entry %+v is not one of the stored values", got)
	}
	if d.Quarantined() != 0 {
		t.Errorf("concurrent stores quarantined %d entries", d.Quarantined())
	}
	// Exactly one entry file, no leaked temp files.
	files, err := os.ReadDir(d.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		names := make([]string, 0, len(files))
		for _, f := range files {
			names = append(names, f.Name())
		}
		t.Errorf("cache dir holds %v, want exactly one entry", names)
	}
}

// TestDiskInjectedFaults: the chaos hooks — I/O errors on Load/Store and
// payload corruption on write — behave as designed.
func TestDiskInjectedFaults(t *testing.T) {
	d, err := NewDisk(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, "ship", 2048)
	plan := faultinject.NewPlan(1,
		faultinject.Rule{Site: faultinject.SiteDiskStore, Kind: faultinject.KindIOErr, Times: 1},
		faultinject.Rule{Site: faultinject.SiteDiskLoad, Kind: faultinject.KindIOErr, Times: 1},
		faultinject.Rule{Site: faultinject.SiteDiskEntry, Kind: faultinject.KindCorrupt, Times: 1},
	)
	d.SetFaults(plan)

	// First store: injected I/O error, classified retryable.
	err = d.Store(k, fakeResult{IPC: 1.25})
	if err == nil {
		t.Fatal("injected store error missing")
	}
	if !IsRetryable(err) {
		t.Errorf("injected I/O error not retryable: %v", err)
	}
	// Second store succeeds but the corrupt-entry rule tampers the payload.
	if err := d.Store(k, fakeResult{IPC: 1.25}); err != nil {
		t.Fatal(err)
	}
	// First load: injected I/O error.
	var got fakeResult
	if _, err := d.Load(k, &got); err == nil {
		t.Fatal("injected load error missing")
	}
	// Second load: checksum mismatch → quarantine → miss.
	if ok, err := d.Load(k, &got); ok || err != nil {
		t.Errorf("corrupted Load = (%v, %v), want silent miss", ok, err)
	}
	if d.Quarantined() != 1 {
		t.Errorf("Quarantined = %d, want 1", d.Quarantined())
	}
	// Third store/load: plan exhausted, normal round trip.
	if err := d.Store(k, fakeResult{IPC: 2.5}); err != nil {
		t.Fatal(err)
	}
	if ok, err := d.Load(k, &got); !ok || err != nil || got.IPC != 2.5 {
		t.Errorf("post-chaos round trip = (%v, %v, %+v)", ok, err, got)
	}
}

func TestNilDiskIsDisabled(t *testing.T) {
	var d *Disk
	k := testKey(t, "ship", 2048)
	if err := d.Store(k, fakeResult{}); err != nil {
		t.Errorf("nil Store err = %v", err)
	}
	var got fakeResult
	if ok, err := d.Load(k, &got); ok || err != nil {
		t.Errorf("nil Load = (%v, %v)", ok, err)
	}
	if d.Dir() != "" {
		t.Errorf("nil Dir = %q", d.Dir())
	}
	if d.Quarantined() != 0 {
		t.Errorf("nil Quarantined = %d", d.Quarantined())
	}
	d.SetFaults(nil)
	d.OnQuarantine(nil)
}
