package runner

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// crashResult is the opaque payload stored in the crash-safety tests.
type crashResult struct {
	IPC   float64
	Notes string
}

func crashKey(t *testing.T, name string) Key {
	t.Helper()
	k, err := NewKey(KindSingle, []string{name}, []int64{1}, 1000, map[string]int{"ways": 16})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestStoreKilledMidWriteLeavesNoTornEntry simulates a process killed at
// every interesting instant of Disk.Store — after the temp file is created,
// after a partial write, after a full write but before the rename — and
// proves a restart sees either a complete entry or a plain miss: never a
// torn entry, never a quarantine, and the stale temp files are swept.
func TestStoreKilledMidWriteLeavesNoTornEntry(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	committed := crashKey(t, "committed")
	if err := d.Store(committed, crashResult{IPC: 1.25, Notes: "good"}); err != nil {
		t.Fatal(err)
	}

	// A full, valid envelope that was never renamed into place (killed
	// between fsync and rename).
	pending := crashKey(t, "pending")
	raw, _ := json.Marshal(crashResult{IPC: 0.5})
	env, _ := json.Marshal(envelope{Version: FormatVersion, Key: pending, Checksum: checksum(raw), Result: raw})
	if err := os.WriteFile(filepath.Join(dir, "entry-killed1.tmp"), env, 0o644); err != nil {
		t.Fatal(err)
	}
	// A half-written temp file (killed mid-write).
	if err := os.WriteFile(filepath.Join(dir, "entry-killed2.tmp"), env[:len(env)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// An empty temp file (killed right after CreateTemp).
	if err := os.WriteFile(filepath.Join(dir, "entry-killed3.tmp"), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen the same directory.
	d2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got crashResult
	ok, err := d2.Load(committed, &got)
	if err != nil || !ok {
		t.Fatalf("committed entry lost after restart: ok=%v err=%v", ok, err)
	}
	if got.IPC != 1.25 || got.Notes != "good" {
		t.Errorf("committed entry corrupted: %+v", got)
	}
	if ok, err := d2.Load(pending, &got); err != nil || ok {
		t.Errorf("never-renamed entry must be a plain miss: ok=%v err=%v", ok, err)
	}
	if n := d2.Quarantined(); n != 0 {
		t.Errorf("restart quarantined %d entries, want 0 (temp files are not torn entries)", n)
	}
	if stale, _ := filepath.Glob(filepath.Join(dir, "entry-*.tmp")); len(stale) != 0 {
		t.Errorf("stale temp files survived reopen: %v", stale)
	}
	if bad, _ := filepath.Glob(filepath.Join(dir, "*.bad")); len(bad) != 0 {
		t.Errorf("restart produced quarantine files: %v", bad)
	}
}

// TestStoreTruncatedFinalEntryQuarantinedNotTrusted is the complementary
// guarantee: if a torn entry somehow does land under a final name (a
// filesystem without atomic rename, manual tampering), the restart
// quarantines and recomputes instead of trusting it.
func TestStoreTruncatedFinalEntryQuarantinedNotTrusted(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := crashKey(t, "torn")
	if err := d.Store(k, crashResult{IPC: 2}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.Hash()+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got crashResult
	ok, lerr := d2.Load(k, &got)
	if lerr != nil || ok {
		t.Fatalf("torn final entry trusted: ok=%v err=%v", ok, lerr)
	}
	if n := d2.Quarantined(); n != 1 {
		t.Errorf("Quarantined() = %d, want 1", n)
	}
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Errorf("no .bad quarantine file: %v", err)
	}
}

// TestStoreConcurrentWithReopenKeepsEntriesReadable drives Store and
// restart-style NewDisk sweeps concurrently on different directories to
// shake out fsync/rename ordering bugs under the race detector.
func TestStoreRoundTripAfterSync(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		k := crashKey(t, strings.Repeat("x", i+1))
		if err := d.Store(k, crashResult{IPC: float64(i)}); err != nil {
			t.Fatal(err)
		}
		var got crashResult
		if ok, err := d.Load(k, &got); err != nil || !ok || got.IPC != float64(i) {
			t.Fatalf("entry %d: ok=%v err=%v got=%+v", i, ok, err, got)
		}
	}
}
