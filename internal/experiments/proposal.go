package experiments

import (
	"atcsim/internal/mem"
	"atcsim/internal/stats"
	"atcsim/internal/system"
)

// Fig10 demonstrates the misconfiguration the paper warns about: inserting
// replay loads at RRPV=0 together with the pinned translations degrades
// performance relative to the proper T-policies.
//
// Summary keys: degradation (geomean speedup of the misconfiguration over
// the proper T-policies; < 1 means degraded, as the paper reports).
func Fig10(r *Runner) *Report {
	t := stats.NewTable("benchmark", "proper T-policies", "replay@RRPV0", "ratio")
	var ratios []float64
	for _, w := range r.Scale().workloads() {
		base := r.Baseline(w)
		proper := r.Run("fig10:proper", w, func(c *system.Config) {
			c.L2.Policy = "t-drrip"
			c.LLC.Policy = "t-ship"
		})
		wrong := r.Run("fig10:replay0", w, func(c *system.Config) {
			c.L2.Policy = "drrip-replay0"
			c.LLC.Policy = "ship-replay0"
		})
		ps := proper.SpeedupOver(base)
		ws := wrong.SpeedupOver(base)
		ratio := ws / ps
		t.AddRowf(w, ps, ws, ratio)
		ratios = append(ratios, ratio)
	}
	g := stats.GeoMean(ratios)
	t.AddRowf("geomean", "", "", g)
	return &Report{
		ID:    "fig10",
		Title: "Degradation when replay loads are inserted at RRPV=0 (DRRIP at L2C, SHiP at LLC)",
		Table: t,
		Notes: []string{
			"paper: replay blocks at RRPV=0 pressure the pinned translations and hurt performance",
		},
		Summary: map[string]float64{"degradation": g},
	}
}

// Fig12 isolates the signature enhancement: leaf-translation MPKI at the
// LLC for baseline SHiP, SHiP with the new translation/replay-aware
// signatures only (NewSign), full T-SHiP, and the Hawkeye variants.
//
// Summary keys: ship, shipNewsig, tShip, hawkeye, tHawkeye (mean MPKI).
func Fig12(r *Runner) *Report {
	policies := []string{"ship", "ship-newsig", "t-ship", "hawkeye", "t-hawkeye"}
	t, sum := r.policySweep(mem.ClassTransLeaf, policies)
	return &Report{
		ID:    "fig12",
		Title: "Leaf-translation MPKI at the LLC: SHiP vs NewSign vs T-SHiP (and Hawkeye variants)",
		Table: t,
		Notes: []string{
			"paper: the new signatures alone reduce translation MPKI; pinning leaf translations (T-SHiP) reduces it further",
		},
		Summary: map[string]float64{
			"ship":       sum["ship"],
			"shipNewsig": sum["ship-newsig"],
			"tShip":      sum["t-ship"],
			"hawkeye":    sum["hawkeye"],
			"tHawkeye":   sum["t-hawkeye"],
		},
	}
}

// Fig14 is the headline result: normalized performance of the cumulative
// enhancements T-DRRIP → +T-SHiP → +ATP → +TEMPO over the baseline.
//
// Summary keys: tdrrip, tship, atp, tempo (geomean speedups), max (largest
// per-benchmark speedup of the full configuration).
func Fig14(r *Runner) *Report {
	levels := []system.Enhancement{system.TDRRIP, system.TSHiP, system.ATP, system.TEMPO}
	header := []string{"benchmark"}
	for _, e := range levels {
		header = append(header, "+"+e.String())
	}
	t := stats.NewTable(header...)
	agg := map[system.Enhancement][]float64{}
	maxFull := 0.0
	for _, w := range r.Scale().workloads() {
		base := r.Baseline(w)
		row := []interface{}{w}
		for _, e := range levels {
			sp := r.Enhanced(w, e).SpeedupOver(base)
			row = append(row, sp)
			agg[e] = append(agg[e], sp)
			if e == system.TEMPO && sp > maxFull {
				maxFull = sp
			}
		}
		t.AddRowf(row...)
	}
	row := []interface{}{"geomean"}
	sum := map[string]float64{"max": maxFull}
	for _, e := range levels {
		g := stats.GeoMean(agg[e])
		row = append(row, g)
		sum[e.String()] = g
	}
	t.AddRowf(row...)
	return &Report{
		ID:    "fig14",
		Title: "Normalized performance of the cumulative enhancements",
		Table: t,
		Notes: []string{
			"paper: T-DRRIP +0.5%, +T-SHiP +2.9%, +ATP +4.8%, +TEMPO +5.1% on average; up to +10.6%",
		},
		Summary: sum,
	}
}

// Fig15 evaluates the full enhancement stack on top of baselines that
// already include a data prefetcher.
//
// Summary keys: one per prefetcher (geomean speedup of full enhancements
// over the prefetching baseline).
func Fig15(r *Runner) *Report {
	type setup struct{ name, l1d, l2 string }
	setups := []setup{
		{"ipcp", "ipcp", "none"},
		{"spp", "none", "spp"},
		{"bingo", "none", "bingo"},
		{"isb", "none", "isb"},
	}
	header := []string{"benchmark"}
	for _, s := range setups {
		header = append(header, s.name)
	}
	t := stats.NewTable(header...)
	agg := map[string][]float64{}
	for _, w := range r.Scale().workloads() {
		row := []interface{}{w}
		for _, s := range setups {
			s := s
			base := r.Run("pf:"+s.name, w, func(c *system.Config) {
				c.L1DPrefetcher = s.l1d
				c.L2Prefetcher = s.l2
			})
			enh := r.Run("pf+enh:"+s.name, w, func(c *system.Config) {
				c.L1DPrefetcher = s.l1d
				c.L2Prefetcher = s.l2
				c.Apply(system.TEMPO)
			})
			sp := enh.SpeedupOver(base)
			row = append(row, sp)
			agg[s.name] = append(agg[s.name], sp)
		}
		t.AddRowf(row...)
	}
	row := []interface{}{"geomean"}
	sum := map[string]float64{}
	for _, s := range setups {
		g := stats.GeoMean(agg[s.name])
		row = append(row, g)
		sum[s.name] = g
	}
	t.AddRowf(row...)
	return &Report{
		ID:    "fig15",
		Title: "Normalized performance of the enhancements in the presence of data prefetchers",
		Table: t,
		Notes: []string{
			"paper: +11.2% over IPCP, +7.5% over Bingo, +6.4% over SPP, +7.2% over ISB",
		},
		Summary: sum,
	}
}

// Fig16 quantifies the ROB stall-cycle reduction of the full enhancement
// stack, split into the STLB-miss (translation) part and the replay part.
//
// Summary keys: transReduction, replayReduction, totalReduction (fractions).
func Fig16(r *Runner) *Report {
	t := stats.NewTable("benchmark", "T stall reduction", "R stall reduction", "total reduction")
	var rt, rr, tot []float64
	for _, w := range r.Scale().workloads() {
		base := r.Baseline(w)
		// The paper attributes the STLB-miss stall reduction to the
		// improved caching (T-DRRIP + T-SHiP) and the replay stall
		// reduction to ATP + TEMPO on top of it.
		pol := r.Enhanced(w, system.TSHiP)
		enh := r.Enhanced(w, system.TEMPO)
		bt, br := stallTotals(base)
		pt, _ := stallTotals(pol)
		et, er := stallTotals(enh)
		redT := reduction(bt, pt)
		redR := reduction(br, er)
		redTot := reduction(bt+br, et+er)
		t.AddRowf(w, redT, redR, redTot)
		if bt > 0 {
			rt = append(rt, redT)
		}
		if br > 0 {
			rr = append(rr, redR)
		}
		if bt+br > 0 {
			tot = append(tot, redTot)
		}
	}
	t.AddRowf("mean", mean(rt), mean(rr), mean(tot))
	return &Report{
		ID:    "fig16",
		Title: "Reduction in ROB stall cycles due to STLB misses (T) and replay loads (R)",
		Table: t,
		Notes: []string{
			"paper: STLB-miss stalls −28.76%, replay stalls −18.5%, combined −46.7% of translation-related stalls",
		},
		Summary: map[string]float64{
			"transReduction":  mean(rt),
			"replayReduction": mean(rr),
			"totalReduction":  mean(tot),
		},
	}
}

func reduction(base, enh uint64) float64 {
	if base == 0 {
		return 0
	}
	return 1 - float64(enh)/float64(base)
}
