package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"atcsim/internal/xlat"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden snapshots")

func TestMechanismsShape(t *testing.T) {
	r := NewRunner(testScale())
	rep := Mechanisms(r)
	for _, m := range xlat.Names() {
		if rep.Summary[m] <= 0 {
			t.Errorf("mechanism %q missing from summary: %v", m, rep.Summary)
		}
	}
	// The atp rows are the paper machinery itself, so the atp TEMPO geomean
	// must reproduce Fig. 14's headline number bit-for-bit — same runs, same
	// aggregation, different table.
	f14 := Fig14(r)
	if rep.Summary["atp"] != f14.Summary["tempo"] {
		t.Errorf("mechanisms atp geomean %.6f != fig14 tempo geomean %.6f",
			rep.Summary["atp"], f14.Summary["tempo"])
	}
}

// TestMechanismsGolden pins the full mechanisms report byte-for-byte. The
// victima and revelator rows are baselined deliberately: any change to a
// mechanism's timing or stats shows up here as a diff to re-snapshot with
// `go test ./internal/experiments/ -update`.
func TestMechanismsGolden(t *testing.T) {
	rep := Mechanisms(NewRunner(testScale()))
	got := []byte(rep.String())

	path := filepath.Join("testdata", "mechanisms.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/experiments/ -update` to create snapshots)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("mechanisms report diverged from %s.\ngot:\n%s\nwant:\n%s\n(rerun with -update if the change is intended)",
			path, got, want)
	}
}

// TestMechanismsDeterministicAcrossJobs extends the engine's determinism
// guarantee to the mechanism axis: the cross-product sweep must emit
// byte-identical reports at any job count.
func TestMechanismsDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("full cross-product twice")
	}
	seq := Mechanisms(NewRunner(testScale())).String()
	par, err := NewRunnerWith(testScale(), Options{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := Mechanisms(par).String(); got != seq {
		t.Errorf("mechanism sweep differs across job counts:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", seq, got)
	}
}
