package experiments

import (
	"atcsim/internal/stats"
	"atcsim/internal/system"
)

// Comparison reproduces §V-B: the paper's enhancements against simplified
// re-implementations of the prior proposals it is compared with — CbPred
// (dead-block bypass at the LLC, Mazumdar et al. HPCA'21) and CSALT-D
// (translation/data cache partitioning, Marathe et al. MICRO'17).
//
// Summary keys: cbpred, csalt, ours (geomean speedups over the baseline),
// oursOverCbpred (the paper reports ≈ +3.1%).
func Comparison(r *Runner) *Report {
	t := stats.NewTable("benchmark", "cbpred", "csalt", "ours (full)")
	agg := map[string][]float64{}
	for _, w := range r.Scale().workloads() {
		base := r.Baseline(w)
		cb := r.Run("cmp:cbpred", w, func(c *system.Config) { c.LLC.Policy = "cbpred" })
		cs := r.Run("cmp:csalt", w, func(c *system.Config) { c.LLC.Policy = "csalt" })
		ours := r.Enhanced(w, system.TEMPO)
		a, b, o := cb.SpeedupOver(base), cs.SpeedupOver(base), ours.SpeedupOver(base)
		t.AddRowf(w, a, b, o)
		agg["cbpred"] = append(agg["cbpred"], a)
		agg["csalt"] = append(agg["csalt"], b)
		agg["ours"] = append(agg["ours"], o)
	}
	gc := stats.GeoMean(agg["cbpred"])
	gs := stats.GeoMean(agg["csalt"])
	go_ := stats.GeoMean(agg["ours"])
	t.AddRowf("geomean", gc, gs, go_)
	return &Report{
		ID:    "comparison",
		Title: "Prior works (§V-B): CbPred-style dead-block bypass and CSALT-style partitioning vs the paper's enhancements",
		Table: t,
		Notes: []string{
			"paper: the enhancements beat CbPred by ~3.1% on average; CSALT partitioning adds ~1% over a weaker baseline",
			"both prior techniques manage capacity; neither shortens the replay load's serial latency, which is where the headroom is",
		},
		Summary: map[string]float64{
			"cbpred":         gc,
			"csalt":          gs,
			"ours":           go_,
			"oursOverCbpred": go_ / gc,
		},
	}
}
