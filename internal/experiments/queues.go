package experiments

import (
	"atcsim/internal/cache"
	"atcsim/internal/stats"
	"atcsim/internal/system"
)

// Queues contrasts the analytic and queued timing engines on the full
// +TEMPO stack: per benchmark, the IPC under each engine, the queued/analytic
// ratio (bounded deques and MSHR gating can only slow a run down), and the
// backpressure the queued engine observed — read-queue-full stall cycles,
// write-forwards, prefetch merges and MSHR-full stalls summed over all cache
// levels. It is the queue-contention profile the analytic model cannot see.
//
// Summary keys: "ipc-ratio" (geomean queued/analytic IPC) and total
// backpressure counters "rq-full", "wq-forward", "pq-merged", "mshr-full".
func Queues(r *Runner) *Report {
	t := stats.NewTable("benchmark", "analytic-IPC", "queued-IPC", "ratio",
		"rq-full", "wq-forward", "pq-merged", "mshr-full")
	var ratios []float64
	var totals cache.QueueStats
	for _, w := range r.Scale().workloads() {
		analytic := r.Run("queues:analytic", w, func(c *system.Config) {
			c.Apply(system.TEMPO)
			c.Timing = "" // share run keys with the rest of the suite
		})
		queued := r.Run("queues:queued", w, func(c *system.Config) {
			c.Apply(system.TEMPO)
			c.Timing = system.TimingQueued
		})
		var q cache.QueueStats
		for i := range queued.Queues {
			addQueueStats(&q, queued.Queues[i].Q)
		}
		ratio := 0.0
		if analytic.IPC() > 0 {
			ratio = queued.IPC() / analytic.IPC()
		}
		ratios = append(ratios, ratio)
		addQueueStats(&totals, q)
		t.AddRowf(w, analytic.IPC(), queued.IPC(), ratio,
			q.RQFull, q.WQForward, q.PQMerged, q.MSHRFull)
	}
	sum := map[string]float64{
		"ipc-ratio":  stats.GeoMean(ratios),
		"rq-full":    float64(totals.RQFull),
		"wq-forward": float64(totals.WQForward),
		"pq-merged":  float64(totals.PQMerged),
		"mshr-full":  float64(totals.MSHRFull),
	}
	t.AddRowf("geomean", "", "", stats.GeoMean(ratios), "", "", "", "")
	return &Report{
		ID:    "queues",
		Title: "Queued vs analytic timing: IPC and queue backpressure under the full +TEMPO stack",
		Table: t,
		Notes: []string{
			"queued timing bounds per-level RQ/WQ/PQ/VAPQ deques and MSHR occupancy; the analytic model admits unbounded parallelism",
			"rq-full and mshr-full count stall cycles; wq-forward and pq-merged count coalesced requests",
		},
		Summary: sum,
	}
}

// addQueueStats folds one QueueLevel's counters into an aggregate (the
// system package keeps its own copy for Result assembly).
func addQueueStats(dst *cache.QueueStats, st cache.QueueStats) {
	dst.RQFull += st.RQFull
	dst.RQMerged += st.RQMerged
	dst.WQFull += st.WQFull
	dst.WQForward += st.WQForward
	dst.PQFull += st.PQFull
	dst.PQMerged += st.PQMerged
	dst.VAPQFull += st.VAPQFull
	dst.MSHRFull += st.MSHRFull
	dst.Enqueued += st.Enqueued
	dst.Drained += st.Drained
}
