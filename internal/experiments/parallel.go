package experiments

import "sync"

// forEachIndex runs f(0..n-1) on separate goroutines and waits for all of
// them. Simulation concurrency is still bounded by the runner's worker pool
// (goroutines block in Pool.Run), so fanning out here costs only scheduling.
// Panics are captured per index and the lowest-index one re-raised on the
// caller, matching sequential behavior.
func forEachIndex(n int, f func(i int)) {
	if n == 1 {
		f(0)
		return
	}
	panics := make([]any, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			f(i)
		}(i)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}
