package experiments

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"atcsim/internal/faultinject"
	"atcsim/internal/metrics"
	"atcsim/internal/system"
)

// TestMetricsEndpointsAfterSweep drives a small sweep with the registry
// attached and scrapes the three live endpoints: /metrics must be
// OpenMetrics-clean with the full cross-subsystem series set, /runs must
// show every run key in a terminal state, and /healthz must report ok.
func TestMetricsEndpointsAfterSweep(t *testing.T) {
	reg := metrics.New()
	rec := metrics.NewFlightRecorder(0)
	r, err := NewRunnerWith(engineScale(), Options{Jobs: 2, Metrics: reg, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Cancel()
	for _, w := range []string{"xalancbmk", "pr"} {
		if _, err := r.TryRun("baseline", w, nil); err != nil {
			t.Fatal(err)
		}
	}

	ts := httptest.NewServer((&metrics.Server{
		Registry: reg, Runs: r.RunsTable(), Recorder: rec,
	}).Handler())
	defer ts.Close()
	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status = %d", code)
	}
	if issues := metrics.Lint([]byte(body)); len(issues) > 0 {
		t.Errorf("/metrics does not lint clean: %v", issues)
	}
	if n := reg.Len(); n < 25 {
		t.Errorf("registered series = %d, want >= 25", n)
	}
	// One representative series per subsystem: cache, TLB, PSC, walker,
	// DRAM, prefetcher, CPU and the runner itself.
	for _, want := range []string{
		`cache_accesses_total{class="non-replay",level="llc"}`,
		`tlb_misses_total{kind="stlb"}`,
		"psc_lookups_total",
		"ptw_walks_total",
		"dram_reads_total",
		`prefetch_issued_total{level="l2"}`,
		`cpu_stall_cycles_total{class="translation"}`,
		`runner_runs_total{outcome="ok"} 2`,
		`runner_run_states{state="done"} 2`,
		"flightrecorder_events_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get("/healthz")
	if code != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body = get("/runs")
	if code != 200 {
		t.Fatalf("/runs status = %d", code)
	}
	var runs struct {
		Counts map[string]int `json:"counts"`
		Runs   []struct {
			Key      string `json:"key"`
			State    string `json:"state"`
			Attempts int    `json:"attempts"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatalf("/runs is not JSON: %v\n%s", err, body)
	}
	if runs.Counts["done"] != 2 || len(runs.Runs) != 2 {
		t.Errorf("/runs = %+v", runs)
	}
	for _, ri := range runs.Runs {
		if ri.State != "done" || ri.Attempts != 1 || !strings.HasPrefix(ri.Key, "baseline/") {
			t.Errorf("run entry = %+v", ri)
		}
	}

	code, body = get("/flightrecorder")
	if code != 200 || !strings.Contains(body, `"kind":"run-done"`) {
		t.Errorf("/flightrecorder = %d %q", code, body)
	}
}

// TestFlightRecorderDeterministicAcrossJobs injects an identity-matched
// fault plan (one permanent panic, one healing transient) into concurrent
// sweeps at jobs=1 and jobs=8 and asserts the canonical flight-recorder
// dumps are byte-identical — events carry no timestamps and fault rules
// match stable run identities, so the schedule cannot leak in.
func TestFlightRecorderDeterministicAcrossJobs(t *testing.T) {
	sweep := func(jobs int, sink string) string {
		rec := metrics.NewFlightRecorder(4096)
		rec.SetSink(sink)
		plan := faultinject.NewPlan(1,
			faultinject.Rule{Site: faultinject.SiteRun, Match: "tempo/pr",
				Kind: faultinject.KindPanic},
			faultinject.Rule{Site: faultinject.SiteRun, Match: "baseline/xalancbmk",
				Kind: faultinject.KindTransient, Until: 1},
		)
		r, err := NewRunnerWith(engineScale(), Options{
			Jobs: jobs, Faults: plan, Retry: fastRetry(), Recorder: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Cancel()
		var wg sync.WaitGroup
		for _, label := range []string{"baseline", "tempo"} {
			for _, w := range []string{"xalancbmk", "pr"} {
				wg.Add(1)
				go func(label, w string) {
					defer wg.Done()
					var mod func(*system.Config)
					if label == "tempo" {
						mod = func(c *system.Config) { c.Apply(system.TEMPO) }
					}
					_, _ = r.TryRun(label, w, mod) // tempo/pr fails by design
				}(label, w)
			}
		}
		wg.Wait()
		var buf bytes.Buffer
		if _, err := rec.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	sinkA := filepath.Join(t.TempDir(), "fr.jsonl")
	dumpA := sweep(1, sinkA)
	dumpB := sweep(8, "")
	if dumpA != dumpB {
		t.Errorf("canonical dumps differ between jobs=1 and jobs=8:\n--- jobs=1 ---\n%s--- jobs=8 ---\n%s", dumpA, dumpB)
	}
	for _, want := range []string{
		`"kind":"run-started","run":"tempo/pr"`,
		`"kind":"fault-injected","run":"tempo/pr"`,
		`"kind":"run-failed","run":"tempo/pr"`,
		`"kind":"panic","run":"tempo/pr"`,
		`"kind":"run-retried","run":"baseline/xalancbmk","attempt":2`,
		`"kind":"run-done","run":"baseline/xalancbmk"`,
	} {
		if !strings.Contains(dumpA, want) {
			t.Errorf("dump missing %s:\n%s", want, dumpA)
		}
	}

	// The permanent failure must have dumped the post-mortem to the sink.
	raw, err := os.ReadFile(sinkA)
	if err != nil {
		t.Fatalf("no flight-recorder dump on permanent failure: %v", err)
	}
	if !strings.Contains(string(raw), `"kind":"run-failed"`) {
		t.Errorf("sink dump missing the failure:\n%s", raw)
	}
}
