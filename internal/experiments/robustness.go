package experiments

import (
	"atcsim/internal/stats"
)

// Robustness measures how sensitive the headline speedup (full enhancement
// stack vs baseline) is to the synthetic trace instance: every benchmark is
// regenerated with several seeds and the per-seed speedups are compared.
// A reproduction whose result flips sign across seeds would be noise; this
// experiment shows it does not.
//
// Summary keys: mean (grand mean speedup), worstMin (lowest per-seed
// speedup across all benchmarks).
func Robustness(r *Runner) *Report {
	extra := r.Scale().ExtraSeeds
	if len(extra) == 0 {
		// Default: two extra seeds beyond the scale's primary one. Kept
		// local — the runner's scale is shared and must not be mutated.
		extra = []int64{7, 13}
	}
	seeds := append([]int64{r.Scale().Seed}, extra...)

	names := r.Scale().workloads()
	speedups := make([][]float64, len(names))
	forEachIndex(len(names), func(i int) {
		speedups[i] = r.SeededSpeedupsAt(names[i], seeds)
	})

	t := stats.NewTable("benchmark", "mean", "min", "max", "seeds")
	var all []float64
	worstMin := 0.0
	first := true
	for i, w := range names {
		sp := speedups[i]
		mn, mx, sum := sp[0], sp[0], 0.0
		for _, s := range sp {
			sum += s
			if s < mn {
				mn = s
			}
			if s > mx {
				mx = s
			}
		}
		t.AddRowf(w, sum/float64(len(sp)), mn, mx, len(seeds))
		all = append(all, sp...)
		if first || mn < worstMin {
			worstMin = mn
			first = false
		}
	}
	return &Report{
		ID:    "robustness",
		Title: "Seed robustness: full-stack speedup across independently synthesized traces",
		Table: t,
		Notes: []string{
			"each benchmark is regenerated with multiple seeds; the speedup band shows how much of the headline is trace noise",
		},
		Summary: map[string]float64{
			"mean":     mean(all),
			"worstMin": worstMin,
		},
	}
}
