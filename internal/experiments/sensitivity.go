package experiments

import (
	"fmt"

	"atcsim/internal/stats"
	"atcsim/internal/system"
)

// sensitivityWorkloads picks the benchmarks the paper's sensitivity figures
// plot (xalancbmk, canneal, mcf plus one High) intersected with the scale.
func (r *Runner) sensitivityWorkloads() []string {
	want := map[string]bool{"xalancbmk": true, "canneal": true, "mcf": true, "pr": true}
	var out []string
	for _, w := range r.Scale().workloads() {
		if want[w] {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		out = r.Scale().workloads()
	}
	return out
}

// sweep runs a size-sensitivity experiment: for every parameter value, the
// geomean speedup of the full enhancement stack over the same-size
// baseline, per benchmark.
func (r *Runner) sweep(id, title, unit string, values []int, mod func(*system.Config, int), paperNote string) *Report {
	wls := r.sensitivityWorkloads()
	header := []string{"benchmark"}
	for _, v := range values {
		header = append(header, fmt.Sprintf("%d%s", v, unit))
	}
	t := stats.NewTable(header...)
	agg := make(map[int][]float64)
	for _, w := range wls {
		row := []interface{}{w}
		for _, v := range values {
			v := v
			base := r.Run(fmt.Sprintf("%s:base:%d", id, v), w, func(c *system.Config) {
				mod(c, v)
			})
			enh := r.Run(fmt.Sprintf("%s:enh:%d", id, v), w, func(c *system.Config) {
				mod(c, v)
				c.Apply(system.TEMPO)
			})
			sp := enh.SpeedupOver(base)
			row = append(row, sp)
			agg[v] = append(agg[v], sp)
		}
		t.AddRowf(row...)
	}
	row := []interface{}{"geomean"}
	sum := map[string]float64{}
	for _, v := range values {
		g := stats.GeoMean(agg[v])
		row = append(row, g)
		sum[fmt.Sprintf("%d%s", v, unit)] = g
	}
	t.AddRowf(row...)
	return &Report{
		ID:      id,
		Title:   title,
		Table:   t,
		Notes:   []string{paperNote},
		Summary: sum,
	}
}

// Fig18 reports the recall distance of translations at the STLB itself.
//
// Summary keys: beyond50 (fraction of STLB entries recalled after more than
// 50 unique set accesses — the paper's "dead TLB entries").
func Fig18(r *Runner) *Report {
	t := stats.NewTable("benchmark", "<=10", "<=50", "<=100", "<=500", "samples")
	var beyond []float64
	for _, w := range r.Scale().workloads() {
		res := r.Run("recall", w, func(c *system.Config) { c.TrackRecall = true })
		rc := res.Cores[0].STLBRecall
		recallRow(t, w, rc)
		if rc.Valid() {
			beyond = append(beyond, 1-rc.Within(50))
		}
	}
	return &Report{
		ID:    "fig18",
		Title: "Recall distance of translations at the STLB",
		Table: t,
		Notes: []string{
			"paper: >40% of STLB entries have recall distance beyond 50 — bypassing dead entries cannot cover them",
		},
		Summary: map[string]float64{"beyond50": mean(beyond)},
	}
}

// Fig19 sweeps the STLB size (512–4096 entries).
func Fig19(r *Runner) *Report {
	return r.sweep("fig19",
		"STLB sensitivity: speedup of the full enhancements at each STLB size",
		"e", []int{512, 1024, 2048, 4096},
		func(c *system.Config, v int) { c.STLB.Entries = v },
		"paper: gains persist across STLB sizes and shrink as the STLB grows (lower STLB MPKI)")
}

// Fig20 sweeps the L2C size (256KB–1MB).
func Fig20(r *Runner) *Report {
	return r.sweep("fig20",
		"L2C sensitivity: speedup of the full enhancements at each L2 size",
		"KB", []int{256, 512, 768, 1024},
		func(c *system.Config, v int) {
			c.L2.SizeBytes = v << 10
			if v == 768 {
				c.L2.Ways = 12 // keep a power-of-two set count
			}
			if v == 1024 {
				c.L2.Latency = 12 // larger L2 is slower (paper notes this)
			}
		},
		"paper: gains similar at 768KB, slightly lower at 1MB; xalancbmk keeps gaining")
}

// Fig21 sweeps the LLC size (1MB–8MB).
func Fig21(r *Runner) *Report {
	return r.sweep("fig21",
		"LLC sensitivity: speedup of the full enhancements at each LLC size",
		"MB", []int{1, 2, 4, 8},
		func(c *system.Config, v int) { c.LLC.SizeBytes = v << 20 },
		"paper: 6.3% at 1MB declining to 4.2% at 8MB")
}
