package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// EventKind classifies a flight-recorder event.
type EventKind string

// Flight-recorder event kinds, in canonical dump order.
const (
	EventRunStarted  EventKind = "run-started"
	EventRunRetried  EventKind = "run-retried"
	EventRunDone     EventKind = "run-done"
	EventRunFailed   EventKind = "run-failed"
	EventPanic       EventKind = "panic"
	EventFault       EventKind = "fault-injected"
	EventQuarantine  EventKind = "quarantine"
	EventAudit       EventKind = "invariant-audit"
	EventDiskError   EventKind = "disk-error"
	EventSweepCancel EventKind = "sweep-canceled"
)

// kindRank orders kinds within one run's events in the canonical dump.
var kindRank = map[EventKind]int{
	EventRunStarted: 0, EventFault: 1, EventRunRetried: 2, EventDiskError: 3,
	EventQuarantine: 4, EventAudit: 5, EventRunDone: 6, EventRunFailed: 7,
	EventPanic: 8, EventSweepCancel: 9,
}

// Event is one structured flight-recorder record. Events deliberately carry
// no wall-clock timestamps or memory addresses: given a seeded fault plan,
// the recorded set is identical for any worker count, so post-mortems are
// reproducible and diffable (see DumpCanonical).
type Event struct {
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Run is the run identity ("label/benchmark") the event belongs to, or
	// "" for sweep-level events.
	Run string `json:"run,omitempty"`
	// Attempt is the 1-based attempt number, where applicable.
	Attempt int `json:"attempt,omitempty"`
	// Detail is a stable, human-readable elaboration (error text, fault
	// rule, audit verdict).
	Detail string `json:"detail,omitempty"`
}

// FlightRecorder is a fixed-size ring buffer of recent structured events,
// dumped to disk when a run fails permanently (or on demand) so FAILED
// reports come with a post-mortem. Recording is mutex-guarded but
// allocation-free once the ring is warm; this is runner-rate machinery and
// never sits on the simulated memory path. All methods are nil-safe.
type FlightRecorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	total   uint64
	sink    string
}

// DefaultRecorderCapacity bounds the ring when callers pass 0.
const DefaultRecorderCapacity = 1024

// NewFlightRecorder creates a recorder holding the last capacity events
// (DefaultRecorderCapacity when capacity is not positive).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &FlightRecorder{buf: make([]Event, 0, capacity)}
}

// SetSink sets the file path DumpToSink writes. Empty disables dumping.
func (r *FlightRecorder) SetSink(path string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = path
	r.mu.Unlock()
}

// Sink returns the configured dump path ("" when disabled).
func (r *FlightRecorder) Sink() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sink
}

// Record appends one event, overwriting the oldest once the ring is full.
func (r *FlightRecorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	r.wrapped = true
}

// Recordf is Record with a formatted detail string.
func (r *FlightRecorder) Recordf(kind EventKind, run string, attempt int, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: kind, Run: run, Attempt: attempt, Detail: fmt.Sprintf(format, args...)})
}

// Events returns the retained events in arrival order.
func (r *FlightRecorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Total returns how many events were ever recorded (including overwritten
// ones).
func (r *FlightRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events the ring has overwritten.
func (r *FlightRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.buf))
}

// Canonical returns the retained events in canonical order: sorted by run
// identity, then attempt, then kind rank, then detail. Because events carry
// no timestamps and fault plans match stable run identities, the canonical
// dump of a sweep is byte-identical for any -jobs value (as long as the
// ring has not overwritten events; size it generously for chaos tests).
func (r *FlightRecorder) Canonical() []Event {
	evs := r.Events()
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Run != b.Run {
			return a.Run < b.Run
		}
		if a.Attempt != b.Attempt {
			return a.Attempt < b.Attempt
		}
		if kindRank[a.Kind] != kindRank[b.Kind] {
			return kindRank[a.Kind] < kindRank[b.Kind]
		}
		return a.Detail < b.Detail
	})
	return evs
}

// WriteTo writes the canonical dump as JSONL, one event per line.
func (r *FlightRecorder) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, e := range r.Canonical() {
		b, err := json.Marshal(e)
		if err != nil {
			return n, err
		}
		b = append(b, '\n')
		m, err := w.Write(b)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// DumpToSink rewrites the sink file with the current canonical dump
// (atomically, via a temp-file rename). A recorder without a sink is a
// no-op. Called on every permanent run failure, so the newest post-mortem
// always wins.
func (r *FlightRecorder) DumpToSink() error {
	path := r.Sink()
	if path == "" {
		return nil
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := r.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Register exposes recorder occupancy on the registry.
func (r *FlightRecorder) Register(reg *Registry) {
	reg.CounterFunc("flightrecorder_events_total",
		"Structured events recorded by the crash flight recorder.",
		func() float64 { return float64(r.Total()) })
	reg.CounterFunc("flightrecorder_dropped_total",
		"Flight-recorder events overwritten by ring wraparound.",
		func() float64 { return float64(r.Dropped()) })
}
