package metrics

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// RunState is the lifecycle state of one run key in a RunTable.
type RunState string

// Run lifecycle states, in the order a run moves through them. A run served
// from the on-disk result cache goes straight to StateCached.
const (
	StateQueued   RunState = "queued"
	StateRunning  RunState = "running"
	StateRetrying RunState = "retrying"
	StateDone     RunState = "done"
	StateFailed   RunState = "failed"
	StateCached   RunState = "cached"
)

// runStates lists every state for snapshot counting.
var runStates = []RunState{StateQueued, StateRunning, StateRetrying, StateDone, StateFailed, StateCached}

// RunInfo is the live view of one run, as served by /runs.
type RunInfo struct {
	// Key is the run's experiment identity ("label/benchmark").
	Key string `json:"key"`
	// Hash is the canonical run-key hash (the disk-cache identity).
	Hash string `json:"hash,omitempty"`
	// State is the current lifecycle state.
	State RunState `json:"state"`
	// Attempts is how many attempts have started (0 while queued).
	Attempts int `json:"attempts"`
	// ElapsedMS is wall time since the run was first queued, frozen when it
	// reaches a terminal state.
	ElapsedMS int64 `json:"elapsed_ms"`
	// Error is the final failure reason (failed runs only).
	Error string `json:"error,omitempty"`
}

// runEntry is the mutable table entry behind a RunInfo.
type runEntry struct {
	info    RunInfo
	started time.Time
	frozen  bool
}

// RunTable tracks the live state of every run key a sweep has touched —
// the data behind the /runs endpoint. All methods are nil-safe and cheap
// (one mutex, no allocation on state transitions), but this is runner-rate
// machinery, not per-request: it is updated a handful of times per
// simulation, never on the simulated memory path.
type RunTable struct {
	mu    sync.Mutex
	runs  map[string]*runEntry
	order []string
	now   func() time.Time // test seam
}

// NewRunTable creates an empty run table.
func NewRunTable() *RunTable {
	return &RunTable{runs: make(map[string]*runEntry), now: time.Now}
}

// entry finds or creates the entry for key; callers hold mu.
func (t *RunTable) entry(key string) *runEntry {
	e, ok := t.runs[key]
	if !ok {
		e = &runEntry{info: RunInfo{Key: key, State: StateQueued}, started: t.now()}
		t.runs[key] = e
		t.order = append(t.order, key)
	}
	return e
}

// Queued marks a run as queued with its canonical hash.
func (t *RunTable) Queued(key, hash string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entry(key)
	e.info.Hash = hash
	e.info.State = StateQueued
}

// Running marks attempt number attempt (1-based) as executing; attempts
// after the first show as retrying.
func (t *RunTable) Running(key string, attempt int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entry(key)
	e.info.Attempts = attempt
	if attempt > 1 {
		e.info.State = StateRetrying
	} else {
		e.info.State = StateRunning
	}
}

// finish moves a run to a terminal state and freezes its elapsed time.
func (t *RunTable) finish(key string, state RunState, attempts int, errMsg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entry(key)
	e.info.State = state
	if attempts > e.info.Attempts {
		e.info.Attempts = attempts
	}
	e.info.Error = errMsg
	e.info.ElapsedMS = t.now().Sub(e.started).Milliseconds()
	e.frozen = true
}

// Done marks a run as completed successfully after attempts attempts.
func (t *RunTable) Done(key string, attempts int) { t.finish(key, StateDone, attempts, "") }

// Failed marks a run as permanently failed.
func (t *RunTable) Failed(key string, attempts int, errMsg string) {
	t.finish(key, StateFailed, attempts, errMsg)
}

// Cached marks a run as served from the on-disk result cache.
func (t *RunTable) Cached(key string) { t.finish(key, StateCached, 0, "") }

// Snapshot returns every run in first-seen order, with live elapsed times
// computed at call time, plus per-state counts.
func (t *RunTable) Snapshot() ([]RunInfo, map[RunState]int) {
	counts := make(map[RunState]int, len(runStates))
	for _, s := range runStates {
		counts[s] = 0
	}
	if t == nil {
		return nil, counts
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RunInfo, 0, len(t.order))
	now := t.now()
	for _, key := range t.order {
		e := t.runs[key]
		info := e.info
		if !e.frozen {
			info.ElapsedMS = now.Sub(e.started).Milliseconds()
		}
		out = append(out, info)
		counts[info.State]++
	}
	return out, counts
}

// Count returns the number of runs currently in the given state.
func (t *RunTable) Count(state RunState) int {
	_, counts := t.Snapshot()
	return counts[state]
}

// Register exposes per-state run counts as gauges
// (runner_run_states{state="running"} …) on the registry. The family is
// deliberately NOT runner_runs: that is already the OpenMetrics family name
// of the runner_runs_total counter, and one family cannot be both kinds.
func (t *RunTable) Register(r *Registry) {
	for _, s := range runStates {
		state := s
		r.GaugeFunc("runner_run_states", "Number of run keys per lifecycle state.",
			func() float64 { return float64(t.Count(state)) }, L("state", string(state)))
	}
}

// WriteJSON renders the /runs payload: the run list plus per-state counts.
func (t *RunTable) WriteJSON(w io.Writer) error {
	runs, counts := t.Snapshot()
	payload := struct {
		Counts map[RunState]int `json:"counts"`
		Runs   []RunInfo        `json:"runs"`
	}{Counts: counts, Runs: runs}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}
