package metrics

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
)

// WriteOpenMetrics renders the registry in OpenMetrics text format:
// families grouped with one # HELP / # TYPE pair each, samples in
// registration order within a family, and a terminating # EOF line.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	samples := r.Gather()
	r.mu.RLock()
	helps := make(map[string]string, len(r.helps))
	for k, v := range r.helps {
		helps[k] = v
	}
	r.mu.RUnlock()

	seen := make(map[string]bool, len(samples))
	for _, s := range samples {
		if !seen[s.Family] {
			seen[s.Family] = true
			if h := helps[s.Family]; h != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", s.Family, h)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.Family, s.Kind)
		}
		if s.Hist != nil {
			writeHistogram(bw, s)
			continue
		}
		fmt.Fprintf(bw, "%s %s\n", s.Name, formatValue(s.Value))
	}
	fmt.Fprint(bw, "# EOF\n")
	return bw.Flush()
}

// writeHistogram renders one histogram sample's buckets, sum and count.
// Bucket names splice the le label into the sample's existing label set.
func writeHistogram(w io.Writer, s Sample) {
	h := s.Hist
	cum := uint64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatValue(h.bounds[i])
		}
		fmt.Fprintf(w, "%s %d\n", spliceLabel(s.Name, "_bucket", "le", le), cum)
	}
	fmt.Fprintf(w, "%s %s\n", spliceSuffix(s.Name, "_sum"), formatValue(h.Sum()))
	fmt.Fprintf(w, "%s %d\n", spliceSuffix(s.Name, "_count"), h.Count())
}

// spliceSuffix inserts a suffix into a rendered sample name before any
// label block: "x{a=\"b\"}" + "_sum" → "x_sum{a=\"b\"}".
func spliceSuffix(full, suffix string) string {
	if i := strings.IndexByte(full, '{'); i >= 0 {
		return full[:i] + suffix + full[i:]
	}
	return full + suffix
}

// spliceLabel inserts a suffix and one extra label into a rendered name.
func spliceLabel(full, suffix, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if i := strings.IndexByte(full, '{'); i >= 0 {
		return full[:i] + suffix + "{" + extra + "," + full[i+1:]
	}
	return full + suffix + "{" + extra + "}"
}

// formatValue renders a float the way Prometheus expects: integral values
// without an exponent or trailing zeros, everything else via %g.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSONLSnapshot writes one JSONL line mapping every rendered series
// name to its current value — the sweep-side analogue of a heartbeat row.
// Keys are emitted in registration order, so consecutive lines diff
// cleanly. seq is a caller-maintained snapshot index.
func (r *Registry) WriteJSONLSnapshot(w io.Writer, seq int) error {
	samples := r.Gather()
	var b strings.Builder
	fmt.Fprintf(&b, `{"snapshot":%d,"series":{`, seq)
	for i, s := range samples {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%s", s.Name, formatValue(s.Value))
	}
	b.WriteString("}}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// expvarOnce guards against double expvar.Publish panics when tests build
// multiple CLIs in one process.
var expvarOnce sync.Map

// PublishExpvar exposes the registry under the given expvar name as a
// map[series]value, so any /debug/vars endpoint (e.g. atcsim -pprof-addr)
// carries the full metrics view without a second registry. Repeated calls
// with the same name rebind the variable to the latest registry.
func PublishExpvar(name string, r *Registry) {
	v, loaded := expvarOnce.LoadOrStore(name, &registryVar{r: r})
	rv := v.(*registryVar)
	rv.mu.Lock()
	rv.r = r
	rv.mu.Unlock()
	if !loaded {
		expvar.Publish(name, rv)
	}
}

// registryVar adapts a Registry to the expvar.Var interface.
type registryVar struct {
	mu sync.Mutex
	r  *Registry
}

// String renders the registry as a JSON object for expvar.
func (v *registryVar) String() string {
	v.mu.Lock()
	r := v.r
	v.mu.Unlock()
	var b strings.Builder
	b.WriteByte('{')
	for i, s := range r.Gather() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%s", s.Name, formatValue(s.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// Exposition-lint patterns: one compiled set shared by Lint callers (the
// lint_test.go gate and the CI scrape job's offline check).
var (
	lintSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$`)
	lintMetaRe   = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
	lintLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// Lint validates an OpenMetrics exposition: every line is either metadata
// (# HELP / # TYPE), a well-formed sample, or the final # EOF; counter
// samples end in _total (or histogram series suffixes); each family's TYPE
// precedes its samples; no series name repeats. It returns every problem
// found (empty means clean).
func Lint(exposition []byte) []string {
	var problems []string
	typed := make(map[string]string) // family → declared type
	seen := make(map[string]bool)    // full sample names
	lines := strings.Split(string(exposition), "\n")
	sawEOF := false
	for n, line := range lines {
		if line == "" {
			if n != len(lines)-1 {
				problems = append(problems, fmt.Sprintf("line %d: blank line inside exposition", n+1))
			}
			continue
		}
		if sawEOF {
			problems = append(problems, fmt.Sprintf("line %d: content after # EOF", n+1))
			continue
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !lintMetaRe.MatchString(line) {
				problems = append(problems, fmt.Sprintf("line %d: malformed metadata %q", n+1, line))
				continue
			}
			f := strings.Fields(line)
			if f[1] == "TYPE" {
				typed[f[2]] = f[3]
			}
			continue
		}
		m := lintSampleRe.FindStringSubmatch(line)
		if m == nil {
			problems = append(problems, fmt.Sprintf("line %d: malformed sample %q", n+1, line))
			continue
		}
		name, labels := m[1], m[2]
		if labels != "" {
			for _, lv := range splitLabels(labels[1 : len(labels)-1]) {
				if !lintLabelRe.MatchString(lv) {
					problems = append(problems, fmt.Sprintf("line %d: malformed label %q", n+1, lv))
				}
			}
		}
		full := name + labels
		if seen[full] {
			problems = append(problems, fmt.Sprintf("line %d: duplicate series %s", n+1, full))
		}
		seen[full] = true
		family, ok := lintFamily(name, typed)
		if !ok {
			problems = append(problems, fmt.Sprintf("line %d: sample %s has no preceding # TYPE", n+1, name))
			continue
		}
		if typed[family] == "counter" && !strings.HasSuffix(name, "_total") {
			problems = append(problems, fmt.Sprintf("line %d: counter sample %s lacks _total suffix", n+1, name))
		}
	}
	if !sawEOF {
		problems = append(problems, "exposition does not end with # EOF")
	}
	return problems
}

// lintFamily resolves a sample name to its declared family, accounting for
// the counter _total and histogram _bucket/_sum/_count suffix conventions.
func lintFamily(name string, typed map[string]string) (string, bool) {
	if _, ok := typed[name]; ok {
		return name, true
	}
	for _, suf := range []string{"_total", "_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if _, ok := typed[base]; ok {
				return base, true
			}
		}
	}
	return "", false
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
