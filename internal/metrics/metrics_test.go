package metrics

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("widgets_total", "Widgets made.", L("kind", "round"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("queue_depth", "Live queue depth.")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
	// Idempotent re-registration returns the same backing series.
	c2 := r.Counter("widgets_total", "", L("kind", "round"))
	c2.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("re-registered counter diverged: %d, want 6", got)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c Counter
	var g Gauge
	var h *Histogram
	var rt *RunTable
	var fr *FlightRecorder
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(2)
	rt.Queued("a", "h")
	rt.Running("a", 1)
	rt.Done("a", 1)
	fr.Record(Event{Kind: EventRunStarted})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || fr.Total() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	runs, counts := rt.Snapshot()
	if len(runs) != 0 || counts[StateDone] != 0 {
		t.Fatal("nil run table must snapshot empty")
	}
}

func TestLabelOrderCanonicalized(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "", L("b", "2"), L("a", "1"))
	b := r.Counter("x_total", "", L("a", "1"), L("b", "2"))
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("label order created distinct series: %d", a.Value())
	}
}

func TestCounterNameMustEndInTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for counter without _total suffix")
		}
	}()
	New().Counter("bad_name", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.NewHistogram("latency_seconds", "Run latency.", []float64{1, 10})
	for _, v := range []float64{0.5, 0.7, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 56.2 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="10"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		`latency_seconds_count 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestOpenMetricsExpositionLints(t *testing.T) {
	r := New()
	r.Counter("cache_hits_total", "Cache hits.", L("level", "llc")).Add(10)
	r.Counter("cache_hits_total", "Cache hits.", L("level", "l2")).Add(7)
	r.Gauge("runner_inflight", "Runs in flight.").Set(2)
	r.GaugeFunc("up", "Always one.", func() float64 { return 1 })
	r.NewHistogram("run_seconds", "Run durations.", []float64{0.1, 1, 10}).Observe(0.25)
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if problems := Lint(buf.Bytes()); len(problems) > 0 {
		t.Fatalf("lint problems in own exposition:\n%s\n---\n%s",
			strings.Join(problems, "\n"), buf.String())
	}
	text := buf.String()
	if !strings.Contains(text, "# TYPE cache_hits counter") {
		t.Errorf("counter family TYPE missing _total strip:\n%s", text)
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Errorf("exposition must end with # EOF")
	}
}

func TestLintCatchesMalformed(t *testing.T) {
	bad := "cache_hits_total{level=\"llc\"} 1\n# EOF\n"        // sample before TYPE
	dup := "# TYPE x gauge\nx 1\nx 1\n# EOF\n"                 // duplicate series
	noEOF := "# TYPE x gauge\nx 1\n"                           // missing EOF
	badCounter := "# TYPE y counter\ny 1\n# EOF\n"             // counter without _total
	garbled := "# TYPE x gauge\nx{level=llc} one bad\n# EOF\n" // malformed sample
	for name, in := range map[string]string{"untyped": bad, "dup": dup,
		"noeof": noEOF, "counter": badCounter, "garbled": garbled} {
		if problems := Lint([]byte(in)); len(problems) == 0 {
			t.Errorf("%s: lint accepted malformed exposition %q", name, in)
		}
	}
}

func TestJSONLSnapshot(t *testing.T) {
	r := New()
	r.Counter("a_total", "").Add(3)
	r.Gauge("b", "").Set(1.5)
	var buf bytes.Buffer
	if err := r.WriteJSONLSnapshot(&buf, 7); err != nil {
		t.Fatal(err)
	}
	var row struct {
		Snapshot int                `json:"snapshot"`
		Series   map[string]float64 `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &row); err != nil {
		t.Fatalf("snapshot line is not JSON: %v\n%s", err, buf.String())
	}
	if row.Snapshot != 7 || row.Series["a_total"] != 3 || row.Series["b"] != 1.5 {
		t.Fatalf("snapshot = %+v", row)
	}
}

func TestRunTableLifecycle(t *testing.T) {
	rt := NewRunTable()
	rt.Queued("base/mcf", "abc123")
	rt.Running("base/mcf", 1)
	rt.Running("base/mcf", 2)
	rt.Failed("base/mcf", 2, "boom")
	rt.Queued("base/pr", "def456")
	rt.Running("base/pr", 1)
	rt.Done("base/pr", 1)
	rt.Cached("base/bc")

	runs, counts := rt.Snapshot()
	if len(runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(runs))
	}
	if runs[0].State != StateFailed || runs[0].Attempts != 2 || runs[0].Error != "boom" {
		t.Fatalf("failed run = %+v", runs[0])
	}
	if runs[1].State != StateDone || runs[2].State != StateCached {
		t.Fatalf("states = %v %v", runs[1].State, runs[2].State)
	}
	if counts[StateFailed] != 1 || counts[StateDone] != 1 || counts[StateCached] != 1 {
		t.Fatalf("counts = %v", counts)
	}

	var buf bytes.Buffer
	if err := rt.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Counts map[string]int `json:"counts"`
		Runs   []RunInfo      `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &payload); err != nil {
		t.Fatalf("/runs payload is not JSON: %v", err)
	}
	if payload.Counts["failed"] != 1 || len(payload.Runs) != 3 {
		t.Fatalf("payload = %+v", payload)
	}
}

func TestFlightRecorderRingAndCanonicalOrder(t *testing.T) {
	fr := NewFlightRecorder(4)
	fr.Record(Event{Kind: EventRunStarted, Run: "z/b", Attempt: 1})
	fr.Record(Event{Kind: EventRunStarted, Run: "a/b", Attempt: 1})
	fr.Record(Event{Kind: EventRunFailed, Run: "a/b", Attempt: 2, Detail: "x"})
	fr.Record(Event{Kind: EventRunRetried, Run: "a/b", Attempt: 2})
	canon := fr.Canonical()
	want := []EventKind{EventRunStarted, EventRunRetried, EventRunFailed, EventRunStarted}
	for i, k := range want {
		if canon[i].Kind != k {
			t.Fatalf("canonical[%d] = %+v, want kind %s", i, canon[i], k)
		}
	}
	// Overflow: the oldest events are overwritten, Total/Dropped account.
	fr.Record(Event{Kind: EventQuarantine, Run: "q/q"})
	if fr.Total() != 5 || fr.Dropped() != 1 {
		t.Fatalf("total=%d dropped=%d", fr.Total(), fr.Dropped())
	}
	evs := fr.Events()
	if len(evs) != 4 || evs[0].Run != "a/b" {
		t.Fatalf("ring contents wrong: %+v", evs)
	}
}

func TestFlightRecorderDumpToSink(t *testing.T) {
	fr := NewFlightRecorder(8)
	path := t.TempDir() + "/flight.jsonl"
	fr.SetSink(path)
	fr.Record(Event{Kind: EventRunFailed, Run: "a/b", Attempt: 3, Detail: "panic: boom"})
	if err := fr.DumpToSink(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := fr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := readFile(t, path)
	if raw != buf.String() {
		t.Fatalf("sink dump diverges from WriteTo:\n%q\n%q", raw, buf.String())
	}
	var ev Event
	if err := json.Unmarshal([]byte(strings.Split(raw, "\n")[0]), &ev); err != nil {
		t.Fatalf("dump line is not JSON: %v", err)
	}
	if ev.Kind != EventRunFailed || ev.Attempt != 3 {
		t.Fatalf("dumped event = %+v", ev)
	}
}

func TestServerEndpoints(t *testing.T) {
	r := New()
	r.Counter("cache_hits_total", "h", L("level", "llc")).Add(2)
	rt := NewRunTable()
	rt.Queued("base/pr", "h1")
	fr := NewFlightRecorder(8)
	fr.Record(Event{Kind: EventRunStarted, Run: "base/pr", Attempt: 1})
	srv := &Server{Registry: r, Runs: rt, Recorder: fr}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String(), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != 200 || !strings.Contains(ctype, "openmetrics-text") {
		t.Fatalf("/metrics code=%d ctype=%q", code, ctype)
	}
	if problems := Lint([]byte(body)); len(problems) > 0 {
		t.Fatalf("/metrics fails lint: %v", problems)
	}
	if code, body, _ := get("/healthz"); code != 200 || !strings.Contains(body, `"ok"`) {
		t.Fatalf("/healthz code=%d body=%q", code, body)
	}
	if code, body, _ := get("/runs"); code != 200 || !strings.Contains(body, "base/pr") {
		t.Fatalf("/runs code=%d body=%q", code, body)
	}
	if code, body, _ := get("/flightrecorder"); code != 200 || !strings.Contains(body, "run-started") {
		t.Fatalf("/flightrecorder code=%d body=%q", code, body)
	}

	unhealthy := &Server{Registry: r, Healthy: func() bool { return false }}
	ts2 := httptest.NewServer(unhealthy.Handler())
	defer ts2.Close()
	resp, err := ts2.Client().Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("unhealthy /healthz code = %d, want 503", resp.StatusCode)
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := New()
	c := r.Counter("hits_total", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
