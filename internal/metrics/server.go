package metrics

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// openMetricsContentType is the content type Prometheus negotiates for
// OpenMetrics text exposition.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Server bundles the registry and live tables one HTTP endpoint serves.
type Server struct {
	// Registry backs /metrics (required).
	Registry *Registry
	// Runs backs /runs (optional; nil serves an empty table).
	Runs *RunTable
	// Recorder backs /flightrecorder (optional).
	Recorder *FlightRecorder
	// Healthy, when non-nil, gates /healthz; nil means always healthy.
	Healthy func() bool
}

// Handler returns the endpoint mux:
//
//	/metrics        OpenMetrics text exposition of every registered series
//	/healthz        liveness: 200 {"status":"ok"} (503 when Healthy() is false)
//	/runs           live JSON of per-run-key state (see RunTable)
//	/flightrecorder canonical JSONL dump of recent structured events
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", openMetricsContentType)
		if err := s.Registry.WriteOpenMetrics(w); err != nil {
			// Headers are gone; nothing to do but drop the connection.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if s.Healthy != nil && !s.Healthy() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "{\"status\":\"unhealthy\",\"series\":%d}\n", s.Registry.Len())
			return
		}
		fmt.Fprintf(w, "{\"status\":\"ok\",\"series\":%d}\n", s.Registry.Len())
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.Runs.WriteJSON(w); err != nil {
			return
		}
	})
	mux.HandleFunc("/flightrecorder", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		s.Recorder.WriteTo(w)
	})
	return mux
}

// Serve starts the endpoint on addr (host:port; port 0 picks a free one)
// in a background goroutine and returns the bound address. The server
// lives until the process exits — it serves diagnostics, so tearing it
// down with the sweep would hide exactly the state a stuck shutdown needs.
func (s *Server) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
