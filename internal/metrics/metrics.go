// Package metrics is the simulator's unified, allocation-free metrics
// layer: a typed registry of counters, gauges and bounded histograms with
// hierarchical names and labels (`cache_misses_total{level="llc"}`),
// exposed as Prometheus/OpenMetrics text, JSONL snapshots, expvar, and a
// small HTTP server (/metrics, /healthz, /runs, /flightrecorder).
//
// Design rules, in descending order of importance:
//
//   - The hot path never pays for observability. Registry-owned series are
//     single atomic words bumped with one instruction and zero heap
//     allocations; simulator-internal counters stay plain uint64 fields and
//     are folded into the registry only at snapshot boundaries (end of run,
//     heartbeat tick) — never per access.
//   - Everything is nil-safe. A nil *Counter, *Gauge, *Histogram, *RunTable
//     or *FlightRecorder is a no-op, so components hold possibly-nil handles
//     and skip instrumentation with one predictable branch.
//   - Reads never block writes for long: registration takes a write lock,
//     Gather a read lock, and the series values themselves are atomics, so a
//     scrape concurrent with a sweep observes a consistent-enough snapshot
//     without stalling workers.
//
// Naming follows the Prometheus conventions: snake_case families,
// `_total` suffix on counters, unit suffixes (`_seconds`, `_bytes`) where
// applicable, and label values carrying the hierarchy dimension
// (level/kind/outcome) rather than baked-in name variants.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the exposition type of a series family.
type Kind uint8

// Series kinds, matching the OpenMetrics type vocabulary.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the OpenMetrics type name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one name="value" dimension of a series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// series is one registered time series. The value is either an atomic word
// (val) or a read-callback (fn); exactly one is active.
type series struct {
	family string // family name (counter families exclude the _total suffix)
	full   string // fully-rendered sample name with labels
	kind   Kind
	val    atomic.Uint64 // counters: count; gauges: math.Float64bits
	fn     func() float64
	hist   *Histogram
}

// Counter is a monotonically-increasing series backed by one atomic word.
// All methods are nil-safe and allocation-free.
type Counter struct{ s *series }

// Inc adds 1.
func (c Counter) Inc() { c.Add(1) }

// Add increments the counter by n.
func (c Counter) Add(n uint64) {
	if c.s != nil {
		c.s.val.Add(n)
	}
}

// Value returns the current count.
func (c Counter) Value() uint64 {
	if c.s == nil {
		return 0
	}
	return c.s.val.Load()
}

// Gauge is a set-to-current-value series backed by one atomic word holding
// float64 bits. All methods are nil-safe and allocation-free.
type Gauge struct{ s *series }

// Set stores v as the gauge's current value.
func (g Gauge) Set(v float64) {
	if g.s != nil {
		g.s.val.Store(math.Float64bits(v))
	}
}

// SetUint is Set for integral values.
func (g Gauge) SetUint(v uint64) { g.Set(float64(v)) }

// Value returns the gauge's current value.
func (g Gauge) Value() float64 {
	if g.s == nil {
		return 0
	}
	return math.Float64frombits(g.s.val.Load())
}

// Histogram is a bounded-bucket distribution: observations bump one atomic
// bucket counter plus the sum/count words, so the hot path stays
// allocation-free; bucket aggregation happens only at exposition time.
// Bounds are upper bucket edges; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1, last is +Inf
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits accumulated via CAS
}

// Observe records one sample. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry holds every registered series. Registration is idempotent: a
// second registration of the same name+labels returns the existing series,
// so independent components can share families without coordination.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series // by full sample name
	order  []string           // registration order of full names
	helps  map[string]string  // per-family help text (first writer wins)
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// renderName builds the full sample name. Labels are sorted by key so the
// same logical series always renders identically.
func renderName(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// familyOf strips the counter sample suffix so `x_total` exposes under
// family `x`, per the OpenMetrics counter convention.
func familyOf(name string, kind Kind) string {
	if kind == KindCounter {
		return strings.TrimSuffix(name, "_total")
	}
	return name
}

// register adds (or finds) a series. A name registered twice with a
// different kind panics: that is a programming error, not a runtime
// condition.
func (r *Registry) register(name, help string, kind Kind, labels []Label) *series {
	full := renderName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[full]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", full, kind, s.kind))
		}
		return s
	}
	s := &series{family: familyOf(name, kind), full: full, kind: kind}
	r.series[full] = s
	r.order = append(r.order, full)
	r.help(s.family, help)
	return s
}

// help records a family's help string (first writer wins); callers hold mu.
func (r *Registry) help(family, help string) {
	if help == "" {
		return
	}
	if r.helps == nil {
		r.helps = make(map[string]string)
	}
	if _, ok := r.helps[family]; !ok {
		r.helps[family] = help
	}
}

// Counter registers (or finds) a counter. Counter names must end in
// "_total" so the exposition obeys the OpenMetrics counter convention.
func (r *Registry) Counter(name, help string, labels ...Label) Counter {
	if !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("metrics: counter %q must end in _total", name))
	}
	return Counter{s: r.register(name, help, KindCounter, labels)}
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) Gauge {
	return Gauge{s: r.register(name, help, KindGauge, labels)}
}

// CounterFunc registers a counter whose value is read from fn at gather
// time. fn must be safe for concurrent use (e.g. read atomics only) — it is
// called from the scrape goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("metrics: counter %q must end in _total", name))
	}
	r.register(name, help, KindCounter, labels).fn = fn
}

// GaugeFunc registers a gauge whose value is read from fn at gather time.
// fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, KindGauge, labels).fn = fn
}

// NewHistogram registers a bounded histogram with the given upper bucket
// bounds (ascending; an implicit +Inf bucket is appended).
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.register(name, help, KindHistogram, labels)
	if s.hist == nil {
		s.hist = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1),
		}
	}
	return s.hist
}

// Sample is one gathered series value.
type Sample struct {
	// Name is the fully-rendered sample name including labels.
	Name string
	// Family is the series' family name (no _total suffix, no labels).
	Family string
	Kind   Kind
	Value  float64
	// Hist is non-nil for histogram samples; Value is then the count.
	Hist *Histogram
}

// Gather returns every series' current value in registration order.
func (r *Registry) Gather() []Sample {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Sample, 0, len(r.order))
	for _, full := range r.order {
		s := r.series[full]
		smp := Sample{Name: s.full, Family: s.family, Kind: s.kind, Hist: s.hist}
		switch {
		case s.fn != nil:
			smp.Value = s.fn()
		case s.kind == KindGauge:
			smp.Value = math.Float64frombits(s.val.Load())
		case s.hist != nil:
			smp.Value = float64(s.hist.Count())
		default:
			smp.Value = float64(s.val.Load())
		}
		out = append(out, smp)
	}
	return out
}

// Len returns the number of registered series.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.series)
}
