package repl

// lru is the least-recently-used baseline. It keeps a global monotonically
// increasing use counter and per-block last-use stamps; the victim is the
// block with the smallest stamp.
type lru struct {
	ways  int
	stamp []uint64 // sets*ways last-use stamps
	clock uint64
}

func newLRU(sets, ways int) *lru {
	return &lru{ways: ways, stamp: make([]uint64, sets*ways)}
}

func (p *lru) Name() string { return "lru" }

func (p *lru) idx(set, way int) int { return set*p.ways + way }

func (p *lru) touch(set, way int) {
	p.clock++
	p.stamp[p.idx(set, way)] = p.clock
}

func (p *lru) Victim(set int, _ *Access, evictable func(int) bool) int {
	base := set * p.ways
	best := -1
	var bestStamp uint64
	for w := 0; w < p.ways; w++ {
		if !evictable(w) {
			continue
		}
		if s := p.stamp[base+w]; best < 0 || s < bestStamp {
			best, bestStamp = w, s
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

func (p *lru) Insert(set, way int, a *Access) {
	if a.Distant {
		// Distant insertions go straight to LRU position.
		p.stamp[p.idx(set, way)] = 0
		return
	}
	p.touch(set, way)
}

func (p *lru) Hit(set, way int, _ *Access) { p.touch(set, way) }

func (p *lru) Evicted(set, way int) {}

var _ Policy = (*lru)(nil)
