package repl

import "atcsim/internal/mem"

// Hawkeye (Jain & Lin, ISCA'16): learns Belady's OPT decisions on a sample
// of sets (OPTgen with an occupancy vector) and trains a signature-indexed
// predictor that classifies fills as cache-friendly (insert RRPV=0) or
// cache-averse (insert RRPV=7). Victims are cache-averse blocks first; when
// a predicted-friendly block must be evicted the predictor is detrained.
//
// hawkeyeOpts.newSign applies the paper's translation/replay-aware
// signatures; transMRU pins leaf translations at RRPV=0 (T-Hawkeye).

const (
	hawkMaxRRPV     = 7 // 3-bit RRPV
	hawkAgeCap      = 6 // friendly blocks age up to 6, never to 7
	hawkPredBits    = 13
	hawkPredMax     = 7
	hawkPredInit    = 4  // weakly friendly
	hawkSampleMask  = 15 // one in 16 sets feeds OPTgen
	hawkSampleShift = 4  // log2(hawkSampleMask+1)
)

type hawkeyeOpts struct {
	newSign  bool
	transMRU bool
}

// optEntry is the sampler's record of the previous access to a line, held
// in an open-addressed table slot.
type optEntry struct {
	line    mem.Addr
	quantum uint32
	sig     uint32
	used    bool
}

// optSet is OPTgen state for one sampled set: a sliding occupancy vector
// over time quanta (one quantum per access) plus the last-access history.
//
// The history is an open-addressed hash table with linear probing instead
// of a Go map: train() hits it on every sampled access, and the table keeps
// that path allocation- and hashing-overhead-free. Entries are only removed
// by the periodic sweep, which rebuilds into a ping-pong spare buffer, so
// tombstones are never needed. The sweep detrains expired signatures with
// saturating decrements, which commute — iteration order (randomized for
// the map, sequential here) cannot change the resulting predictor state.
type optSet struct {
	occ     []uint16 // ring buffer, len = window
	quantum uint32
	hist    []optEntry // open-addressed, len power of two
	spare   []optEntry // sweep rebuild target, same length
	shift   uint       // 64 - log2(len(hist))
	count   int        // used slots in hist
}

// slot returns the table slot for line: its current entry, or the free slot
// where it belongs. The table always has free slots (the sweep triggers at
// half load), so the probe terminates.
func (s *optSet) slot(line mem.Addr) *optEntry {
	mask := uint64(len(s.hist) - 1)
	i := uint64(line) * 0x9E3779B97F4A7C15 >> s.shift
	for {
		e := &s.hist[i&mask]
		if !e.used || e.line == line {
			return e
		}
		i++
	}
}

type hawkeye struct {
	opts     hawkeyeOpts
	sets     int
	ways     int
	window   uint32
	rrpv     []uint8
	sig      []uint32
	friendly []bool
	trained  []bool
	pred     []uint8
	samples  []*optSet // indexed by set >> hawkSampleShift; nil until touched
	nameStr  string
}

func newHawkeye(sets, ways int, opts hawkeyeOpts) *hawkeye {
	name := "hawkeye"
	if opts.transMRU {
		name = "t-hawkeye"
	}
	p := &hawkeye{
		opts:     opts,
		sets:     sets,
		ways:     ways,
		window:   uint32(8 * ways),
		rrpv:     make([]uint8, sets*ways),
		sig:      make([]uint32, sets*ways),
		friendly: make([]bool, sets*ways),
		trained:  make([]bool, sets*ways),
		pred:     make([]uint8, 1<<hawkPredBits),
		samples:  make([]*optSet, (sets+hawkSampleMask)>>hawkSampleShift),
		nameStr:  name,
	}
	for i := range p.rrpv {
		p.rrpv[i] = hawkMaxRRPV
	}
	for i := range p.pred {
		p.pred[i] = hawkPredInit
	}
	return p
}

func (p *hawkeye) Name() string { return p.nameStr }

func (p *hawkeye) sampled(set int) *optSet {
	if set&hawkSampleMask != 0 {
		return nil
	}
	s := p.samples[set>>hawkSampleShift]
	if s == nil {
		// The table holds at most 4*window+1 entries between sweeps; sizing
		// it to the next power of two ≥ 8*window keeps the load factor at or
		// below ~one half so probes stay short.
		cap := 1
		for cap < 8*int(p.window) {
			cap <<= 1
		}
		shift := uint(64)
		for c := cap; c > 1; c >>= 1 {
			shift--
		}
		s = &optSet{occ: make([]uint16, p.window), hist: make([]optEntry, cap), shift: shift}
		p.samples[set>>hawkSampleShift] = s
	}
	return s
}

// train runs OPTgen for one access to a sampled set and updates the
// predictor for the signature of the line's previous access.
func (p *hawkeye) train(set int, a *Access, sig uint32) {
	s := p.sampled(set)
	if s == nil {
		return
	}
	now := s.quantum
	s.quantum++
	// The quantum slot now is being reused: clear it for the new window edge.
	s.occ[now%p.window] = 0

	e := s.slot(a.Line)
	if e.used {
		prev := e
		age := now - prev.quantum
		switch {
		case age == 0:
			// Same-quantum re-access; nothing to learn.
		case age < p.window:
			// Would OPT have kept the line across [prev, now)?
			hit := true
			for q := prev.quantum; q != now; q++ {
				if s.occ[q%p.window] >= uint16(p.ways) {
					hit = false
					break
				}
			}
			if hit {
				for q := prev.quantum; q != now; q++ {
					s.occ[q%p.window]++
				}
				if p.pred[prev.sig] < hawkPredMax {
					p.pred[prev.sig]++
				}
			} else if p.pred[prev.sig] > 0 {
				p.pred[prev.sig]--
			}
		default:
			// Reuse beyond the window: OPT would not have kept it.
			if p.pred[prev.sig] > 0 {
				p.pred[prev.sig]--
			}
		}
	}
	if !e.used {
		e.used = true
		e.line = a.Line
		s.count++
	}
	e.quantum = now
	e.sig = sig

	// Bound the sampler history: entries that fell out of the window are
	// evicted from the sampler, and — as in Hawkeye's sampled cache — an
	// entry leaving without an in-window reuse detrains its signature.
	if s.count > 4*int(p.window) {
		p.sweep(s, now)
	}
}

// sweep rebuilds the history table into the spare buffer, dropping entries
// older than the window and detraining their signatures. Only a bounded
// number of entries can be in-window (one access per quantum), so the table
// shrinks well below the sweep threshold and sweeps stay rare.
func (p *hawkeye) sweep(s *optSet, now uint32) {
	if s.spare == nil {
		s.spare = make([]optEntry, len(s.hist))
	}
	old := s.hist
	s.hist, s.spare = s.spare, old
	s.count = 0
	for i := range old {
		e := &old[i]
		if e.used {
			if now-e.quantum >= p.window {
				if p.pred[e.sig] > 0 {
					p.pred[e.sig]--
				}
			} else {
				*s.slot(e.line) = *e
				s.count++
			}
			*e = optEntry{} // leave the old buffer clean for the next swap
		}
	}
}

func (p *hawkeye) predictFriendly(sig uint32) bool { return p.pred[sig] >= hawkPredInit }

func (p *hawkeye) Victim(set int, _ *Access, evictable func(int) bool) int {
	base := set * p.ways
	// Prefer a cache-averse block (RRPV==7).
	for w := 0; w < p.ways; w++ {
		if p.rrpv[base+w] == hawkMaxRRPV && evictable(w) {
			return w
		}
	}
	// Otherwise evict the oldest friendly block and detrain its signature.
	best := -1
	var bestV uint8
	for w := 0; w < p.ways; w++ {
		if !evictable(w) {
			continue
		}
		if best < 0 || p.rrpv[base+w] > bestV {
			best, bestV = w, p.rrpv[base+w]
		}
	}
	if best < 0 {
		return 0
	}
	i := base + best
	if p.trained[i] && p.friendly[i] && p.pred[p.sig[i]] > 0 {
		p.pred[p.sig[i]]--
	}
	return best
}

func (p *hawkeye) Insert(set, way int, a *Access) {
	i := set*p.ways + way
	if a.Kind == mem.Writeback {
		p.trained[i] = false
		p.friendly[i] = false
		p.rrpv[i] = hawkMaxRRPV
		return
	}
	sig := signature(a, hawkPredBits, p.opts.newSign)
	p.train(set, a, sig)
	p.sig[i] = sig
	p.trained[i] = true

	if a.Distant {
		p.friendly[i] = false
		p.rrpv[i] = hawkMaxRRPV
		return
	}
	if p.opts.transMRU && a.Class == mem.ClassTransLeaf {
		p.friendly[i] = true
		p.rrpv[i] = 0
		return
	}
	if p.predictFriendly(sig) {
		p.friendly[i] = true
		p.rrpv[i] = 0
		// Age everyone else so older friendly blocks become evictable.
		base := set * p.ways
		for w := 0; w < p.ways; w++ {
			if w != way && p.rrpv[base+w] < hawkAgeCap {
				p.rrpv[base+w]++
			}
		}
	} else {
		p.friendly[i] = false
		p.rrpv[i] = hawkMaxRRPV
	}
}

func (p *hawkeye) Hit(set, way int, a *Access) {
	i := set*p.ways + way
	if a.Kind == mem.Writeback {
		return
	}
	sig := signature(a, hawkPredBits, p.opts.newSign)
	p.train(set, a, sig)
	p.sig[i] = sig
	p.friendly[i] = p.predictFriendly(sig) ||
		(p.opts.transMRU && a.Class == mem.ClassTransLeaf)
	if p.friendly[i] {
		p.rrpv[i] = 0
	}
}

func (p *hawkeye) Evicted(set, way int) {
	i := set*p.ways + way
	p.trained[i] = false
	p.friendly[i] = false
	p.rrpv[i] = hawkMaxRRPV
}

var _ Policy = (*hawkeye)(nil)
