package repl

import "fmt"

// Checker is implemented by policies that can audit their own internal
// state. The cache's CheckInvariants delegates to it, so a policy whose
// metadata drifts out of its documented range (a saturating counter
// overflowing, an RRPV above the maximum) is caught during validation runs
// instead of silently skewing victim selection.
type Checker interface {
	// CheckInvariants returns a descriptive error when any internal
	// invariant is violated, nil otherwise. It must not mutate state.
	CheckInvariants() error
}

// checkRRPV audits a shared RRIP array against its maximum value.
func (r *rripBase) checkRRPV(name string, max uint8) error {
	for i, v := range r.rrpv {
		if v > max {
			return fmt.Errorf("repl %s: rrpv[%d]=%d exceeds max %d", name, i, v, max)
		}
	}
	return nil
}

// CheckInvariants audits the SRRIP RRPV array.
func (p *srrip) CheckInvariants() error { return p.checkRRPV(p.Name(), rripMax) }

// CheckInvariants audits the BRRIP RRPV array.
func (p *brrip) CheckInvariants() error { return p.checkRRPV(p.Name(), rripMax) }

// CheckInvariants audits the DRRIP set-dueling state: the PSEL counter must
// stay inside its 10-bit saturating range and every RRPV inside 2 bits.
func (p *drrip) CheckInvariants() error {
	if p.psel < 0 || p.psel > pselMax {
		return fmt.Errorf("repl %s: PSEL %d outside [0, %d]", p.Name(), p.psel, pselMax)
	}
	return p.checkRRPV(p.Name(), rripMax)
}

// CheckInvariants audits SHiP: every SHCT counter within its 3-bit range,
// every RRPV within 2 bits, and no untrained block marked reused.
func (p *ship) CheckInvariants() error {
	for i, v := range p.shct {
		if v > shctMax {
			return fmt.Errorf("repl %s: SHCT[%d]=%d exceeds max %d", p.Name(), i, v, shctMax)
		}
	}
	for i, reused := range p.reused {
		if reused && !p.trained[i] {
			return fmt.Errorf("repl %s: block %d reused but not trained", p.Name(), i)
		}
	}
	return p.checkRRPV(p.Name(), rripMax)
}

// CheckInvariants audits Hawkeye: predictor counters within 3 bits, RRPVs
// within 3 bits, and OPTgen occupancy never above associativity.
func (p *hawkeye) CheckInvariants() error {
	for i, v := range p.pred {
		if v > hawkPredMax {
			return fmt.Errorf("repl %s: predictor[%d]=%d exceeds max %d", p.Name(), i, v, hawkPredMax)
		}
	}
	for i, v := range p.rrpv {
		if v > hawkMaxRRPV {
			return fmt.Errorf("repl %s: rrpv[%d]=%d exceeds max %d", p.Name(), i, v, hawkMaxRRPV)
		}
	}
	for idx, s := range p.samples {
		if s == nil {
			continue
		}
		set := idx << hawkSampleShift
		for q, occ := range s.occ {
			if occ > uint16(p.ways) {
				return fmt.Errorf("repl %s: OPTgen set %d quantum slot %d occupancy %d exceeds ways %d",
					p.Name(), set, q, occ, p.ways)
			}
		}
		used := 0
		for i := range s.hist {
			if s.hist[i].used {
				used++
			}
		}
		if used != s.count {
			return fmt.Errorf("repl %s: OPTgen set %d history count %d but %d used slots",
				p.Name(), set, s.count, used)
		}
	}
	return nil
}

var (
	_ Checker = (*srrip)(nil)
	_ Checker = (*brrip)(nil)
	_ Checker = (*drrip)(nil)
	_ Checker = (*ship)(nil)
	_ Checker = (*hawkeye)(nil)
)
