package repl

import "atcsim/internal/mem"

// SHiP (Wu et al., MICRO'11): SRRIP victim selection plus a Signature
// History Counter Table (SHCT) that predicts, per signature, whether an
// incoming block will be reused. Blocks whose signature counter is zero are
// inserted at distant RRPV; all others at long. Counters increment when a
// block hits and decrement when a block is evicted unreferenced.
//
// shipOpts.newSign applies the paper's translation/replay-aware signatures;
// transMRU additionally pins leaf-translation fills at RRPV=0 (T-SHiP).

const (
	shctBits    = 14 // 16K-entry SHCT
	shctEntries = 1 << shctBits
	shctMax     = 7 // 3-bit counters
	shctInit    = 1
)

type shipOpts struct {
	newSign   bool
	transMRU  bool
	replayMRU bool // Fig. 10 misconfiguration
}

type ship struct {
	rripBase
	opts shipOpts
	shct []uint8
	// Per-block training state.
	sig     []uint32
	reused  []bool
	trained []bool // block participates in SHCT training (has a signature)
	nameStr string
}

func newSHiP(sets, ways int, opts shipOpts) *ship {
	name := "ship"
	switch {
	case opts.transMRU && opts.replayMRU:
		name = "ship-replay0"
	case opts.transMRU:
		name = "t-ship"
	case opts.newSign:
		name = "ship-newsig"
	}
	p := &ship{
		rripBase: newRRIPBase(sets, ways),
		opts:     opts,
		shct:     make([]uint8, shctEntries),
		sig:      make([]uint32, sets*ways),
		reused:   make([]bool, sets*ways),
		trained:  make([]bool, sets*ways),
		nameStr:  name,
	}
	for i := range p.shct {
		p.shct[i] = shctInit
	}
	return p
}

func (p *ship) Name() string { return p.nameStr }

func (p *ship) Victim(set int, _ *Access, ev func(int) bool) int { return p.victim(set, ev) }

func (p *ship) Insert(set, way int, a *Access) {
	i := set*p.ways + way
	// Writebacks carry no IP; they fill at distant without training.
	if a.Kind == mem.Writeback {
		p.trained[i] = false
		p.reused[i] = false
		p.set(set, way, rripMax)
		return
	}
	s := signature(a, shctBits, p.opts.newSign)
	p.sig[i] = s
	p.reused[i] = false
	p.trained[i] = true

	if a.Distant {
		p.set(set, way, rripMax)
		return
	}
	if p.opts.transMRU && a.Class == mem.ClassTransLeaf {
		p.set(set, way, 0)
		return
	}
	if p.opts.replayMRU && a.Class == mem.ClassReplay {
		p.set(set, way, 0)
		return
	}
	if p.shct[s] == 0 {
		p.set(set, way, rripMax) // predicted dead on arrival
	} else {
		p.set(set, way, rripLong)
	}
}

func (p *ship) Hit(set, way int, a *Access) {
	i := set*p.ways + way
	if p.opts.transMRU && a.Class == mem.ClassReplay {
		// T-SHiP: replay blocks are dead after their single use (see the
		// T-DRRIP promotion note) — park the block at distant RRPV.
		p.set(set, way, rripMax)
	} else {
		p.set(set, way, 0)
	}
	if p.trained[i] && !p.reused[i] {
		p.reused[i] = true
		if p.shct[p.sig[i]] < shctMax {
			p.shct[p.sig[i]]++
		}
	}
}

func (p *ship) Evicted(set, way int) {
	i := set*p.ways + way
	if p.trained[i] && !p.reused[i] {
		if p.shct[p.sig[i]] > 0 {
			p.shct[p.sig[i]]--
		}
	}
	p.trained[i] = false
	p.reused[i] = false
}

// shctCounter exposes a signature's counter for tests.
func (p *ship) shctCounter(a *Access) uint8 {
	return p.shct[signature(a, shctBits, p.opts.newSign)]
}

var _ Policy = (*ship)(nil)
