// Package repl implements cache replacement policies: the classic baselines
// (LRU, SRRIP, BRRIP, DRRIP, SHiP, Hawkeye) and the paper's
// translation-conscious variants (T-DRRIP, T-SHiP, T-Hawkeye) together with
// the "NewSign" translation/replay-aware signature enhancement.
//
// A policy owns all of its per-block metadata, sized at construction for a
// sets×ways cache. The cache invokes Victim when a full set needs an
// eviction, Evicted as feedback when a block leaves, Insert when a block
// fills, and Hit on every reuse.
package repl

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"atcsim/internal/mem"
)

// Access describes one cache access from the policy's point of view.
type Access struct {
	// IP is the instruction pointer associated with the access (zero for
	// writebacks and DRAM-side prefetches).
	IP mem.Addr
	// Line is the physical line address (byte address >> 6).
	Line mem.Addr
	// Class is the translation/replay taxonomy of the access.
	Class mem.Class
	// Kind is the raw request kind.
	Kind mem.Kind
	// Distant requests insertion with the highest eviction priority
	// regardless of the policy's own prediction; the ATP/TEMPO prefetches
	// use it (the paper inserts them with RRPV=3).
	Distant bool
}

// Policy is a cache replacement policy: a victim-selection, insertion and
// promotion strategy plus an eviction-feedback channel for learning
// policies.
type Policy interface {
	// Name returns the canonical policy name.
	Name() string
	// Victim returns the way to evict in a full set. evictable reports
	// whether a way may be evicted right now (false for blocks whose fill
	// is still held by an MSHR); when no way is evictable the policy may
	// return any way.
	Victim(set int, a *Access, evictable func(way int) bool) int
	// Insert records that a block for access a was filled into (set, way).
	Insert(set, way int, a *Access)
	// Hit records a reuse of the block at (set, way).
	Hit(set, way int, a *Access)
	// Evicted notifies the policy that the block at (set, way) left the
	// cache (called before the replacing Insert).
	Evicted(set, way int)
}

// Factory builds a policy instance for a sets×ways cache.
type Factory func(sets, ways int) Policy

// registryMu guards registry: policies may be registered from user code
// while the parallel experiment engine constructs machines on other
// goroutines, so lookups and registrations must not race.
var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a named policy factory; it panics on duplicates since that
// is a programming error. It is exported so that downstream users can plug
// their own policies into the simulator (see examples/custompolicy). It is
// safe to call concurrently with New.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("repl: duplicate policy " + name)
	}
	registry[name] = f
}

// New creates the named policy for a sets×ways cache. It is safe for
// concurrent use, so machines can be constructed from multiple goroutines.
func New(name string, sets, ways int) (Policy, error) {
	registryMu.RLock()
	f, ok := registry[strings.ToLower(name)]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("repl: unknown policy %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return f(sets, ways), nil
}

// MustNew is New that panics on error, for tests and internal wiring where
// the name is a compile-time constant.
func MustNew(name string, sets, ways int) Policy {
	p, err := New(name, sets, ways)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns the sorted registered policy names.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("lru", func(sets, ways int) Policy { return newLRU(sets, ways) })
	Register("srrip", func(sets, ways int) Policy { return newSRRIP(sets, ways) })
	Register("brrip", func(sets, ways int) Policy { return newBRRIP(sets, ways) })
	Register("drrip", func(sets, ways int) Policy { return newDRRIP(sets, ways, drripOpts{}) })
	Register("t-drrip", func(sets, ways int) Policy {
		return newDRRIP(sets, ways, drripOpts{transMRU: true, replayDistant: true})
	})
	// Fig. 10 misconfiguration: both translations and replays pinned at RRPV=0.
	Register("drrip-replay0", func(sets, ways int) Policy {
		return newDRRIP(sets, ways, drripOpts{transMRU: true, replayMRU: true})
	})
	Register("ship", func(sets, ways int) Policy { return newSHiP(sets, ways, shipOpts{}) })
	Register("ship-newsig", func(sets, ways int) Policy {
		return newSHiP(sets, ways, shipOpts{newSign: true})
	})
	Register("t-ship", func(sets, ways int) Policy {
		return newSHiP(sets, ways, shipOpts{newSign: true, transMRU: true})
	})
	Register("ship-replay0", func(sets, ways int) Policy {
		return newSHiP(sets, ways, shipOpts{newSign: true, transMRU: true, replayMRU: true})
	})
	Register("hawkeye", func(sets, ways int) Policy { return newHawkeye(sets, ways, hawkeyeOpts{}) })
	Register("t-hawkeye", func(sets, ways int) Policy {
		return newHawkeye(sets, ways, hawkeyeOpts{newSign: true, transMRU: true})
	})
}

// hashIP folds an instruction pointer into bits bits.
func hashBits(v uint64, bits uint) uint32 {
	v *= 0x9E3779B97F4A7C15 // Fibonacci hashing
	return uint32(v >> (64 - bits))
}

// signature computes the SHCT/Hawkeye training signature. With newSign the
// paper's enhancement is applied: translations and replay loads are shifted
// into disjoint signature spaces so their reuse is learned independently of
// the same IP's non-replay loads (Section IV, "Address translation conscious
// signatures").
func signature(a *Access, bits uint, newSign bool) uint32 {
	ip := uint64(a.IP)
	if newSign {
		switch a.Class {
		case mem.ClassTransLeaf, mem.ClassTransUpper:
			ip = ip<<1 | 1 // signature_translations = IP << IsTranslation
		case mem.ClassReplay:
			ip = ip<<2 | 2 // signature_replayloads = IP << (IsReplay+IsTranslation)
		}
	}
	return hashBits(ip, bits)
}
