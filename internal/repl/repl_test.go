package repl

import (
	"testing"
	"testing/quick"

	"atcsim/internal/mem"
)

// evAll lets every way be evicted (the common test case).
func evAll(int) bool { return true }

func la(ip, line mem.Addr) *Access {
	return &Access{IP: ip, Line: line, Class: mem.ClassNonReplay, Kind: mem.Load}
}

func transLeaf(ip, line mem.Addr) *Access {
	return &Access{IP: ip, Line: line, Class: mem.ClassTransLeaf, Kind: mem.Translation}
}

func replay(ip, line mem.Addr) *Access {
	return &Access{IP: ip, Line: line, Class: mem.ClassReplay, Kind: mem.Load}
}

func TestFactoryKnowsAllPolicies(t *testing.T) {
	want := []string{
		"lru", "srrip", "brrip", "drrip", "t-drrip", "drrip-replay0",
		"ship", "ship-newsig", "t-ship", "ship-replay0", "hawkeye", "t-hawkeye",
	}
	for _, n := range want {
		p, err := New(n, 64, 8)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, p.Name())
		}
	}
	if _, err := New("belady", 64, 8); err == nil {
		t.Error("unknown policy did not error")
	}
	if len(Names()) < len(want) {
		t.Errorf("Names() = %v", Names())
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("lru", func(sets, ways int) Policy { return newLRU(sets, ways) })
}

func TestLRUOrder(t *testing.T) {
	p := newLRU(1, 4)
	for w := 0; w < 4; w++ {
		p.Insert(0, w, la(1, mem.Addr(w)))
	}
	// Way 0 is the oldest.
	if v := p.Victim(0, la(1, 99), evAll); v != 0 {
		t.Fatalf("victim = %d, want 0", v)
	}
	// Touch way 0; way 1 becomes the oldest.
	p.Hit(0, 0, la(1, 0))
	if v := p.Victim(0, la(1, 99), evAll); v != 1 {
		t.Fatalf("victim after hit = %d, want 1", v)
	}
	// A distant insertion parks at LRU.
	d := la(1, 50)
	d.Distant = true
	p.Insert(0, 2, d)
	if v := p.Victim(0, la(1, 99), evAll); v != 2 {
		t.Fatalf("victim after distant insert = %d, want 2", v)
	}
}

func TestSRRIPBasics(t *testing.T) {
	p := newSRRIP(2, 4)
	a := la(7, 100)
	p.Insert(0, 0, a)
	if got := p.rrpv[0]; got != rripLong {
		t.Errorf("insert RRPV = %d, want %d", got, rripLong)
	}
	p.Hit(0, 0, a)
	if got := p.rrpv[0]; got != 0 {
		t.Errorf("hit RRPV = %d, want 0", got)
	}
	// Fill remaining ways, hit them, then ensure victim search ages the set.
	for w := 1; w < 4; w++ {
		p.Insert(0, w, la(7, mem.Addr(w)))
		p.Hit(0, w, la(7, mem.Addr(w)))
	}
	v := p.Victim(0, la(7, 200), evAll)
	if v < 0 || v >= 4 {
		t.Fatalf("victim out of range: %d", v)
	}
	// After aging, at least one block must be at max RRPV.
	found := false
	for w := 0; w < 4; w++ {
		if p.rrpv[w] == rripMax {
			found = true
		}
	}
	if !found {
		t.Error("victim search did not age the set to max RRPV")
	}
	// Distant insertion goes straight to max.
	d := la(7, 300)
	d.Distant = true
	p.Insert(1, 0, d)
	if got := p.rrpv[1*4+0]; got != rripMax {
		t.Errorf("distant insert RRPV = %d, want %d", got, rripMax)
	}
}

func TestBRRIPMostlyDistant(t *testing.T) {
	p := newBRRIP(1, 16)
	long := 0
	for i := 0; i < 320; i++ {
		p.Insert(0, i%16, la(1, mem.Addr(i)))
		if p.rrpv[i%16] == rripLong {
			long++
		}
	}
	if long != 10 { // exactly 1 in 32 of 320 inserts
		t.Errorf("long insertions = %d, want 10", long)
	}
}

func TestDRRIPDueling(t *testing.T) {
	p := newDRRIP(64, 4, drripOpts{})
	start := p.psel
	// Misses in the SRRIP leader set (set 0) push PSEL toward BRRIP.
	for i := 0; i < 100; i++ {
		p.Insert(0, i%4, la(1, mem.Addr(i)))
	}
	if p.psel <= start {
		t.Errorf("PSEL did not increase: %d -> %d", start, p.psel)
	}
	// Misses in the BRRIP leader set (set 16) push it back.
	mid := p.psel
	for i := 0; i < 150; i++ {
		p.Insert(16, i%4, la(1, mem.Addr(i)))
	}
	if p.psel >= mid {
		t.Errorf("PSEL did not decrease: %d -> %d", mid, p.psel)
	}
}

func TestTDRRIPInsertion(t *testing.T) {
	p := newDRRIP(64, 4, drripOpts{transMRU: true, replayDistant: true})
	// Leaf translations pin at RRPV=0 (lowest eviction priority).
	p.Insert(2, 0, transLeaf(9, 500))
	if got := p.rrpv[2*4+0]; got != 0 {
		t.Errorf("T-DRRIP leaf translation RRPV = %d, want 0", got)
	}
	// Replay loads insert at RRPV=3 (dead on arrival).
	p.Insert(2, 1, replay(9, 600))
	if got := p.rrpv[2*4+1]; got != rripMax {
		t.Errorf("T-DRRIP replay RRPV = %d, want %d", got, rripMax)
	}
	// Upper-level translations are NOT pinned (only leaf level).
	up := &Access{IP: 9, Line: 700, Class: mem.ClassTransUpper, Kind: mem.Translation}
	p.Insert(2, 2, up)
	if got := p.rrpv[2*4+2]; got == 0 {
		t.Error("upper-level translation unexpectedly pinned at RRPV=0")
	}
	// Non-replay loads follow plain DRRIP.
	p.Insert(2, 3, la(9, 800))
	if got := p.rrpv[2*4+3]; got != rripLong && got != rripMax {
		t.Errorf("T-DRRIP non-replay RRPV = %d", got)
	}
}

func TestDRRIPReplay0Misconfiguration(t *testing.T) {
	p := newDRRIP(64, 4, drripOpts{transMRU: true, replayMRU: true})
	p.Insert(2, 0, replay(9, 600))
	if got := p.rrpv[2*4+0]; got != 0 {
		t.Errorf("drrip-replay0 replay RRPV = %d, want 0", got)
	}
}

func TestSHiPLearnsDeadSignature(t *testing.T) {
	p := newSHiP(16, 4, shipOpts{})
	deadIP := mem.Addr(0x400000)
	a := la(deadIP, 1)
	// Drive the signature's counter to zero: insert and evict untouched.
	for i := 0; p.shctCounter(a) > 0 && i < 100; i++ {
		p.Insert(0, 0, la(deadIP, mem.Addr(i)))
		p.Evicted(0, 0)
	}
	if p.shctCounter(a) != 0 {
		t.Fatal("SHCT counter did not reach zero")
	}
	// The next insert with that signature must be distant.
	p.Insert(0, 1, la(deadIP, 999))
	if got := p.rrpv[1]; got != rripMax {
		t.Errorf("dead-signature insert RRPV = %d, want %d", got, rripMax)
	}
	// A hit trains the signature back up and promotes to 0.
	p.Hit(0, 1, la(deadIP, 999))
	if got := p.rrpv[1]; got != 0 {
		t.Errorf("hit RRPV = %d, want 0", got)
	}
	if p.shctCounter(a) == 0 {
		t.Error("hit did not increment SHCT")
	}
	// Now the same signature inserts long again.
	p.Insert(0, 2, la(deadIP, 1234))
	if got := p.rrpv[2]; got != rripLong {
		t.Errorf("retrained insert RRPV = %d, want %d", got, rripLong)
	}
}

func TestSHiPHitTrainsOncePerResidency(t *testing.T) {
	p := newSHiP(16, 4, shipOpts{})
	a := la(5, 10)
	p.Insert(0, 0, a)
	before := p.shctCounter(a)
	p.Hit(0, 0, a)
	p.Hit(0, 0, a)
	p.Hit(0, 0, a)
	if got := p.shctCounter(a); got != before+1 {
		t.Errorf("SHCT after 3 hits = %d, want %d", got, before+1)
	}
}

func TestNewSignatureSeparatesClasses(t *testing.T) {
	// With newSign, the same IP produces distinct signatures for non-replay,
	// replay and translation accesses — the core of the paper's fix for
	// SHiP/Hawkeye mistraining.
	ip := mem.Addr(0x401234)
	n := signature(la(ip, 1), shctBits, true)
	r := signature(replay(ip, 1), shctBits, true)
	tr := signature(transLeaf(ip, 1), shctBits, true)
	if n == r || n == tr || r == tr {
		t.Errorf("signatures collide: nonreplay=%d replay=%d trans=%d", n, r, tr)
	}
	// Without newSign they all alias.
	n0 := signature(la(ip, 1), shctBits, false)
	r0 := signature(replay(ip, 1), shctBits, false)
	tr0 := signature(transLeaf(ip, 1), shctBits, false)
	if n0 != r0 || n0 != tr0 {
		t.Error("baseline signatures should alias on IP")
	}
}

func TestTSHiPDeadDataIPDoesNotKillTranslations(t *testing.T) {
	// Reproduce the paper's Section III example: IP_X brings cache-averse
	// demand loads AND page-table entries. With plain SHiP the dead data
	// loads drive the shared signature to zero and translations get inserted
	// distant; with T-SHiP the translation signature is independent and leaf
	// translations are pinned at RRPV=0.
	ipX := mem.Addr(0x400abc)

	plain := newSHiP(16, 4, shipOpts{})
	for i := 0; i < 50; i++ {
		plain.Insert(0, 0, la(ipX, mem.Addr(i)))
		plain.Evicted(0, 0)
	}
	plain.Insert(0, 1, transLeaf(ipX, 9999))
	if got := plain.rrpv[1]; got != rripMax {
		t.Errorf("plain SHiP translation insert RRPV = %d, want %d (mistrained)", got, rripMax)
	}

	tship := newSHiP(16, 4, shipOpts{newSign: true, transMRU: true})
	for i := 0; i < 50; i++ {
		tship.Insert(0, 0, la(ipX, mem.Addr(i)))
		tship.Evicted(0, 0)
	}
	tship.Insert(0, 1, transLeaf(ipX, 9999))
	if got := tship.rrpv[1]; got != 0 {
		t.Errorf("T-SHiP translation insert RRPV = %d, want 0", got)
	}
}

func TestSHiPWritebackNotTrained(t *testing.T) {
	p := newSHiP(16, 4, shipOpts{})
	wb := &Access{Line: 42, Class: mem.ClassWriteback, Kind: mem.Writeback}
	p.Insert(0, 0, wb)
	if got := p.rrpv[0]; got != rripMax {
		t.Errorf("writeback insert RRPV = %d, want %d", got, rripMax)
	}
	// Evicting it must not touch any counter (trained=false).
	c0 := p.shct[0]
	p.Evicted(0, 0)
	if p.shct[0] != c0 {
		t.Error("writeback eviction trained the SHCT")
	}
}

func TestHawkeyeFriendlyAndAverse(t *testing.T) {
	p := newHawkeye(64, 4, hawkeyeOpts{})
	// Fresh predictor is weakly friendly: inserts at RRPV 0.
	p.Insert(1, 0, la(11, 100))
	if got := p.rrpv[1*4]; got != 0 {
		t.Errorf("friendly insert RRPV = %d, want 0", got)
	}
	// Drive a signature averse via OPTgen: thrash a sampled set (set 0) with
	// far more unique lines than the window so every reuse is an OPT miss.
	ip := mem.Addr(0x500000)
	for round := 0; round < 4; round++ {
		for i := 0; i < 200; i++ {
			p.train(0, la(ip, mem.Addr(i)), signature(la(ip, mem.Addr(i)), hawkPredBits, false))
		}
	}
	sig := signature(la(ip, 0), hawkPredBits, false)
	if p.pred[sig] >= hawkPredInit {
		t.Fatalf("predictor not averse after thrashing: %d", p.pred[sig])
	}
	p.Insert(1, 1, la(ip, 500))
	if got := p.rrpv[1*4+1]; got != hawkMaxRRPV {
		t.Errorf("averse insert RRPV = %d, want %d", got, hawkMaxRRPV)
	}
	// Victim prefers the averse block.
	if v := p.Victim(1, la(11, 999), evAll); v != 1 {
		t.Errorf("victim = %d, want the averse way 1", v)
	}
}

func TestHawkeyeOPTgenRewardsReuse(t *testing.T) {
	p := newHawkeye(64, 4, hawkeyeOpts{})
	ip := mem.Addr(0x600000)
	sig := signature(la(ip, 0), hawkPredBits, false)
	start := p.pred[sig]
	// Tight reuse of 2 lines in a sampled set: OPT hits, counter rises.
	for i := 0; i < 20; i++ {
		p.train(0, la(ip, mem.Addr(i%2)), sig)
	}
	if p.pred[sig] <= start {
		t.Errorf("predictor did not learn reuse: %d -> %d", start, p.pred[sig])
	}
}

func TestHawkeyeDetrainOnFriendlyEviction(t *testing.T) {
	p := newHawkeye(64, 4, hawkeyeOpts{})
	// Fill a set with friendly blocks.
	for w := 0; w < 4; w++ {
		p.Insert(2, w, la(21, mem.Addr(w)))
	}
	sig := signature(la(21, 0), hawkPredBits, false)
	before := p.pred[sig]
	// No averse block: victim must detrain the chosen friendly block.
	p.Victim(2, la(22, 99), evAll)
	if p.pred[sig] >= before {
		t.Errorf("detraining did not lower predictor: %d -> %d", before, p.pred[sig])
	}
}

func TestTHawkeyePinsLeafTranslations(t *testing.T) {
	p := newHawkeye(64, 4, hawkeyeOpts{newSign: true, transMRU: true})
	// Even with an averse predictor, leaf translations insert at 0.
	a := transLeaf(0x700000, 123)
	sig := signature(a, hawkPredBits, true)
	p.pred[sig] = 0
	p.Insert(3, 0, a)
	if got := p.rrpv[3*4]; got != 0 {
		t.Errorf("T-Hawkeye leaf translation RRPV = %d, want 0", got)
	}
}

func TestVictimAlwaysInRange(t *testing.T) {
	// Property: for every policy, after arbitrary access streams the victim
	// way is within [0, ways).
	for _, name := range Names() {
		p := MustNew(name, 16, 4)
		f := func(ops []uint16) bool {
			for _, op := range ops {
				set := int(op) % 16
				way := int(op>>4) % 4
				a := la(mem.Addr(op%7), mem.Addr(op))
				switch op % 3 {
				case 0:
					p.Evicted(set, way)
					p.Insert(set, way, a)
				case 1:
					p.Hit(set, way, a)
				case 2:
					// Alternate between all-evictable and a partial filter.
					ev := evAll
					if op%5 == 0 {
						ev = func(w int) bool { return w != int(op>>6)%4 }
					}
					v := p.Victim(set, a, ev)
					if v < 0 || v >= 4 {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCSALTPartitions(t *testing.T) {
	p := newCSALT(4, 8)
	// Fill one set with data, then a translation fill must be able to take
	// a way (fallback path when the translation partition is empty).
	for w := 0; w < 8; w++ {
		p.Insert(0, w, la(1, mem.Addr(w)))
	}
	v := p.Victim(0, transLeaf(2, 100), evAll)
	if v < 0 || v >= 8 {
		t.Fatalf("victim = %d", v)
	}
	p.Evicted(0, v)
	p.Insert(0, v, transLeaf(2, 100))
	// A data fill must now prefer evicting data, not the lone translation.
	v2 := p.Victim(0, la(1, 200), evAll)
	if v2 == v {
		t.Errorf("data fill evicted the translation way %d", v)
	}
	// Rebalancing moves the partition point within bounds.
	for i := 0; i < 3*csaltRebalance; i++ {
		p.account(transLeaf(2, mem.Addr(i)), false) // translations always miss
		p.account(la(1, mem.Addr(i)), true)         // data always hits
	}
	if p.transWays <= csaltMinWays {
		t.Errorf("translation partition did not grow: %d", p.transWays)
	}
	if p.transWays > 8/csaltMaxPortion {
		t.Errorf("translation partition exceeded quota: %d", p.transWays)
	}
}

func TestCBPredBypassesDeadSignatures(t *testing.T) {
	p := newCBPred(16, 4)
	deadIP := mem.Addr(0x400000)
	// Train the signature dead.
	for i := 0; p.shctCounter(la(deadIP, 0)) > 0; i++ {
		p.Insert(0, 0, la(deadIP, mem.Addr(i)))
		p.Evicted(0, 0)
	}
	if !p.ShouldBypass(la(deadIP, 99)) {
		t.Error("dead signature not bypassed")
	}
	liveIP := mem.Addr(0x500000)
	if p.ShouldBypass(la(liveIP, 1)) {
		t.Error("untrained signature bypassed")
	}
	wb := &Access{Line: 5, Class: mem.ClassWriteback, Kind: mem.Writeback}
	if p.ShouldBypass(wb) {
		t.Error("writeback bypassed")
	}
}

func TestCSALTVictimRespectsEvictability(t *testing.T) {
	p := newCSALT(2, 4)
	for w := 0; w < 4; w++ {
		p.Insert(0, w, la(1, mem.Addr(w)))
	}
	// Only way 2 is evictable: the victim must be way 2 regardless of
	// partition preferences.
	only2 := func(w int) bool { return w == 2 }
	if v := p.Victim(0, transLeaf(9, 99), only2); v != 2 {
		t.Errorf("victim = %d, want 2 (only evictable way)", v)
	}
}

func TestCSALTFactoryRegistered(t *testing.T) {
	for _, n := range []string{"csalt", "cbpred"} {
		p, err := New(n, 64, 8)
		if err != nil || p.Name() != n {
			t.Errorf("New(%q) = %v, %v", n, p, err)
		}
	}
}
