package repl

import "atcsim/internal/mem"

// Re-reference interval prediction (Jaleel et al., ISCA'10) with a 2-bit
// RRPV per block: insert at 2 ("long"), promote to 0 on hit, evict RRPV 3
// ("distant"), incrementing the whole set when no distant block exists.

const (
	rripMax  = 3 // 2-bit RRPV
	rripLong = 2 // SRRIP insertion value
)

// rripBase holds the shared RRPV array and the victim/promotion machinery
// for all RRIP-family policies.
type rripBase struct {
	ways int
	rrpv []uint8
}

func newRRIPBase(sets, ways int) rripBase {
	r := rripBase{ways: ways, rrpv: make([]uint8, sets*ways)}
	for i := range r.rrpv {
		r.rrpv[i] = rripMax
	}
	return r
}

func (r *rripBase) victim(set int, evictable func(int) bool) int {
	base := set * r.ways
	any := false
	for w := 0; w < r.ways; w++ {
		if evictable(w) {
			any = true
			break
		}
	}
	if !any {
		return 0
	}
	for {
		for w := 0; w < r.ways; w++ {
			if r.rrpv[base+w] == rripMax && evictable(w) {
				return w
			}
		}
		for w := 0; w < r.ways; w++ {
			if r.rrpv[base+w] < rripMax {
				r.rrpv[base+w]++
			}
		}
	}
}

func (r *rripBase) set(set, way int, v uint8) { r.rrpv[set*r.ways+way] = v }

// srrip is static RRIP.
type srrip struct{ rripBase }

func newSRRIP(sets, ways int) *srrip { return &srrip{newRRIPBase(sets, ways)} }

func (p *srrip) Name() string { return "srrip" }

func (p *srrip) Victim(set int, _ *Access, ev func(int) bool) int { return p.victim(set, ev) }

func (p *srrip) Insert(set, way int, a *Access) {
	if a.Distant {
		p.set(set, way, rripMax)
		return
	}
	p.set(set, way, rripLong)
}

func (p *srrip) Hit(set, way int, _ *Access) { p.set(set, way, 0) }

func (p *srrip) Evicted(int, int) {}

// brrip is bimodal RRIP: inserts at distant (3) except for a small fraction
// of fills (1/32) that use the long (2) interval. A deterministic counter
// replaces the usual PRNG so that simulations are reproducible.
type brrip struct {
	rripBase
	throttle uint32
}

func newBRRIP(sets, ways int) *brrip { return &brrip{rripBase: newRRIPBase(sets, ways)} }

func (p *brrip) Name() string { return "brrip" }

func (p *brrip) Victim(set int, _ *Access, ev func(int) bool) int { return p.victim(set, ev) }

func (p *brrip) insertValue() uint8 {
	p.throttle++
	if p.throttle%32 == 0 {
		return rripLong
	}
	return rripMax
}

func (p *brrip) Insert(set, way int, a *Access) {
	if a.Distant {
		p.set(set, way, rripMax)
		return
	}
	p.set(set, way, p.insertValue())
}

func (p *brrip) Hit(set, way int, _ *Access) { p.set(set, way, 0) }

func (p *brrip) Evicted(int, int) {}

// drripOpts configure the translation-conscious DRRIP variants.
type drripOpts struct {
	// transMRU pins leaf-level translation fills at RRPV=0 (T-DRRIP).
	transMRU bool
	// replayDistant inserts replay-load fills at RRPV=3 (T-DRRIP; the paper
	// finds replay blocks are dead at the L2C).
	replayDistant bool
	// replayMRU inserts replay fills at RRPV=0 — the Fig. 10
	// misconfiguration that degrades performance by pressuring translation
	// blocks.
	replayMRU bool
}

// drrip dynamically duels SRRIP against BRRIP insertion with 32+32 leader
// sets and a 10-bit PSEL counter (set-dueling monitors).
type drrip struct {
	rripBase
	opts     drripOpts
	sets     int
	psel     int // saturating in [0, pselMax]
	throttle uint32
	nameStr  string
}

const (
	pselMax  = 1023
	pselInit = 512
)

func newDRRIP(sets, ways int, opts drripOpts) *drrip {
	name := "drrip"
	switch {
	case opts.transMRU && opts.replayDistant:
		name = "t-drrip"
	case opts.transMRU && opts.replayMRU:
		name = "drrip-replay0"
	}
	return &drrip{
		rripBase: newRRIPBase(sets, ways),
		opts:     opts,
		sets:     sets,
		psel:     pselInit,
		nameStr:  name,
	}
}

func (p *drrip) Name() string { return p.nameStr }

// leader classifies dueling leader sets: every 32nd set leads for SRRIP,
// the set right after it leads for BRRIP.
func (p *drrip) leader(set int) (srripLeader, brripLeader bool) {
	switch set & 31 {
	case 0:
		return true, false
	case 16:
		return false, true
	}
	return false, false
}

func (p *drrip) Victim(set int, _ *Access, ev func(int) bool) int { return p.victim(set, ev) }

func (p *drrip) Insert(set, way int, a *Access) {
	// A fill implies a miss: update the duel for leader sets. Only demand
	// fills vote; prefetches and writebacks stay out of the duel.
	if a.Kind == mem.Load || a.Kind == mem.Store || a.Kind == mem.Translation {
		if sl, bl := p.leader(set); sl && p.psel < pselMax {
			p.psel++ // miss in an SRRIP leader: a vote for BRRIP
		} else if bl && p.psel > 0 {
			p.psel--
		}
	}

	if a.Distant {
		p.set(set, way, rripMax)
		return
	}
	// Translation-conscious overrides (T-DRRIP, Section IV).
	if p.opts.transMRU && a.Class == mem.ClassTransLeaf {
		p.set(set, way, 0)
		return
	}
	if a.Class == mem.ClassReplay {
		if p.opts.replayDistant {
			p.set(set, way, rripMax)
			return
		}
		if p.opts.replayMRU {
			p.set(set, way, 0)
			return
		}
	}

	useBRRIP := p.psel >= pselInit
	if sl, bl := p.leader(set); sl {
		useBRRIP = false
	} else if bl {
		useBRRIP = true
	}
	if useBRRIP {
		p.throttle++
		if p.throttle%32 != 0 {
			p.set(set, way, rripMax)
			return
		}
	}
	p.set(set, way, rripLong)
}

func (p *drrip) Hit(set, way int, a *Access) {
	// T-DRRIP: a replay block's single use has just happened — the paper
	// finds replay blocks dead after insertion, so instead of promoting it
	// to RRPV=0 (where it would pressure the pinned translations), mark it
	// the next eviction candidate. This matters once ATP turns replay
	// misses into hits on prefetched blocks.
	if p.opts.replayDistant && a.Class == mem.ClassReplay {
		p.set(set, way, rripMax)
		return
	}
	p.set(set, way, 0)
}

func (p *drrip) Evicted(int, int) {}

var (
	_ Policy = (*srrip)(nil)
	_ Policy = (*brrip)(nil)
	_ Policy = (*drrip)(nil)
)
