package repl

import (
	"testing"

	"atcsim/internal/mem"
)

func demandAccess(ip mem.Addr) *Access {
	return &Access{IP: ip, Line: mem.Addr(ip) >> 2, Class: mem.ClassNonReplay, Kind: mem.Load}
}

// TestDRRIPLeaderAssignment pins the set-dueling monitor layout: every 32nd
// set leads for SRRIP, the set 16 past it leads for BRRIP, everything else
// follows the PSEL.
func TestDRRIPLeaderAssignment(t *testing.T) {
	p := newDRRIP(128, 4, drripOpts{})
	cases := []struct {
		set          int
		srrip, brrip bool
	}{
		{0, true, false},
		{32, true, false},
		{96, true, false},
		{16, false, true},
		{48, false, true},
		{112, false, true},
		{1, false, false},
		{15, false, false},
		{17, false, false},
		{31, false, false},
		{33, false, false},
		{127, false, false},
	}
	for _, tc := range cases {
		sl, bl := p.leader(tc.set)
		if sl != tc.srrip || bl != tc.brrip {
			t.Errorf("leader(%d) = (%v, %v), want (%v, %v)", tc.set, sl, bl, tc.srrip, tc.brrip)
		}
	}
}

// TestDRRIPPSELSaturation drives misses into one leader family at a time
// and checks the PSEL saturates at its bounds instead of wrapping.
func TestDRRIPPSELSaturation(t *testing.T) {
	const sets, ways = 64, 4
	p := newDRRIP(sets, ways, drripOpts{})
	if p.psel != pselInit {
		t.Fatalf("initial PSEL = %d, want %d", p.psel, pselInit)
	}
	// Misses in SRRIP leader set 0 vote for BRRIP: PSEL rises, then pins.
	for i := 0; i < 3*pselMax; i++ {
		p.Insert(0, i%ways, demandAccess(0x400000))
		if p.psel > pselMax {
			t.Fatalf("PSEL overflowed to %d after %d SRRIP-leader misses", p.psel, i+1)
		}
	}
	if p.psel != pselMax {
		t.Errorf("PSEL = %d after saturating up, want %d", p.psel, pselMax)
	}
	// Misses in BRRIP leader set 16 drain it to zero, never below.
	for i := 0; i < 3*pselMax; i++ {
		p.Insert(16, i%ways, demandAccess(0x400000))
		if p.psel < 0 {
			t.Fatalf("PSEL underflowed to %d after %d BRRIP-leader misses", p.psel, i+1)
		}
	}
	if p.psel != 0 {
		t.Errorf("PSEL = %d after saturating down, want 0", p.psel)
	}
}

// TestDRRIPPSELVoting pins which fills move the duel: leader-set demand and
// translation fills vote; follower-set fills, prefetches and writebacks do
// not.
func TestDRRIPPSELVoting(t *testing.T) {
	const sets, ways = 64, 4
	cases := []struct {
		name  string
		set   int
		a     *Access
		delta int
	}{
		{"srrip-leader-load", 0, demandAccess(0x400000), +1},
		{"brrip-leader-load", 16, demandAccess(0x400000), -1},
		{"follower-load", 1, demandAccess(0x400000), 0},
		{"srrip-leader-translation", 0,
			&Access{IP: 0x400000, Class: mem.ClassTransLeaf, Kind: mem.Translation}, +1},
		{"srrip-leader-prefetch", 0,
			&Access{IP: 0x400000, Class: mem.ClassPrefetch, Kind: mem.Prefetch}, 0},
		{"srrip-leader-writeback", 0,
			&Access{Class: mem.ClassWriteback, Kind: mem.Writeback}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := newDRRIP(sets, ways, drripOpts{})
			p.Insert(tc.set, 0, tc.a)
			if got := p.psel - pselInit; got != tc.delta {
				t.Errorf("PSEL moved %+d, want %+d", got, tc.delta)
			}
		})
	}
}

// TestDRRIPInsertionSteering pins how the PSEL and the leader override pick
// the insertion policy: followers obey the duel's verdict, leader sets
// always use their own family.
func TestDRRIPInsertionSteering(t *testing.T) {
	const sets, ways = 64, 4
	cases := []struct {
		name string
		psel int
		set  int
		want uint8
	}{
		// PSEL below threshold: SRRIP wins, followers insert long.
		{"follower-srrip-verdict", 0, 1, rripLong},
		// PSEL at/above threshold: BRRIP wins, followers insert distant
		// (the 1/32 long-throttle has not fired on the first fill).
		{"follower-brrip-verdict", pselMax, 1, rripMax},
		// Leader sets ignore the verdict.
		{"srrip-leader-ignores-brrip-verdict", pselMax, 0, rripLong},
		{"brrip-leader-ignores-srrip-verdict", 0, 16, rripMax},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := newDRRIP(sets, ways, drripOpts{})
			p.psel = tc.psel
			p.Insert(tc.set, 0, demandAccess(0x400000))
			if got := p.rrpv[tc.set*ways+0]; got != tc.want {
				t.Errorf("inserted at RRPV %d, want %d", got, tc.want)
			}
		})
	}
}

// TestBRRIPThrottle pins the deterministic 1-in-32 long insertion.
func TestBRRIPThrottle(t *testing.T) {
	const sets, ways = 4, 4
	p := newBRRIP(sets, ways)
	long := 0
	for i := 0; i < 64; i++ {
		p.Insert(0, i%ways, demandAccess(0x400000))
		if p.rrpv[i%ways] == rripLong {
			long++
		}
	}
	if long != 2 {
		t.Errorf("%d long insertions in 64 fills, want 2 (1/32)", long)
	}
}

// TestTDRRIPClassOverrides pins the translation-conscious insertion and
// promotion rules layered on the duel.
func TestTDRRIPClassOverrides(t *testing.T) {
	const sets, ways = 64, 4
	trans := &Access{IP: 0x400000, Class: mem.ClassTransLeaf, Kind: mem.Translation}
	replay := &Access{IP: 0x400000, Class: mem.ClassReplay, Kind: mem.Load}

	t.Run("t-drrip", func(t *testing.T) {
		p := newDRRIP(sets, ways, drripOpts{transMRU: true, replayDistant: true})
		p.Insert(1, 0, trans)
		if got := p.rrpv[1*ways+0]; got != 0 {
			t.Errorf("leaf translation inserted at RRPV %d, want 0 (pinned MRU)", got)
		}
		p.Insert(1, 1, replay)
		if got := p.rrpv[1*ways+1]; got != rripMax {
			t.Errorf("replay inserted at RRPV %d, want %d (dead-on-fill)", got, rripMax)
		}
		// A replay hit demotes instead of promoting: the block is dead after
		// its single use.
		p.Hit(1, 1, replay)
		if got := p.rrpv[1*ways+1]; got != rripMax {
			t.Errorf("replay hit left RRPV %d, want %d", got, rripMax)
		}
		p.Hit(1, 0, trans)
		if got := p.rrpv[1*ways+0]; got != 0 {
			t.Errorf("translation hit left RRPV %d, want 0", got)
		}
	})
	t.Run("drrip-replay0-misconfig", func(t *testing.T) {
		p := newDRRIP(sets, ways, drripOpts{transMRU: true, replayMRU: true})
		p.Insert(1, 0, replay)
		if got := p.rrpv[1*ways+0]; got != 0 {
			t.Errorf("replay inserted at RRPV %d, want 0 under replayMRU", got)
		}
	})
}

// TestSHiPSHCTSaturationAndDecay pins the 3-bit signature counters: they
// train up once per resident block, saturate at shctMax, decay on
// unreferenced eviction, floor at zero — and a zero counter predicts
// dead-on-arrival (distant insertion).
func TestSHiPSHCTSaturationAndDecay(t *testing.T) {
	const sets, ways = 4, 4
	p := newSHiP(sets, ways, shipOpts{})
	a := demandAccess(0x400000)

	if got := p.shctCounter(a); got != shctInit {
		t.Fatalf("initial counter = %d, want %d", got, shctInit)
	}

	// Repeated hits on ONE resident block train the counter only once.
	p.Insert(0, 0, a)
	for i := 0; i < 10; i++ {
		p.Hit(0, 0, a)
	}
	if got := p.shctCounter(a); got != shctInit+1 {
		t.Errorf("counter = %d after repeated hits on one fill, want %d (single train)", got, shctInit+1)
	}

	// Fill/hit cycles saturate at shctMax and stay there.
	for i := 0; i < 20; i++ {
		p.Insert(0, 0, a)
		p.Hit(0, 0, a)
	}
	if got := p.shctCounter(a); got != shctMax {
		t.Errorf("counter = %d after saturation, want %d", got, shctMax)
	}

	// Unreferenced evictions decay to zero and floor there.
	for i := 0; i < 20; i++ {
		p.Insert(0, 0, a)
		p.Evicted(0, 0)
	}
	if got := p.shctCounter(a); got != 0 {
		t.Errorf("counter = %d after repeated dead evictions, want 0", got)
	}

	// Zero counter: the next fill with that signature inserts distant.
	p.Insert(0, 1, a)
	if got := p.rrpv[0*ways+1]; got != rripMax {
		t.Errorf("predicted-dead fill inserted at RRPV %d, want %d", got, rripMax)
	}

	// A referenced eviction does not decay (the block repaid its fill).
	p.Insert(0, 2, a)
	p.Hit(0, 2, a) // counter: 0 -> 1
	before := p.shctCounter(a)
	p.Evicted(0, 2)
	if got := p.shctCounter(a); got != before {
		t.Errorf("counter = %d after reused eviction, want unchanged %d", got, before)
	}
}

// TestSHiPWritebackFillsUntrained pins that IP-less writeback fills neither
// train the SHCT nor occupy a useful insertion slot.
func TestSHiPWritebackFillsUntrained(t *testing.T) {
	const sets, ways = 4, 4
	p := newSHiP(sets, ways, shipOpts{})
	wb := &Access{Class: mem.ClassWriteback, Kind: mem.Writeback}
	p.Insert(0, 0, wb)
	if got := p.rrpv[0]; got != rripMax {
		t.Errorf("writeback inserted at RRPV %d, want %d", got, rripMax)
	}
	// Evicting it untouched must not decay any signature's counter (it was
	// never trained).
	snapshot := p.shctCounter(demandAccess(0))
	p.Evicted(0, 0)
	if got := p.shctCounter(demandAccess(0)); got != snapshot {
		t.Errorf("untrained eviction moved a counter: %d -> %d", snapshot, got)
	}
}
