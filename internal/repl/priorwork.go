package repl

import "atcsim/internal/mem"

// Simplified re-implementations of the two prior proposals the paper
// compares against in §V-B. Both are deliberately compact: they reproduce
// the mechanism the paper discusses, not every detail of the original
// papers.

// Bypasser is an optional Policy extension: a policy that can decline to
// cache a filling block entirely (the block is forwarded upward without
// allocation). Dead-block predictors use it.
type Bypasser interface {
	// ShouldBypass is consulted before a fill; returning true skips
	// allocation at this level.
	ShouldBypass(a *Access) bool
}

// csalt approximates CSALT-D (Marathe et al., MICRO'17): the cache is
// way-partitioned between translation blocks and data blocks, and the
// partition point adapts to the two classes' relative hit rates. Inside
// each partition, SRRIP decides.
type csalt struct {
	rripBase
	isTrans []bool // per block: belongs to the translation partition
	// transWays is the current number of ways reserved for translations.
	transWays int
	// Hit/miss counters per class drive periodic repartitioning.
	transHits, transMiss uint64
	dataHits, dataMiss   uint64
	events               uint64
}

const (
	csaltMinWays    = 1
	csaltRebalance  = 4096 // accesses between partition adjustments
	csaltMaxPortion = 4    // translations never take more than ways/4
)

func newCSALT(sets, ways int) *csalt {
	return &csalt{
		rripBase:  newRRIPBase(sets, ways),
		isTrans:   make([]bool, sets*ways),
		transWays: csaltMinWays,
	}
}

func (p *csalt) Name() string { return "csalt" }

func (p *csalt) isTranslation(a *Access) bool {
	return a.Class == mem.ClassTransLeaf || a.Class == mem.ClassTransUpper
}

// rebalance grows the translation partition when translations miss
// relatively more than data, and shrinks it otherwise.
func (p *csalt) rebalance() {
	tm := ratio(p.transMiss, p.transMiss+p.transHits)
	dm := ratio(p.dataMiss, p.dataMiss+p.dataHits)
	max := p.ways / csaltMaxPortion
	if max < csaltMinWays {
		max = csaltMinWays
	}
	switch {
	case tm > dm && p.transWays < max:
		p.transWays++
	case dm > tm && p.transWays > csaltMinWays:
		p.transWays--
	}
	p.transHits, p.transMiss, p.dataHits, p.dataMiss = 0, 0, 0, 0
}

func (p *csalt) account(a *Access, hit bool) {
	if p.isTranslation(a) {
		if hit {
			p.transHits++
		} else {
			p.transMiss++
		}
	} else {
		if hit {
			p.dataHits++
		} else {
			p.dataMiss++
		}
	}
	p.events++
	if p.events%csaltRebalance == 0 {
		p.rebalance()
	}
}

// Victim evicts within the filling class's partition: a translation fill
// evicts a data block only while translations hold fewer ways than their
// quota, and vice versa.
func (p *csalt) Victim(set int, a *Access, evictable func(int) bool) int {
	base := set * p.ways
	occupied := 0
	for w := 0; w < p.ways; w++ {
		if p.isTrans[base+w] {
			occupied++
		}
	}
	wantTrans := p.isTranslation(a)
	// Decide which partition gives up a way.
	evictTrans := occupied > p.transWays || (wantTrans && occupied == p.transWays)
	if !wantTrans && occupied < p.transWays {
		evictTrans = false
	}

	best, bestV := -1, -1
	for w := 0; w < p.ways; w++ {
		if !evictable(w) || p.isTrans[base+w] != evictTrans {
			continue
		}
		if v := int(p.rrpv[base+w]); v > bestV {
			best, bestV = w, v
		}
	}
	if best < 0 {
		// Partition empty (or nothing evictable in it): fall back to SRRIP
		// over everything evictable.
		return p.victim(set, evictable)
	}
	return best
}

func (p *csalt) Insert(set, way int, a *Access) {
	i := set*p.ways + way
	p.isTrans[i] = p.isTranslation(a)
	p.account(a, false)
	if a.Distant {
		p.set(set, way, rripMax)
		return
	}
	p.set(set, way, rripLong)
}

func (p *csalt) Hit(set, way int, a *Access) {
	p.account(a, true)
	p.set(set, way, 0)
}

func (p *csalt) Evicted(set, way int) {}

// cbpred approximates CbPred (Mazumdar et al., HPCA'21): SHiP with a
// dead-block bypass — fills whose signature counter predicts no reuse are
// not allocated at all, freeing capacity. As the paper argues, bypassing
// dead blocks does not shorten the replay loads' stalls; the comparison
// experiment quantifies that.
type cbpred struct {
	*ship
	sample uint32
}

func newCBPred(sets, ways int) *cbpred {
	return &cbpred{ship: newSHiP(sets, ways, shipOpts{})}
}

func (p *cbpred) Name() string { return "cbpred" }

// ShouldBypass skips allocation for predicted-dead demand fills. One in 32
// dead-predicted fills is allocated anyway (a deterministic sampling fill),
// giving a wrongly-dead signature a path back: if the sampled block hits,
// SHiP's normal training resurrects the counter.
func (p *cbpred) ShouldBypass(a *Access) bool {
	if a.Kind == mem.Writeback || a.Kind == mem.Prefetch {
		return false
	}
	if p.shct[signature(a, shctBits, false)] != 0 {
		return false
	}
	p.sample++
	return p.sample%32 != 0
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

var (
	_ Policy   = (*csalt)(nil)
	_ Policy   = (*cbpred)(nil)
	_ Bypasser = (*cbpred)(nil)
)

func init() {
	Register("csalt", func(sets, ways int) Policy { return newCSALT(sets, ways) })
	Register("cbpred", func(sets, ways int) Policy { return newCBPred(sets, ways) })
}
