package cache

import (
	"atcsim/internal/mem"
	"atcsim/internal/stats"
)

// recallTracker measures the paper's "recall distance": for a block evicted
// from a set, the number of unique accesses arriving at that set before the
// block is requested again (Figs. 5, 7 and 18). Uniqueness is approximated
// by a per-set sequence that advances whenever the accessed line differs
// from the immediately preceding access to the set, which de-duplicates the
// bursts that would otherwise inflate distances.
type recallTracker struct {
	sets   []recallSet
	hists  [mem.NumClasses]*stats.Histogram
	evicts [mem.NumClasses]uint64
}

type recallSet struct {
	seq      uint64
	lastLine mem.Addr
	// evicted maps a line to the sequence number and fill class at its last
	// eviction from this set.
	evicted map[mem.Addr]evictRec
}

type evictRec struct {
	seq   uint64
	class mem.Class
}

func newRecallTracker(sets int) *recallTracker {
	t := &recallTracker{sets: make([]recallSet, sets)}
	for c := mem.Class(0); c < mem.NumClasses; c++ {
		t.hists[c] = stats.NewHistogram(stats.RecallBounds...)
	}
	return t
}

// observe records one demand/translation access to a set, resolving any
// pending recall measurement for the accessed line.
func (t *recallTracker) observe(set int, line mem.Addr, _ mem.Class) {
	s := &t.sets[set]
	if line != s.lastLine || s.seq == 0 {
		s.seq++
		s.lastLine = line
	}
	if s.evicted == nil {
		return
	}
	if rec, ok := s.evicted[line]; ok {
		t.hists[rec.class].Add(s.seq - rec.seq)
		delete(s.evicted, line)
	}
}

// evicted registers an eviction so a future re-access can report its recall
// distance. Only translation and replay blocks are tracked — the classes
// the paper's figures need — to bound memory.
func (t *recallTracker) evicted(set int, line mem.Addr, class mem.Class) {
	if class != mem.ClassTransLeaf && class != mem.ClassReplay {
		return
	}
	s := &t.sets[set]
	if s.evicted == nil {
		s.evicted = make(map[mem.Addr]evictRec)
	}
	t.evicts[class]++
	s.evicted[line] = evictRec{seq: s.seq, class: class}
}

func (t *recallTracker) hist(c mem.Class) *stats.Histogram { return t.hists[c] }

func (t *recallTracker) evictions(c mem.Class) uint64 { return t.evicts[c] }

func (t *recallTracker) reset() {
	for _, h := range t.hists {
		h.Reset()
	}
	t.evicts = [mem.NumClasses]uint64{}
	for i := range t.sets {
		t.sets[i].evicted = nil
		t.sets[i].seq = 0
		t.sets[i].lastLine = 0
	}
}
