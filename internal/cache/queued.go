package cache

import (
	"fmt"

	"atcsim/internal/mem"
)

// Queued wraps a Cache with ChampSim-style bounded request deques (RQ, WQ,
// PQ, VAPQ) stepped one cycle at a time. It implements Lower, so a queued
// hierarchy is built by interposing one Queued per level: the inner cache's
// lower pointer is the next level's Queued wrapper, which routes demand
// misses into the lower RQ and evicted dirty lines into the lower WQ.
//
// Semantics relative to the analytic engine:
//
//   - Reads occupy an RQ slot from enqueue until their fill completes, so a
//     burst of overlapping misses genuinely fills the queue (rq_full).
//   - Writebacks land in the WQ and are absorbed at MaxWrite per cycle; a
//     read that matches a pending WQ entry is forwarded without touching
//     the array (wq_forward).
//   - Prefetches issued by the inner cache (ATP, TEMPO, attached
//     prefetchers) are diverted through the pfSink hook into the PQ —
//     translation-triggered distant prefetches stage through the VAPQ
//     first — and merge with pending entries for the same line
//     (pq_merged). Leftover read bandwidth drains the PQ, so demand always
//     wins the port.
//   - A read-queue head that needs a miss is blocked head-of-line while
//     every MSHR is occupied (mshr_full); translation reads travel through
//     the walker's private buffers and bypass the gate, matching the inner
//     cache's MSHR model.
//
// When every queue is drained between operations the inner cache observes
// the same operations in the same order as the analytic engine, only at
// shifted cycles — the lockstep differential harness in internal/validate
// holds the two engines to identical state under exactly that schedule.
//
// Not safe for concurrent use, like the Cache it wraps.
type Queued struct {
	c    *Cache
	qcfg QueueConfig

	rq   ring
	wq   ring
	pq   ring
	vapq ring

	now int64
	seq uint64
	qst QueueStats
}

// NewQueued wraps c with bounded request queues and installs the prefetch
// sink that diverts the inner cache's Prefetch calls into the PQ/VAPQ.
func NewQueued(c *Cache, qcfg QueueConfig) *Queued {
	qcfg = qcfg.withDefaults()
	q := &Queued{
		c:    c,
		qcfg: qcfg,
		rq:   newRing(qcfg.RQ),
		wq:   newRing(qcfg.WQ),
		pq:   newRing(qcfg.PQ),
		vapq: newRing(qcfg.VAPQ),
	}
	c.pfSink = q.enqueuePrefetch
	return q
}

// Inner returns the wrapped cache.
func (q *Queued) Inner() *Cache { return q.c }

// Name returns the wrapped cache's name.
func (q *Queued) Name() string { return q.c.Name() }

// Level returns the wrapped cache's hierarchy level.
func (q *Queued) Level() mem.Level { return q.c.Level() }

// Now returns the engine's current cycle.
func (q *Queued) Now() int64 { return q.now }

// Stats snapshots the queue counters, deriving the conservation totals from
// the rings.
func (q *Queued) Stats() QueueStats {
	st := q.qst
	st.Enqueued = q.rq.pushes + q.wq.pushes + q.pq.pushes + q.vapq.pushes
	st.Drained = q.rq.pops + q.wq.pops + q.pq.pops + q.vapq.pops
	return st
}

// ResetStats zeroes the queue counters (end of warmup). Resident entries
// are not touched; Drain first for a clean epoch boundary.
func (q *Queued) ResetStats() { q.qst = QueueStats{} }

// busy reports whether any queue still holds work to process. Done RQ
// entries waiting only for their fill cycle to pass do not count — they
// retire on their own as time advances.
func (q *Queued) busy() bool {
	if !q.wq.empty() || !q.pq.empty() || !q.vapq.empty() {
		return true
	}
	for i := 0; i < q.rq.len(); i++ {
		if !q.rq.at(i).done {
			return true
		}
	}
	return false
}

// catchUp advances the engine to cycle: stepping while there is queued work,
// fast-forwarding across idle gaps.
func (q *Queued) catchUp(cycle int64) {
	for q.now < cycle {
		if !q.busy() {
			q.now = cycle
			q.retire()
			return
		}
		q.step()
	}
}

// Drain steps until every queue is empty, force-retiring in-flight RQ slots
// at the end. Used at epoch boundaries (warmup reset, end of run) and by
// the lockstep differential harness between operations.
func (q *Queued) Drain() {
	for q.busy() {
		q.step()
	}
	for !q.rq.empty() {
		if e := q.rq.at(0); e.res.Ready > q.now {
			q.now = e.res.Ready
		}
		q.retire()
	}
}

// step advances one cycle: retire completed reads, drain writes, stage
// translation prefetches, process reads, then spend leftover read bandwidth
// on prefetches.
func (q *Queued) step() {
	q.now++
	q.retire()
	q.drainWQ()
	q.stageVAPQ()
	budget := q.processRQ()
	q.processPQ(budget)
}

// retire releases RQ slots whose fills have completed, in FIFO order.
func (q *Queued) retire() {
	for !q.rq.empty() {
		e := q.rq.at(0)
		if !e.done || e.res.Ready > q.now {
			return
		}
		q.rq.pop()
	}
}

// drainWQ absorbs up to MaxWrite pending writebacks into the inner cache.
func (q *Queued) drainWQ() {
	for i := 0; i < q.qcfg.MaxWrite && !q.wq.empty(); i++ {
		e := q.wq.at(0)
		if e.enq >= q.now {
			return
		}
		q.c.Access(&e.req, q.now)
		q.wq.pop()
	}
}

// stageVAPQ moves translation-triggered prefetches whose staging latency
// has elapsed from the VAPQ into the PQ. A full PQ blocks the head.
func (q *Queued) stageVAPQ() {
	for !q.vapq.empty() {
		e := q.vapq.at(0)
		if e.enq+q.qcfg.VAPQLatency > q.now {
			return
		}
		slot := q.pq.push()
		if slot == nil {
			return
		}
		q.seq++
		*slot = queueEntry{req: e.req, line: e.line, distant: e.distant, enq: q.now, seq: q.seq}
		q.vapq.pop()
	}
}

// processRQ services up to MaxRead eligible read-queue entries in FIFO
// order and returns the unused read budget. A head that needs a miss while
// the MSHRs are saturated blocks the whole queue for the cycle.
func (q *Queued) processRQ() int {
	budget := q.qcfg.MaxRead
	for i := 0; i < q.rq.len() && budget > 0; i++ {
		e := q.rq.at(i)
		if e.done {
			continue
		}
		if e.enq >= q.now {
			break
		}
		if e.req.Kind != mem.Translation && !q.c.Contains(e.req.Addr) && q.c.mshrFull(q.now) {
			q.qst.MSHRFull++
			break
		}
		e.res = q.c.Access(&e.req, q.now)
		e.done = true
		budget--
	}
	return budget
}

// processPQ spends leftover read bandwidth issuing queued prefetches.
func (q *Queued) processPQ(budget int) {
	for ; budget > 0 && !q.pq.empty(); budget-- {
		e := q.pq.at(0)
		if e.enq >= q.now {
			return
		}
		q.c.prefetchNow(e.line, q.now, e.distant)
		q.pq.pop()
	}
}

// enqueuePrefetch is the inner cache's pfSink: divert a Prefetch call into
// the PQ (or, for distant translation-triggered prefetches, the VAPQ),
// merging with a pending entry for the same line and dropping on overflow.
func (q *Queued) enqueuePrefetch(line mem.Addr, cycle int64, distant bool) int64 {
	if q.pq.find(line) || q.vapq.find(line) {
		q.qst.PQMerged++
		return cycle
	}
	target := &q.pq
	if distant {
		target = &q.vapq
	}
	slot := target.push()
	if slot == nil {
		if distant {
			q.qst.VAPQFull++
		} else {
			q.qst.PQFull++
		}
		return cycle
	}
	q.seq++
	*slot = queueEntry{
		req:     mem.Request{Addr: line << mem.LineBits, Kind: mem.Prefetch},
		line:    line,
		distant: distant,
		enq:     cycle,
		seq:     q.seq,
	}
	return cycle
}

// Access implements Lower: reads are pushed through the RQ (stalling on a
// full queue), writebacks through the WQ. The call steps the engine until
// the request's outcome is known, so the caller keeps the analytic engine's
// synchronous interface while occupancy, bandwidth and backpressure come
// from the queues.
func (q *Queued) Access(req *mem.Request, cycle int64) Result {
	q.catchUp(cycle)

	if req.Kind == mem.Writeback {
		for q.wq.full() {
			q.qst.WQFull++
			q.step()
		}
		q.seq++
		slot := q.wq.push()
		*slot = queueEntry{req: *req, line: mem.LineAddr(req.Addr), enq: q.now, seq: q.seq}
		return Result{Ready: q.now + q.c.cfg.Latency, Src: q.c.cfg.Level}
	}

	line := mem.LineAddr(req.Addr)
	if q.wq.find(line) {
		// Forward the youngest store's data without touching the array.
		q.qst.WQForward++
		return Result{Ready: q.now + q.c.cfg.Latency, Src: q.c.cfg.Level}
	}
	if q.rq.find(line) {
		// A read for the same line is already in flight; the inner cache's
		// fill-timestamp merge path coalesces them when this entry issues.
		q.qst.RQMerged++
	}
	for q.rq.full() {
		q.qst.RQFull++
		q.step()
	}
	q.seq++
	e := q.rq.push()
	*e = queueEntry{req: *req, line: line, enq: q.now, seq: q.seq}
	// The slot pointer stays valid while stepping: step() only pops from
	// the RQ and a pop never moves entries.
	for !e.done {
		q.step()
	}
	return e.res
}

// CheckInvariants audits the queue structures: bounded occupancy, head
// indices in range, push/pop conservation (no entry lost or duplicated),
// FIFO sequence order, entries not from the future, and the inner cache's
// own invariants.
func (q *Queued) CheckInvariants() error {
	name := q.c.Name()
	rings := []struct {
		r     *ring
		label string
	}{
		{&q.rq, "rq"}, {&q.wq, "wq"}, {&q.pq, "pq"}, {&q.vapq, "vapq"},
	}
	for _, it := range rings {
		if err := it.r.check(name + " " + it.label); err != nil {
			return err
		}
		var prev uint64
		for i := 0; i < it.r.len(); i++ {
			e := it.r.at(i)
			if i > 0 && e.seq <= prev {
				return fmt.Errorf("%s %s: FIFO order broken at index %d (seq %d after %d)",
					name, it.label, i, e.seq, prev)
			}
			prev = e.seq
			if e.seq > q.seq {
				return fmt.Errorf("%s %s: entry seq %d beyond issued %d", name, it.label, e.seq, q.seq)
			}
			// RQ/WQ entries are never enqueued in the future; PQ/VAPQ
			// entries may carry a prefetcher-issued delay.
			if (it.r == &q.rq || it.r == &q.wq) && e.enq > q.now {
				return fmt.Errorf("%s %s: entry enqueued at %d beyond now %d", name, it.label, e.enq, q.now)
			}
		}
	}
	st := q.Stats()
	resident := uint64(q.rq.len() + q.wq.len() + q.pq.len() + q.vapq.len())
	if st.Enqueued-st.Drained != resident {
		return fmt.Errorf("%s: queue conservation broken: %d enqueued, %d drained, %d resident",
			name, st.Enqueued, st.Drained, resident)
	}
	return q.c.CheckInvariants()
}
