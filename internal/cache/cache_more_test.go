package cache

import (
	"testing"

	"atcsim/internal/mem"
)

// TestInFlightBlocksNotEvicted verifies the MSHR-fill protection: a block
// whose fill is still outstanding must not be chosen as a victim while
// another way is evictable.
func TestInFlightBlocksNotEvicted(t *testing.T) {
	lower := &fakeLower{latency: 1000}
	// One set, two ways.
	c := MustNew(Config{Name: "t", SizeBytes: 128, Ways: 2, Latency: 1, Policy: "lru"}, lower)

	// Way A: completed fill (old). Way B: in-flight fill.
	c.Access(loadReq(0*64), 0)    // fills, ready at ~1001
	c.Access(loadReq(1*64), 5000) // fills way 1, in flight until ~6001

	// A third miss at cycle 5010 must evict way 0 (complete), NOT the
	// in-flight way 1 — even though way 0 is MRU-ish by LRU stamps after
	// way 1's insert.
	c.Access(loadReq(2*64), 5010)
	if !c.Contains(1 * 64) {
		t.Fatal("in-flight block was evicted")
	}
	if c.Contains(0 * 64) {
		t.Fatal("completed block survived instead of being evicted")
	}
}

func TestPrefetchDroppedOnFullMSHRs(t *testing.T) {
	lower := &fakeLower{latency: 10_000}
	c := MustNew(Config{
		Name: "t", SizeBytes: 64 << 10, Ways: 16, Latency: 1,
		Policy: "lru", MSHRs: 2,
	}, lower)
	// Fill both MSHRs with demand misses.
	c.Access(loadReq(0x0000), 0)
	c.Access(loadReq(0x4000), 0)
	// A prefetch now must be dropped, not queued.
	c.Prefetch(mem.LineAddr(0x8000), 1, false)
	st := c.Stats()
	if st.PrefDropped != 1 {
		t.Errorf("PrefDropped = %d, want 1", st.PrefDropped)
	}
	if st.PrefIssued != 0 {
		t.Errorf("PrefIssued = %d, want 0", st.PrefIssued)
	}
	if c.Contains(0x8000) {
		t.Error("dropped prefetch still filled the cache")
	}
}

func TestTranslationsBypassMSHRs(t *testing.T) {
	lower := &fakeLower{latency: 1000}
	c := MustNew(Config{
		Name: "t", SizeBytes: 64 << 10, Ways: 16, Latency: 1,
		Policy: "lru", MSHRs: 1,
	}, lower)
	// One demand miss occupies the single MSHR.
	c.Access(loadReq(0x0000), 0)
	// A page-walk read is not throttled by the full MSHRs.
	leaf := &mem.Request{Addr: 0x9000, Kind: mem.Translation, Level: 1, Leaf: true}
	res := c.Access(leaf, 10)
	if res.Ready != 10+1+1000 {
		t.Errorf("translation ready = %d, want 1011 (no MSHR stall)", res.Ready)
	}
	// But a second demand miss IS throttled.
	res = c.Access(loadReq(0x4000), 10)
	if res.Ready <= 10+1+1000 {
		t.Errorf("demand miss ready = %d, should wait for the MSHR", res.Ready)
	}
}

func TestAvgLatencyStat(t *testing.T) {
	lower := &fakeLower{latency: 100}
	c := small(t, Config{}, lower)
	c.Access(loadReq(0x1000), 0)    // miss: 110
	c.Access(loadReq(0x1000), 1000) // hit: 10
	st := c.Stats()
	want := float64(110+10) / 2
	if got := st.AvgLatency(mem.ClassNonReplay); got != want {
		t.Errorf("AvgLatency = %v, want %v", got, want)
	}
	if st.AvgLatency(mem.ClassReplay) != 0 {
		t.Error("replay latency non-zero without replay accesses")
	}
}

func TestRecallEvictionDenominator(t *testing.T) {
	lower := &fakeLower{latency: 10}
	c := MustNew(Config{
		Name: "t", SizeBytes: 128, Ways: 2, Latency: 1,
		Policy: "lru", TrackRecall: true,
	}, lower)
	leaf := func(addr mem.Addr) *mem.Request {
		return &mem.Request{Addr: addr, Kind: mem.Translation, Level: 1, Leaf: true, IP: 3}
	}
	// Two translations evicted; only one recalled.
	c.Access(leaf(0), 0)
	c.Access(leaf(64), 10)
	c.Access(loadReq(128), 20) // evicts line 0
	c.Access(loadReq(192), 30) // evicts line 64
	c.Access(leaf(0), 40)      // recall of line 0 only
	if got := c.RecallEvictions(mem.ClassTransLeaf); got != 2 {
		t.Fatalf("recall evictions = %d, want 2", got)
	}
	h := c.RecallHistogram(mem.ClassTransLeaf)
	if h.Total() != 1 {
		t.Fatalf("recall samples = %d, want 1", h.Total())
	}
}

func TestDeadBlockBypassPolicy(t *testing.T) {
	lower := &fakeLower{latency: 100}
	c := MustNew(Config{Name: "t", SizeBytes: 4096, Ways: 4, Latency: 1, Policy: "cbpred"}, lower)
	deadIP := mem.Addr(0x400000)
	// Train the signature dead: fill + conflicting fills in one set.
	for i := 0; i < 80; i++ {
		c.Access(&mem.Request{Addr: mem.Addr(i) * 4096, IP: deadIP, Kind: mem.Load}, int64(i)*1000)
	}
	before := c.Stats().Bypasses
	c.Access(&mem.Request{Addr: 99 * 4096, IP: deadIP, Kind: mem.Load}, 1_000_000)
	if c.Stats().Bypasses <= before {
		t.Fatalf("no bypass recorded (bypasses=%d)", c.Stats().Bypasses)
	}
	if c.Contains(99 * 4096) {
		t.Error("bypassed block was allocated")
	}
}
