package cache

import (
	"testing"
	"testing/quick"

	"atcsim/internal/mem"
)

// fakeLower is a scripted next level with fixed latency.
type fakeLower struct {
	latency    int64
	accesses   []mem.Request
	writebacks []mem.Addr
}

func (f *fakeLower) Access(req *mem.Request, cycle int64) Result {
	f.accesses = append(f.accesses, *req)
	if req.Kind == mem.Writeback {
		f.writebacks = append(f.writebacks, req.Addr)
		return Result{Ready: cycle, Src: mem.LvlDRAM}
	}
	return Result{Ready: cycle + f.latency, Src: mem.LvlDRAM}
}

func small(t *testing.T, cfg Config, lower Lower) *Cache {
	t.Helper()
	if cfg.SizeBytes == 0 {
		cfg.SizeBytes = 4 * 1024
	}
	if cfg.Ways == 0 {
		cfg.Ways = 4
	}
	if cfg.Latency == 0 {
		cfg.Latency = 10
	}
	if cfg.Name == "" {
		cfg.Name = "L2"
	}
	cfg.Level = mem.LvlL2
	c, err := New(cfg, lower)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func loadReq(addr mem.Addr) *mem.Request {
	return &mem.Request{Addr: addr, VAddr: addr, IP: 0x400000, Kind: mem.Load}
}

func TestNewValidation(t *testing.T) {
	lower := &fakeLower{latency: 100}
	if _, err := New(Config{SizeBytes: 0, Ways: 4}, lower); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New(Config{SizeBytes: 3000, Ways: 4, Latency: 1}, lower); err == nil {
		t.Error("non-power-of-two set count accepted")
	}
	if _, err := New(Config{SizeBytes: 4096, Ways: 4, Policy: "nope"}, lower); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := New(Config{SizeBytes: 4096, Ways: 4}, nil); err == nil {
		t.Error("nil lower accepted")
	}
	c := MustNew(Config{Name: "x", SizeBytes: 4096, Ways: 4, Latency: 2}, lower)
	if c.Sets() != 16 || c.Ways() != 4 || c.PolicyName() != "lru" || c.Name() != "x" {
		t.Errorf("geometry: sets=%d ways=%d policy=%s", c.Sets(), c.Ways(), c.PolicyName())
	}
}

func TestMissThenHitLatency(t *testing.T) {
	lower := &fakeLower{latency: 100}
	c := small(t, Config{}, lower)

	res := c.Access(loadReq(0x1000), 0)
	if res.Ready != 10+100 {
		t.Errorf("miss ready = %d, want 110", res.Ready)
	}
	if res.Src != mem.LvlDRAM {
		t.Errorf("miss src = %v", res.Src)
	}
	// Hit after the fill completes.
	res = c.Access(loadReq(0x1000), 200)
	if res.Ready != 210 {
		t.Errorf("hit ready = %d, want 210", res.Ready)
	}
	if res.Src != mem.LvlL2 {
		t.Errorf("hit src = %v", res.Src)
	}
	st := c.Stats()
	if st.Access[mem.ClassNonReplay] != 2 || st.Miss[mem.ClassNonReplay] != 1 {
		t.Errorf("counters = %d/%d", st.Access[mem.ClassNonReplay], st.Miss[mem.ClassNonReplay])
	}
}

func TestMSHRMerge(t *testing.T) {
	lower := &fakeLower{latency: 100}
	c := small(t, Config{}, lower)

	first := c.Access(loadReq(0x2000), 0)
	// A second access before the fill completes merges and sees the same
	// ready cycle — and inherits the original source level.
	second := c.Access(loadReq(0x2000), 5)
	if second.Ready != first.Ready {
		t.Errorf("merge ready = %d, want %d", second.Ready, first.Ready)
	}
	if second.Src != mem.LvlDRAM {
		t.Errorf("merge src = %v, want DRAM", second.Src)
	}
	if got := len(lower.accesses); got != 1 {
		t.Errorf("lower accesses = %d, want 1 (merged)", got)
	}
	if c.Stats().Merges != 1 {
		t.Errorf("merges = %d", c.Stats().Merges)
	}
}

func TestMSHRThrottling(t *testing.T) {
	lower := &fakeLower{latency: 1000}
	c := small(t, Config{MSHRs: 2, SizeBytes: 64 * 1024, Ways: 16}, lower)
	// Two outstanding misses fill the MSHRs.
	r1 := c.Access(loadReq(0x0000), 0)
	c.Access(loadReq(0x4000), 0)
	// The third miss must wait for the earliest completion.
	r3 := c.Access(loadReq(0x8000), 0)
	if r3.Ready <= r1.Ready+999 {
		t.Errorf("third miss ready = %d, want > %d (MSHR stall)", r3.Ready, r1.Ready+999)
	}
}

func TestEvictionDeadAccounting(t *testing.T) {
	lower := &fakeLower{latency: 10}
	// Tiny cache: 1 set x 2 ways.
	c := MustNew(Config{Name: "t", SizeBytes: 128, Ways: 2, Latency: 1, Policy: "lru"}, lower)

	c.Access(loadReq(0*64), 0)   // fill way 0
	c.Access(loadReq(1*64), 100) // fill way 1
	c.Access(loadReq(0*64), 200) // reuse way 0
	c.Access(loadReq(2*64), 300) // evicts way 1 (dead) — LRU victim
	c.Access(loadReq(3*64), 400) // evicts way 0 (reused)
	st := c.Stats()
	if st.Evictions[mem.ClassNonReplay] != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions[mem.ClassNonReplay])
	}
	if st.DeadEvictions[mem.ClassNonReplay] != 1 {
		t.Errorf("dead evictions = %d, want 1", st.DeadEvictions[mem.ClassNonReplay])
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	lower := &fakeLower{latency: 10}
	c := MustNew(Config{Name: "t", SizeBytes: 128, Ways: 2, Latency: 1, Policy: "lru"}, lower)

	store := &mem.Request{Addr: 0, Kind: mem.Store, IP: 1}
	c.Access(store, 0)
	c.Access(loadReq(64), 10)
	// Two more fills evict both blocks; the dirty one must write back.
	c.Access(loadReq(128), 20)
	c.Access(loadReq(192), 30)
	if len(lower.writebacks) != 1 || lower.writebacks[0] != 0 {
		t.Errorf("writebacks = %v, want [0]", lower.writebacks)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writeback counter = %d", c.Stats().Writebacks)
	}
}

func TestWritebackAbsorption(t *testing.T) {
	lower := &fakeLower{latency: 10}
	c := small(t, Config{}, lower)
	// Writeback to an absent line allocates it without fetching below.
	wb := &mem.Request{Addr: 0x3000, Kind: mem.Writeback}
	c.Access(wb, 0)
	if len(lower.accesses) != 0 {
		t.Errorf("writeback fetched from lower: %d accesses", len(lower.accesses))
	}
	if !c.Contains(0x3000) {
		t.Error("writeback line not allocated")
	}
	// A writeback to a present line just sets dirty.
	c.Access(wb, 10)
	st := c.Stats()
	if st.Access[mem.ClassWriteback] != 2 {
		t.Errorf("writeback accesses = %d", st.Access[mem.ClassWriteback])
	}
}

func TestIdealTranslationMode(t *testing.T) {
	lower := &fakeLower{latency: 500}
	c := small(t, Config{IdealTranslations: true}, lower)

	leaf := &mem.Request{Addr: 0x5000, Kind: mem.Translation, Level: 1, Leaf: true, IP: 7}
	res := c.Access(leaf, 0)
	if res.Ready != 10 {
		t.Errorf("ideal translation ready = %d, want hit latency 10", res.Ready)
	}
	// Bandwidth still consumed below.
	if len(lower.accesses) != 1 {
		t.Errorf("ideal miss did not propagate: %d", len(lower.accesses))
	}
	// Upper-level translations are NOT idealized.
	// Lookup (10) + lower latency (500).
	up := &mem.Request{Addr: 0x6000, Kind: mem.Translation, Level: 3, IP: 7}
	if res := c.Access(up, 0); res.Ready != 510 {
		t.Errorf("upper translation ready = %d, want 510", res.Ready)
	}
	// Replays are not idealized in this mode.
	rep := loadReq(0x7000)
	rep.IsReplay = true
	if res := c.Access(rep, 0); res.Ready <= 10 {
		t.Error("replay unexpectedly idealized")
	}
}

func TestIdealReplayMode(t *testing.T) {
	lower := &fakeLower{latency: 500}
	c := small(t, Config{IdealReplays: true}, lower)
	rep := loadReq(0x7000)
	rep.IsReplay = true
	if res := c.Access(rep, 0); res.Ready != 10 {
		t.Errorf("ideal replay ready = %d, want 10", res.Ready)
	}
}

func TestATPTriggersOnLeafHit(t *testing.T) {
	lower := &fakeLower{latency: 100}
	c := small(t, Config{ATP: true}, lower)

	leaf := &mem.Request{Addr: 0x5000, Kind: mem.Translation, Level: 1, Leaf: true, IP: 7, ReplayTarget: 0x9abc0}
	// First access misses: no ATP (ATP fires on hits; the miss case is
	// TEMPO's job at the DRAM controller).
	c.Access(leaf, 0)
	if c.Contains(0x9abc0) {
		t.Fatal("ATP fired on a miss")
	}
	// Hit after fill: ATP prefetches the replay line into this cache.
	c.Access(leaf, 1000)
	if !c.Contains(0x9abc0) {
		t.Fatal("ATP did not prefetch the replay target")
	}
	if c.Stats().PrefIssued != 1 {
		t.Errorf("PrefIssued = %d", c.Stats().PrefIssued)
	}
	// The replay load arrives after the translation has returned through
	// the upper levels (hit latency + core turnaround) and merges with the
	// in-flight ATP prefetch: strictly faster than a fresh miss would be.
	rep := loadReq(0x9abc0)
	rep.IsReplay = true
	res := c.Access(rep, 1040)
	if freshMiss := int64(1040 + 10 + 100); res.Ready >= freshMiss {
		t.Errorf("replay not accelerated: ready = %d, fresh miss would be %d", res.Ready, freshMiss)
	}
	st := c.Stats()
	if st.PrefUseful+st.PrefLate != 1 {
		t.Errorf("prefetch usefulness not recorded: %+v", st)
	}
}

func TestATPDisabledNoPrefetch(t *testing.T) {
	lower := &fakeLower{latency: 100}
	c := small(t, Config{}, lower)
	leaf := &mem.Request{Addr: 0x5000, Kind: mem.Translation, Level: 1, Leaf: true, IP: 7, ReplayTarget: 0x9abc0}
	c.Access(leaf, 0)
	c.Access(leaf, 1000)
	if c.Contains(0x9abc0) {
		t.Error("prefetch issued with ATP disabled")
	}
}

type onePrefetcher struct{ line mem.Addr }

func (p *onePrefetcher) Name() string { return "one" }
func (p *onePrefetcher) Train(req *mem.Request, hit bool, cycle int64, out []Candidate) []Candidate {
	return append(out, Candidate{Line: p.line})
}

func TestPrefetcherWiring(t *testing.T) {
	lower := &fakeLower{latency: 100}
	c := small(t, Config{}, lower)
	pf := &onePrefetcher{line: mem.LineAddr(0x8000)}
	c.AttachPrefetcher(pf)
	if c.Prefetcher() != pf {
		t.Fatal("prefetcher not attached")
	}
	c.Access(loadReq(0x1000), 0)
	if !c.Contains(0x8000) {
		t.Error("prefetch candidate not installed")
	}
	// Translations must NOT train the data prefetcher.
	lower.accesses = nil
	pf.line = mem.LineAddr(0xA000)
	c.Access(&mem.Request{Addr: 0x5000, Kind: mem.Translation, Level: 1, Leaf: true}, 0)
	if c.Contains(0xA000) {
		t.Error("translation access trained the prefetcher")
	}
}

func TestRecallDistance(t *testing.T) {
	lower := &fakeLower{latency: 10}
	// One-set cache to make distances deterministic.
	c := MustNew(Config{
		Name: "t", SizeBytes: 128, Ways: 2, Latency: 1,
		Policy: "lru", TrackRecall: true,
	}, lower)

	leaf := func(addr mem.Addr) *mem.Request {
		return &mem.Request{Addr: addr, Kind: mem.Translation, Level: 1, Leaf: true, IP: 3}
	}
	c.Access(leaf(0), 0)       // seq 1, fill
	c.Access(loadReq(64), 10)  // seq 2
	c.Access(loadReq(128), 20) // seq 3: evicts line 0 (translation)
	c.Access(loadReq(192), 30) // seq 4: evicts line 64
	c.Access(leaf(0), 40)      // seq 5: recall of line 0 → distance 5-3 = 2
	h := c.RecallHistogram(mem.ClassTransLeaf)
	if h == nil {
		t.Fatal("no recall histogram")
	}
	if h.Total() != 1 {
		t.Fatalf("recall samples = %d, want 1", h.Total())
	}
	if h.Max() != 2 {
		t.Errorf("recall distance = %d, want 2", h.Max())
	}
	// Replay histogram exists and is empty.
	if rh := c.RecallHistogram(mem.ClassReplay); rh == nil || rh.Total() != 0 {
		t.Error("replay recall histogram wrong")
	}
	c.ResetStats()
	if c.RecallHistogram(mem.ClassTransLeaf).Total() != 0 {
		t.Error("ResetStats did not clear recall histogram")
	}
}

func TestRecallDisabledReturnsNil(t *testing.T) {
	c := small(t, Config{}, &fakeLower{latency: 1})
	if c.RecallHistogram(mem.ClassTransLeaf) != nil {
		t.Error("histogram present without TrackRecall")
	}
}

func TestDRAMAdapter(t *testing.T) {
	var wrote mem.Addr
	d := DRAMAdapter{
		Read:  func(req *mem.Request, cycle int64) int64 { return cycle + 77 },
		Write: func(addr mem.Addr, cycle int64) { wrote = addr },
	}
	res := d.Access(loadReq(0x40), 10)
	if res.Ready != 87 || res.Src != mem.LvlDRAM {
		t.Errorf("adapter read = %+v", res)
	}
	d.Access(&mem.Request{Addr: 0x80, Kind: mem.Writeback}, 0)
	if wrote != 0x80 {
		t.Errorf("adapter write addr = %#x", wrote)
	}
}

func TestReadyNeverBeforeIssue(t *testing.T) {
	lower := &fakeLower{latency: 50}
	c := small(t, Config{SizeBytes: 8 * 1024, Ways: 8}, lower)
	f := func(addrs []uint16, start uint16) bool {
		cycle := int64(start)
		for _, a := range addrs {
			res := c.Access(loadReq(mem.Addr(a)<<6), cycle)
			if res.Ready < cycle+c.cfg.Latency {
				return false
			}
			cycle = res.Ready
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
