package cache

import (
	"fmt"

	"atcsim/internal/mem"
	"atcsim/internal/repl"
)

// This file implements Victima-style cache-as-TLB support: a cache level
// can hold TLB blocks — lines whose payload is a virtual-to-physical
// translation rather than data. TLB blocks live in a synthetic line-address
// namespace managed by internal/xlat (a tag bit above both physical lines
// and VPNs), participate in replacement like ordinary blocks under
// mem.ClassTransLeaf, are never dirty, and are inserted/looked up through
// the dedicated methods below rather than Access — the request taxonomy
// checked by checkRequest never sees them.

// EnableTLBBlocks switches on TLB-block storage and allocates the per-set
// underutilization predictor. Idempotent; called by the victima mechanism
// at construction. Predictor counters start saturated ("assume
// underutilized") so Victima is live from the first STLB eviction and gets
// throttled only where demand reuse pushes back.
func (c *Cache) EnableTLBBlocks() {
	if c.setUnder != nil {
		return
	}
	c.setUnder = make([]uint8, c.sets)
	for i := range c.setUnder {
		c.setUnder[i] = 3
	}
	c.payload = make([]mem.Addr, c.sets*c.ways)
}

// PredictUnderutilized reports whether the set holding line looks like a
// dead corner of the cache (2-bit counter in the upper half). Always false
// until EnableTLBBlocks.
func (c *Cache) PredictUnderutilized(line mem.Addr) bool {
	if c.setUnder == nil {
		return false
	}
	return c.setUnder[c.setOf(line)] >= 2
}

// InsertTLBEntry parks the translation (line → frame) as a TLB block,
// evicting a victim chosen by the replacement policy when the set is full.
// An existing block for the same line is refreshed in place. It reports
// whether the entry is resident afterwards; false until EnableTLBBlocks.
func (c *Cache) InsertTLBEntry(line, frame mem.Addr, cycle int64) bool {
	if c.setUnder == nil {
		return false
	}
	set := c.setOf(line)
	if w := c.find(set, line); w >= 0 {
		c.payload[set*c.ways+w] = frame
		return true
	}
	c.acc = repl.Access{Line: line, Class: mem.ClassTransLeaf, Kind: mem.Translation}
	way := c.chooseWay(set, &c.acc, cycle)
	c.evict(set, way, cycle)
	i := set*c.ways + way
	c.tags[i] = line
	c.fillAt[i] = cycle
	c.meta[i] = blockMeta{class: mem.ClassTransLeaf, tlb: true, fillSrc: c.cfg.Level}
	c.payload[i] = frame
	c.policy.Insert(set, way, &c.acc)
	c.st.TLBInserts++
	return true
}

// LookupTLBEntry probes for a TLB block holding line's translation. On a
// hit it refreshes replacement state and returns the stored frame and the
// cycle the translation is available (this level's hit latency, or the
// block's in-flight fill time if later).
func (c *Cache) LookupTLBEntry(line mem.Addr, cycle int64) (frame mem.Addr, ready int64, ok bool) {
	if c.setUnder == nil {
		return 0, 0, false
	}
	set := c.setOf(line)
	w := c.find(set, line)
	if w < 0 {
		return 0, 0, false
	}
	i := set*c.ways + w
	if !c.meta[i].tlb {
		return 0, 0, false
	}
	c.acc = repl.Access{Line: line, Class: mem.ClassTransLeaf, Kind: mem.Translation}
	c.policy.Hit(set, w, &c.acc)
	c.meta[i].reused = true
	ready = cycle + c.cfg.Latency
	if fa := c.fillAt[i]; fa > cycle {
		ready = fa
	}
	c.st.TLBHits++
	return c.payload[i], ready, true
}

// VisitTLBEntries calls fn for every resident TLB block, stopping at the
// first error. The validate oracle uses this to confirm each cached
// translation against the radix walk.
func (c *Cache) VisitTLBEntries(fn func(line, frame mem.Addr) error) error {
	for i := range c.tags {
		if c.tags[i] != invalidTag && c.meta[i].tlb {
			if err := fn(c.tags[i], c.payload[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkTLBBlock validates per-block TLB invariants for CheckInvariants; i is
// the flat set*ways+way index of a valid block.
func (c *Cache) checkTLBBlock(i, set, way int) error {
	if !c.meta[i].tlb {
		return nil
	}
	if c.setUnder == nil {
		return fmt.Errorf("cache %s: TLB block %#x at set %d way %d without EnableTLBBlocks", c.cfg.Name, c.tags[i], set, way)
	}
	if c.meta[i].dirty {
		return fmt.Errorf("cache %s: dirty TLB block %#x at set %d way %d", c.cfg.Name, c.tags[i], set, way)
	}
	return nil
}
