package cache

import (
	"fmt"

	"atcsim/internal/mem"
)

// queueEntry is one slot of a bounded request deque. Entries are stored by
// value (the request is copied in, never aliased to a caller's scratch) and
// slots are stable for the entry's whole lifetime, so the synchronous issue
// path can hold a pointer to its own entry while the engine steps.
type queueEntry struct {
	req mem.Request
	// line/distant carry prefetch-queue payload (PQ/VAPQ entries have no
	// full request).
	line    mem.Addr
	distant bool
	// enq is the cycle the entry was pushed; it becomes eligible for
	// processing on the following cycle.
	enq int64
	// seq is the engine-wide push sequence number, used by the FIFO-order
	// invariant checker.
	seq uint64
	// done marks a processed read; res is its outcome. The slot stays
	// occupied until res.Ready passes (the entry models the in-flight read,
	// which is what makes rq_full mean something).
	done bool
	res  Result
}

// ring is a bounded FIFO deque of queue entries backed by a fixed circular
// buffer. It never allocates after construction.
type ring struct {
	buf    []queueEntry
	head   int
	n      int
	pushes uint64
	pops   uint64
}

func newRing(capacity int) ring {
	if capacity <= 0 {
		capacity = 1
	}
	return ring{buf: make([]queueEntry, capacity)}
}

func (r *ring) cap() int    { return len(r.buf) }
func (r *ring) len() int    { return r.n }
func (r *ring) full() bool  { return r.n == len(r.buf) }
func (r *ring) empty() bool { return r.n == 0 }

// push claims the slot after the current tail and returns it zeroed, or nil
// when the ring is full.
func (r *ring) push() *queueEntry {
	if r.full() {
		return nil
	}
	i := (r.head + r.n) % len(r.buf)
	r.n++
	r.pushes++
	r.buf[i] = queueEntry{}
	return &r.buf[i]
}

// at returns the i-th entry from the head (0 = oldest).
func (r *ring) at(i int) *queueEntry {
	return &r.buf[(r.head+i)%len(r.buf)]
}

// pop discards the head entry.
func (r *ring) pop() {
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	r.pops++
}

// find reports whether any entry holds the given line address (reads/
// writebacks match on the request address, prefetch entries on the line
// payload).
func (r *ring) find(line mem.Addr) bool {
	for i := 0; i < r.n; i++ {
		e := r.at(i)
		if e.line == line || mem.LineAddr(e.req.Addr) == line {
			return true
		}
	}
	return false
}

// check audits the ring's structural invariants: occupancy within bounds,
// head index in range, and push/pop conservation (no entry lost or
// duplicated).
func (r *ring) check(name string) error {
	if r.n < 0 || r.n > len(r.buf) {
		return fmt.Errorf("%s occupancy %d outside [0,%d]", name, r.n, len(r.buf))
	}
	if r.head < 0 || r.head >= len(r.buf) {
		return fmt.Errorf("%s head %d outside [0,%d)", name, r.head, len(r.buf))
	}
	if r.pushes-r.pops != uint64(r.n) {
		return fmt.Errorf("%s conservation broken: %d pushes, %d pops, %d resident",
			name, r.pushes, r.pops, r.n)
	}
	return nil
}

// QueueConfig sizes one level's request deques and per-cycle ports for the
// queued timing engine (Config.Timing = "queued" at the system level).
type QueueConfig struct {
	// RQ, WQ, PQ and VAPQ are the read, write, prefetch and
	// translation-staging queue capacities.
	RQ   int
	WQ   int
	PQ   int
	VAPQ int
	// MaxRead is the number of read-queue (and, with leftover budget,
	// prefetch-queue) entries processed per cycle; MaxWrite the same for the
	// write queue.
	MaxRead  int
	MaxWrite int
	// VAPQLatency is the staging delay of a translation-triggered (distant)
	// prefetch in the VAPQ before it moves to the PQ — the cycles the
	// hardware spends resolving the prefetch's target.
	VAPQLatency int64
}

// DefaultQueueConfig returns ChampSim-proportioned queue sizes for a
// hierarchy level.
func DefaultQueueConfig(level mem.Level) QueueConfig {
	switch level {
	case mem.LvlL1D:
		return QueueConfig{RQ: 16, WQ: 16, PQ: 8, VAPQ: 8, MaxRead: 2, MaxWrite: 2, VAPQLatency: 2}
	case mem.LvlL2:
		return QueueConfig{RQ: 32, WQ: 32, PQ: 16, VAPQ: 16, MaxRead: 2, MaxWrite: 2, VAPQLatency: 2}
	default:
		return QueueConfig{RQ: 32, WQ: 32, PQ: 32, VAPQ: 32, MaxRead: 1, MaxWrite: 1, VAPQLatency: 2}
	}
}

// withDefaults fills unset fields so hand-built configs (tests) can specify
// only what they constrain.
func (qc QueueConfig) withDefaults() QueueConfig {
	if qc.RQ <= 0 {
		qc.RQ = 16
	}
	if qc.WQ <= 0 {
		qc.WQ = 16
	}
	if qc.PQ <= 0 {
		qc.PQ = 8
	}
	if qc.VAPQ <= 0 {
		qc.VAPQ = 8
	}
	if qc.MaxRead <= 0 {
		qc.MaxRead = 1
	}
	if qc.MaxWrite <= 0 {
		qc.MaxWrite = 1
	}
	if qc.VAPQLatency < 0 {
		qc.VAPQLatency = 0
	}
	return qc
}

// QueueStats counts the queued engine's backpressure and merge events at
// one level. All counters are events, not cycles, except the *Full stall
// counters, which increment once per stalled cycle — the integral of the
// stall, matching ChampSim's RQ_FULL-style accounting.
type QueueStats struct {
	// RQFull counts cycles a read was stalled waiting for a read-queue
	// slot; RQMerged counts reads that arrived while the same line was
	// already in flight in the read queue.
	RQFull   uint64
	RQMerged uint64
	// WQFull counts cycles a writeback was stalled on a full write queue;
	// WQForward counts reads serviced by forwarding from a pending
	// write-queue entry.
	WQFull    uint64
	WQForward uint64
	// PQFull counts prefetches dropped on a full prefetch queue; PQMerged
	// counts prefetches merged with a pending entry for the same line.
	PQFull   uint64
	PQMerged uint64
	// VAPQFull counts translation-triggered prefetches dropped on a full
	// staging queue.
	VAPQFull uint64
	// MSHRFull counts cycles the read-queue head was blocked because every
	// MSHR was occupied.
	MSHRFull uint64
	// Enqueued and Drained count entries accepted into and retired from all
	// four queues; their difference is the current total occupancy.
	Enqueued uint64
	Drained  uint64
}
