// Package cache implements a set-associative cache level with MSHRs, a
// pluggable replacement policy, write-back/write-allocate semantics, an
// optional hardware prefetcher, recall-distance tracking and the paper's
// ATP (address-translation-triggered prefetching) hook.
//
// Timing uses latency composition: Access returns the cycle at which the
// requested line is available. Misses recurse into the lower level; blocks
// are installed immediately with a fill timestamp, so a later access that
// arrives before the fill completes models an MSHR merge by returning the
// outstanding fill's ready cycle.
package cache

import (
	"fmt"

	"atcsim/internal/mem"
	"atcsim/internal/repl"
	"atcsim/internal/stats"
	"atcsim/internal/telemetry"
)

// Lower is the next level in the hierarchy (another Cache or a DRAM
// adapter).
type Lower interface {
	// Access services req issued at cycle and reports when the data is
	// available and which level ultimately provided it.
	Access(req *mem.Request, cycle int64) Result
}

// Result is the outcome of a hierarchy access.
type Result struct {
	// Ready is the cycle at which the requested line is available to the
	// requester.
	Ready int64
	// Src is the hierarchy level that serviced the request.
	Src mem.Level
}

// Candidate is a prefetch suggestion from a Prefetcher: a physical line
// address and an issue delay relative to the triggering access.
type Candidate struct {
	Line  mem.Addr
	Delay int64
}

// Prefetcher reacts to demand accesses observed at a cache and suggests
// prefetch candidates. Implementations live in internal/prefetch.
type Prefetcher interface {
	Name() string
	// Train observes a demand access (hit or miss) and appends prefetch
	// candidates to out, returning the extended slice. The cache passes a
	// reusable scratch buffer, so implementations must not retain out (or
	// req) past the call — this is what keeps the steady-state training
	// path allocation-free.
	Train(req *mem.Request, hit bool, cycle int64, out []Candidate) []Candidate
}

// Config describes one cache level.
type Config struct {
	Name      string
	Level     mem.Level
	SizeBytes int
	Ways      int
	Latency   int64 // lookup/hit latency in cycles
	MSHRs     int
	Policy    string // replacement policy name (see repl.Names)

	// ATP enables the paper's address-translation-triggered prefetcher at
	// this level: a leaf-PTE hit prefetches the replay line into this cache
	// with distant insertion priority.
	ATP bool
	// IdealTranslations gives leaf-level translation requests a guaranteed
	// hit latency at this level (Fig. 2 limit study); the miss still
	// propagates downward to consume bandwidth.
	IdealTranslations bool
	// IdealReplays does the same for replay loads.
	IdealReplays bool
	// TrackRecall enables the recall-distance histograms (Figs. 5 and 7).
	TrackRecall bool
}

// Stats aggregates the counters a cache level exposes.
type Stats struct {
	stats.ClassCounters
	// Evictions counts blocks evicted, DeadEvictions those evicted without
	// any reuse after fill, split by the class that filled the block
	// (Section III: >95% of replay blocks are dead).
	Evictions     [mem.NumClasses]uint64
	DeadEvictions [mem.NumClasses]uint64
	Writebacks    uint64
	// Prefetch effectiveness.
	PrefIssued  uint64 // prefetches that allocated a fill here
	PrefUseful  uint64 // demand hits on a prefetched block
	PrefLate    uint64 // demand merged with an in-flight prefetch
	PrefDropped uint64 // prefetches dropped on saturated MSHRs
	// MSHR merges (accesses that found their line in flight).
	Merges uint64
	// Bypasses counts fills skipped by a dead-block-bypassing policy.
	Bypasses uint64
	// LatencySum accumulates, per class, the cycles between issue and data
	// availability for demand and translation accesses (AvgLatency derives
	// the mean).
	LatencySum [mem.NumClasses]uint64
	// Victima TLB-block activity (zero unless EnableTLBBlocks was called):
	// entries parked by the STLB eviction hook, cache-as-TLB lookup hits,
	// and TLB blocks displaced by later fills. TLB blocks are excluded from
	// the per-class eviction and recall statistics above — those count
	// memory blocks only.
	TLBInserts   uint64
	TLBHits      uint64
	TLBEvictions uint64
}

// AvgLatency returns the mean access latency observed for a class.
func (s *Stats) AvgLatency(c mem.Class) float64 {
	if s.Access[c] == 0 {
		return 0
	}
	return float64(s.LatencySum[c]) / float64(s.Access[c])
}

// invalidTag marks an empty way in the tags array. Real tags are physical
// line addresses (PhysBits ≤ 48 → below 2^42) or Victima's synthetic
// tlbLineBit|VPN lines, so the all-ones pattern can never collide.
const invalidTag = ^mem.Addr(0)

// blockMeta holds the cold per-way flags in a struct-of-arrays layout: the
// hot lookup state (tags, fill times) lives in dedicated flat arrays so a
// set scan touches 8 bytes per way instead of a full 48-byte block struct.
type blockMeta struct {
	dirty    bool
	reused   bool
	prefetch bool      // filled by a prefetch and not yet demanded
	tlb      bool      // Victima TLB block: payload holds a frame, not data
	class    mem.Class // class of the fill that brought the block in
	fillSrc  mem.Level
}

// Cache is one level of the hierarchy. Not safe for concurrent use.
type Cache struct {
	cfg  Config
	sets int
	ways int
	// Set/way metadata in struct-of-arrays layout, indexed set*ways+way.
	// tags combines the valid bit and line address (invalidTag = empty);
	// find() and chooseWay() scan only tags, so a 16-way probe reads two
	// cache lines instead of twelve.
	tags    []mem.Addr
	fillAt  []int64 // fill-completion cycle per way (MSHR merge window)
	meta    []blockMeta
	payload []mem.Addr // Victima frame per way; nil until EnableTLBBlocks
	policy  repl.Policy
	lower   Lower
	lowerC  *Cache // lower when it is another *Cache: direct-call fast path
	pf      Prefetcher

	// Outstanding miss completion times for the MSHR occupancy model.
	mshr []int64

	// Hot-path scratch state. The simulator is single-threaded and none of
	// the consumers (policies, lower levels, the tracer) retain pointers
	// past the call, so one instance of each per cache level suffices; the
	// writeback/prefetch requests a level originates use its own scratch
	// while the caller's request stays live (see DESIGN.md "Performance").
	acc          repl.Access
	wbReq        mem.Request
	pfReq        mem.Request
	cands        []Candidate
	evictableFn  func(int) bool // pre-bound chooseWay filter (no per-miss closure)
	victimBase   int
	victimIssued int64

	// Victima cache-as-TLB state: setUnder is the per-set 2-bit saturating
	// underutilization predictor, trained on evictions (dead eviction →
	// up, reused eviction → down) and consulted before parking a TLB
	// block. nil until EnableTLBBlocks.
	setUnder []uint8

	// pfSink, when set, intercepts Prefetch calls (the queued engine routes
	// them through its PQ/VAPQ deques instead of issuing synchronously). nil
	// in the analytic engine, so the default path is unchanged.
	pfSink func(line mem.Addr, cycle int64, distant bool) int64

	st     Stats
	recall *recallTracker
	tr     *telemetry.Tracer
}

// New builds a cache level on top of lower. It returns an error for
// malformed geometry or unknown policy names.
func New(cfg Config, lower Lower) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache %s: invalid geometry size=%d ways=%d", cfg.Name, cfg.SizeBytes, cfg.Ways)
	}
	sets := cfg.SizeBytes / (mem.LineSize * cfg.Ways)
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d is not a power of two", cfg.Name, sets)
	}
	if lower == nil {
		return nil, fmt.Errorf("cache %s: nil lower level", cfg.Name)
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 16
	}
	if cfg.Policy == "" {
		cfg.Policy = "lru"
	}
	pol, err := repl.New(cfg.Policy, sets, cfg.Ways)
	if err != nil {
		return nil, fmt.Errorf("cache %s: %w", cfg.Name, err)
	}
	c := &Cache{
		cfg:    cfg,
		sets:   sets,
		ways:   cfg.Ways,
		tags:   make([]mem.Addr, sets*cfg.Ways),
		fillAt: make([]int64, sets*cfg.Ways),
		meta:   make([]blockMeta, sets*cfg.Ways),
		policy: pol,
		lower:  lower,
		mshr:   make([]int64, 0, cfg.MSHRs),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	if lc, ok := lower.(*Cache); ok {
		c.lowerC = lc
	}
	c.evictableFn = func(w int) bool {
		return c.fillAt[c.victimBase+w] <= c.victimIssued
	}
	if cfg.TrackRecall {
		c.recall = newRecallTracker(sets)
	}
	return c, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config, lower Lower) *Cache {
	c, err := New(cfg, lower)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the configured cache name.
func (c *Cache) Name() string { return c.cfg.Name }

// Level returns the hierarchy level of this cache.
func (c *Cache) Level() mem.Level { return c.cfg.Level }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// PolicyName returns the replacement policy in use.
func (c *Cache) PolicyName() string { return c.policy.Name() }

// AttachPrefetcher connects a hardware prefetcher trained by demand accesses
// at this level.
func (c *Cache) AttachPrefetcher(p Prefetcher) { c.pf = p }

// Prefetcher returns the attached prefetcher, or nil.
func (c *Cache) Prefetcher() Prefetcher { return c.pf }

// SetTracer attaches a request-lifecycle tracer (nil disables): lookups that
// belong to a sampled request become spans on the cache lane.
func (c *Cache) SetTracer(t *telemetry.Tracer) { c.tr = t }

// traceAccess emits one lookup span for a sampled request.
func (c *Cache) traceAccess(req *mem.Request, start, end int64, src mem.Level, outcome string) {
	c.tr.SpanOn(req.Core, "cache", c.cfg.Name, telemetry.LaneCache, start, end,
		telemetry.SArg("class", req.Class().String()),
		telemetry.SArg("outcome", outcome),
		telemetry.SArg("src", src.String()))
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.st }

// ResetStats zeroes counters and recall histograms at the end of warmup.
func (c *Cache) ResetStats() {
	c.st = Stats{}
	if c.recall != nil {
		c.recall.reset()
	}
}

// RecallHistogram returns the recall-distance histogram for the given fill
// class (ClassTransLeaf or ClassReplay), or nil when tracking is disabled.
// The histogram contains only completed recalls; RecallEvictions gives the
// denominator including blocks never recalled (infinite distance).
func (c *Cache) RecallHistogram(cl mem.Class) *stats.Histogram {
	if c.recall == nil {
		return nil
	}
	return c.recall.hist(cl)
}

// RecallEvictions returns the number of tracked evictions for a class
// (ClassTransLeaf or ClassReplay); 0 when tracking is disabled.
func (c *Cache) RecallEvictions(cl mem.Class) uint64 {
	if c.recall == nil {
		return 0
	}
	return c.recall.evictions(cl)
}

func (c *Cache) setOf(line mem.Addr) int { return int(line) & (c.sets - 1) }

func (c *Cache) find(set int, line mem.Addr) int {
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			return w
		}
	}
	return -1
}

// mshrAdmit returns the earliest cycle at which a new miss can be issued,
// given the MSHR occupancy. Completed entries are pruned lazily.
func (c *Cache) mshrAdmit(cycle int64) int64 {
	live := c.mshr[:0]
	for _, r := range c.mshr {
		if r > cycle {
			live = append(live, r)
		}
	}
	c.mshr = live
	if len(c.mshr) < c.cfg.MSHRs {
		return cycle
	}
	// Full: wait for the earliest outstanding fill.
	minI := 0
	for i, r := range c.mshr {
		if r < c.mshr[minI] {
			minI = i
		}
	}
	start := c.mshr[minI]
	c.mshr[minI] = c.mshr[len(c.mshr)-1]
	c.mshr = c.mshr[:len(c.mshr)-1]
	return start
}

func (c *Cache) mshrRecord(ready int64) {
	c.mshr = append(c.mshr, ready)
}

// mshrFull reports whether all MSHRs are occupied at the given cycle.
func (c *Cache) mshrFull(cycle int64) bool {
	live := c.mshr[:0]
	for _, r := range c.mshr {
		if r > cycle {
			live = append(live, r)
		}
	}
	c.mshr = live
	return len(c.mshr) >= c.cfg.MSHRs
}

// access fills the cache's scratch policy access for req. The returned
// pointer is valid until the next access() call on this cache; policies
// consume it synchronously and never retain it.
func (c *Cache) access(req *mem.Request) *repl.Access {
	c.acc = repl.Access{
		IP:    req.IP,
		Line:  mem.LineAddr(req.Addr),
		Class: req.Class(),
		Kind:  req.Kind,
	}
	return &c.acc
}

// lowerAccess forwards a request to the next level, calling another *Cache
// directly (devirtualized) when possible.
func (c *Cache) lowerAccess(req *mem.Request, cycle int64) Result {
	if c.lowerC != nil {
		return c.lowerC.Access(req, cycle)
	}
	return c.lower.Access(req, cycle)
}

// Access services a request issued at the given cycle. Writebacks are
// absorbed (write-allocate) and return immediately.
func (c *Cache) Access(req *mem.Request, cycle int64) Result {
	if checksEnabled {
		checkRequest(req)
	}
	line := mem.LineAddr(req.Addr)
	set := c.setOf(line)
	cl := req.Class()

	if req.Kind == mem.Writeback {
		c.absorbWriteback(set, line, cycle, req)
		return Result{Ready: cycle + c.cfg.Latency, Src: c.cfg.Level}
	}

	demand := req.Kind == mem.Load || req.Kind == mem.Store || req.Kind == mem.IFetch
	if c.recall != nil && (demand || req.Kind == mem.Translation) {
		c.recall.observe(set, line, cl)
	}

	w := c.find(set, line)
	if w >= 0 {
		i := set*c.ways + w
		m := &c.meta[i]
		c.st.Record(cl, false)
		c.policy.Hit(set, w, c.access(req))
		if req.Kind == mem.Store {
			m.dirty = true
		}
		if m.prefetch && demand {
			m.prefetch = false
			if c.fillAt[i] > cycle {
				c.st.PrefLate++
			} else {
				c.st.PrefUseful++
			}
		}
		if fa := c.fillAt[i]; fa > cycle {
			// MSHR merge with the outstanding fill.
			c.st.Merges++
			c.st.LatencySum[cl] += uint64(fa - cycle)
			if c.tr.Active() {
				c.traceAccess(req, cycle, fa, m.fillSrc, "merge")
			}
			return Result{Ready: fa, Src: m.fillSrc}
		}
		m.reused = true
		ready := cycle + c.cfg.Latency
		c.st.LatencySum[cl] += uint64(ready - cycle)
		if c.tr.Active() {
			c.traceAccess(req, cycle, ready, c.cfg.Level, "hit")
		}
		c.maybeATP(req, ready)
		c.maybeTrain(req, true, cycle)
		return Result{Ready: ready, Src: c.cfg.Level}
	}

	// Miss.
	c.st.Record(cl, true)

	ideal := (c.cfg.IdealTranslations && req.IsLeaf()) ||
		(c.cfg.IdealReplays && cl == mem.ClassReplay)

	// Page-walker reads travel through the walker's own buffers (ChampSim
	// models a private PTW queue), so they are not throttled by — and do
	// not occupy — the demand MSHRs.
	start := cycle
	if req.Kind != mem.Translation {
		start = c.mshrAdmit(cycle)
	}
	res := c.lowerAccess(req, start+c.cfg.Latency)
	a := c.access(req)
	if bp, ok := c.policy.(repl.Bypasser); ok && bp.ShouldBypass(a) {
		// Dead-block bypass (CbPred-style): forward without allocating.
		c.st.Bypasses++
	} else {
		c.fillWith(set, line, a, req, cycle, res)
	}
	if req.Kind != mem.Translation {
		c.mshrRecord(res.Ready)
	}
	c.maybeTrain(req, false, cycle)

	if ideal {
		// Limit study: respond with the hit latency; the real miss has
		// still consumed bandwidth below (paper's methodology for Fig. 2).
		c.st.LatencySum[cl] += uint64(c.cfg.Latency)
		if c.tr.Active() {
			c.traceAccess(req, cycle, cycle+c.cfg.Latency, c.cfg.Level, "ideal")
		}
		return Result{Ready: cycle + c.cfg.Latency, Src: c.cfg.Level}
	}
	ready := res.Ready
	if m := cycle + c.cfg.Latency; ready < m {
		ready = m
	}
	c.st.LatencySum[cl] += uint64(ready - cycle)
	if c.tr.Active() {
		c.traceAccess(req, cycle, ready, res.Src, "miss")
	}
	return Result{Ready: ready, Src: res.Src}
}

// fill installs the line for req, evicting a victim when the set is full.
// issued is the cycle the miss was initiated; blocks whose own fill is
// still in flight at that point are protected from eviction, as MSHR-held
// fills are in hardware.
func (c *Cache) fill(set int, line mem.Addr, req *mem.Request, issued int64, res Result) {
	c.fillWith(set, line, c.access(req), req, issued, res)
}

// chooseWay picks the fill way: an invalid way if any, otherwise the
// policy's victim — overridden to another non-in-flight way when the
// policy picked a block whose fill is still outstanding.
func (c *Cache) chooseWay(set int, a *repl.Access, issued int64) int {
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == invalidTag {
			return w
		}
	}
	// The evictable filter is pre-bound at construction; parameterize it
	// through fields instead of allocating a fresh closure per miss.
	c.victimBase, c.victimIssued = base, issued
	return c.policy.Victim(set, a, c.evictableFn)
}

// evict removes the block at (set, way), writing it back when dirty and
// recording eviction statistics.
func (c *Cache) evict(set, way int, cycle int64) {
	i := set*c.ways + way
	line := c.tags[i]
	if line == invalidTag {
		return
	}
	m := &c.meta[i]
	if c.setUnder != nil {
		// Train the underutilization predictor: sets that keep evicting
		// never-reused blocks are good Victima real estate.
		u := &c.setUnder[set]
		if m.reused {
			if *u > 0 {
				*u--
			}
		} else if *u < 3 {
			*u++
		}
	}
	if m.tlb {
		// TLB blocks are clean metadata: no writeback, and they stay out
		// of the per-class memory-block eviction statistics.
		c.st.TLBEvictions++
		c.policy.Evicted(set, way)
		c.tags[i] = invalidTag
		return
	}
	c.st.Evictions[m.class]++
	if !m.reused {
		c.st.DeadEvictions[m.class]++
	}
	if c.recall != nil {
		c.recall.evicted(set, line, m.class)
	}
	c.policy.Evicted(set, way)
	c.tags[i] = invalidTag
	if m.dirty {
		c.st.Writebacks++
		// Scratch writeback request: the lower level absorbs it before
		// returning and never retains the pointer, and a nested eviction
		// down there uses that level's own scratch.
		c.wbReq = mem.Request{Addr: line << mem.LineBits, Kind: mem.Writeback}
		c.lowerAccess(&c.wbReq, cycle)
	}
}

// absorbWriteback handles a writeback arriving from the level above:
// write-allocate without promotion.
func (c *Cache) absorbWriteback(set int, line mem.Addr, cycle int64, req *mem.Request) {
	c.st.Record(mem.ClassWriteback, false)
	if w := c.find(set, line); w >= 0 {
		c.meta[set*c.ways+w].dirty = true
		return
	}
	// Allocate without fetching (full-line writeback).
	c.st.Miss[mem.ClassWriteback]++
	c.fill(set, line, req, cycle, Result{Ready: cycle + c.cfg.Latency, Src: c.cfg.Level})
}

// maybeATP fires the address-translation-triggered prefetch: on a leaf-PTE
// hit at this level, prefetch the replay line into this cache with distant
// (immediately evictable) priority.
func (c *Cache) maybeATP(req *mem.Request, ready int64) {
	if !c.cfg.ATP || !req.IsLeaf() || req.ReplayTarget == 0 {
		return
	}
	c.Prefetch(mem.LineAddr(req.ReplayTarget), ready, true)
}

// maybeTrain feeds the attached prefetcher and issues its candidates.
func (c *Cache) maybeTrain(req *mem.Request, hit bool, cycle int64) {
	if c.pf == nil {
		return
	}
	if req.Kind != mem.Load && req.Kind != mem.Store {
		return
	}
	// Train appends into the cache's candidate scratch buffer; Prefetch
	// never re-enters maybeTrain on the same cache, so iterating the
	// scratch while issuing is safe.
	c.cands = c.pf.Train(req, hit, cycle, c.cands[:0])
	for _, cand := range c.cands {
		c.Prefetch(cand.Line, cycle+cand.Delay, false)
	}
}

// Prefetch brings a physical line into this cache if absent. Distant
// prefetches (ATP/TEMPO) insert with the highest eviction priority, exactly
// as the paper specifies. It returns the fill-ready cycle (or the existing
// block's availability). Under the queued engine the call is diverted into
// the level's prefetch queues instead of issuing immediately.
func (c *Cache) Prefetch(line mem.Addr, cycle int64, distant bool) int64 {
	if c.pfSink != nil {
		return c.pfSink(line, cycle, distant)
	}
	return c.prefetchNow(line, cycle, distant)
}

// prefetchNow performs the prefetch synchronously (the analytic path, and
// the queued engine's PQ drain).
func (c *Cache) prefetchNow(line mem.Addr, cycle int64, distant bool) int64 {
	set := c.setOf(line)
	if w := c.find(set, line); w >= 0 {
		if fa := c.fillAt[set*c.ways+w]; fa > cycle {
			return fa
		}
		return cycle
	}
	// Prefetches are dropped, not queued, when the MSHRs are saturated —
	// they must never delay demand misses.
	if c.mshrFull(cycle) {
		c.st.PrefDropped++
		return cycle
	}
	c.st.PrefIssued++
	c.st.Record(mem.ClassPrefetch, true)
	// Scratch prefetch request: a prefetch read cannot trigger another
	// prefetch on this cache (TEMPO fires only on leaf translations), so
	// the single scratch is never aliased.
	c.pfReq = mem.Request{Addr: line << mem.LineBits, Kind: mem.Prefetch}
	req := &c.pfReq
	res := c.lowerAccess(req, cycle+c.cfg.Latency)
	if c.tr.Active() {
		// ATP/TEMPO prefetches fired inside a sampled request's window show
		// up on that request's cache lane.
		var kind int64
		if distant {
			kind = 1
		}
		c.tr.Span("cache", c.cfg.Name+" prefetch", telemetry.LaneCache, cycle, res.Ready,
			telemetry.IArg("line", int64(line)), telemetry.IArg("distant", kind))
	}
	a := c.access(req)
	a.Distant = distant
	c.fillWith(set, line, a, req, cycle, res)
	c.mshrRecord(res.Ready)
	return res.Ready
}

// fillWith is fill with an explicit policy access (needed to carry the
// Distant flag for ATP/TEMPO prefetches).
func (c *Cache) fillWith(set int, line mem.Addr, a *repl.Access, req *mem.Request, issued int64, res Result) {
	way := c.chooseWay(set, a, issued)
	c.evict(set, way, res.Ready)
	i := set*c.ways + way
	c.tags[i] = line
	c.fillAt[i] = res.Ready
	c.meta[i] = blockMeta{
		// Writeback-allocated lines hold the only copy of the dirty data;
		// they must leave dirty or the write is lost on eviction.
		dirty:    req.Kind == mem.Store || req.Kind == mem.Writeback,
		class:    req.Class(),
		prefetch: req.Kind == mem.Prefetch,
		fillSrc:  res.Src,
	}
	if c.payload != nil {
		c.payload[i] = 0
	}
	c.policy.Insert(set, way, a)
}

// Contains reports whether the line holding addr is present (including
// in-flight fills); used by tests and by the ATP/TEMPO wiring.
func (c *Cache) Contains(addr mem.Addr) bool {
	line := mem.LineAddr(addr)
	return c.find(c.setOf(line), line) >= 0
}

// DRAMAdapter terminates a hierarchy on a dram.Channel-compatible device.
type DRAMAdapter struct {
	// Read services a demand/translation/prefetch read and returns the
	// delivery cycle.
	Read func(req *mem.Request, cycle int64) int64
	// Write posts a writeback.
	Write func(addr mem.Addr, cycle int64)
}

// Access implements Lower.
func (d DRAMAdapter) Access(req *mem.Request, cycle int64) Result {
	if req.Kind == mem.Writeback {
		d.Write(req.Addr, cycle)
		return Result{Ready: cycle, Src: mem.LvlDRAM}
	}
	return Result{Ready: d.Read(req, cycle), Src: mem.LvlDRAM}
}
