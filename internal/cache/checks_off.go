//go:build !atcsim_invariants

package cache

// checksEnabled compiles the per-access request audits out of the hot path.
// Build with -tags atcsim_invariants to turn them on.
const checksEnabled = false
