package cache

import (
	"testing"

	"atcsim/internal/mem"
)

// TestWritebackAllocatedLineStaysDirty is the minimized regression for a
// divergence the differential oracle (internal/validate) surfaced: a
// writeback that missed allocated its line CLEAN, so a later eviction
// silently dropped the only copy of the dirty data instead of writing it to
// the level below.
func TestWritebackAllocatedLineStaysDirty(t *testing.T) {
	lower := &fakeLower{latency: 10}
	// Direct-mapped single-set cache: the second line must displace the first.
	c := small(t, Config{SizeBytes: mem.LineSize, Ways: 1, Policy: "lru"}, lower)

	victim := mem.Addr(0xA000)
	c.Access(&mem.Request{Addr: victim, Kind: mem.Writeback}, 10)
	// Load a conflicting line well after the fill completes.
	c.Access(loadReq(0xB000), 1000)

	found := false
	for _, wb := range lower.writebacks {
		if mem.LineAddr(wb) == mem.LineAddr(victim) {
			found = true
		}
	}
	if !found {
		t.Fatalf("evicting a writeback-allocated line dropped the dirty data: lower saw writebacks %#x", lower.writebacks)
	}
}
