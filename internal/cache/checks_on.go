//go:build atcsim_invariants

package cache

// checksEnabled compiles the per-access request audits into the access
// path. Violations panic immediately, pointing at the producer that built
// the malformed request.
const checksEnabled = true
