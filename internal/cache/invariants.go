package cache

import (
	"fmt"

	"atcsim/internal/mem"
	"atcsim/internal/repl"
)

// SetContents returns the lines of the valid blocks in a set, in way order.
// It is a validation helper: the differential oracle in internal/validate
// compares set contents after every access, which pins down victim
// selection exactly without exposing the block array.
func (c *Cache) SetContents(set int) []mem.Addr {
	out := make([]mem.Addr, 0, c.ways)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] != invalidTag {
			out = append(out, c.tags[base+w])
		}
	}
	return out
}

// CheckInvariants audits the structural state of the cache:
//
//   - no two valid blocks in a set hold the same line (a duplicate tag would
//     make hits non-deterministic and double-count capacity),
//   - every valid block lives in the set its line maps to,
//   - MSHR occupancy never exceeds the configured entry count,
//   - the replacement policy's own invariants hold (when it implements
//     repl.Checker).
//
// It returns a descriptive error on the first violation. The simulation
// loop calls this periodically when invariant checking is enabled (see
// system.Config.CheckInvariants and the atcsim_invariants build tag).
func (c *Cache) CheckInvariants() error {
	for set := 0; set < c.sets; set++ {
		base := set * c.ways
		for w := 0; w < c.ways; w++ {
			line := c.tags[base+w]
			if line == invalidTag {
				continue
			}
			if got := c.setOf(line); got != set {
				return fmt.Errorf("cache %s: block line %#x stored in set %d but maps to set %d",
					c.cfg.Name, line, set, got)
			}
			if err := c.checkTLBBlock(base+w, set, w); err != nil {
				return err
			}
			for w2 := w + 1; w2 < c.ways; w2++ {
				if c.tags[base+w2] == line {
					return fmt.Errorf("cache %s: duplicate tag %#x in set %d (ways %d and %d)",
						c.cfg.Name, line, set, w, w2)
				}
			}
		}
	}
	if len(c.mshr) > c.cfg.MSHRs {
		return fmt.Errorf("cache %s: MSHR occupancy %d exceeds %d entries",
			c.cfg.Name, len(c.mshr), c.cfg.MSHRs)
	}
	if ch, ok := c.policy.(repl.Checker); ok {
		if err := ch.CheckInvariants(); err != nil {
			return fmt.Errorf("cache %s: %w", c.cfg.Name, err)
		}
	}
	return nil
}

// checkRequest audits the taxonomy flags of an incoming request. These are
// producer-side invariants of the walker and engine: a replay-target on a
// non-leaf read, or a replay flag on a non-demand kind, would silently
// corrupt the class statistics and the translation-conscious policies. Only
// compiled into the access path under the atcsim_invariants build tag.
func checkRequest(req *mem.Request) {
	if req.ReplayTarget != 0 && !req.IsLeaf() {
		panic(fmt.Sprintf("cache: request %#x kind %v carries a replay target but is not a leaf translation",
			req.Addr, req.Kind))
	}
	if req.IsReplay && req.Kind != mem.Load && req.Kind != mem.Store && req.Kind != mem.IFetch {
		panic(fmt.Sprintf("cache: request %#x kind %v marked replay but is not a demand access",
			req.Addr, req.Kind))
	}
	if req.Kind == mem.Translation {
		if req.Level < 1 || req.Level > mem.PTLevels {
			panic(fmt.Sprintf("cache: translation request %#x has level %d outside [1,%d]",
				req.Addr, req.Level, mem.PTLevels))
		}
		if req.Leaf && req.Level > 2 {
			panic(fmt.Sprintf("cache: translation request %#x marked leaf at level %d",
				req.Addr, req.Level))
		}
	} else if req.Level != 0 || req.Leaf {
		panic(fmt.Sprintf("cache: non-translation request %#x kind %v carries walker state (level %d leaf %v)",
			req.Addr, req.Kind, req.Level, req.Leaf))
	}
}
