package cache

import (
	"testing"

	"atcsim/internal/mem"
)

// queuedSmall builds a small cache wrapped in the queued engine.
func queuedSmall(t *testing.T, cfg Config, qcfg QueueConfig, lower Lower) *Queued {
	t.Helper()
	return NewQueued(small(t, cfg, lower), qcfg)
}

func TestQueuedMissThenHit(t *testing.T) {
	lower := &fakeLower{latency: 100}
	q := queuedSmall(t, Config{}, DefaultQueueConfig(mem.LvlL2), lower)

	res := q.Access(loadReq(0x1000), 0)
	if res.Src != mem.LvlDRAM {
		t.Errorf("miss src = %v, want DRAM", res.Src)
	}
	if res.Ready < 110 {
		t.Errorf("miss ready = %d, want >= analytic 110", res.Ready)
	}
	res = q.Access(loadReq(0x1000), res.Ready+100)
	if res.Src != mem.LvlL2 {
		t.Errorf("hit src = %v, want L2", res.Src)
	}
	st := q.Inner().Stats()
	if st.Access[mem.ClassNonReplay] != 2 || st.Miss[mem.ClassNonReplay] != 1 {
		t.Errorf("counters = %d/%d, want 2/1", st.Access[mem.ClassNonReplay], st.Miss[mem.ClassNonReplay])
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQueuedRQFullBackpressure(t *testing.T) {
	lower := &fakeLower{latency: 100}
	q := queuedSmall(t, Config{SizeBytes: 64 * 1024, Ways: 16},
		QueueConfig{RQ: 2, WQ: 4, PQ: 4, VAPQ: 4, MaxRead: 1, MaxWrite: 1}, lower)

	// Two overlapping misses occupy both RQ slots until their fills land;
	// the third load must stall for a slot.
	r1 := q.Access(loadReq(0x0000), 0)
	q.Access(loadReq(0x4000), 1)
	r3 := q.Access(loadReq(0x8000), 2)
	if got := q.Stats().RQFull; got == 0 {
		t.Error("rq_full never counted despite overlapping misses")
	}
	if r3.Ready <= r1.Ready {
		t.Errorf("stalled miss ready = %d, want after first fill %d", r3.Ready, r1.Ready)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQueuedRQMergeAccounting(t *testing.T) {
	lower := &fakeLower{latency: 100}
	q := queuedSmall(t, Config{}, DefaultQueueConfig(mem.LvlL2), lower)

	q.Access(loadReq(0x2000), 0)
	// Second access while the first fill is still in flight (its RQ slot is
	// resident): counted as an RQ merge, coalesced by the inner fill path.
	q.Access(loadReq(0x2000), 5)
	if got := q.Stats().RQMerged; got != 1 {
		t.Errorf("rq_merged = %d, want 1", got)
	}
	if got := len(lower.accesses); got != 1 {
		t.Errorf("lower accesses = %d, want 1 (merged)", got)
	}
	if got := q.Inner().Stats().Merges; got != 1 {
		t.Errorf("inner merges = %d, want 1", got)
	}
}

func TestQueuedWQForwarding(t *testing.T) {
	lower := &fakeLower{latency: 100}
	q := queuedSmall(t, Config{}, DefaultQueueConfig(mem.LvlL2), lower)

	wb := &mem.Request{Addr: 0x3000, Kind: mem.Writeback}
	q.Access(wb, 0)
	// The writeback is still pending in the WQ; a read of the same line is
	// forwarded without touching the array or the lower level.
	res := q.Access(loadReq(0x3000), 0)
	if got := q.Stats().WQForward; got != 1 {
		t.Fatalf("wq_forward = %d, want 1", got)
	}
	if res.Src != mem.LvlL2 {
		t.Errorf("forward src = %v", res.Src)
	}
	if len(lower.accesses) != 0 {
		t.Errorf("forwarded read reached lower level: %d accesses", len(lower.accesses))
	}
	if q.Inner().Contains(0x3000) {
		t.Error("writeback absorbed before its WQ drain")
	}
	q.Drain()
	if !q.Inner().Contains(0x3000) {
		t.Error("writeback not absorbed by WQ drain")
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQueuedWQFullStalls(t *testing.T) {
	lower := &fakeLower{latency: 10}
	q := queuedSmall(t, Config{},
		QueueConfig{RQ: 4, WQ: 1, PQ: 4, VAPQ: 4, MaxRead: 1, MaxWrite: 1}, lower)

	a := q.Access(&mem.Request{Addr: 0x100, Kind: mem.Writeback}, 0)
	b := q.Access(&mem.Request{Addr: 0x200, Kind: mem.Writeback}, 0)
	if got := q.Stats().WQFull; got == 0 {
		t.Error("wq_full never counted on a full write queue")
	}
	if b.Ready <= a.Ready {
		t.Errorf("stalled writeback ready = %d, want after %d", b.Ready, a.Ready)
	}
	q.Drain()
	if !q.Inner().Contains(0x100) || !q.Inner().Contains(0x200) {
		t.Error("writebacks lost under WQ backpressure")
	}
}

func TestQueuedPQMergeOnDuplicate(t *testing.T) {
	lower := &fakeLower{latency: 100}
	q := queuedSmall(t, Config{}, DefaultQueueConfig(mem.LvlL2), lower)
	c := q.Inner()

	line := mem.LineAddr(0x8000)
	c.Prefetch(line, 0, false)
	c.Prefetch(line, 0, false) // duplicate while the first is still queued
	if got := q.Stats().PQMerged; got != 1 {
		t.Fatalf("pq_merged = %d, want 1", got)
	}
	q.Drain()
	if !c.Contains(0x8000) {
		t.Error("queued prefetch never installed")
	}
	if got := c.Stats().PrefIssued; got != 1 {
		t.Errorf("PrefIssued = %d, want 1 (merged duplicate must not issue)", got)
	}
}

func TestQueuedPQOverflowDrops(t *testing.T) {
	lower := &fakeLower{latency: 100}
	q := queuedSmall(t, Config{},
		QueueConfig{RQ: 4, WQ: 4, PQ: 1, VAPQ: 1, MaxRead: 1, MaxWrite: 1}, lower)
	c := q.Inner()

	c.Prefetch(mem.LineAddr(0x1000), 0, false)
	c.Prefetch(mem.LineAddr(0x2000), 0, false)
	if got := q.Stats().PQFull; got != 1 {
		t.Errorf("pq_full = %d, want 1", got)
	}
	c.Prefetch(mem.LineAddr(0x3000), 0, true)
	c.Prefetch(mem.LineAddr(0x4000), 0, true)
	if got := q.Stats().VAPQFull; got != 1 {
		t.Errorf("vapq_full = %d, want 1", got)
	}
	q.Drain()
	if c.Contains(0x2000) || c.Contains(0x4000) {
		t.Error("dropped prefetch was installed")
	}
}

func TestQueuedVAPQStaging(t *testing.T) {
	lower := &fakeLower{latency: 100}
	qcfg := DefaultQueueConfig(mem.LvlLLC)
	q := queuedSmall(t, Config{}, qcfg, lower)
	c := q.Inner()

	// A distant (translation-triggered) prefetch stages through the VAPQ.
	c.Prefetch(mem.LineAddr(0x9000), 0, true)
	if q.vapq.len() != 1 || q.pq.len() != 0 {
		t.Fatalf("distant prefetch not staged: vapq=%d pq=%d", q.vapq.len(), q.pq.len())
	}
	q.Drain()
	if !c.Contains(0x9000) {
		t.Error("distant prefetch never installed")
	}
	if got := c.Stats().PrefIssued; got != 1 {
		t.Errorf("PrefIssued = %d, want 1", got)
	}
}

func TestQueuedPrefetchHitDetectedAtDrain(t *testing.T) {
	lower := &fakeLower{latency: 100}
	q := queuedSmall(t, Config{}, DefaultQueueConfig(mem.LvlL2), lower)
	c := q.Inner()

	q.Access(loadReq(0x5000), 0)
	// Prefetching an already-present line is detected when the PQ entry
	// issues: no fill, no PrefIssued, exactly as the analytic present-check.
	c.Prefetch(mem.LineAddr(0x5000), q.Now(), false)
	q.Drain()
	if got := c.Stats().PrefIssued; got != 0 {
		t.Errorf("PrefIssued = %d, want 0 for a present line", got)
	}
}

func TestQueuedMSHRFullBlocksHead(t *testing.T) {
	lower := &fakeLower{latency: 100}
	q := queuedSmall(t, Config{MSHRs: 1, SizeBytes: 64 * 1024, Ways: 16},
		DefaultQueueConfig(mem.LvlL2), lower)

	r1 := q.Access(loadReq(0x0000), 0)
	// The only MSHR holds the first fill; the second miss is blocked
	// head-of-line until it releases.
	r2 := q.Access(loadReq(0x4000), 1)
	if got := q.Stats().MSHRFull; got == 0 {
		t.Error("mshr_full never counted with saturated MSHRs")
	}
	if r2.Ready < r1.Ready+100 {
		t.Errorf("blocked miss ready = %d, want >= %d (after MSHR release)", r2.Ready, r1.Ready+100)
	}
}

func TestQueuedTranslationBypassesMSHRGate(t *testing.T) {
	lower := &fakeLower{latency: 100}
	q := queuedSmall(t, Config{MSHRs: 1, SizeBytes: 64 * 1024, Ways: 16},
		DefaultQueueConfig(mem.LvlL2), lower)

	r1 := q.Access(loadReq(0x0000), 0)
	// Walker reads travel through the PTW's private buffers: not throttled
	// by the saturated demand MSHRs.
	tr := &mem.Request{Addr: 0x4000, Kind: mem.Translation, Level: 1, Leaf: true}
	r2 := q.Access(tr, 1)
	if got := q.Stats().MSHRFull; got != 0 {
		t.Errorf("mshr_full = %d, want 0 for a translation read", got)
	}
	if r2.Ready >= r1.Ready+100 {
		t.Errorf("translation ready = %d, throttled by demand MSHRs (first fill %d)", r2.Ready, r1.Ready)
	}
}

func TestQueuedLowerStallPropagates(t *testing.T) {
	dram := &fakeLower{latency: 200}
	l2 := MustNew(Config{Name: "l2", Level: mem.LvlL2, SizeBytes: 64 * 1024, Ways: 16,
		Latency: 10, MSHRs: 8}, dram)
	ql2 := NewQueued(l2, QueueConfig{RQ: 1, WQ: 4, PQ: 4, VAPQ: 4, MaxRead: 1, MaxWrite: 1})
	l1 := MustNew(Config{Name: "l1", Level: mem.LvlL1D, SizeBytes: 1024, Ways: 2,
		Latency: 2, MSHRs: 8}, ql2)
	ql1 := NewQueued(l1, DefaultQueueConfig(mem.LvlL1D))

	// Both loads miss all the way down; the single L2 RQ slot is held by the
	// first fill, so the second upper-level miss is backpressured.
	rA := ql1.Access(loadReq(0x0000), 0)
	rB := ql1.Access(loadReq(0x10000), 1)
	if got := ql2.Stats().RQFull; got == 0 {
		t.Error("lower rq_full never counted")
	}
	if rB.Ready < rA.Ready+100 {
		t.Errorf("second miss ready = %d, want delayed past first fill %d", rB.Ready, rA.Ready)
	}
	for _, q := range []*Queued{ql1, ql2} {
		if err := q.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueuedEvictionWritebackEntersLowerWQ(t *testing.T) {
	dram := &fakeLower{latency: 50}
	l2 := MustNew(Config{Name: "l2", Level: mem.LvlL2, SizeBytes: 64 * 1024, Ways: 16,
		Latency: 10, MSHRs: 8}, dram)
	ql2 := NewQueued(l2, DefaultQueueConfig(mem.LvlL2))
	// Tiny L1: 1 set x 2 ways, so stores are evicted quickly.
	l1 := MustNew(Config{Name: "l1", Level: mem.LvlL1D, SizeBytes: 128, Ways: 2,
		Latency: 2, MSHRs: 8}, ql2)
	ql1 := NewQueued(l1, DefaultQueueConfig(mem.LvlL1D))

	cycle := int64(0)
	for i := 0; i < 4; i++ {
		st := &mem.Request{Addr: mem.Addr(i * 64), Kind: mem.Store, IP: 1}
		cycle = ql1.Access(st, cycle).Ready + 1
	}
	ql1.Drain()
	ql2.Drain()
	if got := l1.Stats().Writebacks; got != 2 {
		t.Fatalf("l1 writebacks = %d, want 2", got)
	}
	// The evicted dirty lines must land in L2 via its write queue, not leak.
	if !l2.Contains(0x00) || !l2.Contains(0x40) {
		t.Error("evicted dirty lines not absorbed by lower level")
	}
	if got := l2.Stats().Access[mem.ClassWriteback]; got != 2 {
		t.Errorf("l2 writeback accesses = %d, want 2", got)
	}
}

func TestQueuedDrainLeavesNothingResident(t *testing.T) {
	lower := &fakeLower{latency: 100}
	q := queuedSmall(t, Config{ATP: true}, DefaultQueueConfig(mem.LvlL2), lower)

	leaf := &mem.Request{Addr: 0x5000, Kind: mem.Translation, Level: 1, Leaf: true, ReplayTarget: 0x9abc0}
	q.Access(leaf, 0)
	q.Access(leaf, 1000) // leaf hit fires ATP into the VAPQ
	q.Access(&mem.Request{Addr: 0x600, Kind: mem.Writeback}, 1001)
	q.Drain()
	if q.busy() {
		t.Fatal("busy after Drain")
	}
	if q.rq.len()+q.wq.len()+q.pq.len()+q.vapq.len() != 0 {
		t.Fatalf("entries resident after Drain: rq=%d wq=%d pq=%d vapq=%d",
			q.rq.len(), q.wq.len(), q.pq.len(), q.vapq.len())
	}
	if !q.Inner().Contains(0x9abc0) {
		t.Error("ATP prefetch not installed after Drain")
	}
	st := q.Stats()
	if st.Enqueued != st.Drained {
		t.Errorf("conservation after Drain: enqueued %d, drained %d", st.Enqueued, st.Drained)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQueuedResetStats(t *testing.T) {
	lower := &fakeLower{latency: 100}
	q := queuedSmall(t, Config{},
		QueueConfig{RQ: 1, WQ: 4, PQ: 4, VAPQ: 4, MaxRead: 1, MaxWrite: 1}, lower)
	q.Access(loadReq(0x0000), 0)
	q.Access(loadReq(0x4000), 1) // stalls on the single RQ slot
	if q.Stats().RQFull == 0 {
		t.Fatal("setup produced no rq_full")
	}
	q.Drain()
	q.ResetStats()
	st := q.Stats()
	if st.RQFull != 0 || st.MSHRFull != 0 || st.WQForward != 0 {
		t.Errorf("counters survive ResetStats: %+v", st)
	}
}
