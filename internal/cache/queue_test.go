package cache

import (
	"testing"

	"atcsim/internal/mem"
)

func TestRingWraparound(t *testing.T) {
	cases := []struct {
		name     string
		capacity int
		ops      int // pushes, each followed by a pop after `lag` more pushes
		lag      int
	}{
		{"cap1-drain-each", 1, 10, 0},
		{"cap4-half-full", 4, 100, 2},
		{"cap8-near-full", 8, 1000, 7},
		{"cap3-wrap-many", 3, 333, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRing(tc.capacity)
			next := uint64(1) // next seq to push
			exp := uint64(1)  // next seq expected at the head
			for i := 0; i < tc.ops; i++ {
				e := r.push()
				if e == nil {
					t.Fatalf("push %d rejected at occupancy %d/%d", i, r.len(), r.cap())
				}
				e.seq = next
				next++
				if r.len() > tc.lag {
					if got := r.at(0).seq; got != exp {
						t.Fatalf("head seq = %d, want %d (FIFO broken)", got, exp)
					}
					r.pop()
					exp++
				}
				if err := r.check("ring"); err != nil {
					t.Fatal(err)
				}
			}
			for !r.empty() {
				if got := r.at(0).seq; got != exp {
					t.Fatalf("drain head seq = %d, want %d", got, exp)
				}
				r.pop()
				exp++
			}
			if exp != next {
				t.Fatalf("popped up to seq %d, pushed up to %d: entries lost", exp-1, next-1)
			}
		})
	}
}

func TestRingOverflow(t *testing.T) {
	r := newRing(2)
	if r.push() == nil || r.push() == nil {
		t.Fatal("push rejected below capacity")
	}
	if !r.full() {
		t.Fatal("ring not full at capacity")
	}
	if r.push() != nil {
		t.Fatal("push accepted beyond capacity")
	}
	if err := r.check("ring"); err != nil {
		t.Fatal(err)
	}
	r.pop()
	if r.push() == nil {
		t.Fatal("push rejected after pop freed a slot")
	}
}

func TestRingZeroCapacityClamped(t *testing.T) {
	r := newRing(0)
	if r.cap() != 1 {
		t.Fatalf("cap = %d, want clamp to 1", r.cap())
	}
}

func TestRingFind(t *testing.T) {
	r := newRing(4)
	e := r.push()
	e.req = mem.Request{Addr: 0x40 << 1, Kind: mem.Load} // line 2
	e.line = 2
	e = r.push()
	e.line = 7 // prefetch-style entry: line payload only
	if !r.find(2) || !r.find(7) {
		t.Error("resident lines not found")
	}
	if r.find(3) {
		t.Error("absent line found")
	}
	r.pop()
	if r.find(2) {
		t.Error("popped line still found")
	}
}

func TestRingConservationCheck(t *testing.T) {
	r := newRing(4)
	r.push()
	r.push()
	r.pops++ // corrupt the books
	if err := r.check("ring"); err == nil {
		t.Error("conservation violation not detected")
	}
}

func TestDefaultQueueConfig(t *testing.T) {
	for _, lvl := range []mem.Level{mem.LvlL1D, mem.LvlL2, mem.LvlLLC} {
		qc := DefaultQueueConfig(lvl)
		if qc.RQ <= 0 || qc.WQ <= 0 || qc.PQ <= 0 || qc.VAPQ <= 0 ||
			qc.MaxRead <= 0 || qc.MaxWrite <= 0 {
			t.Errorf("%v: incomplete defaults %+v", lvl, qc)
		}
	}
	if l1, llc := DefaultQueueConfig(mem.LvlL1D), DefaultQueueConfig(mem.LvlLLC); l1.RQ >= llc.RQ {
		t.Errorf("L1 RQ %d not smaller than LLC RQ %d", l1.RQ, llc.RQ)
	}
}

func TestQueueConfigWithDefaults(t *testing.T) {
	qc := QueueConfig{RQ: 2}.withDefaults()
	if qc.RQ != 2 {
		t.Errorf("explicit RQ overridden: %d", qc.RQ)
	}
	if qc.WQ <= 0 || qc.PQ <= 0 || qc.VAPQ <= 0 || qc.MaxRead <= 0 || qc.MaxWrite <= 0 {
		t.Errorf("unset fields not defaulted: %+v", qc)
	}
}
