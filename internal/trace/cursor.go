package trace

// CursorBlock is the number of instructions a Cursor copies into its ring
// buffer per refill. One refill per 1024 steps keeps the amortized copy cost
// well under a nanosecond per instruction while giving each consumer a small
// private working window — in the parallel engine every core reads its own
// ring instead of sharing (and false-sharing) one big instruction slice.
const CursorBlock = 1024

// Cursor streams a trace's instructions through a fixed-size ring buffer,
// replaying the trace cyclically like the simulation engine requires. The
// buffer is allocated once at construction; steady-state iteration performs
// zero allocations. A Cursor is single-consumer and not safe for concurrent
// use; give each core its own.
type Cursor struct {
	src     []Inst
	buf     []Inst
	pos     int // next unread index in buf
	n       int // valid instructions in buf
	next    int // next source index to refill from
	refills uint64
}

// NewCursor builds a cursor over t, which must hold at least one
// instruction (the engine validates traces before building cursors).
func NewCursor(t *Trace) *Cursor {
	if len(t.Insts) == 0 {
		panic("trace: NewCursor on empty trace " + t.Name)
	}
	n := CursorBlock
	if len(t.Insts) < n {
		n = len(t.Insts)
	}
	return &Cursor{src: t.Insts, buf: make([]Inst, n)}
}

// Next returns the next instruction, wrapping to the start of the trace
// when it ends. The returned pointer stays valid until the buffered block
// is exhausted (at most CursorBlock further calls); callers must not retain
// it across steps.
func (c *Cursor) Next() *Inst {
	if c.pos == c.n {
		c.refill()
	}
	in := &c.buf[c.pos]
	c.pos++
	return in
}

// refill copies the next block from the source trace into the ring. The
// block near the end of the trace may be short; the next refill wraps to
// the start.
func (c *Cursor) refill() {
	if c.next == len(c.src) {
		c.next = 0
	}
	n := copy(c.buf, c.src[c.next:])
	c.next += n
	c.pos, c.n = 0, n
	c.refills++
}

// Refills returns how many block copies the cursor has performed — the
// sim_parallel_trace_refills_total metric source.
func (c *Cursor) Refills() uint64 { return c.refills }
