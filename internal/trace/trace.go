// Package trace defines the instruction-stream representation consumed by
// the simulation engine and a builder used by the synthetic workload
// kernels in internal/workloads.
package trace

import (
	"fmt"

	"atcsim/internal/mem"
)

// OpClass is the coarse instruction class the timing model distinguishes.
type OpClass uint8

// Instruction classes.
const (
	OpALU OpClass = iota
	OpLoad
	OpStore
	OpBranch
)

// String names the class.
func (o OpClass) String() string {
	switch o {
	case OpALU:
		return "alu"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	}
	return "unknown"
}

// Inst is one dynamic instruction.
type Inst struct {
	// IP is the instruction pointer (static code location).
	IP mem.Addr
	// Addr is the virtual data address for loads and stores.
	Addr mem.Addr
	// Op is the instruction class.
	Op OpClass
	// Taken is the branch outcome for OpBranch.
	Taken bool
	// Dep marks a load whose address depends on the previous load's data
	// (pointer chasing): it cannot issue before that load completes.
	Dep bool
}

// Trace is a finite dynamic instruction stream. Engines may replay it
// cyclically when a run needs more instructions than the trace holds.
type Trace struct {
	Name  string
	Insts []Inst
}

// Stats summarizes a trace's composition.
type Stats struct {
	Total, Loads, Stores, Branches, ALU int
	// Pages is the number of distinct virtual pages touched by data
	// accesses — the footprint driving STLB pressure.
	Pages int
}

// Stats computes the composition summary.
func (t *Trace) Stats() Stats {
	var s Stats
	pages := make(map[mem.Addr]struct{})
	for i := range t.Insts {
		in := &t.Insts[i]
		s.Total++
		switch in.Op {
		case OpLoad:
			s.Loads++
			pages[mem.PageNumber(in.Addr)] = struct{}{}
		case OpStore:
			s.Stores++
			pages[mem.PageNumber(in.Addr)] = struct{}{}
		case OpBranch:
			s.Branches++
		default:
			s.ALU++
		}
	}
	s.Pages = len(pages)
	return s
}

// BuilderBlock is the fixed instruction-block size the Builder accumulates
// into. Kernels emit into bounded blocks instead of one contiguous
// limit-sized slice, so building a trace never commits the full budget's
// memory up front (kernels routinely emit less than their limit) and the
// final assembly is one sequential copy per block.
const BuilderBlock = 4096

// Builder accumulates instructions up to a limit. Workload kernels check
// Full in their outer loops and stop emitting when the budget is reached.
type Builder struct {
	name   string
	limit  int
	n      int
	ipBase mem.Addr
	blocks [][]Inst
}

// NewBuilder creates a builder for a trace of at most limit instructions.
func NewBuilder(name string, limit int) (*Builder, error) {
	if limit <= 0 {
		return nil, fmt.Errorf("trace: non-positive limit %d", limit)
	}
	return &Builder{
		name:   name,
		limit:  limit,
		ipBase: 0x40_0000,
	}, nil
}

// MustNewBuilder is NewBuilder that panics on error.
func MustNewBuilder(name string, limit int) *Builder {
	b, err := NewBuilder(name, limit)
	if err != nil {
		panic(err)
	}
	return b
}

// Full reports whether the instruction budget is exhausted.
func (b *Builder) Full() bool { return b.n >= b.limit }

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return b.n }

// ip converts a small static site label into a distinct instruction
// pointer. Distinct sites get distinct IPs, which is what IP-signature
// policies (SHiP, Hawkeye, IPCP) key on.
func (b *Builder) ip(site int) mem.Addr { return b.ipBase + mem.Addr(site)*8 }

func (b *Builder) emit(i Inst) {
	if b.Full() {
		return
	}
	if len(b.blocks) == 0 || len(b.blocks[len(b.blocks)-1]) == cap(b.blocks[len(b.blocks)-1]) {
		size := BuilderBlock
		if rest := b.limit - b.n; rest < size {
			size = rest
		}
		b.blocks = append(b.blocks, make([]Inst, 0, size))
	}
	last := len(b.blocks) - 1
	b.blocks[last] = append(b.blocks[last], i)
	b.n++
}

// ALU emits n arithmetic instructions at the given site.
func (b *Builder) ALU(site, n int) {
	for k := 0; k < n; k++ {
		b.emit(Inst{IP: b.ip(site), Op: OpALU})
	}
}

// Load emits a load of va at the given site.
func (b *Builder) Load(site int, va mem.Addr) {
	b.emit(Inst{IP: b.ip(site), Op: OpLoad, Addr: va})
}

// LoadDep emits a load whose address was produced by the previous load
// (a dependent, pointer-chasing access).
func (b *Builder) LoadDep(site int, va mem.Addr) {
	b.emit(Inst{IP: b.ip(site), Op: OpLoad, Addr: va, Dep: true})
}

// Store emits a store to va at the given site.
func (b *Builder) Store(site int, va mem.Addr) {
	b.emit(Inst{IP: b.ip(site), Op: OpStore, Addr: va})
}

// Branch emits a conditional branch with the given outcome.
func (b *Builder) Branch(site int, taken bool) {
	b.emit(Inst{IP: b.ip(site), Op: OpBranch, Taken: taken})
}

// Build finalizes the trace: the accumulated blocks are assembled into one
// contiguous instruction stream sized exactly to what was emitted.
func (b *Builder) Build() *Trace {
	insts := make([]Inst, 0, b.n)
	for _, blk := range b.blocks {
		insts = append(insts, blk...)
	}
	return &Trace{Name: b.name, Insts: insts}
}
