package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"atcsim/internal/mem"
)

// Binary trace format: traces synthesized once can be saved and replayed
// across processes (the ChampSim workflow of shipping trace files). The
// format is a fixed header followed by fixed-width little-endian records —
// simple, versioned and fast to stream.
//
//	magic   [8]byte  "ATCTRC01"
//	nameLen uint32, name [nameLen]byte
//	count   uint64
//	records: ip uint64, addr uint64, op uint8, flags uint8 (bit0 taken, bit1 dep)
//	        ×count

var traceMagic = [8]byte{'A', 'T', 'C', 'T', 'R', 'C', '0', '1'}

const recordBytes = 8 + 8 + 1 + 1

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	name := []byte(t.Name)
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.Insts))); err != nil {
		return err
	}
	var rec [recordBytes]byte
	for i := range t.Insts {
		in := &t.Insts[i]
		binary.LittleEndian.PutUint64(rec[0:], uint64(in.IP))
		binary.LittleEndian.PutUint64(rec[8:], uint64(in.Addr))
		rec[16] = byte(in.Op)
		var flags byte
		if in.Taken {
			flags |= 1
		}
		if in.Dep {
			flags |= 2
		}
		rec[17] = flags
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("trace: implausible instruction count %d", count)
	}
	// Grow incrementally rather than trusting the header's count with one
	// huge allocation: a crafted header must supply the bytes to match.
	initial := count
	if initial > 1<<20 {
		initial = 1 << 20
	}
	t := &Trace{Name: string(name), Insts: make([]Inst, 0, initial)}
	var rec [recordBytes]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		t.Insts = append(t.Insts, Inst{})
		in := &t.Insts[len(t.Insts)-1]
		in.IP = mem.Addr(binary.LittleEndian.Uint64(rec[0:]))
		in.Addr = mem.Addr(binary.LittleEndian.Uint64(rec[8:]))
		op := OpClass(rec[16])
		if op > OpBranch {
			return nil, fmt.Errorf("trace: record %d: bad opcode %d", i, op)
		}
		in.Op = op
		in.Taken = rec[17]&1 != 0
		in.Dep = rec[17]&2 != 0
	}
	return t, nil
}
