package trace

import (
	"bytes"
	"testing"

	"atcsim/internal/mem"
)

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder("x", 0); err == nil {
		t.Error("zero limit accepted")
	}
	if _, err := NewBuilder("x", -5); err == nil {
		t.Error("negative limit accepted")
	}
}

func TestBuilderEmitsAndCaps(t *testing.T) {
	b := MustNewBuilder("t", 5)
	b.Load(1, 0x1000)
	b.Store(2, 0x2000)
	b.Branch(3, true)
	b.ALU(4, 10) // only 2 fit
	if !b.Full() || b.Len() != 5 {
		t.Fatalf("len = %d full = %v", b.Len(), b.Full())
	}
	// Emissions after full are dropped silently.
	b.Load(1, 0x3000)
	if b.Len() != 5 {
		t.Error("emitted past the limit")
	}
	tr := b.Build()
	if tr.Name != "t" || len(tr.Insts) != 5 {
		t.Fatalf("trace = %s/%d", tr.Name, len(tr.Insts))
	}
	if tr.Insts[0].Op != OpLoad || tr.Insts[0].Addr != 0x1000 {
		t.Error("first inst wrong")
	}
	if tr.Insts[2].Op != OpBranch || !tr.Insts[2].Taken {
		t.Error("branch inst wrong")
	}
}

func TestDistinctSitesDistinctIPs(t *testing.T) {
	b := MustNewBuilder("t", 10)
	b.Load(1, 0x1000)
	b.Load(2, 0x1000)
	b.Load(1, 0x2000)
	tr := b.Build()
	if tr.Insts[0].IP == tr.Insts[1].IP {
		t.Error("different sites share an IP")
	}
	if tr.Insts[0].IP != tr.Insts[2].IP {
		t.Error("same site has different IPs")
	}
}

func TestTraceStats(t *testing.T) {
	b := MustNewBuilder("t", 10)
	b.Load(1, 0)                  // page 0
	b.Load(1, mem.PageSize)       // page 1
	b.Store(2, mem.PageSize+1024) // page 1 again
	b.Branch(3, false)
	b.ALU(4, 2)
	st := b.Build().Stats()
	if st.Total != 6 || st.Loads != 2 || st.Stores != 1 || st.Branches != 1 || st.ALU != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Pages != 2 {
		t.Errorf("pages = %d, want 2", st.Pages)
	}
}

func TestOpClassString(t *testing.T) {
	names := map[OpClass]string{OpALU: "alu", OpLoad: "load", OpStore: "store", OpBranch: "branch"}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("OpClass(%d) = %q", op, op.String())
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	b := MustNewBuilder("roundtrip", 100)
	b.Load(1, 0x1000)
	b.LoadDep(2, 0x2000)
	b.Store(3, 0x3000)
	b.Branch(4, true)
	b.Branch(5, false)
	b.ALU(6, 3)
	orig := b.Build()

	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || len(got.Insts) != len(orig.Insts) {
		t.Fatalf("header mismatch: %q/%d", got.Name, len(got.Insts))
	}
	for i := range orig.Insts {
		if got.Insts[i] != orig.Insts[i] {
			t.Fatalf("inst %d: %+v != %+v", i, got.Insts[i], orig.Insts[i])
		}
	}
}

func TestTraceReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Valid header, truncated records.
	b := MustNewBuilder("x", 10)
	b.ALU(1, 5)
	var buf bytes.Buffer
	b.Build().Write(&buf)
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncated trace accepted")
	}
}
