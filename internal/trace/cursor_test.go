package trace

import (
	"testing"

	"atcsim/internal/mem"
)

// buildTest emits n deterministic instructions through the Builder.
func buildTest(t *testing.T, name string, n int) *Trace {
	t.Helper()
	b := MustNewBuilder(name, n)
	site := 0
	for !b.Full() {
		switch site % 4 {
		case 0:
			b.ALU(site, 1)
		case 1:
			b.Load(site, mem.Addr(site)*64)
		case 2:
			b.Store(site, mem.Addr(site)*128)
		default:
			b.Branch(site, site%8 == 3)
		}
		site++
	}
	return b.Build()
}

// TestCursorMatchesDirectIteration pins the cursor's contract: streaming
// through the fixed ring buffer yields exactly the cyclic replay sequence
// the engine's direct indexing produced, across block boundaries and
// wrap-around, including traces shorter than one block.
func TestCursorMatchesDirectIteration(t *testing.T) {
	for _, n := range []int{1, 7, CursorBlock - 1, CursorBlock, CursorBlock + 1, 2*CursorBlock + 513} {
		tr := buildTest(t, "cursor", n)
		if len(tr.Insts) != n {
			t.Fatalf("built %d insts, want %d", len(tr.Insts), n)
		}
		cur := NewCursor(tr)
		pos := 0
		steps := 3*n + 17
		if steps < 4*CursorBlock {
			steps = 4 * CursorBlock
		}
		for i := 0; i < steps; i++ {
			got := cur.Next()
			want := &tr.Insts[pos]
			if *got != *want {
				t.Fatalf("n=%d step %d: cursor %+v, direct %+v", n, i, *got, *want)
			}
			if pos++; pos == len(tr.Insts) {
				pos = 0
			}
		}
		if cur.Refills() == 0 {
			t.Fatalf("n=%d: no refills recorded", n)
		}
	}
}

// TestCursorSteadyStateAllocs pins the zero-allocation property of the
// streaming hot path: Next never touches the heap after construction.
func TestCursorSteadyStateAllocs(t *testing.T) {
	tr := buildTest(t, "alloc", 3*CursorBlock/2)
	cur := NewCursor(tr)
	var sink Inst
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < CursorBlock; i++ {
			sink = *cur.Next()
		}
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("cursor Next allocated %v per run, want 0", allocs)
	}
}

// TestBuilderBlockAccumulation checks that the chunked builder is invisible
// to consumers: Len/Full track the budget exactly and Build assembles the
// emitted sequence contiguously regardless of where block boundaries fall.
func TestBuilderBlockAccumulation(t *testing.T) {
	limit := 2*BuilderBlock + 77
	b := MustNewBuilder("blocks", limit)
	for i := 0; !b.Full(); i++ {
		b.Load(i%13, mem.Addr(i)*64)
		if want := i + 1; b.Len() != want && !b.Full() {
			t.Fatalf("after %d emits Len=%d", want, b.Len())
		}
	}
	if b.Len() != limit {
		t.Fatalf("Len=%d at Full, want %d", b.Len(), limit)
	}
	b.ALU(0, 5) // past the budget: dropped
	tr := b.Build()
	if len(tr.Insts) != limit {
		t.Fatalf("built %d insts, want %d", len(tr.Insts), limit)
	}
	for i := range tr.Insts {
		if tr.Insts[i].Op != OpLoad || tr.Insts[i].Addr != mem.Addr(i)*64 {
			t.Fatalf("inst %d corrupted across block boundary: %+v", i, tr.Insts[i])
		}
	}
}
