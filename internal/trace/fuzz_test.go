package trace

import (
	"bytes"
	"reflect"
	"testing"

	"atcsim/internal/mem"
)

// fuzzSeedTrace is a small but representative trace for the fuzz corpus.
func fuzzSeedTrace() *Trace {
	return &Trace{
		Name: "seed",
		Insts: []Inst{
			{IP: 0x400000, Op: OpALU},
			{IP: 0x400004, Op: OpLoad, Addr: 0xdead40, Dep: true},
			{IP: 0x400008, Op: OpStore, Addr: 0xbeef80},
			{IP: 0x40000c, Op: OpBranch, Taken: true},
		},
	}
}

// FuzzTraceRead throws arbitrary bytes at the binary trace decoder: it must
// reject or accept without panicking, never allocate unboundedly, and any
// trace it does accept must survive a Write/Read round trip unchanged.
func FuzzTraceRead(f *testing.F) {
	var buf bytes.Buffer
	if err := fuzzSeedTrace().Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("ATCTRC01"))
	f.Add([]byte("not a trace"))
	f.Add(buf.Bytes()[:buf.Len()-3]) // truncated record

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		var out bytes.Buffer
		if err := tr.Write(&out); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decoding re-encoded trace: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("round trip diverged:\n first: %+v\nsecond: %+v", tr, tr2)
		}
	})
}

// FuzzTraceRoundTrip drives the encoder from arbitrary instruction streams
// (the dual direction: every trace we can build must serialize and
// deserialize exactly).
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add("mix", []byte{0, 1, 2, 3, 0xFF, 0x80})
	f.Add("", []byte{})
	f.Fuzz(func(t *testing.T, name string, raw []byte) {
		if len(name) > 1<<10 {
			name = name[:1<<10]
		}
		tr := &Trace{Name: name}
		for i, b := range raw {
			tr.Insts = append(tr.Insts, Inst{
				IP:    mem.Addr(0x400000 + 4*i),
				Op:    OpClass(b % 4),
				Addr:  mem.Addr(b) << 6,
				Taken: b&0x10 != 0,
				Dep:   b&0x20 != 0,
			})
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		tr2, err := Read(&buf)
		if err != nil {
			t.Fatalf("decoding freshly encoded trace: %v", err)
		}
		if tr.Name != tr2.Name || len(tr.Insts) != len(tr2.Insts) {
			t.Fatalf("round trip diverged")
		}
		// Compare elementwise: a nil and an empty slice are both "no insts".
		for i := range tr.Insts {
			if !reflect.DeepEqual(tr.Insts[i], tr2.Insts[i]) {
				t.Fatalf("inst %d diverged: %+v vs %+v", i, tr.Insts[i], tr2.Insts[i])
			}
		}
	})
}
