package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestHealthNilSafe(t *testing.T) {
	var h *Health
	if s := h.Snapshot(); s != (HealthSnapshot{}) {
		t.Errorf("nil Snapshot = %+v", s)
	}
	want := "runs=0 retries=0 failures=0 panics=0 timeouts=0 canceled=0 disk_hits=0 disk_errors=0 quarantined=0"
	if got := h.String(); got != want {
		t.Errorf("nil String = %q", got)
	}
}

func TestHealthConcurrentCounting(t *testing.T) {
	h := new(Health)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h.Runs.Add(1)
				h.Retries.Add(2)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Runs != 800 || s.Retries != 1600 {
		t.Errorf("Snapshot = %+v", s)
	}
}

func TestHealthSnapshotJSON(t *testing.T) {
	h := new(Health)
	h.Failures.Add(1)
	h.Panics.Add(1)
	h.Quarantined.Add(3)
	raw, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back HealthSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Failures != 1 || back.Panics != 1 || back.Quarantined != 3 {
		t.Errorf("round trip = %+v", back)
	}
}
