package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"atcsim/internal/mem"
	"atcsim/internal/metrics"
)

// TestHeartbeatJSONLFieldPresence decodes raw JSONL heartbeat lines and
// asserts every documented field is actually present (a Row-struct decode
// would silently zero-fill missing keys) and that interval indices increase
// monotonically from zero.
func TestHeartbeatJSONLFieldPresence(t *testing.T) {
	var buf bytes.Buffer
	hb := NewHeartbeat(&buf, FormatJSONL, 1000)
	hb.Begin(Snapshot{})
	for i := 1; i <= 4; i++ {
		hb.Tick(Snapshot{
			Cycle:        int64(i) * 2000,
			Instructions: uint64(i) * 1000,
			STLBAccesses: uint64(i) * 300,
			STLBMisses:   uint64(i) * 30,
			DRAMReads:    uint64(i) * 50,
			DRAMRowHits:  uint64(i) * 20,
		})
	}
	if err := hb.Err(); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"interval", "end_cycle", "cycles", "instructions", "ipc",
		"l1d_mpki", "l2_mpki", "llc_mpki", "llc_replay_mpki", "llc_leaf_mpki",
		"stlb_miss_rate", "stlb_mpki", "trans_hit_rate",
		"stall_translation", "stall_replay", "stall_nonreplay", "stall_other",
		"dram_row_hit_rate",
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		for _, k := range want {
			if _, ok := m[k]; !ok {
				t.Errorf("line %d missing field %q: %s", i, k, ln)
			}
		}
		if idx, ok := m["interval"].(float64); !ok || int(idx) != i {
			t.Errorf("line %d interval = %v, want %d (monotonic from 0)", i, m["interval"], i)
		}
	}
}

// TestHealthRegisterMetrics checks the registry view reads the same atomics
// the engine bumps — no second copy, no drift.
func TestHealthRegisterMetrics(t *testing.T) {
	h := new(Health)
	reg := metrics.New()
	h.RegisterMetrics(reg)
	h.Runs.Add(7)
	h.Failures.Add(2)
	h.Retries.Add(3)
	h.Quarantined.Add(1)

	got := map[string]float64{}
	for _, s := range reg.Gather() {
		got[s.Name] = s.Value
	}
	for name, want := range map[string]float64{
		`runner_runs_total{outcome="ok"}`:     7,
		`runner_runs_total{outcome="failed"}`: 2,
		"runner_retries_total":                3,
		"runner_quarantined_total":            1,
		"runner_panics_total":                 0,
	} {
		if got[name] != want {
			t.Errorf("%s = %v, want %v", name, got[name], want)
		}
	}
	h.Runs.Add(1)
	for _, s := range reg.Gather() {
		if s.Name == `runner_runs_total{outcome="ok"}` && s.Value != 8 {
			t.Errorf("registry did not track live counter: %v", s.Value)
		}
	}
}

// TestSnapshotGauges publishes a cumulative snapshot and reads it back from
// the registry.
func TestSnapshotGauges(t *testing.T) {
	reg := metrics.New()
	g := NewSnapshotGauges(reg)
	var sn Snapshot
	sn.Cycle = 5000
	sn.Instructions = 12_345
	sn.L1DMisses[mem.ClassNonReplay] = 40
	sn.L1DMisses[mem.ClassReplay] = 2
	sn.L1DMisses[mem.ClassPrefetch] = 99 // not a demand class: excluded
	sn.STLBMisses = 17
	sn.Stalls[0] = 100
	g.Publish(sn)

	got := map[string]float64{}
	for _, s := range reg.Gather() {
		got[s.Name] = s.Value
	}
	if got["sim_instructions"] != 12_345 {
		t.Errorf("sim_instructions = %v", got["sim_instructions"])
	}
	if got[`sim_cache_demand_misses{level="l1d"}`] != 42 {
		t.Errorf("l1d demand misses = %v, want 42", got[`sim_cache_demand_misses{level="l1d"}`])
	}
	if got["sim_stlb_misses"] != 17 {
		t.Errorf("sim_stlb_misses = %v", got["sim_stlb_misses"])
	}
	if got[`sim_stall_cycles{class="translation"}`] != 100 {
		t.Errorf("translation stalls = %v", got[`sim_stall_cycles{class="translation"}`])
	}

	var nilG *SnapshotGauges
	nilG.Publish(sn) // must not panic
}

// TestHubOnTick checks the nil-safe accessor and delivery.
func TestHubOnTick(t *testing.T) {
	var nilHub *Hub
	if nilHub.OnTickOrNil() != nil {
		t.Fatal("nil hub returned a callback")
	}
	var seen []uint64
	hub := &Hub{OnTick: func(sn Snapshot) { seen = append(seen, sn.Instructions) }}
	for i := 1; i <= 3; i++ {
		hub.OnTickOrNil()(Snapshot{Instructions: uint64(i)})
	}
	if fmt.Sprint(seen) != "[1 2 3]" {
		t.Fatalf("seen = %v", seen)
	}
}
