package telemetry

import (
	"bufio"
	"fmt"
	"io"

	"atcsim/internal/mem"
)

// Lane identifies the per-core Perfetto track an event is drawn on. Each
// simulated core becomes one trace "process"; lanes are its named threads,
// so a sampled request reads top-to-bottom: pipeline → MMU → page walk →
// caches → DRAM.
type Lane int32

// Lanes, ordered as displayed.
const (
	LaneRequest Lane = iota // the enclosing instruction span + replay issue
	LaneMMU                 // DTLB/STLB lookups and TLB events
	LanePTW                 // per-level page-walk steps
	LaneCache               // L1I/L1D/L2C/LLC lookups
	LaneDRAM                // bank/bus service slots
	LaneStall               // ROB-head stall spans (unsampled)
	numLanes
)

func (l Lane) String() string {
	switch l {
	case LaneRequest:
		return "pipeline"
	case LaneMMU:
		return "mmu"
	case LanePTW:
		return "ptw"
	case LaneCache:
		return "cache"
	case LaneDRAM:
		return "dram"
	case LaneStall:
		return "rob-stall"
	}
	return "unknown"
}

// Arg is one key/value annotation on an event. Str takes precedence when
// non-empty; otherwise Val is emitted as an integer.
type Arg struct {
	Key string
	Str string
	Val int64
}

// SArg builds a string-valued argument.
func SArg(key, val string) Arg { return Arg{Key: key, Str: val} }

// IArg builds an integer-valued argument.
func IArg(key string, val int64) Arg { return Arg{Key: key, Val: val} }

// maxArgs bounds per-event annotations so Event stays a flat value type and
// ring-buffer slots are reused without allocation.
const maxArgs = 3

// Event is one Chrome trace event. Phase 'X' is a complete span (Ts..Ts+Dur),
// 'i' an instant. Timestamps are simulated cycles, written 1 cycle = 1 µs so
// Perfetto's time axis reads directly in cycles.
type Event struct {
	Name  string
	Cat   string
	Core  int32
	Lane  Lane
	Phase byte
	Ts    int64
	Dur   int64
	Args  [maxArgs]Arg
	NArgs int32
	Seq   uint64 // insertion sequence, for stable ordering and tests
}

// DefaultSampleEvery is the default sampling period: one in every N memory
// instructions gets its full lifecycle recorded.
const DefaultSampleEvery = 32

// DefaultBufferEvents is the default ring capacity. At ~12 events per
// sampled request this holds the last ~5K sampled requests.
const DefaultBufferEvents = 1 << 16

// Tracer records sampled request lifecycles into a bounded ring buffer.
// It is single-threaded, like the simulator. The zero value is not useful;
// a nil *Tracer is valid everywhere and disables tracing.
type Tracer struct {
	sampleEvery uint64
	seen        uint64 // memory instructions observed
	seq         uint64 // events emitted (ever)

	active bool
	core   int32 // core of the in-flight sampled request
	now    int64 // dispatch cycle of the in-flight sampled request

	buf   []Event
	next  int
	cores int32 // highest core id seen + 1 (for metadata emission)
}

// NewTracer creates a tracer sampling one in sampleEvery memory instructions
// into a ring of capacity events. Non-positive arguments fall back to the
// defaults.
func NewTracer(capacity, sampleEvery int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultBufferEvents
	}
	if sampleEvery <= 0 {
		sampleEvery = DefaultSampleEvery
	}
	return &Tracer{
		sampleEvery: uint64(sampleEvery),
		buf:         make([]Event, 0, capacity),
	}
}

// Enabled reports whether the tracer exists at all. Unsampled event sources
// (ROB-stall spans) gate on this instead of Active.
func (t *Tracer) Enabled() bool { return t != nil }

// Active reports whether a sampled request is currently in flight; component
// hooks guard on this so the disabled path is a single nil check.
func (t *Tracer) Active() bool { return t != nil && t.active }

// BeginSample is called by the pipeline for every memory instruction; one in
// sampleEvery becomes the tracked request. It returns whether the request is
// sampled (callers normally ignore this and use Active).
func (t *Tracer) BeginSample(core int, kind string, ip, va mem.Addr, cycle int64) bool {
	if t == nil {
		return false
	}
	t.seen++
	if t.seen%t.sampleEvery != 0 {
		return false
	}
	t.active = true
	t.core = int32(core)
	t.now = cycle
	t.Instant("request", "begin "+kind, LaneRequest,
		IArg("ip", int64(ip)), IArg("va", int64(va)), IArg("sample", int64(t.seen/t.sampleEvery)))
	return true
}

// EndSample closes the tracked request with its enclosing span.
func (t *Tracer) EndSample(kind string, complete int64) {
	if t == nil || !t.active {
		return
	}
	t.span(Event{
		Name: kind, Cat: "request", Core: t.core, Lane: LaneRequest,
		Ts: t.now, Dur: complete - t.now,
	})
	t.active = false
}

// Now returns the dispatch cycle of the in-flight sampled request; instants
// from components without their own clock (TLB evictions) land here.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.now
}

// Span records a complete event on the active request's core.
func (t *Tracer) Span(cat, name string, lane Lane, start, end int64, args ...Arg) {
	if t == nil || !t.active {
		return
	}
	ev := Event{Name: name, Cat: cat, Core: t.core, Lane: lane, Ts: start, Dur: end - start}
	fillArgs(&ev, args)
	t.span(ev)
}

// SpanOn is Span with an explicit core, for shared components (LLC, DRAM)
// that service several cores.
func (t *Tracer) SpanOn(core int, cat, name string, lane Lane, start, end int64, args ...Arg) {
	if t == nil || !t.active {
		return
	}
	ev := Event{Name: name, Cat: cat, Core: int32(core), Lane: lane, Ts: start, Dur: end - start}
	fillArgs(&ev, args)
	t.span(ev)
}

// Instant records a zero-duration event at the active request's current
// cycle.
func (t *Tracer) Instant(cat, name string, lane Lane, args ...Arg) {
	if t == nil || !t.active {
		return
	}
	ev := Event{Name: name, Cat: cat, Core: t.core, Lane: lane, Phase: 'i', Ts: t.now}
	fillArgs(&ev, args)
	t.emit(ev)
}

// StallSpan records an unsampled ROB-head stall span; it bypasses the
// active-request gate (stalls attribute at retirement, long after the
// triggering request's window closed).
func (t *Tracer) StallSpan(core int, class string, start, end int64) {
	if t == nil {
		return
	}
	t.emit(Event{
		Name: "stall:" + class, Cat: "cpu", Core: int32(core), Lane: LaneStall,
		Phase: 'X', Ts: start, Dur: end - start, NArgs: 0,
	})
}

func fillArgs(ev *Event, args []Arg) {
	n := len(args)
	if n > maxArgs {
		n = maxArgs
	}
	for i := 0; i < n; i++ {
		ev.Args[i] = args[i]
	}
	ev.NArgs = int32(n)
}

func (t *Tracer) span(ev Event) {
	ev.Phase = 'X'
	if ev.Dur < 0 {
		ev.Dur = 0
	}
	t.emit(ev)
}

func (t *Tracer) emit(ev Event) {
	if ev.Core+1 > t.cores {
		t.cores = ev.Core + 1
	}
	ev.Seq = t.seq
	t.seq++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
		return
	}
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
}

// Sampled returns how many requests have been selected for tracing.
func (t *Tracer) Sampled() uint64 {
	if t == nil {
		return 0
	}
	return t.seen / t.sampleEvery
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	if retained := uint64(len(t.buf)); t.seq > retained {
		return t.seq - retained
	}
	return 0
}

// Events returns the retained events oldest-first. The slice aliases the
// ring; callers must not retain it across further emission.
func (t *Tracer) Events() []Event {
	if t == nil || len(t.buf) == 0 {
		return nil
	}
	if len(t.buf) < cap(t.buf) || t.next == 0 {
		return t.buf
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// WriteChromeTrace emits the retained events as Chrome trace-event JSON
// (object form, with a traceEvents array), directly loadable in Perfetto and
// chrome://tracing. Cycle timestamps are written as microseconds.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}
	if t != nil {
		for core := int32(0); core < t.cores; core++ {
			sep()
			fmt.Fprintf(bw, `{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"core %d"}}`, core, core)
			for lane := Lane(0); lane < numLanes; lane++ {
				sep()
				fmt.Fprintf(bw, `{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}`, core, lane, lane)
				sep()
				fmt.Fprintf(bw, `{"name":"thread_sort_index","ph":"M","pid":%d,"tid":%d,"args":{"sort_index":%d}}`, core, lane, lane)
			}
		}
		evs := t.Events()
		for i := range evs {
			sep()
			writeEvent(bw, &evs[i])
		}
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

func writeEvent(bw *bufio.Writer, ev *Event) {
	fmt.Fprintf(bw, `{"name":%q,"cat":%q,"ph":%q,"pid":%d,"tid":%d,"ts":%d`,
		ev.Name, ev.Cat, string(ev.Phase), ev.Core, ev.Lane, ev.Ts)
	if ev.Phase == 'X' {
		fmt.Fprintf(bw, `,"dur":%d`, ev.Dur)
	}
	if ev.Phase == 'i' {
		bw.WriteString(`,"s":"t"`)
	}
	if ev.NArgs > 0 {
		bw.WriteString(`,"args":{`)
		for i := int32(0); i < ev.NArgs; i++ {
			if i > 0 {
				bw.WriteByte(',')
			}
			a := &ev.Args[i]
			if a.Str != "" {
				fmt.Fprintf(bw, "%q:%q", a.Key, a.Str)
			} else {
				fmt.Fprintf(bw, "%q:%d", a.Key, a.Val)
			}
		}
		bw.WriteByte('}')
	}
	bw.WriteByte('}')
}
