// Package telemetry is the simulator's observability layer: a sampled
// request-lifecycle tracer that emits Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing), an interval heartbeat engine that streams
// time-series statistics as CSV or JSONL, and lightweight progress counters
// for long-running sweeps.
//
// Every entry point is nil-safe: components hold a possibly-nil *Tracer and
// guard each hook site with Active() (one inlinable nil-and-bool check), so
// the telemetry-disabled hot path stays allocation-free and within benchmark
// noise of an uninstrumented build. Telemetry is strictly an observer — it
// never changes simulated timing, so enabling it is bit-identical to running
// without it.
package telemetry

import "sync/atomic"

// Hub bundles the observability facilities a run can carry. A nil Hub (the
// default) disables everything; each field may also individually be nil.
type Hub struct {
	// Tracer records sampled request lifecycles.
	Tracer *Tracer
	// Heartbeat streams interval statistics.
	Heartbeat *Heartbeat
	// Progress, when non-nil, is updated with coarse instruction counts so
	// an expvar/pprof endpoint can report liveness from another goroutine.
	Progress *Progress
	// OnTick, when non-nil, receives every cumulative heartbeat snapshot on
	// the simulator goroutine — the bridge that feeds live sim_* gauges and
	// periodic JSONL metric snapshots at heartbeat cadence instead of on the
	// per-access hot path.
	OnTick func(Snapshot)
}

// OnTickOrNil returns the hub's snapshot callback, tolerating a nil hub.
func (h *Hub) OnTickOrNil() func(Snapshot) {
	if h == nil {
		return nil
	}
	return h.OnTick
}

// TracerOrNil returns the hub's tracer, tolerating a nil hub.
func (h *Hub) TracerOrNil() *Tracer {
	if h == nil {
		return nil
	}
	return h.Tracer
}

// HeartbeatOrNil returns the hub's heartbeat engine, tolerating a nil hub.
func (h *Hub) HeartbeatOrNil() *Heartbeat {
	if h == nil {
		return nil
	}
	return h.Heartbeat
}

// ProgressOrNil returns the hub's progress counters, tolerating a nil hub.
func (h *Hub) ProgressOrNil() *Progress {
	if h == nil {
		return nil
	}
	return h.Progress
}

// Progress is a pair of atomically-updated counters safe to read from a
// different goroutine than the simulator's (e.g. an expvar handler).
type Progress struct {
	done  atomic.Uint64
	total atomic.Uint64
}

// SetTotal records the expected instruction total.
func (p *Progress) SetTotal(n uint64) {
	if p == nil {
		return
	}
	p.total.Store(n)
}

// Set publishes the number of instructions simulated so far.
func (p *Progress) Set(n uint64) {
	if p == nil {
		return
	}
	p.done.Store(n)
}

// Done returns the published instruction count.
func (p *Progress) Done() uint64 {
	if p == nil {
		return 0
	}
	return p.done.Load()
}

// Total returns the expected instruction total (0 when unknown).
func (p *Progress) Total() uint64 {
	if p == nil {
		return 0
	}
	return p.total.Load()
}
