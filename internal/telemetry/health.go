package telemetry

import (
	"fmt"
	"sync/atomic"
)

// Health aggregates sweep-level fault-tolerance counters: how many runs
// completed, how many were retried, and how every failure was classified.
// It complements the per-run heartbeat stream with whole-campaign liveness —
// a long sweep that is silently burning its retry budget shows up here long
// before it fails. All fields are atomic, so the experiment engine updates
// them from any worker goroutine without locking; readers take a Snapshot.
type Health struct {
	// Runs counts simulations that completed successfully.
	Runs atomic.Int64
	// Retries counts extra attempts spent on transient failures (a run
	// that succeeds on attempt 3 adds 2).
	Retries atomic.Int64
	// Failures counts runs that permanently failed (after any retries).
	Failures atomic.Int64
	// Panics counts failed runs whose final failure was a captured panic.
	Panics atomic.Int64
	// Timeouts counts failed runs abandoned at their per-run deadline.
	Timeouts atomic.Int64
	// Canceled counts runs refused or abandoned because the sweep's
	// context was canceled (SIGINT, sweep budget).
	Canceled atomic.Int64
	// DiskHits counts results served from the on-disk cache.
	DiskHits atomic.Int64
	// DiskErrors counts on-disk cache read/write failures (never fatal —
	// the result is recomputed or kept in memory only).
	DiskErrors atomic.Int64
	// Quarantined counts corrupt cache entries moved to ".bad" siblings.
	Quarantined atomic.Int64
}

// HealthSnapshot is a point-in-time copy of every Health counter.
type HealthSnapshot struct {
	Runs        int64 `json:"runs"`
	Retries     int64 `json:"retries"`
	Failures    int64 `json:"failures"`
	Panics      int64 `json:"panics"`
	Timeouts    int64 `json:"timeouts"`
	Canceled    int64 `json:"canceled"`
	DiskHits    int64 `json:"disk_hits"`
	DiskErrors  int64 `json:"disk_errors"`
	Quarantined int64 `json:"quarantined"`
}

// Snapshot copies the counters. Nil-safe (a nil Health reads as all zeros).
func (h *Health) Snapshot() HealthSnapshot {
	if h == nil {
		return HealthSnapshot{}
	}
	return HealthSnapshot{
		Runs:        h.Runs.Load(),
		Retries:     h.Retries.Load(),
		Failures:    h.Failures.Load(),
		Panics:      h.Panics.Load(),
		Timeouts:    h.Timeouts.Load(),
		Canceled:    h.Canceled.Load(),
		DiskHits:    h.DiskHits.Load(),
		DiskErrors:  h.DiskErrors.Load(),
		Quarantined: h.Quarantined.Load(),
	}
}

// String renders the snapshot as a stable single line for progress output,
// e.g. "runs=12 retries=1 failures=1 panics=1 timeouts=0 canceled=0
// disk_hits=3 disk_errors=0 quarantined=1".
func (h *Health) String() string {
	s := h.Snapshot()
	return fmt.Sprintf(
		"runs=%d retries=%d failures=%d panics=%d timeouts=%d canceled=%d disk_hits=%d disk_errors=%d quarantined=%d",
		s.Runs, s.Retries, s.Failures, s.Panics, s.Timeouts, s.Canceled,
		s.DiskHits, s.DiskErrors, s.Quarantined)
}
