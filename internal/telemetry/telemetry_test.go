package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"atcsim/internal/mem"
)

// A nil tracer must be safe and inert at every entry point: the simulator
// threads hooks through unconditionally and relies on nil receivers.
func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() || tr.Active() {
		t.Fatal("nil tracer reports enabled/active")
	}
	if tr.BeginSample(0, "load", 1, 2, 3) {
		t.Fatal("nil tracer sampled a request")
	}
	tr.EndSample("load", 10)
	tr.Span("c", "n", LaneCache, 0, 5)
	tr.SpanOn(1, "c", "n", LaneDRAM, 0, 5)
	tr.Instant("c", "n", LaneMMU)
	tr.StallSpan(0, "other", 0, 100)
	if tr.Sampled() != 0 || tr.Dropped() != 0 || tr.Events() != nil || tr.Now() != 0 {
		t.Fatal("nil tracer retained state")
	}
	var hub *Hub
	if hub.TracerOrNil() != nil || hub.HeartbeatOrNil() != nil || hub.ProgressOrNil() != nil {
		t.Fatal("nil hub returned a facility")
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(1024, 4)
	sampled := 0
	for i := 0; i < 40; i++ {
		if tr.BeginSample(0, "load", mem.Addr(i), mem.Addr(i), int64(i)) {
			sampled++
			if !tr.Active() {
				t.Fatalf("instruction %d: sampled but not active", i)
			}
			tr.Span("cache", "L1D", LaneCache, int64(i), int64(i)+5)
			tr.EndSample("load", int64(i)+10)
			if tr.Active() {
				t.Fatalf("instruction %d: active after EndSample", i)
			}
		} else if tr.Active() {
			t.Fatalf("instruction %d: active without sample", i)
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 40 at 1-in-4, want 10", sampled)
	}
	if got := tr.Sampled(); got != 10 {
		t.Fatalf("Sampled() = %d, want 10", got)
	}
	// Each sampled request emits begin-instant + cache span + enclosing span.
	if got := len(tr.Events()); got != 30 {
		t.Fatalf("retained %d events, want 30", got)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped() = %d with a non-full ring", tr.Dropped())
	}
}

// Events outside an active sample window must not be recorded (that is the
// whole allocation-free disabled path), except StallSpan which is unsampled.
func TestTracerGatesOnActiveWindow(t *testing.T) {
	tr := NewTracer(64, 2)
	tr.Span("cache", "L1D", LaneCache, 0, 5)
	tr.Instant("mmu", "evict", LaneMMU)
	if len(tr.Events()) != 0 {
		t.Fatal("events recorded outside a sample window")
	}
	tr.StallSpan(0, "translation", 100, 150)
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Name != "stall:translation" || evs[0].Lane != LaneStall {
		t.Fatalf("StallSpan not recorded: %+v", evs)
	}
}

func TestRingWraparound(t *testing.T) {
	const capacity = 8
	tr := NewTracer(capacity, 1) // sample everything
	const n = 30
	for i := 0; i < n; i++ {
		tr.BeginSample(0, "load", 0, 0, int64(i)) // one event per instruction
		tr.active = false
	}
	evs := tr.Events()
	if len(evs) != capacity {
		t.Fatalf("retained %d events, want ring capacity %d", len(evs), capacity)
	}
	for i, ev := range evs {
		want := uint64(n - capacity + i)
		if ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest-first order)", i, ev.Seq, want)
		}
	}
	if got := tr.Dropped(); got != n-capacity {
		t.Fatalf("Dropped() = %d, want %d", got, n-capacity)
	}
}

// chromeTrace mirrors the trace-event JSON schema Perfetto consumes.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string          `json:"name"`
		Cat  string          `json:"cat"`
		Ph   string          `json:"ph"`
		Pid  *int            `json:"pid"`
		Tid  *int            `json:"tid"`
		Ts   *int64          `json:"ts"`
		Dur  *int64          `json:"dur"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(1024, 1)
	tr.BeginSample(1, "load", 0x400000, 0x7f0000, 100)
	tr.Span("cache", "L1D", LaneCache, 100, 105,
		SArg("outcome", "miss"), IArg("set", 12))
	tr.EndSample("load", 140)
	tr.StallSpan(1, "replay", 200, 260)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, spans, instants int
	for _, ev := range ct.TraceEvents {
		if ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %q missing pid/tid", ev.Name)
		}
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			spans++
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("span %q missing non-negative dur", ev.Name)
			}
			if ev.Ts == nil {
				t.Fatalf("span %q missing ts", ev.Name)
			}
		case "i":
			instants++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// Cores 0 and 1 both get metadata (process + 2 per lane).
	if wantMeta := 2 * (1 + 2*int(numLanes)); meta != wantMeta {
		t.Fatalf("metadata events = %d, want %d", meta, wantMeta)
	}
	if spans != 3 || instants != 1 {
		t.Fatalf("spans=%d instants=%d, want 3 and 1", spans, instants)
	}
	if !strings.Contains(buf.String(), `"outcome":"miss"`) ||
		!strings.Contains(buf.String(), `"set":12`) {
		t.Fatalf("args not serialized: %s", buf.String())
	}
}

func TestWriteChromeTraceNilAndEmpty(t *testing.T) {
	for name, tr := range map[string]*Tracer{"nil": nil, "empty": NewTracer(16, 1)} {
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var ct chromeTrace
		if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
			t.Fatalf("%s: invalid JSON: %v", name, err)
		}
	}
}

func TestDeltaRowArithmetic(t *testing.T) {
	var prev, cur Snapshot
	prev.Cycle, cur.Cycle = 1000, 3000
	prev.Instructions, cur.Instructions = 10_000, 14_000
	prev.L1DMisses[mem.ClassNonReplay], cur.L1DMisses[mem.ClassNonReplay] = 100, 180
	prev.L1DMisses[mem.ClassReplay], cur.L1DMisses[mem.ClassReplay] = 10, 30
	prev.L1DMisses[mem.ClassTransLeaf], cur.L1DMisses[mem.ClassTransLeaf] = 5, 500 // excluded from demand
	cur.LLCMisses[mem.ClassReplay] = 8
	cur.LLCMisses[mem.ClassTransLeaf] = 4
	prev.STLBAccesses, cur.STLBAccesses = 1000, 2000
	prev.STLBMisses, cur.STLBMisses = 100, 350
	prev.LeafReads, cur.LeafReads = 200, 400
	prev.LeafDRAM, cur.LeafDRAM = 20, 70
	prev.Stalls, cur.Stalls = [NumStallKinds]uint64{1, 2, 3, 4}, [NumStallKinds]uint64{11, 22, 33, 44}
	cur.DRAMRowHits, cur.DRAMRowClosed, cur.DRAMRowMisses = 60, 20, 20

	r := DeltaRow(prev, cur, 7)
	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if r.Index != 7 || r.EndCycle != 3000 || r.Cycles != 2000 || r.Instructions != 4000 {
		t.Fatalf("identity fields wrong: %+v", r)
	}
	approx("IPC", r.IPC, 4000.0/2000.0)
	approx("L1DMPKI", r.L1DMPKI, 1000*float64(80+20)/4000)
	approx("LLCReplayMPKI", r.LLCReplayMPKI, 1000*8.0/4000)
	approx("LLCLeafMPKI", r.LLCLeafMPKI, 1000*4.0/4000)
	approx("STLBMissRate", r.STLBMissRate, 250.0/1000)
	approx("STLBMPKI", r.STLBMPKI, 1000*250.0/4000)
	approx("TransHitRate", r.TransHitRate, (200.0-50.0)/200.0)
	approx("DRAMRowHitRate", r.DRAMRowHitRate, 60.0/100)
	if r.StallTranslation != 10 || r.StallReplay != 20 || r.StallNonReplay != 30 || r.StallOther != 40 {
		t.Fatalf("stall deltas wrong: %+v", r)
	}
}

func TestDeltaRowZeroDenominators(t *testing.T) {
	r := DeltaRow(Snapshot{}, Snapshot{}, 0)
	for name, v := range map[string]float64{
		"IPC": r.IPC, "L1DMPKI": r.L1DMPKI, "STLBMissRate": r.STLBMissRate,
		"TransHitRate": r.TransHitRate, "DRAMRowHitRate": r.DRAMRowHitRate,
	} {
		if v != 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v on empty interval, want 0", name, v)
		}
	}
}

func TestHeartbeatCSV(t *testing.T) {
	var buf bytes.Buffer
	hb := NewHeartbeat(&buf, FormatCSV, 1000)
	hb.Begin(Snapshot{Cycle: 100, Instructions: 50})
	hb.Tick(Snapshot{Cycle: 600, Instructions: 1050})
	hb.Tick(Snapshot{Cycle: 1100, Instructions: 2050})
	if err := hb.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	if lines[0] != CSVHeader {
		t.Fatalf("header = %q", lines[0])
	}
	wantCols := strings.Count(CSVHeader, ",") + 1
	for i, ln := range lines[1:] {
		if got := strings.Count(ln, ",") + 1; got != wantCols {
			t.Fatalf("row %d has %d columns, want %d: %q", i, got, wantCols, ln)
		}
	}
	rows := hb.Rows()
	if len(rows) != 2 || rows[0].Instructions != 1000 || rows[1].Instructions != 1000 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Index != 0 || rows[1].Index != 1 {
		t.Fatalf("row indices = %d,%d", rows[0].Index, rows[1].Index)
	}
}

func TestHeartbeatJSONL(t *testing.T) {
	var buf bytes.Buffer
	hb := NewHeartbeat(&buf, FormatJSONL, 500)
	hb.Begin(Snapshot{})
	hb.Tick(Snapshot{Cycle: 250, Instructions: 500})
	hb.Tick(Snapshot{Cycle: 700, Instructions: 1000})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	for i, ln := range lines {
		var r Row
		if err := json.Unmarshal([]byte(ln), &r); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if r.Index != i || r.Instructions != 500 {
			t.Fatalf("line %d decoded to %+v", i, r)
		}
	}
}

func TestNilHeartbeat(t *testing.T) {
	var hb *Heartbeat
	hb.Begin(Snapshot{})
	if r := hb.Tick(Snapshot{Instructions: 5}); r != (Row{}) {
		t.Fatalf("nil heartbeat produced %+v", r)
	}
	if hb.Rows() != nil || hb.Err() != nil || hb.Every() != 0 {
		t.Fatal("nil heartbeat retained state")
	}
}

func TestProgress(t *testing.T) {
	var p *Progress
	p.SetTotal(10) // nil-safe
	p.Set(3)
	if p.Done() != 0 || p.Total() != 0 {
		t.Fatal("nil progress retained state")
	}
	p = &Progress{}
	p.SetTotal(300_000)
	p.Set(120_000)
	if p.Done() != 120_000 || p.Total() != 300_000 {
		t.Fatalf("progress = %d/%d", p.Done(), p.Total())
	}
}
