package telemetry

import (
	"atcsim/internal/mem"
	"atcsim/internal/metrics"
)

// RegisterMetrics exposes the Health counters on a metrics registry as
// runner_* counter series. The registry reads the same atomics the engine
// bumps — there is no second copy of the counters, so Health and /metrics
// can never disagree (this view also reaches expvar via
// metrics.PublishExpvar, replacing the old ad-hoc expvar publishing).
func (h *Health) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("runner_runs_total", "Simulations by final outcome.",
		func() float64 { return float64(h.Runs.Load()) }, metrics.L("outcome", "ok"))
	reg.CounterFunc("runner_runs_total", "Simulations by final outcome.",
		func() float64 { return float64(h.Failures.Load()) }, metrics.L("outcome", "failed"))
	reg.CounterFunc("runner_retries_total", "Extra attempts spent on transient failures.",
		func() float64 { return float64(h.Retries.Load()) })
	reg.CounterFunc("runner_panics_total", "Failed runs whose final failure was a captured panic.",
		func() float64 { return float64(h.Panics.Load()) })
	reg.CounterFunc("runner_timeouts_total", "Failed runs abandoned at their per-run deadline.",
		func() float64 { return float64(h.Timeouts.Load()) })
	reg.CounterFunc("runner_canceled_total", "Runs refused or abandoned on sweep cancellation.",
		func() float64 { return float64(h.Canceled.Load()) })
	reg.CounterFunc("runner_disk_hits_total", "Results served from the on-disk cache.",
		func() float64 { return float64(h.DiskHits.Load()) })
	reg.CounterFunc("runner_disk_errors_total", "Disk-cache read/write failures (never fatal).",
		func() float64 { return float64(h.DiskErrors.Load()) })
	reg.CounterFunc("runner_quarantined_total", "Corrupt cache entries moved to .bad siblings.",
		func() float64 { return float64(h.Quarantined.Load()) })
}

// SnapshotGauges is the registry-facing view of a live single simulation:
// sim_* gauges fed from cumulative heartbeat Snapshots on the simulator
// goroutine (Hub.OnTick), so a /metrics scrape mid-run sees
// heartbeat-fresh counters without ever touching the per-request path.
type SnapshotGauges struct {
	instructions metrics.Gauge
	cycle        metrics.Gauge
	l1dMisses    metrics.Gauge
	l2Misses     metrics.Gauge
	llcMisses    metrics.Gauge
	stlbAccesses metrics.Gauge
	stlbMisses   metrics.Gauge
	leafReads    metrics.Gauge
	leafDRAM     metrics.Gauge
	stalls       [NumStallKinds]metrics.Gauge
	dramReads    metrics.Gauge
	dramRowHits  metrics.Gauge
}

// stallKindNames label the sim_stall_cycles gauge; mirrors internal/cpu's
// StallClass order (asserted in sync by the system layer's tests).
var stallKindNames = [NumStallKinds]string{"translation", "replay", "non-replay", "other"}

// NewSnapshotGauges registers the sim_* gauge set on a registry.
func NewSnapshotGauges(reg *metrics.Registry) *SnapshotGauges {
	g := &SnapshotGauges{
		instructions: reg.Gauge("sim_instructions", "Measured instructions stepped so far (live run)."),
		cycle:        reg.Gauge("sim_cycle", "Max core cycle since measurement start (live run)."),
		l1dMisses:    reg.Gauge("sim_cache_demand_misses", "Demand misses so far (live run).", metrics.L("level", "l1d")),
		l2Misses:     reg.Gauge("sim_cache_demand_misses", "Demand misses so far (live run).", metrics.L("level", "l2")),
		llcMisses:    reg.Gauge("sim_cache_demand_misses", "Demand misses so far (live run).", metrics.L("level", "llc")),
		stlbAccesses: reg.Gauge("sim_stlb_accesses", "STLB accesses so far (live run)."),
		stlbMisses:   reg.Gauge("sim_stlb_misses", "STLB misses so far (live run)."),
		leafReads:    reg.Gauge("sim_leaf_pte_reads", "Leaf PTE reads so far (live run)."),
		leafDRAM:     reg.Gauge("sim_leaf_pte_dram", "Leaf PTE reads serviced by DRAM (live run)."),
		dramReads:    reg.Gauge("sim_dram_reads", "DRAM reads so far (live run)."),
		dramRowHits:  reg.Gauge("sim_dram_row_hits", "DRAM row-buffer hits so far (live run)."),
	}
	for k := 0; k < NumStallKinds; k++ {
		g.stalls[k] = reg.Gauge("sim_stall_cycles",
			"ROB-head stall cycles by class (live run).", metrics.L("class", stallKindNames[k]))
	}
	return g
}

// Publish folds one cumulative snapshot into the gauges. Nil-safe; called
// from the simulator goroutine at heartbeat cadence.
func (g *SnapshotGauges) Publish(sn Snapshot) {
	if g == nil {
		return
	}
	demand := func(m [mem.NumClasses]uint64) uint64 {
		return m[mem.ClassNonReplay] + m[mem.ClassReplay]
	}
	g.instructions.SetUint(sn.Instructions)
	g.cycle.Set(float64(sn.Cycle))
	g.l1dMisses.SetUint(demand(sn.L1DMisses))
	g.l2Misses.SetUint(demand(sn.L2Misses))
	g.llcMisses.SetUint(demand(sn.LLCMisses))
	g.stlbAccesses.SetUint(sn.STLBAccesses)
	g.stlbMisses.SetUint(sn.STLBMisses)
	g.leafReads.SetUint(sn.LeafReads)
	g.leafDRAM.SetUint(sn.LeafDRAM)
	for k := 0; k < NumStallKinds; k++ {
		g.stalls[k].SetUint(sn.Stalls[k])
	}
	g.dramReads.SetUint(sn.DRAMReads)
	g.dramRowHits.SetUint(sn.DRAMRowHits)
}
