package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"atcsim/internal/mem"
)

// NumStallKinds is the number of ROB-head stall classes mirrored from
// internal/cpu (which imports this package, so the constant lives here; the
// system layer asserts the two stay in sync).
const NumStallKinds = 4

// Snapshot is a cumulative view of the machine's counters at one point of
// the measured phase. The heartbeat engine differences consecutive snapshots
// to produce interval rows, so every field must be monotonic.
type Snapshot struct {
	Cycle        int64 // max core cycle since measurement start
	Instructions uint64

	L1DMisses [mem.NumClasses]uint64
	L2Misses  [mem.NumClasses]uint64
	LLCMisses [mem.NumClasses]uint64

	STLBAccesses uint64
	STLBMisses   uint64

	// LeafReads / LeafDRAM track leaf-PTE service (translation hit rate).
	LeafReads uint64
	LeafDRAM  uint64

	Stalls [NumStallKinds]uint64

	DRAMReads     uint64
	DRAMRowHits   uint64
	DRAMRowClosed uint64
	DRAMRowMisses uint64
}

// Row is one derived heartbeat interval.
type Row struct {
	Index        int     `json:"interval"`
	EndCycle     int64   `json:"end_cycle"`
	Cycles       int64   `json:"cycles"`
	Instructions uint64  `json:"instructions"`
	IPC          float64 `json:"ipc"`

	L1DMPKI       float64 `json:"l1d_mpki"`
	L2MPKI        float64 `json:"l2_mpki"`
	LLCMPKI       float64 `json:"llc_mpki"`
	LLCReplayMPKI float64 `json:"llc_replay_mpki"`
	LLCLeafMPKI   float64 `json:"llc_leaf_mpki"`

	STLBMissRate float64 `json:"stlb_miss_rate"`
	STLBMPKI     float64 `json:"stlb_mpki"`
	TransHitRate float64 `json:"trans_hit_rate"`

	StallTranslation uint64 `json:"stall_translation"`
	StallReplay      uint64 `json:"stall_replay"`
	StallNonReplay   uint64 `json:"stall_nonreplay"`
	StallOther       uint64 `json:"stall_other"`

	DRAMRowHitRate float64 `json:"dram_row_hit_rate"`
}

func mpki(misses, insts uint64) float64 {
	if insts == 0 {
		return 0
	}
	return 1000 * float64(misses) / float64(insts)
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// DeltaRow derives the interval row between prev and cur (cur - prev).
func DeltaRow(prev, cur Snapshot, index int) Row {
	insts := cur.Instructions - prev.Instructions
	cycles := cur.Cycle - prev.Cycle
	demand := func(m [mem.NumClasses]uint64, p [mem.NumClasses]uint64) uint64 {
		return (m[mem.ClassNonReplay] - p[mem.ClassNonReplay]) +
			(m[mem.ClassReplay] - p[mem.ClassReplay])
	}
	stlbAcc := cur.STLBAccesses - prev.STLBAccesses
	stlbMiss := cur.STLBMisses - prev.STLBMisses
	leaf := cur.LeafReads - prev.LeafReads
	leafDRAM := cur.LeafDRAM - prev.LeafDRAM
	rowOps := (cur.DRAMRowHits - prev.DRAMRowHits) +
		(cur.DRAMRowClosed - prev.DRAMRowClosed) +
		(cur.DRAMRowMisses - prev.DRAMRowMisses)

	r := Row{
		Index:        index,
		EndCycle:     cur.Cycle,
		Cycles:       cycles,
		Instructions: insts,

		L1DMPKI:       mpki(demand(cur.L1DMisses, prev.L1DMisses), insts),
		L2MPKI:        mpki(demand(cur.L2Misses, prev.L2Misses), insts),
		LLCMPKI:       mpki(demand(cur.LLCMisses, prev.LLCMisses), insts),
		LLCReplayMPKI: mpki(cur.LLCMisses[mem.ClassReplay]-prev.LLCMisses[mem.ClassReplay], insts),
		LLCLeafMPKI:   mpki(cur.LLCMisses[mem.ClassTransLeaf]-prev.LLCMisses[mem.ClassTransLeaf], insts),

		STLBMissRate: ratio(stlbMiss, stlbAcc),
		STLBMPKI:     mpki(stlbMiss, insts),
		TransHitRate: ratio(leaf-leafDRAM, leaf),

		StallTranslation: cur.Stalls[0] - prev.Stalls[0],
		StallReplay:      cur.Stalls[1] - prev.Stalls[1],
		StallNonReplay:   cur.Stalls[2] - prev.Stalls[2],
		StallOther:       cur.Stalls[3] - prev.Stalls[3],

		DRAMRowHitRate: ratio(cur.DRAMRowHits-prev.DRAMRowHits, rowOps),
	}
	if cycles > 0 {
		r.IPC = float64(insts) / float64(cycles)
	}
	return r
}

// Format selects the heartbeat stream encoding.
type Format int

// Heartbeat stream encodings.
const (
	FormatCSV Format = iota
	FormatJSONL
)

// CSVHeader is the column order of FormatCSV rows.
const CSVHeader = "interval,end_cycle,cycles,instructions,ipc," +
	"l1d_mpki,l2_mpki,llc_mpki,llc_replay_mpki,llc_leaf_mpki," +
	"stlb_miss_rate,stlb_mpki,trans_hit_rate," +
	"stall_translation,stall_replay,stall_nonreplay,stall_other," +
	"dram_row_hit_rate"

// Heartbeat turns cumulative snapshots taken every Every() instructions into
// interval rows, streaming them to an optional writer and retaining them for
// programmatic access. Like the tracer it is a pure observer.
type Heartbeat struct {
	every  int
	w      io.Writer
	format Format
	prev   Snapshot
	rows   []Row
	err    error
}

// NewHeartbeat creates a heartbeat engine snapshotting every `every`
// instructions (non-positive falls back to 100_000). w may be nil to only
// retain rows in memory.
func NewHeartbeat(w io.Writer, format Format, every int) *Heartbeat {
	if every <= 0 {
		every = 100_000
	}
	return &Heartbeat{every: every, w: w, format: format}
}

// Every returns the snapshot period in instructions.
func (h *Heartbeat) Every() int {
	if h == nil {
		return 0
	}
	return h.every
}

// Begin records the measurement-start baseline and emits the CSV header.
func (h *Heartbeat) Begin(s Snapshot) {
	if h == nil {
		return
	}
	h.prev = s
	if h.w != nil && h.format == FormatCSV {
		_, err := fmt.Fprintln(h.w, CSVHeader)
		h.setErr(err)
	}
}

// Tick ingests the next cumulative snapshot, derives the interval row,
// streams and retains it. Ticks before Begin difference against the zero
// snapshot.
func (h *Heartbeat) Tick(s Snapshot) Row {
	if h == nil {
		return Row{}
	}
	row := DeltaRow(h.prev, s, len(h.rows))
	h.prev = s
	h.rows = append(h.rows, row)
	h.write(row)
	return row
}

func (h *Heartbeat) write(r Row) {
	if h.w == nil {
		return
	}
	switch h.format {
	case FormatJSONL:
		b, err := json.Marshal(r)
		if err == nil {
			b = append(b, '\n')
			_, err = h.w.Write(b)
		}
		h.setErr(err)
	default:
		_, err := fmt.Fprintf(h.w,
			"%d,%d,%d,%d,%.6f,%.4f,%.4f,%.4f,%.4f,%.4f,%.6f,%.4f,%.6f,%d,%d,%d,%d,%.6f\n",
			r.Index, r.EndCycle, r.Cycles, r.Instructions, r.IPC,
			r.L1DMPKI, r.L2MPKI, r.LLCMPKI, r.LLCReplayMPKI, r.LLCLeafMPKI,
			r.STLBMissRate, r.STLBMPKI, r.TransHitRate,
			r.StallTranslation, r.StallReplay, r.StallNonReplay, r.StallOther,
			r.DRAMRowHitRate)
		h.setErr(err)
	}
}

func (h *Heartbeat) setErr(err error) {
	if h.err == nil && err != nil {
		h.err = err
	}
}

// Rows returns every interval row produced so far.
func (h *Heartbeat) Rows() []Row {
	if h == nil {
		return nil
	}
	return h.rows
}

// Err returns the first stream-write error, if any.
func (h *Heartbeat) Err() error {
	if h == nil {
		return nil
	}
	return h.err
}
