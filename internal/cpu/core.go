// Package cpu models the out-of-order core's retirement behaviour: a
// reorder buffer with bounded dispatch and retire bandwidth, and — the
// measurement the paper is built on — attribution of every cycle the ROB
// head is blocked to the class of the blocking instruction, with the stall
// of an STLB-missing load split into its address-translation part and its
// replay-load part (Fig. 1 methodology).
//
// The model is single-pass: instruction i dispatches at
// max(nextDispatchSlot, retireCycle(i-ROBSize)); loads start their memory
// access at dispatch; retirement advances a virtual clock RetireWidth-wide
// in order, jumping forward when the head is incomplete.
package cpu

import (
	"fmt"

	"atcsim/internal/stats"
	"atcsim/internal/telemetry"
)

// The telemetry snapshot mirrors the stall-class array without importing
// this package; keep the two sizes in lockstep.
var _ = [telemetry.NumStallKinds]uint64(Stats{}.StallCycles)

// stallSpanMin is the shortest ROB-head stall worth a trace span; shorter
// stalls are ubiquitous and would flood the ring buffer.
const stallSpanMin = 16

// StallClass attributes ROB-head stall cycles.
type StallClass uint8

// Stall classes, matching the paper's taxonomy.
const (
	// StallTranslation: head is an STLB-missing load still waiting for its
	// page-table walk.
	StallTranslation StallClass = iota
	// StallReplay: head is an STLB-missing load whose translation is done
	// but whose (replay) data access is still outstanding.
	StallReplay
	// StallNonReplay: head is a load that hit the DTLB/STLB.
	StallNonReplay
	// StallOther: anything else (stores, branches, ALU, ifetch).
	StallOther
	// NumStallClasses is the number of stall classes.
	NumStallClasses
)

// String names the class.
func (s StallClass) String() string {
	switch s {
	case StallTranslation:
		return "translation"
	case StallReplay:
		return "replay"
	case StallNonReplay:
		return "non-replay"
	case StallOther:
		return "other"
	}
	return "unknown"
}

// Config sizes the core (Table I defaults via DefaultConfig).
type Config struct {
	ROBSize           int
	DispatchWidth     int
	RetireWidth       int
	MispredictPenalty int64
	ExecLatency       int64
}

// DefaultConfig matches the paper's simulated core.
func DefaultConfig() Config {
	return Config{
		ROBSize:           352,
		DispatchWidth:     6,
		RetireWidth:       4,
		MispredictPenalty: 15,
		ExecLatency:       1,
	}
}

// Entry is one in-flight instruction from the retirement model's view.
type Entry struct {
	// Complete is the cycle the instruction's result is ready.
	Complete int64
	// IsLoad marks demand loads.
	IsLoad bool
	// STLBMiss marks loads whose translation walked the page table.
	STLBMiss bool
	// TransDone is the cycle the translation finished (valid iff STLBMiss).
	TransDone int64
}

// Stats aggregates retirement activity.
type Stats struct {
	Instructions uint64
	// StallCycles[c] is the total cycles the ROB head was blocked by class c.
	StallCycles [NumStallClasses]uint64
	// Per-event stall histograms (only stalling events are recorded): the
	// translation and replay parts of STLB-missing loads, and the stall of
	// non-replay loads — the three series of Fig. 1.
	TransStall     *stats.Histogram
	ReplayStall    *stats.Histogram
	NonReplayStall *stats.Histogram
	Branches       uint64
	Mispredicts    uint64
}

func newStats() Stats {
	bounds := []uint64{10, 25, 50, 100, 200, 400, 800}
	return Stats{
		TransStall:     stats.NewHistogram(bounds...),
		ReplayStall:    stats.NewHistogram(bounds...),
		NonReplayStall: stats.NewHistogram(bounds...),
	}
}

// Core is the retirement-model state of one hardware thread.
type Core struct {
	cfg Config

	rob   []Entry
	head  int
	tail  int
	count int

	dispatchCycle  int64
	dispatchInSlot int
	retireCycle    int64
	retireInSlot   int

	st Stats

	tr     *telemetry.Tracer
	trCore int
}

// New creates a core; zero-valued config fields fall back to defaults.
func New(cfg Config) (*Core, error) {
	def := DefaultConfig()
	if cfg.ROBSize == 0 {
		cfg.ROBSize = def.ROBSize
	}
	if cfg.DispatchWidth == 0 {
		cfg.DispatchWidth = def.DispatchWidth
	}
	if cfg.RetireWidth == 0 {
		cfg.RetireWidth = def.RetireWidth
	}
	if cfg.MispredictPenalty == 0 {
		cfg.MispredictPenalty = def.MispredictPenalty
	}
	if cfg.ExecLatency == 0 {
		cfg.ExecLatency = def.ExecLatency
	}
	if cfg.ROBSize < 1 || cfg.DispatchWidth < 1 || cfg.RetireWidth < 1 {
		return nil, fmt.Errorf("cpu: invalid config %+v", cfg)
	}
	return &Core{cfg: cfg, rob: make([]Entry, cfg.ROBSize), st: newStats()}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Core {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the effective configuration.
func (c *Core) Config() Config { return c.cfg }

// SetTracer attaches a request-lifecycle tracer (nil disables). The core
// emits unsampled ROB-head stall spans of at least stallSpanMin cycles on
// the given core's stall lane.
func (c *Core) SetTracer(t *telemetry.Tracer, core int) {
	c.tr = t
	c.trCore = core
}

// Stats returns a snapshot of the counters (histograms are shared).
func (c *Core) Stats() Stats { return c.st }

// ResetStats zeroes counters at the end of warmup without disturbing
// pipeline state.
func (c *Core) ResetStats() { c.st = newStats() }

// Cycle returns the current retirement clock — the execution time so far.
func (c *Core) Cycle() int64 {
	if c.retireCycle > c.dispatchCycle {
		return c.retireCycle
	}
	return c.dispatchCycle
}

// ensureSpace frees a ROB slot when full. Dispatch of younger instructions
// legitimately runs behind the retirement clock while the head stalls
// (that is the out-of-order window working); only when the ROB fills does
// the frontend couple back to retirement.
func (c *Core) ensureSpace() {
	if c.count < c.cfg.ROBSize {
		return
	}
	for c.count == c.cfg.ROBSize {
		c.retireOne()
	}
	if c.dispatchCycle < c.retireCycle {
		c.dispatchCycle = c.retireCycle
		c.dispatchInSlot = 0
	}
}

// NextDispatch returns the cycle at which the next instruction dispatches,
// retiring instructions as needed to free a ROB slot. Memory accesses for
// the instruction should be issued at this cycle.
func (c *Core) NextDispatch() int64 {
	c.ensureSpace()
	return c.dispatchCycle
}

// Dispatch inserts the instruction into the ROB and consumes frontend
// bandwidth. Callers must have obtained the dispatch cycle via NextDispatch
// and set e.Complete accordingly.
func (c *Core) Dispatch(e Entry) {
	c.ensureSpace()
	c.rob[c.tail] = e
	c.tail = (c.tail + 1) % c.cfg.ROBSize
	c.count++
	c.st.Instructions++

	c.dispatchInSlot++
	if c.dispatchInSlot >= c.cfg.DispatchWidth {
		c.dispatchInSlot = 0
		c.dispatchCycle++
	}
}

// Mispredict charges a branch misprediction: the frontend refills only
// after the branch resolves plus the penalty.
func (c *Core) Mispredict(resolve int64) {
	c.st.Mispredicts++
	if next := resolve + c.cfg.MispredictPenalty; next > c.dispatchCycle {
		c.dispatchCycle = next
		c.dispatchInSlot = 0
	}
}

// CountBranch records a committed branch.
func (c *Core) CountBranch() { c.st.Branches++ }

// FrontendStall blocks dispatch until the given cycle (instruction-fetch
// miss), without counting a misprediction.
func (c *Core) FrontendStall(until int64) {
	if until > c.dispatchCycle {
		c.dispatchCycle = until
		c.dispatchInSlot = 0
	}
}

// Drain retires everything still in flight and returns the final cycle.
func (c *Core) Drain() int64 {
	for c.count > 0 {
		c.retireOne()
	}
	return c.Cycle()
}

// retireOne retires the ROB head, advancing the retirement clock and
// attributing any head-blocked cycles.
func (c *Core) retireOne() {
	e := &c.rob[c.head]

	if e.Complete > c.retireCycle {
		// The head blocks retirement: attribute the gap.
		stall := e.Complete - c.retireCycle
		switch {
		case e.IsLoad && e.STLBMiss:
			// Split at the translation-completion point.
			transEnd := e.TransDone
			if transEnd > e.Complete {
				transEnd = e.Complete
			}
			transPart := transEnd - c.retireCycle
			if transPart < 0 {
				transPart = 0
			}
			replayPart := stall - transPart
			c.st.StallCycles[StallTranslation] += uint64(transPart)
			c.st.StallCycles[StallReplay] += uint64(replayPart)
			if transPart > 0 {
				c.st.TransStall.Add(uint64(transPart))
			}
			if replayPart > 0 {
				c.st.ReplayStall.Add(uint64(replayPart))
			}
			if c.tr.Enabled() {
				if transPart >= stallSpanMin {
					c.tr.StallSpan(c.trCore, StallTranslation.String(), c.retireCycle, c.retireCycle+transPart)
				}
				if replayPart >= stallSpanMin {
					c.tr.StallSpan(c.trCore, StallReplay.String(), e.Complete-replayPart, e.Complete)
				}
			}
		case e.IsLoad:
			c.st.StallCycles[StallNonReplay] += uint64(stall)
			c.st.NonReplayStall.Add(uint64(stall))
			if c.tr.Enabled() && stall >= stallSpanMin {
				c.tr.StallSpan(c.trCore, StallNonReplay.String(), c.retireCycle, e.Complete)
			}
		default:
			c.st.StallCycles[StallOther] += uint64(stall)
			if c.tr.Enabled() && stall >= stallSpanMin {
				c.tr.StallSpan(c.trCore, StallOther.String(), c.retireCycle, e.Complete)
			}
		}
		c.retireCycle = e.Complete
		c.retireInSlot = 0
	}

	c.head = (c.head + 1) % c.cfg.ROBSize
	c.count--
	c.retireInSlot++
	if c.retireInSlot >= c.cfg.RetireWidth {
		c.retireInSlot = 0
		c.retireCycle++
	}
}

// TotalStalls sums all attributed head-stall cycles.
func (s *Stats) TotalStalls() uint64 {
	var t uint64
	for _, v := range s.StallCycles {
		t += v
	}
	return t
}

// IPC computes instructions per cycle given the final cycle count.
func IPC(instructions uint64, cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(instructions) / float64(cycles)
}
