package cpu

import (
	"testing"
	"testing/quick"
)

func TestConfigDefaults(t *testing.T) {
	c := MustNew(Config{})
	cfg := c.Config()
	if cfg.ROBSize != 352 || cfg.DispatchWidth != 6 || cfg.RetireWidth != 4 {
		t.Errorf("defaults = %+v", cfg)
	}
	if _, err := New(Config{ROBSize: -1}); err == nil {
		t.Error("negative ROB accepted")
	}
}

func TestDispatchBandwidth(t *testing.T) {
	c := MustNew(Config{})
	// Six instructions dispatch in cycle 0, the seventh in cycle 1.
	for i := 0; i < 6; i++ {
		if d := c.NextDispatch(); d != 0 {
			t.Fatalf("inst %d dispatch = %d", i, d)
		}
		c.Dispatch(Entry{Complete: 1})
	}
	if d := c.NextDispatch(); d != 1 {
		t.Errorf("7th dispatch = %d, want 1", d)
	}
}

func TestRetireBandwidthBoundsIPC(t *testing.T) {
	c := MustNew(Config{})
	// 4000 single-cycle instructions: retire width 4 → at least 1000 cycles.
	for i := 0; i < 4000; i++ {
		d := c.NextDispatch()
		c.Dispatch(Entry{Complete: d + 1})
	}
	cycles := c.Drain()
	if cycles < 1000 {
		t.Errorf("cycles = %d, want >= 1000 (retire width 4)", cycles)
	}
	ipc := IPC(c.Stats().Instructions, cycles)
	if ipc > 4.01 {
		t.Errorf("IPC = %f exceeds retire width", ipc)
	}
	if ipc < 3.0 {
		t.Errorf("IPC = %f suspiciously low for ideal stream", ipc)
	}
}

func TestROBCapacityCouplesDispatchToRetire(t *testing.T) {
	c := MustNew(Config{ROBSize: 8, DispatchWidth: 8, RetireWidth: 8})
	// A head load completing at cycle 1000 blocks retirement. After the ROB
	// fills (8 entries), dispatch must wait for the head to retire.
	d0 := c.NextDispatch()
	c.Dispatch(Entry{Complete: 1000, IsLoad: true})
	for i := 0; i < 7; i++ {
		c.Dispatch(Entry{Complete: c.NextDispatch() + 1})
	}
	d := c.NextDispatch()
	if d < 1000 {
		t.Errorf("dispatch after full ROB = %d, want >= 1000", d)
	}
	if d0 != 0 {
		t.Errorf("first dispatch = %d", d0)
	}
}

func TestStallAttributionNonReplay(t *testing.T) {
	c := MustNew(Config{})
	d := c.NextDispatch()
	c.Dispatch(Entry{Complete: d + 200, IsLoad: true})
	c.Drain()
	st := c.Stats()
	if st.StallCycles[StallNonReplay] == 0 {
		t.Fatal("no non-replay stall recorded")
	}
	if st.StallCycles[StallTranslation] != 0 || st.StallCycles[StallReplay] != 0 {
		t.Error("misattributed stall classes")
	}
	if st.NonReplayStall.Total() != 1 {
		t.Errorf("per-event samples = %d", st.NonReplayStall.Total())
	}
	// The stall is the completion minus the head-ready cycle (0).
	if got := st.NonReplayStall.Max(); got != 200 {
		t.Errorf("event stall = %d, want 200", got)
	}
}

func TestStallSplitTranslationReplay(t *testing.T) {
	c := MustNew(Config{})
	d := c.NextDispatch()
	// Translation finishes at d+50, data at d+250: 50 translation cycles
	// then 200 replay cycles at the ROB head.
	c.Dispatch(Entry{Complete: d + 250, IsLoad: true, STLBMiss: true, TransDone: d + 50})
	c.Drain()
	st := c.Stats()
	if st.StallCycles[StallTranslation] != 50 {
		t.Errorf("translation stall = %d, want 50", st.StallCycles[StallTranslation])
	}
	if st.StallCycles[StallReplay] != 200 {
		t.Errorf("replay stall = %d, want 200", st.StallCycles[StallReplay])
	}
	if st.TransStall.Max() != 50 || st.ReplayStall.Max() != 200 {
		t.Errorf("event histograms: trans=%d replay=%d", st.TransStall.Max(), st.ReplayStall.Max())
	}
}

func TestStallSplitWhenHeadArrivesAfterTranslation(t *testing.T) {
	c := MustNew(Config{ROBSize: 4, DispatchWidth: 4, RetireWidth: 4})
	// Fill with slow instructions so the STLB-missing load reaches the head
	// only after its translation already finished: all the observed stall
	// is replay.
	d := c.NextDispatch()
	c.Dispatch(Entry{Complete: d + 100})
	c.Dispatch(Entry{Complete: d + 100})
	c.Dispatch(Entry{Complete: d + 100})
	c.Dispatch(Entry{Complete: d + 300, IsLoad: true, STLBMiss: true, TransDone: d + 20})
	c.Drain()
	st := c.Stats()
	if st.StallCycles[StallTranslation] != 0 {
		t.Errorf("translation stall = %d, want 0 (hidden by OoO)", st.StallCycles[StallTranslation])
	}
	if st.StallCycles[StallReplay] == 0 {
		t.Error("replay stall missing")
	}
}

func TestMispredictDelaysDispatch(t *testing.T) {
	c := MustNew(Config{})
	d := c.NextDispatch()
	c.Dispatch(Entry{Complete: d + 1})
	c.CountBranch()
	c.Mispredict(d + 1)
	if got := c.NextDispatch(); got != d+1+15 {
		t.Errorf("post-mispredict dispatch = %d, want %d", got, d+16)
	}
	st := c.Stats()
	if st.Branches != 1 || st.Mispredicts != 1 {
		t.Errorf("branch stats = %+v", st)
	}
}

func TestDrainEmpty(t *testing.T) {
	c := MustNew(Config{})
	if c.Drain() != 0 {
		t.Error("empty drain nonzero")
	}
}

func TestResetStats(t *testing.T) {
	c := MustNew(Config{})
	c.Dispatch(Entry{Complete: 100, IsLoad: true})
	c.Drain()
	c.ResetStats()
	st := c.Stats()
	if st.Instructions != 0 || st.TotalStalls() != 0 || st.NonReplayStall.Total() != 0 {
		t.Error("reset incomplete")
	}
}

func TestCyclesMonotone(t *testing.T) {
	f := func(lat []uint8) bool {
		c := MustNew(Config{ROBSize: 16})
		prev := int64(0)
		for _, l := range lat {
			d := c.NextDispatch()
			if d < prev {
				return false
			}
			c.Dispatch(Entry{Complete: d + int64(l%50) + 1, IsLoad: l%3 == 0})
			prev = d
		}
		return c.Drain() >= prev
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPerceptronLearnsLoopBranch(t *testing.T) {
	p := NewPerceptron()
	// 9-taken-1-not pattern: a perceptron with history should do well.
	correct, total := 0, 0
	for i := 0; i < 5000; i++ {
		taken := i%10 != 9
		if p.Predict(0x400100) == taken {
			correct++
		}
		p.Update(0x400100, taken)
		total++
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("loop-branch accuracy = %.3f, want > 0.9", acc)
	}
}

func TestPerceptronBiasedBranch(t *testing.T) {
	p := NewPerceptron()
	for i := 0; i < 200; i++ {
		p.Update(0x400200, true)
	}
	if !p.Predict(0x400200) {
		t.Error("always-taken branch predicted not-taken")
	}
}

func TestPerceptronUpdateReportsCorrectness(t *testing.T) {
	p := NewPerceptron()
	// Train heavily taken, then check Update's return on a taken outcome.
	for i := 0; i < 100; i++ {
		p.Update(0x400300, true)
	}
	if !p.Update(0x400300, true) {
		t.Error("Update reported mispredict on a learned branch")
	}
}

func TestFrontendStall(t *testing.T) {
	c := MustNew(Config{})
	d := c.NextDispatch()
	c.FrontendStall(d + 40)
	if got := c.NextDispatch(); got != d+40 {
		t.Errorf("dispatch after frontend stall = %d, want %d", got, d+40)
	}
	// A stall into the past is ignored.
	c.FrontendStall(d)
	if got := c.NextDispatch(); got != d+40 {
		t.Errorf("stale frontend stall moved dispatch to %d", got)
	}
	// Unlike Mispredict, it does not count a misprediction.
	if c.Stats().Mispredicts != 0 {
		t.Error("frontend stall counted as mispredict")
	}
}

func TestIPCEdgeCases(t *testing.T) {
	if IPC(100, 0) != 0 || IPC(100, -5) != 0 {
		t.Error("IPC with non-positive cycles should be 0")
	}
	if IPC(100, 50) != 2 {
		t.Error("IPC arithmetic wrong")
	}
}
