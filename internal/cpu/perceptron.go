package cpu

// Hashed perceptron branch predictor (Tarjan & Skadron, TACO'05 — the
// paper's Table I predictor): several weight tables indexed by hashes of
// the PC and disjoint global-history segments; the prediction is the sign
// of the summed weights, trained on mispredictions or low-confidence
// correct predictions.

const (
	percTables    = 4
	percTableBits = 12
	percWeightMax = 63 // 7-bit saturating weights
	percHistBits  = 32
	percTheta     = 18 // training threshold
)

// Perceptron is a hashed perceptron predictor for one hardware thread.
type Perceptron struct {
	weights [percTables][1 << percTableBits]int8
	history uint64
}

// NewPerceptron returns an initialized predictor.
func NewPerceptron() *Perceptron { return &Perceptron{} }

func (p *Perceptron) indices(ip uint64) [percTables]uint32 {
	var idx [percTables]uint32
	segBits := percHistBits / percTables
	for t := 0; t < percTables; t++ {
		seg := (p.history >> (t * segBits)) & (1<<segBits - 1)
		h := ip ^ seg<<1 ^ uint64(t)*0x9E3779B97F4A7C15
		h *= 0xFF51AFD7ED558CCD
		idx[t] = uint32(h>>(64-percTableBits)) & (1<<percTableBits - 1)
	}
	return idx
}

// Predict returns the predicted direction for the branch at ip.
func (p *Perceptron) Predict(ip uint64) bool {
	sum := 0
	for t, i := range p.indices(ip) {
		sum += int(p.weights[t][i])
	}
	return sum >= 0
}

// Update trains the predictor with the actual outcome and shifts the
// global history. It returns whether the prediction was correct.
func (p *Perceptron) Update(ip uint64, taken bool) bool {
	idx := p.indices(ip)
	sum := 0
	for t, i := range idx {
		sum += int(p.weights[t][i])
	}
	pred := sum >= 0
	correct := pred == taken

	if !correct || abs(sum) <= percTheta {
		for t, i := range idx {
			w := p.weights[t][i]
			if taken && w < percWeightMax {
				w++
			} else if !taken && w > -percWeightMax {
				w--
			}
			p.weights[t][i] = w
		}
	}

	p.history <<= 1
	if taken {
		p.history |= 1
	}
	return correct
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
