// Package benchmarks hosts cross-package micro-benchmarks for the
// simulator's hot paths: single cache accesses, DRAM reads and page walks.
// They exist to catch performance regressions in the engine itself —
// simulated instructions per second is the usability metric for a
// trace-driven simulator.
package benchmarks
