package benchmarks

import (
	"testing"

	"atcsim/internal/mem"
	"atcsim/internal/system"
	"atcsim/internal/telemetry"
	"atcsim/internal/workloads"
)

// benchSim runs the full simulator with an optional telemetry hub. The
// off/on pair guards the hot path: with hub == nil every hook must reduce to
// a nil check, so the "Off" variant must stay at the seed's throughput and
// allocation profile.
func benchSim(b *testing.B, hub func() *telemetry.Hub) {
	b.Helper()
	s, err := workloads.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	tr := s.Build(60_000, 1)
	cfg := system.DefaultConfig()
	cfg.Instructions = 50_000
	cfg.Warmup = 10_000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hub != nil {
			cfg.Telemetry = hub()
		}
		if _, err := system.Run(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.Instructions), "insts/op")
}

// BenchmarkSimTelemetryOff is the guarded baseline: telemetry compiled in
// but not attached.
func BenchmarkSimTelemetryOff(b *testing.B) { benchSim(b, nil) }

// BenchmarkSimTelemetryOn measures the cost of the full observability stack
// (tracer at the default sampling rate, heartbeat, progress counters).
func BenchmarkSimTelemetryOn(b *testing.B) {
	benchSim(b, func() *telemetry.Hub {
		return &telemetry.Hub{
			Tracer:    telemetry.NewTracer(telemetry.DefaultBufferEvents, telemetry.DefaultSampleEvery),
			Heartbeat: telemetry.NewHeartbeat(nil, telemetry.FormatCSV, 10_000),
			Progress:  &telemetry.Progress{},
		}
	})
}

// BenchmarkCacheAccessHitTracerNil measures the per-access cost of the
// telemetry guard itself on the hottest path (an L1 hit) with no tracer
// attached — this is the branch every access pays forever.
func BenchmarkCacheAccessHitTracerNil(b *testing.B) {
	l1 := buildHierarchy(b, "ship")
	l1.SetTracer(nil)
	req := &mem.Request{Addr: 0x1000, Kind: mem.Load, IP: 1}
	l1.Access(req, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l1.Access(req, int64(i)*10+100)
	}
}

// BenchmarkCacheAccessHitTracerIdle attaches a tracer that never has an
// active sample window: the guard is a pointer load plus a bool check.
func BenchmarkCacheAccessHitTracerIdle(b *testing.B) {
	l1 := buildHierarchy(b, "ship")
	l1.SetTracer(telemetry.NewTracer(1<<10, 1<<30))
	req := &mem.Request{Addr: 0x1000, Kind: mem.Load, IP: 1}
	l1.Access(req, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l1.Access(req, int64(i)*10+100)
	}
}
