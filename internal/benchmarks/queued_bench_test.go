package benchmarks

import (
	"testing"

	"atcsim/internal/cache"
	"atcsim/internal/dram"
	"atcsim/internal/mem"
)

// buildQueuedHierarchy assembles the same three-level hierarchy as
// buildHierarchy with a cache.Queued wrapper interposed at every level, the
// way internal/system wires the "queued" timing engine: each level's lower
// pointer is the next level's wrapper, so fills and writebacks flow through
// the bounded deques.
func buildQueuedHierarchy(b testing.TB) *cache.Queued {
	b.Helper()
	ch := dram.NewController(dram.DefaultConfig())
	llc, err := cache.New(cache.Config{
		Name: "LLC", Level: mem.LvlLLC, SizeBytes: 2 << 20, Ways: 16,
		Latency: 20, Policy: "ship",
	}, cache.DRAMAdapter{Read: ch.Read, Write: ch.Write})
	if err != nil {
		b.Fatal(err)
	}
	qllc := cache.NewQueued(llc, cache.DefaultQueueConfig(mem.LvlLLC))
	l2, err := cache.New(cache.Config{
		Name: "L2", Level: mem.LvlL2, SizeBytes: 512 << 10, Ways: 8,
		Latency: 10, Policy: "drrip",
	}, qllc)
	if err != nil {
		b.Fatal(err)
	}
	ql2 := cache.NewQueued(l2, cache.DefaultQueueConfig(mem.LvlL2))
	l1, err := cache.New(cache.Config{
		Name: "L1D", Level: mem.LvlL1D, SizeBytes: 48 << 10, Ways: 12,
		Latency: 5, Policy: "lru",
	}, ql2)
	if err != nil {
		b.Fatal(err)
	}
	return cache.NewQueued(l1, cache.DefaultQueueConfig(mem.LvlL1D))
}

// BenchmarkQueuedAccessHit measures the steady-state L1 hit through the
// queued engine: catch-up, write-queue scan, read-queue push and the
// per-cycle operate steps until the hit retires.
func BenchmarkQueuedAccessHit(b *testing.B) {
	q := buildQueuedHierarchy(b)
	req := &mem.Request{Addr: 0x1000, Kind: mem.Load, IP: 1}
	q.Access(req, 0)
	q.Drain()
	b.ResetTimer()
	cycle := int64(100)
	for i := 0; i < b.N; i++ {
		q.Access(req, cycle)
		cycle += 10
	}
}

// BenchmarkQueuedAccessMissStream measures the streaming-miss path: every
// access misses all three levels, books DRAM and carries fills (and the
// resulting evictions) back up through the deques.
func BenchmarkQueuedAccessMissStream(b *testing.B) {
	q := buildQueuedHierarchy(b)
	req := &mem.Request{Kind: mem.Load, IP: 2}
	b.ResetTimer()
	cycle := int64(0)
	for i := 0; i < b.N; i++ {
		req.Addr = mem.Addr(i) << 6
		q.Access(req, cycle)
		cycle += 10
	}
}

// TestZeroAllocQueuedAccessHit extends the zero-allocation invariant to the
// queued engine's operate path: once warm, a hit through the full
// wrapper stack (deque push, per-cycle stepping, retire) must not touch the
// heap — the rings are preallocated at construction.
func TestZeroAllocQueuedAccessHit(t *testing.T) {
	skipIfInstrumented(t)
	q := buildQueuedHierarchy(t)
	req := &mem.Request{Addr: 0x1000, Kind: mem.Load, IP: 1}
	q.Access(req, 0)
	q.Drain()
	cycle := int64(100)
	allocs := testing.AllocsPerRun(1000, func() {
		q.Access(req, cycle)
		cycle += 10
	})
	if allocs != 0 {
		t.Fatalf("queued cache hit allocates %v objects per access, want 0", allocs)
	}
}
