package benchmarks

import (
	"testing"

	"atcsim/internal/dram"
	"atcsim/internal/mem"
	"atcsim/internal/repl"
	"atcsim/internal/tlb"
)

// Microbenchmarks for the subsystems on the per-request hot path. Run with
// -benchmem: the steady-state loops below must report 0 allocs/op (pinned by
// the TestZeroAlloc* tests in alloc_test.go and by the CI benchmark gate).

func newSTLB(b *testing.B) *tlb.TLB {
	b.Helper()
	t, err := tlb.New(tlb.Config{Name: "STLB", Entries: 2048, Ways: 8, Latency: 8})
	if err != nil {
		b.Fatal(err)
	}
	return t
}

// BenchmarkTLBLookupHit measures the set-associative lookup on a resident
// working set.
func BenchmarkTLBLookupHit(b *testing.B) {
	t := newSTLB(b)
	const pages = 512
	for i := 0; i < pages; i++ {
		va := mem.Addr(i) * mem.PageSize
		t.Insert(va, mem.Addr(0x10000+i)*mem.PageSize)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := mem.Addr(i%pages) * mem.PageSize
		if _, hit := t.Lookup(va); !hit {
			b.Fatal("expected hit")
		}
	}
}

// BenchmarkTLBInsertEvict measures the fill path under steady capacity
// pressure (every insert evicts an LRU entry).
func BenchmarkTLBInsertEvict(b *testing.B) {
	t := newSTLB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := mem.Addr(i) * mem.PageSize
		t.Insert(va, va|1<<30)
	}
}

// BenchmarkDRAMSlotBooking measures the bank+bus slot booking of a channel
// read on an advancing clock — the path that replaced the per-bucket map
// with a ring window.
func BenchmarkDRAMSlotBooking(b *testing.B) {
	ch := dram.New(dram.DefaultConfig())
	req := &mem.Request{Kind: mem.Load}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Addr = mem.Addr(i%1024) * 4096
		ch.Read(req, int64(i)*8)
	}
}

// benchmarkReplUpdate drives one policy through a miss-heavy mix of
// Victim/Evicted/Insert/Hit calls over more lines than the cache holds.
func benchmarkReplUpdate(b *testing.B, policy string) {
	const sets, ways = 2048, 16
	p := repl.MustNew(policy, sets, ways)
	occupied := make([][]mem.Addr, sets)
	for s := range occupied {
		occupied[s] = make([]mem.Addr, ways)
	}
	evictable := func(int) bool { return true }
	var a repl.Access
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := mem.Addr(i % (4 * sets * ways))
		set := int(line) % sets
		a = repl.Access{IP: mem.Addr(i), Line: line, Kind: mem.Load}
		hitWay := -1
		for w, l := range occupied[set] {
			if l == line {
				hitWay = w
				break
			}
		}
		if hitWay >= 0 {
			p.Hit(set, hitWay, &a)
			continue
		}
		w := p.Victim(set, &a, evictable)
		p.Evicted(set, w)
		p.Insert(set, w, &a)
		occupied[set][w] = line
	}
}

func BenchmarkReplUpdateLRU(b *testing.B)     { benchmarkReplUpdate(b, "lru") }
func BenchmarkReplUpdateDRRIP(b *testing.B)   { benchmarkReplUpdate(b, "drrip") }
func BenchmarkReplUpdateSHiP(b *testing.B)    { benchmarkReplUpdate(b, "ship") }
func BenchmarkReplUpdateHawkeye(b *testing.B) { benchmarkReplUpdate(b, "hawkeye") }
