package benchmarks

import (
	"testing"

	"atcsim/internal/dram"
	"atcsim/internal/mem"
	"atcsim/internal/tlb"
)

// These tests pin the zero-allocation invariant of the per-request hot path
// (see DESIGN.md, "Performance"): once a simulation reaches steady state, a
// cache hit, a TLB hit and a DRAM slot booking must not touch the heap.
// They complement the -benchmem CI gate with a hard in-repo assertion.

func skipIfInstrumented(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("race detector defeats escape analysis")
	}
	if invariantsEnabled {
		t.Skip("atcsim_invariants audit passes are not allocation-free")
	}
}

func TestZeroAllocCacheHit(t *testing.T) {
	skipIfInstrumented(t)
	l1 := buildHierarchy(t, "ship")
	req := &mem.Request{Addr: 0x1000, Kind: mem.Load, IP: 1}
	l1.Access(req, 0) // warm the line in
	cycle := int64(100)
	allocs := testing.AllocsPerRun(1000, func() {
		l1.Access(req, cycle)
		cycle += 10
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %v objects per access, want 0", allocs)
	}
}

func TestZeroAllocTLBHit(t *testing.T) {
	skipIfInstrumented(t)
	stlb, err := tlb.New(tlb.Config{Name: "STLB", Entries: 2048, Ways: 8, Latency: 8})
	if err != nil {
		t.Fatal(err)
	}
	const pages = 256
	for i := 0; i < pages; i++ {
		va := mem.Addr(i) * mem.PageSize
		stlb.Insert(va, mem.Addr(0x10000+i)*mem.PageSize)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		va := mem.Addr(i%pages) * mem.PageSize
		if _, hit := stlb.Lookup(va); !hit {
			t.Fatal("expected hit")
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("TLB hit allocates %v objects per lookup, want 0", allocs)
	}
}

func TestZeroAllocDRAMSlotBooking(t *testing.T) {
	skipIfInstrumented(t)
	ch := dram.New(dram.DefaultConfig())
	req := &mem.Request{Kind: mem.Load}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		req.Addr = mem.Addr(i%1024) * 4096
		ch.Read(req, int64(i)*8)
		i++
	})
	if allocs != 0 {
		t.Fatalf("DRAM read allocates %v objects per booking, want 0", allocs)
	}
}
