package benchmarks

import (
	"testing"

	"atcsim/internal/cache"
	"atcsim/internal/dram"
	"atcsim/internal/mem"
	"atcsim/internal/ptw"
	"atcsim/internal/tlb"
	"atcsim/internal/vm"
	"atcsim/internal/xlat"
)

// buildXlatMMU assembles a full translation frontend — TLBs, walker, a
// two-level cache hierarchy over DRAM — running the named xlat mechanism,
// and pre-walks npages so steady-state measurement never demand-allocates
// frames.
func buildXlatMMU(tb testing.TB, mechName string, npages int) *ptw.MMU {
	tb.Helper()
	alloc, err := vm.NewFrameAllocator(33, true)
	if err != nil {
		tb.Fatal(err)
	}
	pt, err := vm.NewPageTable(alloc)
	if err != nil {
		tb.Fatal(err)
	}
	psc := tlb.NewPSC(tlb.DefaultPSCSizes())
	ch := dram.NewController(dram.DefaultConfig())
	llc, err := cache.New(cache.Config{
		Name: "LLC", Level: mem.LvlLLC, SizeBytes: 2 << 20, Ways: 16,
		Latency: 20, Policy: "ship",
	}, cache.DRAMAdapter{Read: ch.Read, Write: ch.Write})
	if err != nil {
		tb.Fatal(err)
	}
	l2, err := cache.New(cache.Config{
		Name: "L2", Level: mem.LvlL2, SizeBytes: 512 << 10, Ways: 8,
		Latency: 10, Policy: "drrip",
	}, llc)
	if err != nil {
		tb.Fatal(err)
	}
	w, err := ptw.NewWalker(pt, psc, l2, 0)
	if err != nil {
		tb.Fatal(err)
	}
	dtlb, err := tlb.New(tlb.Config{Name: "DTLB", Entries: 64, Ways: 4, Latency: 1})
	if err != nil {
		tb.Fatal(err)
	}
	stlb, err := tlb.New(tlb.Config{Name: "STLB", Entries: 2048, Ways: 8, Latency: 8})
	if err != nil {
		tb.Fatal(err)
	}
	mmu, err := ptw.NewMMU(dtlb, nil, stlb, w)
	if err != nil {
		tb.Fatal(err)
	}
	mech, err := xlat.New(mechName, xlat.Deps{L2: l2, LLC: llc, STLB: stlb})
	if err != nil {
		tb.Fatal(err)
	}
	mmu.SetMechanism(mech)
	for i := 0; i < npages; i++ {
		if _, err := mmu.Translate(mem.Addr(i)*mem.PageSize, 7, int64(i)*100); err != nil {
			tb.Fatal(err)
		}
	}
	return mmu
}

// xlatBenchPages is sized well past STLB reach (2048 entries) so every
// measured translation takes the STLB-miss path through the mechanism.
const xlatBenchPages = 8192

func benchmarkXlatTLBMiss(b *testing.B, mech string) {
	mmu := buildXlatMMU(b, mech, xlatBenchPages)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := mem.Addr(i%xlatBenchPages) * mem.PageSize
		if _, err := mmu.Translate(va, 7, int64(i)*100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXlatTLBMissATP measures the default STLB-miss path with the
// registry indirection in place; the CI gate holds it to 0 allocs/op, so
// making the mechanism pluggable cannot cost the hot path its
// allocation-free invariant.
func BenchmarkXlatTLBMissATP(b *testing.B) { benchmarkXlatTLBMiss(b, "atp") }

// BenchmarkXlatTLBMissVictima measures the cache-as-TLB service path
// (cache-TLB probe, parked-entry hits, predictor-gated inserts).
func BenchmarkXlatTLBMissVictima(b *testing.B) { benchmarkXlatTLBMiss(b, "victima") }

// BenchmarkXlatTLBMissRevelator measures the speculate-and-verify path
// (table probe, speculative prefetch, verification walk, training).
func BenchmarkXlatTLBMissRevelator(b *testing.B) { benchmarkXlatTLBMiss(b, "revelator") }

// TestZeroAllocMechanismTranslate pins the allocation-free invariant for
// every registered mechanism's steady-state STLB-miss path: registry
// indirection, cache-TLB probes and speculation machinery included, a
// translation must not touch the heap once frames are faulted in.
func TestZeroAllocMechanismTranslate(t *testing.T) {
	skipIfInstrumented(t)
	for _, mech := range xlat.Names() {
		mech := mech
		t.Run(mech, func(t *testing.T) {
			mmu := buildXlatMMU(t, mech, xlatBenchPages)
			i := 0
			allocs := testing.AllocsPerRun(2000, func() {
				va := mem.Addr(i%xlatBenchPages) * mem.PageSize
				if _, err := mmu.Translate(va, 7, int64(i)*100); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if allocs != 0 {
				t.Fatalf("%s translate allocates %v objects per call, want 0", mech, allocs)
			}
		})
	}
}
