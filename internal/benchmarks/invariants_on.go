//go:build atcsim_invariants

package benchmarks

// invariantsEnabled reports whether the atcsim_invariants build tag is on.
const invariantsEnabled = true
