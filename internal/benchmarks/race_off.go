//go:build !race

package benchmarks

// raceEnabled reports whether the race detector is compiled in. The
// zero-allocation tests skip under -race: the detector instruments memory
// operations and defeats the escape analysis the assertions pin down.
const raceEnabled = false
