//go:build !atcsim_invariants

package benchmarks

// invariantsEnabled reports whether the atcsim_invariants build tag is on.
// The audit passes it enables are not written to be allocation-free, so the
// zero-allocation tests skip under that tag.
const invariantsEnabled = false
