package benchmarks

import (
	"testing"

	"atcsim/internal/metrics"
)

// The metrics registry sits on runner-rate paths (per completed run, per
// heartbeat tick), never on the per-access hot path — but its update
// primitives are still pinned allocation-free so a future caller cannot
// accidentally make observability expensive.

func buildMetrics(tb testing.TB) (metrics.Counter, metrics.Gauge, *metrics.Histogram) {
	tb.Helper()
	reg := metrics.New()
	c := reg.Counter("bench_events_total", "bench counter", metrics.L("level", "llc"))
	g := reg.Gauge("bench_depth", "bench gauge")
	h := reg.NewHistogram("bench_latency", "bench histogram",
		[]float64{1, 10, 100, 1000})
	return c, g, h
}

func TestZeroAllocMetrics(t *testing.T) {
	skipIfInstrumented(t)
	c, g, h := buildMetrics(t)
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
	}); allocs != 0 {
		t.Fatalf("counter update allocates %v objects, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		g.Set(42.5)
		g.SetUint(7)
	}); allocs != 0 {
		t.Fatalf("gauge update allocates %v objects, want 0", allocs)
	}
	v := 0.0
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v += 3.7
	}); allocs != 0 {
		t.Fatalf("histogram observe allocates %v objects, want 0", allocs)
	}
}

func BenchmarkMetricsCounterAdd(b *testing.B) {
	c, _, _ := buildMetrics(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkMetricsHistogramObserve(b *testing.B) {
	_, _, h := buildMetrics(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 1023))
	}
}

// BenchmarkMetricsGather measures the snapshot-time cost (the only place
// the registry allocates) over a realistically sized series set.
func BenchmarkMetricsGather(b *testing.B) {
	reg := metrics.New()
	for _, lvl := range []string{"l1d", "l2", "llc"} {
		for _, cls := range []string{"non-replay", "replay", "trans-leaf", "trans-upper"} {
			reg.Counter("cache_accesses_total", "bench",
				metrics.L("level", lvl), metrics.L("class", cls)).Inc()
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(reg.Gather()) == 0 {
			b.Fatal("empty gather")
		}
	}
}
