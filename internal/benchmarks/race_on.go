//go:build race

package benchmarks

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
