package benchmarks

import (
	"testing"

	"atcsim/internal/cache"
	"atcsim/internal/dram"
	"atcsim/internal/mem"
	"atcsim/internal/ptw"
	"atcsim/internal/tlb"
	"atcsim/internal/vm"
)

func buildHierarchy(b testing.TB, policy string) *cache.Cache {
	b.Helper()
	ch := dram.NewController(dram.DefaultConfig())
	llc, err := cache.New(cache.Config{
		Name: "LLC", Level: mem.LvlLLC, SizeBytes: 2 << 20, Ways: 16,
		Latency: 20, Policy: policy,
	}, cache.DRAMAdapter{Read: ch.Read, Write: ch.Write})
	if err != nil {
		b.Fatal(err)
	}
	l2, err := cache.New(cache.Config{
		Name: "L2", Level: mem.LvlL2, SizeBytes: 512 << 10, Ways: 8,
		Latency: 10, Policy: "drrip",
	}, llc)
	if err != nil {
		b.Fatal(err)
	}
	l1, err := cache.New(cache.Config{
		Name: "L1D", Level: mem.LvlL1D, SizeBytes: 48 << 10, Ways: 12,
		Latency: 5, Policy: "lru",
	}, l2)
	if err != nil {
		b.Fatal(err)
	}
	return l1
}

// BenchmarkCacheAccessHit measures the steady-state L1 hit path.
func BenchmarkCacheAccessHit(b *testing.B) {
	l1 := buildHierarchy(b, "ship")
	req := &mem.Request{Addr: 0x1000, Kind: mem.Load, IP: 1}
	l1.Access(req, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l1.Access(req, int64(i)*10+100)
	}
}

// BenchmarkCacheAccessMissStream measures the full miss path through three
// levels into DRAM with a striding address.
func BenchmarkCacheAccessMissStream(b *testing.B) {
	l1 := buildHierarchy(b, "ship")
	req := &mem.Request{Kind: mem.Load, IP: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Addr = mem.Addr(i) * 8192
		l1.Access(req, int64(i)*50)
	}
}

// BenchmarkDRAMRead measures a raw channel read.
func BenchmarkDRAMRead(b *testing.B) {
	ch := dram.New(dram.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Read(&mem.Request{Addr: mem.Addr(i) * 4096, Kind: mem.Load}, int64(i)*20)
	}
}

// BenchmarkPageWalk measures a PSC-warm page walk through the hierarchy.
func BenchmarkPageWalk(b *testing.B) {
	alloc, err := vm.NewFrameAllocator(33, true)
	if err != nil {
		b.Fatal(err)
	}
	pt, err := vm.NewPageTable(alloc)
	if err != nil {
		b.Fatal(err)
	}
	psc := tlb.NewPSC(tlb.DefaultPSCSizes())
	l1 := buildHierarchy(b, "ship")
	w, err := ptw.NewWalker(pt, psc, l1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Wrap within 1M pages so arbitrarily large b.N cannot exhaust the
		// physical frame allocator.
		va := mem.Addr(i%(1<<20)) * mem.PageSize
		if _, err := w.Walk(va, 7, int64(i)*100); err != nil {
			b.Fatal(err)
		}
	}
}
