package workloads

import (
	"atcsim/internal/mem"
	"atcsim/internal/trace"
)

// The six Ligra-like graph kernels. Each executes the real algorithm over
// the shared power-law graph and emits the loads/stores/branches its inner
// loops would issue. Property arrays are 8B per vertex; random
// vertex-indexed loads are what produce the high STLB MPKI the paper's
// High-category benchmarks show.

// Distinct static-site bases per kernel keep IP signatures disjoint.
const (
	sitePR = iota*100 + 100
	siteBF
	siteCC
	siteRadii
	siteMIS
	siteTC
	siteMCF
	siteCanneal
	siteXalan
)

// PR is pull-style PageRank: every edge reads the source's rank — a random
// 8-byte load over the whole vertex set per edge. The paper's highest STLB
// MPKI benchmark.
func PR(n int, seed int64) *trace.Trace {
	g := sharedLigraGraph()
	b := trace.MustNewBuilder("pr", n)
	rank := make([]float64, g.N)
	next := make([]float64, g.N)
	for v := range rank {
		rank[v] = 1 / float64(g.N)
	}
	// The seed rotates the vertex scan so different seeds sample different
	// regions of the iteration space.
	offset := int(uint64(seed) * 2654435761 % uint64(g.N))
	for round := 0; !b.Full(); round++ {
		for i := 0; i < g.N && !b.Full(); i++ {
			v := (i + offset) % g.N
			lo, hi := g.Neighbors(v)
			b.Load(sitePR+0, g.offsetVA(v)) // offsets[v] (sequential)
			sum := 0.0
			for e := lo; e < hi; e++ {
				u := int(g.Edges[e])
				b.Load(sitePR+1, g.edgeVA(e))   // edge target (sequential)
				b.LoadDep(sitePR+2, prop1VA(u)) // rank[u] (random!)
				b.ALU(sitePR+3, 2)              // sum += rank[u]/deg[u]
				b.Branch(sitePR+4, e+1 < hi)    // edge-loop branch
				sum += rank[u]
			}
			next[v] = 0.15/float64(g.N) + 0.85*sum
			b.ALU(sitePR+5, 1)
			b.Store(sitePR+6, prop2VA(v)) // next[v]
		}
		rank, next = next, rank
	}
	return b.Build()
}

// CC is label-propagation connected components: per edge a random load of
// the neighbour's label plus a data-dependent branch and occasional store.
func CC(n int, seed int64) *trace.Trace {
	g := sharedLigraGraph()
	b := trace.MustNewBuilder("cc", n)
	label := make([]int32, g.N)
	for v := range label {
		label[v] = int32(v)
	}
	offset := int(uint64(seed) * 0x9E3779B9 % uint64(g.N))
	for round := 0; !b.Full(); round++ {
		changed := false
		for i := 0; i < g.N && !b.Full(); i++ {
			v := (i + offset) % g.N
			lo, hi := g.Neighbors(v)
			b.Load(siteCC+0, g.offsetVA(v))
			best := label[v]
			b.Load(siteCC+1, prop1VA(v))
			for e := lo; e < hi; e++ {
				u := int(g.Edges[e])
				b.Load(siteCC+2, g.edgeVA(e))
				b.LoadDep(siteCC+3, prop1VA(u)) // label[u] (random)
				b.ALU(siteCC+7, 2)
				improved := label[u] < best
				b.Branch(siteCC+4, improved)
				if improved {
					best = label[u]
				}
			}
			if best != label[v] {
				label[v] = best
				changed = true
				b.Store(siteCC+5, prop1VA(v))
			}
			b.Branch(siteCC+6, best != label[v])
		}
		if !changed {
			// Converged: reshuffle labels so the trace keeps exercising
			// the propagation path when replayed longer than convergence.
			for v := range label {
				label[v] = int32((v*7 + round) % g.N)
			}
		}
	}
	return b.Build()
}

// BF is frontier-based Bellman-Ford SSSP in Ligra's sparse mode: a work
// queue of active vertices relaxes its out-edges each round. Sequential
// frontier pops dilute the random property loads — high STLB MPKI, but
// below pr/cc, like the paper's ordering.
func BF(n int, seed int64) *trace.Trace {
	g := sharedLigraGraph()
	b := trace.MustNewBuilder("bf", n)
	const inf = int32(1) << 30
	dist := make([]int32, g.N)
	inFrontier := make([]bool, g.N)
	var frontier, next []int32
	r := newRNG(seed)
	reset := func() {
		for v := range dist {
			dist[v] = inf
			inFrontier[v] = false
		}
		src := r.intn(g.N)
		dist[src] = 0
		frontier = append(frontier[:0], int32(src))
		next = next[:0]
	}
	reset()
	for !b.Full() {
		for fi := 0; fi < len(frontier) && !b.Full(); fi++ {
			v := int(frontier[fi])
			inFrontier[v] = false
			b.Load(siteBF+0, baseAux+mem.Addr(fi)*4) // frontier pop (sequential)
			lo, hi := g.Neighbors(v)
			b.Load(siteBF+2, g.offsetVA(v))
			b.Load(siteBF+3, prop16VA(v)) // dist[v] (random)
			for e := lo; e < hi; e++ {
				u := int(g.Edges[e])
				b.Load(siteBF+4, g.edgeVA(e))
				b.LoadDep(siteBF+5, prop16VA(u)) // dist[u] (random)
				w := int32(e%16) + 1
				b.ALU(siteBF+9, 2) // weight add + compare setup
				relax := dist[v]+w < dist[u]
				b.Branch(siteBF+6, relax)
				if relax {
					dist[u] = dist[v] + w
					b.Store(siteBF+7, prop16VA(u)) // dist[u] (random store)
					if !inFrontier[u] {
						inFrontier[u] = true
						next = append(next, int32(u))
						b.Store(siteBF+8, baseAux+mem.Addr(len(next))*4)
					}
				}
			}
		}
		frontier, next = next, frontier[:0]
		if len(frontier) == 0 {
			reset()
		}
	}
	return b.Build()
}

// Radii estimates graph radii with 64-source concurrent BFS over bitmask
// properties, Ligra-style sparse frontiers: random mask loads and stores
// per edge while frontiers persist.
func Radii(n int, seed int64) *trace.Trace {
	g := sharedLigraGraph()
	b := trace.MustNewBuilder("radii", n)
	visited := make([]uint64, g.N)
	inNext := make([]bool, g.N)
	var frontier, next []int32
	r := newRNG(seed)
	restart := func() {
		for i := range visited {
			visited[i] = 0
			inNext[i] = false
		}
		frontier = frontier[:0]
		next = next[:0]
		for k := 0; k < 64; k++ {
			v := r.intn(g.N)
			visited[v] |= 1 << k
			frontier = append(frontier, int32(v))
		}
	}
	restart()
	for !b.Full() {
		for fi := 0; fi < len(frontier) && !b.Full(); fi++ {
			v := int(frontier[fi])
			b.Load(siteRadii+0, baseAux+mem.Addr(fi)*4) // frontier pop
			b.Load(siteRadii+1, prop16VA(v))            // visited[v] (random)
			lo, hi := g.Neighbors(v)
			b.Load(siteRadii+2, g.offsetVA(v))
			for e := lo; e < hi; e++ {
				u := int(g.Edges[e])
				b.Load(siteRadii+3, g.edgeVA(e))
				b.LoadDep(siteRadii+4, prop16VA(u)) // visited[u] (random)
				b.ALU(siteRadii+8, 2)               // mask combine
				add := visited[v] &^ visited[u]
				b.Branch(siteRadii+5, add != 0)
				if add != 0 {
					visited[u] |= add
					b.Store(siteRadii+6, prop16VA(u))
					if !inNext[u] {
						inNext[u] = true
						next = append(next, int32(u))
						b.Store(siteRadii+7, baseAux+mem.Addr(len(next))*4)
					}
				}
			}
		}
		for _, u := range next {
			inNext[u] = false
		}
		frontier, next = next, frontier[:0]
		if len(frontier) == 0 {
			restart()
		}
	}
	return b.Build()
}

// MIS computes a maximal independent set with random priorities over a
// shrinking worklist of undecided vertices — mostly-sequential list scans
// plus random neighbour-state loads: a Medium benchmark.
func MIS(n int, seed int64) *trace.Trace {
	g := sharedLigraGraph()
	b := trace.MustNewBuilder("mis", n)
	const (
		undecided = int8(0)
		inSet     = int8(1)
		outSet    = int8(2)
	)
	state := make([]int8, g.N)
	prio := make([]uint32, g.N)
	var work, nextWork []int32
	r := newRNG(seed)
	restart := func() {
		work = work[:0]
		for v := range state {
			state[v] = undecided
			prio[v] = uint32(r.next())
			work = append(work, int32(v))
		}
	}
	restart()
	for !b.Full() {
		nextWork = nextWork[:0]
		for wi := 0; wi < len(work) && !b.Full(); wi++ {
			v := int(work[wi])
			b.Load(siteMIS+0, baseAux+mem.Addr(wi)*4) // worklist pop
			b.Load(siteMIS+1, prop16VA(v))            // state[v] (packed, random)
			b.Branch(siteMIS+2, state[v] == undecided)
			if state[v] != undecided {
				continue
			}
			lo, hi := g.Neighbors(v)
			b.Load(siteMIS+3, g.offsetVA(v))
			win := true
			for e := lo; e < hi; e++ {
				u := int(g.Edges[e])
				b.Load(siteMIS+4, g.edgeVA(e))
				b.LoadDep(siteMIS+5, prop16VA(u)) // prio/state of u (packed, random)
				b.ALU(siteMIS+9, 1)
				lose := state[u] == inSet ||
					(state[u] == undecided && (prio[u] > prio[v] || (prio[u] == prio[v] && u > v)))
				b.Branch(siteMIS+6, lose)
				if lose {
					win = false
					break
				}
			}
			if win {
				state[v] = inSet
				b.Store(siteMIS+7, prop16VA(v))
				for e := lo; e < hi && !b.Full(); e++ {
					u := int(g.Edges[e])
					if state[u] == undecided {
						state[u] = outSet
						b.Store(siteMIS+8, prop16VA(u)) // random store
					}
				}
			} else {
				nextWork = append(nextWork, int32(v))
			}
		}
		work, nextWork = nextWork, work
		if len(work) == 0 {
			restart()
		}
	}
	return b.Build()
}

// TC counts triangles by merge-intersecting adjacency lists: two mostly
// sequential edge streams with compare branches — the lowest-MPKI Ligra
// kernel, matching its Medium classification.
func TC(n int, seed int64) *trace.Trace {
	g := sharedLigraGraph()
	b := trace.MustNewBuilder("tc", n)
	r := newRNG(seed)
	for !b.Full() {
		// Vertices are processed in a scrambled order (as a parallel
		// work-stealing runtime would), so adjacency-list reads land on
		// random offsets of the CSR arrays.
		v := r.intn(g.N)
		lo, hi := g.Neighbors(v)
		b.Load(siteTC+0, g.offsetVA(v)) // offsets[v] (random)
		for e := lo; e < hi && !b.Full(); e++ {
			u := int(g.Edges[e])
			b.Load(siteTC+1, g.edgeVA(e))
			if u >= v {
				b.Branch(siteTC+2, false)
				continue
			}
			b.Branch(siteTC+2, true)
			// Merge-intersect adj(v) and adj(u).
			ulo, uhi := g.Neighbors(u)
			b.Load(siteTC+3, g.offsetVA(u)) // offsets[u] (random)
			i, j := lo, ulo
			for i < hi && j < uhi && !b.Full() {
				b.Load(siteTC+4, g.edgeVA(i)) // sequential stream 1
				b.Load(siteTC+5, g.edgeVA(j)) // sequential stream 2
				a, c := g.Edges[i], g.Edges[j]
				b.Branch(siteTC+6, a < c)
				switch {
				case a < c:
					i++
				case c < a:
					j++
				default:
					i++
					j++
					b.ALU(siteTC+7, 1) // count++
				}
			}
		}
		b.ALU(siteTC+8, 3)
	}
	return b.Build()
}
