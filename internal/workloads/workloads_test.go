package workloads

import (
	"testing"

	"atcsim/internal/trace"
)

const testInsts = 60_000

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 9 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		s, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != n || s.Build == nil || s.Suite == "" {
			t.Errorf("spec %q incomplete: %+v", n, s)
		}
	}
	if _, err := ByName("gcc"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if len(All()) != 9 {
		t.Error("All() wrong length")
	}
}

func TestCategories(t *testing.T) {
	if got := ByCategory(Low); len(got) != 1 || got[0] != "xalancbmk" {
		t.Errorf("Low = %v", got)
	}
	if got := ByCategory(Medium); len(got) != 4 {
		t.Errorf("Medium = %v", got)
	}
	if got := ByCategory(High); len(got) != 4 {
		t.Errorf("High = %v", got)
	}
}

func TestAllBenchmarksGenerate(t *testing.T) {
	for _, s := range All() {
		tr := s.Build(testInsts, 1)
		if tr.Name != s.Name {
			t.Errorf("%s: trace name %q", s.Name, tr.Name)
		}
		st := tr.Stats()
		if st.Total < testInsts*9/10 {
			t.Errorf("%s: only %d instructions", s.Name, st.Total)
		}
		// Sanity: a realistic mix (loads 15–70%, some branches).
		loadFrac := float64(st.Loads) / float64(st.Total)
		if loadFrac < 0.10 || loadFrac > 0.75 {
			t.Errorf("%s: load fraction %.2f out of range", s.Name, loadFrac)
		}
		if st.Branches == 0 {
			t.Errorf("%s: no branches", s.Name)
		}
		if st.Pages < 16 {
			t.Errorf("%s: footprint only %d pages", s.Name, st.Pages)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range []string{"pr", "mcf", "canneal", "xalancbmk"} {
		s, _ := ByName(name)
		a := s.Build(20_000, 7)
		b := s.Build(20_000, 7)
		if len(a.Insts) != len(b.Insts) {
			t.Fatalf("%s: lengths differ", name)
		}
		for i := range a.Insts {
			if a.Insts[i] != b.Insts[i] {
				t.Fatalf("%s: divergence at inst %d", name, i)
			}
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	s, _ := ByName("canneal")
	a := s.Build(10_000, 1)
	b := s.Build(10_000, 2)
	same := 0
	for i := range a.Insts {
		if a.Insts[i] == b.Insts[i] {
			same++
		}
	}
	if same == len(a.Insts) {
		t.Error("different seeds produced identical traces")
	}
}

func TestFootprintOrderingMatchesCategories(t *testing.T) {
	// The Low benchmark must touch fewer pages per instruction than the
	// High ones — the raw driver of the STLB MPKI categories.
	pages := map[string]int{}
	for _, name := range []string{"xalancbmk", "pr", "cc"} {
		s, _ := ByName(name)
		pages[name] = s.Build(testInsts, 1).Stats().Pages
	}
	if pages["xalancbmk"] >= pages["pr"] {
		t.Errorf("xalancbmk pages %d >= pr pages %d", pages["xalancbmk"], pages["pr"])
	}
	if pages["xalancbmk"] >= pages["cc"] {
		t.Errorf("xalancbmk pages %d >= cc pages %d", pages["xalancbmk"], pages["cc"])
	}
}

func TestGraphCSRWellFormed(t *testing.T) {
	g := BuildGraph(14, 4, 42)
	if g.N != 1<<14 || g.M != 4<<14 {
		t.Fatalf("graph dims N=%d M=%d", g.N, g.M)
	}
	if g.Offsets[0] != 0 || int(g.Offsets[g.N]) != g.M {
		t.Fatal("offset bounds wrong")
	}
	total := 0
	for v := 0; v < g.N; v++ {
		lo, hi := g.Neighbors(v)
		if lo > hi {
			t.Fatalf("vertex %d: lo > hi", v)
		}
		if g.Degree(v) != hi-lo {
			t.Fatalf("vertex %d: degree mismatch", v)
		}
		total += hi - lo
		for e := lo; e < hi; e++ {
			if int(g.Edges[e]) >= g.N || int(g.Edges[e]) < 0 {
				t.Fatalf("edge %d out of range", e)
			}
		}
	}
	if total != g.M {
		t.Fatalf("edge total %d != M %d", total, g.M)
	}
}

func TestGraphPowerLawSkew(t *testing.T) {
	g := BuildGraph(14, 8, 42)
	// In-degree skew: the hottest 1% of vertices should absorb well over
	// 1% of edges.
	indeg := make([]int, g.N)
	for _, d := range g.Edges {
		indeg[d]++
	}
	hot := 0
	for v := 0; v < g.N/100; v++ {
		hot += indeg[v] // skewed() biases toward low vertex ids
	}
	if frac := float64(hot) / float64(g.M); frac < 0.05 {
		t.Errorf("top-1%% in-degree share = %.3f, want skew", frac)
	}
}

func TestMicroKernels(t *testing.T) {
	st := Stream(5000, 1).Stats()
	if st.Total < 4500 || st.Loads == 0 || st.Stores == 0 {
		t.Errorf("stream stats = %+v", st)
	}
	ch := PointerChase(5000, 1)
	cst := ch.Stats()
	if cst.Loads == 0 {
		t.Error("chase has no loads")
	}
	// Dependent chase: consecutive load addresses far apart (random pages).
	var prev trace.Inst
	far := 0
	loads := 0
	for _, in := range ch.Insts {
		if in.Op != trace.OpLoad {
			continue
		}
		if loads > 0 {
			d := int64(in.Addr) - int64(prev.Addr)
			if d < 0 {
				d = -d
			}
			if d > 4096 {
				far++
			}
		}
		prev = in
		loads++
	}
	if float64(far)/float64(loads) < 0.9 {
		t.Error("pointer chase not page-random")
	}
}
