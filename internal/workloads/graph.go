package workloads

import (
	"sync"

	"atcsim/internal/mem"
)

// Graph is a CSR-encoded directed graph shared by the Ligra-like kernels,
// mirroring how the Ligra benchmarks all run over one input graph. Vertex
// properties are 8 bytes, edges 4 bytes, so address math below matches the
// array layouts the real kernels would have.
type Graph struct {
	N       int
	M       int
	Offsets []int32 // len N+1
	Edges   []int32 // len M, CSR targets
}

// Virtual addresses of graph structures for a vertex/edge index.
func (g *Graph) offsetVA(v int) mem.Addr { return baseOffsets + mem.Addr(v)*4 }
func (g *Graph) edgeVA(e int) mem.Addr   { return baseEdges + mem.Addr(e)*4 }

// prop1VA/prop2VA address the two per-vertex property records. Graph
// frameworks keep several properties per vertex (rank, degree, flags,
// shadows), so a vertex record is modelled as 128 bytes: a 2M-vertex graph
// has a 256MB property footprint per array — 65K pages, 32× the STLB reach,
// and an 8K-line leaf-PTE working set (512KB) that cannot live in the L2.
// This is the paper's regime: simulated-region footprints of 200–400MB.
const propStride = 128

func prop1VA(v int) mem.Addr { return baseProp1 + mem.Addr(v)*propStride }
func prop2VA(v int) mem.Addr { return baseProp2 + mem.Addr(v)*propStride }

// prop16VA models the leaner per-vertex state some kernels keep (a packed
// 16-byte scalar pair, as Ligra's dist/priority arrays are): a smaller
// footprint and lower STLB pressure — the knob that separates the paper's
// Medium benchmarks from the High ones.
func prop16VA(v int) mem.Addr { return baseProp2 + mem.Addr(v)*16 }

// Default graph scale: 2^21 vertices, average degree 8 (16M edges, 64MB
// edge array).
const (
	defaultLogN   = 20
	defaultDegree = 8
)

// BuildGraph constructs a power-law random graph deterministically from the
// seed: uniformly random sources, cube-skewed destinations (heavy head).
func BuildGraph(logN, degree int, seed int64) *Graph {
	n := 1 << logN
	m := n * degree
	r := newRNG(seed)

	src := make([]int32, m)
	dst := make([]int32, m)
	counts := make([]int32, n+1)
	for i := 0; i < m; i++ {
		s := int32(r.intn(n))
		d := int32(r.skewed(n))
		if s == d {
			d = int32((int(d) + 1) % n)
		}
		src[i] = s
		dst[i] = d
		counts[s+1]++
	}
	// Counting sort into CSR.
	offsets := make([]int32, n+1)
	for v := 1; v <= n; v++ {
		offsets[v] = offsets[v-1] + counts[v]
	}
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	edges := make([]int32, m)
	for i := 0; i < m; i++ {
		edges[cursor[src[i]]] = dst[i]
		cursor[src[i]]++
	}
	return &Graph{N: n, M: m, Offsets: offsets, Edges: edges}
}

var (
	sharedOnce  sync.Once
	sharedGraph *Graph
)

// sharedLigraGraph returns the process-wide input graph used by all Ligra
// kernels (built once; deterministic).
func sharedLigraGraph() *Graph {
	sharedOnce.Do(func() {
		sharedGraph = BuildGraph(defaultLogN, defaultDegree, 0xA11CE)
	})
	return sharedGraph
}

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int) int { return int(g.Offsets[v+1] - g.Offsets[v]) }

// Neighbors returns the CSR slice bounds of v's adjacency list.
func (g *Graph) Neighbors(v int) (lo, hi int) {
	return int(g.Offsets[v]), int(g.Offsets[v+1])
}
