package workloads

import (
	"atcsim/internal/mem"
	"atcsim/internal/trace"
)

// MCF mimics SPEC's network-simplex solver: dependent pointer chasing over
// 64-byte "node" records scattered across a large pool, with arithmetic on
// each node's fields and occasional cost-array lookups. The dependent chain
// limits MLP, and every hop lands on a fresh page — the paper's
// Medium-category SPEC benchmark.
func MCF(n int, seed int64) *trace.Trace {
	b := trace.MustNewBuilder("mcf", n)
	const nodes = 1 << 21 // 2M nodes × 64B = 128MB pool (32K pages)
	nodeVA := func(i int) mem.Addr { return basePool + mem.Addr(i)*64 }
	costVA := func(i int) mem.Addr { return baseAux + mem.Addr(i)*8 }

	// A random permutation forms the pointer chain (a single cycle).
	r := newRNG(seed)
	next := make([]int32, nodes)
	perm := make([]int32, nodes)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := nodes - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < nodes; i++ {
		next[perm[i]] = perm[(i+1)%nodes]
	}

	cur := int(perm[0])
	for !b.Full() {
		// Chase: node->next (the dependent, page-missing load).
		b.LoadDep(siteMCF+0, nodeVA(cur))
		// Work on the node's fields (same line: DTLB/L1 hits).
		b.Load(siteMCF+1, nodeVA(cur)+16)
		b.Load(siteMCF+2, nodeVA(cur)+32)
		b.ALU(siteMCF+3, 12)
		// Reduced-cost lookup (random over a smaller table).
		b.Load(siteMCF+4, costVA(r.intn(1<<18)))
		b.ALU(siteMCF+5, 10)
		improve := r.next()%8 == 0
		b.Branch(siteMCF+6, improve)
		if improve {
			b.Store(siteMCF+7, nodeVA(cur)+48)
		}
		cur = int(next[cur])
	}
	return b.Build()
}

// Canneal mimics PARSEC's simulated-annealing placement: pick two random
// elements of a large netlist, read both, evaluate the swap and write both
// back when accepted. Two random pages per ~14 instructions.
func Canneal(n int, seed int64) *trace.Trace {
	b := trace.MustNewBuilder("canneal", n)
	const elems = 1 << 21 // 2M × 64B records = 128MB netlist
	elemVA := func(i int) mem.Addr { return basePool + mem.Addr(i)*64 }
	r := newRNG(seed)
	temperature := 1 << 16
	for !b.Full() {
		// One element is drawn uniformly, the other from the hot region a
		// real annealer's locality-aware swap picker favours.
		a, c := r.intn(elems), r.intn(elems/32)
		b.Load(siteCanneal+0, elemVA(a))
		b.Load(siteCanneal+1, elemVA(c))
		// Cost evaluation walks both elements' net records (same lines)
		// with the routing arithmetic in between.
		b.Load(siteCanneal+2, elemVA(a)+8)
		b.Load(siteCanneal+3, elemVA(c)+8)
		b.ALU(siteCanneal+4, 14)
		accept := int(r.next()%uint64(1<<17)) < temperature
		b.Branch(siteCanneal+5, accept)
		if accept {
			b.Store(siteCanneal+6, elemVA(a))
			b.Store(siteCanneal+7, elemVA(c))
		}
		b.ALU(siteCanneal+8, 8)
		if temperature > 1024 {
			temperature--
		}
	}
	return b.Build()
}

// Xalancbmk mimics the XSLT processor: repeated descents of a DOM-like tree
// whose upper levels are hot (Zipf-style reuse), plus short sequential
// string scans. The footprint slightly exceeds the STLB reach, giving the
// paper's Low STLB-MPKI profile.
func Xalancbmk(n int, seed int64) *trace.Trace {
	b := trace.MustNewBuilder("xalancbmk", n)
	const (
		nnodes   = 5 << 17 // 640K nodes × 32B = 20MB (5120 pages)
		children = 4
		depth    = 9
	)
	nodeVA := func(i int) mem.Addr { return basePool + mem.Addr(i)*32 }
	strVA := func(i int) mem.Addr { return baseAux + mem.Addr(i) }
	r := newRNG(seed)
	for !b.Full() {
		// Descend from the root: node i's children are 4i+1..4i+4, so low
		// indices (upper levels) are revisited constantly and stay cached.
		node := 0
		for d := 0; d < depth && !b.Full(); d++ {
			b.LoadDep(siteXalan+0, nodeVA(node)) // node header (chases the child pointer)
			b.Load(siteXalan+1, nodeVA(node)+8)  // child pointer array
			b.ALU(siteXalan+2, 2)
			k := r.intn(children)
			b.Branch(siteXalan+3, k != 0)
			node = node*children + 1 + k
			if node >= nnodes {
				break
			}
		}
		// Emit a short string-compare scan (sequential bytes → one page).
		s := r.intn(3 << 21)
		for i := 0; i < 6; i++ {
			b.Load(siteXalan+4, strVA(s+i*8))
			b.Branch(siteXalan+5, i < 5)
		}
		b.Store(siteXalan+6, strVA(r.intn(3<<21)))
		b.ALU(siteXalan+7, 4)
	}
	return b.Build()
}

// Micro-kernels used by tests and the quickstart example.

// Stream emits a sequential read/modify/write sweep — a best-case,
// prefetch-friendly pattern.
func Stream(n int, seed int64) *trace.Trace {
	b := trace.MustNewBuilder("stream", n)
	const elems = 1 << 22
	for i := 0; !b.Full(); i = (i + 1) % elems {
		b.Load(1000, basePool+mem.Addr(i)*8)
		b.ALU(1001, 1)
		b.Store(1002, baseAux+mem.Addr(i)*8)
		b.Branch(1003, i+1 < elems)
	}
	return b.Build()
}

// PointerChase emits a dependent random chase — worst case for everything.
func PointerChase(n int, seed int64) *trace.Trace {
	b := trace.MustNewBuilder("chase", n)
	const nodes = 1 << 20
	r := newRNG(seed)
	perm := make([]int32, nodes)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := nodes - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	cur := 0
	for !b.Full() {
		b.LoadDep(1100, basePool+mem.Addr(cur)*64)
		b.ALU(1101, 2)
		b.Branch(1102, true)
		cur = int(perm[cur])
	}
	return b.Build()
}
