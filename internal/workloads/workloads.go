// Package workloads synthesizes the paper's benchmark suite. The SPEC
// CPU2017 / PARSEC / Ligra traces the paper simulates are not available, so
// each benchmark is re-created as a Go kernel executing the same algorithm
// on synthetic inputs and emitting the instruction/address stream it would
// produce (see DESIGN.md §2 for the substitution argument). Footprints are
// sized so that the footprint-to-STLB-reach and footprint-to-LLC ratios sit
// in the paper's regime, and the benchmarks fall into the same Low/Medium/
// High STLB-MPKI categories as the paper's Table II.
package workloads

import (
	"fmt"
	"sort"

	"atcsim/internal/mem"
	"atcsim/internal/trace"
)

// Virtual-address bases for the synthetic arrays. Each logical array lives
// in its own region so that streams are distinguishable and pages do not
// alias across arrays.
const (
	baseOffsets mem.Addr = 0x1_0000_0000
	baseEdges   mem.Addr = 0x2_0000_0000
	baseProp1   mem.Addr = 0x3_0000_0000
	baseProp2   mem.Addr = 0x4_0000_0000
	basePool    mem.Addr = 0x5_0000_0000
	baseAux     mem.Addr = 0x6_0000_0000
)

// Category is the STLB-MPKI class used for SMT/multicore mixes (Table II).
type Category string

// Categories per the paper: Low ≤ 10 STLB MPKI, Medium 11–25, High > 25.
const (
	Low    Category = "Low"
	Medium Category = "Medium"
	High   Category = "High"
)

// Spec describes one benchmark.
type Spec struct {
	Name     string
	Suite    string
	Category Category
	// Build generates a trace of approximately n instructions.
	Build func(n int, seed int64) *trace.Trace
}

var specs = map[string]Spec{}

func register(s Spec) { specs[s.Name] = s }

func init() {
	register(Spec{Name: "xalancbmk", Suite: "SPEC CPU2017", Category: Low, Build: Xalancbmk})
	register(Spec{Name: "tc", Suite: "Ligra", Category: Medium, Build: TC})
	register(Spec{Name: "canneal", Suite: "PARSEC", Category: Medium, Build: Canneal})
	register(Spec{Name: "mis", Suite: "Ligra", Category: Medium, Build: MIS})
	register(Spec{Name: "mcf", Suite: "SPEC CPU2017", Category: Medium, Build: MCF})
	register(Spec{Name: "bf", Suite: "Ligra", Category: High, Build: BF})
	register(Spec{Name: "radii", Suite: "Ligra", Category: High, Build: Radii})
	register(Spec{Name: "cc", Suite: "Ligra", Category: High, Build: CC})
	register(Spec{Name: "pr", Suite: "Ligra", Category: High, Build: PR})
}

// Names returns the benchmark names in the paper's Table II order
// (ascending STLB MPKI).
func Names() []string {
	return []string{"xalancbmk", "tc", "canneal", "mis", "mcf", "bf", "radii", "cc", "pr"}
}

// All returns the specs in Table II order.
func All() []Spec {
	out := make([]Spec, 0, len(specs))
	for _, n := range Names() {
		out = append(out, specs[n])
	}
	return out
}

// ByName looks a benchmark up.
func ByName(name string) (Spec, error) {
	s, ok := specs[name]
	if !ok {
		known := Names()
		sort.Strings(known)
		return Spec{}, fmt.Errorf("workloads: unknown benchmark %q (have %v)", name, known)
	}
	return s, nil
}

// ByCategory returns the names in a category, Table II order.
func ByCategory(c Category) []string {
	var out []string
	for _, n := range Names() {
		if specs[n].Category == c {
			out = append(out, n)
		}
	}
	return out
}

// rng is a splitmix64 generator: tiny, fast and deterministic.
type rng struct{ s uint64 }

func newRNG(seed int64) *rng { return &rng{s: uint64(seed)*0x9E3779B97F4A7C15 + 1} }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// skewed returns a power-law-biased value in [0, n): small values are much
// more likely, approximating the in-degree skew of web/social graphs
// (CDF (v/n)^(1/6): the hottest 1%% of vertices absorb ~46%% of edges, the
// locality that gives leaf-PTE lines their short recall distances).
func (r *rng) skewed(n int) int {
	u := float64(r.next()>>11) / (1 << 53)
	u3 := u * u * u
	v := int(u3 * u3 * float64(n))
	if v >= n {
		v = n - 1
	}
	return v
}
