// Package xlat makes the address-translation mechanism a pluggable axis of
// the simulated machine, the way replacement policies already are in
// internal/repl. A Mechanism owns the handling of STLB-missing translations:
// the MMU resolves the L1 TLB and STLB itself, then hands every miss to the
// configured mechanism together with a WalkFn that performs the hardware
// radix walk. Three mechanisms are built in:
//
//   - "atp" (the default): the paper's machinery — every STLB miss goes
//     straight to the page-table walker, whose leaf reads trigger the
//     ATP/TEMPO cache hooks. This is byte-identical to the pre-registry
//     behavior.
//   - "victima": Victima-style cache-as-TLB. STLB-evicted translations are
//     inserted into underutilized L2C/LLC sets as TLB blocks; an STLB miss
//     probes those blocks before falling back to the walker.
//   - "revelator": Revelator-style hash-based speculation. A direct-mapped,
//     partially-tagged prediction table speculatively fetches the replay
//     data line in parallel with the verification walk; tag aliasing causes
//     misspeculation, which squashes the wrong fetch and pays a retry
//     penalty.
//
// Mechanisms must be deterministic: state may depend only on the request
// stream, never on wall-clock time or randomness, so that reports stay
// byte-identical across -jobs values and cache replays. docs/TRANSLATION.md
// is the guide to the data structures, request flows and stats of each
// mechanism.
package xlat

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"atcsim/internal/cache"
	"atcsim/internal/mem"
	"atcsim/internal/tlb"
)

// DefaultName is the mechanism used when none is configured: the paper's
// ATP machinery.
const DefaultName = "atp"

// Outcome reports how one STLB-missing translation was serviced.
type Outcome struct {
	// PA is the full physical address translating the requested VA.
	PA mem.Addr
	// Ready is the cycle at which the translation is available.
	Ready int64
	// LeafSrc is the hierarchy level that provided the leaf translation
	// (the level of the cache-resident TLB block for a victima hit).
	LeafSrc mem.Level
	// Steps is the number of page-table levels the walker read (0 when no
	// walk was needed).
	Steps int
	// Huge reports a 2MB-page translation; PA is then offset within the
	// huge page and the MMU fills the huge-entry TLB arrays.
	Huge bool
	// CacheHit reports that a cache-resident TLB block serviced the miss
	// without a page walk (victima only).
	CacheHit bool
}

// WalkFn performs the hardware page walk for va (ip attributes the walk to
// the triggering instruction) starting at the given cycle. It is provided
// by the MMU; mechanisms call it for fallback and verification walks.
type WalkFn func(va, ip mem.Addr, cycle int64) (Outcome, error)

// Mechanism services STLB-missing translations. Implementations are
// single-threaded, like the rest of the simulator, and must be
// deterministic functions of the request stream.
type Mechanism interface {
	// Name returns the registered mechanism name.
	Name() string
	// Translate resolves va at the given cycle, using walk for any
	// hardware page walks it needs.
	Translate(va, ip mem.Addr, cycle int64, walk WalkFn) (Outcome, error)
	// Stats returns a snapshot of the mechanism's counters.
	Stats() Stats
	// ResetStats zeroes the counters at the end of warmup.
	ResetStats()
}

// Checker is optionally implemented by mechanisms with checkable internal
// state; the MMU's CheckInvariants forwards to it. Victima uses this to
// verify every cache-resident TLB block against the naive-walk oracle.
type Checker interface {
	// CheckInvariants returns an error if mechanism state is inconsistent
	// with the oracle or internally contradictory.
	CheckInvariants() error
}

// Deps are the machine structures a mechanism may hook into. Unused fields
// may be nil; constructors return an error when a required dependency is
// missing.
type Deps struct {
	// L2 and LLC are the cache levels victima stores TLB blocks in and
	// revelator prefetches speculative data into.
	L2, LLC *cache.Cache
	// STLB is hooked by victima to observe entry evictions.
	STLB *tlb.TLB
	// Oracle is the naive radix-walk reference (vm.PageTable.Translate):
	// given a VA it returns the authoritative PA. Used only for invariant
	// checking, never for timing.
	Oracle func(va mem.Addr) (mem.Addr, error)
	// CheckTranslations makes every Translate verify its result against
	// Oracle and panic on mismatch — misspeculation escaping containment
	// becomes a hard failure instead of silent corruption. Wired to
	// Config.CheckInvariants by internal/system.
	CheckTranslations bool
}

// verify panics when translation checking is enabled and pa disagrees with
// the oracle for va. Mechanisms call it on every outcome they produce.
func (d *Deps) verify(name string, va, pa mem.Addr) {
	if !d.CheckTranslations || d.Oracle == nil {
		return
	}
	want, err := d.Oracle(va)
	if err != nil {
		panic(fmt.Sprintf("xlat %s: oracle walk failed for va %#x: %v", name, va, err))
	}
	if want != pa {
		panic(fmt.Sprintf("xlat %s: translation mismatch for va %#x: mechanism %#x, oracle %#x", name, va, pa, want))
	}
}

// Stats aggregates the counters a mechanism exposes. One flat struct is
// shared by all mechanisms so results serialize uniformly; fields unused by
// a mechanism stay zero.
type Stats struct {
	// Requests counts STLB-missing translations handled by the mechanism.
	Requests uint64
	// Walks counts hardware page walks issued (fallback or verification).
	Walks uint64
	// CacheHitsL2 and CacheHitsLLC count victima translations serviced by
	// a cache-resident TLB block at each level.
	CacheHitsL2, CacheHitsLLC uint64
	// TLBBlockInserts counts STLB-evicted entries accepted into a cache;
	// TLBBlockRejects counts evictions the underutilization predictor
	// declined to insert anywhere.
	TLBBlockInserts, TLBBlockRejects uint64
	// Speculations counts revelator table hits that issued a speculative
	// data fetch; SpecCorrect/SpecWrong split them by verification result.
	Speculations uint64
	// SpecCorrect and SpecWrong split resolved speculations by whether the
	// verification walk confirmed the predicted frame.
	SpecCorrect, SpecWrong uint64
	// Trainings counts revelator prediction-table fills after verified
	// walks.
	Trainings uint64
}

// Factory builds a mechanism instance bound to the given machine
// structures.
type Factory func(d Deps) (Mechanism, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
	shared     = map[string]bool{}
)

// Register makes a mechanism available by name (case-insensitive). It
// panics on duplicates, mirroring repl.Register.
func Register(name string, f Factory) {
	name = strings.ToLower(name)
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("xlat: duplicate mechanism " + name)
	}
	registry[name] = f
}

// MarkShared records that the named mechanism's translate path touches
// machine structures shared between cores (victima probes and fills the
// LLC). The intra-simulation parallel engine refuses such mechanisms and
// falls back to the serial scheduler; see CoreLocal.
func MarkShared(name string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	shared[strings.ToLower(name)] = true
}

// CoreLocal reports whether the named mechanism confines its hot-path
// state to per-core structures (the per-core L2, STLB and walker), making
// it safe to run on a core's own goroutine under the parallel engine. The
// empty name resolves to DefaultName; unknown names report false so
// callers fail safe into the serial scheduler.
func CoreLocal(name string) bool {
	if name == "" {
		name = DefaultName
	}
	name = strings.ToLower(name)
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, known := registry[name]
	return known && !shared[name]
}

// New builds the named mechanism bound to deps. The empty name resolves to
// DefaultName; unknown names return an error listing the registered set.
func New(name string, d Deps) (Mechanism, error) {
	if name == "" {
		name = DefaultName
	}
	registryMu.RLock()
	f, ok := registry[strings.ToLower(name)]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("xlat: unknown mechanism %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return f(d)
}

// MustNew is New that panics on error.
func MustNew(name string, d Deps) Mechanism {
	m, err := New(name, d)
	if err != nil {
		panic(err)
	}
	return m
}

// Names returns the registered mechanism names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Registered reports whether name (case-insensitive, empty meaning the
// default) resolves to a registered mechanism.
func Registered(name string) bool {
	if name == "" {
		return true
	}
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[strings.ToLower(name)]
	return ok
}
