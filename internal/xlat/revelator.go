package xlat

import (
	"fmt"

	"atcsim/internal/mem"
)

func init() { Register("revelator", newRevelator) }

const (
	// revTableBits sizes the direct-mapped prediction table (2^15 = 32768
	// entries, indexed by the VPN's low bits). Revelator's table is a
	// system-software-managed hash in memory, so its reach deliberately
	// exceeds the STLB's — coverage is bounded by aliasing, not capacity.
	revTableBits = 15
	// revTagBits is the partial tag width. Partial tags are what make the
	// mechanism speculative: two VPNs that share an index and a tag alias,
	// and the stale frame is fetched until the verification walk exposes
	// the misspeculation.
	revTagBits = 16
	// revSquashPenalty is the cycle cost of squashing a misspeculated
	// fetch and re-steering the pipeline to the verified translation.
	revSquashPenalty = 8
)

// revelator implements the Revelator mechanism (PAPERS.md): a direct-mapped,
// partially-tagged hash table predicts the physical frame of an
// STLB-missing page, and on a tag match the predicted replay data line is
// fetched speculatively — in parallel with the verification page walk that
// every miss still performs. Correct speculation hides the data fetch under
// the walk; a tag alias fetches the wrong line (cache pollution) and pays a
// squash penalty on top of the walk. The returned translation always comes
// from the verification walk, so misspeculation can never corrupt
// architectural state — the validate oracle checks exactly that.
type revelator struct {
	d  Deps
	st Stats
	// Direct-mapped table as parallel flat arrays (no maps on the hot
	// path, mirroring the PSC layout).
	valid  []bool
	tags   []uint16
	frames []mem.Addr
}

func newRevelator(d Deps) (Mechanism, error) {
	n := 1 << revTableBits
	return &revelator{
		d:      d,
		valid:  make([]bool, n),
		tags:   make([]uint16, n),
		frames: make([]mem.Addr, n),
	}, nil
}

func (r *revelator) Name() string { return "revelator" }

func (r *revelator) Translate(va, ip mem.Addr, cycle int64, walk WalkFn) (Outcome, error) {
	r.st.Requests++
	vpn := mem.PageNumber(va)
	idx := int(vpn) & (len(r.valid) - 1)
	tag := uint16(vpn>>revTableBits) & (1<<revTagBits - 1)

	var predicted mem.Addr
	speculated := r.valid[idx] && r.tags[idx] == tag
	if speculated {
		r.st.Speculations++
		predicted = r.frames[idx]
		if r.d.L2 != nil {
			// Speculative data fetch: start the predicted replay line
			// toward the L2C while the verification walk runs. On a
			// misprediction this line is pure pollution.
			r.d.L2.Prefetch(mem.LineAddr(predicted|mem.PageOffset(va)), cycle, true)
		}
	}

	out, err := walk(va, ip, cycle)
	if err != nil {
		return Outcome{}, err
	}
	r.st.Walks++

	if speculated {
		if !out.Huge && predicted == mem.PageBase(out.PA) {
			r.st.SpecCorrect++
		} else {
			r.st.SpecWrong++
			out.Ready += revSquashPenalty
		}
	}
	if !out.Huge {
		// Train on every verified 4KB walk (software refill in the real
		// system); huge pages bypass the table.
		r.st.Trainings++
		r.valid[idx] = true
		r.tags[idx] = tag
		r.frames[idx] = mem.PageBase(out.PA)
	}
	r.d.verify("revelator", va, out.PA)
	return out, nil
}

func (r *revelator) Stats() Stats { return r.st }

func (r *revelator) ResetStats() { r.st = Stats{} }

// CheckInvariants asserts the counters are internally consistent: every
// speculation resolved exactly one way, and table trainings never exceed
// verified walks.
func (r *revelator) CheckInvariants() error {
	if r.st.SpecCorrect+r.st.SpecWrong != r.st.Speculations {
		return fmt.Errorf("revelator: %d speculations but %d correct + %d wrong",
			r.st.Speculations, r.st.SpecCorrect, r.st.SpecWrong)
	}
	if r.st.Trainings > r.st.Walks {
		return fmt.Errorf("revelator: %d trainings exceed %d walks", r.st.Trainings, r.st.Walks)
	}
	if r.st.Walks > r.st.Requests {
		return fmt.Errorf("revelator: %d walks exceed %d requests", r.st.Walks, r.st.Requests)
	}
	return nil
}
