package xlat

import "atcsim/internal/mem"

func init() { Register("atp", newATP) }

// atp is the identity mechanism: every STLB miss goes straight to the
// hardware walker. The paper's ATP/TEMPO behavior lives in the cache and
// DRAM hooks the walker's leaf reads trigger, so this mechanism adds no
// state of its own and keeps the default path byte-identical to the
// pre-registry simulator.
type atp struct {
	d  Deps
	st Stats
}

func newATP(d Deps) (Mechanism, error) { return &atp{d: d}, nil }

func (a *atp) Name() string { return "atp" }

func (a *atp) Translate(va, ip mem.Addr, cycle int64, walk WalkFn) (Outcome, error) {
	a.st.Requests++
	out, err := walk(va, ip, cycle)
	if err != nil {
		return Outcome{}, err
	}
	a.st.Walks++
	a.d.verify("atp", va, out.PA)
	return out, nil
}

func (a *atp) Stats() Stats { return a.st }

func (a *atp) ResetStats() { a.st = Stats{} }
