package xlat

import (
	"fmt"

	"atcsim/internal/cache"
	"atcsim/internal/mem"
)

func init() {
	Register("victima", newVictima)
	// Victima's translate path probes and fills the shared LLC, so it must
	// run under the serial scheduler even on multi-core machines.
	MarkShared("victima")
}

// tlbLineBit tags the synthetic line-address namespace Victima's TLB blocks
// occupy inside the data caches. Physical line numbers fit in PhysBits-6 ≤
// 42 bits and 4KB VPNs in VABits-12 = 45 bits, so bit 50 can never collide
// with either: a TLB block and a data block never share a tag.
const tlbLineBit mem.Addr = 1 << 50

// tlbLine maps a VPN into the TLB-block line namespace. The set index a
// cache derives from the line is then a function of the VPN's low bits,
// spreading translations across sets like hardware Victima does.
func tlbLine(vpn mem.Addr) mem.Addr { return vpn | tlbLineBit }

// victima implements the Victima mechanism (PAPERS.md): translations
// evicted from the STLB are re-inserted as TLB blocks into underutilized
// L2C/LLC sets, and an STLB miss probes those blocks before paying for a
// page walk. The underutilization predictor lives in the cache (per-set
// saturating counters trained on dead evictions); this type owns the STLB
// eviction hook and the lookup ladder.
//
// Timing model: the cache-as-TLB probe runs in parallel with walk
// initiation, so a probe miss adds no latency; a probe hit returns at the
// servicing level's hit latency and squashes the walk.
type victima struct {
	d  Deps
	st Stats
	// now is the cycle of the translation currently being serviced. The
	// STLB eviction hook fires inside tlb.Insert, which carries no cycle,
	// so inserts are timestamped with the translation that displaced them.
	now int64
}

func newVictima(d Deps) (Mechanism, error) {
	if d.L2 == nil || d.LLC == nil {
		return nil, fmt.Errorf("xlat: victima requires L2 and LLC caches")
	}
	v := &victima{d: d}
	d.L2.EnableTLBBlocks()
	d.LLC.EnableTLBBlocks()
	if d.STLB != nil {
		d.STLB.SetEvictHook(v.onSTLBEvict)
	}
	return v, nil
}

func (v *victima) Name() string { return "victima" }

// onSTLBEvict observes a 4KB entry leaving the STLB and tries to park it in
// an underutilized cache set, preferring L2C (closer, per the Victima
// paper) and falling back to the LLC.
func (v *victima) onSTLBEvict(vpn, frame mem.Addr) {
	line := tlbLine(vpn)
	if v.d.L2.PredictUnderutilized(line) && v.d.L2.InsertTLBEntry(line, frame, v.now) {
		v.st.TLBBlockInserts++
		return
	}
	if v.d.LLC.PredictUnderutilized(line) && v.d.LLC.InsertTLBEntry(line, frame, v.now) {
		v.st.TLBBlockInserts++
		return
	}
	v.st.TLBBlockRejects++
}

func (v *victima) Translate(va, ip mem.Addr, cycle int64, walk WalkFn) (Outcome, error) {
	v.st.Requests++
	v.now = cycle
	line := tlbLine(mem.PageNumber(va))
	if frame, ready, ok := v.d.L2.LookupTLBEntry(line, cycle); ok {
		v.st.CacheHitsL2++
		pa := frame | mem.PageOffset(va)
		v.d.verify("victima", va, pa)
		return Outcome{PA: pa, Ready: ready, LeafSrc: mem.LvlL2, CacheHit: true}, nil
	}
	if frame, ready, ok := v.d.LLC.LookupTLBEntry(line, cycle); ok {
		v.st.CacheHitsLLC++
		pa := frame | mem.PageOffset(va)
		v.d.verify("victima", va, pa)
		return Outcome{PA: pa, Ready: ready, LeafSrc: mem.LvlLLC, CacheHit: true}, nil
	}
	out, err := walk(va, ip, cycle)
	if err != nil {
		return Outcome{}, err
	}
	v.st.Walks++
	v.now = out.Ready
	v.d.verify("victima", va, out.PA)
	return out, nil
}

func (v *victima) Stats() Stats { return v.st }

func (v *victima) ResetStats() { v.st = Stats{} }

// CheckInvariants verifies every cache-resident TLB block against the
// naive-walk oracle: a stale or corrupted block would silently translate to
// the wrong frame, so this is the mechanism's core safety property.
func (v *victima) CheckInvariants() error {
	if v.d.Oracle == nil {
		return nil
	}
	for _, c := range [...]*cache.Cache{v.d.L2, v.d.LLC} {
		err := c.VisitTLBEntries(func(line, frame mem.Addr) error {
			va := (line &^ tlbLineBit) << mem.PageBits
			want, err := v.d.Oracle(va)
			if err != nil {
				return fmt.Errorf("victima: TLB block %#x in %s: oracle walk failed: %w", line, c.Name(), err)
			}
			if mem.PageBase(want) != frame {
				return fmt.Errorf("victima: TLB block %#x in %s holds frame %#x, oracle says %#x",
					line, c.Name(), frame, mem.PageBase(want))
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}
