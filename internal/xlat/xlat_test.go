package xlat

import (
	"strings"
	"testing"

	"atcsim/internal/cache"
	"atcsim/internal/mem"
)

func TestNamesContainsBuiltins(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, want := range []string{"atp", "revelator", "victima"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() = %v, missing builtin %q", names, want)
		}
	}
}

func TestEmptyNameResolvesToDefault(t *testing.T) {
	m, err := New("", Deps{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != DefaultName {
		t.Errorf("New(\"\") built %q, want the default %q", m.Name(), DefaultName)
	}
	if !Registered("") {
		t.Error("Registered(\"\") = false, want true (empty means default)")
	}
}

func TestUnknownNameErrorListsMechanisms(t *testing.T) {
	_, err := New("tempo-turbo", Deps{})
	if err == nil {
		t.Fatal("unknown mechanism accepted")
	}
	for _, n := range Names() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("error %q does not list registered mechanism %q", err, n)
		}
	}
	if Registered("tempo-turbo") {
		t.Error("Registered accepted an unknown name")
	}
}

func TestNameIsCaseInsensitive(t *testing.T) {
	m, err := New("ATP", Deps{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "atp" {
		t.Errorf("New(\"ATP\").Name() = %q", m.Name())
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("atp", newATP)
}

func TestMustNewPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(unknown) did not panic")
		}
	}()
	MustNew("nope", Deps{})
}

func TestVictimaRequiresCaches(t *testing.T) {
	if _, err := New("victima", Deps{}); err == nil {
		t.Error("victima built without caches")
	}
}

// walkTo fabricates a WalkFn resolving every VA to the given frame after a
// fixed walk latency, letting mechanism unit tests drive Translate without a
// real walker.
func walkTo(frame mem.Addr, lat int64) WalkFn {
	return func(va, ip mem.Addr, cycle int64) (Outcome, error) {
		return Outcome{
			PA:      frame | mem.PageOffset(va),
			Ready:   cycle + lat,
			LeafSrc: mem.LvlDRAM,
			Steps:   4,
		}, nil
	}
}

func TestATPIsPurePassthrough(t *testing.T) {
	m := MustNew("atp", Deps{})
	out, err := m.Translate(0x1234, 0, 100, walkTo(0xabc000, 50))
	if err != nil {
		t.Fatal(err)
	}
	if out.PA != 0xabc234 || out.Ready != 150 {
		t.Errorf("atp altered the walk outcome: %+v", out)
	}
	st := m.Stats()
	if st.Requests != 1 || st.Walks != 1 {
		t.Errorf("stats = %+v", st)
	}
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Error("ResetStats left residue")
	}
}

// TestRevelatorAliasSquash drives two VPNs that collide in both index and
// partial tag: after training on the first, the second speculates the wrong
// frame, pays the squash penalty, and still returns the verified walk's PA.
func TestRevelatorAliasSquash(t *testing.T) {
	m := MustNew("revelator", Deps{})
	aliasStride := mem.Addr(1) << (mem.PageBits + revTableBits + revTagBits)
	vaA := mem.Addr(0x7) << mem.PageBits
	vaB := vaA + aliasStride // same index, same partial tag, different VPN

	if _, err := m.Translate(vaA, 0, 0, walkTo(0x111000, 40)); err != nil {
		t.Fatal(err)
	}
	out, err := m.Translate(vaB, 0, 1000, walkTo(0x222000, 40))
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Speculations != 1 || st.SpecWrong != 1 || st.SpecCorrect != 0 {
		t.Fatalf("alias not misspeculated: %+v", st)
	}
	if out.PA != 0x222000 {
		t.Errorf("misspeculation leaked into the returned PA: %#x", out.PA)
	}
	if out.Ready != 1000+40+revSquashPenalty {
		t.Errorf("squash penalty not charged: ready %d", out.Ready)
	}

	// Re-translating vaB now speculates correctly (table retrained).
	out, err = m.Translate(vaB, 0, 2000, walkTo(0x222000, 40))
	if err != nil {
		t.Fatal(err)
	}
	st = m.Stats()
	if st.SpecCorrect != 1 {
		t.Fatalf("retrained entry did not speculate correctly: %+v", st)
	}
	if out.Ready != 2000+40 {
		t.Errorf("correct speculation charged a penalty: ready %d", out.Ready)
	}
	if c, ok := m.(Checker); !ok {
		t.Fatal("revelator does not implement Checker")
	} else if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRevelatorHugePagesBypassTable(t *testing.T) {
	m := MustNew("revelator", Deps{})
	huge := func(va, ip mem.Addr, cycle int64) (Outcome, error) {
		return Outcome{PA: 0x4000000 | (va & (2<<20 - 1)), Ready: cycle + 30, Huge: true, Steps: 3}, nil
	}
	if _, err := m.Translate(0x9000, 0, 0, huge); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Trainings != 0 {
		t.Errorf("huge-page walk trained the table: %+v", st)
	}
}

// TestVerifyPanicsOnOracleMismatch pins the contract that makes speculation
// checkable: with CheckTranslations set, a mechanism returning a PA that
// disagrees with the radix-walk oracle must panic, not limp on.
func TestVerifyPanicsOnOracleMismatch(t *testing.T) {
	d := Deps{
		Oracle:            func(va mem.Addr) (mem.Addr, error) { return 0xdead000 | mem.PageOffset(va), nil },
		CheckTranslations: true,
	}
	defer func() {
		if recover() == nil {
			t.Error("oracle mismatch did not panic")
		}
	}()
	d.verify("test", 0x1234, 0xbeef234)
}

// flatLower terminates a test cache hierarchy with a fixed-latency level.
type flatLower struct{ lat int64 }

func (f *flatLower) Access(req *mem.Request, cycle int64) cache.Result {
	return cache.Result{Ready: cycle + f.lat, Src: mem.LvlDRAM}
}

func testCache(t *testing.T, name string, lvl mem.Level) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{
		Name: name, Level: lvl, SizeBytes: 16 << 10, Ways: 8,
		Latency: 10, MSHRs: 16, Policy: "lru",
	}, &flatLower{lat: 100})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestVictimaCacheTLBRoundTrip exercises the cache-as-TLB path directly:
// a parked entry is found by Translate without a walk, and the returned PA
// carries the page offset.
func TestVictimaCacheTLBRoundTrip(t *testing.T) {
	l2 := testCache(t, "L2C", mem.LvlL2)
	llc := testCache(t, "LLC", mem.LvlLLC)
	m, err := New("victima", Deps{L2: l2, LLC: llc})
	if err != nil {
		t.Fatal(err)
	}
	va := mem.Addr(0x42) << mem.PageBits
	frame := mem.Addr(0x9a000)
	if !l2.InsertTLBEntry(tlbLine(mem.PageNumber(va)), frame, 0) {
		t.Fatal("InsertTLBEntry refused")
	}
	walked := false
	out, err := m.Translate(va|0x88, 0, 100, func(_, _ mem.Addr, cycle int64) (Outcome, error) {
		walked = true
		return Outcome{PA: frame | 0x88, Ready: cycle + 99}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if walked {
		t.Error("cache-TLB hit still walked")
	}
	if out.PA != frame|0x88 || !out.CacheHit || out.LeafSrc != mem.LvlL2 {
		t.Errorf("outcome = %+v", out)
	}
	if st := m.Stats(); st.CacheHitsL2 != 1 || st.Walks != 0 {
		t.Errorf("stats = %+v", st)
	}
}
