package ptw

import (
	"fmt"

	"atcsim/internal/xlat"
)

// CheckInvariants audits the walker: the in-flight walk count must never
// exceed the configured number of hardware page walkers, and the
// paging-structure caches must hold their capacity bounds.
func (w *Walker) CheckInvariants() error {
	if len(w.slots) > w.maxSlot {
		return fmt.Errorf("ptw: %d walks in flight, walker has %d slots", len(w.slots), w.maxSlot)
	}
	return w.psc.CheckInvariants()
}

// CheckInvariants audits the MMU's TLBs, walker and — when the active
// translation mechanism has checkable state (xlat.Checker) — the mechanism
// itself, which is how victima's cache-resident TLB blocks and revelator's
// speculation accounting are verified against the naive-walk oracle.
func (m *MMU) CheckInvariants() error {
	if err := m.DTLB.CheckInvariants(); err != nil {
		return err
	}
	if m.ITLB != m.DTLB {
		if err := m.ITLB.CheckInvariants(); err != nil {
			return err
		}
	}
	if err := m.STLB.CheckInvariants(); err != nil {
		return err
	}
	if ch, ok := m.mech.(xlat.Checker); ok {
		if err := ch.CheckInvariants(); err != nil {
			return err
		}
	}
	return m.W.CheckInvariants()
}
