// Package ptw implements the hardware page-table walker and the MMU frontend
// (DTLB/ITLB → STLB → walker) of one core.
//
// A walk first probes the paging-structure caches to skip upper levels, then
// reads one PTE line per remaining level *through the data-cache hierarchy*
// (L1D → L2C → LLC → DRAM), sequentially — each level's read depends on the
// previous one. The leaf-level read carries the paper's extra walker state:
// the IsLeafLevel flag (mem.Request.Level == 1) and the replay line target
// (VA bits 11:6 combined with the translated frame), which is what lets ATP
// at the L2C/LLC and TEMPO at the DRAM controller prefetch the replay load.
package ptw

import (
	"fmt"

	"atcsim/internal/cache"
	"atcsim/internal/mem"
	"atcsim/internal/stats"
	"atcsim/internal/telemetry"
	"atcsim/internal/tlb"
	"atcsim/internal/vm"
	"atcsim/internal/xlat"
)

// WalkerStats aggregates walker activity.
type WalkerStats struct {
	Walks    uint64 // completed page walks
	PTEReads uint64 // PTE lines read through the cache hierarchy
	// StepsPerLevel counts PTE reads by level (index 1..5).
	StepsPerLevel [mem.PTLevels + 1]uint64
	// LeafService records which hierarchy level serviced leaf PTE reads
	// (the "T" series of the paper's Fig. 3).
	LeafService stats.ServiceDist
}

// DefaultConcurrentWalks is the number of page walks the hardware walker
// can have in flight (Sunny Cove ships two page walkers). This serializes
// bursts of STLB misses, which is what exposes replay-load latency at the
// ROB head (the paper's Fig. 1).
const DefaultConcurrentWalks = 2

// Walker walks the page table through the cache hierarchy.
type Walker struct {
	pt      *vm.PageTable
	psc     *tlb.PSC
	path    cache.Lower
	st      WalkerStats
	core    int
	slots   []int64 // completion times of in-flight walks
	maxSlot int
	tr      *telemetry.Tracer

	// Scratch state reused across walks: the step buffer handed to
	// vm.WalkInto and the PTE-read request issued into the cache path. A
	// walk issues its reads sequentially and each request is consumed by
	// the hierarchy before the next begins, so one of each suffices.
	steps []vm.WalkStep
	req   mem.Request
}

// NewWalker wires a walker to a page table, paging-structure caches and the
// cache path its PTE reads enter (normally the L1D).
func NewWalker(pt *vm.PageTable, psc *tlb.PSC, path cache.Lower, core int) (*Walker, error) {
	if pt == nil || psc == nil || path == nil {
		return nil, fmt.Errorf("ptw: nil dependency")
	}
	return &Walker{
		pt: pt, psc: psc, path: path, core: core,
		maxSlot: DefaultConcurrentWalks,
	}, nil
}

// SetConcurrentWalks overrides the number of in-flight walks (≥1).
func (w *Walker) SetConcurrentWalks(n int) {
	if n < 1 {
		n = 1
	}
	w.maxSlot = n
}

// admit returns the cycle at which a new walk may start, given the walker
// occupancy; completed walks are pruned lazily.
func (w *Walker) admit(cycle int64) int64 {
	live := w.slots[:0]
	for _, r := range w.slots {
		if r > cycle {
			live = append(live, r)
		}
	}
	w.slots = live
	if len(w.slots) < w.maxSlot {
		return cycle
	}
	minI := 0
	for i, r := range w.slots {
		if r < w.slots[minI] {
			minI = i
		}
	}
	start := w.slots[minI]
	w.slots[minI] = w.slots[len(w.slots)-1]
	w.slots = w.slots[:len(w.slots)-1]
	return start
}

// SetTracer attaches a request-lifecycle tracer (nil disables): each PTE
// read of a sampled walk becomes a span on the PTW lane.
func (w *Walker) SetTracer(t *telemetry.Tracer) { w.tr = t }

// Stats returns a snapshot of walker counters.
func (w *Walker) Stats() WalkerStats { return w.st }

// PSCStats returns a snapshot of the paging-structure-cache counters.
func (w *Walker) PSCStats() tlb.PSCStats { return w.psc.Stats() }

// ResetStats zeroes the counters.
func (w *Walker) ResetStats() { w.st = WalkerStats{}; w.psc.ResetStats() }

// WalkResult reports the outcome of a page-table walk.
type WalkResult struct {
	// PA is the translated physical address for the faulting access.
	PA mem.Addr
	// Ready is the cycle the translation becomes available.
	Ready int64
	// LeafSrc is the hierarchy level that serviced the leaf PTE read.
	LeafSrc mem.Level
	// Steps is the number of PTE reads performed.
	Steps int
	// Huge reports a 2MB mapping (leaf at level 2).
	Huge bool
}

// Walk translates va starting at the given cycle, reading PTEs through the
// cache path. ip is the triggering instruction's pointer (inherited by the
// PTE reads, which is exactly the signature aliasing the paper fixes).
func (w *Walker) Walk(va, ip mem.Addr, cycle int64) (WalkResult, error) {
	w.st.Walks++
	// A free page walker must be available.
	cycle = w.admit(cycle)
	start := w.psc.Lookup(va)
	cur := cycle + 1 // one-cycle parallel PSC lookup (Table I)
	if w.tr.Active() {
		w.tr.Instant("ptw", "psc", telemetry.LanePTW,
			telemetry.IArg("start_level", int64(start)))
	}

	steps, pa, err := w.pt.WalkInto(va, start, w.steps[:0])
	if err != nil {
		return WalkResult{}, err
	}
	w.steps = steps[:0]
	var leafSrc mem.Level
	for _, s := range steps {
		w.req = mem.Request{
			Addr:  s.PTEAddr,
			VAddr: va,
			IP:    ip,
			Kind:  mem.Translation,
			Level: s.Level,
			Leaf:  s.Leaf,
			Core:  w.core,
		}
		req := &w.req
		if s.Leaf {
			// The walker carries VA[11:6]; combined with the PTE's frame it
			// identifies the replay line (precomputed here — see DESIGN.md).
			req.ReplayTarget = mem.LineBase(pa)
		}
		stepStart := cur
		res := w.path.Access(req, cur)
		cur = res.Ready
		if w.tr.Active() {
			w.tr.SpanOn(w.core, "ptw", walkStepName(s.Level, s.Leaf), telemetry.LanePTW,
				stepStart, res.Ready, telemetry.SArg("src", res.Src.String()))
		}
		w.st.PTEReads++
		w.st.StepsPerLevel[s.Level]++
		if s.Leaf {
			leafSrc = res.Src
			w.st.LeafService.Record(res.Src)
		} else if frame, ok := w.pt.NodeFrame(va, s.Level); ok {
			// Reading a level-k PTE yields the pointer to the level-(k-1)
			// table: fill PSCL-k.
			w.psc.Insert(va, s.Level, frame)
		}
	}
	w.slots = append(w.slots, cur)
	return WalkResult{
		PA: pa, Ready: cur, LeafSrc: leafSrc, Steps: len(steps),
		Huge: w.pt.HugePages(),
	}, nil
}

// walkStepName labels one PTE read for the tracer; static strings so the
// enabled path does not format.
func walkStepName(level int, leaf bool) string {
	if leaf {
		if level == 2 {
			return "walk L2 (huge leaf)"
		}
		return "walk L1 (leaf)"
	}
	switch level {
	case 2:
		return "walk L2"
	case 3:
		return "walk L3"
	case 4:
		return "walk L4"
	case 5:
		return "walk L5"
	}
	return "walk"
}

// MMUStats aggregates per-core translation activity.
type MMUStats struct {
	// DTLBAccesses/DTLBMisses count data-side first-level lookups;
	// the ITLB pair counts instruction-side lookups.
	DTLBAccesses, DTLBMisses, ITLBAccesses, ITLBMisses uint64
	// STLBAccesses/STLBMisses count second-level lookups; an STLB miss is
	// what hands the translation to the xlat mechanism.
	STLBAccesses, STLBMisses uint64
}

// MMU is the translation frontend of one core: first-level TLBs, the
// unified STLB and the page-table walker. STLB misses are delegated to a
// pluggable xlat.Mechanism (the atp passthrough by default), which decides
// how the miss is serviced — a hardware walk, a cache-resident TLB block,
// or a speculative fetch racing a verification walk.
type MMU struct {
	// DTLB, ITLB and STLB are the core's TLBs (ITLB aliases DTLB when the
	// core models a unified first level).
	DTLB, ITLB, STLB *tlb.TLB
	// W is the hardware page-table walker.
	W      *Walker
	st     MMUStats
	tr     *telemetry.Tracer
	mech   xlat.Mechanism
	walkFn xlat.WalkFn // pre-bound walkOutcome: no per-translate closure
}

// NewMMU assembles an MMU with the default (atp) translation mechanism.
func NewMMU(dtlb, itlb, stlb *tlb.TLB, w *Walker) (*MMU, error) {
	if dtlb == nil || stlb == nil || w == nil {
		return nil, fmt.Errorf("ptw: MMU needs dtlb, stlb and walker")
	}
	if itlb == nil {
		itlb = dtlb
	}
	m := &MMU{DTLB: dtlb, ITLB: itlb, STLB: stlb, W: w}
	m.mech = xlat.MustNew(xlat.DefaultName, xlat.Deps{})
	m.walkFn = m.walkOutcome
	return m, nil
}

// SetMechanism replaces the translation mechanism servicing STLB misses.
// Call before simulation starts: mechanisms carry warm state.
func (m *MMU) SetMechanism(mech xlat.Mechanism) {
	if mech != nil {
		m.mech = mech
	}
}

// Mechanism returns the active translation mechanism.
func (m *MMU) Mechanism() xlat.Mechanism { return m.mech }

// walkOutcome adapts Walker.Walk to the xlat.WalkFn contract.
func (m *MMU) walkOutcome(va, ip mem.Addr, cycle int64) (xlat.Outcome, error) {
	res, err := m.W.Walk(va, ip, cycle)
	if err != nil {
		return xlat.Outcome{}, err
	}
	return xlat.Outcome{
		PA: res.PA, Ready: res.Ready, LeafSrc: res.LeafSrc,
		Steps: res.Steps, Huge: res.Huge,
	}, nil
}

// SetTracer attaches a request-lifecycle tracer to the MMU and propagates it
// to the TLBs and the walker (nil disables).
func (m *MMU) SetTracer(t *telemetry.Tracer) {
	m.tr = t
	m.DTLB.SetTracer(t)
	if m.ITLB != m.DTLB {
		m.ITLB.SetTracer(t)
	}
	m.STLB.SetTracer(t)
	m.W.SetTracer(t)
}

// Stats returns a snapshot of the MMU counters.
func (m *MMU) Stats() MMUStats { return m.st }

// ResetStats zeroes the MMU, TLB and walker counters.
func (m *MMU) ResetStats() {
	m.st = MMUStats{}
	m.DTLB.ResetStats()
	if m.ITLB != m.DTLB {
		m.ITLB.ResetStats()
	}
	m.STLB.ResetStats()
	m.W.ResetStats()
	m.mech.ResetStats()
}

// Translation is the outcome of an address translation.
type Translation struct {
	// PA is the physical address.
	PA mem.Addr
	// Ready is the cycle the physical address is available.
	Ready int64
	// STLBMiss reports that the translation walked the page table — the
	// subsequent data access is a *replay load* in the paper's taxonomy.
	STLBMiss bool
	// LeafSrc is the level that serviced the leaf PTE (valid iff STLBMiss).
	LeafSrc mem.Level
}

// Translate resolves va for a data access issued at the given cycle.
func (m *MMU) Translate(va, ip mem.Addr, cycle int64) (Translation, error) {
	return m.translate(m.DTLB, va, ip, cycle, &m.st.DTLBAccesses, &m.st.DTLBMisses)
}

// TranslateInstr resolves va for an instruction fetch.
func (m *MMU) TranslateInstr(va, ip mem.Addr, cycle int64) (Translation, error) {
	return m.translate(m.ITLB, va, ip, cycle, &m.st.ITLBAccesses, &m.st.ITLBMisses)
}

func (m *MMU) translate(l1 *tlb.TLB, va, ip mem.Addr, cycle int64, acc, miss *uint64) (Translation, error) {
	*acc++
	cur := cycle + l1.Latency()
	if frame, hit := l1.Lookup(va); hit {
		if m.tr.Active() {
			m.tr.Span("mmu", l1.Name(), telemetry.LaneMMU, cycle, cur,
				telemetry.SArg("result", "hit"))
		}
		return Translation{PA: frame | mem.PageOffset(va), Ready: cur}, nil
	}
	*miss++
	m.st.STLBAccesses++
	if m.tr.Active() {
		m.tr.Span("mmu", l1.Name(), telemetry.LaneMMU, cycle, cur,
			telemetry.SArg("result", "miss"))
	}
	stlbStart := cur
	cur += m.STLB.Latency()
	if frame, hit := m.STLB.Lookup(va); hit {
		if m.tr.Active() {
			m.tr.Span("mmu", m.STLB.Name(), telemetry.LaneMMU, stlbStart, cur,
				telemetry.SArg("result", "hit"))
		}
		l1.Insert(va, frame)
		return Translation{PA: frame | mem.PageOffset(va), Ready: cur}, nil
	}
	m.st.STLBMisses++
	if m.tr.Active() {
		m.tr.Span("mmu", m.STLB.Name(), telemetry.LaneMMU, stlbStart, cur,
			telemetry.SArg("result", "miss"))
	}
	res, err := m.mech.Translate(va, ip, cur, m.walkFn)
	if err != nil {
		return Translation{}, err
	}
	if m.tr.Active() {
		m.tr.Span("mmu", "page-walk", telemetry.LaneMMU, cur, res.Ready,
			telemetry.IArg("steps", int64(res.Steps)),
			telemetry.SArg("leaf_src", res.LeafSrc.String()))
	}
	if res.Huge {
		frame := mem.HugePageBase(res.PA)
		m.STLB.InsertHuge(va, frame)
		l1.InsertHuge(va, frame)
	} else {
		frame := mem.PageBase(res.PA)
		m.STLB.Insert(va, frame)
		l1.Insert(va, frame)
	}
	return Translation{PA: res.PA, Ready: res.Ready, STLBMiss: true, LeafSrc: res.LeafSrc}, nil
}

// Probe checks whether va currently translates without a walk (DTLB or STLB
// hit), without disturbing statistics or LRU state more than a real probe
// port would. It is used by cross-page prefetchers (IPCP) that consult the
// STLB before issuing.
func (m *MMU) Probe(va mem.Addr) (pa mem.Addr, ok bool) {
	if frame, hit := m.DTLB.Lookup(va); hit {
		return frame | mem.PageOffset(va), true
	}
	if frame, hit := m.STLB.Lookup(va); hit {
		return frame | mem.PageOffset(va), true
	}
	return 0, false
}

// Known translates va through the simulator's page table without touching
// any hardware state — the oracle used by TEMPO-style DRAM prefetching and
// by tests.
func (m *MMU) Known(va mem.Addr) (mem.Addr, error) {
	return m.W.pt.Translate(va)
}
