package ptw

import (
	"testing"

	"atcsim/internal/cache"
	"atcsim/internal/mem"
	"atcsim/internal/tlb"
	"atcsim/internal/vm"
)

type recordingPath struct {
	latency int64
	reqs    []mem.Request
	src     mem.Level
}

func (r *recordingPath) Access(req *mem.Request, cycle int64) cache.Result {
	r.reqs = append(r.reqs, *req)
	return cache.Result{Ready: cycle + r.latency, Src: r.src}
}

func setup(t *testing.T) (*vm.PageTable, *tlb.PSC, *recordingPath, *Walker) {
	t.Helper()
	alloc, err := vm.NewFrameAllocator(30, true)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := vm.NewPageTable(alloc)
	if err != nil {
		t.Fatal(err)
	}
	psc := tlb.NewPSC(tlb.DefaultPSCSizes())
	path := &recordingPath{latency: 10, src: mem.LvlL2}
	w, err := NewWalker(pt, psc, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	return pt, psc, path, w
}

func TestWalkerValidation(t *testing.T) {
	if _, err := NewWalker(nil, nil, nil, 0); err == nil {
		t.Error("nil deps accepted")
	}
}

func TestColdWalkReadsFiveLevels(t *testing.T) {
	pt, _, path, w := setup(t)
	va := mem.Addr(0x7000_1234)
	res, err := w.Walk(va, 0x400100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 5 || len(path.reqs) != 5 {
		t.Fatalf("steps = %d reqs = %d, want 5", res.Steps, len(path.reqs))
	}
	// Sequential: PSC lookup (1 cycle) + 5 reads of 10 cycles each.
	if res.Ready != 100+1+5*10 {
		t.Errorf("ready = %d, want 151", res.Ready)
	}
	want, _ := pt.Translate(va)
	if res.PA != want {
		t.Errorf("PA = %#x, want %#x", res.PA, want)
	}
	// Request fields: translation kind, descending levels, IP inherited.
	for i, r := range path.reqs {
		if r.Kind != mem.Translation || r.Level != 5-i || r.IP != 0x400100 {
			t.Errorf("req %d = kind %v level %d ip %#x", i, r.Kind, r.Level, r.IP)
		}
	}
	// Only the leaf carries the replay target: the line of the data PA.
	for i, r := range path.reqs {
		if r.Level == 1 {
			if r.ReplayTarget != mem.LineBase(want) {
				t.Errorf("leaf replay target = %#x, want %#x", r.ReplayTarget, mem.LineBase(want))
			}
		} else if r.ReplayTarget != 0 {
			t.Errorf("req %d (level %d) carries replay target", i, r.Level)
		}
	}
	if res.LeafSrc != mem.LvlL2 {
		t.Errorf("leaf src = %v", res.LeafSrc)
	}
	st := w.Stats()
	if st.Walks != 1 || st.PTEReads != 5 || st.StepsPerLevel[1] != 1 || st.StepsPerLevel[5] != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.LeafService.Count[mem.LvlL2] != 1 {
		t.Error("leaf service distribution not recorded")
	}
}

func TestWarmWalkUsesPSC(t *testing.T) {
	_, _, path, w := setup(t)
	va := mem.Addr(0x7000_1234)
	w.Walk(va, 1, 0)
	path.reqs = nil
	// Second walk to the same page: PSCL2 hit → leaf read only.
	res, _ := w.Walk(va, 1, 1000)
	if len(path.reqs) != 1 || path.reqs[0].Level != 1 {
		t.Fatalf("warm walk reqs = %v", path.reqs)
	}
	if res.Ready != 1000+1+10 {
		t.Errorf("warm ready = %d", res.Ready)
	}
	// A neighbouring page in the same 2MB region also walks leaf-only.
	path.reqs = nil
	w.Walk(va+mem.PageSize, 1, 2000)
	if len(path.reqs) != 1 {
		t.Errorf("neighbour page reqs = %d, want 1 (PSCL2 shared)", len(path.reqs))
	}
	// A page in a different level-4 region still hits PSCL5: 4 reads.
	path.reqs = nil
	w.Walk(va+1<<40, 1, 3000)
	if len(path.reqs) != 4 {
		t.Errorf("level-4-far page reqs = %d, want 4 (PSCL5 hit)", len(path.reqs))
	}
	// A page in a different level-5 region misses every PSC level: 5 reads.
	path.reqs = nil
	w.Walk(va+1<<48, 1, 4000)
	if len(path.reqs) != 5 {
		t.Errorf("far page reqs = %d, want 5", len(path.reqs))
	}
}

func newMMU(t *testing.T, w *Walker) *MMU {
	t.Helper()
	dtlb := tlb.MustNew(tlb.Config{Name: "dtlb", Entries: 64, Ways: 4, Latency: 1})
	itlb := tlb.MustNew(tlb.Config{Name: "itlb", Entries: 64, Ways: 4, Latency: 1})
	stlb := tlb.MustNew(tlb.Config{Name: "stlb", Entries: 2048, Ways: 16, Latency: 8})
	m, err := NewMMU(dtlb, itlb, stlb, w)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMMUMissHitFlow(t *testing.T) {
	pt, _, _, w := setup(t)
	m := newMMU(t, w)
	va := mem.Addr(0x9000_4321)

	// Cold: DTLB miss, STLB miss, full walk → replay.
	tr, err := m.Translate(va, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.STLBMiss {
		t.Fatal("cold translate did not walk")
	}
	want, _ := pt.Translate(va)
	if tr.PA != want {
		t.Errorf("PA = %#x, want %#x", tr.PA, want)
	}
	// Walk latency: 1 (DTLB) + 8 (STLB) + 1 (PSC) + 5*10.
	if tr.Ready != 0+1+8+1+50 {
		t.Errorf("cold ready = %d, want 60", tr.Ready)
	}

	// Warm: DTLB hit, 1 cycle.
	tr2, _ := m.Translate(va+8, 7, 100)
	if tr2.STLBMiss || tr2.Ready != 101 {
		t.Errorf("warm = %+v", tr2)
	}
	if mem.PageBase(tr2.PA) != mem.PageBase(want) {
		t.Error("warm PA differs")
	}

	st := m.Stats()
	if st.DTLBAccesses != 2 || st.DTLBMisses != 1 || st.STLBMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMMUSTLBHitFillsDTLB(t *testing.T) {
	_, _, _, w := setup(t)
	// Tiny DTLB (1 set × 2 ways per page set) to force DTLB evictions.
	dtlb := tlb.MustNew(tlb.Config{Name: "dtlb", Entries: 2, Ways: 2, Latency: 1})
	stlb := tlb.MustNew(tlb.Config{Name: "stlb", Entries: 2048, Ways: 16, Latency: 8})
	m, _ := NewMMU(dtlb, nil, stlb, w)

	va := mem.Addr(0x1000_0000)
	m.Translate(va, 1, 0) // walk, fills both
	// Thrash the DTLB.
	m.Translate(va+1*mem.PageSize, 1, 100)
	m.Translate(va+2*mem.PageSize, 1, 200)
	// Original page: DTLB miss but STLB hit; latency 1+8, no walk.
	tr, _ := m.Translate(va, 1, 300)
	if tr.STLBMiss {
		t.Error("STLB-hit translation flagged as replay")
	}
	if tr.Ready != 300+9 {
		t.Errorf("STLB-hit ready = %d, want 309", tr.Ready)
	}
}

func TestMMUInstrPath(t *testing.T) {
	_, _, _, w := setup(t)
	m := newMMU(t, w)
	tr, err := m.TranslateInstr(0x40_0000, 0x40_0000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.STLBMiss {
		t.Error("cold ifetch should walk")
	}
	st := m.Stats()
	if st.ITLBAccesses != 1 || st.ITLBMisses != 1 || st.DTLBAccesses != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProbeAndKnown(t *testing.T) {
	pt, _, _, w := setup(t)
	m := newMMU(t, w)
	va := mem.Addr(0x2222_0000)
	if _, ok := m.Probe(va); ok {
		t.Error("probe hit before any translation")
	}
	m.Translate(va, 1, 0)
	pa, ok := m.Probe(va + 64)
	if !ok {
		t.Fatal("probe missed after walk")
	}
	want, _ := pt.Translate(va + 64)
	if pa != want {
		t.Errorf("probe PA = %#x, want %#x", pa, want)
	}
	known, err := m.Known(va + 128)
	if err != nil {
		t.Fatal(err)
	}
	want2, _ := pt.Translate(va + 128)
	if known != want2 {
		t.Errorf("Known = %#x, want %#x", known, want2)
	}
}

func TestResetStats(t *testing.T) {
	_, _, _, w := setup(t)
	m := newMMU(t, w)
	m.Translate(0x123000, 1, 0)
	m.ResetStats()
	if m.Stats().DTLBAccesses != 0 || w.Stats().Walks != 0 {
		t.Error("ResetStats incomplete")
	}
}

func TestWalkerConcurrencyLimit(t *testing.T) {
	_, _, path, w := setup(t)
	path.latency = 100
	w.SetConcurrentWalks(1)
	// Prime the PSCs so each walk is a single leaf read of 100 cycles.
	va := mem.Addr(0x5000_0000)
	w.Walk(va, 1, 0)

	// Two walks to different pages in the same region issued back-to-back:
	// with one walker the second must queue behind the first.
	r1, _ := w.Walk(va+1*mem.PageSize, 1, 10_000)
	r2, _ := w.Walk(va+2*mem.PageSize, 1, 10_000)
	if r2.Ready < r1.Ready+100 {
		t.Errorf("second walk ready %d, want >= %d (serialized)", r2.Ready, r1.Ready+100)
	}

	// With two walkers they overlap.
	w.SetConcurrentWalks(2)
	r3, _ := w.Walk(va+3*mem.PageSize, 1, 20_000)
	r4, _ := w.Walk(va+4*mem.PageSize, 1, 20_000)
	if r4.Ready != r3.Ready {
		t.Errorf("parallel walks ready %d vs %d, want equal", r3.Ready, r4.Ready)
	}
}

func TestSetConcurrentWalksFloor(t *testing.T) {
	_, _, _, w := setup(t)
	w.SetConcurrentWalks(0) // clamps to 1
	if _, err := w.Walk(0x1000, 1, 0); err != nil {
		t.Fatal(err)
	}
}
