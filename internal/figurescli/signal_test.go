package figurescli

import (
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncWriter is a goroutine-safe writer: Main runs on its own goroutine in
// the signal tests while the test polls the accumulated output.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// interruptSweep starts Main on a goroutine, waits for the first completed
// run (which guarantees signal.Notify is installed — signalling earlier
// would hit the default disposition and kill the test process), then sends
// sig to our own process and waits for Main to drain and return.
func interruptSweep(t *testing.T, sig syscall.Signal, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	out, errw := &syncWriter{}, &syncWriter{}
	done := make(chan int, 1)
	go func() {
		c, _ := Main(args, out, errw)
		done <- c
	}()
	deadline := time.Now().Add(60 * time.Second)
	for !strings.Contains(errw.String(), `msg="run complete"`) {
		if time.Now().After(deadline) {
			t.Fatalf("no run completed within a minute:\n%s", errw.String())
		}
		select {
		case c := <-done:
			t.Fatalf("sweep finished (code %d) before the first run-complete line:\n%s", c, errw.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if err := syscall.Kill(os.Getpid(), sig); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-done:
		return c, out.String(), errw.String()
	case <-time.After(60 * time.Second):
		t.Fatalf("sweep did not drain after %v:\n%s", sig, errw.String())
		return 0, "", ""
	}
}

var sweepCompleteRe = regexp.MustCompile(`msg="sweep complete" runs=(\d+) disk_hits=(\d+)`)

// sweepCounts parses the -progress summary line from stderr.
func sweepCounts(t *testing.T, stderr string) (runs, diskHits int) {
	t.Helper()
	m := sweepCompleteRe.FindStringSubmatch(stderr)
	if m == nil {
		t.Fatalf("no sweep-complete line in stderr:\n%s", stderr)
	}
	runs, _ = strconv.Atoi(m[1])
	diskHits, _ = strconv.Atoi(m[2])
	return runs, diskHits
}

// TestSignalDrainAndResume is the graceful-shutdown contract for both
// SIGINT and SIGTERM (parity): the first signal drains (exit 130, FAILED
// markers for the experiments it cut short, a resume hint naming the cache
// directory), and re-running with the same -cache-dir resumes from the
// completed results — the resumed report is byte-identical to an
// uninterrupted baseline, and the interrupted run's computed count comes
// back entirely as disk hits.
func TestSignalDrainAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full quick-scale sweeps")
	}
	// Uninterrupted baseline: the reference report and total run count.
	baseDir := t.TempDir()
	baseCode, baseErrMsg, baseOut, baseErr := run(t,
		"-scale", "quick", "-jobs", "4", "-cache-dir", baseDir, "-progress")
	if baseCode != exitOK {
		t.Fatalf("baseline sweep: code = %d, err = %q\n%s", baseCode, baseErrMsg, baseErr)
	}
	baseRuns, baseHits := sweepCounts(t, baseErr)
	if baseRuns == 0 || baseHits != 0 {
		t.Fatalf("baseline counts runs=%d disk_hits=%d; want computed-only", baseRuns, baseHits)
	}

	for _, tc := range []struct {
		name string
		sig  syscall.Signal
	}{
		{"SIGINT", syscall.SIGINT},
		{"SIGTERM", syscall.SIGTERM},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			code, stdout, stderr := interruptSweep(t, tc.sig,
				"-scale", "quick", "-jobs", "1", "-cache-dir", dir, "-progress")
			if code != exitInterrupted {
				t.Fatalf("interrupted sweep: code = %d, want %d\n%s", code, exitInterrupted, stderr)
			}
			for _, want := range []string{
				`msg="signal received`,
				"signal=" + tc.sig.String(),
				"re-run with the same -cache-dir to resume from completed results",
				"interrupted:",
			} {
				if !strings.Contains(stderr, want) {
					t.Errorf("stderr lacks %q:\n%s", want, stderr)
				}
			}
			if !strings.Contains(stdout, "FAILED") {
				t.Errorf("interrupted report has no FAILED markers:\n%s", stdout)
			}
			intRuns, _ := sweepCounts(t, stderr)
			if intRuns == 0 {
				t.Error("interrupted sweep completed zero runs; nothing to resume from")
			}
			if intRuns >= baseRuns {
				t.Errorf("interrupted sweep computed %d of %d runs; signal landed too late", intRuns, baseRuns)
			}

			// Resume on the same cache directory: every result computed
			// before the signal comes back from disk, only the remainder is
			// recomputed, and the rendered report matches the baseline
			// byte for byte.
			resCode, resErrMsg, resOut, resErr := run(t,
				"-scale", "quick", "-jobs", "4", "-cache-dir", dir, "-progress")
			if resCode != exitOK {
				t.Fatalf("resumed sweep: code = %d, err = %q\n%s", resCode, resErrMsg, resErr)
			}
			resRuns, resHits := sweepCounts(t, resErr)
			if resHits != intRuns {
				t.Errorf("resume loaded %d results from disk; interrupted run computed %d", resHits, intRuns)
			}
			if resRuns+resHits != baseRuns {
				t.Errorf("resume accounting: %d computed + %d disk hits != %d baseline runs",
					resRuns, resHits, baseRuns)
			}
			if resOut != baseOut {
				t.Errorf("resumed report differs from uninterrupted baseline:\n--- baseline ---\n%s\n--- resumed ---\n%s",
					baseOut, resOut)
			}
		})
	}
}

// TestSignalWithoutCacheDirWarnsResultsLost pins the other half of the
// resume hint: an interrupted sweep with no -cache-dir still drains and
// exits 130, but warns that completed results are not resumable.
func TestSignalWithoutCacheDirWarnsResultsLost(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a partial quick-scale sweep")
	}
	code, _, stderr := interruptSweep(t, syscall.SIGTERM,
		"-scale", "quick", "-jobs", "1", "-progress")
	if code != exitInterrupted {
		t.Fatalf("code = %d, want %d\n%s", code, exitInterrupted, stderr)
	}
	if !strings.Contains(stderr, "no -cache-dir: completed results will be lost") {
		t.Errorf("stderr lacks the results-lost warning:\n%s", stderr)
	}
}
