// Package figurescli implements cmd/figures: flag parsing and validation,
// graceful SIGINT/SIGTERM shutdown, and report rendering (text, markdown,
// CSV) including FAILED(reason) markers for contained per-point failures.
// It lives outside cmd/ so the full pipeline — including exit codes and
// degraded output — is unit-testable without spawning a process.
package figurescli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"atcsim/internal/experiments"
	"atcsim/internal/metrics"
	"atcsim/internal/system"
	"atcsim/internal/xlat"
)

// shutdownGrace bounds how long a sweep may keep draining after the first
// SIGINT/SIGTERM before the process force-exits. In-flight simulations
// usually finish well inside it because every not-yet-started run fails
// fast once the sweep context is canceled.
const shutdownGrace = 30 * time.Second

// Exit codes: 0 success, 1 completed with FAILED experiments, 2 usage
// error, 130 interrupted by signal (128+SIGINT, the shell convention).
const (
	exitOK          = 0
	exitFailed      = 1
	exitUsage       = 2
	exitInterrupted = 130
)

// Main runs the figures CLI against args (without the program name),
// writing reports to stdout and diagnostics to stderr. It returns the
// process exit code and, for usage errors, the error to print.
func Main(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		id          = fs.String("id", "", "run a single experiment (see -list)")
		list        = fs.Bool("list", false, "list experiment identifiers")
		listMechs   = fs.Bool("list-mechanisms", false, "list translation-mechanism names (the mechanisms experiment's axis)")
		scale       = fs.String("scale", "full", "experiment scale: full or quick")
		timing      = fs.String("timing", "", "hierarchy timing model for every run: "+strings.Join(system.TimingModels(), ", ")+" (empty = analytic)")
		markdown    = fs.Bool("markdown", false, "emit markdown instead of plain text")
		csvDir      = fs.String("csv", "", "also write one CSV file per experiment into this directory")
		progress    = fs.Bool("progress", false, "report each simulation run on stderr as the sweep progresses")
		jobs        = fs.Int("jobs", 0, "concurrent simulations (0 = number of CPUs)")
		simJobs     = fs.Int("sim-jobs", 1, "worker goroutines per eligible multi-core simulation (0 = number of CPUs); output is byte-identical for any value")
		cacheDir    = fs.String("cache-dir", "", "persist simulation results here and reuse them on later runs")
		runTimeout  = fs.Duration("run-timeout", 0, "abandon any single simulation after this long (0 = no limit)")
		sweepBudget = fs.Duration("sweep-budget", 0, "stop starting new simulations after this long (0 = no limit)")
		logLevel    = fs.String("log-level", "info", "stderr log verbosity: debug, info, warn or error")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /healthz, /runs and /flightrecorder on this host:port (port 0 picks one)")
		metricsLog  = fs.String("metrics-log", "", "append a JSONL metrics snapshot to this file every second")
		flightRec   = fs.String("flight-recorder", "", "dump the flight-recorder post-mortem here on permanent run failures (default: <cache-dir>/flight-recorder.jsonl)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage, nil // the flag package already printed the problem
	}
	if args := fs.Args(); len(args) > 0 {
		return exitUsage, fmt.Errorf("unexpected positional arguments %q (all options are flags; see -h)", args)
	}

	// Validate the time budgets up front: an explicitly-set zero or negative
	// duration is a typo (e.g. "-run-timeout 2" parsing as 2ns would be
	// caught by flag, but "-run-timeout 0s" or "-run-timeout -1m" would
	// silently disable the limit), and a misconfigured budget should fail in
	// milliseconds, not after minutes of simulation.
	var flagErr error
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "run-timeout":
			if *runTimeout <= 0 {
				flagErr = fmt.Errorf("-run-timeout must be positive, got %v", *runTimeout)
			}
		case "sweep-budget":
			if *sweepBudget <= 0 {
				flagErr = fmt.Errorf("-sweep-budget must be positive, got %v", *sweepBudget)
			}
		}
	})
	if flagErr != nil {
		return exitUsage, flagErr
	}

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		return exitUsage, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", *logLevel)
	}
	log := newLogger(stderr, lvl)

	if *list {
		fmt.Fprintln(stdout, strings.Join(experiments.IDs(), "\n"))
		return exitOK, nil
	}
	if *listMechs {
		fmt.Fprintln(stdout, strings.Join(xlat.Names(), "\n"))
		return exitOK, nil
	}

	var sc experiments.Scale
	switch strings.ToLower(*scale) {
	case "full":
		sc = experiments.Full()
	case "quick":
		sc = experiments.Quick()
	default:
		return exitUsage, fmt.Errorf("unknown scale %q", *scale)
	}
	if !system.TimingRegistered(*timing) {
		return exitUsage, fmt.Errorf("unknown timing model %q (have %s)",
			*timing, strings.Join(system.TimingModels(), ", "))
	}
	sc.Timing = *timing
	if *simJobs < 0 {
		return exitUsage, fmt.Errorf("-sim-jobs must be non-negative, got %d", *simJobs)
	}
	// Default to serial intra-simulation execution: the sweep-level -jobs
	// fan-out already saturates the CPUs, so per-simulation workers would
	// only add scheduling overhead. -sim-jobs 0 is for profiling a single
	// experiment (-id with -jobs 1), where intra-simulation parallelism is
	// the only parallelism available.
	sc.SimJobs = *simJobs

	// Validate the CSV target before the sweep: a bad path should fail in
	// milliseconds, not after minutes of simulation.
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return exitUsage, fmt.Errorf("cannot create -csv directory %q: %v", *csvDir, err)
		}
	}

	// Observability: the registry backs /metrics, JSONL snapshots and the
	// expvar export; the flight recorder collects structured events and is
	// dumped on permanent run failures.
	var reg *metrics.Registry
	if *metricsAddr != "" || *metricsLog != "" {
		reg = metrics.New()
	}
	recSink := *flightRec
	if recSink == "" && *cacheDir != "" {
		recSink = filepath.Join(*cacheDir, "flight-recorder.jsonl")
	}
	var rec *metrics.FlightRecorder
	if recSink != "" || reg != nil {
		rec = metrics.NewFlightRecorder(0)
		rec.SetSink(recSink)
	}

	runner, err := experiments.NewRunnerWith(sc, experiments.Options{
		Jobs:        *jobs,
		CacheDir:    *cacheDir,
		RunTimeout:  *runTimeout,
		SweepBudget: *sweepBudget,
		Metrics:     reg,
		Recorder:    rec,
	})
	if err != nil {
		return exitUsage, fmt.Errorf("cannot open -cache-dir %q: %v", *cacheDir, err)
	}
	defer runner.Cancel()
	// Per-run lines carry run-key-scoped attributes; -progress promotes them
	// from debug to info. Simulations finish on many goroutines; OnRun calls
	// are serialized by the runner, so each line prints whole.
	runLevel := slog.LevelDebug
	if *progress {
		runLevel = slog.LevelInfo
	}
	runner.OnRun = func(key, name string, runs int) {
		log.Log(context.Background(), runLevel, "run complete",
			"n", runs, "key", key, "workload", name)
	}

	if reg != nil {
		metrics.PublishExpvar("atcsim", reg)
	}
	if *metricsAddr != "" {
		srv := &metrics.Server{
			Registry: reg,
			Runs:     runner.RunsTable(),
			Recorder: rec,
			Healthy:  func() bool { return !runner.Interrupted() },
		}
		addr, err := srv.Serve(*metricsAddr)
		if err != nil {
			return exitUsage, err
		}
		log.Info("metrics endpoint listening", "addr", addr,
			"endpoints", "/metrics /healthz /runs /flightrecorder")
	}
	if *metricsLog != "" {
		f, err := os.Create(*metricsLog)
		if err != nil {
			return exitUsage, fmt.Errorf("cannot create -metrics-log %q: %v", *metricsLog, err)
		}
		defer f.Close()
		stop := make(chan struct{})
		defer close(stop)
		go snapshotLoop(reg, f, stop, func(err error) {
			log.Warn("metrics log write failed", "err", err)
		})
	}

	// Graceful shutdown: the first SIGINT/SIGTERM cancels the sweep — every
	// in-flight simulation finishes (and lands in the cache) while every
	// not-yet-started run fails fast — and the completed reports are still
	// rendered below, with FAILED markers. A second signal, or a sweep that
	// is still draining when the grace period expires, force-exits.
	var interrupted atomic.Bool
	done := make(chan struct{})
	defer close(done)
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		select {
		case s := <-sigc:
			interrupted.Store(true)
			runner.Cancel()
			rec.Recordf(metrics.EventSweepCancel, "", 0, "%v", s)
			log.Warn("signal received — finishing in-flight simulations and flushing completed results",
				"signal", s.String())
			if *cacheDir != "" {
				log.Warn("re-run with the same -cache-dir to resume from completed results",
					"cache_dir", *cacheDir)
			} else {
				log.Warn("no -cache-dir: completed results will be lost; use -cache-dir to make sweeps resumable")
			}
		case <-done:
			return
		}
		select {
		case <-sigc:
			log.Error("second signal — exiting immediately")
		case <-time.After(shutdownGrace):
			log.Error("still draining past the grace period — exiting", "grace", shutdownGrace.String())
		case <-done:
			return
		}
		_ = rec.DumpToSink()
		os.Exit(exitInterrupted)
	}()

	var reports []*experiments.Report
	if *id != "" {
		rep, err := experiments.ByIDWith(runner, *id)
		if err != nil {
			return exitUsage, err
		}
		reports = []*experiments.Report{rep}
	} else {
		reports = experiments.AllWith(runner)
	}
	if *progress {
		log.Info("sweep complete", "runs", runner.Runs(), "disk_hits", runner.DiskHits())
		log.Info("sweep health", healthAttrs(runner)...)
	}
	if err := runner.CacheErr(); err != nil {
		log.Warn("result cache degraded", "err", err.Error())
	}

	failed := 0
	for _, rep := range reports {
		if rep.Failed != "" {
			failed++
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, rep.ID+".csv")
			var content string
			switch {
			case rep.Failed != "":
				// A stable machine-readable marker instead of silently
				// omitting the file: downstream plotting sees the point
				// exists and failed, with the reason quoted as one CSV field.
				content = fmt.Sprintf("status,reason\nFAILED,%q\n", rep.Failed)
			case rep.Table != nil:
				content = rep.Table.CSV()
			}
			if content != "" {
				if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
					return exitFailed, err
				}
			}
		}
		if *markdown {
			if rep.Failed != "" {
				fmt.Fprintf(stdout, "### %s — FAILED\n\n`FAILED(%s)`\n\n", rep.ID, rep.Failed)
				continue
			}
			fmt.Fprintf(stdout, "### %s — %s\n\n```\n%s```\n\n", rep.ID, rep.Title, rep.Table)
			for _, n := range rep.Notes {
				fmt.Fprintf(stdout, "> %s\n", n)
			}
			fmt.Fprintln(stdout)
		} else {
			fmt.Fprintln(stdout, rep)
		}
	}

	// Persist the complete event log (atomic rewrite): a post-mortem of the
	// whole sweep beats one truncated at the last failure.
	_ = rec.DumpToSink()

	switch {
	case interrupted.Load():
		log.Warn(fmt.Sprintf("interrupted: %d/%d experiments incomplete", failed, len(reports)))
		return exitInterrupted, nil
	case failed > 0:
		log.Error(fmt.Sprintf("%d/%d experiments FAILED", failed, len(reports)))
		return exitFailed, nil
	}
	return exitOK, nil
}

// newLogger builds the CLI's structured stderr logger: slog's text handler
// with the wall-clock timestamp stripped, so log output is stable enough to
// assert on in tests and diff between runs.
func newLogger(w io.Writer, lvl slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		Level: lvl,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	}))
}

// healthAttrs renders the sweep health counters as slog attributes.
func healthAttrs(r *experiments.Runner) []any {
	h := r.Health()
	return []any{
		"runs", h.Runs.Load(), "retries", h.Retries.Load(),
		"failures", h.Failures.Load(), "panics", h.Panics.Load(),
		"timeouts", h.Timeouts.Load(), "canceled", h.Canceled.Load(),
		"disk_hits", h.DiskHits.Load(), "disk_errors", h.DiskErrors.Load(),
		"quarantined", h.Quarantined.Load(),
	}
}

// snapshotLoop appends one JSONL metrics snapshot to w every second until
// stop closes, then writes a final snapshot so even sub-second sweeps leave
// a usable log.
func snapshotLoop(reg *metrics.Registry, w io.Writer, stop <-chan struct{}, onErr func(error)) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	seq := 0
	for {
		select {
		case <-tick.C:
			if err := reg.WriteJSONLSnapshot(w, seq); err != nil {
				onErr(err)
				return
			}
			seq++
		case <-stop:
			if err := reg.WriteJSONLSnapshot(w, seq); err != nil {
				onErr(err)
			}
			return
		}
	}
}
