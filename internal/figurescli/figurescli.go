// Package figurescli implements cmd/figures: flag parsing and validation,
// graceful SIGINT/SIGTERM shutdown, and report rendering (text, markdown,
// CSV) including FAILED(reason) markers for contained per-point failures.
// It lives outside cmd/ so the full pipeline — including exit codes and
// degraded output — is unit-testable without spawning a process.
package figurescli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"atcsim/internal/experiments"
)

// shutdownGrace bounds how long a sweep may keep draining after the first
// SIGINT/SIGTERM before the process force-exits. In-flight simulations
// usually finish well inside it because every not-yet-started run fails
// fast once the sweep context is canceled.
const shutdownGrace = 30 * time.Second

// Exit codes: 0 success, 1 completed with FAILED experiments, 2 usage
// error, 130 interrupted by signal (128+SIGINT, the shell convention).
const (
	exitOK          = 0
	exitFailed      = 1
	exitUsage       = 2
	exitInterrupted = 130
)

// Main runs the figures CLI against args (without the program name),
// writing reports to stdout and diagnostics to stderr. It returns the
// process exit code and, for usage errors, the error to print.
func Main(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		id          = fs.String("id", "", "run a single experiment (see -list)")
		list        = fs.Bool("list", false, "list experiment identifiers")
		scale       = fs.String("scale", "full", "experiment scale: full or quick")
		markdown    = fs.Bool("markdown", false, "emit markdown instead of plain text")
		csvDir      = fs.String("csv", "", "also write one CSV file per experiment into this directory")
		progress    = fs.Bool("progress", false, "report each simulation run on stderr as the sweep progresses")
		jobs        = fs.Int("jobs", 0, "concurrent simulations (0 = number of CPUs)")
		cacheDir    = fs.String("cache-dir", "", "persist simulation results here and reuse them on later runs")
		runTimeout  = fs.Duration("run-timeout", 0, "abandon any single simulation after this long (0 = no limit)")
		sweepBudget = fs.Duration("sweep-budget", 0, "stop starting new simulations after this long (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage, nil // the flag package already printed the problem
	}
	if args := fs.Args(); len(args) > 0 {
		return exitUsage, fmt.Errorf("unexpected positional arguments %q (all options are flags; see -h)", args)
	}

	// Validate the time budgets up front: an explicitly-set zero or negative
	// duration is a typo (e.g. "-run-timeout 2" parsing as 2ns would be
	// caught by flag, but "-run-timeout 0s" or "-run-timeout -1m" would
	// silently disable the limit), and a misconfigured budget should fail in
	// milliseconds, not after minutes of simulation.
	var flagErr error
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "run-timeout":
			if *runTimeout <= 0 {
				flagErr = fmt.Errorf("-run-timeout must be positive, got %v", *runTimeout)
			}
		case "sweep-budget":
			if *sweepBudget <= 0 {
				flagErr = fmt.Errorf("-sweep-budget must be positive, got %v", *sweepBudget)
			}
		}
	})
	if flagErr != nil {
		return exitUsage, flagErr
	}

	if *list {
		fmt.Fprintln(stdout, strings.Join(experiments.IDs(), "\n"))
		return exitOK, nil
	}

	var sc experiments.Scale
	switch strings.ToLower(*scale) {
	case "full":
		sc = experiments.Full()
	case "quick":
		sc = experiments.Quick()
	default:
		return exitUsage, fmt.Errorf("unknown scale %q", *scale)
	}

	// Validate the CSV target before the sweep: a bad path should fail in
	// milliseconds, not after minutes of simulation.
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return exitUsage, fmt.Errorf("cannot create -csv directory %q: %v", *csvDir, err)
		}
	}

	runner, err := experiments.NewRunnerWith(sc, experiments.Options{
		Jobs:        *jobs,
		CacheDir:    *cacheDir,
		RunTimeout:  *runTimeout,
		SweepBudget: *sweepBudget,
	})
	if err != nil {
		return exitUsage, fmt.Errorf("cannot open -cache-dir %q: %v", *cacheDir, err)
	}
	defer runner.Cancel()
	if *progress {
		// Simulations finish on many goroutines; OnRun calls are serialized
		// by the runner, so each line prints whole.
		runner.OnRun = func(key, name string, runs int) {
			fmt.Fprintf(stderr, "figures: run %4d  %-24s %s\n", runs, key, name)
		}
	}

	// Graceful shutdown: the first SIGINT/SIGTERM cancels the sweep — every
	// in-flight simulation finishes (and lands in the cache) while every
	// not-yet-started run fails fast — and the completed reports are still
	// rendered below, with FAILED markers. A second signal, or a sweep that
	// is still draining when the grace period expires, force-exits.
	var interrupted atomic.Bool
	done := make(chan struct{})
	defer close(done)
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		select {
		case s := <-sigc:
			interrupted.Store(true)
			runner.Cancel()
			fmt.Fprintf(stderr, "figures: %v — finishing in-flight simulations and flushing completed results\n", s)
			if *cacheDir != "" {
				fmt.Fprintf(stderr, "figures: re-run with -cache-dir %s to resume from completed results\n", *cacheDir)
			} else {
				fmt.Fprintln(stderr, "figures: (no -cache-dir: completed results will be lost; use -cache-dir to make sweeps resumable)")
			}
		case <-done:
			return
		}
		select {
		case <-sigc:
			fmt.Fprintln(stderr, "figures: second signal — exiting immediately")
		case <-time.After(shutdownGrace):
			fmt.Fprintf(stderr, "figures: still draining after %v — exiting\n", shutdownGrace)
		case <-done:
			return
		}
		os.Exit(exitInterrupted)
	}()

	var reports []*experiments.Report
	if *id != "" {
		rep, err := experiments.ByIDWith(runner, *id)
		if err != nil {
			return exitUsage, err
		}
		reports = []*experiments.Report{rep}
	} else {
		reports = experiments.AllWith(runner)
	}
	if *progress {
		fmt.Fprintf(stderr, "figures: %d simulations complete (%d loaded from cache)\n",
			runner.Runs(), runner.DiskHits())
		fmt.Fprintf(stderr, "figures: health: %s\n", runner.Health())
	}
	if err := runner.CacheErr(); err != nil {
		fmt.Fprintf(stderr, "figures: warning: result cache: %v\n", err)
	}

	failed := 0
	for _, rep := range reports {
		if rep.Failed != "" {
			failed++
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, rep.ID+".csv")
			var content string
			switch {
			case rep.Failed != "":
				// A stable machine-readable marker instead of silently
				// omitting the file: downstream plotting sees the point
				// exists and failed, with the reason quoted as one CSV field.
				content = fmt.Sprintf("status,reason\nFAILED,%q\n", rep.Failed)
			case rep.Table != nil:
				content = rep.Table.CSV()
			}
			if content != "" {
				if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
					return exitFailed, err
				}
			}
		}
		if *markdown {
			if rep.Failed != "" {
				fmt.Fprintf(stdout, "### %s — FAILED\n\n`FAILED(%s)`\n\n", rep.ID, rep.Failed)
				continue
			}
			fmt.Fprintf(stdout, "### %s — %s\n\n```\n%s```\n\n", rep.ID, rep.Title, rep.Table)
			for _, n := range rep.Notes {
				fmt.Fprintf(stdout, "> %s\n", n)
			}
			fmt.Fprintln(stdout)
		} else {
			fmt.Fprintln(stdout, rep)
		}
	}

	switch {
	case interrupted.Load():
		fmt.Fprintf(stderr, "figures: interrupted: %d/%d experiments incomplete\n", failed, len(reports))
		return exitInterrupted, nil
	case failed > 0:
		fmt.Fprintf(stderr, "figures: %d/%d experiments FAILED\n", failed, len(reports))
		return exitFailed, nil
	}
	return exitOK, nil
}
