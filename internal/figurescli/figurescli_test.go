package figurescli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atcsim/internal/xlat"
)

func run(t *testing.T, args ...string) (code int, errMsg, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code, err := Main(args, &out, &errw)
	if err != nil {
		errMsg = err.Error()
	}
	return code, errMsg, out.String(), errw.String()
}

func TestListExitsZero(t *testing.T) {
	code, errMsg, stdout, _ := run(t, "-list")
	if code != exitOK || errMsg != "" {
		t.Fatalf("code = %d, err = %q", code, errMsg)
	}
	if !strings.Contains(stdout, "fig14") || !strings.Contains(stdout, "multicore") {
		t.Errorf("-list output missing ids:\n%s", stdout)
	}
}

func TestListMechanismsExitsZero(t *testing.T) {
	code, errMsg, stdout, _ := run(t, "-list-mechanisms")
	if code != exitOK || errMsg != "" {
		t.Fatalf("code = %d, err = %q", code, errMsg)
	}
	lines := strings.Fields(stdout)
	want := xlat.Names()
	if len(lines) != len(want) {
		t.Fatalf("-list-mechanisms printed %v, registry has %v", lines, want)
	}
	for i, n := range want {
		if lines[i] != n {
			t.Errorf("-list-mechanisms line %d = %q, want %q", i, lines[i], n)
		}
	}
}

func TestBudgetFlagsValidatedUpFront(t *testing.T) {
	cases := [][]string{
		{"-run-timeout", "0s", "-list"},
		{"-run-timeout", "-5s", "-list"},
		{"-sweep-budget", "0s", "-list"},
		{"-sweep-budget", "-1m", "-list"},
	}
	for _, args := range cases {
		code, errMsg, _, _ := run(t, args...)
		if code != exitUsage {
			t.Errorf("%v: code = %d, want %d", args, code, exitUsage)
		}
		if !strings.Contains(errMsg, "must be positive") {
			t.Errorf("%v: err = %q", args, errMsg)
		}
	}
	// Positive values pass validation (-list returns before any simulation).
	if code, errMsg, _, _ := run(t, "-run-timeout", "1m", "-sweep-budget", "1h", "-list"); code != exitOK {
		t.Errorf("positive budgets rejected: code = %d, err = %q", code, errMsg)
	}
}

// TestTimingFlagValidated pins the -timing contract: an unknown timing
// model is a usage error (exit 2) listing the registered names, and a
// registered one reaches the sweep (here killed instantly by an exhausted
// budget, which is exitFailed — past flag validation).
func TestTimingFlagValidated(t *testing.T) {
	code, errMsg, _, _ := run(t, "-timing", "warp", "-id", "fig1", "-scale", "quick")
	if code != exitUsage {
		t.Errorf("unknown timing: code = %d, want %d", code, exitUsage)
	}
	for _, want := range []string{"unknown timing model", "analytic", "queued"} {
		if !strings.Contains(errMsg, want) {
			t.Errorf("unknown timing: err %q lacks %q", errMsg, want)
		}
	}
	code, errMsg, _, _ = run(t, "-timing", "queued", "-id", "fig1", "-scale", "quick", "-sweep-budget", "1ns")
	if code != exitFailed || errMsg != "" {
		t.Errorf("valid timing rejected: code = %d, err = %q", code, errMsg)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _, _ := run(t, "-scale", "galactic", "-id", "fig1"); code != exitUsage {
		t.Errorf("unknown scale: code = %d", code)
	}
	if code, _, _, _ := run(t, "fig1"); code != exitUsage {
		t.Errorf("positional args: code = %d", code)
	}
	if code, _, _, _ := run(t, "-id", "fig999", "-scale", "quick"); code != exitUsage {
		t.Errorf("unknown id: code = %d", code)
	}
}

// TestExhaustedBudgetDegradesToFailedMarkers drives the whole pipeline with
// an already-spent sweep budget: every run fails fast, the experiment
// completes as a FAILED(reason) point in text and CSV output, and the
// process exit code reports the degradation.
func TestExhaustedBudgetDegradesToFailedMarkers(t *testing.T) {
	csvDir := t.TempDir()
	code, errMsg, stdout, stderr := run(t,
		"-scale", "quick", "-id", "fig1", "-sweep-budget", "1ns", "-csv", csvDir)
	if code != exitFailed || errMsg != "" {
		t.Fatalf("code = %d, err = %q, stderr:\n%s", code, errMsg, stderr)
	}
	if !strings.Contains(stdout, "== fig1: FAILED ==") || !strings.Contains(stdout, "FAILED(") {
		t.Errorf("stdout missing FAILED marker:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1/1 experiments FAILED") {
		t.Errorf("stderr missing failure summary:\n%s", stderr)
	}
	raw, err := os.ReadFile(filepath.Join(csvDir, "fig1.csv"))
	if err != nil {
		t.Fatalf("FAILED experiment wrote no CSV: %v", err)
	}
	if !strings.HasPrefix(string(raw), "status,reason\nFAILED,") {
		t.Errorf("CSV marker = %q", raw)
	}
}

// TestQuickExperimentSucceeds runs one real (quick-scale) experiment end to
// end and checks the success path: exit 0, a rendered table, and a health
// line under -progress.
func TestQuickExperimentSucceeds(t *testing.T) {
	code, errMsg, stdout, stderr := run(t, "-scale", "quick", "-id", "fig14", "-progress")
	if code != exitOK || errMsg != "" {
		t.Fatalf("code = %d, err = %q, stderr:\n%s", code, errMsg, stderr)
	}
	if !strings.Contains(stdout, "== fig14:") {
		t.Errorf("stdout missing report:\n%s", stdout)
	}
	if !strings.Contains(stderr, `msg="sweep health" runs=`) {
		t.Errorf("stderr missing health summary:\n%s", stderr)
	}
	if !strings.Contains(stderr, `msg="run complete"`) || !strings.Contains(stderr, "key=baseline") {
		t.Errorf("stderr missing per-run progress attributes:\n%s", stderr)
	}
	if strings.Contains(stderr, "time=") {
		t.Errorf("log lines should not carry timestamps:\n%s", stderr)
	}
}

// TestLogLevelGatesProgress checks -log-level: at error verbosity the
// success path is silent on stderr, and a bad level is a usage error.
func TestLogLevelGatesProgress(t *testing.T) {
	code, errMsg, _, stderr := run(t,
		"-scale", "quick", "-id", "fig14", "-progress", "-log-level", "error")
	if code != exitOK || errMsg != "" {
		t.Fatalf("code = %d, err = %q", code, errMsg)
	}
	if strings.Contains(stderr, `msg="run complete"`) || strings.Contains(stderr, "sweep health") {
		t.Errorf("-log-level error should suppress info logs:\n%s", stderr)
	}
	if code, errMsg, _, _ := run(t, "-log-level", "loud", "-list"); code != exitUsage ||
		!strings.Contains(errMsg, "-log-level") {
		t.Errorf("bad level: code = %d, err = %q", code, errMsg)
	}
}

// TestMarkdownFailedRendering checks the markdown shape of a failed point.
func TestMarkdownFailedRendering(t *testing.T) {
	code, _, stdout, _ := run(t,
		"-scale", "quick", "-id", "fig1", "-sweep-budget", "1ns", "-markdown")
	if code != exitFailed {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(stdout, "### fig1 — FAILED") || !strings.Contains(stdout, "`FAILED(") {
		t.Errorf("markdown output = %q", stdout)
	}
}
