package validate

import (
	"fmt"

	"atcsim/internal/cache"
	"atcsim/internal/mem"
	"atcsim/internal/ptw"
	"atcsim/internal/tlb"
	"atcsim/internal/vm"
	"atcsim/internal/xlat"
)

// DiffMechanism replays a seeded translation stream through an MMU running
// the named xlat mechanism and checks, for every single translation, that
// the produced physical address equals the naive radix-walk oracle's — the
// property that makes victima's cached TLB blocks and revelator's
// speculation safe rather than hopeful. The stream mixes hot pages, a
// working set beyond STLB reach, and pages from widely-separated VA regions
// whose low VPN bits collide — exactly the aliasing that forces revelator
// down its misspeculation/squash path. Structural invariants (including the
// mechanism's own, via xlat.Checker) are audited at the end.
func DiffMechanism(name string, n int, seed int64) error {
	alloc, err := vm.NewFrameAllocator(32, true)
	if err != nil {
		return err
	}
	pt, err := vm.NewPageTable(alloc)
	if err != nil {
		return err
	}
	psc := tlb.NewPSC(tlb.DefaultPSCSizes())
	// A small two-level hierarchy backs both the walker's PTE reads and the
	// mechanism hooks (victima TLB blocks, revelator speculative fetches).
	llc, err := cache.New(cache.Config{
		Name: "LLC", Level: mem.LvlLLC, SizeBytes: 64 << 10, Ways: 16,
		Latency: 20, MSHRs: 16, Policy: "lru",
	}, &fixedLower{lat: 40})
	if err != nil {
		return err
	}
	l2, err := cache.New(cache.Config{
		Name: "L2C", Level: mem.LvlL2, SizeBytes: 16 << 10, Ways: 8,
		Latency: 10, MSHRs: 16, Policy: "lru",
	}, llc)
	if err != nil {
		return err
	}
	walker, err := ptw.NewWalker(pt, psc, l2, 0)
	if err != nil {
		return err
	}
	dtlb, err := tlb.New(tlb.Config{Name: "DTLB", Entries: 64, Ways: 4, Latency: 1})
	if err != nil {
		return err
	}
	stlb, err := tlb.New(tlb.Config{Name: "STLB", Entries: 256, Ways: 8, Latency: 8})
	if err != nil {
		return err
	}
	mmu, err := ptw.NewMMU(dtlb, nil, stlb, walker)
	if err != nil {
		return err
	}
	mech, err := xlat.New(name, xlat.Deps{
		L2: l2, LLC: llc, STLB: stlb,
		Oracle:            pt.Translate,
		CheckTranslations: true, // every outcome re-checked inline
	})
	if err != nil {
		return err
	}
	mmu.SetMechanism(mech)

	od := NewOracleTLB(64, 4)
	os := NewOracleTLB(256, 8)

	// VA regions far apart: their pages share low VPN bits (revelator index
	// collisions) while translating to unrelated frames.
	bases := [...]mem.Addr{0, 1 << 30, 1 << 39, 1 << 45}

	r := newRNG(seed)
	cycle := int64(0)
	for i := 0; i < n; i++ {
		var va mem.Addr
		switch {
		case r.intn(100) < 45:
			va = mem.Addr(r.intn(128)) << mem.PageBits // hot pages
		case r.intn(100) < 70:
			va = mem.Addr(r.intn(4096)) << mem.PageBits // beyond STLB reach
		default:
			// Aliasing pages: same low VPN bits, different region.
			base := bases[r.intn(len(bases))]
			va = base | mem.Addr(r.intn(512))<<mem.PageBits
		}
		va |= mem.Addr(r.intn(mem.PageSize))
		cycle += 512

		tr, err := mmu.Translate(va, 0x40_0000, cycle)
		if err != nil {
			return fmt.Errorf("mechanism %s: translate %d (va %#x): %w", name, i, va, err)
		}
		want, err := pt.Translate(va)
		if err != nil {
			return fmt.Errorf("mechanism %s: translate %d (va %#x): oracle: %w", name, i, va, err)
		}
		if tr.PA != want {
			return fmt.Errorf("mechanism %s: translate %d (va %#x): model PA %#x, oracle PA %#x",
				name, i, va, tr.PA, want)
		}

		// Mirror the DTLB → STLB ladder with the oracles: mechanisms change
		// how a miss is serviced, never what counts as a miss.
		wantMiss := false
		if f, hit := od.Lookup(va); hit {
			if got := f | mem.PageOffset(va); got != want {
				return fmt.Errorf("mechanism %s: translate %d (va %#x): oracle DTLB frame stale: %#x vs %#x",
					name, i, va, got, want)
			}
		} else if f, hit := os.Lookup(va); hit {
			od.Insert(va, f)
			if got := f | mem.PageOffset(va); got != want {
				return fmt.Errorf("mechanism %s: translate %d (va %#x): oracle STLB frame stale: %#x vs %#x",
					name, i, va, got, want)
			}
		} else {
			wantMiss = true
			frame := mem.PageBase(want)
			os.Insert(va, frame)
			od.Insert(va, frame)
		}
		if tr.STLBMiss != wantMiss {
			return fmt.Errorf("mechanism %s: translate %d (va %#x): model STLBMiss=%v, oracle ladder says %v",
				name, i, va, tr.STLBMiss, wantMiss)
		}
	}
	if probeStats != nil {
		probeStats(mech.Stats())
	}
	if err := mmu.CheckInvariants(); err != nil {
		return fmt.Errorf("mechanism %s: %w", name, err)
	}
	for _, c := range [...]*cache.Cache{l2, llc} {
		if err := c.CheckInvariants(); err != nil {
			return fmt.Errorf("mechanism %s: %w", name, err)
		}
	}
	if err := od.Err(); err != nil {
		return fmt.Errorf("mechanism %s: %w", name, err)
	}
	if err := os.Err(); err != nil {
		return fmt.Errorf("mechanism %s: %w", name, err)
	}
	return nil
}

// probeStats, when non-nil, receives the mechanism's final stats. Test hook.
var probeStats func(xlat.Stats)
