package validate

import (
	"fmt"

	"atcsim/internal/cache"
	"atcsim/internal/mem"
)

// lockstepSpacing is the cycle gap between consecutive ops in the
// analytic-vs-queued lockstep driver: far larger than every latency in the
// two-level harness, so the queued engine's deques are fully drained before
// each new op. Under that schedule the inner caches of both engines observe
// the same operations in the same order — timing may differ, state may not.
const lockstepSpacing = 1024

// TimingConfig parameterizes one lockstep comparison: the replacement
// policies at the two levels and whether the upper level runs the paper's
// ATP prefetch (exercising the queued engine's VAPQ staging path).
//
// The harness is deliberately a standalone two-level hierarchy over a
// fixed-latency backing store — no DRAM model, no TEMPO hook, no attached
// multi-candidate prefetcher. Those reenter the hierarchy mid-access in the
// analytic engine (a TEMPO prefetch installs during the LLC access that
// triggered it) but after the access in the queued engine, so their install
// order is a genuine timing artifact, not a state bug; the full-system
// queued configuration is covered by its own separately-baselined goldens
// instead.
type TimingConfig struct {
	Name      string
	TopPolicy string
	BotPolicy string
	ATP       bool
}

// TimingConfigs returns the lockstep configurations the harness runs:
// plain LRU, the dueling/signature policies, and the translation-conscious
// variants with ATP on.
func TimingConfigs() []TimingConfig {
	return []TimingConfig{
		{Name: "lru", TopPolicy: "lru", BotPolicy: "lru"},
		{Name: "drrip-ship", TopPolicy: "drrip", BotPolicy: "ship"},
		{Name: "atp-translation", TopPolicy: "t-drrip", BotPolicy: "t-ship", ATP: true},
	}
}

// timingHarness is one engine's two-level hierarchy.
type timingHarness struct {
	top *cache.Cache
	bot *cache.Cache
	low *fixedLower
}

func newTimingPair(tc TimingConfig) (analytic, queued timingHarness, qs [2]*cache.Queued, err error) {
	topCfg := cache.Config{
		Name: "TOP", Level: mem.LvlL2,
		SizeBytes: 16 * 4 * mem.LineSize, Ways: 4,
		Latency: 4, MSHRs: 16, Policy: tc.TopPolicy, ATP: tc.ATP,
	}
	botCfg := cache.Config{
		Name: "BOT", Level: mem.LvlLLC,
		SizeBytes: 64 * 8 * mem.LineSize, Ways: 8,
		Latency: 12, MSHRs: 32, Policy: tc.BotPolicy,
	}

	analytic.low = &fixedLower{lat: 24}
	analytic.bot, err = cache.New(botCfg, analytic.low)
	if err != nil {
		return
	}
	analytic.top, err = cache.New(topCfg, analytic.bot)
	if err != nil {
		return
	}

	queued.low = &fixedLower{lat: 24}
	queued.bot, err = cache.New(botCfg, queued.low)
	if err != nil {
		return
	}
	qbot := cache.NewQueued(queued.bot, cache.DefaultQueueConfig(mem.LvlLLC))
	queued.top, err = cache.New(topCfg, qbot)
	if err != nil {
		return
	}
	qtop := cache.NewQueued(queued.top, cache.DefaultQueueConfig(mem.LvlL2))
	qs = [2]*cache.Queued{qtop, qbot}
	return
}

// DiffTiming replays ops through the analytic engine and through the queued
// engine in lockstep, draining the queues after every op, and asserts the
// two reach identical state: the same hit/miss outcome and servicing level
// per op, bit-identical set contents at both levels after every op (which
// pins down eviction victims exactly), equal statistics except latency
// accumulators, and equal final writeback counts at the backing store. It
// returns a descriptive error at the first divergence.
func DiffTiming(ops []Op, tc TimingConfig) error {
	an, qu, qs, err := newTimingPair(tc)
	if err != nil {
		return err
	}
	qtop, qbot := qs[0], qs[1]

	cycle := int64(0)
	for i, op := range ops {
		cycle += lockstepSpacing

		beforeTopA, beforeBotA := totalMisses(an.top), totalMisses(an.bot)
		beforeTopQ, beforeBotQ := totalMisses(qu.top), totalMisses(qu.bot)

		resA := an.top.Access(op.request(0), cycle)
		resQ := qtop.Access(op.request(0), cycle)
		qtop.Drain()
		qbot.Drain()

		if resA.Src != resQ.Src {
			return fmt.Errorf("%s op %d (%v %#x): serviced by %v analytic, %v queued",
				tc.Name, i, op.Kind, op.Addr, resA.Src, resQ.Src)
		}
		if dA, dQ := totalMisses(an.top)-beforeTopA, totalMisses(qu.top)-beforeTopQ; dA != dQ {
			return fmt.Errorf("%s op %d (%v %#x): upper-level misses %d analytic, %d queued",
				tc.Name, i, op.Kind, op.Addr, dA, dQ)
		}
		if dA, dQ := totalMisses(an.bot)-beforeBotA, totalMisses(qu.bot)-beforeBotQ; dA != dQ {
			return fmt.Errorf("%s op %d (%v %#x): lower-level misses %d analytic, %d queued",
				tc.Name, i, op.Kind, op.Addr, dA, dQ)
		}
		if err := compareContents(an.top, qu.top); err != nil {
			return fmt.Errorf("%s op %d (%v %#x): upper level: %w", tc.Name, i, op.Kind, op.Addr, err)
		}
		if err := compareContents(an.bot, qu.bot); err != nil {
			return fmt.Errorf("%s op %d (%v %#x): lower level: %w", tc.Name, i, op.Kind, op.Addr, err)
		}
		if i%256 == 0 {
			if err := lockstepInvariants(an, qtop, qbot); err != nil {
				return fmt.Errorf("%s op %d: %w", tc.Name, i, err)
			}
		}
	}

	if err := lockstepInvariants(an, qtop, qbot); err != nil {
		return fmt.Errorf("%s at end: %w", tc.Name, err)
	}
	if err := timingStatsEqual("upper level", an.top.Stats(), qu.top.Stats()); err != nil {
		return fmt.Errorf("%s: %w", tc.Name, err)
	}
	if err := timingStatsEqual("lower level", an.bot.Stats(), qu.bot.Stats()); err != nil {
		return fmt.Errorf("%s: %w", tc.Name, err)
	}
	if an.low.writebacks != qu.low.writebacks {
		return fmt.Errorf("%s: backing-store writebacks diverged: %d analytic, %d queued",
			tc.Name, an.low.writebacks, qu.low.writebacks)
	}
	return nil
}

func lockstepInvariants(an timingHarness, qtop, qbot *cache.Queued) error {
	if err := an.top.CheckInvariants(); err != nil {
		return err
	}
	if err := an.bot.CheckInvariants(); err != nil {
		return err
	}
	if err := qtop.CheckInvariants(); err != nil {
		return err
	}
	return qbot.CheckInvariants()
}

// compareContents asserts two caches hold exactly the same lines in every
// set. Way order may differ only if a victim choice differed, so the lines
// are compared sorted — any real divergence still shows as a content
// mismatch on the op that caused it.
func compareContents(a, b *cache.Cache) error {
	if a.Sets() != b.Sets() {
		return fmt.Errorf("geometry mismatch: %d vs %d sets", a.Sets(), b.Sets())
	}
	for set := 0; set < a.Sets(); set++ {
		la := sortedLines(a.SetContents(set))
		lb := sortedLines(b.SetContents(set))
		if !equalLines(la, lb) {
			return fmt.Errorf("set %d contents diverged: analytic %v, queued %v", set, la, lb)
		}
	}
	return nil
}

// timingStatsEqual compares two levels' statistics, ignoring the latency
// accumulators (the queued engine shifts cycles by design) but holding
// every behavioral counter — accesses, misses, evictions, dead evictions,
// writebacks, prefetch outcomes, merges, bypasses — bit-equal.
func timingStatsEqual(name string, a, b cache.Stats) error {
	a.LatencySum = [mem.NumClasses]uint64{}
	b.LatencySum = [mem.NumClasses]uint64{}
	if a != b {
		return fmt.Errorf("%s stats diverged:\nanalytic %+v\nqueued   %+v", name, a, b)
	}
	return nil
}

// StressQueued replays ops back-to-back (spacing cycles apart) through a
// two-level queued hierarchy with deliberately tiny deques, so every
// backpressure path — rq_full stalls, wq drain, pq drops, mshr_full
// head-of-line blocking — is constantly exercised, and audits the queue and
// cache invariants as it goes. No equality claim is made against the
// analytic engine here: with queues this small, prefetch drops and forwards
// legitimately change state.
func StressQueued(ops []Op, spacing int64, qc cache.QueueConfig) error {
	low := &fixedLower{lat: 40}
	bot, err := cache.New(cache.Config{
		Name: "BOT", Level: mem.LvlLLC,
		SizeBytes: 8 * 4 * mem.LineSize, Ways: 4,
		Latency: 12, MSHRs: 2, Policy: "lru",
	}, low)
	if err != nil {
		return err
	}
	qbot := cache.NewQueued(bot, qc)
	top, err := cache.New(cache.Config{
		Name: "TOP", Level: mem.LvlL2,
		SizeBytes: 4 * 2 * mem.LineSize, Ways: 2,
		Latency: 4, MSHRs: 2, Policy: "lru", ATP: true,
	}, qbot)
	if err != nil {
		return err
	}
	qtop := cache.NewQueued(top, qc)

	cycle := int64(0)
	for i, op := range ops {
		cycle += spacing
		res := qtop.Access(op.request(0), cycle)
		if res.Ready < cycle {
			return fmt.Errorf("op %d (%v %#x): ready %d before issue %d", i, op.Kind, op.Addr, res.Ready, cycle)
		}
		if i%64 == 0 {
			if err := qtop.CheckInvariants(); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
			if err := qbot.CheckInvariants(); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
		}
	}
	qtop.Drain()
	qbot.Drain()
	if err := qtop.CheckInvariants(); err != nil {
		return err
	}
	return qbot.CheckInvariants()
}

// ClassStream synthesizes a seeded stream dominated (~80%) by one request
// class, with a thin mixed background so the focal class interacts with
// realistic residue. Recognized classes: "load-hot", "load-scan",
// "load-random", "store", "translation", "writeback".
func ClassStream(class string, seed int64, n, capacityLines int) ([]Op, error) {
	r := newRNG(seed)
	if capacityLines < 8 {
		capacityLines = 8
	}
	hotPool := capacityLines / 2
	randPool := capacityLines * 8
	transPool := capacityLines / 4
	scanPos := 0

	focal := func() (Op, bool) {
		switch class {
		case "load-hot":
			return Op{Kind: mem.Load, IP: 0x40_0000, Addr: mem.Addr(r.intn(hotPool)) << mem.LineBits}, true
		case "load-scan":
			scanPos++
			return Op{Kind: mem.Load, IP: 0x40_0008, Addr: mem.Addr(0x10_0000+scanPos) << mem.LineBits}, true
		case "load-random":
			return Op{Kind: mem.Load, IP: 0x40_0010, Addr: mem.Addr(0x20_0000+r.intn(randPool)) << mem.LineBits}, true
		case "store":
			return Op{Kind: mem.Store, IP: 0x40_0020, Addr: mem.Addr(r.intn(hotPool)) << mem.LineBits}, true
		case "translation":
			return Op{
				Kind: mem.Translation, IP: 0x40_0018,
				Addr:  mem.Addr(0x30_0000+r.intn(transPool)) << mem.LineBits,
				Level: 1, Leaf: true,
				ReplayTarget: mem.Addr(0x20_0000+r.intn(randPool)) << mem.LineBits,
			}, true
		case "writeback":
			return Op{Kind: mem.Writeback, Addr: mem.Addr(r.intn(hotPool)) << mem.LineBits}, true
		}
		return Op{}, false
	}

	ops := make([]Op, 0, n)
	for len(ops) < n {
		if r.intn(100) < 80 {
			o, ok := focal()
			if !ok {
				return nil, fmt.Errorf("validate: unknown stream class %q", class)
			}
			ops = append(ops, o)
			continue
		}
		// Mixed background: loads, stores and the occasional writeback.
		switch p := r.intn(100); {
		case p < 50:
			ops = append(ops, Op{Kind: mem.Load, IP: 0x40_0010, Addr: mem.Addr(0x20_0000+r.intn(randPool)) << mem.LineBits})
		case p < 70:
			ops = append(ops, Op{Kind: mem.Load, IP: 0x40_0000, Addr: mem.Addr(r.intn(hotPool)) << mem.LineBits})
		case p < 85:
			ops = append(ops, Op{Kind: mem.Store, IP: 0x40_0020, Addr: mem.Addr(r.intn(hotPool)) << mem.LineBits})
		default:
			ops = append(ops, Op{Kind: mem.Writeback, Addr: mem.Addr(r.intn(hotPool)) << mem.LineBits})
		}
	}
	return ops, nil
}

// StreamClasses lists the classes ClassStream recognizes, in the order the
// lockstep tests sweep them.
func StreamClasses() []string {
	return []string{"load-hot", "load-scan", "load-random", "store", "translation", "writeback"}
}
