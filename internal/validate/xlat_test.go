package validate

import (
	"strings"
	"testing"

	"atcsim/internal/xlat"
)

// TestDiffMechanisms replays the seeded differential stream through every
// registered translation mechanism. Each run asserts, translation by
// translation, that the mechanism's PA equals the naive radix-walk oracle's
// and that TLB miss classification is mechanism-independent — the invariant
// that makes victima's cached entries and revelator's speculation safe.
func TestDiffMechanisms(t *testing.T) {
	for _, name := range xlat.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if err := DiffMechanism(name, 12_000, 7); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDiffMechanismSeeds varies the stream seed so the aliasing mix (and
// hence revelator's squash path and victima's eviction pressure) is not an
// artifact of one lucky sequence.
func TestDiffMechanismSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	for _, seed := range []int64{1, 99, 2026} {
		for _, name := range xlat.Names() {
			if err := DiffMechanism(name, 6_000, seed); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}
	}
}

// TestDiffMechanismStreamCoverage asserts the differential stream actually
// reaches the interesting paths: revelator must both speculate correctly and
// squash (the aliasing regions exist for exactly this), and victima must
// service misses from cache-resident TLB blocks at both levels. Without this
// check a future edit to the stream could pass vacuously.
func TestDiffMechanismStreamCoverage(t *testing.T) {
	defer func() { probeStats = nil }()
	var got xlat.Stats
	probeStats = func(s xlat.Stats) { got = s }

	if err := DiffMechanism("revelator", 12_000, 7); err != nil {
		t.Fatal(err)
	}
	if got.SpecCorrect == 0 || got.SpecWrong == 0 {
		t.Errorf("revelator stream coverage too thin: %+v", got)
	}

	if err := DiffMechanism("victima", 12_000, 7); err != nil {
		t.Fatal(err)
	}
	if got.CacheHitsL2 == 0 || got.CacheHitsLLC == 0 || got.TLBBlockInserts == 0 {
		t.Errorf("victima stream coverage too thin: %+v", got)
	}
}

func TestDiffMechanismUnknownName(t *testing.T) {
	err := DiffMechanism("warpdrive", 10, 1)
	if err == nil || !strings.Contains(err.Error(), "unknown mechanism") {
		t.Fatalf("err = %v, want unknown-mechanism error", err)
	}
}
