// Package validate is the differential-validation harness for the memory
// hierarchy: executable reference oracles (a brute-force true-LRU cache, a
// Belady/OPT oracle computed from the full future trace, a linear-scan TLB
// and a naive radix page walker) plus drivers that replay identical seeded
// request streams through the real internal/cache, internal/repl,
// internal/tlb and internal/ptw models and through the oracles, asserting
// that hit/miss sequences, eviction victims and translation results match.
//
// The oracles are deliberately naive — linear scans, full-history
// structures, no sampling — so that their correctness is evident by
// inspection. Any divergence from the optimized models is a bug in the
// model (or, once, in the oracle; either way it is a bug worth a regression
// test). The harness is exercised by this package's tests, by the fuzz
// targets in fuzz_test.go, and by CI's differential job, so every future
// change to the hot paths gets this net for free.
package validate

import (
	"atcsim/internal/mem"
)

// rng is a splitmix64 generator: tiny, deterministic, and independent of
// the workload package's generator so the harness shares no code with what
// it validates.
type rng struct{ s uint64 }

func newRNG(seed int64) *rng {
	// Scramble the seed through the output finalizer: consecutive raw seeds
	// differ by exactly the golden-ratio increment, which would otherwise
	// make seed k+1's stream equal seed k's shifted by one draw.
	z := uint64(seed) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return &rng{s: z ^ (z >> 31)}
}

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Op is one request of a differential stream, the harness's neutral request
// representation (convertible to a mem.Request, replayable against an
// oracle).
type Op struct {
	Kind mem.Kind
	Addr mem.Addr // physical byte address (cache streams)
	IP   mem.Addr

	// Walker state for Translation ops.
	Level        int
	Leaf         bool
	ReplayTarget mem.Addr
}

// request converts the op to the request the real hierarchy consumes.
func (o Op) request(core int) *mem.Request {
	return &mem.Request{
		Addr:         o.Addr,
		IP:           o.IP,
		Kind:         o.Kind,
		Level:        o.Level,
		Leaf:         o.Leaf,
		ReplayTarget: o.ReplayTarget,
		Core:         core,
	}
}

// Stream synthesizes a seeded cache request stream of n ops with the access
// structure replacement policies care about: a cache-friendly hot set
// (reused constantly), a cache-averse scan (never reused), uniform random
// traffic, a store fraction, leaf-PTE translation reads from a small pool,
// and occasional writebacks. capacityLines sizes the hot set and pools
// relative to the cache under test.
func Stream(seed int64, n, capacityLines int) []Op {
	r := newRNG(seed)
	if capacityLines < 8 {
		capacityLines = 8
	}
	const (
		ipHot   = 0x40_0000
		ipScan  = 0x40_0008
		ipRand  = 0x40_0010
		ipTrans = 0x40_0018
	)
	hotPool := capacityLines / 2
	randPool := capacityLines * 8
	transPool := capacityLines / 4
	scanPos := 0
	ops := make([]Op, 0, n)
	for len(ops) < n {
		var o Op
		switch p := r.intn(100); {
		case p < 40: // hot set: friendly
			o = Op{Kind: mem.Load, IP: ipHot, Addr: mem.Addr(r.intn(hotPool)) << mem.LineBits}
		case p < 62: // scan: averse
			scanPos++
			o = Op{Kind: mem.Load, IP: ipScan, Addr: mem.Addr(0x10_0000+scanPos) << mem.LineBits}
		case p < 80: // uniform random
			o = Op{Kind: mem.Load, IP: ipRand, Addr: mem.Addr(0x20_0000+r.intn(randPool)) << mem.LineBits}
		case p < 88: // stores over the hot set (dirty lines, writebacks on evict)
			o = Op{Kind: mem.Store, IP: ipHot, Addr: mem.Addr(r.intn(hotPool)) << mem.LineBits}
		case p < 95: // leaf-PTE reads from a small, heavily reused pool
			pte := mem.Addr(0x30_0000+r.intn(transPool)) << mem.LineBits
			o = Op{
				Kind: mem.Translation, IP: ipTrans, Addr: pte,
				Level: 1, Leaf: true,
				ReplayTarget: mem.Addr(0x20_0000+r.intn(randPool)) << mem.LineBits,
			}
		case p < 98: // upper-level PTE reads
			o = Op{
				Kind: mem.Translation, IP: ipTrans,
				Addr:  mem.Addr(0x38_0000+r.intn(transPool/2+1)) << mem.LineBits,
				Level: 2 + r.intn(4),
			}
		default: // incoming writeback from a (modelled) level above
			o = Op{Kind: mem.Writeback, Addr: mem.Addr(r.intn(hotPool)) << mem.LineBits}
		}
		ops = append(ops, o)
	}
	return ops
}

// LoadStream synthesizes a loads-only stream (the OPT oracle compares hit
// counts, which is only meaningful for demand fetches). Structure mirrors
// Stream: hot set, scan, random — enough texture for Hawkeye and SHiP to
// learn from and for OPT to have real headroom over LRU.
func LoadStream(seed int64, n, capacityLines int) []Op {
	r := newRNG(seed)
	if capacityLines < 8 {
		capacityLines = 8
	}
	const (
		ipHot  = 0x50_0000
		ipScan = 0x50_0008
		ipRand = 0x50_0010
	)
	hotPool := capacityLines * 3 / 4
	randPool := capacityLines * 6
	scanPos := 0
	ops := make([]Op, 0, n)
	for len(ops) < n {
		var o Op
		switch p := r.intn(100); {
		case p < 45:
			o = Op{Kind: mem.Load, IP: ipHot, Addr: mem.Addr(r.intn(hotPool)) << mem.LineBits}
		case p < 75:
			scanPos++
			o = Op{Kind: mem.Load, IP: ipScan, Addr: mem.Addr(0x10_0000+scanPos) << mem.LineBits}
		default:
			o = Op{Kind: mem.Load, IP: ipRand, Addr: mem.Addr(0x20_0000+r.intn(randPool)) << mem.LineBits}
		}
		ops = append(ops, o)
	}
	return ops
}
