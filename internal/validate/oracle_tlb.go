package validate

import (
	"fmt"

	"atcsim/internal/mem"
)

// OracleTLB is a linear-scan reference model of a set-associative,
// LRU-replaced TLB. Entries live in one flat slice; every lookup scans all
// of them (and verifies no virtual page is mapped twice — the structural
// corruption a set-indexed implementation could hide). Set geometry only
// constrains victim selection, exactly as in the real structure.
type OracleTLB struct {
	sets, ways int
	ents       []otlbEnt
	clock      uint64
	evictions  uint64
	corrupt    error
}

type otlbEnt struct {
	vpn, frame mem.Addr
	stamp      uint64
}

// NewOracleTLB builds the oracle for entries/ways geometry (sets must come
// out a power of two, mirroring the real TLB's constraint).
func NewOracleTLB(entries, ways int) *OracleTLB {
	return &OracleTLB{sets: entries / ways, ways: ways}
}

func (o *OracleTLB) setOf(vpn mem.Addr) int { return int(uint64(vpn) % uint64(o.sets)) }

// Lookup searches linearly for the translation of va's page; a hit
// refreshes the entry's LRU stamp.
func (o *OracleTLB) Lookup(va mem.Addr) (mem.Addr, bool) {
	vpn := mem.PageNumber(va)
	found := -1
	for i := range o.ents {
		if o.ents[i].vpn == vpn {
			if found >= 0 {
				o.corrupt = fmt.Errorf("oracle tlb: vpn %#x present twice", vpn)
			}
			found = i
		}
	}
	if found < 0 {
		return 0, false
	}
	o.clock++
	o.ents[found].stamp = o.clock
	return o.ents[found].frame, true
}

// Insert fills the translation of va's page, refreshing an existing entry
// or evicting the least-recently-used entry of the page's set when the set
// is at capacity.
func (o *OracleTLB) Insert(va, frame mem.Addr) {
	vpn := mem.PageNumber(va)
	for i := range o.ents {
		if o.ents[i].vpn == vpn {
			o.clock++
			o.ents[i].frame = frame
			o.ents[i].stamp = o.clock
			return
		}
	}
	set := o.setOf(vpn)
	inSet := 0
	lru := -1
	for i := range o.ents {
		if o.setOf(o.ents[i].vpn) != set {
			continue
		}
		inSet++
		if lru < 0 || o.ents[i].stamp < o.ents[lru].stamp {
			lru = i
		}
	}
	if inSet >= o.ways {
		o.evictions++
		o.ents[lru] = o.ents[len(o.ents)-1]
		o.ents = o.ents[:len(o.ents)-1]
	}
	o.clock++
	o.ents = append(o.ents, otlbEnt{vpn: vpn, frame: frame, stamp: o.clock})
}

// Evictions returns the number of entries displaced at capacity.
func (o *OracleTLB) Evictions() uint64 { return o.evictions }

// Err reports structural corruption observed during lookups (a duplicate
// mapping), nil when the oracle stayed consistent.
func (o *OracleTLB) Err() error { return o.corrupt }
