package validate

import (
	"fmt"

	"atcsim/internal/cache"
	"atcsim/internal/mem"
	"atcsim/internal/ptw"
	"atcsim/internal/tlb"
	"atcsim/internal/vm"
)

// fixedLower terminates a cache under test with a fixed-latency backing
// store and counts the writebacks it receives.
type fixedLower struct {
	lat        int64
	writebacks uint64
}

func (f *fixedLower) Access(req *mem.Request, cycle int64) cache.Result {
	if req.Kind == mem.Writeback {
		f.writebacks++
		return cache.Result{Ready: cycle, Src: mem.LvlDRAM}
	}
	return cache.Result{Ready: cycle + f.lat, Src: mem.LvlDRAM}
}

// opSpacing is the cycle gap between consecutive ops in the differential
// drivers: larger than the stub lower's latency plus the lookup latency, so
// every fill has completed before the next access and the functional oracle
// (which has no timing) sees exactly the same machine.
const opSpacing = 16

func totalMisses(c *cache.Cache) uint64 {
	st := c.Stats()
	return st.TotalMiss()
}

func equalLines(a, b []mem.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedLines(in []mem.Addr) []mem.Addr {
	out := append([]mem.Addr(nil), in...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// DiffCache replays ops through the real set-associative cache model under
// the "lru" policy and through the brute-force true-LRU oracle, comparing
// after every op: hit/miss outcome, the full contents of the accessed set
// (which pins down the eviction victim exactly), and — at the end — the
// total writeback count. It returns a descriptive error at the first
// divergence, nil when the models agree on the whole stream.
func DiffCache(ops []Op, sets, ways int) error {
	low := &fixedLower{lat: 8}
	c, err := cache.New(cache.Config{
		Name: "DUT", Level: mem.LvlL2,
		SizeBytes: sets * ways * mem.LineSize, Ways: ways,
		Latency: 1, MSHRs: 16, Policy: "lru",
	}, low)
	if err != nil {
		return err
	}
	oracle := NewOracleCache(sets, ways)

	cycle := int64(0)
	for i, op := range ops {
		cycle += opSpacing
		line := mem.LineAddr(op.Addr)
		set := int(uint64(line) % uint64(sets))
		before := sortedLines(c.SetContents(set))
		missesBefore := totalMisses(c)

		c.Access(op.request(0), cycle)

		realHit := totalMisses(c) == missesBefore
		var out OracleOutcome
		if op.Kind == mem.Writeback {
			out = oracle.AbsorbWriteback(op.Addr)
		} else {
			out = oracle.Access(op.Addr, op.Kind == mem.Store)
		}
		if realHit != out.Hit {
			return fmt.Errorf("op %d (%v %#x): model %s, oracle %s",
				i, op.Kind, op.Addr, hitMiss(realHit), hitMiss(out.Hit))
		}
		after := sortedLines(c.SetContents(set))
		if want := oracle.Contents(set); !equalLines(after, want) {
			return fmt.Errorf("op %d (%v %#x): set %d contents diverged: model %v, oracle %v",
				i, op.Kind, op.Addr, set, after, want)
		}
		if out.HasEvict {
			evicted, n := diffLines(before, after)
			if n != 1 || evicted != out.Evicted {
				return fmt.Errorf("op %d (%v %#x): eviction victim diverged: model evicted %d line(s) (%#x), oracle evicted %#x",
					i, op.Kind, op.Addr, n, evicted, out.Evicted)
			}
		}
		if i%1024 == 0 {
			if err := c.CheckInvariants(); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		return err
	}
	if low.writebacks != oracle.Writebacks() {
		return fmt.Errorf("writeback count diverged: model %d, oracle %d", low.writebacks, oracle.Writebacks())
	}
	return nil
}

func hitMiss(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// diffLines returns the single element of before missing from after (both
// sorted) and how many elements differ that way.
func diffLines(before, after []mem.Addr) (mem.Addr, int) {
	var gone mem.Addr
	n := 0
	for _, b := range before {
		found := false
		for _, a := range after {
			if a == b {
				found = true
				break
			}
		}
		if !found {
			gone = b
			n++
		}
	}
	return gone, n
}

// frameFor fabricates a deterministic page-aligned physical frame for a
// virtual page, for TLB streams that do not involve a real page table.
func frameFor(vpn mem.Addr) mem.Addr {
	return mem.Addr(uint64(vpn)*2654435761+0x1000) << mem.PageBits
}

// DiffTLB replays a seeded virtual-address stream through the real
// set-associative TLB and the linear-scan oracle, comparing every lookup's
// hit/miss outcome and returned frame, and the final eviction counts.
func DiffTLB(entries, ways, n int, seed int64) error {
	real, err := tlb.New(tlb.Config{Name: "DUT", Entries: entries, Ways: ways, Latency: 1})
	if err != nil {
		return err
	}
	oracle := NewOracleTLB(entries, ways)
	r := newRNG(seed)

	pagePool := entries * 4
	hotPool := entries / 2
	for i := 0; i < n; i++ {
		var page int
		if r.intn(100) < 60 {
			page = r.intn(hotPool)
		} else {
			page = r.intn(pagePool)
		}
		va := mem.Addr(page)<<mem.PageBits | mem.Addr(r.intn(mem.PageSize))
		f1, h1 := real.Lookup(va)
		f2, h2 := oracle.Lookup(va)
		if h1 != h2 {
			return fmt.Errorf("lookup %d (va %#x): model %s, oracle %s", i, va, hitMiss(h1), hitMiss(h2))
		}
		if h1 && f1 != f2 {
			return fmt.Errorf("lookup %d (va %#x): model frame %#x, oracle frame %#x", i, va, f1, f2)
		}
		if !h1 {
			frame := frameFor(mem.PageNumber(va))
			real.Insert(va, frame)
			oracle.Insert(va, frame)
		} else if r.intn(100) == 0 {
			// Occasionally remap a resident page (Insert's refresh path).
			frame := frameFor(mem.PageNumber(va)) + mem.PageSize
			real.Insert(va, frame)
			oracle.Insert(va, frame)
		}
	}
	if err := real.CheckInvariants(); err != nil {
		return err
	}
	if err := oracle.Err(); err != nil {
		return err
	}
	if got, want := real.Stats().Evictions, oracle.Evictions(); got != want {
		return fmt.Errorf("eviction count diverged: model %d, oracle %d", got, want)
	}
	return nil
}

// DiffWalker replays random virtual addresses through the real page-table
// walker (with paging-structure caches) and checks every result against the
// naive oracle: the page table's own radix translation, and a full
// five-level walk whose step structure is re-derived independently (levels
// strictly descending to the leaf, each PTE address recomputed from the
// owning table's frame and the VA's radix chunk).
func DiffWalker(n int, seed int64, huge bool) error {
	alloc, err := vm.NewFrameAllocator(32, true)
	if err != nil {
		return err
	}
	pt, err := vm.NewPageTable(alloc)
	if err != nil {
		return err
	}
	if huge {
		if err := pt.SetHugePages(true); err != nil {
			return err
		}
	}
	psc := tlb.NewPSC(tlb.DefaultPSCSizes())
	walker, err := ptw.NewWalker(pt, psc, &fixedLower{lat: 20}, 0)
	if err != nil {
		return err
	}
	leaf := 1
	if huge {
		leaf = 2
	}

	r := newRNG(seed)
	// Spread pages over several sparse VA regions so walks disagree at
	// every radix level, not just the leaf.
	bases := []mem.Addr{0, 1 << 30, 1 << 39, 1 << 48, 5 << 48}
	cycle := int64(0)
	for i := 0; i < n; i++ {
		va := bases[r.intn(len(bases))] +
			mem.Addr(r.intn(2048))<<mem.PageBits + mem.Addr(r.intn(mem.PageSize))

		// Oracle: the radix table's own translation plus an un-trimmed walk.
		want, err := pt.Translate(va)
		if err != nil {
			return fmt.Errorf("walk %d (va %#x): oracle translate: %w", i, va, err)
		}
		full, fullPA, err := pt.Walk(va, mem.PTLevels)
		if err != nil {
			return fmt.Errorf("walk %d (va %#x): oracle walk: %w", i, va, err)
		}
		if fullPA != want {
			return fmt.Errorf("walk %d (va %#x): oracle walk PA %#x != translate PA %#x", i, va, fullPA, want)
		}
		if err := checkWalkSteps(pt, va, full, leaf); err != nil {
			return fmt.Errorf("walk %d (va %#x): %w", i, va, err)
		}

		cycle += 256
		res, err := walker.Walk(va, 0x40_0000, cycle)
		if err != nil {
			return fmt.Errorf("walk %d (va %#x): model: %w", i, va, err)
		}
		if res.PA != want {
			return fmt.Errorf("walk %d (va %#x): model PA %#x, oracle PA %#x", i, va, res.PA, want)
		}
		if res.Huge != huge {
			return fmt.Errorf("walk %d (va %#x): model huge=%v, table maps huge=%v", i, va, res.Huge, huge)
		}
		if res.Steps < 1 || res.Steps > len(full) {
			return fmt.Errorf("walk %d (va %#x): model performed %d PTE reads, full walk has %d",
				i, va, res.Steps, len(full))
		}
		if res.Ready <= cycle {
			return fmt.Errorf("walk %d (va %#x): ready %d not after issue %d", i, va, res.Ready, cycle)
		}
	}
	return walker.CheckInvariants()
}

// checkWalkSteps re-derives the structure of a full radix walk: levels
// descend one by one from the root to the leaf, exactly the last step is a
// leaf, and every PTE address below the root equals the owning table's
// frame plus the VA's radix index at that level.
func checkWalkSteps(pt *vm.PageTable, va mem.Addr, steps []vm.WalkStep, leaf int) error {
	if want := mem.PTLevels - leaf + 1; len(steps) != want {
		return fmt.Errorf("full walk has %d steps, want %d", len(steps), want)
	}
	for j, s := range steps {
		if wantLevel := mem.PTLevels - j; s.Level != wantLevel {
			return fmt.Errorf("step %d at level %d, want %d", j, s.Level, wantLevel)
		}
		if s.Leaf != (s.Level == leaf) {
			return fmt.Errorf("step %d (level %d) leaf flag %v", j, s.Level, s.Leaf)
		}
		if s.Level < mem.PTLevels {
			// The level-L PTE lives in the level-L table, whose frame the
			// oracle recovers via NodeFrame(va, L+1).
			tf, ok := pt.NodeFrame(va, s.Level+1)
			if !ok {
				return fmt.Errorf("step %d (level %d): oracle cannot locate table", j, s.Level)
			}
			want := tf + mem.Addr(mem.VPNChunk(va, s.Level))*mem.PTESize
			if s.PTEAddr != want {
				return fmt.Errorf("step %d (level %d): PTE address %#x, oracle computes %#x",
					j, s.Level, s.PTEAddr, want)
			}
		}
	}
	return nil
}

// DiffMMU replays a virtual-address stream through a complete MMU frontend
// (DTLB → STLB → walker) and mirrors the TLB ladder with two linear-scan
// oracles, asserting every translation's physical address matches the page
// table and the replay classification (STLBMiss) matches the oracle ladder.
func DiffMMU(n int, seed int64) error {
	alloc, err := vm.NewFrameAllocator(32, true)
	if err != nil {
		return err
	}
	pt, err := vm.NewPageTable(alloc)
	if err != nil {
		return err
	}
	psc := tlb.NewPSC(tlb.DefaultPSCSizes())
	walker, err := ptw.NewWalker(pt, psc, &fixedLower{lat: 20}, 0)
	if err != nil {
		return err
	}
	dtlb, err := tlb.New(tlb.Config{Name: "DTLB", Entries: 64, Ways: 4, Latency: 1})
	if err != nil {
		return err
	}
	stlb, err := tlb.New(tlb.Config{Name: "STLB", Entries: 256, Ways: 8, Latency: 8})
	if err != nil {
		return err
	}
	mmu, err := ptw.NewMMU(dtlb, nil, stlb, walker)
	if err != nil {
		return err
	}
	od := NewOracleTLB(64, 4)
	os := NewOracleTLB(256, 8)

	r := newRNG(seed)
	cycle := int64(0)
	for i := 0; i < n; i++ {
		var page int
		if r.intn(100) < 55 {
			page = r.intn(128) // DTLB/STLB-friendly hot pages
		} else {
			page = r.intn(4096) // beyond STLB reach: forces walks
		}
		va := mem.Addr(page)<<mem.PageBits | mem.Addr(r.intn(mem.PageSize))
		cycle += 512

		tr, err := mmu.Translate(va, 0x40_0000, cycle)
		if err != nil {
			return fmt.Errorf("translate %d (va %#x): %w", i, va, err)
		}
		want, err := pt.Translate(va)
		if err != nil {
			return fmt.Errorf("translate %d (va %#x): oracle: %w", i, va, err)
		}
		if tr.PA != want {
			return fmt.Errorf("translate %d (va %#x): model PA %#x, oracle PA %#x", i, va, tr.PA, want)
		}

		// Mirror the DTLB → STLB → walk ladder with the oracles.
		wantMiss := false
		if f, hit := od.Lookup(va); hit {
			if got := f | mem.PageOffset(va); got != want {
				return fmt.Errorf("translate %d (va %#x): oracle DTLB frame stale: %#x vs %#x", i, va, got, want)
			}
		} else if f, hit := os.Lookup(va); hit {
			od.Insert(va, f)
			if got := f | mem.PageOffset(va); got != want {
				return fmt.Errorf("translate %d (va %#x): oracle STLB frame stale: %#x vs %#x", i, va, got, want)
			}
		} else {
			wantMiss = true
			frame := mem.PageBase(want)
			os.Insert(va, frame)
			od.Insert(va, frame)
		}
		if tr.STLBMiss != wantMiss {
			return fmt.Errorf("translate %d (va %#x): model STLBMiss=%v, oracle ladder says %v",
				i, va, tr.STLBMiss, wantMiss)
		}
	}
	if err := mmu.CheckInvariants(); err != nil {
		return err
	}
	if err := od.Err(); err != nil {
		return err
	}
	return os.Err()
}

// PolicyHits replays a loads-only op stream through the real cache under
// the named replacement policy and returns its demand hit count — the
// number the OPT oracle upper-bounds.
func PolicyHits(policy string, ops []Op, sets, ways int) (uint64, error) {
	c, err := cache.New(cache.Config{
		Name: "DUT", Level: mem.LvlLLC,
		SizeBytes: sets * ways * mem.LineSize, Ways: ways,
		Latency: 1, MSHRs: 16, Policy: policy,
	}, &fixedLower{lat: 8})
	if err != nil {
		return 0, err
	}
	cycle := int64(0)
	for _, op := range ops {
		cycle += opSpacing
		c.Access(op.request(0), cycle)
	}
	if err := c.CheckInvariants(); err != nil {
		return 0, err
	}
	st := c.Stats()
	return st.TotalAccess() - st.TotalMiss(), nil
}

// Lines projects an op stream to its line-address sequence (the OPT
// oracle's input).
func Lines(ops []Op) []mem.Addr {
	out := make([]mem.Addr, len(ops))
	for i, op := range ops {
		out[i] = mem.LineAddr(op.Addr)
	}
	return out
}
