package validate

import (
	"testing"

	"atcsim/internal/cache"
	"atcsim/internal/mem"
	"atcsim/internal/repl"
)

// decodeOps turns fuzz bytes into a differential op stream: two bytes per
// op — a kind selector and a line id from a 64-line universe, small enough
// that a tiny cache geometry sees constant conflict pressure.
func decodeOps(data []byte) []Op {
	const maxOps = 4096
	ops := make([]Op, 0, len(data)/2)
	for i := 0; i+1 < len(data) && len(ops) < maxOps; i += 2 {
		sel, id := data[i], data[i+1]
		addr := mem.Addr(id&0x3F) << mem.LineBits
		var o Op
		switch sel % 8 {
		case 0, 1, 2, 3:
			o = Op{Kind: mem.Load, IP: 0x40_0000 + mem.Addr(sel&0x30), Addr: addr}
		case 4:
			o = Op{Kind: mem.Store, IP: 0x40_0040, Addr: addr}
		case 5:
			o = Op{Kind: mem.Writeback, Addr: addr}
		case 6:
			o = Op{
				Kind: mem.Translation, IP: 0x40_0080, Addr: addr,
				Level: 1, Leaf: true, ReplayTarget: mem.Addr(id) << mem.LineBits,
			}
		default:
			o = Op{Kind: mem.Translation, IP: 0x40_0080, Addr: addr, Level: 2 + int(sel>>6)%4}
		}
		ops = append(ops, o)
	}
	return ops
}

// FuzzCacheDifferential replays arbitrary byte-derived op streams through
// the real cache and the brute-force LRU oracle on two adversarial
// geometries. Any divergence — hit/miss, victim, set contents, writeback
// count — or invariant violation fails the run.
func FuzzCacheDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 4, 1, 5, 2, 6, 3, 7, 4, 0, 1, 0, 2})
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Add([]byte{5, 0, 0, 1, 5, 0, 0, 2, 0, 3, 0, 0}) // writeback-allocate then conflict
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeOps(data)
		if len(ops) == 0 {
			return
		}
		if err := DiffCache(ops, 4, 2); err != nil {
			t.Fatalf("4x2: %v", err)
		}
		if err := DiffCache(ops, 1, 8); err != nil {
			t.Fatalf("fully-assoc 1x8: %v", err)
		}
	})
}

// FuzzQueuedHierarchy feeds byte-derived op streams through the queued
// timing engine two ways: the lockstep differential against the analytic
// engine with default-size deques (state must match exactly), and a
// tiny-deque two-level hierarchy replayed back-to-back so full-queue,
// forward, merge and MSHR-blocking paths fire constantly under the
// invariant checkers. Seed corpus under testdata/fuzz covers the
// full-queue-burst and duplicate-address-merge edge cases.
func FuzzQueuedHierarchy(f *testing.F) {
	// Burst of distinct loads: overlapping misses fill the read queue.
	burst := make([]byte, 0, 64)
	for id := byte(0); id < 32; id++ {
		burst = append(burst, 0, id)
	}
	f.Add(burst)
	// Duplicate leaf translations with the same replay target: ATP fires
	// repeatedly for one line, exercising VAPQ staging and PQ merging.
	f.Add([]byte{6, 9, 6, 9, 6, 9, 0, 9, 6, 9, 6, 9})
	// Store, then load of the same line, then writebacks: the dirty-evict →
	// lower-WQ → forward path.
	f.Add([]byte{4, 5, 0, 5, 5, 5, 4, 13, 0, 13, 5, 5, 0, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeOps(data)
		if len(ops) == 0 {
			return
		}
		for _, tc := range TimingConfigs() {
			if err := DiffTiming(ops, tc); err != nil {
				t.Fatalf("lockstep %s: %v", tc.Name, err)
			}
		}
		tiny := cache.QueueConfig{RQ: 2, WQ: 1, PQ: 1, VAPQ: 1, MaxRead: 1, MaxWrite: 1}
		if err := StressQueued(ops, 2, tiny); err != nil {
			t.Fatalf("stress: %v", err)
		}
	})
}

// FuzzReplPolicy drives every registered replacement policy as a bare state
// machine with a byte-derived access stream, mirroring the cache's calling
// convention (Victim only on full sets, Evicted before the replacing
// Insert, Hit only on residents). It asserts victims are in range and
// respect the evictable predicate, and runs each policy's invariant checker
// as it goes.
func FuzzReplPolicy(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 0xFF, 0x80})
	f.Add([]byte("aaaaaaaabbbbbbbbccccccccdddddddd"))
	f.Fuzz(func(t *testing.T, data []byte) {
		const sets, ways, maxSteps = 4, 4, 4096
		for _, name := range repl.Names() {
			p := repl.MustNew(name, sets, ways)
			// resident[set][way] is the line in that way, 0 = invalid.
			resident := make([][]mem.Addr, sets)
			for s := range resident {
				resident[s] = make([]mem.Addr, ways)
			}
			steps := 0
			for i := 0; i+1 < len(data) && steps < maxSteps; i, steps = i+2, steps+1 {
				sel, id := data[i], data[i+1]
				line := mem.Addr(id&0x1F) + 1 // 32 lines, never 0
				set := int(uint64(line) % sets)
				a := &repl.Access{
					IP:      0x40_0000 + mem.Addr(sel&0x0C),
					Line:    line,
					Class:   mem.Class(int(sel>>4) % int(mem.NumClasses)),
					Kind:    mem.Load,
					Distant: sel&0x40 != 0,
				}
				way := -1
				for w := 0; w < ways; w++ {
					if resident[set][w] == line {
						way = w
						break
					}
				}
				if way >= 0 {
					p.Hit(set, way, a)
					continue
				}
				for w := 0; w < ways; w++ {
					if resident[set][w] == 0 {
						way = w
						break
					}
				}
				if way < 0 {
					// Full set: sel bit 7 masks way 0 as un-evictable
					// (an in-flight fill), exercising the retry path.
					evictable := func(w int) bool { return sel&0x80 == 0 || w != 0 }
					way = p.Victim(set, a, evictable)
					if way < 0 || way >= ways {
						t.Fatalf("%s: victim way %d out of range", name, way)
					}
					if !evictable(way) {
						t.Fatalf("%s: victim way %d violates evictable predicate", name, way)
					}
					p.Evicted(set, way)
				}
				resident[set][way] = line
				p.Insert(set, way, a)

				if ck, ok := p.(repl.Checker); ok && steps%256 == 0 {
					if err := ck.CheckInvariants(); err != nil {
						t.Fatalf("%s after step %d: %v", name, steps, err)
					}
				}
			}
			if ck, ok := p.(repl.Checker); ok {
				if err := ck.CheckInvariants(); err != nil {
					t.Fatalf("%s at end: %v", name, err)
				}
			}
		}
	})
}
