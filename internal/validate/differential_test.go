package validate

import (
	"testing"
)

// diffStreamLen is the per-stream replay length for the differential suite;
// the issue's acceptance bar is ≥ 10k requests per seeded stream.
const diffStreamLen = 12000

func TestDiffCacheLRU(t *testing.T) {
	t.Parallel()
	geos := []struct {
		name       string
		sets, ways int
	}{
		{"16x4", 16, 4},
		{"64x8", 64, 8},
		{"fully-assoc-1x32", 1, 32},
		{"direct-mapped-128x1", 128, 1},
	}
	for _, g := range geos {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				ops := Stream(seed, diffStreamLen, g.sets*g.ways)
				if err := DiffCache(ops, g.sets, g.ways); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestDiffTLB(t *testing.T) {
	t.Parallel()
	geos := []struct {
		name          string
		entries, ways int
	}{
		{"64x4", 64, 4},
		{"256x8", 256, 8},
		{"fully-assoc-32x32", 32, 32},
	}
	for _, g := range geos {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				if err := DiffTLB(g.entries, g.ways, diffStreamLen, seed); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestDiffWalker(t *testing.T) {
	t.Parallel()
	t.Run("4KB", func(t *testing.T) {
		t.Parallel()
		if err := DiffWalker(3000, 11, false); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("2MB", func(t *testing.T) {
		t.Parallel()
		if err := DiffWalker(3000, 12, true); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDiffMMU(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 2; seed++ {
		if err := DiffMMU(diffStreamLen, seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestOPTUpperBound replays identical loads-only streams through every
// registered-for-LLC replacement policy and asserts none beats Belady — the
// oracle's hit count is an exact upper bound for allocate-on-miss policies.
func TestOPTUpperBound(t *testing.T) {
	t.Parallel()
	const sets, ways = 64, 8
	policies := []string{"lru", "srrip", "brrip", "drrip", "t-drrip", "ship", "hawkeye"}
	for seed := int64(1); seed <= 3; seed++ {
		ops := LoadStream(seed, diffStreamLen, sets*ways)
		opt := OPTHits(Lines(ops), sets, ways)
		for _, pol := range policies {
			hits, err := PolicyHits(pol, ops, sets, ways)
			if err != nil {
				t.Fatalf("seed %d policy %s: %v", seed, pol, err)
			}
			if hits > opt {
				t.Errorf("seed %d: policy %s got %d hits, exceeding OPT's %d", seed, pol, hits, opt)
			}
			t.Logf("seed %d %-8s %6d hits (OPT %d, ratio %.3f)", seed, pol, hits, opt, float64(hits)/float64(opt))
		}
	}
}

// TestHawkeyeTracksOPT pins Hawkeye's learned-from-OPTgen behaviour: on a
// mixed hot/scan/random stream its hit count must stay within a bounded gap
// of true OPT — and ahead of plain LRU, which the scan component defeats.
// The 0.80 floor is empirical (observed 0.92–0.93 across seeds; see
// DESIGN.md § Validation) with margin for future tuning of the predictor.
func TestHawkeyeTracksOPT(t *testing.T) {
	t.Parallel()
	const sets, ways = 64, 8
	const floor = 0.80
	for seed := int64(1); seed <= 3; seed++ {
		ops := LoadStream(seed, diffStreamLen, sets*ways)
		opt := OPTHits(Lines(ops), sets, ways)
		if opt == 0 {
			t.Fatalf("seed %d: degenerate stream, OPT has no hits", seed)
		}
		hawk, err := PolicyHits("hawkeye", ops, sets, ways)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(hawk) / float64(opt)
		t.Logf("seed %d: hawkeye %d / OPT %d = %.3f", seed, hawk, opt, ratio)
		if ratio < floor {
			t.Errorf("seed %d: hawkeye/OPT ratio %.3f below documented floor %.2f", seed, ratio, floor)
		}
	}
}
