package validate

import (
	"math"

	"atcsim/internal/mem"
)

// OPTHits returns the number of hits Belady's optimal replacement achieves
// on the given line-address stream for a sets×ways cache. The oracle sees
// the full future trace: on every miss in a full set it evicts the resident
// whose next use lies farthest in the future (never, for lines not
// referenced again). Like the simulated caches it must allocate on every
// miss (no bypass), so its hit count is the exact upper bound for every
// allocate-on-miss policy the simulator implements — LRU, DRRIP, SHiP and
// Hawkeye can match it but never exceed it.
//
// Sets are independent under a set-indexed cache, so the stream is split
// per set and each set is solved exactly.
func OPTHits(lines []mem.Addr, sets, ways int) uint64 {
	perSet := make(map[int][]int, sets)
	for i, line := range lines {
		set := int(uint64(line) % uint64(sets))
		perSet[set] = append(perSet[set], i)
	}
	var hits uint64
	for _, idxs := range perSet {
		seq := make([]mem.Addr, len(idxs))
		for j, i := range idxs {
			seq[j] = lines[i]
		}
		hits += optHitsOneSet(seq, ways)
	}
	return hits
}

// optHitsOneSet solves Belady exactly for one set's access sequence.
func optHitsOneSet(seq []mem.Addr, ways int) uint64 {
	// next[i] is the position of the next access to seq[i]'s line after i,
	// or infinity when the line is never referenced again.
	const inf = math.MaxInt
	next := make([]int, len(seq))
	last := make(map[mem.Addr]int, ways*4)
	for i := len(seq) - 1; i >= 0; i-- {
		if j, ok := last[seq[i]]; ok {
			next[i] = j
		} else {
			next[i] = inf
		}
		last[seq[i]] = i
	}

	type resident struct {
		line mem.Addr
		next int
	}
	res := make([]resident, 0, ways)
	var hits uint64
	for i, line := range seq {
		found := -1
		for j := range res {
			if res[j].line == line {
				found = j
				break
			}
		}
		if found >= 0 {
			hits++
			res[found].next = next[i]
			continue
		}
		if len(res) < ways {
			res = append(res, resident{line: line, next: next[i]})
			continue
		}
		// Evict the resident reused farthest in the future.
		far := 0
		for j := 1; j < len(res); j++ {
			if res[j].next > res[far].next {
				far = j
			}
		}
		res[far] = resident{line: line, next: next[i]}
	}
	return hits
}
