package validate

import (
	"testing"

	"atcsim/internal/mem"
)

func lines(ids ...int) []mem.Addr {
	out := make([]mem.Addr, len(ids))
	for i, id := range ids {
		out[i] = mem.Addr(id)
	}
	return out
}

// TestOPTHandComputed checks Belady on sequences small enough to solve on
// paper.
func TestOPTHandComputed(t *testing.T) {
	t.Parallel()
	const a, b, c, d = 1, 2, 3, 4
	cases := []struct {
		name       string
		seq        []mem.Addr
		sets, ways int
		want       uint64
	}{
		// Cyclic ABCABC over 2 ways: OPT keeps A through the first cycle
		// (evicting B, reused farthest), then C — 2 hits where LRU gets 0.
		{"cyclic-beats-lru", lines(a, b, c, a, b, c), 1, 2, 2},
		// Pure scan: nothing is ever reused.
		{"scan", lines(a, b, c, d, a+8, b+8, c+8, d+8), 1, 2, 0},
		// Everything fits: all reuses hit.
		{"fits", lines(a, b, a, b, a, b), 1, 2, 4},
		// Single way: only consecutive repeats can hit.
		{"one-way", lines(a, a, b, b, a), 1, 1, 2},
		// Two sets are independent: odd/even lines interleaved; each set
		// sees a,a → 1 hit per set.
		{"set-split", lines(2, 3, 2, 3), 2, 1, 2},
		{"empty", nil, 4, 4, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if got := OPTHits(tc.seq, tc.sets, tc.ways); got != tc.want {
				t.Errorf("OPTHits = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestOPTDominatesOracleLRU is the property-based counterpart: on random
// streams Belady must never trail the brute-force LRU oracle.
func TestOPTDominatesOracleLRU(t *testing.T) {
	t.Parallel()
	const sets, ways = 16, 4
	for seed := int64(1); seed <= 10; seed++ {
		ops := LoadStream(seed, 4000, sets*ways)
		seq := Lines(ops)
		oracle := NewOracleCache(sets, ways)
		var lruHits uint64
		for _, line := range seq {
			if oracle.Access(line<<mem.LineBits, false).Hit {
				lruHits++
			}
		}
		opt := OPTHits(seq, sets, ways)
		if opt < lruHits {
			t.Errorf("seed %d: OPT %d hits < oracle LRU %d hits", seed, opt, lruHits)
		}
	}
}
