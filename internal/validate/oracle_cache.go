package validate

import (
	"sort"

	"atcsim/internal/mem"
)

// OracleCache is a brute-force set-associative cache with true-LRU
// replacement: per-set slices, linear tag search, a global access clock.
// With sets == 1 it is a fully-associative cache. It models exactly the
// functional behaviour of internal/cache with the "lru" policy — hit/miss,
// victim selection, dirty-line writebacks — with none of the timing
// machinery, so the differential driver can replay one stream through both
// and compare step by step.
type OracleCache struct {
	sets, ways int
	lines      [][]oline
	clock      uint64
	writebacks uint64
}

type oline struct {
	line  mem.Addr
	stamp uint64
	dirty bool
}

// OracleOutcome reports what one access did to the oracle.
type OracleOutcome struct {
	Hit bool
	// Evicted is the victim line when the access displaced a resident
	// block; HasEvict distinguishes eviction from filling an empty way.
	Evicted   mem.Addr
	HasEvict  bool
	Writeback bool // the victim was dirty
}

// NewOracleCache builds the oracle for a sets×ways geometry (sets must be a
// power of two to mirror the real index function).
func NewOracleCache(sets, ways int) *OracleCache {
	o := &OracleCache{sets: sets, ways: ways, lines: make([][]oline, sets)}
	for i := range o.lines {
		o.lines[i] = make([]oline, 0, ways)
	}
	return o
}

func (o *OracleCache) setOf(line mem.Addr) int { return int(uint64(line) % uint64(o.sets)) }

// Access services one demand/translation access to the line containing
// addr. Stores mark the block dirty. Misses allocate, evicting the
// least-recently-used resident when the set is full.
func (o *OracleCache) Access(addr mem.Addr, store bool) OracleOutcome {
	line := addr >> mem.LineBits
	set := o.setOf(line)
	for i := range o.lines[set] {
		b := &o.lines[set][i]
		if b.line == line {
			o.clock++
			b.stamp = o.clock
			if store {
				b.dirty = true
			}
			return OracleOutcome{Hit: true}
		}
	}
	out := o.fill(set, line, store)
	return out
}

// AbsorbWriteback services a writeback arriving from a level above,
// mirroring the real cache's write-allocate-without-promotion semantics: a
// present line is only marked dirty (its LRU stamp is NOT refreshed); an
// absent line allocates normally and is dirty from birth.
func (o *OracleCache) AbsorbWriteback(addr mem.Addr) OracleOutcome {
	line := addr >> mem.LineBits
	set := o.setOf(line)
	for i := range o.lines[set] {
		b := &o.lines[set][i]
		if b.line == line {
			b.dirty = true
			return OracleOutcome{Hit: true}
		}
	}
	return o.fill(set, line, true)
}

// fill allocates line into set, evicting the true-LRU resident when full.
func (o *OracleCache) fill(set int, line mem.Addr, dirty bool) OracleOutcome {
	var out OracleOutcome
	s := o.lines[set]
	if len(s) >= o.ways {
		lru := 0
		for i := range s {
			if s[i].stamp < s[lru].stamp {
				lru = i
			}
		}
		out.HasEvict = true
		out.Evicted = s[lru].line
		out.Writeback = s[lru].dirty
		if out.Writeback {
			o.writebacks++
		}
		s[lru] = s[len(s)-1]
		s = s[:len(s)-1]
	}
	o.clock++
	o.lines[set] = append(s, oline{line: line, stamp: o.clock, dirty: dirty})
	return out
}

// Contents returns the sorted resident lines of a set.
func (o *OracleCache) Contents(set int) []mem.Addr {
	out := make([]mem.Addr, 0, len(o.lines[set]))
	for i := range o.lines[set] {
		out = append(out, o.lines[set][i].line)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Writebacks returns the number of dirty evictions performed.
func (o *OracleCache) Writebacks() uint64 { return o.writebacks }
