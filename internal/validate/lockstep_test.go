package validate

import (
	"testing"

	"atcsim/internal/cache"
)

// lockstepOps is the per-class stream length: the acceptance bar is
// agreement over at least 10k seeded requests per workload class.
const lockstepOps = 10_000

// TestLockstepPerClass proves the analytic and queued engines agree on
// hit/miss, servicing level, eviction victims and full cache contents for
// every request-class-dominated stream, across all lockstep configurations.
func TestLockstepPerClass(t *testing.T) {
	for _, class := range StreamClasses() {
		for _, tc := range TimingConfigs() {
			class, tc := class, tc
			t.Run(class+"/"+tc.Name, func(t *testing.T) {
				t.Parallel()
				ops, err := ClassStream(class, 42, lockstepOps, 64)
				if err != nil {
					t.Fatal(err)
				}
				if err := DiffTiming(ops, tc); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestLockstepMixedStream runs the generic mixed stream (the one the other
// differential drivers use) through the lockstep harness on several seeds.
func TestLockstepMixedStream(t *testing.T) {
	for _, seed := range []int64{1, 7, 1234} {
		for _, tc := range TimingConfigs() {
			seed, tc := seed, tc
			t.Run(tc.Name, func(t *testing.T) {
				t.Parallel()
				if err := DiffTiming(Stream(seed, lockstepOps, 64), tc); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			})
		}
	}
}

// TestLockstepUnknownClass pins the ClassStream error path.
func TestLockstepUnknownClass(t *testing.T) {
	if _, err := ClassStream("nope", 1, 8, 8); err == nil {
		t.Fatal("unknown class accepted")
	}
}

// TestStressQueuedTinyQueues hammers a two-level queued hierarchy with
// near-zero spacing and 1–2 entry deques: every backpressure path fires and
// the invariant checkers must stay green throughout.
func TestStressQueuedTinyQueues(t *testing.T) {
	tiny := cache.QueueConfig{RQ: 2, WQ: 1, PQ: 1, VAPQ: 1, MaxRead: 1, MaxWrite: 1}
	for _, seed := range []int64{3, 99} {
		if err := StressQueued(Stream(seed, lockstepOps, 32), 2, tiny); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
