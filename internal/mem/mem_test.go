package mem

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if LineSize != 64 {
		t.Fatalf("LineSize = %d, want 64", LineSize)
	}
	if PageSize != 4096 {
		t.Fatalf("PageSize = %d, want 4096", PageSize)
	}
	if LinesPerPage != 64 {
		t.Fatalf("LinesPerPage = %d, want 64", LinesPerPage)
	}
	if PTEsPerLine != 8 {
		t.Fatalf("PTEsPerLine = %d, want 8", PTEsPerLine)
	}
	if got := PageBits + PTLevels*LevelBits; got != VABits {
		t.Fatalf("page bits + levels*9 = %d, want %d", got, VABits)
	}
}

func TestLineArithmetic(t *testing.T) {
	a := Addr(0x12345)
	if LineBase(a) != 0x12340 {
		t.Errorf("LineBase(%#x) = %#x", a, LineBase(a))
	}
	if LineOffset(a) != 5 {
		t.Errorf("LineOffset(%#x) = %d", a, LineOffset(a))
	}
	if LineAddr(a) != 0x12345>>6 {
		t.Errorf("LineAddr(%#x) = %#x", a, LineAddr(a))
	}
}

func TestPageArithmetic(t *testing.T) {
	a := Addr(0xABCDE)
	if PageBase(a) != 0xAB000 {
		t.Errorf("PageBase(%#x) = %#x", a, PageBase(a))
	}
	if PageOffset(a) != 0xCDE {
		t.Errorf("PageOffset(%#x) = %#x", a, PageOffset(a))
	}
	if PageNumber(a) != 0xAB {
		t.Errorf("PageNumber(%#x) = %#x", a, PageNumber(a))
	}
}

func TestLineInPage(t *testing.T) {
	// Byte 0xCDE of the page sits in line 0xCDE>>6 = 0x33.
	if got := LineInPage(0xABCDE); got != 0x33 {
		t.Errorf("LineInPage = %#x, want 0x33", got)
	}
	if got := LineInPage(0x1000); got != 0 {
		t.Errorf("LineInPage(page base) = %d, want 0", got)
	}
	if got := LineInPage(0x1FFF); got != 63 {
		t.Errorf("LineInPage(page end) = %d, want 63", got)
	}
}

func TestVPNChunkCoversVA(t *testing.T) {
	// Reassembling the five chunks plus the page offset must reproduce the
	// low 57 bits of the address.
	f := func(raw uint64) bool {
		va := Addr(raw) & (1<<VABits - 1)
		var rebuilt uint64
		for lvl := PTLevels; lvl >= 1; lvl-- {
			rebuilt = rebuilt<<LevelBits | VPNChunk(va, lvl)
		}
		rebuilt = rebuilt<<PageBits | uint64(PageOffset(va))
		return rebuilt == uint64(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVPNPrefixNesting(t *testing.T) {
	// Two addresses with equal prefixes at level k must have equal prefixes
	// at all higher levels.
	f := func(a, b uint64) bool {
		va, vb := Addr(a)&(1<<VABits-1), Addr(b)&(1<<VABits-1)
		for lvl := 1; lvl < PTLevels; lvl++ {
			if VPNPrefix(va, lvl) == VPNPrefix(vb, lvl) &&
				VPNPrefix(va, lvl+1) != VPNPrefix(vb, lvl+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHugePageArithmetic(t *testing.T) {
	a := Addr(0x1234_5678)
	if HugePageBase(a) != a&^(HugePageSize-1) {
		t.Errorf("HugePageBase(%#x) = %#x", a, HugePageBase(a))
	}
	if HugePageNumber(a) != a>>21 {
		t.Errorf("HugePageNumber(%#x) = %#x", a, HugePageNumber(a))
	}
	if HugePageSize != 2<<20 {
		t.Errorf("HugePageSize = %d", HugePageSize)
	}
}

func TestRequestClass(t *testing.T) {
	cases := []struct {
		req  Request
		want Class
	}{
		{Request{Kind: Load}, ClassNonReplay},
		{Request{Kind: Store}, ClassNonReplay},
		{Request{Kind: Load, IsReplay: true}, ClassReplay},
		{Request{Kind: Store, IsReplay: true}, ClassReplay},
		{Request{Kind: Translation, Level: 1, Leaf: true}, ClassTransLeaf},
		{Request{Kind: Translation, Level: 2}, ClassTransUpper},
		{Request{Kind: Translation, Level: 5}, ClassTransUpper},
		{Request{Kind: Prefetch}, ClassPrefetch},
		{Request{Kind: Writeback}, ClassWriteback},
	}
	for _, c := range cases {
		if got := c.req.Class(); got != c.want {
			t.Errorf("class(%v lvl=%d replay=%v) = %v, want %v",
				c.req.Kind, c.req.Level, c.req.IsReplay, got, c.want)
		}
	}
}

func TestRequestLeafPredicates(t *testing.T) {
	leaf := Request{Kind: Translation, Level: 1, Leaf: true}
	if !leaf.IsTranslation() || !leaf.IsLeaf() {
		t.Error("leaf translation predicates wrong")
	}
	upper := Request{Kind: Translation, Level: 3}
	if !upper.IsTranslation() || upper.IsLeaf() {
		t.Error("upper translation predicates wrong")
	}
	load := Request{Kind: Load}
	if load.IsTranslation() || load.IsLeaf() {
		t.Error("load predicates wrong")
	}
}

func TestStringers(t *testing.T) {
	kinds := map[Kind]string{
		Load: "load", Store: "store", IFetch: "ifetch",
		Translation: "translation", Prefetch: "prefetch", Writeback: "writeback",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	classes := map[Class]string{
		ClassNonReplay: "non-replay", ClassReplay: "replay",
		ClassTransLeaf: "trans-leaf", ClassTransUpper: "trans-upper",
		ClassPrefetch: "prefetch", ClassWriteback: "writeback",
	}
	for c, want := range classes {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
	levels := map[Level]string{LvlL1D: "L1D", LvlL2: "L2C", LvlLLC: "LLC", LvlDRAM: "DRAM"}
	for l, want := range levels {
		if l.String() != want {
			t.Errorf("Level(%d).String() = %q, want %q", l, l.String(), want)
		}
	}
}
