// Package mem defines the fundamental address arithmetic, request types and
// access-class taxonomy shared by every component of the simulator.
//
// The simulator models a 57-bit virtual address space translated through a
// five-level radix page table (Intel Sunny Cove style), 4KB pages and 64-byte
// cache lines. Eight 8-byte page-table entries share one cache line, which is
// what makes page-table entries competitive cache citizens and is the root of
// the phenomena the reproduced paper studies.
package mem

// Addr is a byte address, physical or virtual depending on context.
type Addr uint64

// Fundamental geometry constants. These are fixed by the modelled
// architecture (x86-64 with 5-level paging) and are not configurable.
const (
	LineBits = 6 // log2 of the cache-line size
	LineSize = 1 << LineBits

	PageBits = 12 // log2 of the page size
	PageSize = 1 << PageBits

	LinesPerPage = PageSize / LineSize // 64

	PTESize     = 8                  // bytes per page-table entry
	PTEsPerLine = LineSize / PTESize // 8

	VABits    = 57 // virtual address width (5-level paging)
	LevelBits = 9  // VPN bits consumed per page-table level
	PTLevels  = 5  // radix levels; level 1 is the leaf for 4KB pages

	HugePageBits = 21 // log2 of a 2MB huge page (leaf at level 2)
	HugePageSize = 1 << HugePageBits
)

// HugePageNumber returns the 2MB-page number containing a.
func HugePageNumber(a Addr) Addr { return a >> HugePageBits }

// HugePageBase returns the first byte of a's 2MB page.
func HugePageBase(a Addr) Addr { return a &^ (HugePageSize - 1) }

// LineAddr returns the cache-line number containing a.
func LineAddr(a Addr) Addr { return a >> LineBits }

// LineBase returns the address of the first byte of a's cache line.
func LineBase(a Addr) Addr { return a &^ (LineSize - 1) }

// LineOffset returns the byte offset of a within its cache line.
func LineOffset(a Addr) Addr { return a & (LineSize - 1) }

// PageNumber returns the page number containing a.
func PageNumber(a Addr) Addr { return a >> PageBits }

// PageBase returns the address of the first byte of a's page.
func PageBase(a Addr) Addr { return a &^ (PageSize - 1) }

// PageOffset returns the byte offset of a within its page.
func PageOffset(a Addr) Addr { return a & (PageSize - 1) }

// LineInPage returns the index (0..63) of a's cache line within its page.
// For a leaf-level page-walk request this is the "upper six bits of the page
// offset" that the paper's modified page-table walker carries so that ATP can
// prefetch the replay line.
func LineInPage(a Addr) uint8 { return uint8((a >> LineBits) & (LinesPerPage - 1)) }

// VPNChunk returns the 9-bit radix index used at the given page-table level
// (level in [1,5]; level 1 indexes the leaf table). For level k the chunk is
// VA[12+9k-1 : 12+9(k-1)].
func VPNChunk(va Addr, level int) uint64 {
	shift := uint(PageBits + LevelBits*(level-1))
	return uint64(va>>shift) & (1<<LevelBits - 1)
}

// VPNPrefix returns the virtual page number truncated so that all addresses
// sharing the same page-table node at the given level compare equal. It keys
// the paging-structure cache for that level: a PSCL-k entry maps the prefix
// of levels 5..k to the frame of the level k-1 table.
func VPNPrefix(va Addr, level int) uint64 {
	shift := uint(PageBits + LevelBits*(level-1))
	return uint64(va >> shift)
}

// Kind distinguishes the flavours of memory requests travelling through the
// cache hierarchy.
type Kind uint8

const (
	// Load is a demand data read.
	Load Kind = iota
	// Store is a demand write (modelled as read-for-ownership).
	Store
	// IFetch is an instruction fetch.
	IFetch
	// Translation is a page-table-walker read of a PTE line.
	Translation
	// Prefetch is a hardware prefetch.
	Prefetch
	// Writeback is a dirty-eviction write to the next level.
	Writeback
)

// String returns the lower-case mnemonic for k.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case IFetch:
		return "ifetch"
	case Translation:
		return "translation"
	case Prefetch:
		return "prefetch"
	case Writeback:
		return "writeback"
	}
	return "unknown"
}

// Class is the access taxonomy used for statistics and for the
// translation-conscious replacement policies: leaf translations, upper-level
// translations, replay loads (demand loads whose translation missed the
// STLB), non-replay loads, prefetches and writebacks.
type Class uint8

const (
	// ClassNonReplay is a demand access whose translation hit the DTLB or STLB.
	ClassNonReplay Class = iota
	// ClassReplay is a demand access whose translation walked the page table.
	ClassReplay
	// ClassTransLeaf is a page-walk read of a leaf-level (level 1) PTE line.
	ClassTransLeaf
	// ClassTransUpper is a page-walk read of an upper-level PTE line.
	ClassTransUpper
	// ClassPrefetch is a hardware prefetch fill.
	ClassPrefetch
	// ClassWriteback is a dirty writeback from an upper level.
	ClassWriteback
	// NumClasses is the number of access classes.
	NumClasses
)

// String returns the short label used in reports.
func (c Class) String() string {
	switch c {
	case ClassNonReplay:
		return "non-replay"
	case ClassReplay:
		return "replay"
	case ClassTransLeaf:
		return "trans-leaf"
	case ClassTransUpper:
		return "trans-upper"
	case ClassPrefetch:
		return "prefetch"
	case ClassWriteback:
		return "writeback"
	}
	return "unknown"
}

// Request is a memory access descriptor. One Request value describes a single
// access as it traverses TLBs, caches and DRAM; the latency-composition model
// passes it down the hierarchy by pointer.
type Request struct {
	// Addr is the physical byte address.
	Addr Addr
	// VAddr is the virtual byte address that produced Addr (zero for
	// writebacks and DRAM-side prefetches).
	VAddr Addr
	// IP is the program counter of the instruction that caused the access.
	// Page-walk requests inherit the IP of the triggering load, which is
	// exactly the signature-aliasing problem the paper identifies.
	IP Addr
	// Kind is the request flavour.
	Kind Kind
	// IsReplay marks demand accesses whose translation missed the STLB.
	IsReplay bool
	// Level is the page-table level being read (1..5) for Translation
	// requests; 0 otherwise.
	Level int
	// Leaf marks the walk step that yields the physical frame: level 1 for
	// 4KB pages, level 2 for 2MB huge pages.
	Leaf bool
	// ReplayTarget is, for leaf-level Translation requests, the physical
	// address of the cache line the triggering load will access once the
	// translation completes. In hardware the walker carries VA[11:6] and the
	// PTE supplies the frame; the simulator precomputes the full address.
	// Zero when unknown or inapplicable.
	ReplayTarget Addr
	// Core identifies the requesting core (for SMT/multi-core stats).
	Core int
}

// IsTranslation reports whether the request is a page-walk read.
func (r *Request) IsTranslation() bool { return r.Kind == Translation }

// IsLeaf reports whether the request reads a leaf-level PTE line (level 1
// for 4KB pages, level 2 under 2MB huge pages).
func (r *Request) IsLeaf() bool { return r.Kind == Translation && r.Leaf }

// Class derives the statistics/policy class of the request.
func (r *Request) Class() Class {
	switch r.Kind {
	case Translation:
		if r.Leaf {
			return ClassTransLeaf
		}
		return ClassTransUpper
	case Prefetch:
		return ClassPrefetch
	case Writeback:
		return ClassWriteback
	default:
		if r.IsReplay {
			return ClassReplay
		}
		return ClassNonReplay
	}
}

// Level identifies a level of the memory hierarchy that can service a
// request; used for the Fig. 3 service-distribution statistics.
type Level uint8

// Hierarchy levels, ordered from the core outward.
const (
	LvlL1D Level = iota
	LvlL2
	LvlLLC
	LvlDRAM
	NumLevels
)

// String returns the conventional name of the level.
func (l Level) String() string {
	switch l {
	case LvlL1D:
		return "L1D"
	case LvlL2:
		return "L2C"
	case LvlLLC:
		return "LLC"
	case LvlDRAM:
		return "DRAM"
	}
	return "unknown"
}
