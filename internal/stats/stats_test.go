package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"atcsim/internal/mem"
)

func TestClassCounters(t *testing.T) {
	var cc ClassCounters
	cc.Record(mem.ClassReplay, true)
	cc.Record(mem.ClassReplay, false)
	cc.Record(mem.ClassTransLeaf, true)
	if cc.Access[mem.ClassReplay] != 2 || cc.Miss[mem.ClassReplay] != 1 {
		t.Errorf("replay counters = %d/%d", cc.Access[mem.ClassReplay], cc.Miss[mem.ClassReplay])
	}
	if cc.TotalAccess() != 3 || cc.TotalMiss() != 2 {
		t.Errorf("totals = %d/%d", cc.TotalAccess(), cc.TotalMiss())
	}
	cc.Reset()
	if cc.TotalAccess() != 0 {
		t.Error("reset did not clear counters")
	}
}

func TestMPKI(t *testing.T) {
	if got := MPKI(500, 1_000_000); got != 0.5 {
		t.Errorf("MPKI = %v, want 0.5", got)
	}
	if got := MPKI(5, 0); got != 0 {
		t.Errorf("MPKI with zero instructions = %v, want 0", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10, 50, 100)
	for _, v := range []uint64{0, 5, 10, 11, 50, 51, 100, 1000} {
		h.Add(v)
	}
	labels, counts := h.Buckets()
	if len(labels) != 4 || len(counts) != 4 {
		t.Fatalf("bucket count = %d", len(labels))
	}
	// 0,5,10 → [0,10]; 11,50 → [11,50]; 51,100 → [51,100]; 1000 → overflow
	want := []uint64{3, 2, 2, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %s = %d, want %d", labels[i], counts[i], w)
		}
	}
	if h.Total() != 8 || h.Max() != 1000 {
		t.Errorf("total=%d max=%d", h.Total(), h.Max())
	}
	if got := h.FractionAtMost(50); got != 5.0/8 {
		t.Errorf("FractionAtMost(50) = %v", got)
	}
	if got := h.Mean(); math.Abs(got-float64(0+5+10+11+50+51+100+1000)/8) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
	h.Reset()
	if h.Total() != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Error("reset failed")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, bounds := range [][]uint64{{}, {5, 5}, {10, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestHistogramInvariants(t *testing.T) {
	f := func(samples []uint16) bool {
		h := NewHistogram(RecallBounds...)
		var sum, max uint64
		for _, s := range samples {
			h.Add(uint64(s))
			sum += uint64(s)
			if uint64(s) > max {
				max = uint64(s)
			}
		}
		_, counts := h.Buckets()
		var tot uint64
		for _, c := range counts {
			tot += c
		}
		return tot == uint64(len(samples)) && h.Sum() == sum && h.Max() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServiceDist(t *testing.T) {
	var s ServiceDist
	s.Record(mem.LvlL1D)
	s.Record(mem.LvlL2)
	s.Record(mem.LvlL2)
	s.Record(mem.LvlDRAM)
	if s.Total() != 4 {
		t.Fatalf("total = %d", s.Total())
	}
	if got := s.Fraction(mem.LvlL2); got != 0.5 {
		t.Errorf("L2 fraction = %v", got)
	}
	s.Reset()
	if s.Total() != 0 {
		t.Error("reset failed")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	tb.AddRowf("gamma", 42)
	out := tb.String()
	for _, want := range []string{"name", "alpha", "2.500", "42", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("expected 5 lines, got %d", len(lines))
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-9 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	if got := GeoMean([]float64{-1, 0}); got != 0 {
		t.Errorf("GeoMean(nonpositive) = %v", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1}); got != 1 {
		t.Errorf("HarmonicMean = %v", got)
	}
	if got := HarmonicMean([]float64{2, 2}); got != 2 {
		t.Errorf("HarmonicMean = %v", got)
	}
	// HM of 1 and 3 is 1.5.
	if got := HarmonicMean([]float64{1, 3}); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("HarmonicMean(1,3) = %v", got)
	}
	if got := HarmonicMean(nil); got != 0 {
		t.Errorf("HarmonicMean(nil) = %v", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != 0.5 || Ratio(1, 0) != 0 {
		t.Error("Ratio wrong")
	}
}

func TestHistogramJSON(t *testing.T) {
	h := NewHistogram(10, 50)
	h.Add(5)
	h.Add(100)
	out, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Total   uint64            `json:"total"`
		Max     uint64            `json:"max"`
		Buckets map[string]uint64 `json:"buckets"`
	}
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Total != 2 || decoded.Max != 100 {
		t.Errorf("decoded = %+v", decoded)
	}
	if decoded.Buckets["0-10"] != 1 || decoded.Buckets[">50"] != 1 {
		t.Errorf("buckets = %v", decoded.Buckets)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(10, 50, 200)
	for _, v := range []uint64{3, 11, 49, 50, 51, 1000, 0} {
		h.Add(v)
	}
	out, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.Total() != h.Total() || back.Sum() != h.Sum() || back.Max() != h.Max() {
		t.Errorf("aggregates: got (%d,%d,%d), want (%d,%d,%d)",
			back.Total(), back.Sum(), back.Max(), h.Total(), h.Sum(), h.Max())
	}
	if back.Mean() != h.Mean() {
		t.Errorf("mean %v != %v", back.Mean(), h.Mean())
	}
	for _, b := range []uint64{10, 50, 200} {
		if back.FractionAtMost(b) != h.FractionAtMost(b) {
			t.Errorf("FractionAtMost(%d): %v != %v", b, back.FractionAtMost(b), h.FractionAtMost(b))
		}
	}
	// The round-tripped histogram must re-serialize identically — the
	// experiment disk cache depends on lossless decode.
	out2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(out2) {
		t.Errorf("re-marshal differs:\n%s\n%s", out, out2)
	}
}

func TestHistogramJSONRejectsMalformed(t *testing.T) {
	var h Histogram
	for _, bad := range []string{
		`{"bounds":[],"counts":[]}`,
		`{"bounds":[10],"counts":[1,2,3]}`,
		`not json`,
	} {
		if err := json.Unmarshal([]byte(bad), &h); err == nil {
			t.Errorf("malformed %q accepted", bad)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", `has "quote"`)
	out := tb.CSV()
	want := "name,value\nplain,1\n\"with,comma\",\"has \"\"quote\"\"\"\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}
