// Package stats provides the counters, histograms and table formatting used
// to reproduce the paper's figures: per-class cache access/miss counters
// (MPKI), recall-distance histograms, stall-cycle accounting and service
// distributions.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"atcsim/internal/mem"
)

// ClassCounters tracks per-access-class event counts at one cache level.
type ClassCounters struct {
	Access [mem.NumClasses]uint64
	Miss   [mem.NumClasses]uint64
}

// Record adds one access of class c, counting it as a miss when miss is true.
func (cc *ClassCounters) Record(c mem.Class, miss bool) {
	cc.Access[c]++
	if miss {
		cc.Miss[c]++
	}
}

// TotalAccess returns the access count summed over all classes.
func (cc *ClassCounters) TotalAccess() uint64 {
	var t uint64
	for _, v := range cc.Access {
		t += v
	}
	return t
}

// TotalMiss returns the miss count summed over all classes.
func (cc *ClassCounters) TotalMiss() uint64 {
	var t uint64
	for _, v := range cc.Miss {
		t += v
	}
	return t
}

// Reset zeroes all counters (used at the end of warmup).
func (cc *ClassCounters) Reset() { *cc = ClassCounters{} }

// MPKI converts an event count into misses-per-kilo-instruction.
func MPKI(events, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(events) * 1000 / float64(instructions)
}

// Ratio returns num/den, or 0 when den is 0.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Histogram is a bucketed distribution with configurable upper bounds.
// Samples greater than the last bound fall into the overflow bucket.
type Histogram struct {
	bounds []uint64 // inclusive upper bounds, ascending
	counts []uint64 // len(bounds)+1, last is overflow
	total  uint64
	sum    uint64
	max    uint64
}

// NewHistogram creates a histogram with the given ascending inclusive upper
// bucket bounds. It panics when bounds are empty or not strictly ascending,
// since that is a programming error.
func NewHistogram(bounds ...uint64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]uint64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max returns the largest sample seen.
func (h *Histogram) Max() uint64 { return h.max }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// FractionAtMost returns the fraction of samples ≤ bound. The bound must be
// one of the histogram's bucket bounds; otherwise the nearest lower bucket
// boundary is used.
func (h *Histogram) FractionAtMost(bound uint64) float64 {
	if h.total == 0 {
		return 0
	}
	var c uint64
	for i, b := range h.bounds {
		if b > bound {
			break
		}
		c += h.counts[i]
	}
	return float64(c) / float64(h.total)
}

// Buckets returns (label, count) pairs for reporting.
func (h *Histogram) Buckets() ([]string, []uint64) {
	labels := make([]string, len(h.counts))
	lo := uint64(0)
	for i, b := range h.bounds {
		labels[i] = fmt.Sprintf("%d-%d", lo, b)
		lo = b + 1
	}
	labels[len(labels)-1] = fmt.Sprintf(">%d", h.bounds[len(h.bounds)-1])
	return labels, append([]uint64(nil), h.counts...)
}

// histogramJSON is the histogram's JSON form. The labelled bucket map and
// derived mean serve external tooling; bounds/counts/sum/max carry the exact
// internal state so a histogram round-trips losslessly (the experiment
// result cache depends on this).
type histogramJSON struct {
	Total   uint64            `json:"total"`
	Mean    float64           `json:"mean"`
	Max     uint64            `json:"max"`
	Sum     uint64            `json:"sum"`
	Bounds  []uint64          `json:"bounds"`
	Counts  []uint64          `json:"counts"`
	Buckets map[string]uint64 `json:"buckets"`
}

// MarshalJSON renders the histogram as buckets plus aggregates, so Results
// serialize cleanly for external tooling, and includes the exact bucket
// bounds and counts so UnmarshalJSON can reconstruct the histogram.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	labels, counts := h.Buckets()
	buckets := make(map[string]uint64, len(labels))
	for i, l := range labels {
		buckets[l] = counts[i]
	}
	return json.Marshal(histogramJSON{
		Total:   h.Total(),
		Mean:    h.Mean(),
		Max:     h.Max(),
		Sum:     h.Sum(),
		Bounds:  append([]uint64(nil), h.bounds...),
		Counts:  counts,
		Buckets: buckets,
	})
}

// UnmarshalJSON reconstructs a histogram serialized by MarshalJSON. It is
// the exact inverse: bounds, per-bucket counts, totals, sum and max are all
// restored bit-for-bit.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var v histogramJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	if len(v.Bounds) == 0 {
		return fmt.Errorf("stats: histogram JSON has no bounds")
	}
	if len(v.Counts) != len(v.Bounds)+1 {
		return fmt.Errorf("stats: histogram JSON has %d counts for %d bounds",
			len(v.Counts), len(v.Bounds))
	}
	h.bounds = append([]uint64(nil), v.Bounds...)
	h.counts = append([]uint64(nil), v.Counts...)
	h.total = v.Total
	h.sum = v.Sum
	h.max = v.Max
	return nil
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.max = 0, 0, 0
}

// RecallBounds are the default recall-distance buckets used by Figs. 5/7/18.
var RecallBounds = []uint64{10, 25, 50, 100, 200, 500, 1000}

// ServiceDist counts, per hierarchy level, how many requests of interest were
// serviced there (Fig. 3).
type ServiceDist struct {
	Count [mem.NumLevels]uint64
}

// Record notes a request serviced at level l.
func (s *ServiceDist) Record(l mem.Level) { s.Count[l]++ }

// Total returns the total number of recorded requests.
func (s *ServiceDist) Total() uint64 {
	var t uint64
	for _, v := range s.Count {
		t += v
	}
	return t
}

// Fraction returns the share of requests serviced at level l.
func (s *ServiceDist) Fraction(l mem.Level) float64 {
	return Ratio(s.Count[l], s.Total())
}

// Reset zeroes the distribution.
func (s *ServiceDist) Reset() { *s = ServiceDist{} }

// Table is a minimal text-table builder for experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped and short
// rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each value: strings verbatim, floats with
// %.3f, integers with %d.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			if math.Abs(v) >= 1000 {
				row = append(row, fmt.Sprintf("%.1f", v))
			} else {
				row = append(row, fmt.Sprintf("%.3f", v))
			}
		case float32:
			row = append(row, fmt.Sprintf("%.3f", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish comma-separated values (cells are
// quoted when they contain commas or quotes), for plotting pipelines.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// GeoMean returns the geometric mean of xs, ignoring non-positive values.
// It is the conventional aggregate for normalized speedups.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// HarmonicMean returns the harmonic mean of xs (the paper's SMT aggregate).
func HarmonicMean(xs []float64) float64 {
	var inv float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			inv += 1 / x
			n++
		}
	}
	if n == 0 || inv == 0 {
		return 0
	}
	return float64(n) / inv
}
