// Package faultinject provides a deterministic, seeded fault plan for chaos
// testing the experiment engine. Production code consults the plan at named
// hook sites (Check / ShouldCorrupt); a nil *Plan is a no-op, so the hooks
// cost one nil check when chaos testing is off.
//
// A plan is a list of rules. Each rule names a hook Site, an identity
// substring to match (the run label/name or cache-key hash the hook passes),
// a fault Kind, and firing bounds: Until fires the fault for the first N
// matching consultations of one identity (the shape of a transient failure
// that heals after K attempts), Times caps total firings across identities,
// and Prob gates each firing on a seeded RNG. Rules with neither bound fire
// on every match.
//
// Because rules match on stable run identities — not on global arrival
// order — an injected fault hits the same simulation regardless of the
// worker-pool size or goroutine schedule, which is what makes chaos sweeps
// reproducible and their reports byte-identical across -jobs values.
package faultinject

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Site names a hook location in the engine.
type Site string

// Hook sites wired into internal/experiments and its runner.
const (
	// SiteRun is consulted once per simulation attempt, before the
	// simulation executes, with the run's "label/name" identity.
	SiteRun Site = "run"
	// SiteDiskLoad is consulted by Disk.Load with the run-key hash.
	SiteDiskLoad Site = "disk.load"
	// SiteDiskStore is consulted by Disk.Store with the run-key hash.
	SiteDiskStore Site = "disk.store"
	// SiteDiskEntry is consulted (via ShouldCorrupt) after a successful
	// Disk.Store; a firing corrupts the just-written entry on disk.
	SiteDiskEntry Site = "disk.entry"
)

// Kind is the fault a rule injects.
type Kind int

// Fault kinds.
const (
	// KindPanic panics at the hook site, simulating a crashing run.
	KindPanic Kind = iota
	// KindTransient returns a retryable error (heals after Until hits).
	KindTransient
	// KindPermanent returns a non-retryable error.
	KindPermanent
	// KindSlow sleeps Delay at the hook site, simulating a stalled run.
	KindSlow
	// KindIOErr returns a retryable error shaped like an I/O failure.
	KindIOErr
	// KindCorrupt (SiteDiskEntry only) corrupts the on-disk cache entry.
	KindCorrupt
)

var kindNames = map[Kind]string{
	KindPanic:     "panic",
	KindTransient: "transient",
	KindPermanent: "permanent",
	KindSlow:      "slow",
	KindIOErr:     "io-error",
	KindCorrupt:   "corrupt",
}

// String returns the kind's stable lowercase name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Rule describes one fault to inject.
type Rule struct {
	// Site is the hook location the rule applies to.
	Site Site
	// Match is a substring of the hook identity ("" matches every identity).
	Match string
	// Kind is the fault injected when the rule fires.
	Kind Kind
	// Until, when positive, fires the fault only for the first Until
	// matching consultations of each identity — a transient failure that
	// heals on attempt Until+1.
	Until int
	// Times, when positive (and Until is zero), caps the rule's total
	// firings across all identities.
	Times int
	// Prob, when in (0,1), gates each would-be firing on the plan's seeded
	// RNG. Zero (and ≥1) means always fire. Probabilistic rules are
	// reproducible only under a deterministic consultation order (one job).
	Prob float64
	// Delay is how long a KindSlow firing sleeps.
	Delay time.Duration
}

// Event records one fault firing, for test assertions.
type Event struct {
	Site Site
	ID   string
	Kind Kind
	// Hit is the per-rule, per-identity consultation count at firing time
	// (1 for the first consultation of that identity).
	Hit int
}

// Error is the injected failure returned by Check for error kinds.
type Error struct {
	Site Site
	ID   string
	Kind Kind
	Hit  int
}

// Error renders a stable, schedule-independent message (no timestamps or
// addresses), so failure reasons derived from it are deterministic.
func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: %s at %s %s (hit %d)", e.Kind, e.Site, e.ID, e.Hit)
}

// Transient reports whether the injected failure is retryable; the runner's
// retry layer classifies errors through this interface method.
func (e *Error) Transient() bool {
	return e.Kind == KindTransient || e.Kind == KindIOErr
}

// Plan is a live fault plan. All methods are safe for concurrent use and
// valid on a nil receiver (no faults).
type Plan struct {
	mu       sync.Mutex
	rng      *rand.Rand
	rules    []Rule
	hits     map[string]int // per rule × identity consultation counts
	fired    []int          // per rule total firings
	events   []Event
	observer func(Event)
}

// NewPlan builds a plan from rules. seed drives the RNG behind probabilistic
// rules; plans with only deterministic rules behave identically for any seed.
func NewPlan(seed int64, rules ...Rule) *Plan {
	return &Plan{
		rng:   rand.New(rand.NewSource(seed)),
		rules: append([]Rule(nil), rules...),
		hits:  make(map[string]int),
		fired: make([]int, len(rules)),
	}
}

// firing is one matched rule ready to take effect.
type firing struct {
	rule Rule
	hit  int
}

// consult walks the rules for a site/identity, updates counters, and returns
// the first rule that fires (nil when none does).
func (p *Plan) consult(site Site, id string) *firing {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, r := range p.rules {
		if r.Site != site {
			continue
		}
		if r.Match != "" && !strings.Contains(id, r.Match) {
			continue
		}
		key := fmt.Sprintf("%d|%s", i, id)
		p.hits[key]++
		hit := p.hits[key]
		if r.Until > 0 && hit > r.Until {
			continue // healed for this identity
		}
		if r.Until == 0 && r.Times > 0 && p.fired[i] >= r.Times {
			continue // exhausted
		}
		if r.Prob > 0 && r.Prob < 1 && p.rng.Float64() >= r.Prob {
			continue
		}
		p.fired[i]++
		ev := Event{Site: site, ID: id, Kind: r.Kind, Hit: hit}
		p.events = append(p.events, ev)
		if obs := p.observer; obs != nil {
			// Deliver outside the lock so observers may consult the plan.
			p.mu.Unlock()
			obs(ev)
			p.mu.Lock()
		}
		return &firing{rule: r, hit: hit}
	}
	return nil
}

// SetObserver installs a callback invoked with every fault firing — the
// flight-recorder hook. The callback runs on the faulting goroutine,
// outside the plan's lock; it must be safe for concurrent use.
func (p *Plan) SetObserver(f func(Event)) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.observer = f
	p.mu.Unlock()
}

// Check consults the plan at a hook site. Depending on the first firing
// rule it may panic (KindPanic), sleep (KindSlow, returning nil), or return
// an *Error (KindTransient / KindPermanent / KindIOErr). It returns nil when
// no rule fires. KindCorrupt rules never fire here — they answer
// ShouldCorrupt.
func (p *Plan) Check(site Site, id string) error {
	f := p.consult(site, id)
	if f == nil || f.rule.Kind == KindCorrupt {
		return nil
	}
	switch f.rule.Kind {
	case KindPanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s %s", site, id))
	case KindSlow:
		time.Sleep(f.rule.Delay)
		return nil
	default:
		return &Error{Site: site, ID: id, Kind: f.rule.Kind, Hit: f.hit}
	}
}

// ShouldCorrupt reports whether a KindCorrupt rule fires for this identity
// at SiteDiskEntry. The caller (the disk cache) performs the corruption.
func (p *Plan) ShouldCorrupt(id string) bool {
	f := p.consult(SiteDiskEntry, id)
	return f != nil && f.rule.Kind == KindCorrupt
}

// Events returns a copy of every fault fired so far. Under a concurrent
// sweep the order is nondeterministic; assert on counts or sets.
func (p *Plan) Events() []Event {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.events...)
}

// Fired counts the firings of one kind across all rules.
func (p *Plan) Fired(k Kind) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}
