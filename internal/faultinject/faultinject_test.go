package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if err := p.Check(SiteRun, "baseline/pr"); err != nil {
		t.Errorf("nil plan Check = %v", err)
	}
	if p.ShouldCorrupt("abc") {
		t.Error("nil plan corrupts")
	}
	if p.Events() != nil || p.Fired(KindPanic) != 0 {
		t.Error("nil plan has events")
	}
}

func TestTransientHealsAfterUntil(t *testing.T) {
	p := NewPlan(1, Rule{Site: SiteRun, Match: "pr", Kind: KindTransient, Until: 2})
	for attempt := 1; attempt <= 2; attempt++ {
		err := p.Check(SiteRun, "baseline/pr")
		var fe *Error
		if !errors.As(err, &fe) {
			t.Fatalf("attempt %d: err = %v", attempt, err)
		}
		if !fe.Transient() {
			t.Fatalf("attempt %d: not transient", attempt)
		}
		if fe.Hit != attempt {
			t.Errorf("attempt %d: hit = %d", attempt, fe.Hit)
		}
	}
	if err := p.Check(SiteRun, "baseline/pr"); err != nil {
		t.Errorf("attempt 3 not healed: %v", err)
	}
	// Distinct identities have independent counters.
	if err := p.Check(SiteRun, "baseline/pr@7"); err == nil {
		t.Error("fresh identity did not fail")
	}
}

func TestUnmatchedSiteAndIDIgnored(t *testing.T) {
	p := NewPlan(1, Rule{Site: SiteDiskLoad, Match: "pr", Kind: KindIOErr})
	if err := p.Check(SiteRun, "baseline/pr"); err != nil {
		t.Errorf("wrong site fired: %v", err)
	}
	if err := p.Check(SiteDiskLoad, "baseline/mcf"); err != nil {
		t.Errorf("wrong id fired: %v", err)
	}
	if err := p.Check(SiteDiskLoad, "baseline/pr"); err == nil {
		t.Error("matching check did not fire")
	}
}

func TestPanicRule(t *testing.T) {
	p := NewPlan(1, Rule{Site: SiteRun, Match: "boom", Kind: KindPanic})
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
		if p.Fired(KindPanic) != 1 {
			t.Errorf("panic firings = %d", p.Fired(KindPanic))
		}
	}()
	p.Check(SiteRun, "enh/boom")
}

func TestTimesCapsFirings(t *testing.T) {
	p := NewPlan(1, Rule{Site: SiteDiskStore, Kind: KindIOErr, Times: 2})
	failed := 0
	for i := 0; i < 5; i++ {
		if err := p.Check(SiteDiskStore, "k"); err != nil {
			failed++
		}
	}
	if failed != 2 {
		t.Errorf("fired %d times, want 2", failed)
	}
}

func TestSlowRuleSleeps(t *testing.T) {
	p := NewPlan(1, Rule{Site: SiteRun, Kind: KindSlow, Delay: 30 * time.Millisecond, Times: 1})
	start := time.Now()
	if err := p.Check(SiteRun, "x"); err != nil {
		t.Fatalf("slow rule returned error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("slept only %v", d)
	}
	if p.Fired(KindSlow) != 1 {
		t.Errorf("slow firings = %d", p.Fired(KindSlow))
	}
}

func TestShouldCorrupt(t *testing.T) {
	p := NewPlan(1, Rule{Site: SiteDiskEntry, Kind: KindCorrupt, Times: 1})
	if !p.ShouldCorrupt("aaa") {
		t.Error("first entry not corrupted")
	}
	if p.ShouldCorrupt("bbb") {
		t.Error("Times=1 rule fired twice")
	}
	// Corrupt rules never leak through Check.
	p2 := NewPlan(1, Rule{Site: SiteDiskEntry, Kind: KindCorrupt})
	if err := p2.Check(SiteDiskEntry, "aaa"); err != nil {
		t.Errorf("Check fired a corrupt rule: %v", err)
	}
}

func TestProbabilisticRuleSeeded(t *testing.T) {
	run := func(seed int64) int {
		p := NewPlan(seed, Rule{Site: SiteRun, Kind: KindTransient, Prob: 0.5})
		n := 0
		for i := 0; i < 100; i++ {
			if p.Check(SiteRun, "x") != nil {
				n++
			}
		}
		return n
	}
	a, b := run(42), run(42)
	if a != b {
		t.Errorf("same seed fired %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Errorf("prob 0.5 fired %d/100", a)
	}
}

func TestConcurrentChecksRace(t *testing.T) {
	p := NewPlan(1,
		Rule{Site: SiteRun, Kind: KindTransient, Until: 3},
		Rule{Site: SiteDiskEntry, Kind: KindCorrupt, Times: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Check(SiteRun, "a")
				p.ShouldCorrupt("b")
			}
		}()
	}
	wg.Wait()
	if n := p.Fired(KindTransient); n != 3 {
		t.Errorf("transient fired %d, want 3", n)
	}
	if n := p.Fired(KindCorrupt); n != 4 {
		t.Errorf("corrupt fired %d, want 4", n)
	}
}

func TestErrorMessageStable(t *testing.T) {
	p := NewPlan(1, Rule{Site: SiteRun, Kind: KindIOErr})
	err := p.Check(SiteRun, "baseline/pr")
	want := "faultinject: io-error at run baseline/pr (hit 1)"
	if err == nil || err.Error() != want {
		t.Errorf("err = %v, want %q", err, want)
	}
}
