// Package prefetch implements the hardware data prefetchers evaluated by the
// paper: next-line, IPCP (Pakalapati & Panda, ISCA'20) at the L1D, SPP
// (Kim et al., MICRO'16), Bingo (Bakhshalipour et al., HPCA'19) and ISB
// (Jain & Lin, MICRO'13) at the L2C. All implement cache.Prefetcher and
// return physical line addresses.
//
// The paper's own prefetchers — ATP (translation-hit triggered) and TEMPO
// (DRAM-controller translation-triggered) — are not here: they are hooks in
// internal/cache and internal/dram because they are driven by page-walk
// requests, not demand-access training.
package prefetch

import (
	"fmt"

	"atcsim/internal/cache"
	"atcsim/internal/mem"
)

// Translator resolves a virtual address for cross-page prefetching (IPCP).
// fast reports whether the translation hit the TLBs; a slow translation
// models the prefetch stalling until the STLB fills, the late-prefetch
// behaviour the paper observes for cross-page IPCP.
type Translator func(va mem.Addr) (pa mem.Addr, fast bool)

// Options configure prefetcher construction.
type Options struct {
	// Translate is required for "ipcp"; ignored by physical-address
	// prefetchers.
	Translate Translator
	// Degree overrides the default prefetch degree when > 0.
	Degree int
}

// New constructs a prefetcher by name: "none" (nil), "nextline", "ipcp",
// "spp", "bingo" or "isb".
func New(name string, opts Options) (cache.Prefetcher, error) {
	switch name {
	case "", "none":
		return nil, nil
	case "nextline":
		return newNextLine(opts), nil
	case "ipcp":
		if opts.Translate == nil {
			return nil, fmt.Errorf("prefetch: ipcp needs a translator")
		}
		return newIPCP(opts), nil
	case "spp":
		return newSPP(opts), nil
	case "bingo":
		return newBingo(opts), nil
	case "isb":
		return newISB(opts), nil
	}
	return nil, fmt.Errorf("prefetch: unknown prefetcher %q", name)
}

// Names lists the constructible prefetchers.
func Names() []string { return []string{"none", "nextline", "ipcp", "spp", "bingo", "isb"} }

// nextLine prefetches the sequentially next lines on every demand miss.
type nextLine struct{ degree int }

func newNextLine(opts Options) *nextLine {
	d := opts.Degree
	if d <= 0 {
		d = 1
	}
	return &nextLine{degree: d}
}

func (p *nextLine) Name() string { return "nextline" }

func (p *nextLine) Train(req *mem.Request, hit bool, cycle int64, out []cache.Candidate) []cache.Candidate {
	if hit {
		return out
	}
	line := mem.LineAddr(req.Addr)
	for i := 1; i <= p.degree; i++ {
		next := line + mem.Addr(i)
		// Stay within the physical page: beyond it the physical neighbour
		// is unrelated to the virtual stream.
		if next>>6 != line>>6 { // 64 lines per page: compare page numbers
			break
		}
		out = append(out, cache.Candidate{Line: next})
	}
	return out
}
