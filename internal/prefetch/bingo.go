package prefetch

import (
	"atcsim/internal/cache"
	"atcsim/internal/mem"
)

// Bingo records, per spatial region, the footprint of lines touched while
// the region was live, keyed by the region's trigger event (PC+offset with a
// PC+address fallback folded into one hash here). When a new region is
// triggered with a known history, the whole footprint is prefetched.
// Regions are 2KB (32 lines) and never cross a page, so — as the paper
// observes — Bingo cannot reach a replay load's untouched page either.

const (
	bingoRegionLines = 32 // 2KB regions
	bingoActiveCap   = 64
	bingoHistoryCap  = 1 << 12
)

type bingoRegion struct {
	region    mem.Addr
	key       uint32
	footprint uint32 // bit per line in the region
	lastTouch uint64
}

type bingo struct {
	degree  int
	tick    uint64
	active  map[mem.Addr]*bingoRegion
	history map[uint32]uint32 // trigger key -> footprint
	// order is a FIFO of history keys so that capacity eviction is
	// deterministic (map iteration order is randomized in Go, which would
	// make simulations unreproducible).
	order []uint32
}

func newBingo(opts Options) *bingo {
	d := opts.Degree
	if d <= 0 {
		d = bingoRegionLines
	}
	return &bingo{
		degree:  d,
		active:  make(map[mem.Addr]*bingoRegion, bingoActiveCap),
		history: make(map[uint32]uint32, bingoHistoryCap),
	}
}

func (p *bingo) Name() string { return "bingo" }

func bingoKey(ip mem.Addr, offset uint32) uint32 {
	return uint32(hashBits(uint64(ip)<<6|uint64(offset), 20))
}

func (p *bingo) Train(req *mem.Request, hit bool, cycle int64, out []cache.Candidate) []cache.Candidate {
	line := mem.LineAddr(req.Addr)
	region := line / bingoRegionLines
	offset := uint32(line % bingoRegionLines)
	p.tick++

	if r, ok := p.active[region]; ok {
		r.footprint |= 1 << offset
		r.lastTouch = p.tick
		return out
	}

	// New region: retire the stalest active region into history first.
	if len(p.active) >= bingoActiveCap {
		var oldest *bingoRegion
		for _, r := range p.active {
			if oldest == nil || r.lastTouch < oldest.lastTouch {
				oldest = r
			}
		}
		p.retire(oldest)
	}
	key := bingoKey(req.IP, offset)
	p.active[region] = &bingoRegion{
		region:    region,
		key:       key,
		footprint: 1 << offset,
		lastTouch: p.tick,
	}

	// Trigger: replay the remembered footprint.
	fp, ok := p.history[key]
	if !ok {
		return out
	}
	base := region * bingoRegionLines
	emitted := 0
	for o := 0; o < bingoRegionLines && emitted < p.degree; o++ {
		if fp&(1<<o) != 0 && uint32(o) != offset {
			out = append(out, cache.Candidate{Line: base + mem.Addr(o)})
			emitted++
		}
	}
	return out
}

func (p *bingo) retire(r *bingoRegion) {
	if r == nil {
		return
	}
	for len(p.history) >= bingoHistoryCap && len(p.order) > 0 {
		// Deterministic FIFO pressure relief: drop the oldest trigger. The
		// table is a hash-indexed SRAM in hardware; a collision overwrites
		// similarly.
		oldest := p.order[0]
		p.order = p.order[1:]
		delete(p.history, oldest)
	}
	if _, exists := p.history[r.key]; !exists {
		p.order = append(p.order, r.key)
	}
	p.history[r.key] = r.footprint
	delete(p.active, r.region)
}
