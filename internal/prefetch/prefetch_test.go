package prefetch

import (
	"testing"

	"atcsim/internal/cache"
	"atcsim/internal/mem"
)

func dl(ip, addr mem.Addr) *mem.Request {
	return &mem.Request{Addr: addr, VAddr: addr, IP: ip, Kind: mem.Load}
}

func lines(cands []cache.Candidate) []mem.Addr {
	out := make([]mem.Addr, len(cands))
	for i, c := range cands {
		out[i] = c.Line
	}
	return out
}

func TestFactory(t *testing.T) {
	if p, err := New("none", Options{}); err != nil || p != nil {
		t.Error("none should return nil, nil")
	}
	if _, err := New("ipcp", Options{}); err == nil {
		t.Error("ipcp without translator accepted")
	}
	if _, err := New("wat", Options{}); err == nil {
		t.Error("unknown prefetcher accepted")
	}
	ident := func(va mem.Addr) (mem.Addr, bool) { return va, true }
	for _, n := range []string{"nextline", "spp", "bingo", "isb", "ipcp"} {
		p, err := New(n, Options{Translate: ident})
		if err != nil || p == nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Errorf("Name = %q, want %q", p.Name(), n)
		}
	}
	if len(Names()) != 6 {
		t.Errorf("Names = %v", Names())
	}
}

func TestNextLine(t *testing.T) {
	p := newNextLine(Options{Degree: 2})
	c := p.Train(dl(1, 0x1000), false, 0, nil)
	if len(c) != 2 || c[0].Line != mem.LineAddr(0x1040) || c[1].Line != mem.LineAddr(0x1080) {
		t.Errorf("candidates = %v", lines(c))
	}
	// Hits do not trigger.
	if c := p.Train(dl(1, 0x1000), true, 0, nil); len(c) != 0 {
		t.Error("hit triggered next-line")
	}
	// Page boundary: no crossing.
	if c := p.Train(dl(1, 0x1FC0), false, 0, nil); len(c) != 0 {
		t.Errorf("crossed page: %v", lines(c))
	}
}

func TestIPCPConstantStride(t *testing.T) {
	p := newIPCP(Options{Translate: func(va mem.Addr) (mem.Addr, bool) { return va, true }, Degree: 2})
	ip := mem.Addr(0x400100)
	var got []cache.Candidate
	// Stride of 2 lines, repeated to build confidence.
	for i := 0; i < 6; i++ {
		got = p.Train(dl(ip, mem.Addr(i)*128), false, 0, nil)
	}
	if len(got) != 2 {
		t.Fatalf("CS candidates = %v", lines(got))
	}
	last := mem.LineAddr(5 * 128)
	if got[0].Line != last+2 || got[1].Line != last+4 {
		t.Errorf("CS lines = %v, want %v,%v", lines(got), last+2, last+4)
	}
	if got[0].Delay != 0 {
		t.Error("fast translation delayed")
	}
}

func TestIPCPCrossPageDelay(t *testing.T) {
	// Translator reports a slow (STLB-missing) translation: candidates get
	// the walk delay, modelling the late prefetch the paper describes.
	p := newIPCP(Options{
		Translate: func(va mem.Addr) (mem.Addr, bool) { return va, false },
		Degree:    1,
	})
	ip := mem.Addr(0x400200)
	var got []cache.Candidate
	for i := 0; i < 6; i++ {
		got = p.Train(dl(ip, mem.Addr(i)*mem.PageSize), false, 0, nil)
	}
	if len(got) != 1 {
		t.Fatalf("candidates = %d", len(got))
	}
	if got[0].Delay != ipcpWalkDelay {
		t.Errorf("delay = %d, want %d", got[0].Delay, ipcpWalkDelay)
	}
}

func TestIPCPUntranslatable(t *testing.T) {
	p := newIPCP(Options{
		Translate: func(va mem.Addr) (mem.Addr, bool) { return 0, false },
		Degree:    2,
	})
	ip := mem.Addr(0x400300)
	var got []cache.Candidate
	for i := 0; i < 6; i++ {
		got = p.Train(dl(ip, mem.Addr(i)*64), false, 0, nil)
	}
	if len(got) != 0 {
		t.Error("untranslatable candidates emitted")
	}
}

func TestSPPLearnsDeltaPath(t *testing.T) {
	p := newSPP(Options{Degree: 2})
	page := mem.Addr(0x7000)
	// Walk offsets 0,1,2,...: constant delta +1 within one page.
	var got []cache.Candidate
	for i := 0; i < 20; i++ {
		got = p.Train(dl(3, page+mem.Addr(i)*64), false, 0, nil)
	}
	if len(got) == 0 {
		t.Fatal("SPP produced no candidates on a streaming pattern")
	}
	// Candidates are the next lines in the same page.
	lastLine := mem.LineAddr(page + 19*64)
	if got[0].Line != lastLine+1 {
		t.Errorf("first candidate = %v, want %v", got[0].Line, lastLine+1)
	}
	for _, c := range got {
		if mem.PageNumber(c.Line<<mem.LineBits) != mem.PageNumber(page) {
			t.Errorf("SPP crossed page: %v", c.Line)
		}
	}
}

func TestSPPStaysSilentOnRandom(t *testing.T) {
	p := newSPP(Options{Degree: 4})
	// A non-repeating pseudo-random walk across many pages: no delta path
	// ever recurs, so confidence should stay below threshold.
	x := uint64(12345)
	total := 0
	for i := 0; i < 500; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		addr := mem.Addr(x % (1 << 26))
		total += len(p.Train(dl(4, addr), false, 0, nil))
	}
	if total > 50 {
		t.Errorf("SPP emitted %d candidates on a random stream", total)
	}
}

func TestBingoReplaysFootprint(t *testing.T) {
	p := newBingo(Options{})
	ip := mem.Addr(0x400400)
	regionA := mem.Addr(0) // lines 0..31
	// Touch a footprint in region A: trigger offset 0, then 3, 7, 9.
	p.Train(dl(ip, regionA), false, 0, nil)
	for _, o := range []mem.Addr{3, 7, 9} {
		p.Train(dl(ip, regionA+o*64), false, 0, nil)
	}
	// Fill the active table to retire region A into history.
	for i := 1; i <= bingoActiveCap; i++ {
		p.Train(dl(9, mem.Addr(i)*2048), false, 0, nil)
	}
	// Re-trigger a *different* region with the same (PC, offset) event.
	regionB := mem.Addr(200 * 2048)
	got := p.Train(dl(ip, regionB), false, 0, nil)
	want := map[mem.Addr]bool{
		mem.LineAddr(regionB + 3*64): true,
		mem.LineAddr(regionB + 7*64): true,
		mem.LineAddr(regionB + 9*64): true,
	}
	if len(got) != 3 {
		t.Fatalf("candidates = %v", lines(got))
	}
	for _, c := range got {
		if !want[c.Line] {
			t.Errorf("unexpected candidate %v", c.Line)
		}
	}
}

func TestISBTemporalReplay(t *testing.T) {
	p := newISB(Options{Degree: 2})
	ip := mem.Addr(0x400500)
	// An irregular but repeating pointer chain across pages.
	chain := []mem.Addr{0x10000, 0x93000, 0x22000, 0x71000, 0x5A000}
	// First traversal: training only.
	for _, a := range chain {
		p.Train(dl(ip, a), false, 0, nil)
	}
	// Second traversal: accessing chain[0] must prefetch chain[1] (and [2]).
	got := p.Train(dl(ip, chain[0]), false, 0, nil)
	if len(got) < 1 {
		t.Fatal("ISB produced nothing on a repeated chain")
	}
	if got[0].Line != mem.LineAddr(chain[1]) {
		t.Errorf("first candidate = %#x, want %#x", got[0].Line<<6, chain[1])
	}
	if len(got) > 1 && got[1].Line != mem.LineAddr(chain[2]) {
		t.Errorf("second candidate = %#x, want %#x", got[1].Line<<6, chain[2])
	}
}

func TestISBCrossPage(t *testing.T) {
	// The chain above deliberately crosses pages; verify candidates do too.
	p := newISB(Options{Degree: 1})
	ip := mem.Addr(0x400600)
	a, b := mem.Addr(0x10000), mem.Addr(0x93000)
	p.Train(dl(ip, a), false, 0, nil)
	p.Train(dl(ip, b), false, 0, nil)
	got := p.Train(dl(ip, a), false, 0, nil)
	if len(got) != 1 || mem.PageNumber(got[0].Line<<6) == mem.PageNumber(a) {
		t.Errorf("ISB did not cross pages: %v", lines(got))
	}
}

func TestIPCPGlobalStream(t *testing.T) {
	// Many different IPs marching through consecutive 2KB regions: no
	// single IP builds stride confidence, but the global-stream detector
	// should kick in and fetch ahead in the stream direction.
	p := newIPCP(Options{Translate: func(va mem.Addr) (mem.Addr, bool) { return va, true }, Degree: 2})
	var got []cache.Candidate
	for i := 0; i < 16; i++ {
		ip := mem.Addr(0x400000 + i*8) // fresh IP each access
		addr := mem.Addr(i) * 2048     // one new region per access, ascending
		got = p.Train(dl(ip, addr), false, 0, nil)
	}
	if len(got) == 0 {
		t.Fatal("GS class produced no candidates on a monotone region stream")
	}
	last := mem.LineAddr(15 * 2048)
	if got[0].Line <= last {
		t.Errorf("GS candidate %v not ahead of stream position %v", got[0].Line, last)
	}
}
