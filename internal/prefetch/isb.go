package prefetch

import (
	"atcsim/internal/cache"
	"atcsim/internal/mem"
)

// ISB (irregular stream buffer) linearizes irregular but *temporally
// correlated* access streams: consecutive misses observed from the same PC
// are assigned consecutive addresses in a structural address space; a later
// access to a linearized line prefetches the physical lines mapped just
// after it. Because the mapping stores full physical line addresses, ISB
// prefetches cross pages freely — which is why the paper finds it the only
// conventional prefetcher that helps replay loads at all (≈20% ROB-stall
// reduction on some benchmarks).

const (
	isbStreamGap = 256 // structural distance between new streams
	isbMapCap    = 1 << 20
)

type isb struct {
	degree int
	// Per-PC training state: the structural address of the PC's last miss.
	lastStruct map[mem.Addr]uint64
	// Bidirectional physical-line <-> structural mappings.
	toStruct map[mem.Addr]uint64
	toPhys   map[uint64]mem.Addr
	nextBase uint64
}

func newISB(opts Options) *isb {
	d := opts.Degree
	if d <= 0 {
		d = 3
	}
	return &isb{
		degree:     d,
		lastStruct: make(map[mem.Addr]uint64),
		toStruct:   make(map[mem.Addr]uint64),
		toPhys:     make(map[uint64]mem.Addr),
	}
}

func (p *isb) Name() string { return "isb" }

func (p *isb) Train(req *mem.Request, hit bool, cycle int64, out []cache.Candidate) []cache.Candidate {
	line := mem.LineAddr(req.Addr)

	// Capacity backstop: a real ISB keeps its mapping in off-chip metadata
	// with on-chip caches; we simply reset when the tables outgrow the cap.
	if len(p.toStruct) > isbMapCap {
		p.lastStruct = make(map[mem.Addr]uint64)
		p.toStruct = make(map[mem.Addr]uint64)
		p.toPhys = make(map[uint64]mem.Addr)
	}

	s, mapped := p.toStruct[line]

	// Training: append this line to the PC's structural stream.
	if last, ok := p.lastStruct[req.IP]; ok && !mapped {
		s = last + 1
		// Only extend if the slot is free; otherwise start a new stream.
		if _, taken := p.toPhys[s]; taken {
			s = p.newStream()
		}
		p.link(line, s)
		mapped = true
	} else if !mapped {
		s = p.newStream()
		p.link(line, s)
		mapped = true
	}
	p.lastStruct[req.IP] = s

	// Prediction: replay the structural successors.
	for i := uint64(1); i <= uint64(p.degree); i++ {
		if phys, ok := p.toPhys[s+i]; ok && phys != line {
			out = append(out, cache.Candidate{Line: phys})
		}
	}
	return out
}

func (p *isb) newStream() uint64 {
	p.nextBase += isbStreamGap
	return p.nextBase
}

func (p *isb) link(line mem.Addr, s uint64) {
	// Unlink a previous occupant of the physical line, if any.
	if old, ok := p.toStruct[line]; ok {
		delete(p.toPhys, old)
	}
	p.toStruct[line] = s
	p.toPhys[s] = line
}
