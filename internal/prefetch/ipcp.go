package prefetch

import (
	"atcsim/internal/cache"
	"atcsim/internal/mem"
)

// IPCP classifies instruction pointers into prefetch classes and issues
// per-class prefetches on the *virtual* address stream at the L1D, which
// lets it cross page boundaries — the property the paper highlights. A
// cross-page prefetch consults the TLBs: on an STLB miss the request waits
// for the fill, modelled as a fixed issue delay, which makes such
// prefetches late (Section III).
//
// This implementation keeps the two dominant classes: CS (constant stride,
// per-IP) and GS (global stream, region-based); complex-stride IPs fall
// back to no prefetching, which matches IPCP's conservative CPLX behaviour
// on the irregular workloads studied here.

const (
	ipcpTableBits = 7 // 128-entry IP table
	ipcpConfMax   = 3
	// ipcpWalkDelay models a cross-page prefetch waiting for the STLB fill.
	ipcpWalkDelay = 150
)

type ipcpEntry struct {
	tag      uint32
	lastLine mem.Addr // virtual line address
	stride   int64
	conf     uint8
}

type ipcp struct {
	translate Translator
	degree    int
	table     [1 << ipcpTableBits]ipcpEntry
	// Global-stream detector: recent region touches.
	lastRegion mem.Addr
	regionRun  int
	dir        int64
}

func newIPCP(opts Options) *ipcp {
	d := opts.Degree
	if d <= 0 {
		d = 3
	}
	return &ipcp{translate: opts.Translate, degree: d}
}

func (p *ipcp) Name() string { return "ipcp" }

func (p *ipcp) Train(req *mem.Request, hit bool, cycle int64, out []cache.Candidate) []cache.Candidate {
	if req.VAddr == 0 {
		return out
	}
	vline := mem.LineAddr(req.VAddr)
	idx := hashBits(uint64(req.IP), ipcpTableBits)
	tag := uint32(hashBits(uint64(req.IP)*0x9E37, 10))
	e := &p.table[idx]

	var stride int64
	if e.tag == tag && e.lastLine != 0 {
		stride = int64(vline) - int64(e.lastLine)
		switch {
		case stride != 0 && stride == e.stride:
			if e.conf < ipcpConfMax {
				e.conf++
			}
		case stride != 0:
			if e.conf > 0 {
				e.conf--
			} else {
				e.stride = stride
			}
		}
	} else {
		*e = ipcpEntry{tag: tag}
	}
	e.lastLine = vline

	// Global stream: monotone region progression across IPs.
	region := vline >> 5 // 2KB regions
	if region != p.lastRegion {
		d := int64(region) - int64(p.lastRegion)
		if d == p.dir && (d == 1 || d == -1) {
			p.regionRun++
		} else {
			p.regionRun = 0
			if d == 1 || d == -1 {
				p.dir = d
			}
		}
		p.lastRegion = region
	}

	// CS class (confident per-IP stride) or GS class (global stream): both
	// emit degree-deep candidates along their stride on the virtual stream.
	var step int64
	if e.conf >= 2 && e.stride != 0 {
		step = e.stride
	} else if p.regionRun >= 3 {
		step = p.dir
	} else {
		return out
	}
	for i := 1; i <= p.degree; i++ {
		va := mem.Addr(int64(vline)+step*int64(i)) << mem.LineBits
		pa, fast := p.translate(va)
		if pa == 0 {
			continue
		}
		c := cache.Candidate{Line: mem.LineAddr(pa)}
		if !fast {
			c.Delay = ipcpWalkDelay
		}
		out = append(out, c)
	}
	return out
}

func hashBits(v uint64, bits uint) uint32 {
	v *= 0x9E3779B97F4A7C15
	return uint32(v >> (64 - bits))
}
