package prefetch

import (
	"atcsim/internal/cache"
	"atcsim/internal/mem"
)

// SPP (signature path prefetcher) compresses the recent delta history of
// each physical page into a 12-bit signature, learns signature→delta
// transitions with confidence counters, and walks the learned path ahead of
// the demand stream (lookahead), throttled by the product of path
// confidences. Prefetches stay within the physical page, which is why the
// paper finds SPP unable to cover replay loads: the replay line lives in a
// page nobody has touched yet.

const (
	sppSigBits   = 12
	sppSTEntries = 256
	sppPTWays    = 4
	sppCountMax  = 15
	sppThreshold = 25 // percent confidence to keep walking the path
	sppMaxDepth  = 6
)

type sppSTEntry struct {
	page    mem.Addr
	lastOff int8
	sig     uint16
	valid   bool
}

type sppDelta struct {
	delta int8
	count uint8
}

type sppPTEntry struct {
	deltas [sppPTWays]sppDelta
	total  uint8
}

type spp struct {
	degree int
	st     [sppSTEntries]sppSTEntry
	pt     [1 << sppSigBits]sppPTEntry
}

func newSPP(opts Options) *spp {
	d := opts.Degree
	if d <= 0 {
		d = 4
	}
	return &spp{degree: d}
}

func (p *spp) Name() string { return "spp" }

func sppSigUpdate(sig uint16, delta int8) uint16 {
	return (sig<<3 ^ uint16(uint8(delta))) & (1<<sppSigBits - 1)
}

func (p *spp) Train(req *mem.Request, hit bool, cycle int64, out []cache.Candidate) []cache.Candidate {
	line := mem.LineAddr(req.Addr)
	page := mem.PageNumber(req.Addr)
	off := int8(line & (mem.LinesPerPage - 1))

	e := &p.st[uint32(page)%sppSTEntries]
	if !e.valid || e.page != page {
		*e = sppSTEntry{page: page, lastOff: off, valid: true}
		return out
	}
	delta := off - e.lastOff
	if delta == 0 {
		return out
	}
	// Train the pattern table for the old signature.
	p.learn(e.sig, delta)
	e.sig = sppSigUpdate(e.sig, delta)
	e.lastOff = off

	// Lookahead walk from the current signature.
	emitted := 0
	sig := e.sig
	cur := int16(off)
	conf := 100
	for depth := 0; depth < sppMaxDepth && emitted < p.degree; depth++ {
		d, c, tot := p.best(sig)
		if tot == 0 {
			break
		}
		conf = conf * int(c) / int(tot)
		if conf < sppThreshold {
			break
		}
		cur += int16(d)
		if cur < 0 || cur >= mem.LinesPerPage {
			break // page boundary: SPP does not cross pages
		}
		out = append(out, cache.Candidate{Line: page<<6 | mem.Addr(cur)})
		emitted++
		sig = sppSigUpdate(sig, d)
	}
	return out
}

// learn bumps the delta counter for sig, evicting the weakest way when full.
func (p *spp) learn(sig uint16, delta int8) {
	pe := &p.pt[sig]
	if pe.total >= sppCountMax*sppPTWays {
		// Global decay keeps counters comparable over time.
		for i := range pe.deltas {
			pe.deltas[i].count /= 2
		}
		pe.total /= 2
	}
	weakest := 0
	for i := range pe.deltas {
		d := &pe.deltas[i]
		if d.count > 0 && d.delta == delta {
			d.count++
			pe.total++
			return
		}
		if d.count < pe.deltas[weakest].count {
			weakest = i
		}
	}
	pe.deltas[weakest] = sppDelta{delta: delta, count: 1}
	pe.total++
}

// best returns the strongest delta for sig with its count and the total.
func (p *spp) best(sig uint16) (delta int8, count, total uint8) {
	pe := &p.pt[sig]
	bi := 0
	for i := range pe.deltas {
		if pe.deltas[i].count > pe.deltas[bi].count {
			bi = i
		}
	}
	return pe.deltas[bi].delta, pe.deltas[bi].count, pe.total
}
