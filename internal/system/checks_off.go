//go:build !atcsim_invariants

package system

// invariantsDefault leaves periodic invariant auditing off unless a run
// opts in via Config.CheckInvariants. Build with -tags atcsim_invariants to
// audit every run (CI's differential job does).
const invariantsDefault = false
