package system

import (
	"encoding/json"
	"runtime"
	"testing"

	"atcsim/internal/telemetry"
	"atcsim/internal/trace"
	"atcsim/internal/workloads"
)

// parTraces builds a 4-workload multi-core mix covering all STLB-MPKI
// categories, with per-core seeds like the multicore experiment uses.
func parTraces(t *testing.T, n int) []*trace.Trace {
	t.Helper()
	var out []*trace.Trace
	for i, name := range []string{"pr", "mcf", "xalancbmk", "cc"} {
		s, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s.Build(n, int64(1+i)))
	}
	return out
}

// resultJSON canonicalizes a Result for byte comparison.
func resultJSON(t *testing.T, r *Result) string {
	t.Helper()
	b, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestParallelEngineDeterminism is the engine's core guarantee at the
// system level: an eligible multi-core run serializes to byte-identical
// results for every SimJobs value — serial barrier execution (1), an
// intermediate worker count, and one worker per CPU (0) — under both the
// analytic and queued timing engines, with the full enhancement stack and
// invariant auditing enabled.
func TestParallelEngineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("several multi-core runs")
	}
	traces := parTraces(t, 50_000)
	base := DefaultConfig()
	base.Instructions = 25_000
	base.Warmup = 10_000
	base.Apply(TEMPO)
	base.CheckInvariants = true

	for _, timing := range []string{"", "queued"} {
		cfg := base
		cfg.Timing = timing
		cfg.SimJobs = 1
		want, err := RunMulti(cfg, traces)
		if err != nil {
			t.Fatal(err)
		}
		if want.Parallel == nil {
			t.Fatalf("timing=%q: eligible multi-core run did not use the parallel engine", timing)
		}
		if want.Parallel.Rounds == 0 || want.Parallel.SharedRequests == 0 || want.Parallel.TraceRefills == 0 {
			t.Fatalf("timing=%q: degenerate parallel stats %+v", timing, want.Parallel)
		}
		wantJSON := resultJSON(t, want)
		for _, jobs := range []int{3, 0, runtime.NumCPU()} {
			cfg.SimJobs = jobs
			got, err := RunMulti(cfg, traces)
			if err != nil {
				t.Fatal(err)
			}
			if gotJSON := resultJSON(t, got); gotJSON != wantJSON {
				t.Errorf("timing=%q: SimJobs=%d diverged from SimJobs=1:\n--- jobs=1 ---\n%s\n--- jobs=%d ---\n%s",
					timing, jobs, wantJSON, jobs, gotJSON)
			}
		}
	}
}

// TestParallelEligibility pins the gate: configurations whose step path
// touches shared state must fall back to the serial scheduler (nil
// Result.Parallel), and plain multi-core machines must not.
func TestParallelEligibility(t *testing.T) {
	traces := parTraces(t, 20_000)
	cfg := DefaultConfig()
	cfg.Instructions = 8_000
	cfg.Warmup = 2_000

	multi := func(cfg Config) *Result {
		t.Helper()
		r, err := RunMulti(cfg, traces)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	if r := multi(cfg); r.Parallel == nil {
		t.Error("plain multi-core run did not use the parallel engine")
	}

	single, err := Run(cfg, traces[0])
	if err != nil {
		t.Fatal(err)
	}
	if single.Parallel != nil {
		t.Error("single-core run used the parallel engine")
	}

	smt, err := RunSMT(cfg, traces[0], traces[1])
	if err != nil {
		t.Fatal(err)
	}
	if smt.Parallel != nil {
		t.Error("SMT run used the parallel engine")
	}

	victima := cfg
	victima.Mechanism = "victima"
	if r := multi(victima); r.Parallel != nil {
		t.Error("victima (shared-LLC translate path) used the parallel engine")
	}

	ipcp := cfg
	ipcp.L1DPrefetcher = "ipcp"
	if r := multi(ipcp); r.Parallel != nil {
		t.Error("L1D-prefetcher run (translate closure into shared page table) used the parallel engine")
	}

	traced := cfg
	traced.Telemetry = &telemetry.Hub{Tracer: telemetry.NewTracer(1024, 64)}
	if r := multi(traced); r.Parallel != nil {
		t.Error("request-traced run used the parallel engine")
	}
}

// TestParallelReportsCoreOrder pins satellite invariants of the barrier
// engine: core rows come back in canonical core-index order (workload i at
// index i) no matter how workers interleaved, and revelator — a core-local
// mechanism — stays eligible.
func TestParallelReportsCoreOrder(t *testing.T) {
	traces := parTraces(t, 20_000)
	cfg := DefaultConfig()
	cfg.Instructions = 8_000
	cfg.Warmup = 2_000
	cfg.Mechanism = "revelator"
	r, err := RunMulti(cfg, traces)
	if err != nil {
		t.Fatal(err)
	}
	if r.Parallel == nil {
		t.Fatal("revelator multi-core run did not use the parallel engine")
	}
	want := []string{"pr", "mcf", "xalancbmk", "cc"}
	if len(r.Cores) != len(want) {
		t.Fatalf("got %d core rows, want %d", len(r.Cores), len(want))
	}
	for i, w := range want {
		if r.Cores[i].Workload != w {
			t.Errorf("core row %d holds %q, want %q", i, r.Cores[i].Workload, w)
		}
		if r.Cores[i].Mechanism != "revelator" {
			t.Errorf("core row %d mechanism %q", i, r.Cores[i].Mechanism)
		}
	}
}
