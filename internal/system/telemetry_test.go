package system

import (
	"bytes"
	"encoding/json"
	"testing"

	"atcsim/internal/telemetry"
)

// Telemetry must be a pure observer: attaching the full hub (tracer +
// heartbeat + progress) must leave every simulated number bit-identical to
// the bare run.
func TestTelemetryDoesNotPerturbTiming(t *testing.T) {
	cfg := quickCfg()
	bare, err := Run(cfg, buildTrace(t, "mcf", 90_000))
	if err != nil {
		t.Fatal(err)
	}

	obs := cfg
	obs.Telemetry = &telemetry.Hub{
		Tracer:    telemetry.NewTracer(1<<12, 8),
		Heartbeat: telemetry.NewHeartbeat(nil, telemetry.FormatCSV, 10_000),
		Progress:  &telemetry.Progress{},
	}
	traced, err := Run(obs, buildTrace(t, "mcf", 90_000))
	if err != nil {
		t.Fatal(err)
	}

	if bare.Cores[0].Cycles != traced.Cores[0].Cycles {
		t.Errorf("cycles differ with telemetry: %d vs %d",
			bare.Cores[0].Cycles, traced.Cores[0].Cycles)
	}
	if bare.IPC() != traced.IPC() {
		t.Errorf("IPC differs with telemetry: %v vs %v", bare.IPC(), traced.IPC())
	}
	if bare.LLC.TotalMiss() != traced.LLC.TotalMiss() {
		t.Errorf("LLC misses differ with telemetry: %d vs %d",
			bare.LLC.TotalMiss(), traced.LLC.TotalMiss())
	}
	if bare.Cores[0].MMU.STLBMisses != traced.Cores[0].MMU.STLBMisses {
		t.Error("STLB misses differ with telemetry")
	}
	if bare.DRAM.Reads != traced.DRAM.Reads || bare.DRAM.RowHits != traced.DRAM.RowHits {
		t.Error("DRAM activity differs with telemetry")
	}

	// The observer actually observed something.
	if obs.Telemetry.Tracer.Sampled() == 0 || len(obs.Telemetry.Tracer.Events()) == 0 {
		t.Error("tracer recorded nothing")
	}
	if got := obs.Telemetry.Progress.Done(); got != uint64(cfg.Instructions) {
		t.Errorf("progress done = %d, want %d", got, cfg.Instructions)
	}
}

// Heartbeat rows must partition the measured phase: instruction counts sum
// to the configured total and end cycles match the final result.
func TestHeartbeatReconcilesWithResult(t *testing.T) {
	cfg := quickCfg() // 60_000 measured instructions
	hb := telemetry.NewHeartbeat(nil, telemetry.FormatCSV, 10_000)
	cfg.Telemetry = &telemetry.Hub{Heartbeat: hb}
	res, err := Run(cfg, buildTrace(t, "pr", 90_000))
	if err != nil {
		t.Fatal(err)
	}

	rows := hb.Rows()
	if want := cfg.Instructions / hb.Every(); len(rows) != want {
		t.Fatalf("got %d heartbeat rows, want %d", len(rows), want)
	}
	var insts uint64
	var stalls uint64
	for i, r := range rows {
		if r.Index != i {
			t.Errorf("row %d has index %d", i, r.Index)
		}
		if r.Cycles <= 0 || r.IPC <= 0 {
			t.Errorf("row %d empty: %+v", i, r)
		}
		insts += r.Instructions
		stalls += r.StallTranslation + r.StallReplay + r.StallNonReplay + r.StallOther
	}
	if insts != uint64(cfg.Instructions) {
		t.Errorf("heartbeat instructions sum to %d, want %d", insts, cfg.Instructions)
	}
	last := rows[len(rows)-1]
	if last.EndCycle != res.Cores[0].Cycles {
		t.Errorf("last row ends at cycle %d, result has %d cycles", last.EndCycle, res.Cores[0].Cycles)
	}
	var wantStalls uint64
	for _, s := range res.Cores[0].CPU.StallCycles {
		wantStalls += s
	}
	if stalls != wantStalls {
		t.Errorf("heartbeat stall cycles sum to %d, result has %d", stalls, wantStalls)
	}
	// pr thrashes the STLB: the derived rates must reflect that.
	if last.STLBMPKI <= 1 {
		t.Errorf("pr STLB MPKI %.2f suspiciously low in heartbeat", last.STLBMPKI)
	}
}

// A trace produced by a real run must be valid Chrome trace-event JSON with
// events on every lane the pr workload exercises.
func TestRunProducesLoadableChromeTrace(t *testing.T) {
	cfg := quickCfg()
	tr := telemetry.NewTracer(1<<14, 16)
	cfg.Telemetry = &telemetry.Hub{Tracer: tr}
	if _, err := Run(cfg, buildTrace(t, "pr", 90_000)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("run trace is not valid JSON: %v", err)
	}
	lanes := map[int]int{}
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "M" {
			lanes[ev.Tid]++
		}
	}
	for lane := telemetry.LaneRequest; lane <= telemetry.LaneStall; lane++ {
		if lanes[int(lane)] == 0 {
			t.Errorf("no events on lane %v", lane)
		}
	}
}
