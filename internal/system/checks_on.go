//go:build atcsim_invariants

package system

// invariantsDefault audits every run when the binary is built with
// -tags atcsim_invariants, regardless of Config.CheckInvariants.
const invariantsDefault = true
