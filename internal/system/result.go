package system

import (
	"sort"

	"atcsim/internal/cache"
	"atcsim/internal/cpu"
	"atcsim/internal/dram"
	"atcsim/internal/mem"
	"atcsim/internal/ptw"
	"atcsim/internal/stats"
	"atcsim/internal/tlb"
	"atcsim/internal/xlat"
)

// CoreResult captures one hardware thread's measured-phase statistics.
type CoreResult struct {
	Workload     string
	Instructions uint64
	Cycles       int64
	IPC          float64

	CPU    cpu.Stats
	MMU    ptw.MMUStats
	Walker ptw.WalkerStats
	// PSC counts paging-structure-cache lookups and per-level hits.
	PSC tlb.PSCStats
	// ReplayService records which hierarchy level serviced replay loads
	// (the "R" series of Fig. 3).
	ReplayService stats.ServiceDist
	STLB          tlb.Stats
	// STLBRecall is the Fig. 18 recall distribution (empty unless
	// TrackRecall).
	STLBRecall Recall
	// Mechanism names the translation mechanism that serviced this core's
	// STLB misses; Xlat holds its counters (see xlat.Stats).
	Mechanism string
	Xlat      xlat.Stats
}

// Recall pairs a recall-distance histogram with the eviction count that is
// its denominator: evicted blocks that were never recalled have infinite
// recall distance, so fractions must be computed against Evictions, not
// against the histogram's sample count.
type Recall struct {
	Hist      *stats.Histogram
	Evictions uint64
}

// Within returns the fraction of evicted blocks recalled within the given
// distance.
func (r Recall) Within(bound uint64) float64 {
	if r.Hist == nil || r.Evictions == 0 {
		return 0
	}
	recalled := float64(r.Hist.FractionAtMost(bound)) * float64(r.Hist.Total())
	return recalled / float64(r.Evictions)
}

// Valid reports whether any recall data was collected.
func (r Recall) Valid() bool { return r.Hist != nil && r.Evictions > 0 }

// STLBMPKI is the paper's headline pressure metric.
func (c *CoreResult) STLBMPKI() float64 {
	return stats.MPKI(c.MMU.STLBMisses, c.Instructions)
}

// Result is the outcome of one simulation run.
type Result struct {
	Cfg   Config
	Cores []CoreResult

	// L1D and L2 hold stats for each distinct cache instance (one for SMT,
	// one per core otherwise).
	L1D []cache.Stats
	L2  []cache.Stats
	LLC cache.Stats

	DRAM dram.Stats

	// Queues holds per-level deque statistics from the queued timing engine,
	// aggregated over cache instances with the same name and ordered by
	// level then name. Empty (and omitted from JSON, keeping analytic
	// results byte-identical) under analytic timing.
	Queues []QueueLevel `json:",omitempty"`

	// Recall-distance distributions (empty unless TrackRecall). L2 data
	// comes from the first L2 instance.
	L2RecallTrans   Recall
	L2RecallReplay  Recall
	LLCRecallTrans  Recall
	LLCRecallReplay Recall

	// Parallel reports the barrier-parallel engine's behavior; nil (and
	// omitted from JSON, keeping serial-scheduler results byte-identical)
	// when the serial interleaved scheduler ran.
	Parallel *ParallelStats `json:",omitempty"`
}

// ParallelStats describes one run of the deterministic barrier-parallel
// engine (DESIGN.md §10). Every field is a pure function of config and
// traces — identical for every SimJobs value and worker schedule — so the
// struct serializes into byte-identical reports.
type ParallelStats struct {
	// Rounds counts cycle-window barriers executed across warmup and
	// measurement.
	Rounds uint64
	// Waves counts shared-request resolution waves; a round contains zero
	// or more waves.
	Waves uint64
	// SharedRequests counts L2-miss-path requests parked at the
	// coordinator and serviced against the shared LLC/DRAM path in
	// canonical core order.
	SharedRequests uint64
	// SkewCycles accumulates, per round, the spread between the most- and
	// least-advanced core clocks at the barrier — the cost ceiling of the
	// lockstep windows.
	SkewCycles uint64
	// TraceRefills counts per-core trace ring-buffer refills (see
	// trace.Cursor); it scales with instructions executed, not with
	// SimJobs.
	TraceRefills uint64
}

// QueueLevel aggregates one cache level's queued-engine deque statistics
// (per-core instances with the same name — e.g. private L2Cs — are summed).
type QueueLevel struct {
	Name  string
	Level mem.Level
	Q     cache.QueueStats
}

// addQueueStats folds one wrapper's counters into an aggregate row.
func addQueueStats(dst *cache.QueueStats, st cache.QueueStats) {
	dst.RQFull += st.RQFull
	dst.RQMerged += st.RQMerged
	dst.WQFull += st.WQFull
	dst.WQForward += st.WQForward
	dst.PQFull += st.PQFull
	dst.PQMerged += st.PQMerged
	dst.VAPQFull += st.VAPQFull
	dst.MSHRFull += st.MSHRFull
	dst.Enqueued += st.Enqueued
	dst.Drained += st.Drained
}

// collect snapshots all component statistics into a Result. Per-core rows
// are placed by canonical core index, not iteration order, so the Result is
// identical however the scheduler ordered the cores.
func (s *sim) collect() *Result {
	r := &Result{Cfg: s.cfg, LLC: s.llc.Stats(), DRAM: s.channel.Stats()}
	r.Cores = make([]CoreResult, len(s.cores))
	for _, c := range s.cores {
		cycles := c.doneCycle - c.baseCycle
		if cycles <= 0 {
			cycles = 1
		}
		cr := CoreResult{
			Workload:      c.tr.Name,
			Instructions:  uint64(s.cfg.Instructions),
			Cycles:        cycles,
			IPC:           cpu.IPC(uint64(s.cfg.Instructions), cycles),
			CPU:           c.core.Stats(),
			MMU:           c.mmu.Stats(),
			Walker:        c.mmu.W.Stats(),
			PSC:           c.mmu.W.PSCStats(),
			ReplayService: c.replayService,
			STLB:          c.stlb.Stats(),
			STLBRecall:    Recall{Hist: c.stlb.RecallHistogram(), Evictions: c.stlb.RecallEvictions()},
			Mechanism:     c.mmu.Mechanism().Name(),
			Xlat:          c.mmu.Mechanism().Stats(),
		}
		r.Cores[c.id] = cr
	}
	if s.par != nil {
		ps := s.par.statsSnapshot()
		for _, c := range s.cores {
			ps.TraceRefills += c.cur.Refills()
		}
		r.Parallel = &ps
	}
	for _, l1d := range s.l1ds {
		r.L1D = append(r.L1D, l1d.Stats())
	}
	for _, l2 := range s.l2s {
		r.L2 = append(r.L2, l2.Stats())
	}
	if len(s.l2s) > 0 {
		l2 := s.l2s[0]
		r.L2RecallTrans = Recall{Hist: l2.RecallHistogram(mem.ClassTransLeaf), Evictions: l2.RecallEvictions(mem.ClassTransLeaf)}
		r.L2RecallReplay = Recall{Hist: l2.RecallHistogram(mem.ClassReplay), Evictions: l2.RecallEvictions(mem.ClassReplay)}
	}
	r.LLCRecallTrans = Recall{Hist: s.llc.RecallHistogram(mem.ClassTransLeaf), Evictions: s.llc.RecallEvictions(mem.ClassTransLeaf)}
	r.LLCRecallReplay = Recall{Hist: s.llc.RecallHistogram(mem.ClassReplay), Evictions: s.llc.RecallEvictions(mem.ClassReplay)}
	if len(s.queued) > 0 {
		idx := map[string]int{}
		for _, q := range s.queued {
			if i, ok := idx[q.Name()]; ok {
				addQueueStats(&r.Queues[i].Q, q.Stats())
			} else {
				idx[q.Name()] = len(r.Queues)
				r.Queues = append(r.Queues, QueueLevel{Name: q.Name(), Level: q.Level(), Q: q.Stats()})
			}
		}
		sort.Slice(r.Queues, func(i, j int) bool {
			if r.Queues[i].Level != r.Queues[j].Level {
				return r.Queues[i].Level < r.Queues[j].Level
			}
			return r.Queues[i].Name < r.Queues[j].Name
		})
	}
	return r
}

// TotalInstructions sums the measured instructions over all cores.
func (r *Result) TotalInstructions() uint64 {
	var t uint64
	for i := range r.Cores {
		t += r.Cores[i].Instructions
	}
	return t
}

// IPC returns core 0's IPC — the single-core headline number.
func (r *Result) IPC() float64 {
	if len(r.Cores) == 0 {
		return 0
	}
	return r.Cores[0].IPC
}

// SpeedupOver returns this run's IPC relative to a baseline run
// (single-core normalized performance).
func (r *Result) SpeedupOver(base *Result) float64 {
	if base == nil || base.IPC() == 0 {
		return 0
	}
	return r.IPC() / base.IPC()
}

// HarmonicSpeedupOver computes the paper's SMT metric: the harmonic mean of
// per-thread speedups against a baseline run of the same mix.
func (r *Result) HarmonicSpeedupOver(base *Result) float64 {
	if base == nil || len(base.Cores) != len(r.Cores) {
		return 0
	}
	sp := make([]float64, len(r.Cores))
	for i := range r.Cores {
		if base.Cores[i].IPC == 0 {
			return 0
		}
		sp[i] = r.Cores[i].IPC / base.Cores[i].IPC
	}
	return stats.HarmonicMean(sp)
}

// LLCMPKI returns the LLC miss MPKI for one access class, normalized to the
// total measured instructions.
func (r *Result) LLCMPKI(class mem.Class) float64 {
	return stats.MPKI(r.LLC.Miss[class], r.TotalInstructions())
}

// L2MPKI aggregates L2 misses of a class across all L2 instances.
func (r *Result) L2MPKI(class mem.Class) float64 {
	var m uint64
	for i := range r.L2 {
		m += r.L2[i].Miss[class]
	}
	return stats.MPKI(m, r.TotalInstructions())
}

// L1DMPKI aggregates L1D misses of a class.
func (r *Result) L1DMPKI(class mem.Class) float64 {
	var m uint64
	for i := range r.L1D {
		m += r.L1D[i].Miss[class]
	}
	return stats.MPKI(m, r.TotalInstructions())
}

// STLBMPKI aggregates STLB misses across cores.
func (r *Result) STLBMPKI() float64 {
	var m uint64
	for i := range r.Cores {
		m += r.Cores[i].MMU.STLBMisses
	}
	return stats.MPKI(m, r.TotalInstructions())
}

// StallCycles sums a stall class over all cores.
func (r *Result) StallCycles(class cpu.StallClass) uint64 {
	var t uint64
	for i := range r.Cores {
		t += r.Cores[i].CPU.StallCycles[class]
	}
	return t
}

// TranslationHitRate is the fraction of leaf-level PTE reads serviced
// on-chip (not by DRAM) — the paper's "99% of translations hit on-chip"
// claim for the enhanced hierarchy.
func (r *Result) TranslationHitRate() float64 {
	var onchip, total uint64
	for i := range r.Cores {
		d := &r.Cores[i].Walker.LeafService
		total += d.Total()
		onchip += d.Total() - d.Count[mem.LvlDRAM]
	}
	return stats.Ratio(onchip, total)
}
